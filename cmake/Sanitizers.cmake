# Sanitizer build modes (MSV_SANITIZE).
#
# MSV_SANITIZE is a semicolon-separated list of sanitizers to instrument
# the whole build with:
#
#   cmake -B build -DMSV_SANITIZE=address;undefined   # memory errors + UB
#   cmake -B build -DMSV_SANITIZE=thread              # data races
#
# (or use the asan-ubsan / tsan presets in CMakePresets.json, which also
# set the suppression-file environment for ctest.)
#
# The flags live on an INTERFACE target, msv_sanitizer_flags, which every
# library and executable links via msv_instrument(). Propagating per
# target — rather than mutating CMAKE_CXX_FLAGS globally — keeps the
# instrumentation composable: a future split of the build into
# sanitized/unsanitized halves (e.g. an uninstrumented codegen helper)
# only has to stop calling msv_instrument on the exempt target.

set(MSV_SANITIZE "" CACHE STRING
    "Semicolon-separated sanitizers to build with: any of address, \
undefined, leak, thread (thread excludes address/leak)")

add_library(msv_sanitizer_flags INTERFACE)

if(MSV_SANITIZE)
  set(_msv_san_allowed address undefined leak thread)
  foreach(_san IN LISTS MSV_SANITIZE)
    if(NOT _san IN_LIST _msv_san_allowed)
      message(FATAL_ERROR
        "MSV_SANITIZE: unknown sanitizer '${_san}' "
        "(allowed: ${_msv_san_allowed})")
    endif()
  endforeach()
  if("thread" IN_LIST MSV_SANITIZE AND
     ("address" IN_LIST MSV_SANITIZE OR "leak" IN_LIST MSV_SANITIZE))
    message(FATAL_ERROR
      "MSV_SANITIZE: thread cannot be combined with address/leak")
  endif()

  string(REPLACE ";" "," _msv_san_csv "${MSV_SANITIZE}")
  target_compile_options(msv_sanitizer_flags INTERFACE
    -fsanitize=${_msv_san_csv}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all
    -g)
  target_link_options(msv_sanitizer_flags INTERFACE
    -fsanitize=${_msv_san_csv})
  message(STATUS "MSV: building with sanitizers: ${MSV_SANITIZE}")
endif()

# Attaches the repo-wide sanitizer flags to `target`. Called by every
# add_library/add_executable site; a no-op when MSV_SANITIZE is empty.
function(msv_instrument target)
  target_link_libraries(${target} PRIVATE msv_sanitizer_flags)
endfunction()
