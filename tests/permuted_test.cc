#include <algorithm>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "io/env.h"
#include "permuted/permuted_file.h"
#include "relation/workload.h"
#include "test_util.h"
#include "util/stats.h"

namespace msv::permuted {
namespace {

using msv::testing::AllDistinct;
using msv::testing::DrainRowIds;
using msv::testing::MakeSale;
using msv::testing::TakeRowIds;
using msv::testing::ValueOrDie;
using storage::HeapFile;
using storage::SaleRecord;

class PermutedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    MakeSale(env_.get(), "sale", kRecords, /*seed=*/11);
  }

  static constexpr uint64_t kRecords = 4000;
  std::unique_ptr<io::Env> env_;
};

TEST_F(PermutedFileTest, PreservesMultisetOfRecords) {
  PermuteOptions options;
  options.seed = 3;
  MSV_ASSERT_OK(BuildPermutedFile(env_.get(), "sale", "perm", options));
  auto perm = ValueOrDie(HeapFile::Open(env_.get(), "perm"));
  ASSERT_EQ(perm->record_count(), kRecords);
  ASSERT_EQ(perm->record_size(), SaleRecord::kSize);

  std::vector<uint64_t> ids;
  auto scanner = perm->NewScanner();
  for (;;) {
    const char* rec = ValueOrDie(scanner.Next());
    if (rec == nullptr) break;
    ids.push_back(SaleRecord::DecodeFrom(rec).row_id);
  }
  ASSERT_EQ(ids.size(), kRecords);
  EXPECT_TRUE(AllDistinct(ids));
  auto sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted.front(), 0u);
  EXPECT_EQ(sorted.back(), kRecords - 1);
  // And the order is actually permuted, not identity.
  EXPECT_NE(ids, sorted);
}

TEST_F(PermutedFileTest, DifferentSeedsGiveDifferentOrders) {
  PermuteOptions a, b;
  a.seed = 1;
  b.seed = 2;
  MSV_ASSERT_OK(BuildPermutedFile(env_.get(), "sale", "pa", a));
  MSV_ASSERT_OK(BuildPermutedFile(env_.get(), "sale", "pb", b));
  auto fa = ValueOrDie(HeapFile::Open(env_.get(), "pa"));
  auto fb = ValueOrDie(HeapFile::Open(env_.get(), "pb"));
  char ra[SaleRecord::kSize], rb[SaleRecord::kSize];
  int diff = 0;
  for (uint64_t i = 0; i < 100; ++i) {
    MSV_ASSERT_OK(fa->ReadRecord(i, ra));
    MSV_ASSERT_OK(fb->ReadRecord(i, rb));
    diff += SaleRecord::DecodeFrom(ra).row_id != SaleRecord::DecodeFrom(rb).row_id;
  }
  EXPECT_GT(diff, 90);
}

TEST_F(PermutedFileTest, SamplerReturnsExactlyTheMatchSet) {
  MSV_ASSERT_OK(BuildPermutedFile(env_.get(), "sale", "perm", {}));
  auto perm = ValueOrDie(HeapFile::Open(env_.get(), "perm"));
  auto layout = SaleRecord::Layout1D();
  auto query = sampling::RangeQuery::OneDim(20000, 45000);

  auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  auto expected =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout, query));

  PermutedFileSampler sampler(perm.get(), layout, query, /*chunk_bytes=*/4096);
  auto got = DrainRowIds(&sampler);
  EXPECT_EQ(sampler.samples_returned(), got.size());
  EXPECT_EQ(sampler.records_scanned(), kRecords);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST_F(PermutedFileTest, SamplerNeverReturnsNonMatching) {
  MSV_ASSERT_OK(BuildPermutedFile(env_.get(), "sale", "perm", {}));
  auto perm = ValueOrDie(HeapFile::Open(env_.get(), "perm"));
  auto layout = SaleRecord::Layout1D();
  auto query = sampling::RangeQuery::OneDim(10000, 11000);
  PermutedFileSampler sampler(perm.get(), layout, query);
  while (!sampler.done()) {
    auto batch = ValueOrDie(sampler.NextBatch());
    for (size_t i = 0; i < batch.count(); ++i) {
      EXPECT_TRUE(query.Matches(layout, batch.record(i)));
    }
  }
}

TEST_F(PermutedFileTest, EmptyQueryRangeYieldsNothing) {
  MSV_ASSERT_OK(BuildPermutedFile(env_.get(), "sale", "perm", {}));
  auto perm = ValueOrDie(HeapFile::Open(env_.get(), "perm"));
  auto layout = SaleRecord::Layout1D();
  auto query = sampling::RangeQuery::OneDim(2e6, 3e6);  // outside domain
  PermutedFileSampler sampler(perm.get(), layout, query);
  auto got = DrainRowIds(&sampler);
  EXPECT_TRUE(got.empty());
}

// Statistical property: the first k samples are a uniform random subset of
// the match set. We rebuild the permuted file with many seeds and count
// per-record inclusion frequencies.
TEST_F(PermutedFileTest, PrefixIsUniformSample) {
  auto layout = storage::SaleRecord::Layout1D();
  auto query = sampling::RangeQuery::OneDim(30000, 70000);
  auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  auto matching =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout, query));
  ASSERT_GT(matching.size(), 100u);
  std::map<uint64_t, size_t> index;
  for (size_t i = 0; i < matching.size(); ++i) index[matching[i]] = i;

  const uint64_t kPrefix = 50;
  const int kTrials = 150;
  std::vector<uint64_t> counts(matching.size(), 0);
  for (int t = 0; t < kTrials; ++t) {
    PermuteOptions options;
    options.seed = 1000 + t;
    MSV_ASSERT_OK(BuildPermutedFile(env_.get(), "sale", "ptrial", options));
    auto perm = ValueOrDie(HeapFile::Open(env_.get(), "ptrial"));
    PermutedFileSampler sampler(perm.get(), layout, query, 2048);
    auto prefix = TakeRowIds(&sampler, kPrefix);
    ASSERT_GE(prefix.size(), kPrefix);
    prefix.resize(kPrefix);  // batches may overshoot; keep an exact prefix
    for (uint64_t id : prefix) {
      ++counts[index.at(id)];
    }
  }
  double expected_each =
      double(kPrefix) * kTrials / double(matching.size());
  std::vector<double> expected(matching.size(), expected_each);
  double stat = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(stat, matching.size() - 1), 1e-5)
      << "stat=" << stat << " dof=" << matching.size() - 1;
}

}  // namespace
}  // namespace msv::permuted
