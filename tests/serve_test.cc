// Protocol robustness for the MSVQL TCP front end.
//
// The battery attacks the server the way misbehaving clients do —
// malformed JSON, oversized frames, disconnects mid-frame, slow-loris
// stalls, request bursts past the admission queue — and checks that
// every failure is either a *typed* error response (overload / parse /
// exec / protocol) or a clean drop, while healthy sessions on the same
// server keep being served. The churn test exists chiefly for the TSan
// build: it races connection setup/teardown against in-flight work to
// exercise the shared_ptr fd-lifetime design.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "io/env.h"
#include "query/executor.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "test_util.h"

namespace msv {
namespace {

using msv::testing::ValueOrDie;
using serve::Client;
using serve::EncodeFrame;
using serve::FrameDecoder;
using serve::ParseRequest;
using serve::Server;
using serve::ServerOptions;

// ---------------------------------------------------------------------------
// FrameDecoder: incremental reassembly.

TEST(FrameDecoderTest, ReassemblesOneBytePerFeed) {
  const std::string frame = EncodeFrame("{\"statement\":\"SHOW VIEWS;\"}");
  FrameDecoder decoder;
  std::string payload;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.Feed(frame.data() + i, 1);
    EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Outcome::kNeedMore);
    EXPECT_TRUE(decoder.mid_frame());
  }
  decoder.Feed(frame.data() + frame.size() - 1, 1);
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Outcome::kFrame);
  EXPECT_EQ(payload, "{\"statement\":\"SHOW VIEWS;\"}");
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(FrameDecoderTest, DrainsMultipleFramesFromOneFeed) {
  const std::string wire = EncodeFrame("first") + EncodeFrame("second");
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size());
  std::string payload;
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Outcome::kFrame);
  EXPECT_EQ(payload, "first");
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Outcome::kFrame);
  EXPECT_EQ(payload, "second");
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Outcome::kNeedMore);
}

TEST(FrameDecoderTest, EmptyPayloadRoundTrips) {
  FrameDecoder decoder;
  const std::string frame = EncodeFrame("");
  decoder.Feed(frame.data(), frame.size());
  std::string payload = "sentinel";
  ASSERT_EQ(decoder.Next(&payload), FrameDecoder::Outcome::kFrame);
  EXPECT_EQ(payload, "");
}

TEST(FrameDecoderTest, OversizedDeclaredLengthIsRejectedFromHeaderAlone) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  // Header declaring 1 MiB — no body bytes needed to convict.
  const unsigned char header[4] = {0x00, 0x10, 0x00, 0x00};
  decoder.Feed(reinterpret_cast<const char*>(header), sizeof(header));
  std::string payload;
  EXPECT_EQ(decoder.Next(&payload), FrameDecoder::Outcome::kTooLarge);
}

// ---------------------------------------------------------------------------
// ParseRequest: protocol JSON validation.

TEST(ParseRequestTest, AcceptsStatementWithAndWithoutId) {
  auto with_id = ValueOrDie(ParseRequest("{\"id\": 7, \"statement\": \"X;\"}"));
  EXPECT_TRUE(with_id.has_id);
  EXPECT_EQ(with_id.id, 7u);
  EXPECT_EQ(with_id.statement, "X;");
  auto without_id = ValueOrDie(ParseRequest("{\"statement\": \"Y;\"}"));
  EXPECT_FALSE(without_id.has_id);
  EXPECT_EQ(without_id.statement, "Y;");
}

TEST(ParseRequestTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequest("not json at all").ok());
  EXPECT_FALSE(ParseRequest("[1, 2, 3]").ok());        // not an object
  EXPECT_FALSE(ParseRequest("{\"id\": 3}").ok());      // statement missing
  EXPECT_FALSE(ParseRequest("{\"statement\": 9}").ok());  // wrong type
}

// ---------------------------------------------------------------------------
// Live-server battery.

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    executor_ = ValueOrDie(query::Executor::Open(env_.get()));
    ASSERT_TRUE(executor_
                    ->Run("GENERATE TABLE sale ROWS 5000 SEED 7; CREATE "
                          "MATERIALIZED SAMPLE VIEW sv AS SELECT * FROM sale "
                          "INDEX ON day;")
                    .ok());
  }

  void StartServer(ServerOptions options) {
    options.port = 0;
    server_ = std::make_unique<Server>(executor_.get(), options);
    MSV_ASSERT_OK(server_->Start());
  }

  std::unique_ptr<Client> Connect() {
    return ValueOrDie(Client::Connect("127.0.0.1", server_->port()));
  }

  static constexpr const char* kGoodQuery =
      "ESTIMATE AVG(amount) FROM sv WHERE day BETWEEN 1000 AND 90000 "
      "SAMPLES 64;";

  std::unique_ptr<io::Env> env_;
  std::unique_ptr<query::Executor> executor_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeTest, GoodQueryRoundTripsWithEstimateBlock) {
  StartServer(ServerOptions{});
  auto client = Connect();
  obs::Json doc = ValueOrDie(client->Call(kGoodQuery));
  ASSERT_NE(doc.Find("ok"), nullptr);
  EXPECT_TRUE(doc.Find("ok")->AsBool());
  ASSERT_NE(doc.Find("output"), nullptr);
  EXPECT_NE(doc.Find("output")->AsString().find("AVG(amount)"),
            std::string::npos);
  const obs::Json* estimate = doc.Find("estimate");
  ASSERT_NE(estimate, nullptr);
  EXPECT_EQ(estimate->Find("samples")->AsNumber(), 64.0);
  EXPECT_GT(estimate->Find("half_width")->AsNumber(), 0.0);
  EXPECT_FALSE(estimate->Find("is_partial")->AsBool());
}

TEST_F(ServeTest, MalformedJsonGetsProtocolErrorAndConnectionSurvives) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const std::string frame = EncodeFrame("{definitely not json");
  MSV_ASSERT_OK(client->SendBytes(frame.data(), frame.size()));
  obs::Json doc = ValueOrDie(client->Read());
  ASSERT_NE(doc.Find("ok"), nullptr);
  EXPECT_FALSE(doc.Find("ok")->AsBool());
  ASSERT_NE(doc.Find("error"), nullptr);
  EXPECT_EQ(doc.Find("error")->Find("kind")->AsString(), "protocol");
  // The connection is still good: a well-formed request now succeeds.
  obs::Json good = ValueOrDie(client->Call(kGoodQuery));
  EXPECT_TRUE(good.Find("ok")->AsBool());
}

TEST_F(ServeTest, MissingStatementIsProtocolError) {
  StartServer(ServerOptions{});
  auto client = Connect();
  const std::string frame = EncodeFrame("{\"id\": 12}");
  MSV_ASSERT_OK(client->SendBytes(frame.data(), frame.size()));
  obs::Json doc = ValueOrDie(client->Read());
  EXPECT_FALSE(doc.Find("ok")->AsBool());
  EXPECT_EQ(doc.Find("error")->Find("kind")->AsString(), "protocol");
}

TEST_F(ServeTest, OversizedFrameGetsTypedErrorThenDrop) {
  ServerOptions options;
  options.max_frame_bytes = 256;
  StartServer(options);
  auto client = Connect();
  // Header declaring a 1 MiB payload; the server convicts on the header.
  const unsigned char header[4] = {0x00, 0x10, 0x00, 0x00};
  MSV_ASSERT_OK(client->SendBytes(header, sizeof(header)));
  obs::Json doc = ValueOrDie(client->Read());
  EXPECT_FALSE(doc.Find("ok")->AsBool());
  EXPECT_EQ(doc.Find("error")->Find("kind")->AsString(), "protocol");
  EXPECT_NE(doc.Find("error")->Find("message")->AsString().find("exceeds"),
            std::string::npos);
  // ... then closes the connection.
  auto eof = client->Read(/*timeout_ms=*/5000);
  ASSERT_FALSE(eof.ok());
  EXPECT_NE(std::string(eof.status().message()).find("closed"),
            std::string::npos)
      << eof.status().ToString();
}

TEST_F(ServeTest, MidFrameDisconnectLeavesOtherSessionsServing) {
  StartServer(ServerOptions{});
  auto victim = Connect();
  auto healthy = Connect();
  // Header + half a body, then vanish.
  const std::string frame = EncodeFrame("{\"statement\": \"SHOW VIEWS;\"}");
  MSV_ASSERT_OK(
      victim->SendBytes(frame.data(), frame.size() / 2));
  victim->Close();
  for (int i = 0; i < 3; ++i) {
    obs::Json doc = ValueOrDie(healthy->Call(kGoodQuery));
    EXPECT_TRUE(doc.Find("ok")->AsBool());
  }
}

TEST_F(ServeTest, SlowLorisIsSweptWhileHealthySessionsContinue) {
  ServerOptions options;
  options.stall_timeout_ms = 200;
  StartServer(options);
  auto loris = Connect();
  auto healthy = Connect();
  // Park the loris mid-frame: header only, body never arrives.
  const unsigned char header[4] = {0x00, 0x00, 0x00, 0x40};
  MSV_ASSERT_OK(loris->SendBytes(header, sizeof(header)));
  // The sweep closes the stalled connection within timeout + poll slack.
  auto eof = loris->Read(/*timeout_ms=*/10'000);
  ASSERT_FALSE(eof.ok());
  EXPECT_NE(std::string(eof.status().message()).find("closed"),
            std::string::npos)
      << eof.status().ToString();
  // Idle-but-clean connections are NOT swept (no partial frame pending),
  // and keep serving after the sweep.
  obs::Json doc = ValueOrDie(healthy->Call(kGoodQuery));
  EXPECT_TRUE(doc.Find("ok")->AsBool());
}

TEST_F(ServeTest, BurstPastAdmissionQueueGetsTypedOverload) {
  ServerOptions options;
  options.workers = 1;
  options.max_queue = 1;
  StartServer(options);
  auto client = Connect();
  // Blast a pipeline of requests without reading. The single worker
  // drains at execution speed while the I/O thread admits at parse
  // speed, so most of the burst must bounce off the 1-deep queue.
  constexpr int kBurst = 32;
  for (int i = 0; i < kBurst; ++i) {
    MSV_ASSERT_OK(
        client->Send(static_cast<uint64_t>(i + 1), kGoodQuery));
  }
  int ok = 0, overload = 0, other = 0;
  for (int i = 0; i < kBurst; ++i) {
    obs::Json doc = ValueOrDie(client->Read(/*timeout_ms=*/30'000));
    if (doc.Find("ok")->AsBool()) {
      ++ok;
    } else if (doc.Find("error")->Find("kind")->AsString() == "overload") {
      ++overload;
      EXPECT_NE(
          doc.Find("error")->Find("message")->AsString().find("queue full"),
          std::string::npos);
    } else {
      ++other;
    }
  }
  EXPECT_EQ(ok + overload, kBurst);
  EXPECT_EQ(other, 0);
  EXPECT_GE(ok, 1) << "admitted requests must still be served";
  EXPECT_GE(overload, 1) << "a 32-deep burst into a 1-deep queue must shed";
  // Overload is retryable: the same connection serves once pressure is off.
  obs::Json doc = ValueOrDie(client->Call(kGoodQuery));
  EXPECT_TRUE(doc.Find("ok")->AsBool());
}

TEST_F(ServeTest, ParseAndExecFailuresAreDistinctlyTyped) {
  StartServer(ServerOptions{});
  auto client = Connect();
  auto parse = client->Call("THIS IS NOT MSVQL;");
  ASSERT_FALSE(parse.ok());
  EXPECT_EQ(std::string(parse.status().message()).rfind("parse: ", 0), 0u)
      << parse.status().ToString();
  auto exec = client->Call(
      "ESTIMATE AVG(amount) FROM no_such_view SAMPLES 8;");
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(std::string(exec.status().message()).rfind("exec: ", 0), 0u)
      << exec.status().ToString();
  // Typed failures never poison the session.
  obs::Json doc = ValueOrDie(client->Call(kGoodQuery));
  EXPECT_TRUE(doc.Find("ok")->AsBool());
}

/// Races connection setup/teardown against in-flight queries. The
/// assertions are mild on purpose — under TSan this test's job is to
/// make the fd-lifetime and staged-output synchronization misbehave if
/// it can.
TEST_F(ServeTest, ConnectionChurnUnderConcurrentLoad) {
  ServerOptions options;
  options.workers = 2;
  StartServer(options);
  const int port = server_->port();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Query-churn threads: connect, one query, disconnect, repeat.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 15; ++i) {
        auto client = Client::Connect("127.0.0.1", port);
        if (!client.ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto doc = (*client)->Call(
            "ESTIMATE AVG(amount) FROM sv WHERE day BETWEEN 1000 AND "
            "90000 SAMPLES 16;");
        if (!doc.ok()) failures.fetch_add(1);
        // Odd iterations close abruptly with a request possibly staged.
        if ((i + t) % 2 == 0) (*client)->Close();
      }
    });
  }
  // Connect-and-vanish thread: never sends a byte.
  threads.emplace_back([&] {
    for (int i = 0; i < 30; ++i) {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) failures.fetch_add(1);
    }
  });
  // Send-and-vanish thread: request in flight when the socket dies.
  threads.emplace_back([&] {
    for (int i = 0; i < 15; ++i) {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failures.fetch_add(1);
        continue;
      }
      (void)(*client)->Send(1, "ESTIMATE AVG(amount) FROM sv SAMPLES 16;");
      (*client)->Close();
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // The server is still healthy after the storm.
  auto client = Connect();
  obs::Json doc = ValueOrDie(client->Call(kGoodQuery));
  EXPECT_TRUE(doc.Find("ok")->AsBool());
}

TEST_F(ServeTest, StopWithQueuedWorkDoesNotHang) {
  ServerOptions options;
  options.workers = 1;
  options.max_queue = 16;
  StartServer(options);
  auto client = Connect();
  for (int i = 0; i < 8; ++i) {
    MSV_ASSERT_OK(
        client->Send(static_cast<uint64_t>(i + 1), kGoodQuery));
  }
  server_->Stop();  // must join cleanly with requests still queued
  EXPECT_EQ(server_->connections(), 0u);
}

}  // namespace
}  // namespace msv
