// Env contract test: one behavioural suite run against every backend
// (MemEnv, PosixEnv, FaultInjectionEnv-over-Mem), plus backend-specific
// checks — POSIX errno classification, >2 GiB offsets (gated behind
// MSV_SLOW_TESTS), and the fault env's injection and crash semantics.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace msv::io {
namespace {

using msv::testing::ValueOrDie;

enum class Backend { kMem, kPosix, kFault };

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kMem:
      return "Mem";
    case Backend::kPosix:
      return "Posix";
    case Backend::kFault:
      return "FaultInjection";
  }
  return "?";
}

class EnvContractTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    switch (GetParam()) {
      case Backend::kMem:
        env_ = NewMemEnv();
        break;
      case Backend::kPosix: {
        const auto* info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        root_ = ::testing::TempDir() + "/msv_contract_" + info->name();
        std::filesystem::remove_all(root_);
        std::filesystem::create_directories(root_);
        env_ = NewPosixEnv(root_);
        break;
      }
      case Backend::kFault:
        inner_ = NewMemEnv();
        env_ = NewFaultInjectionEnv(inner_.get());
        break;
    }
  }
  void TearDown() override {
    env_.reset();
    if (!root_.empty()) std::filesystem::remove_all(root_);
  }

  std::unique_ptr<Env> inner_;  // backing store for the fault env
  std::unique_ptr<Env> env_;
  std::string root_;
};

TEST_P(EnvContractTest, WriteReadRoundTrip) {
  auto file = ValueOrDie(env_->OpenFile("f", true));
  MSV_ASSERT_OK(file->Write(0, "hello", 5));
  MSV_ASSERT_OK(file->Append(" world", 6));
  char buf[11];
  MSV_ASSERT_OK(file->ReadExact(0, 11, buf));
  EXPECT_EQ(std::string(buf, 11), "hello world");
  EXPECT_EQ(ValueOrDie(file->Size()), 11u);
}

TEST_P(EnvContractTest, ShortReadAtEofIsNotAnError) {
  auto file = ValueOrDie(env_->OpenFile("f", true));
  MSV_ASSERT_OK(file->Append("abc", 3));
  char buf[8];
  EXPECT_EQ(ValueOrDie(file->Read(1, 8, buf)), 2u);
  EXPECT_EQ(std::string(buf, 2), "bc");
  EXPECT_EQ(ValueOrDie(file->Read(3, 8, buf)), 0u);
  EXPECT_TRUE(file->ReadExact(1, 8, buf).IsIOError());
}

TEST_P(EnvContractTest, MissingFileClassifiedNotFound) {
  auto open = env_->OpenFile("ghost", false);
  ASSERT_FALSE(open.ok());
  EXPECT_TRUE(open.status().IsNotFound());
  EXPECT_TRUE(env_->DeleteFile("ghost").IsNotFound());
  EXPECT_FALSE(ValueOrDie(env_->FileExists("ghost")));
}

TEST_P(EnvContractTest, TruncateShrinksAndExtends) {
  auto file = ValueOrDie(env_->OpenFile("f", true));
  MSV_ASSERT_OK(file->Append("0123456789", 10));
  MSV_ASSERT_OK(file->Truncate(4));
  EXPECT_EQ(ValueOrDie(file->Size()), 4u);
  MSV_ASSERT_OK(file->Truncate(8));
  EXPECT_EQ(ValueOrDie(file->Size()), 8u);
  // The extension reads back as zero bytes.
  char buf[8];
  MSV_ASSERT_OK(file->ReadExact(0, 8, buf));
  EXPECT_EQ(std::string(buf, 8), std::string("0123\0\0\0\0", 8));
}

TEST_P(EnvContractTest, OverflowingWriteOffsetRejected) {
  auto file = ValueOrDie(env_->OpenFile("f", true));
  const uint64_t near_max = std::numeric_limits<uint64_t>::max() - 2;
  EXPECT_FALSE(file->Write(near_max, "abcd", 4).ok());
  // The file must not have been corrupted into a huge allocation.
  EXPECT_EQ(ValueOrDie(file->Size()), 0u);
}

TEST_P(EnvContractTest, RenameReplacesTarget) {
  {
    auto f = ValueOrDie(env_->OpenFile("src", true));
    MSV_ASSERT_OK(f->Append("new", 3));
  }
  {
    auto f = ValueOrDie(env_->OpenFile("dst", true));
    MSV_ASSERT_OK(f->Append("old-old", 7));
  }
  MSV_ASSERT_OK(env_->RenameFile("src", "dst"));
  EXPECT_FALSE(ValueOrDie(env_->FileExists("src")));
  auto f = ValueOrDie(env_->OpenFile("dst", false));
  EXPECT_EQ(ValueOrDie(f->Size()), 3u);
}

TEST_P(EnvContractTest, ListFilesSeesCreatedFiles) {
  { auto f = ValueOrDie(env_->OpenFile("b", true)); }
  { auto f = ValueOrDie(env_->OpenFile("a", true)); }
  auto names = ValueOrDie(env_->ListFiles());
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b"}));
  MSV_ASSERT_OK(env_->DeleteFile("a"));
  names = ValueOrDie(env_->ListFiles());
  EXPECT_EQ(names, (std::vector<std::string>{"b"}));
}

TEST_P(EnvContractTest, SyncAndSyncDirSucceed) {
  auto file = ValueOrDie(env_->OpenFile("f", true));
  MSV_ASSERT_OK(file->Append("data", 4));
  MSV_ASSERT_OK(file->Sync());
  MSV_ASSERT_OK(env_->SyncDir());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, EnvContractTest,
    ::testing::Values(Backend::kMem, Backend::kPosix, Backend::kFault),
    [](const ::testing::TestParamInfo<Backend>& info) {
      return BackendName(info.param);
    });

// ---------------------------------------------------------------------------
// POSIX-specific: errno classification and 64-bit offsets
// ---------------------------------------------------------------------------

class PosixEnvContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = ::testing::TempDir() + "/msv_posix_" + info->name();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
    env_ = NewPosixEnv(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::unique_ptr<Env> env_;
  std::string root_;
};

TEST_F(PosixEnvContractTest, DeleteDirectoryIsIOErrorNotNotFound) {
  // A directory in the way is an I/O error the caller must see; only a
  // genuinely missing file may report NotFound ("already gone").
  std::filesystem::create_directories(root_ + "/sub");
  Status st = env_->DeleteFile("sub");
  ASSERT_FALSE(st.ok());
  EXPECT_FALSE(st.IsNotFound()) << st.ToString();
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
}

TEST_F(PosixEnvContractTest, ExistsThroughFileComponentIsFalse) {
  { auto f = ValueOrDie(env_->OpenFile("plain", true)); }
  // "plain" is a file, so nothing can exist beneath it (ENOTDIR).
  EXPECT_FALSE(ValueOrDie(env_->FileExists("plain/child")));
}

TEST_F(PosixEnvContractTest, SizeSurvivesConcurrentlyMovedOffsets) {
  // pread/pwrite keep no shared cursor: interleaved positional reads and
  // size queries through one handle must not perturb each other.
  auto file = ValueOrDie(env_->OpenFile("f", true));
  MSV_ASSERT_OK(file->Append("0123456789", 10));
  char c;
  MSV_ASSERT_OK(file->ReadExact(7, 1, &c));
  EXPECT_EQ(ValueOrDie(file->Size()), 10u);
  MSV_ASSERT_OK(file->ReadExact(2, 1, &c));
  EXPECT_EQ(c, '2');
}

TEST_F(PosixEnvContractTest, OffsetsBeyondTwoGiB) {
  if (std::getenv("MSV_SLOW_TESTS") == nullptr) {
    GTEST_SKIP() << "set MSV_SLOW_TESTS=1 to run >2 GiB offset tests";
  }
  // 5 GiB offset: overflows a 32-bit long, so this is exactly the fseek
  // truncation regression. The file stays sparse — only a page lands.
  const uint64_t kOffset = 5ull << 30;
  auto file = ValueOrDie(env_->OpenFile("big", true));
  MSV_ASSERT_OK(file->Write(kOffset, "deep", 4));
  EXPECT_EQ(ValueOrDie(file->Size()), kOffset + 4);
  char buf[4];
  MSV_ASSERT_OK(file->ReadExact(kOffset, 4, buf));
  EXPECT_EQ(std::string(buf, 4), "deep");
  // Nothing was written to the truncated 32-bit alias of the offset.
  EXPECT_EQ(ValueOrDie(file->Read(kOffset & 0xffffffffu, 4, buf)), 4u);
  EXPECT_EQ(std::string(buf, 4), std::string(4, '\0'));
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv: deterministic faults
// ---------------------------------------------------------------------------

class FaultEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inner_ = NewMemEnv();
    env_ = NewFaultInjectionEnv(inner_.get());
  }
  std::unique_ptr<Env> inner_;
  std::unique_ptr<FaultInjectionEnv> env_;
};

TEST_F(FaultEnvTest, OpCountIsDeterministic) {
  auto workload = [](Env* env) {
    auto f = ValueOrDie(env->OpenFile("f", true));
    MSV_ASSERT_OK(f->Write(0, "abc", 3));
    MSV_ASSERT_OK(f->Sync());
    char buf[3];
    MSV_ASSERT_OK(f->ReadExact(0, 3, buf));
    MSV_ASSERT_OK(env->SyncDir());
  };
  workload(env_.get());
  int64_t first = env_->op_count();
  auto inner2 = NewMemEnv();
  auto env2 = NewFaultInjectionEnv(inner2.get());
  workload(env2.get());
  EXPECT_EQ(env2->op_count(), first);
  EXPECT_GE(first, 5);  // open, write, sync, read, dir-sync
}

TEST_F(FaultEnvTest, NonStickyFaultFiresExactlyOnce) {
  auto f = ValueOrDie(env_->OpenFile("f", true));
  MSV_ASSERT_OK(f->Write(0, "abc", 3));
  env_->ArmFault(env_->op_count(), FaultMode::kError, /*sticky=*/false);
  Status st = f->Write(3, "def", 3);
  ASSERT_TRUE(st.IsIOError());
  EXPECT_NE(st.ToString().find("injected"), std::string::npos);
  EXPECT_TRUE(env_->fault_fired());
  MSV_ASSERT_OK(f->Write(3, "def", 3));  // next op succeeds again
}

TEST_F(FaultEnvTest, StickyFaultKillsEveryLaterOp) {
  auto f = ValueOrDie(env_->OpenFile("f", true));
  env_->ArmFault(env_->op_count(), FaultMode::kError, /*sticky=*/true);
  EXPECT_TRUE(f->Write(0, "x", 1).IsIOError());
  EXPECT_TRUE(f->Sync().IsIOError());
  EXPECT_FALSE(env_->OpenFile("g", true).ok());
  EXPECT_TRUE(env_->SyncDir().IsIOError());
  env_->ClearFault();
  MSV_ASSERT_OK(f->Write(0, "x", 1));
}

TEST_F(FaultEnvTest, ShortReadReturnsHalf) {
  auto f = ValueOrDie(env_->OpenFile("f", true));
  std::string data(100, 'a');
  MSV_ASSERT_OK(f->Write(0, data.data(), data.size()));
  env_->ArmFault(env_->op_count(), FaultMode::kShortRead, /*sticky=*/false);
  char buf[100];
  EXPECT_EQ(ValueOrDie(f->Read(0, 100, buf)), 50u);
  // ReadExact turns the injected short read into a clean IOError.
  env_->ArmFault(env_->op_count(), FaultMode::kShortRead, /*sticky=*/false);
  EXPECT_TRUE(f->ReadExact(0, 100, buf).IsIOError());
}

TEST_F(FaultEnvTest, ShortWriteTearsThePayload) {
  auto f = ValueOrDie(env_->OpenFile("f", true));
  env_->ArmFault(env_->op_count(), FaultMode::kShortWrite, /*sticky=*/false);
  std::string data(100, 'b');
  EXPECT_TRUE(f->Write(0, data.data(), data.size()).IsIOError());
  // Half the payload landed in the backing store: a torn write.
  auto raw = ValueOrDie(inner_->OpenFile("f", false));
  EXPECT_EQ(ValueOrDie(raw->Size()), 50u);
}

TEST_F(FaultEnvTest, FaultCountersPublished) {
  auto* reg = &obs::MetricRegistry::Global();
  uint64_t ops0 = reg->GetCounter("io.fault.ops")->Value();
  uint64_t errs0 = reg->GetCounter("io.fault.injected_errors")->Value();
  auto f = ValueOrDie(env_->OpenFile("f", true));
  env_->ArmFault(env_->op_count(), FaultMode::kError, /*sticky=*/false);
  EXPECT_TRUE(f->Sync().IsIOError());
  EXPECT_GT(reg->GetCounter("io.fault.ops")->Value(), ops0);
  EXPECT_EQ(reg->GetCounter("io.fault.injected_errors")->Value(), errs0 + 1);
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv: batched reads and the op-index ledger
// ---------------------------------------------------------------------------

namespace {
/// Builds one `page`-byte request per entry of `offsets` over `scratch`
/// (which is resized to fit).
std::vector<ReadRequest> PageBatch(const std::vector<uint64_t>& offsets,
                                   size_t page, std::string* scratch) {
  scratch->assign(offsets.size() * page, '\0');
  std::vector<ReadRequest> reqs(offsets.size());
  for (size_t i = 0; i < offsets.size(); ++i) {
    reqs[i] = ReadRequest{offsets[i], page, scratch->data() + i * page};
  }
  return reqs;
}
}  // namespace

TEST_F(FaultEnvTest, BatchConsumesOneOpPerContiguousRun) {
  auto f = ValueOrDie(env_->OpenFile("f", true));
  std::string data(800, 'x');
  MSV_ASSERT_OK(f->Write(0, data.data(), data.size()));
  std::string scratch;

  // One contiguous 4-page run: one underlying device access, one op.
  auto adjacent = PageBatch({0, 100, 200, 300}, 100, &scratch);
  int64_t before = env_->op_count();
  MSV_ASSERT_OK(f->ReadBatch(adjacent.data(), adjacent.size()));
  EXPECT_EQ(env_->op_count(), before + 1);

  // Three scattered pages: three runs, three ops.
  auto scattered = PageBatch({0, 300, 600}, 100, &scratch);
  before = env_->op_count();
  MSV_ASSERT_OK(f->ReadBatch(scattered.data(), scattered.size()));
  EXPECT_EQ(env_->op_count(), before + 3);

  // Two adjacent pairs split by a gap: two runs, two ops.
  auto pairs = PageBatch({0, 100, 500, 600}, 100, &scratch);
  before = env_->op_count();
  MSV_ASSERT_OK(f->ReadBatch(pairs.data(), pairs.size()));
  EXPECT_EQ(env_->op_count(), before + 2);
}

TEST_F(FaultEnvTest, MidBatchFaultHitsTheRunItIsArmedFor) {
  auto f = ValueOrDie(env_->OpenFile("f", true));
  std::string data(800, 'x');
  MSV_ASSERT_OK(f->Write(0, data.data(), data.size()));
  std::string scratch;
  // Two runs: {0,100} and {500}. Arm the op *after* the first run, so
  // run 1 completes and run 2 is the one that dies.
  auto reqs = PageBatch({0, 100, 500}, 100, &scratch);
  env_->ArmFault(env_->op_count() + 1, FaultMode::kError, /*sticky=*/false);
  Status st = f->ReadBatch(reqs.data(), reqs.size());
  ASSERT_TRUE(st.IsIOError());
  EXPECT_NE(st.ToString().find("injected"), std::string::npos);
  EXPECT_EQ(reqs[0].got, 100u);  // the first run had already been served
  EXPECT_EQ(reqs[1].got, 100u);
  MSV_ASSERT_OK(f->ReadBatch(reqs.data(), reqs.size()));  // non-sticky
}

TEST_F(FaultEnvTest, ShortReadOnBatchTruncatesAtRequestBoundary) {
  auto f = ValueOrDie(env_->OpenFile("f", true));
  std::string data(400, 'y');
  MSV_ASSERT_OK(f->Write(0, data.data(), data.size()));
  std::string scratch;
  // One 4-page contiguous run of 400 bytes: the injected short read
  // keeps half the delivered bytes, rounded DOWN to a request boundary
  // — a deterministic page-aligned truncation, like a real device that
  // died mid-transfer.
  auto reqs = PageBatch({0, 100, 200, 300}, 100, &scratch);
  env_->ArmFault(env_->op_count(), FaultMode::kShortRead, /*sticky=*/false);
  MSV_ASSERT_OK(f->ReadBatch(reqs.data(), reqs.size()));
  EXPECT_EQ(reqs[0].got, 100u);
  EXPECT_EQ(reqs[1].got, 100u);
  EXPECT_EQ(reqs[2].got, 0u);
  EXPECT_EQ(reqs[3].got, 0u);
}

TEST_F(FaultEnvTest, ShortReadOnSingleRequestBatchMatchesScalarRead) {
  auto f = ValueOrDie(env_->OpenFile("f", true));
  std::string data(100, 'z');
  MSV_ASSERT_OK(f->Write(0, data.data(), data.size()));
  std::string scratch;
  auto reqs = PageBatch({0}, 100, &scratch);
  env_->ArmFault(env_->op_count(), FaultMode::kShortRead, /*sticky=*/false);
  MSV_ASSERT_OK(f->ReadBatch(reqs.data(), reqs.size()));
  // Same halving a scalar Read() would get (ShortReadReturnsHalf above).
  EXPECT_EQ(reqs[0].got, 50u);
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv: crash (drop-unsynced-data) semantics
// ---------------------------------------------------------------------------

TEST_F(FaultEnvTest, SyncedAndDirSyncedDataSurvivesCrash) {
  {
    auto f = ValueOrDie(env_->OpenFile("f", true));
    MSV_ASSERT_OK(f->Write(0, "durable", 7));
    MSV_ASSERT_OK(f->Sync());
    MSV_ASSERT_OK(env_->SyncDir());
  }
  MSV_ASSERT_OK(env_->DropUnsyncedData());
  auto f = ValueOrDie(env_->OpenFile("f", false));
  char buf[7];
  MSV_ASSERT_OK(f->ReadExact(0, 7, buf));
  EXPECT_EQ(std::string(buf, 7), "durable");
}

TEST_F(FaultEnvTest, UnsyncedWritesRollBackToLastSync) {
  {
    auto f = ValueOrDie(env_->OpenFile("f", true));
    MSV_ASSERT_OK(f->Write(0, "v1", 2));
    MSV_ASSERT_OK(f->Sync());
    MSV_ASSERT_OK(env_->SyncDir());
    MSV_ASSERT_OK(f->Write(0, "v2-unsynced", 11));
  }
  MSV_ASSERT_OK(env_->DropUnsyncedData());
  auto f = ValueOrDie(env_->OpenFile("f", false));
  EXPECT_EQ(ValueOrDie(f->Size()), 2u);
  char buf[2];
  MSV_ASSERT_OK(f->ReadExact(0, 2, buf));
  EXPECT_EQ(std::string(buf, 2), "v1");
}

TEST_F(FaultEnvTest, CreateWithoutDirSyncVanishesInCrash) {
  {
    auto f = ValueOrDie(env_->OpenFile("f", true));
    MSV_ASSERT_OK(f->Write(0, "synced but no dir entry", 23));
    MSV_ASSERT_OK(f->Sync());  // data synced, directory entry is not
  }
  MSV_ASSERT_OK(env_->DropUnsyncedData());
  EXPECT_FALSE(ValueOrDie(env_->FileExists("f")));
  EXPECT_TRUE(env_->OpenFile("f", false).status().IsNotFound());
}

TEST_F(FaultEnvTest, DeleteWithoutDirSyncResurrectsInCrash) {
  {
    auto f = ValueOrDie(env_->OpenFile("f", true));
    MSV_ASSERT_OK(f->Write(0, "keep", 4));
    MSV_ASSERT_OK(f->Sync());
    MSV_ASSERT_OK(env_->SyncDir());
  }
  MSV_ASSERT_OK(env_->DeleteFile("f"));
  EXPECT_FALSE(ValueOrDie(env_->FileExists("f")));
  MSV_ASSERT_OK(env_->DropUnsyncedData());
  auto f = ValueOrDie(env_->OpenFile("f", false));
  EXPECT_EQ(ValueOrDie(f->Size()), 4u);
}

TEST_F(FaultEnvTest, RenameWithoutDirSyncRollsBackInCrash) {
  {
    auto f = ValueOrDie(env_->OpenFile("a", true));
    MSV_ASSERT_OK(f->Write(0, "payload", 7));
    MSV_ASSERT_OK(f->Sync());
    MSV_ASSERT_OK(env_->SyncDir());
  }
  MSV_ASSERT_OK(env_->RenameFile("a", "b"));
  MSV_ASSERT_OK(env_->DropUnsyncedData());
  // The rename was never committed: "a" is back, "b" never existed.
  EXPECT_TRUE(ValueOrDie(env_->FileExists("a")));
  EXPECT_FALSE(ValueOrDie(env_->FileExists("b")));
}

TEST_F(FaultEnvTest, RenameWithDirSyncCommits) {
  {
    auto f = ValueOrDie(env_->OpenFile("a", true));
    MSV_ASSERT_OK(f->Write(0, "payload", 7));
    MSV_ASSERT_OK(f->Sync());
  }
  MSV_ASSERT_OK(env_->RenameFile("a", "b"));
  MSV_ASSERT_OK(env_->SyncDir());
  MSV_ASSERT_OK(env_->DropUnsyncedData());
  EXPECT_FALSE(ValueOrDie(env_->FileExists("a")));
  auto f = ValueOrDie(env_->OpenFile("b", false));
  char buf[7];
  MSV_ASSERT_OK(f->ReadExact(0, 7, buf));
  EXPECT_EQ(std::string(buf, 7), "payload");
}

TEST_F(FaultEnvTest, PreExistingFilesAreDurable) {
  // Files created before the fault env wraps the store predate the crash
  // window and survive as-is.
  auto raw_inner = NewMemEnv();
  {
    auto f = ValueOrDie(raw_inner->OpenFile("old", true));
    MSV_ASSERT_OK(f->Write(0, "ancient", 7));
  }
  auto fault = NewFaultInjectionEnv(raw_inner.get());
  MSV_ASSERT_OK(fault->DropUnsyncedData());
  auto f = ValueOrDie(fault->OpenFile("old", false));
  char buf[7];
  MSV_ASSERT_OK(f->ReadExact(0, 7, buf));
  EXPECT_EQ(std::string(buf, 7), "ancient");
}

}  // namespace
}  // namespace msv::io
