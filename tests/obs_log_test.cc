// Tests for the structured logging stack: StructuredLogger (JSON sink
// shape, MSV_LOG sink routing, per-site rate limiting), the SlowQueryLog
// ring, and the executor integration that captures per-statement cost
// records end-to-end (the EXPLAIN ANALYZE acceptance path).
//
// The logger and slow-query log under test are process-wide singletons,
// so every test restores defaults (stderr on, limit 100/s, disarmed,
// ring cleared) on exit; tests that need isolation use private
// SlowQueryLog instances.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "io/env.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "test_util.h"
#include "util/logging.h"

namespace msv::obs {
namespace {

using msv::testing::ValueOrDie;

// Restores global logger/slow-log state no matter how a test exits.
class LoggingTestGuard {
 public:
  LoggingTestGuard() {
    InitLogging();
    StructuredLogger::Global().set_stderr_enabled(false);
    StructuredLogger::Global().ResetSites();
  }
  ~LoggingTestGuard() {
    StructuredLogger& logger = StructuredLogger::Global();
    logger.CloseJsonSink();
    logger.set_site_limit(100);
    logger.ResetSites();
    logger.set_stderr_enabled(true);
    SlowQueryLog::Global().set_threshold_us(0);
    SlowQueryLog::Global().Clear();
    SetLogLevel(LogLevel::kInfo);
  }
};

std::vector<Json> ReadJsonLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<Json> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(ValueOrDie(Json::Parse(line)));
  }
  return lines;
}

std::string TempPath(const std::string& stem) {
  const char* dir = std::getenv("TMPDIR");  // NOLINT(concurrency-mt-unsafe)
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + stem;
}

// ---------------------------------------------------------------------------
// StructuredLogger
// ---------------------------------------------------------------------------

TEST(StructuredLoggerTest, JsonSinkWritesStructuredRecords) {
  LoggingTestGuard guard;
  StructuredLogger& logger = StructuredLogger::Global();
  const std::string path = TempPath("msv_obs_log_sink_test.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(logger.OpenJsonSink(path).ok());
  EXPECT_TRUE(logger.json_sink_open());

  LogEvent(LogLevel::kWarn, "pool.cc", 42, "pool stall",
           {{"pages", 17}, {"session", "s1"}, {"hot", true}});
  logger.CloseJsonSink();
  EXPECT_FALSE(logger.json_sink_open());

  std::vector<Json> lines = ReadJsonLines(path);
  ASSERT_EQ(lines.size(), 1u);
  const Json& rec = lines[0];
  EXPECT_EQ(rec.Find("level")->AsString(), "warn");
  EXPECT_EQ(rec.Find("site")->AsString(), "pool.cc:42");
  EXPECT_EQ(rec.Find("msg")->AsString(), "pool stall");
  EXPECT_DOUBLE_EQ(rec.Find("pages")->AsNumber(), 17.0);
  EXPECT_EQ(rec.Find("session")->AsString(), "s1");
  EXPECT_TRUE(rec.Find("hot")->AsBool());
  EXPECT_GT(rec.Find("ts_us")->AsNumber(), 0.0);
  std::remove(path.c_str());
}

TEST(StructuredLoggerTest, MsvLogMacroRoutesThroughSink) {
  LoggingTestGuard guard;
  StructuredLogger& logger = StructuredLogger::Global();
  const std::string path = TempPath("msv_obs_log_macro_test.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(logger.OpenJsonSink(path).ok());

  MSV_LOG(Warn) << "macro message " << 123;
  logger.CloseJsonSink();

  std::vector<Json> lines = ReadJsonLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].Find("msg")->AsString(), "macro message 123");
  EXPECT_EQ(lines[0].Find("level")->AsString(), "warn");
  // Site is this file:line — enough to prove the macro carried both.
  EXPECT_NE(lines[0].Find("site")->AsString().find("obs_log_test"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(StructuredLoggerTest, LevelThresholdFiltersLogEvent) {
  LoggingTestGuard guard;
  StructuredLogger& logger = StructuredLogger::Global();
  const std::string path = TempPath("msv_obs_log_level_test.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(logger.OpenJsonSink(path).ok());

  SetLogLevel(LogLevel::kError);
  LogEvent(LogLevel::kInfo, "f.cc", 1, "dropped", {});
  LogEvent(LogLevel::kError, "f.cc", 2, "kept", {});
  logger.CloseJsonSink();

  std::vector<Json> lines = ReadJsonLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].Find("msg")->AsString(), "kept");
  std::remove(path.c_str());
}

TEST(StructuredLoggerTest, PerSiteRateLimitingSuppressesAndAccounts) {
  LoggingTestGuard guard;
  StructuredLogger& logger = StructuredLogger::Global();
  const std::string path = TempPath("msv_obs_log_rate_test.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(logger.OpenJsonSink(path).ok());
  logger.set_site_limit(3);  // 3 per site per second

  const uint64_t emitted_before = logger.emitted();
  const uint64_t suppressed_before = logger.suppressed();
  for (int i = 0; i < 10; ++i) {
    LogEvent(LogLevel::kWarn, "flood.cc", 7, "flood", {});
  }
  // A different site is not affected by flood.cc's window.
  LogEvent(LogLevel::kWarn, "calm.cc", 1, "calm", {});
  logger.CloseJsonSink();

  EXPECT_EQ(logger.emitted() - emitted_before, 4u);     // 3 flood + 1 calm
  EXPECT_EQ(logger.suppressed() - suppressed_before, 7u);
  std::vector<Json> lines = ReadJsonLines(path);
  ASSERT_EQ(lines.size(), 4u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// SlowQueryLog ring
// ---------------------------------------------------------------------------

SlowQueryRecord MakeRecord(uint64_t wall_us) {
  SlowQueryRecord rec;
  rec.ts_us = 1000 + wall_us;
  rec.wall_us = wall_us;
  rec.statement = "estimate";
  rec.session = "test";
  return rec;
}

TEST(SlowQueryLogTest, RingEvictsOldestAtCapacity) {
  LoggingTestGuard guard;
  SlowQueryLog log(/*capacity=*/3);
  for (uint64_t w = 1; w <= 5; ++w) log.Record(MakeRecord(w));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_recorded(), 5u);
  std::vector<SlowQueryRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Oldest-first: 1 and 2 were evicted.
  EXPECT_EQ(snap[0].wall_us, 3u);
  EXPECT_EQ(snap[1].wall_us, 4u);
  EXPECT_EQ(snap[2].wall_us, 5u);
}

TEST(SlowQueryLogTest, ShrinkingCapacityDropsOldest) {
  LoggingTestGuard guard;
  SlowQueryLog log(/*capacity=*/8);
  for (uint64_t w = 1; w <= 6; ++w) log.Record(MakeRecord(w));
  log.set_capacity(2);
  std::vector<SlowQueryRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].wall_us, 5u);
  EXPECT_EQ(snap[1].wall_us, 6u);
}

TEST(SlowQueryLogTest, ArmFromEnvParsesThreshold) {
  LoggingTestGuard guard;
  SlowQueryLog log;
  EXPECT_FALSE(log.armed());

  setenv("MSV_SLOW_QUERY_US", "2500", 1);
  log.ArmFromEnv();
  EXPECT_TRUE(log.armed());
  EXPECT_EQ(log.threshold_us(), 2500u);

  setenv("MSV_SLOW_QUERY_US", "0", 1);
  log.ArmFromEnv();
  EXPECT_FALSE(log.armed());

  unsetenv("MSV_SLOW_QUERY_US");
  log.set_threshold_us(10);
  log.ArmFromEnv();  // unset leaves the in-process threshold alone
  EXPECT_EQ(log.threshold_us(), 10u);
}

TEST(SlowQueryLogTest, ToJsonCarriesAllFields) {
  LoggingTestGuard guard;
  SlowQueryLog log;
  SlowQueryRecord rec = MakeRecord(4200);
  rec.disk_us = 3100;
  rec.pages = 17;
  rec.samples = 500;
  rec.ci_half_width = 1.25;
  rec.ok = false;
  rec.error = "NotFound: no view";
  log.Record(rec);

  Json arr = log.ToJson();
  ASSERT_EQ(arr.size(), 1u);
  const Json& j = arr.at(0);
  EXPECT_DOUBLE_EQ(j.Find("wall_us")->AsNumber(), 4200.0);
  EXPECT_DOUBLE_EQ(j.Find("disk_us")->AsNumber(), 3100.0);
  EXPECT_DOUBLE_EQ(j.Find("pages")->AsNumber(), 17.0);
  EXPECT_DOUBLE_EQ(j.Find("samples")->AsNumber(), 500.0);
  EXPECT_DOUBLE_EQ(j.Find("ci_half_width")->AsNumber(), 1.25);
  EXPECT_EQ(j.Find("statement")->AsString(), "estimate");
  EXPECT_FALSE(j.Find("ok")->AsBool());
  EXPECT_EQ(j.Find("error")->AsString(), "NotFound: no view");
  // The record round-trips through the JSON-lines transport msv_top tails.
  EXPECT_EQ(ValueOrDie(Json::Parse(arr.Dump())), arr);
}

// ---------------------------------------------------------------------------
// Executor integration: statements land in the global slow-query log
// ---------------------------------------------------------------------------

TEST(SlowQueryIntegrationTest, ExplainAnalyzeStatementIsCaptured) {
  LoggingTestGuard guard;
  SlowQueryLog& slow = SlowQueryLog::Global();
  slow.Clear();
  slow.set_threshold_us(1);  // everything measurable is "slow"
  SetThreadLabel("it-session");

  auto env = io::NewMemEnv();
  auto exec = ValueOrDie(query::Executor::Open(env.get()));
  ASSERT_TRUE(exec->Run("GENERATE TABLE sale ROWS 20000 SEED 7;"
                        " CREATE MATERIALIZED SAMPLE VIEW v AS SELECT *"
                        " FROM sale INDEX ON day;")
                  .ok());

  std::string out = ValueOrDie(
      exec->Run("EXPLAIN ANALYZE ESTIMATE AVG(amount) FROM v WHERE day"
                " BETWEEN 1000 AND 60000 SAMPLES 400;"));
  EXPECT_NE(out.find("EXPLAIN ANALYZE"), std::string::npos);

  // The recursion records the inner estimate AND the wrapping explain.
  std::vector<SlowQueryRecord> snap = slow.Snapshot();
  const SlowQueryRecord* estimate = nullptr;
  const SlowQueryRecord* explain = nullptr;
  for (const SlowQueryRecord& rec : snap) {
    if (rec.statement == "estimate") estimate = &rec;
    if (rec.statement == "explain") explain = &rec;
  }
  ASSERT_NE(estimate, nullptr);
  ASSERT_NE(explain, nullptr);

  EXPECT_TRUE(estimate->ok);
  EXPECT_GT(estimate->wall_us, 0u);
  EXPECT_GT(estimate->samples, 0u);         // ledger filled by ExecEstimate
  EXPECT_GT(estimate->ci_half_width, 0.0);  // CI reached the record
  EXPECT_EQ(estimate->session, "it-session");
  EXPECT_GT(estimate->ts_us, 0u);
  // The wrapping explain subsumes the inner statement's wall time.
  EXPECT_GE(explain->wall_us, estimate->wall_us);

  SetThreadLabel("");
}

TEST(SlowQueryIntegrationTest, DisarmedExecutorRecordsNothing) {
  LoggingTestGuard guard;
  SlowQueryLog& slow = SlowQueryLog::Global();
  slow.Clear();
  slow.set_threshold_us(0);

  const uint64_t before = slow.total_recorded();
  auto env = io::NewMemEnv();
  auto exec = ValueOrDie(query::Executor::Open(env.get()));
  ASSERT_TRUE(exec->Run("GENERATE TABLE t ROWS 5000 SEED 3;").ok());
  EXPECT_EQ(slow.size(), 0u);
  EXPECT_EQ(slow.total_recorded(), before);
}

TEST(SlowQueryIntegrationTest, ThresholdAboveStatementCostFiltersIt) {
  LoggingTestGuard guard;
  SlowQueryLog& slow = SlowQueryLog::Global();
  slow.Clear();
  // An hour-long threshold: armed (capture runs) but nothing qualifies.
  slow.set_threshold_us(3'600'000'000ull);

  const uint64_t before = slow.total_recorded();
  auto env = io::NewMemEnv();
  auto exec = ValueOrDie(query::Executor::Open(env.get()));
  ASSERT_TRUE(exec->Run("GENERATE TABLE t ROWS 5000 SEED 3;").ok());
  EXPECT_EQ(slow.total_recorded(), before);
}

TEST(SlowQueryIntegrationTest, FailedStatementRecordsError) {
  LoggingTestGuard guard;
  SlowQueryLog& slow = SlowQueryLog::Global();
  slow.Clear();
  slow.set_threshold_us(1);

  auto env = io::NewMemEnv();
  auto exec = ValueOrDie(query::Executor::Open(env.get()));
  EXPECT_FALSE(exec->Run("ESTIMATE AVG(amount) FROM missing_view WHERE"
                         " day BETWEEN 0 AND 1 SAMPLES 10;")
                   .ok());
  std::vector<SlowQueryRecord> snap = slow.Snapshot();
  ASSERT_FALSE(snap.empty());
  const SlowQueryRecord& rec = snap.back();
  EXPECT_EQ(rec.statement, "estimate");
  EXPECT_FALSE(rec.ok);
  EXPECT_FALSE(rec.error.empty());
}

}  // namespace
}  // namespace msv::obs
