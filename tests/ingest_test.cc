// The updatable view's LSM write path: memtable/WAL/run/manifest
// mechanics, crash recovery (power loss at every fault index loses no
// acknowledged insert and always leaves an openable tree), legacy-format
// migration, and TSan-exercised concurrent insert/sample/compaction.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/ingest.h"
#include "core/sample_view.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "obs/metrics.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "test_util.h"
#include "util/random.h"

namespace msv::core {
namespace {

using msv::testing::AllDistinct;
using msv::testing::MakeSale;
using msv::testing::ValueOrDie;
using storage::SaleRecord;

constexpr uint64_t kBase = 2000;

MaterializedSampleView::Options SmallViewOptions() {
  MaterializedSampleView::Options options;
  options.build.page_size = 4096;
  options.build.key_dims = 1;
  options.build.seed = 99;
  options.build.sort.memory_budget_bytes = 1 << 20;
  options.ingest.memtable_max_records = 100;
  // Deterministic tests drive flush/compaction explicitly.
  options.ingest.background_compaction = false;
  return options;
}

sampling::RangeQuery AllDays() {
  return sampling::RangeQuery::OneDim(-1.0, 2e9);
}

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    MakeSale(env_.get(), "sale", kBase, /*seed=*/5);
    layout_ = SaleRecord::Layout1D();
    options_ = SmallViewOptions();
    view_ = ValueOrDie(MaterializedSampleView::Create(env_.get(), "v", "sale",
                                                      layout_, options_));
  }

  /// Encodes `n` fresh records with row ids continuing after the base
  /// and DAY values inside [lo, hi).
  std::string MakeInserts(uint64_t n, double lo = 0.0, double hi = 100000.0,
                          uint64_t seed = 17) {
    Pcg64 rng(seed + next_insert_id_);
    std::string out;
    char buf[SaleRecord::kSize];
    for (uint64_t i = 0; i < n; ++i) {
      SaleRecord rec;
      rec.day = rng.DoubleInRange(lo, hi);
      rec.amount = rng.DoubleInRange(0, 10000);
      rec.row_id = kBase + next_insert_id_++;
      rec.EncodeTo(buf);
      out.append(buf, sizeof(buf));
    }
    return out;
  }

  /// Inserts `total` records in `chunk`-sized Insert() calls, so the
  /// memtable threshold is crossed mid-stream like a live workload.
  void InsertChunked(uint64_t total, uint64_t chunk = 50) {
    while (total > 0) {
      uint64_t n = std::min(total, chunk);
      std::string batch = MakeInserts(n);
      MSV_ASSERT_OK(view_->Insert(batch.data(), n));
      total -= n;
    }
  }

  std::vector<uint64_t> DrainAll() {
    auto sampler = ValueOrDie(view_->Sample(AllDays(), ++seed_));
    return msv::testing::DrainRowIds(sampler.get());
  }

  /// All row ids the view should contain: the base plus every insert
  /// made through MakeInserts so far.
  std::set<uint64_t> ExpectedIds() const {
    std::set<uint64_t> ids;
    for (uint64_t i = 0; i < kBase + next_insert_id_; ++i) ids.insert(i);
    return ids;
  }

  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  MaterializedSampleView::Options options_;
  std::unique_ptr<MaterializedSampleView> view_;
  uint64_t next_insert_id_ = 0;
  uint64_t seed_ = 100;
};

// ---------------------------------------------------------------------------
// Memtable / flush / run mechanics
// ---------------------------------------------------------------------------

TEST_F(IngestTest, MemtableAbsorbsInsertsUntilThreshold) {
  std::string batch = MakeInserts(99);
  MSV_ASSERT_OK(view_->Insert(batch.data(), 99));
  EXPECT_EQ(view_->memtable_records(), 99u);
  EXPECT_EQ(view_->run_count(), 0u);
  EXPECT_EQ(view_->delta_records(), 99u);
}

TEST_F(IngestTest, FlushAtThresholdCreatesSortedRun) {
  InsertChunked(250);
  // 250 inserts with a 100-record memtable: two flushes happened inline.
  EXPECT_EQ(view_->run_count(), 2u);
  EXPECT_EQ(view_->memtable_records(), 50u);
  EXPECT_EQ(view_->delta_records(), 250u);

  // Runs are sorted heap files named by their memtable id.
  bool found_run = false;
  for (const std::string& f : ValueOrDie(env_->ListFiles())) {
    if (f.rfind("v.run.", 0) != 0) continue;
    found_run = true;
    auto run = ValueOrDie(storage::HeapFile::Open(env_.get(), f));
    EXPECT_EQ(run->record_count(), 100u);
    auto scanner = run->NewScanner();
    double prev = -1.0;
    for (;;) {
      const char* rec = ValueOrDie(scanner.Next());
      if (rec == nullptr) break;
      double day = layout_.Key(rec, 0);
      EXPECT_GE(day, prev);
      prev = day;
    }
  }
  EXPECT_TRUE(found_run);
}

TEST_F(IngestTest, UnifiedDrainCoversMemtableRunsAndTree) {
  InsertChunked(250);
  std::vector<uint64_t> ids = DrainAll();
  EXPECT_TRUE(AllDistinct(ids));
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()), ExpectedIds());
}

TEST_F(IngestTest, CompactFoldsRunsIntoTheTree) {
  InsertChunked(250);
  MSV_ASSERT_OK(view_->Compact());
  // The two full runs are folded; the memtable tail is untouched.
  EXPECT_EQ(view_->base_records(), kBase + 200);
  EXPECT_EQ(view_->run_count(), 0u);
  EXPECT_EQ(view_->memtable_records(), 50u);
  std::vector<uint64_t> ids = DrainAll();
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()), ExpectedIds());
}

TEST_F(IngestTest, RebuildFoldsEverythingAndCleansFiles) {
  InsertChunked(230);
  MSV_ASSERT_OK(view_->Rebuild());
  EXPECT_EQ(view_->base_records(), kBase + 230);
  EXPECT_EQ(view_->delta_records(), 0u);
  EXPECT_EQ(view_->run_count(), 0u);
  // Folded runs and dead WALs are deleted; exactly one base generation
  // and one (empty) live WAL remain.
  size_t bases = 0, runs = 0, wals = 0;
  for (const std::string& f : ValueOrDie(env_->ListFiles())) {
    if (f.rfind("v.base.g", 0) == 0) ++bases;
    if (f.rfind("v.run.", 0) == 0) ++runs;
    if (f.rfind("v.wal.", 0) == 0) ++wals;
  }
  EXPECT_EQ(bases, 1u);
  EXPECT_EQ(runs, 0u);
  EXPECT_EQ(wals, 1u);
  std::vector<uint64_t> ids = DrainAll();
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()), ExpectedIds());
}

TEST_F(IngestTest, InsertsDuringSealedCompactionAreNotLost) {
  // The lost-update window of the old Rebuild(): records arriving after
  // the fold began were silently dropped. Under the LSM design the run
  // set is sealed at compaction start; later inserts land in the live
  // memtable and survive.
  std::string first = MakeInserts(150);
  MSV_ASSERT_OK(view_->Insert(first.data(), 150));
  MSV_ASSERT_OK(view_->Flush());  // seals everything so far into runs
  std::string late = MakeInserts(60);
  MSV_ASSERT_OK(view_->Insert(late.data(), 60));  // arrives "mid-fold"
  MSV_ASSERT_OK(view_->Compact());
  EXPECT_EQ(view_->base_records(), kBase + 150);
  EXPECT_EQ(view_->memtable_records(), 60u);
  std::vector<uint64_t> ids = DrainAll();
  EXPECT_TRUE(AllDistinct(ids));
  EXPECT_EQ(ids.size(), kBase + 210);
}

TEST_F(IngestTest, SamplerSnapshotSurvivesCompaction) {
  std::string batch = MakeInserts(150);
  MSV_ASSERT_OK(view_->Insert(batch.data(), 150));
  auto sampler = ValueOrDie(view_->Sample(AllDays(), 7));
  std::vector<uint64_t> head = msv::testing::TakeRowIds(sampler.get(), 100);
  // Swap the base generation under the live sampler; the old tree file
  // is deleted, but the sampler's shared snapshot keeps streaming.
  MSV_ASSERT_OK(view_->Rebuild());
  std::vector<uint64_t> tail = msv::testing::DrainRowIds(sampler.get());
  std::vector<uint64_t> all = head;
  all.insert(all.end(), tail.begin(), tail.end());
  EXPECT_TRUE(AllDistinct(all));
  EXPECT_EQ(all.size(), kBase + 150);
}

// ---------------------------------------------------------------------------
// Sampler exact-count override
// ---------------------------------------------------------------------------

TEST_F(IngestTest, ExactBaseCountZeroSkipsBaseIo) {
  // A caller who *knows* the base matches nothing can finally say so:
  // exact 0 (distinct from "no override") suppresses all base I/O.
  std::string batch = MakeInserts(50, 200000.0, 300000.0);
  MSV_ASSERT_OK(view_->Insert(batch.data(), 50));
  auto q = sampling::RangeQuery::OneDim(200000.0, 300000.0);  // delta-only
  auto sampler = ValueOrDie(view_->Sample(q, 7, /*exact_base_count=*/0));
  std::vector<uint64_t> ids = msv::testing::DrainRowIds(sampler.get());
  EXPECT_EQ(ids.size(), 50u);
  EXPECT_EQ(sampler->base_leaves_read(), 0u);

  // Without the override the estimator path still probes the tree.
  auto probing = ValueOrDie(view_->Sample(q, 8));
  std::vector<uint64_t> ids2 = msv::testing::DrainRowIds(probing.get());
  EXPECT_EQ(ids2.size(), 50u);
}

TEST_F(IngestTest, ExactBaseCountMakesFullDrainExact) {
  std::string batch = MakeInserts(120);
  MSV_ASSERT_OK(view_->Insert(batch.data(), 120));
  auto sampler =
      ValueOrDie(view_->Sample(AllDays(), 9, /*exact_base_count=*/kBase));
  std::vector<uint64_t> ids = msv::testing::DrainRowIds(sampler.get());
  EXPECT_TRUE(AllDistinct(ids));
  EXPECT_EQ(ids.size(), kBase + 120);
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

TEST_F(IngestTest, ManifestRoundTrips) {
  ViewManifest m;
  m.base_file = "v.base.g7";
  m.next_id = 12;
  m.flushed_through = 9;
  m.runs = {10, 11};
  MSV_ASSERT_OK(SaveManifest(env_.get(), "probe.manifest", m));
  ViewManifest loaded =
      ValueOrDie(LoadManifest(env_.get(), "probe.manifest"));
  EXPECT_EQ(loaded.base_file, m.base_file);
  EXPECT_EQ(loaded.next_id, m.next_id);
  EXPECT_EQ(loaded.flushed_through, m.flushed_through);
  EXPECT_EQ(loaded.runs, m.runs);
}

TEST_F(IngestTest, CorruptManifestIsRejected) {
  // Flip one payload byte; the masked CRC must catch it.
  auto file = ValueOrDie(env_->OpenFile("v.manifest", /*create=*/false));
  uint64_t size = ValueOrDie(file->Size());
  std::string contents(size, '\0');
  MSV_ASSERT_OK(file->ReadExact(0, size, contents.data()));
  contents[size - 2] ^= 0x40;
  MSV_ASSERT_OK(file->Write(0, contents.data(), contents.size()));
  auto loaded = LoadManifest(env_.get(), "v.manifest");
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
  view_.reset();
  auto reopened =
      MaterializedSampleView::Open(env_.get(), "v", layout_, options_);
  EXPECT_FALSE(reopened.ok());
}

// ---------------------------------------------------------------------------
// Reopen / recovery / migration
// ---------------------------------------------------------------------------

TEST_F(IngestTest, ReopenReplaysWalIntoMemtable) {
  std::string batch = MakeInserts(70);
  MSV_ASSERT_OK(view_->Insert(batch.data(), 70));
  view_.reset();
  view_ = ValueOrDie(
      MaterializedSampleView::Open(env_.get(), "v", layout_, options_));
  EXPECT_EQ(view_->memtable_records(), 70u);
  std::vector<uint64_t> ids = DrainAll();
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()), ExpectedIds());

  // The replayed memtable keeps accepting inserts without id collisions.
  std::string more = MakeInserts(40);
  MSV_ASSERT_OK(view_->Insert(more.data(), 40));
  ids = DrainAll();
  EXPECT_TRUE(AllDistinct(ids));
  EXPECT_EQ(ids.size(), kBase + 110);
}

TEST_F(IngestTest, ReopenSeesRunsAndMemtable) {
  InsertChunked(250);
  view_.reset();
  view_ = ValueOrDie(
      MaterializedSampleView::Open(env_.get(), "v", layout_, options_));
  EXPECT_EQ(view_->run_count(), 2u);
  EXPECT_EQ(view_->memtable_records(), 50u);
  std::vector<uint64_t> ids = DrainAll();
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()), ExpectedIds());
}

TEST_F(IngestTest, TornWalTailIsDropped) {
  std::string batch = MakeInserts(30);
  MSV_ASSERT_OK(view_->Insert(batch.data(), 30));
  view_.reset();
  // Simulate a torn append: a partial record at the WAL tail.
  std::string wal_name;
  for (const std::string& f : ValueOrDie(env_->ListFiles())) {
    if (f.rfind("v.wal.", 0) == 0) wal_name = f;
  }
  ASSERT_FALSE(wal_name.empty());
  auto wal = ValueOrDie(env_->OpenFile(wal_name, /*create=*/false));
  uint64_t size = ValueOrDie(wal->Size());
  const char torn[] = "torn-partial-record";
  MSV_ASSERT_OK(wal->Write(size, torn, sizeof(torn)));
  view_ = ValueOrDie(
      MaterializedSampleView::Open(env_.get(), "v", layout_, options_));
  EXPECT_EQ(view_->memtable_records(), 30u);  // whole records only
}

TEST_F(IngestTest, InsertAfterTornTailRecoveryStaysAligned) {
  // A torn tail must be physically truncated at recovery, not just
  // skipped by replay: otherwise post-recovery inserts append after the
  // garbage bytes and a *second* replay reads every later record at a
  // misaligned offset, corrupting acknowledged inserts.
  std::string batch = MakeInserts(30);
  MSV_ASSERT_OK(view_->Insert(batch.data(), 30));
  view_.reset();
  std::string wal_name;
  for (const std::string& f : ValueOrDie(env_->ListFiles())) {
    if (f.rfind("v.wal.", 0) == 0) wal_name = f;
  }
  ASSERT_FALSE(wal_name.empty());
  {
    auto wal = ValueOrDie(env_->OpenFile(wal_name, /*create=*/false));
    uint64_t size = ValueOrDie(wal->Size());
    const char torn[] = "torn-partial-record";
    MSV_ASSERT_OK(wal->Write(size, torn, sizeof(torn)));
  }

  view_ = ValueOrDie(
      MaterializedSampleView::Open(env_.get(), "v", layout_, options_));
  EXPECT_EQ(view_->memtable_records(), 30u);
  std::string more = MakeInserts(25);
  MSV_ASSERT_OK(view_->Insert(more.data(), 25));

  // Second crash/replay: all 55 records must come back whole and intact.
  view_.reset();
  view_ = ValueOrDie(
      MaterializedSampleView::Open(env_.get(), "v", layout_, options_));
  EXPECT_EQ(view_->memtable_records(), 55u);
  std::vector<uint64_t> ids = DrainAll();
  EXPECT_TRUE(AllDistinct(ids));
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()), ExpectedIds());
}

TEST_F(IngestTest, LegacyViewLayoutMigratesOnOpen) {
  // Fabricate the pre-manifest format: `<name>.base` tree + `<name>.delta`
  // heap file, no manifest.
  AceBuildOptions build = options_.build;
  MSV_ASSERT_OK(BuildAceTree(env_.get(), "sale", "legacy.base", layout_,
                             build));
  std::string delta_records = MakeInserts(40);
  {
    auto writer = ValueOrDie(storage::HeapFileWriter::Create(
        env_.get(), "legacy.delta", layout_.record_size));
    for (size_t i = 0; i < 40; ++i) {
      MSV_ASSERT_OK(
          writer->Append(delta_records.data() + i * layout_.record_size));
    }
    MSV_ASSERT_OK(writer->Finish());
  }
  auto legacy = ValueOrDie(
      MaterializedSampleView::Open(env_.get(), "legacy", layout_, options_));
  EXPECT_EQ(legacy->base_records(), kBase);
  EXPECT_EQ(legacy->delta_records(), 40u);
  EXPECT_TRUE(ValueOrDie(env_->FileExists("legacy.manifest")));
  // The delta was folded into a run; the old side file is gone.
  EXPECT_FALSE(ValueOrDie(env_->FileExists("legacy.delta")));
  auto sampler = ValueOrDie(legacy->Sample(AllDays(), 3));
  std::vector<uint64_t> ids = msv::testing::DrainRowIds(sampler.get());
  EXPECT_TRUE(AllDistinct(ids));
  EXPECT_EQ(ids.size(), kBase + 40);
}

TEST_F(IngestTest, DropFilesRemovesEveryViewFile) {
  InsertChunked(250);
  view_.reset();
  MSV_ASSERT_OK(MaterializedSampleView::DropFiles(env_.get(), "v"));
  for (const std::string& f : ValueOrDie(env_->ListFiles())) {
    EXPECT_EQ(f.rfind("v.", 0), std::string::npos) << f;
  }
}

// ---------------------------------------------------------------------------
// Failed-flush isolation (fault injection)
// ---------------------------------------------------------------------------

TEST(IngestFaultTest, InlineFlushFailureDoesNotFailAcknowledgedInsert) {
  auto inner = io::NewMemEnv();
  MakeSale(inner.get(), "sale", 400, /*seed=*/7);
  const storage::RecordLayout layout = SaleRecord::Layout1D();
  MaterializedSampleView::Options options = SmallViewOptions();
  options.ingest.memtable_max_records = 64;
  {
    // Create durably, then reopen behind the fault env.
    auto created = ValueOrDie(MaterializedSampleView::Create(
        inner.get(), "v", "sale", layout, options));
  }
  auto fenv = io::NewFaultInjectionEnv(inner.get());
  auto view = ValueOrDie(
      MaterializedSampleView::Open(fenv.get(), "v", layout, options));

  auto make_batch = [&](uint64_t n, uint64_t first) {
    Pcg64 rng(19 + first);
    std::string out;
    char buf[SaleRecord::kSize];
    for (uint64_t i = 0; i < n; ++i) {
      SaleRecord rec;
      rec.day = rng.DoubleInRange(0, 100000.0);
      rec.amount = rng.DoubleInRange(0, 10000.0);
      rec.row_id = 400 + first + i;
      rec.EncodeTo(buf);
      out.append(buf, sizeof(buf));
    }
    return out;
  };

  // Fill to one record short of the flush threshold.
  std::string head = make_batch(63, 0);
  MSV_ASSERT_OK(view->Insert(head.data(), 63));
  EXPECT_EQ(view->run_count(), 0u);

  // The threshold-crossing insert's WAL append is ops N (write) and N+1
  // (sync); the one-shot fault lands on the first operation of the
  // inline flush. The records are WAL-durable by then, so the insert is
  // acknowledged even though the flush dies.
  auto* flush_errors =
      obs::MetricRegistry::Global().GetCounter("ingest.flush_errors");
  const uint64_t errors_before = flush_errors->Value();
  fenv->ArmFault(fenv->op_count() + 2, io::FaultMode::kError,
                 /*sticky=*/false);
  std::string tail = make_batch(1, 63);
  MSV_ASSERT_OK(view->Insert(tail.data(), 1));
  EXPECT_TRUE(fenv->fault_fired());
  EXPECT_EQ(flush_errors->Value(), errors_before + 1);
  EXPECT_EQ(view->memtable_records(), 64u);  // flush backed out whole
  EXPECT_EQ(view->run_count(), 0u);

  // The view stays fully usable — the live WAL still accepts inserts,
  // and the flush retries at the next threshold crossing and succeeds.
  std::string more = make_batch(5, 64);
  MSV_ASSERT_OK(view->Insert(more.data(), 5));
  EXPECT_EQ(view->memtable_records(), 0u);
  EXPECT_EQ(view->run_count(), 1u);

  auto sampler = ValueOrDie(view->Sample(AllDays(), 77));
  std::vector<uint64_t> ids = msv::testing::DrainRowIds(sampler.get());
  EXPECT_TRUE(AllDistinct(ids));
  EXPECT_EQ(ids.size(), 400u + 69u);
}

// ---------------------------------------------------------------------------
// Concurrency (runs under TSan via the `IngestConcurrency` CI regex)
// ---------------------------------------------------------------------------

TEST(IngestConcurrencyTest, ConcurrentInsertSampleCompact) {
  auto env = io::NewMemEnv();
  MakeSale(env.get(), "sale", kBase, /*seed=*/5);
  const storage::RecordLayout layout = SaleRecord::Layout1D();
  MaterializedSampleView::Options options = SmallViewOptions();
  options.ingest.memtable_max_records = 200;
  options.ingest.compact_trigger_runs = 2;
  options.ingest.background_compaction = true;
  options.ingest.compact_poll_ms = 5;
  auto view = ValueOrDie(MaterializedSampleView::Create(env.get(), "v",
                                                        "sale", layout,
                                                        options));

  constexpr uint64_t kBatches = 40;
  constexpr uint64_t kPerBatch = 50;
  std::atomic<bool> writer_done{false};

  std::thread writer([&] {
    Pcg64 rng(23);
    char buf[SaleRecord::kSize];
    uint64_t next = 0;
    for (uint64_t b = 0; b < kBatches; ++b) {
      std::string batch;
      for (uint64_t i = 0; i < kPerBatch; ++i) {
        SaleRecord rec;
        rec.day = rng.DoubleInRange(0, 100000.0);
        rec.amount = rng.DoubleInRange(0, 10000.0);
        rec.row_id = kBase + next++;
        rec.EncodeTo(buf);
        batch.append(buf, sizeof(buf));
      }
      MSV_EXPECT_OK(view->Insert(batch.data(), kPerBatch));
    }
    writer_done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      uint64_t seed = 1000 + static_cast<uint64_t>(t);
      while (!writer_done.load()) {
        auto sampler = ValueOrDie(view->Sample(AllDays(), ++seed));
        std::vector<uint64_t> ids =
            msv::testing::TakeRowIds(sampler.get(), 200);
        EXPECT_TRUE(AllDistinct(ids));
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();

  // Quiesce and recount: every acknowledged insert is present once.
  MSV_ASSERT_OK(view->Rebuild());
  EXPECT_EQ(view->base_records(), kBase + kBatches * kPerBatch);
  auto sampler = ValueOrDie(view->Sample(AllDays(), 424242));
  std::vector<uint64_t> ids = msv::testing::DrainRowIds(sampler.get());
  EXPECT_TRUE(AllDistinct(ids));
  EXPECT_EQ(ids.size(), kBase + kBatches * kPerBatch);
}

// ---------------------------------------------------------------------------
// Crash-point sweep (the `IngestCrash` fault-injection CI regex)
// ---------------------------------------------------------------------------

/// One sweep iteration: a durable store (sale relation + freshly created
/// view, both written before the crash window opens) wrapped in a fault
/// env.
struct CrashFixture {
  std::unique_ptr<io::Env> inner;
  std::unique_ptr<io::FaultInjectionEnv> env;
  storage::RecordLayout layout = SaleRecord::Layout1D();
};

CrashFixture FreshCrashFixture() {
  CrashFixture f;
  f.inner = io::NewMemEnv();
  MakeSale(f.inner.get(), "sale", 400, /*seed=*/7);
  MaterializedSampleView::Options options = SmallViewOptions();
  options.build.page_size = 512;
  options.ingest.memtable_max_records = 64;
  {
    auto view = ValueOrDie(MaterializedSampleView::Create(
        f.inner.get(), "v", "sale", f.layout, options));
    EXPECT_EQ(view->base_records(), 400u);
  }
  f.env = io::NewFaultInjectionEnv(f.inner.get());
  return f;
}

/// The faulted workload: open the view, insert batches (tracking which
/// were acknowledged), flush, insert more, rebuild, insert again. Any
/// step may die on the armed fault; `acked` reflects only OK returns.
Status RunCrashWorkload(io::Env* env, const storage::RecordLayout& layout,
                        std::vector<std::pair<uint64_t, uint64_t>>* acked) {
  MaterializedSampleView::Options options = SmallViewOptions();
  options.build.page_size = 512;
  options.ingest.memtable_max_records = 64;
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<MaterializedSampleView> view,
                       MaterializedSampleView::Open(env, "v", layout,
                                                    options));
  Pcg64 rng(31);
  uint64_t next = 400;
  auto insert_batch = [&](uint64_t n) -> Status {
    std::string batch;
    char buf[SaleRecord::kSize];
    uint64_t first = next;
    for (uint64_t i = 0; i < n; ++i) {
      SaleRecord rec;
      rec.day = rng.DoubleInRange(0, 100000.0);
      rec.amount = rng.DoubleInRange(0, 10000.0);
      rec.row_id = next++;
      rec.EncodeTo(buf);
      batch.append(buf, sizeof(buf));
    }
    MSV_RETURN_IF_ERROR(view->Insert(batch.data(), n));
    acked->emplace_back(first, next);  // only on OK: acknowledged
    return Status::OK();
  };
  for (int b = 0; b < 3; ++b) MSV_RETURN_IF_ERROR(insert_batch(30));
  MSV_RETURN_IF_ERROR(view->Flush());
  for (int b = 0; b < 2; ++b) MSV_RETURN_IF_ERROR(insert_batch(25));
  MSV_RETURN_IF_ERROR(view->Rebuild());
  return insert_batch(20);
}

TEST(IngestCrashTest, PowerLossAtEveryFaultIndexLosesNoAcknowledgedInsert) {
  // Fault-free reference: op count and final totals.
  int64_t total_ops = 0;
  {
    CrashFixture f = FreshCrashFixture();
    std::vector<std::pair<uint64_t, uint64_t>> acked;
    MSV_ASSERT_OK(RunCrashWorkload(f.env.get(), f.layout, &acked));
    total_ops = f.env->op_count();
    ASSERT_EQ(acked.size(), 6u);
  }
  ASSERT_GT(total_ops, 0);

  // Full sweep with MSV_SLOW_TESTS (the fault-injection CI job); a
  // strided ~120-point sweep plus the commit-heavy tail otherwise.
  std::vector<int64_t> points;
  if (std::getenv("MSV_SLOW_TESTS") != nullptr) {
    for (int64_t k = 0; k < total_ops; ++k) points.push_back(k);
  } else {
    const int64_t stride = std::max<int64_t>(1, total_ops / 120);
    for (int64_t k = 0; k < total_ops; k += stride) points.push_back(k);
    for (int64_t k = std::max<int64_t>(0, total_ops - 8); k < total_ops; ++k) {
      points.push_back(k);
    }
  }

  for (int64_t k : points) {
    SCOPED_TRACE("fault index " + std::to_string(k));
    CrashFixture f = FreshCrashFixture();
    f.env->ArmFault(k, io::FaultMode::kError, /*sticky=*/true);
    std::vector<std::pair<uint64_t, uint64_t>> acked;
    RunCrashWorkload(f.env.get(), f.layout, &acked)
        .IgnoreError();  // expected to die at the fault
    f.env->ClearFault();
    MSV_ASSERT_OK(f.env->DropUnsyncedData());  // power loss

    // Recovery must always succeed: either the old or the new tree
    // generation is openable, and the WALs replay.
    MaterializedSampleView::Options options = SmallViewOptions();
    options.build.page_size = 512;
    options.ingest.memtable_max_records = 64;
    auto reopened = MaterializedSampleView::Open(f.env.get(), "v",
                                                 SaleRecord::Layout1D(),
                                                 options);
    MSV_ASSERT_OK(reopened.status());
    auto view = std::move(reopened).value();
    auto report = view->tree()->CheckInvariants();
    ASSERT_TRUE(report.ok()) << report.ToString();

    auto sampler =
        ValueOrDie(view->Sample(AllDays(), 1234 + static_cast<uint64_t>(k)));
    std::vector<uint64_t> ids = msv::testing::DrainRowIds(sampler.get());
    ASSERT_TRUE(AllDistinct(ids));
    std::set<uint64_t> recovered(ids.begin(), ids.end());

    // Base relation: always fully present.
    for (uint64_t rid = 0; rid < 400; ++rid) {
      ASSERT_EQ(recovered.count(rid), 1u) << "lost base row " << rid;
    }
    // Every acknowledged insert survived the crash.
    for (const auto& [lo, hi] : acked) {
      for (uint64_t rid = lo; rid < hi; ++rid) {
        ASSERT_EQ(recovered.count(rid), 1u) << "lost acked row " << rid;
      }
    }
    // Nothing outside base ∪ attempted inserts, and nothing twice
    // (AllDistinct above): an unacknowledged tail may legitimately be
    // present (durable in the WAL before the error surfaced), but no
    // record is ever double-counted.
    for (uint64_t rid : recovered) {
      ASSERT_LT(rid, 400u + 160u) << "phantom row " << rid;
    }
  }
}

}  // namespace
}  // namespace msv::core
