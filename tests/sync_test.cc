// Runtime semantics of the capability-annotated sync wrappers
// (src/util/sync.h). The compile-time side — that Clang's thread-safety
// analysis rejects discipline violations — is covered by the negative
// compilation harness (thread_safety_compile_test.cmake); here we check
// the wrappers actually lock, under TSan in the sanitizer CI jobs.

#include "util/sync.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace msv {
namespace {

TEST(SyncTest, MutexProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;  // intentionally non-atomic: the lock is the only guard
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SyncTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  bool acquired = true;
  std::thread peer([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  peer.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();

  std::thread peer2([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  peer2.join();
  EXPECT_TRUE(acquired);
}

TEST(SyncTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  std::atomic<int> readers_inside{0};
  std::atomic<int> max_readers{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      ReaderLock lock(mu);
      int now = ++readers_inside;
      int seen = max_readers.load();
      while (now > seen && !max_readers.compare_exchange_weak(seen, now)) {
      }
      // Park long enough that the readers genuinely overlap.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      --readers_inside;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(max_readers.load(), 1);
}

TEST(SyncTest, SharedMutexWriterExcludesReaders) {
  SharedMutex mu;
  int value = 0;  // non-atomic: guarded by mu
  mu.Lock();
  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    ReaderLock lock(mu);
    EXPECT_EQ(value, 42);  // must observe the write finished before Unlock
    reader_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(reader_done.load());  // reader blocked behind the writer
  value = 42;
  mu.Unlock();
  reader.join();
  EXPECT_TRUE(reader_done.load());
}

TEST(SyncTest, SharedTryLockSemantics) {
  SharedMutex mu;
  mu.LockShared();
  bool got_exclusive = true;
  bool got_shared = false;
  std::thread peer([&] {
    got_exclusive = mu.TryLock();
    if (got_exclusive) mu.Unlock();
    got_shared = mu.TryLockShared();
    if (got_shared) mu.UnlockShared();
  });
  peer.join();
  EXPECT_FALSE(got_exclusive);  // a reader blocks writers...
  EXPECT_TRUE(got_shared);      // ...but not other readers
  mu.UnlockShared();
}

TEST(SyncTest, CondVarProducerConsumer) {
  Mutex mu;
  CondVar cv;
  std::vector<int> queue;  // guarded by mu
  bool done = false;       // guarded by mu
  constexpr int kItems = 1000;

  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      MutexLock lock(mu);
      queue.push_back(i);
      cv.Signal();
    }
    MutexLock lock(mu);
    done = true;
    cv.SignalAll();
  });

  int next_expected = 0;
  {
    MutexLock lock(mu);
    for (;;) {
      while (queue.empty() && !done) {
        cv.Wait(mu);
      }
      for (int v : queue) {
        EXPECT_EQ(v, next_expected);
        ++next_expected;
      }
      queue.clear();
      if (done) break;
    }
  }
  producer.join();
  EXPECT_EQ(next_expected, kItems);
}

TEST(SyncTest, CondVarWaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  // Nobody signals: the wait must come back with a timeout, still holding
  // the lock (the scoped lock's destructor would abort otherwise).
  bool notified = cv.WaitFor(mu, std::chrono::milliseconds(10));
  EXPECT_FALSE(notified);
}

TEST(SyncTest, CondVarWaitForSeesSignal) {
  Mutex mu;
  CondVar cv;
  bool flag = false;  // guarded by mu
  std::thread signaler([&] {
    MutexLock lock(mu);
    flag = true;
    cv.Signal();
  });
  {
    MutexLock lock(mu);
    while (!flag) {
      // Generous timeout; loop handles both spurious wakeups and the
      // signaler losing the race to our first WaitFor.
      cv.WaitFor(mu, std::chrono::seconds(10));
    }
    EXPECT_TRUE(flag);
  }
  signaler.join();
}

TEST(SyncTest, AssertHeldIsANoOpWhenHeld) {
  Mutex mu;
  MutexLock lock(mu);
  mu.AssertHeld();  // purely an analysis-side assertion; must not block

  SharedMutex smu;
  ReaderLock rlock(smu);
  smu.AssertReaderHeld();
}

}  // namespace
}  // namespace msv
