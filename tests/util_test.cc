#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/reservoir.h"
#include "util/result.h"
#include "util/stats.h"
#include "util/status.h"

namespace msv {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::NotFound("x");
  Status copy = s;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_TRUE(s.IsNotFound());
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsNotFound());
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("").IsInternal());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Corruption("bad"); };
  auto wrapper = [&]() -> Status {
    MSV_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsCorruption());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(3), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(3), 3);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 5;
  };
  auto chain = [&](bool fail) -> Result<int> {
    MSV_ASSIGN_OR_RETURN(int v, produce(fail));
    return v + 1;
  };
  EXPECT_EQ(*chain(false), 6);
  EXPECT_TRUE(chain(true).status().IsInternal());
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(4);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 4);
}

// ---------------------------------------------------------------------------
// Coding
// ---------------------------------------------------------------------------

TEST(CodingTest, RoundTrips) {
  char buf[8];
  EncodeFixed32(buf, 0xdeadbeefu);
  EXPECT_EQ(DecodeFixed32(buf), 0xdeadbeefu);
  EncodeFixed64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(DecodeFixed64(buf), 0x0123456789abcdefULL);
  EncodeDouble(buf, -1234.5678);
  EXPECT_EQ(DecodeDouble(buf), -1234.5678);
}

// ---------------------------------------------------------------------------
// CRC-32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vectors.
  std::vector<char> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  std::vector<char> ones(32, static_cast<char>(0xff));
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62a8ab43u);
  const char* hello = "123456789";
  EXPECT_EQ(Crc32c(hello, 9), 0xe3069283u);
}

TEST(Crc32cTest, ExtendMatchesWhole) {
  const char* data = "the quick brown fox jumps over the lazy dog";
  size_t n = 44;
  uint32_t whole = Crc32c(data, n);
  uint32_t part = Crc32c(data, 10);
  // Extending is crc-of-concatenation only with the right chaining; our
  // API chains by passing the previous value.
  uint32_t chained = Crc32c(data + 10, n - 10, part);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data(100, 'x');
  uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 13) {
    std::string mutated = data;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x4);
    EXPECT_NE(Crc32c(mutated.data(), mutated.size()), clean) << i;
  }
}

// ---------------------------------------------------------------------------
// Pcg64
// ---------------------------------------------------------------------------

TEST(Pcg64Test, DeterministicForSeed) {
  Pcg64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Pcg64Test, DifferentSeedsDiffer) {
  Pcg64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(Pcg64Test, BelowStaysInBounds) {
  Pcg64 rng(99);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(Pcg64Test, BelowIsRoughlyUniform) {
  Pcg64 rng(7);
  const uint64_t kBuckets = 10;
  const int kDraws = 100000;
  std::vector<uint64_t> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(kBuckets)];
  std::vector<double> expected(kBuckets, kDraws / double(kBuckets));
  double stat = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(stat, kBuckets - 1), 1e-4) << "stat=" << stat;
}

TEST(Pcg64Test, NextDoubleInUnitInterval) {
  Pcg64 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg64Test, ForkedStreamsAreIndependentlySeeded) {
  Pcg64 parent(11);
  Pcg64 c1 = parent.Fork();
  Pcg64 c2 = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c1.Next() == c2.Next());
  EXPECT_LT(same, 2);
}

TEST(ShuffleTest, PermutesAllElements) {
  Pcg64 rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  Shuffle(&v, &rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ShuffleTest, EveryPositionUniform) {
  // Element 0's final position should be uniform over n slots.
  const size_t n = 6;
  const int trials = 60000;
  std::vector<uint64_t> counts(n, 0);
  Pcg64 rng(17);
  for (int t = 0; t < trials; ++t) {
    std::vector<int> v(n);
    for (size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i);
    Shuffle(&v, &rng);
    for (size_t i = 0; i < n; ++i) {
      if (v[i] == 0) ++counts[i];
    }
  }
  std::vector<double> expected(n, trials / double(n));
  double stat = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(stat, n - 1), 1e-4);
}

TEST(SampleWithoutReplacementTest, ProducesDistinctSubset) {
  Pcg64 rng(31);
  auto s = SampleWithoutReplacement(100, 30, &rng);
  EXPECT_EQ(s.size(), 30u);
  std::set<uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 30u);
  for (uint64_t v : s) EXPECT_LT(v, 100u);
}

TEST(SampleWithoutReplacementTest, FullRangeIsPermutation) {
  Pcg64 rng(32);
  auto s = SampleWithoutReplacement(50, 50, &rng);
  std::set<uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 50u);
}

TEST(SampleWithoutReplacementTest, MarginalsUniform) {
  Pcg64 rng(33);
  const uint64_t n = 20, k = 5;
  const int trials = 40000;
  std::vector<uint64_t> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    for (uint64_t v : SampleWithoutReplacement(n, k, &rng)) ++counts[v];
  }
  std::vector<double> expected(n, trials * double(k) / double(n));
  double stat = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(stat, n - 1), 1e-4);
}

// ---------------------------------------------------------------------------
// LazyShuffle
// ---------------------------------------------------------------------------

TEST(LazyShuffleTest, EmitsExactPermutation) {
  Pcg64 rng(8);
  LazyShuffle shuffle(1000);
  std::set<uint64_t> seen;
  while (!shuffle.done()) {
    uint64_t v = shuffle.Next(&rng);
    EXPECT_LT(v, 1000u);
    EXPECT_TRUE(seen.insert(v).second) << "duplicate " << v;
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(LazyShuffleTest, FirstDrawUniform) {
  const uint64_t n = 12;
  const int trials = 60000;
  std::vector<uint64_t> counts(n, 0);
  Pcg64 rng(9);
  for (int t = 0; t < trials; ++t) {
    LazyShuffle shuffle(n);
    ++counts[shuffle.Next(&rng)];
  }
  std::vector<double> expected(n, trials / double(n));
  double stat = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(stat, n - 1), 1e-4);
}

TEST(LazyShuffleTest, RemainingCountsDown) {
  Pcg64 rng(10);
  LazyShuffle shuffle(5);
  for (uint64_t r = 5; r > 0; --r) {
    EXPECT_EQ(shuffle.remaining(), r);
    shuffle.Next(&rng);
  }
  EXPECT_TRUE(shuffle.done());
}

// ---------------------------------------------------------------------------
// ReservoirSampler
// ---------------------------------------------------------------------------

TEST(ReservoirTest, ExhaustiveWhenStreamFits) {
  Pcg64 rng(1);
  ReservoirSampler<int> res(10);
  for (int i = 0; i < 7; ++i) res.Offer(i, &rng);
  EXPECT_TRUE(res.IsExhaustive());
  EXPECT_EQ(res.sample().size(), 7u);
  EXPECT_EQ(res.seen(), 7u);
}

TEST(ReservoirTest, CapacityBoundHolds) {
  Pcg64 rng(2);
  ReservoirSampler<int> res(16);
  for (int i = 0; i < 10000; ++i) res.Offer(i, &rng);
  EXPECT_FALSE(res.IsExhaustive());
  EXPECT_EQ(res.sample().size(), 16u);
  EXPECT_EQ(res.seen(), 10000u);
}

TEST(ReservoirTest, InclusionIsUniform) {
  // Each of n elements should end up in the reservoir with probability
  // k/n.
  const int n = 40, k = 8, trials = 40000;
  std::vector<uint64_t> counts(n, 0);
  Pcg64 rng(3);
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler<int> res(k);
    for (int i = 0; i < n; ++i) res.Offer(i, &rng);
    for (int v : res.sample()) ++counts[v];
  }
  std::vector<double> expected(n, trials * double(k) / double(n));
  double stat = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(stat, n - 1), 1e-4) << "stat=" << stat;
}

TEST(ReservoirTest, TakeSampleMoves) {
  Pcg64 rng(4);
  ReservoirSampler<std::unique_ptr<int>> res(2);
  res.Offer(std::make_unique<int>(1), &rng);
  res.Offer(std::make_unique<int>(2), &rng);
  auto out = std::move(res).TakeSample();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(*out[0] + *out[1], 3);
}

// ---------------------------------------------------------------------------
// RunningStats & distributions
// ---------------------------------------------------------------------------

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  Pcg64 rng(12);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble() * 10;
    (i < 400 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(StatsTest, NormalCriticalValues) {
  EXPECT_NEAR(NormalCriticalValue(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(NormalCriticalValue(0.99), 2.575829, 1e-4);
  EXPECT_NEAR(NormalCriticalValue(0.50), 0.674490, 1e-4);
}

TEST(StatsTest, NormalCdfSymmetry) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959964) - NormalCdf(-1.959964), 0.95, 1e-4);
}

TEST(StatsTest, ChiSquarePValueSanity) {
  // For k dof, mean of the distribution is k: p-value near 0.5-ish.
  double p = ChiSquarePValue(10.0, 10);
  EXPECT_GT(p, 0.3);
  EXPECT_LT(p, 0.7);
  // Huge statistic: essentially zero.
  EXPECT_LT(ChiSquarePValue(500.0, 10), 1e-6);
  // Tiny statistic: essentially one.
  EXPECT_GT(ChiSquarePValue(0.5, 10), 0.99);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, CountsAndQuantiles) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.count(), 100u);
  for (size_t b = 0; b < 10; ++b) EXPECT_EQ(h.bucket_count(b), 10u);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
}

TEST(HistogramTest, UnderOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);
  h.Add(100.0);
  h.Add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min_seen(), -1.0);
  EXPECT_EQ(h.max_seen(), 100.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

}  // namespace
}  // namespace msv
