// Negative-compilation cases for Clang's thread-safety analysis.
//
// Compiled by tests/thread_safety_compile_test.cmake with
//   -Wthread-safety -Wthread-safety-beta -Werror -fsyntax-only
// once with no defines (must compile CLEAN — the baseline proves the
// harness itself is well-formed) and once per MSV_NC_* macro (each must
// FAIL — proving the analysis actually rejects that discipline
// violation). A bad pattern that stops failing here means the annotation
// layer regressed and the CI thread-safety gate is no longer protecting
// the real locking code.
//
// Every case lives in an ordinary member or free function: constructors
// and destructors are exempt from the analysis, so a violation placed
// there would pass vacuously.

#include <cstdint>

#include "util/sync.h"

namespace msv {
namespace nc {

class Guarded {
 public:
  void IncrementLocked() {
    MutexLock lock(mu_);
    ++value_;
  }

  uint64_t ReadLocked() {
    MutexLock lock(mu_);
    return value_;
  }

#if defined(MSV_NC_UNGUARDED_READ)
  // BAD: reads a guarded field with no lock held.
  uint64_t ReadUnguarded() { return value_; }
#endif

#if defined(MSV_NC_UNGUARDED_WRITE)
  // BAD: writes a guarded field with no lock held.
  void WriteUnguarded() { value_ = 7; }
#endif

#if defined(MSV_NC_MISSING_UNLOCK)
  // BAD: returns while still holding mu_ (no matching release).
  void LockWithoutUnlock() {
    mu_.Lock();
    ++value_;
  }
#endif

#if defined(MSV_NC_UNLOCK_NOT_HELD)
  // BAD: releases a mutex this thread does not hold.
  void UnlockNotHeld() { mu_.Unlock(); }
#endif

#if defined(MSV_NC_DOUBLE_LOCK)
  // BAD: acquires a non-reentrant mutex twice.
  void DoubleLock() {
    MutexLock outer(mu_);
    MutexLock inner(mu_);  // deadlock at runtime; error at compile time
    ++value_;
  }
#endif

 private:
  Mutex mu_;
  uint64_t value_ MSV_GUARDED_BY(mu_) = 0;
};

class SharedGuarded {
 public:
  uint64_t ReadShared() {
    ReaderLock lock(mu_);
    return value_;
  }

  void WriteExclusive() {
    WriterLock lock(mu_);
    ++value_;
  }

#if defined(MSV_NC_WRITE_UNDER_SHARED)
  // BAD: writes a guarded field holding only the shared (reader) side.
  void WriteUnderSharedLock() {
    ReaderLock lock(mu_);
    ++value_;
  }
#endif

#if defined(MSV_NC_REQUIRES_NOT_HELD)
  // BAD: calls a REQUIRES method without the capability.
  void CallRequiresWithoutLock() { MutateLocked(); }
#endif

 private:
  void MutateLocked() MSV_REQUIRES(mu_) { ++value_; }

  SharedMutex mu_;
  uint64_t value_ MSV_GUARDED_BY(mu_) = 0;
};

// Anchor so the TU is never empty and the classes are odr-used.
inline uint64_t Touch() {
  Guarded g;
  g.IncrementLocked();
  SharedGuarded s;
  s.WriteExclusive();
  return g.ReadLocked() + s.ReadShared();
}

}  // namespace nc
}  // namespace msv
