#include <string>
#include <variant>

#include "gtest/gtest.h"
#include "io/env.h"
#include "query/executor.h"
#include "query/lexer.h"
#include "query/parser.h"
#include "test_util.h"

namespace msv::query {
namespace {

using msv::testing::ValueOrDie;

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = ValueOrDie(Tokenize("select SeLeCt FROM"));
  ASSERT_EQ(tokens.size(), 4u);  // 3 + end
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
  EXPECT_EQ(tokens[3].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersPreserveCase) {
  auto tokens = ValueOrDie(Tokenize("MySam my_col2"));
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "MySam");
  EXPECT_EQ(tokens[1].text, "my_col2");
}

TEST(LexerTest, Numbers) {
  auto tokens = ValueOrDie(Tokenize("42 3.5 -7 1e3"));
  EXPECT_DOUBLE_EQ(tokens[0].number, 42);
  EXPECT_DOUBLE_EQ(tokens[1].number, 3.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, -7);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1000);
}

TEST(LexerTest, SymbolsAndComments) {
  auto tokens = ValueOrDie(Tokenize("( * , ; -- ignored\n )"));
  EXPECT_TRUE(tokens[0].IsSymbol('('));
  EXPECT_TRUE(tokens[1].IsSymbol('*'));
  EXPECT_TRUE(tokens[2].IsSymbol(','));
  EXPECT_TRUE(tokens[3].IsSymbol(';'));
  EXPECT_TRUE(tokens[4].IsSymbol(')'));
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("SELECT @ FROM").ok());
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(ParserTest, CreateView) {
  auto stmt = ValueOrDie(ParseOne(
      "CREATE MATERIALIZED SAMPLE VIEW MySam AS SELECT * FROM SALE "
      "INDEX ON day;"));
  auto& create = std::get<CreateViewStmt>(stmt);
  EXPECT_EQ(create.view, "MySam");
  EXPECT_EQ(create.table, "SALE");
  ASSERT_EQ(create.index_columns.size(), 1u);
  EXPECT_EQ(create.index_columns[0], "day");
}

TEST(ParserTest, CreateViewMultiColumn) {
  auto stmt = ValueOrDie(ParseOne(
      "create materialized sample view s as select * from sale "
      "index on day, amount"));
  auto& create = std::get<CreateViewStmt>(stmt);
  ASSERT_EQ(create.index_columns.size(), 2u);
  EXPECT_EQ(create.index_columns[1], "amount");
}

TEST(ParserTest, SampleWithPredicatesAndLimit) {
  auto stmt = ValueOrDie(ParseOne(
      "SAMPLE FROM v WHERE day BETWEEN 10 AND 20 AND amount BETWEEN 1 AND 2 "
      "LIMIT 7;"));
  auto& sample = std::get<SampleStmt>(stmt);
  EXPECT_EQ(sample.view, "v");
  ASSERT_EQ(sample.predicates.size(), 2u);
  EXPECT_EQ(sample.predicates[0].column, "day");
  EXPECT_DOUBLE_EQ(sample.predicates[0].lo, 10);
  EXPECT_DOUBLE_EQ(sample.predicates[1].hi, 2);
  EXPECT_EQ(sample.limit, 7u);
}

TEST(ParserTest, EstimateVariants) {
  auto avg = std::get<EstimateStmt>(ValueOrDie(ParseOne(
      "ESTIMATE AVG(amount) FROM v WHERE day BETWEEN 0 AND 1 SAMPLES 500 "
      "CONFIDENCE 0.99;")));
  EXPECT_EQ(avg.agg, EstimateStmt::Agg::kAvg);
  EXPECT_EQ(avg.column, "amount");
  EXPECT_EQ(avg.samples, 500u);
  EXPECT_DOUBLE_EQ(avg.confidence, 0.99);

  auto count = std::get<EstimateStmt>(
      ValueOrDie(ParseOne("ESTIMATE COUNT(*) FROM v;")));
  EXPECT_EQ(count.agg, EstimateStmt::Agg::kCount);

  auto sum = std::get<EstimateStmt>(
      ValueOrDie(ParseOne("ESTIMATE SUM(amount) FROM v;")));
  EXPECT_EQ(sum.agg, EstimateStmt::Agg::kSum);
}

TEST(ParserTest, GroupByClause) {
  auto stmt = std::get<EstimateStmt>(ValueOrDie(ParseOne(
      "ESTIMATE SUM(amount) FROM v WHERE day BETWEEN 0 AND 9 "
      "GROUP BY supp SAMPLES 100;")));
  EXPECT_EQ(stmt.group_by, "supp");
  EXPECT_EQ(stmt.samples, 100u);
  EXPECT_FALSE(ParseOne("ESTIMATE SUM(a) FROM v GROUP supp;").ok());
}

TEST(ParserTest, OtherStatements) {
  EXPECT_TRUE(std::holds_alternative<GenerateTableStmt>(
      ValueOrDie(ParseOne("GENERATE TABLE t ROWS 100 SEED 5;"))));
  EXPECT_TRUE(std::holds_alternative<InsertStmt>(
      ValueOrDie(ParseOne("INSERT INTO v ROWS 10;"))));
  EXPECT_TRUE(std::holds_alternative<RebuildStmt>(
      ValueOrDie(ParseOne("REBUILD v;"))));
  EXPECT_TRUE(std::holds_alternative<DropViewStmt>(
      ValueOrDie(ParseOne("DROP VIEW v;"))));
  EXPECT_TRUE(std::holds_alternative<ShowStmt>(
      ValueOrDie(ParseOne("SHOW VIEWS;"))));
}

TEST(ParserTest, Script) {
  auto statements = ValueOrDie(Parse(
      "GENERATE TABLE t ROWS 10; SHOW TABLES; -- comment\n SHOW VIEWS;"));
  EXPECT_EQ(statements.size(), 3u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseOne("CREATE VIEW x;").ok());  // missing MATERIALIZED...
  EXPECT_FALSE(ParseOne("SAMPLE FROM;").ok());
  EXPECT_FALSE(ParseOne("ESTIMATE MAX(x) FROM v;").ok());
  EXPECT_FALSE(ParseOne("GENERATE TABLE t ROWS -5;").ok());
  EXPECT_FALSE(ParseOne("ESTIMATE AVG(a) FROM v CONFIDENCE 2;").ok());
  EXPECT_FALSE(ParseOne("SHOW ME;").ok());
  EXPECT_FALSE(Parse("SHOW VIEWS SHOW TABLES;").ok());  // missing ';'
}

// ---------------------------------------------------------------------------
// Executor end-to-end
// ---------------------------------------------------------------------------

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    executor_ = ValueOrDie(Executor::Open(env_.get()));
    MSV_ASSERT_OK(executor_->Run("GENERATE TABLE sale ROWS 20000 SEED 3;")
                      .status());
  }

  std::string Run(const std::string& sql) {
    return ValueOrDie(executor_->Run(sql));
  }

  std::unique_ptr<io::Env> env_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, CreateSampleEstimateRoundTrip) {
  std::string out = Run(
      "CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  EXPECT_NE(out.find("created materialized sample view v"), std::string::npos);

  out = Run("SAMPLE FROM v WHERE day BETWEEN 10000 AND 30000 LIMIT 4;");
  EXPECT_NE(out.find("(4 random samples)"), std::string::npos);

  out = Run(
      "ESTIMATE AVG(amount) FROM v WHERE day BETWEEN 10000 AND 30000 "
      "SAMPLES 800;");
  EXPECT_NE(out.find("AVG(amount) = "), std::string::npos);
  EXPECT_NE(out.find("+/-"), std::string::npos);
}

TEST_F(ExecutorTest, SampledRowsSatisfyThePredicate) {
  Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  std::string out =
      Run("SAMPLE FROM v WHERE day BETWEEN 40000 AND 50000 LIMIT 50;");
  // Parse the day column of every data row and check bounds.
  std::istringstream lines(out);
  std::string line;
  std::getline(lines, line);  // header
  int rows = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("(", 0) == 0) break;  // trailer
    double day = std::stod(line.substr(0, line.find(" | ")));
    EXPECT_GE(day, 40000.0);
    EXPECT_LE(day, 50000.0);
    ++rows;
  }
  EXPECT_EQ(rows, 50);
}

TEST_F(ExecutorTest, TwoDimensionalView) {
  Run("CREATE MATERIALIZED SAMPLE VIEW v2 AS SELECT * FROM sale "
      "INDEX ON day, amount;");
  std::string out = Run(
      "SAMPLE FROM v2 WHERE day BETWEEN 0 AND 50000 "
      "AND amount BETWEEN 9000 AND 10000 LIMIT 10;");
  EXPECT_NE(out.find("(10 random samples)"), std::string::npos);
}

TEST_F(ExecutorTest, PredicateOnNonIndexedColumnRejected) {
  Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  auto result =
      executor_->Run("SAMPLE FROM v WHERE amount BETWEEN 0 AND 1;");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotSupported());
}

TEST_F(ExecutorTest, InsertAndRebuildFlow) {
  Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  std::string out = Run("INSERT INTO v ROWS 3000 SEED 9;");
  EXPECT_NE(out.find("REBUILD recommended"), std::string::npos);
  out = Run("REBUILD v;");
  EXPECT_NE(out.find("23000 rows"), std::string::npos);
}

TEST_F(ExecutorTest, CountEstimateTracksTruth) {
  Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  // 10% window over a uniform domain: expect ~2000 of 20000.
  std::string out =
      Run("ESTIMATE COUNT(*) FROM v WHERE day BETWEEN 10000 AND 20000;");
  size_t pos = out.find("~ ");
  ASSERT_NE(pos, std::string::npos);
  double count = std::stod(out.substr(pos + 2));
  EXPECT_NEAR(count, 2000.0, 300.0);
}

TEST_F(ExecutorTest, GroupByEstimates) {
  Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  std::string out = Run(
      "ESTIMATE AVG(amount) FROM v WHERE day BETWEEN 0 AND 50000 "
      "GROUP BY supp SAMPLES 600;");
  EXPECT_NE(out.find("groups"), std::string::npos);
  EXPECT_NE(out.find("supp="), std::string::npos);
  out = Run(
      "ESTIMATE COUNT(*) FROM v WHERE day BETWEEN 0 AND 50000 "
      "GROUP BY supp SAMPLES 600;");
  EXPECT_NE(out.find("COUNT(*) = "), std::string::npos);
}

TEST_F(ExecutorTest, GroupByOnDoubleColumnRejected) {
  Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  auto result = executor_->Run(
      "ESTIMATE AVG(amount) FROM v GROUP BY amount;");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotSupported());
}

TEST_F(ExecutorTest, ErrorsForUnknownObjects) {
  EXPECT_TRUE(executor_->Run("SAMPLE FROM nosuch;").status().IsNotFound());
  EXPECT_TRUE(executor_->Run("DROP VIEW nosuch;").status().IsNotFound());
  EXPECT_TRUE(executor_
                  ->Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * "
                        "FROM nosuch INDEX ON day;")
                  .status()
                  .IsNotFound());
  // Non-double index column.
  EXPECT_TRUE(executor_
                  ->Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * "
                        "FROM sale INDEX ON cust;")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ExecutorTest, DuplicateViewRejected) {
  Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  EXPECT_TRUE(executor_
                  ->Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * "
                        "FROM sale INDEX ON day;")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ExecutorTest, CatalogPersistsAcrossSessions) {
  Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  executor_.reset();
  executor_ = ValueOrDie(Executor::Open(env_.get()));
  std::string out = Run("SHOW VIEWS;");
  EXPECT_NE(out.find("v ON sale INDEX ON day"), std::string::npos);
  out = Run("SAMPLE FROM v WHERE day BETWEEN 0 AND 1000 LIMIT 3;");
  EXPECT_NE(out.find("random sample"), std::string::npos);
}

TEST_F(ExecutorTest, DropRemovesFiles) {
  Run("CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  EXPECT_TRUE(ValueOrDie(env_->FileExists("view.v.base.g1")));
  EXPECT_TRUE(ValueOrDie(env_->FileExists("view.v.manifest")));
  Run("DROP VIEW v;");
  // Every view file — base generations, runs, WALs, manifest — is gone.
  for (const std::string& f : ValueOrDie(env_->ListFiles())) {
    EXPECT_EQ(f.rfind("view.v.", 0), std::string::npos) << f;
  }
  std::string out = Run("SHOW VIEWS;");
  EXPECT_NE(out.find("(no views)"), std::string::npos);
}

}  // namespace
}  // namespace msv::query
