#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_tree.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "relation/workload.h"
#include "test_util.h"

namespace msv::core {
namespace {

using msv::testing::MakeSale;
using msv::testing::ValueOrDie;
using storage::HeapFile;
using storage::SaleRecord;

TEST(ChooseHeightTest, ExpectedLeafFitsOnePage) {
  // 1000 records x 100 B = 100 KB; with 64 KB pages we need F = 2 -> h = 2.
  EXPECT_EQ(ChooseHeight(1000, 100, 64 << 10), 2u);
  // Tiny relation: single leaf.
  EXPECT_EQ(ChooseHeight(10, 100, 64 << 10), 1u);
  // 1M records x 100 B = 100 MB; F = 2048 -> h = 12.
  EXPECT_EQ(ChooseHeight(1'000'000, 100, 64 << 10), 12u);
  // Boundary: exactly F * page.
  EXPECT_EQ(ChooseHeight(1310720, 100, 64 << 10), 12u);  // 2^11 * 64KB
}

TEST(AceBuildOptionsTest, Validation) {
  auto layout = SaleRecord::Layout1D();
  AceBuildOptions options;
  MSV_EXPECT_OK(options.Validate(layout));
  options.key_dims = 2;  // layout only has one key dim
  EXPECT_TRUE(options.Validate(layout).IsInvalidArgument());
  options = AceBuildOptions();
  options.page_size = 64;
  EXPECT_TRUE(options.Validate(layout).IsInvalidArgument());
  options = AceBuildOptions();
  options.height = 50;
  EXPECT_TRUE(options.Validate(layout).IsInvalidArgument());
}

TEST(AceBuildTest, RejectsEmptyInput) {
  auto env = io::NewMemEnv();
  auto writer = ValueOrDie(
      storage::HeapFileWriter::Create(env.get(), "empty", SaleRecord::kSize));
  MSV_ASSERT_OK(writer->Finish());
  EXPECT_TRUE(BuildAceTree(env.get(), "empty", "ace", SaleRecord::Layout1D())
                  .IsInvalidArgument());
}

// Shared fixture: a tree built over a known relation plus an oracle map
// row_id -> keys.
class AceBuildFixture : public ::testing::Test {
 protected:
  void Build(uint64_t n, uint32_t height, uint32_t dims, uint64_t seed) {
    env_ = io::NewMemEnv();
    MakeSale(env_.get(), "sale", n, seed);
    layout_ =
        dims == 1 ? SaleRecord::Layout1D() : SaleRecord::Layout2D();
    AceBuildOptions options;
    options.height = height;
    options.key_dims = dims;
    options.seed = seed + 1;
    MSV_ASSERT_OK(
        BuildAceTree(env_.get(), "sale", "ace", layout_, options, &metrics_));
    tree_ = ValueOrDie(AceTree::Open(env_.get(), "ace", layout_));

    auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
    auto scanner = sale->NewScanner();
    for (;;) {
      const char* rec = ValueOrDie(scanner.Next());
      if (rec == nullptr) break;
      auto r = SaleRecord::DecodeFrom(rec);
      oracle_[r.row_id] = {r.day, r.amount};
    }
  }

  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  AceBuildMetrics metrics_;
  std::unique_ptr<AceTree> tree_;
  std::map<uint64_t, std::pair<double, double>> oracle_;
};

class AceBuildInvariants
    : public AceBuildFixture,
      public ::testing::WithParamInterface<
          std::tuple<uint64_t /*n*/, uint32_t /*height*/, uint32_t /*dims*/>> {
 protected:
  void SetUp() override {
    auto [n, height, dims] = GetParam();
    Build(n, height, dims, /*seed=*/n + height * 10 + dims);
  }
};

TEST_P(AceBuildInvariants, MetaMatchesRequest) {
  auto [n, height, dims] = GetParam();
  EXPECT_EQ(tree_->meta().num_records, n);
  EXPECT_EQ(tree_->meta().height, height);
  EXPECT_EQ(tree_->meta().num_leaves, 1ull << (height - 1));
  EXPECT_EQ(tree_->meta().key_dims, dims);
  EXPECT_EQ(metrics_.records, n);
}

TEST_P(AceBuildInvariants, EveryRecordStoredExactlyOnce) {
  auto [n, height, dims] = GetParam();
  (void)height;
  (void)dims;
  std::set<uint64_t> seen;
  uint64_t total = 0;
  for (uint64_t leaf = 0; leaf < tree_->meta().num_leaves; ++leaf) {
    LeafData data = ValueOrDie(tree_->ReadLeaf(leaf));
    EXPECT_EQ(data.leaf_index, leaf);
    for (uint32_t s = 1; s <= tree_->meta().height; ++s) {
      for (size_t i = 0; i < data.SectionCount(s); ++i) {
        auto rec = SaleRecord::DecodeFrom(data.SectionRecord(s, i));
        EXPECT_TRUE(seen.insert(rec.row_id).second)
            << "duplicate row " << rec.row_id;
        ++total;
      }
    }
  }
  EXPECT_EQ(total, n);
  EXPECT_EQ(seen.size(), n);
}

TEST_P(AceBuildInvariants, SectionsRespectAncestorBoxes) {
  // Paper property: L.S_i holds only records whose keys fall inside the
  // box of L's level-i ancestor (and the boxes are nested by construction).
  const SplitTree& splits = tree_->splits();
  for (uint64_t leaf = 0; leaf < tree_->meta().num_leaves; ++leaf) {
    LeafData data = ValueOrDie(tree_->ReadLeaf(leaf));
    uint64_t heap_id = splits.LeafHeapId(leaf);
    for (uint32_t s = 1; s <= tree_->meta().height; ++s) {
      Box box = splits.BoxOf(SplitTree::AncestorAtLevel(heap_id, s));
      for (size_t i = 0; i < data.SectionCount(s); ++i) {
        const char* rec = data.SectionRecord(s, i);
        for (uint32_t d = 0; d < tree_->meta().key_dims; ++d) {
          double key = layout_.Key(rec, d);
          ASSERT_GE(key, box.lo[d]) << "leaf " << leaf << " section " << s;
          ASSERT_LT(key, box.hi[d]) << "leaf " << leaf << " section " << s;
        }
      }
    }
  }
}

TEST_P(AceBuildInvariants, NodeCountsAreExact) {
  // cnt_l / cnt_r must equal the true number of records in each child box.
  auto [n, height, dims] = GetParam();
  (void)n;
  (void)dims;
  const SplitTree& splits = tree_->splits();
  // Count records per finest cell from the oracle.
  std::vector<uint64_t> cells(tree_->meta().num_leaves, 0);
  for (const auto& [row, keys] : oracle_) {
    double kv[2] = {keys.first, keys.second};
    ++cells[splits.CellOf(kv)];
  }
  for (uint64_t id = 1; id < 2 * tree_->meta().num_leaves; ++id) {
    auto [lo, hi] = splits.LeavesUnder(id);
    uint64_t expected = 0;
    for (uint64_t c = lo; c < hi; ++c) expected += cells[c];
    EXPECT_EQ(tree_->NodeCount(id), expected) << "node " << id;
  }
  (void)height;
}

TEST_P(AceBuildInvariants, ExponentialityOfCounts) {
  // Each split is a (sample) median: children counts are near-equal, so
  // counts decay by ~2x per level (paper Sec. 4.3).
  auto [n, height, dims] = GetParam();
  (void)height;
  for (uint64_t id = 1; id < tree_->meta().num_leaves; ++id) {
    uint64_t total = tree_->NodeCount(id);
    if (total < 32) continue;  // ratios are noisy at tiny counts
    uint64_t left = tree_->NodeCount(2 * id);
    uint64_t right = tree_->NodeCount(2 * id + 1);
    EXPECT_EQ(left + right, total);
    double balance =
        static_cast<double>(std::max(left, right)) / static_cast<double>(total);
    // 1-d splits are exact medians; k-d splits come from a sample (exact
    // here because the sample covers the input, but boundary effects and
    // duplicates leave slack).
    EXPECT_LE(balance, dims == 1 ? 0.51 : 0.60)
        << "node " << id << " of " << n;
  }
}

TEST_P(AceBuildInvariants, SectionSizesMatchLemma2) {
  // E[mu] = N / (h * 2^(h-1)); the grand mean across all (leaf, section)
  // pairs should be close for non-trivial N.
  auto [n, height, dims] = GetParam();
  (void)dims;
  if (n < 1000) return;
  double expected =
      static_cast<double>(n) /
      (static_cast<double>(height) * static_cast<double>(1ull << (height - 1)));
  uint64_t total = 0;
  uint64_t sections = 0;
  for (uint64_t leaf = 0; leaf < tree_->meta().num_leaves; ++leaf) {
    LeafData data = ValueOrDie(tree_->ReadLeaf(leaf));
    for (uint32_t s = 1; s <= height; ++s) {
      total += data.SectionCount(s);
      ++sections;
    }
  }
  double mean = static_cast<double>(total) / static_cast<double>(sections);
  EXPECT_NEAR(mean, expected, expected * 0.02);  // exact: totals are fixed
  // Per-section totals across leaves: each section level holds ~N/h.
  std::vector<uint64_t> per_level(height, 0);
  for (uint64_t leaf = 0; leaf < tree_->meta().num_leaves; ++leaf) {
    LeafData data = ValueOrDie(tree_->ReadLeaf(leaf));
    for (uint32_t s = 1; s <= height; ++s) {
      per_level[s - 1] += data.SectionCount(s);
    }
  }
  for (uint32_t s = 0; s < height; ++s) {
    double frac = static_cast<double>(per_level[s]) / static_cast<double>(n);
    EXPECT_NEAR(frac, 1.0 / height, 0.35 / height) << "level " << s + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AceBuildInvariants,
    ::testing::Values(std::make_tuple(uint64_t{100}, 1u, 1u),
                      std::make_tuple(uint64_t{500}, 3u, 1u),
                      std::make_tuple(uint64_t{5000}, 4u, 1u),
                      std::make_tuple(uint64_t{20000}, 6u, 1u),
                      std::make_tuple(uint64_t{5000}, 4u, 2u),
                      std::make_tuple(uint64_t{20000}, 5u, 2u)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_h" +
             std::to_string(std::get<1>(info.param)) + "_d" +
             std::to_string(std::get<2>(info.param));
    });

TEST(AceBuildTest, AutoHeightProducesPageSizedLeaves) {
  auto env = io::NewMemEnv();
  MakeSale(env.get(), "sale", 50000, 5);
  AceBuildOptions options;
  options.page_size = 16 << 10;
  MSV_ASSERT_OK(
      BuildAceTree(env.get(), "sale", "ace", SaleRecord::Layout1D(), options));
  auto tree = ValueOrDie(
      AceTree::Open(env.get(), "ace", SaleRecord::Layout1D()));
  // Expected leaf bytes = N * 100 / F <= 16 KB, and > 8 KB (tightest F).
  double expected_leaf_bytes =
      50000.0 * 100.0 / static_cast<double>(tree->meta().num_leaves);
  EXPECT_LE(expected_leaf_bytes, 16 << 10);
  EXPECT_GT(expected_leaf_bytes, 8 << 10);
}

TEST(AceBuildTest, ConstructionUsesTwoExternalSorts) {
  auto env = io::NewMemEnv();
  MakeSale(env.get(), "sale", 10000, 9);
  AceBuildOptions options;
  options.height = 5;
  AceBuildMetrics metrics;
  MSV_ASSERT_OK(BuildAceTree(env.get(), "sale", "ace",
                             SaleRecord::Layout1D(), options, &metrics));
  EXPECT_EQ(metrics.phase1_sort.records, 10000u);
  EXPECT_EQ(metrics.phase2_sort.records, 10000u);
  // Temp files cleaned up: only "sale" and "ace" remain.
  auto files = ValueOrDie(env->ListFiles());
  std::sort(files.begin(), files.end());
  EXPECT_EQ(files, (std::vector<std::string>{"ace", "sale"}));
}

TEST(AceBuildTest, SpaceOverheadIsSmall) {
  auto env = io::NewMemEnv();
  MakeSale(env.get(), "sale", 50000, 13);
  AceBuildMetrics metrics;
  AceBuildOptions options;
  MSV_ASSERT_OK(BuildAceTree(env.get(), "sale", "ace",
                             SaleRecord::Layout1D(), options, &metrics));
  // Paper: "only a very small space overhead beyond the data records".
  EXPECT_LT(static_cast<double>(metrics.overhead_bytes),
            0.05 * 50000 * SaleRecord::kSize);
}

TEST(AceBuildTest, DeterministicForSeed) {
  auto env = io::NewMemEnv();
  MakeSale(env.get(), "sale", 2000, 17);
  AceBuildOptions options;
  options.height = 4;
  options.seed = 5;
  MSV_ASSERT_OK(
      BuildAceTree(env.get(), "sale", "a1", SaleRecord::Layout1D(), options));
  MSV_ASSERT_OK(
      BuildAceTree(env.get(), "sale", "a2", SaleRecord::Layout1D(), options));
  auto f1 = ValueOrDie(env->OpenFile("a1", false));
  auto f2 = ValueOrDie(env->OpenFile("a2", false));
  uint64_t s1 = ValueOrDie(f1->Size());
  uint64_t s2 = ValueOrDie(f2->Size());
  ASSERT_EQ(s1, s2);
  std::string b1(s1, 0), b2(s2, 0);
  MSV_ASSERT_OK(f1->ReadExact(0, s1, b1.data()));
  MSV_ASSERT_OK(f2->ReadExact(0, s2, b2.data()));
  EXPECT_EQ(b1, b2);
}

TEST(AceBuildTest, LeafDirectoryIsContiguousAndComplete) {
  auto env = io::NewMemEnv();
  MakeSale(env.get(), "sale", 8000, 19);
  AceBuildOptions options;
  options.height = 5;
  MSV_ASSERT_OK(
      BuildAceTree(env.get(), "sale", "ace", SaleRecord::Layout1D(), options));
  auto tree = ValueOrDie(
      AceTree::Open(env.get(), "ace", SaleRecord::Layout1D()));
  // Leaves tile [data_offset, file size) without gaps (the variable-size
  // leaf scheme of Sec. 5.6).
  uint64_t expect_offset = tree->meta().data_offset;
  uint64_t total_records = 0;
  for (uint64_t leaf = 0; leaf < tree->meta().num_leaves; ++leaf) {
    LeafData data = ValueOrDie(tree->ReadLeaf(leaf));
    total_records += data.TotalRecords();
    uint64_t blob = LeafHeaderSize(tree->meta().height) +
                    data.TotalRecords() * SaleRecord::kSize +
                    4;  // trailing leaf checksum
    expect_offset += blob;
  }
  EXPECT_EQ(expect_offset, tree->file_bytes());
  EXPECT_EQ(total_records, 8000u);
}

TEST(AceBuildTest, EstimateMatchCountTracksOracle) {
  auto env = io::NewMemEnv();
  MakeSale(env.get(), "sale", 30000, 23);
  AceBuildOptions options;
  options.height = 7;
  MSV_ASSERT_OK(
      BuildAceTree(env.get(), "sale", "ace", SaleRecord::Layout1D(), options));
  auto tree = ValueOrDie(
      AceTree::Open(env.get(), "ace", SaleRecord::Layout1D()));
  auto sale = ValueOrDie(HeapFile::Open(env.get(), "sale"));
  relation::WorkloadGenerator gen({{0.0, 100000.0}}, 3);
  for (double sel : {0.01, 0.1, 0.4}) {
    for (int i = 0; i < 3; ++i) {
      auto q = gen.Query(sel, 1);
      uint64_t truth = ValueOrDie(
          relation::CountMatches(*sale, SaleRecord::Layout1D(), q));
      uint64_t est = ValueOrDie(tree->EstimateMatchCount(q));
      EXPECT_NEAR(static_cast<double>(est), static_cast<double>(truth),
                  std::max(100.0, 0.15 * static_cast<double>(truth)))
          << q.ToString();
    }
  }
}

}  // namespace
}  // namespace msv::core
