// Tests for AceTree::CheckInvariants: a clean tree verifies, and each
// class of on-disk corruption — mangled section header, semantically
// wrong record with a recomputed checksum, broken internal-node counts,
// duplicated records — is detected and attributed to the offending page.

#include <string>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_tree.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "storage/record.h"
#include "test_util.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace msv::core {
namespace {

using msv::testing::MakeSale;
using msv::testing::ValueOrDie;
using storage::SaleRecord;

class AceVerifyTest : public ::testing::Test {
 protected:
  void Build(uint64_t n, uint32_t height, uint64_t seed = 7) {
    env_ = io::NewMemEnv();
    MakeSale(env_.get(), "sale", n, seed);
    layout_ = SaleRecord::Layout1D();
    AceBuildOptions options;
    options.height = height;
    options.seed = seed + 1;
    MSV_ASSERT_OK(BuildAceTree(env_.get(), "sale", "ace", layout_, options));
    Reopen();
  }

  void Reopen() {
    tree_ = ValueOrDie(AceTree::Open(env_.get(), "ace", layout_));
  }

  /// Directory entry of `leaf`, read straight from the file bytes.
  LeafLocation Locate(uint64_t leaf) {
    auto file = ValueOrDie(env_->OpenFile("ace", /*create=*/false));
    char entry[kDirectoryEntrySize];
    MSV_EXPECT_OK(file->ReadExact(
        tree_->meta().directory_offset + leaf * kDirectoryEntrySize,
        sizeof(entry), entry));
    return LeafLocation{DecodeFixed64(entry), DecodeFixed64(entry + 8)};
  }

  /// Overwrites `n` bytes at absolute file offset `off`.
  void Clobber(uint64_t off, const char* bytes, size_t n) {
    auto file = ValueOrDie(env_->OpenFile("ace", /*create=*/false));
    MSV_ASSERT_OK(file->Write(off, bytes, n));
  }

  /// XORs one bit of the byte at absolute file offset `off` (a guaranteed
  /// change, unlike overwriting with a constant).
  void FlipBit(uint64_t off) {
    auto file = ValueOrDie(env_->OpenFile("ace", /*create=*/false));
    char byte;
    MSV_ASSERT_OK(file->ReadExact(off, 1, &byte));
    byte = static_cast<char>(byte ^ 0x40);
    MSV_ASSERT_OK(file->Write(off, &byte, 1));
  }

  /// Rewrites the trailing masked CRC of the leaf blob at `loc` so that
  /// semantic corruption survives the checksum check.
  void FixLeafChecksum(const LeafLocation& loc) {
    auto file = ValueOrDie(env_->OpenFile("ace", /*create=*/false));
    std::string blob(loc.length, '\0');
    MSV_ASSERT_OK(file->ReadExact(loc.offset, loc.length, blob.data()));
    char crc[4];
    EncodeFixed32(crc, MaskCrc(Crc32c(blob.data(), blob.size() - 4)));
    MSV_ASSERT_OK(file->Write(loc.offset + loc.length - 4, crc, 4));
  }

  /// Recomputes the superblock's internal/directory region CRCs from the
  /// (possibly clobbered) file bytes, so semantic corruption survives the
  /// format-v2 region checksums and reaches the invariant checks.
  void FixRegionChecksums() {
    auto file = ValueOrDie(env_->OpenFile("ace", /*create=*/false));
    char super[kSuperblockSize];
    MSV_ASSERT_OK(file->ReadExact(0, sizeof(super), super));
    AceMeta meta = ValueOrDie(DecodeSuperblock(super));
    std::string bytes(meta.num_internal_nodes() * kInternalNodeSize, '\0');
    if (!bytes.empty()) {
      MSV_ASSERT_OK(
          file->ReadExact(meta.internal_offset, bytes.size(), bytes.data()));
    }
    meta.internal_crc = MaskCrc(Crc32c(bytes.data(), bytes.size()));
    bytes.assign(meta.num_leaves * kDirectoryEntrySize, '\0');
    MSV_ASSERT_OK(
        file->ReadExact(meta.directory_offset, bytes.size(), bytes.data()));
    meta.directory_crc = MaskCrc(Crc32c(bytes.data(), bytes.size()));
    EncodeSuperblock(super, meta);
    MSV_ASSERT_OK(file->Write(0, super, sizeof(super)));
  }

  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  std::unique_ptr<AceTree> tree_;
};

TEST_F(AceVerifyTest, CleanTreeVerifies) {
  Build(20000, 4);
  InvariantReport report = tree_->CheckInvariants();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.leaves_checked, tree_->meta().num_leaves);
  EXPECT_EQ(report.records_checked, tree_->meta().num_records);
  EXPECT_EQ(report.sections_checked,
            tree_->meta().num_leaves * tree_->meta().height);
  MSV_EXPECT_OK(report.ToStatus());
}

TEST_F(AceVerifyTest, SectionHeaderCorruptionReportsLeaf) {
  Build(20000, 4);
  const uint64_t victim = tree_->meta().num_leaves / 2;
  LeafLocation loc = Locate(victim);
  // Flip bytes in the section-count array of the leaf header (bytes
  // [8, 8 + 4h) of the blob hold the per-section record counts).
  char junk[4] = {'\x5a', '\x5a', '\x5a', '\x5a'};
  Clobber(loc.offset + 8, junk, sizeof(junk));

  Reopen();
  InvariantReport report = tree_->CheckInvariants();
  ASSERT_FALSE(report.ok());
  const InvariantViolation& v = report.violations.front();
  EXPECT_EQ(v.code, StatusCode::kCorruption);
  EXPECT_EQ(v.leaf, victim) << report.ToString();
  EXPECT_TRUE(report.ToStatus().IsCorruption());
}

TEST_F(AceVerifyTest, MisplacedRecordSurvivingChecksumIsCaught) {
  Build(20000, 4);
  const uint64_t victim = 0;
  LeafLocation loc = Locate(victim);
  // Move the first record of the deepest section (whose ancestor box is
  // the leaf's own cell — the narrowest) far outside the key domain,
  // then recompute the checksum so only semantic checks can object.
  const size_t header = LeafHeaderSize(tree_->meta().height);
  char key[8];
  EncodeDouble(key, 1e18);
  // Sections are stored in order 1..h; find the byte offset of section h.
  auto leaf = ValueOrDie(tree_->ReadLeaf(victim));
  uint64_t section_h_off = loc.offset + header;
  for (uint32_t s = 1; s < tree_->meta().height; ++s) {
    section_h_off += leaf.SectionCount(s) * tree_->meta().record_size;
  }
  ASSERT_GT(leaf.SectionCount(tree_->meta().height), 0u);
  Clobber(section_h_off + SaleRecord::kDayOffset, key, sizeof(key));
  FixLeafChecksum(loc);

  Reopen();
  ASSERT_TRUE(tree_->ReadLeaf(victim).ok()) << "checksum should pass";
  InvariantReport report = tree_->CheckInvariants();
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.leaf == victim && v.code == StatusCode::kCorruption &&
        v.detail.find("ancestor") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST_F(AceVerifyTest, DuplicatedRecordViolatesLemma1) {
  Build(20000, 3);
  const uint64_t victim = 1;
  LeafLocation loc = Locate(victim);
  auto leaf = ValueOrDie(tree_->ReadLeaf(victim));
  const size_t rs = tree_->meta().record_size;
  ASSERT_GE(leaf.SectionCount(1), 2u);
  // Copy record 0 of section 1 over record 1 of section 1: containment
  // still holds, but the section now samples with replacement.
  const size_t header = LeafHeaderSize(tree_->meta().height);
  std::string rec0(leaf.SectionRecord(1, 0), rs);
  Clobber(loc.offset + header + rs, rec0.data(), rs);
  FixLeafChecksum(loc);

  Reopen();
  InvariantReport report =
      tree_->CheckInvariants(InvariantCheckOptions{.check_cell_counts = false});
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.leaf == victim &&
        v.detail.find("without-replacement") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.ToString();
}

TEST_F(AceVerifyTest, BrokenInternalCountsAreCaught) {
  Build(20000, 4);
  // Corrupt cnt_left of internal node 2 (the second entry of the
  // internal region; layout per EncodeInternalNode: key f64, dim u32,
  // pad u32, cnt_l u64, cnt_r u64).
  const uint64_t node_off =
      tree_->meta().internal_offset + 1 * kInternalNodeSize + 16;
  char bogus[8];
  EncodeFixed64(bogus, 123456789);
  Clobber(node_off, bogus, sizeof(bogus));
  FixRegionChecksums();  // let the semantic check, not the CRC, object

  Reopen();
  InvariantReport report = tree_->CheckInvariants();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.ToStatus().IsCorruption()) << report.ToString();
}

TEST_F(AceVerifyTest, MaxViolationsTruncatesReport) {
  Build(20000, 4);
  // Zero out the whole directory: every leaf becomes unreadable.
  std::string zeros(tree_->meta().num_leaves * kDirectoryEntrySize, '\0');
  Clobber(tree_->meta().directory_offset, zeros.data(), zeros.size());
  FixRegionChecksums();  // let the semantic check, not the CRC, object
  Reopen();
  InvariantReport report =
      tree_->CheckInvariants(InvariantCheckOptions{.max_violations = 3});
  ASSERT_FALSE(report.ok());
  EXPECT_LE(report.violations.size(), 3u);
  EXPECT_TRUE(report.truncated);
}

TEST_F(AceVerifyTest, InternalRegionBitFlipRejectedAtOpen) {
  Build(20000, 4);
  FlipBit(tree_->meta().internal_offset + 3);
  auto reopened = AceTree::Open(env_.get(), "ace", layout_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption())
      << reopened.status().ToString();
}

TEST_F(AceVerifyTest, DirectoryBitFlipRejectedAtOpen) {
  Build(20000, 4);
  FlipBit(tree_->meta().directory_offset + 5);
  auto reopened = AceTree::Open(env_.get(), "ace", layout_);
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption())
      << reopened.status().ToString();
}

TEST_F(AceVerifyTest, RegionCorruptionAfterOpenCaughtByRecheck) {
  Build(20000, 4);
  // Corrupt the on-disk directory bytes while the tree stays open: the
  // MemEnv handles alias the same data, so CheckInvariants' region
  // re-read (the "regions" phase) must object even though Open passed.
  FlipBit(tree_->meta().directory_offset + 1);
  InvariantReport report = tree_->CheckInvariants();
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.detail.find("directory checksum") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << report.ToString();
}

}  // namespace
}  // namespace msv::core
