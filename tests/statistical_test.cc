// Statistical guarantees of the ACE sample stream (paper Sec. 6):
//
//   * Uniformity — the first m samples of a range query are a uniform
//     random subset of the matching records; chi-square over
//     equal-population buckets across many seeded runs.
//   * Without replacement — a full drain returns every matching record
//     exactly once, nothing else.
//   * Unbiasedness — OnlineAggregator's AVG over a prefix of the stream
//     is an unbiased estimator of the true average; 200 seeded runs.
//
// Every test runs in BOTH serial (AceSampler) and parallel
// (ParallelAceSampler) mode with identical assertions: the parallel
// fan-out must not change any distributional property.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "core/parallel_sampler.h"
#include "core/sample_view.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "relation/sale_generator.h"
#include "sampling/online_aggregator.h"
#include "storage/record.h"
#include "test_util.h"
#include "util/random.h"

namespace msv::core {
namespace {

using msv::testing::AllDistinct;
using msv::testing::ValueOrDie;
using storage::SaleRecord;

constexpr double kQueryLo = 20000.0;
constexpr double kQueryHi = 70000.0;

enum class Mode { kSerial, kParallel };

std::string ModeName(Mode mode) {
  return mode == Mode::kSerial ? "Serial" : "Parallel";
}

class StatisticalTest : public ::testing::TestWithParam<Mode> {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    relation::SaleGenOptions gen;
    gen.num_records = 2000;
    gen.seed = 7;
    ASSERT_TRUE(relation::GenerateSaleRelation(env_.get(), "sale", gen).ok());
    layout_ = SaleRecord::Layout1D();
    tree_ = BuildTree(/*build_seed=*/99);

    // Ground truth by full scan of the generated relation.
    auto heap = ValueOrDie(storage::HeapFile::Open(env_.get(), "sale"));
    auto scanner = heap->NewScanner();
    for (uint64_t i = 0; i < heap->record_count(); ++i) {
      const char* rec = ValueOrDie(scanner.Next());
      SaleRecord r = SaleRecord::DecodeFrom(rec);
      if (r.day >= kQueryLo && r.day <= kQueryHi) {
        matching_ids_.insert(r.row_id);
        true_sum_ += r.amount;
      }
    }
    ASSERT_GT(matching_ids_.size(), 500u);
    true_avg_ = true_sum_ / static_cast<double>(matching_ids_.size());
  }

  sampling::RangeQuery Query() const {
    return sampling::RangeQuery::OneDim(kQueryLo, kQueryHi);
  }

  /// Builds a fresh ACE tree over the fixed relation. The sampler's own
  /// seed only shuffles presentation order within combination rounds;
  /// the *statistical* randomness of the stream comes from the build-time
  /// section assignment, so the seeded-runs tests below draw a new tree
  /// per run.
  std::unique_ptr<AceTree> BuildTree(uint64_t build_seed) {
    AceBuildOptions build;
    build.page_size = 4096;
    build.key_dims = 1;
    build.seed = build_seed;
    // 2000 records sort in memory; the default 64 MB budget would be
    // allocated afresh for each of the ~200 seeded builds below.
    build.sort.memory_budget_bytes = 1 << 20;
    std::string name = "sale.ace." + std::to_string(build_seed);
    EXPECT_TRUE(BuildAceTree(env_.get(), "sale", name, layout_, build).ok());
    return ValueOrDie(AceTree::Open(env_.get(), name, layout_));
  }

  std::unique_ptr<sampling::SampleStream> MakeSampler(const AceTree* tree,
                                                      uint64_t seed) const {
    if (GetParam() == Mode::kSerial) {
      return std::make_unique<AceSampler>(tree, Query(), seed);
    }
    ParallelAceSampler::Options options;
    options.threads = 2;
    return std::make_unique<ParallelAceSampler>(tree, Query(), seed, options);
  }

  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  std::unique_ptr<AceTree> tree_;
  std::set<uint64_t> matching_ids_;
  double true_sum_ = 0.0;
  double true_avg_ = 0.0;
};

TEST_P(StatisticalTest, ExactWithoutReplacement) {
  auto sampler = MakeSampler(tree_.get(), /*seed=*/11);
  std::vector<uint64_t> ids = msv::testing::DrainRowIds(sampler.get());
  // No duplicates over the full drain, and the delivered set is exactly
  // the matching set — nothing missing, nothing extra.
  EXPECT_TRUE(AllDistinct(ids));
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()), matching_ids_);
  EXPECT_EQ(sampler->samples_returned(), matching_ids_.size());
}

TEST_P(StatisticalTest, PrefixIsUniformOverMatchingRecords) {
  // Bucket the matching ids into kBuckets equal-population cells, then
  // count which cells the first kPrefix samples of each seeded run land
  // in. Under uniformity every cell is equally likely, so the chi-square
  // statistic over all runs stays below the df=kBuckets-1 critical value.
  constexpr size_t kBuckets = 20;
  constexpr size_t kPrefix = 50;
  constexpr size_t kRuns = 40;

  std::vector<uint64_t> sorted(matching_ids_.begin(), matching_ids_.end());
  auto bucket_of = [&](uint64_t rid) {
    size_t rank = std::lower_bound(sorted.begin(), sorted.end(), rid) -
                  sorted.begin();
    return std::min(kBuckets - 1, rank * kBuckets / sorted.size());
  };

  std::vector<uint64_t> counts(kBuckets, 0);
  for (size_t run = 0; run < kRuns; ++run) {
    auto tree = BuildTree(/*build_seed=*/1000 + run);
    auto sampler = MakeSampler(tree.get(), /*seed=*/1000 + run);
    std::vector<uint64_t> prefix =
        msv::testing::TakeRowIds(sampler.get(), kPrefix);
    ASSERT_GE(prefix.size(), kPrefix);
    for (size_t i = 0; i < kPrefix; ++i) ++counts[bucket_of(prefix[i])];
  }

  const double total = static_cast<double>(kRuns * kPrefix);
  double chi2 = 0.0;
  for (size_t b = 0; b < kBuckets; ++b) {
    // Equal-population buckets up to rounding.
    size_t lo = b * sorted.size() / kBuckets;
    size_t hi = (b + 1) * sorted.size() / kBuckets;
    double expected =
        total * static_cast<double>(hi - lo) / static_cast<double>(sorted.size());
    double diff = static_cast<double>(counts[b]) - expected;
    chi2 += diff * diff / expected;
  }
  // Critical value for df=19 at p=0.001 is 43.8; the runs are seeded, so
  // this is a deterministic regression bound, not a flaky threshold.
  EXPECT_LT(chi2, 43.8) << "sample prefix is not uniform";
}

TEST_P(StatisticalTest, OnlineAggregatorIsUnbiased) {
  // 200 seeded runs, each feeding a prefix of the stream into the
  // aggregator. The mean of the 200 AVG estimates must land within four
  // standard errors of the true average — an unbiasedness check that
  // scales its own tolerance.
  constexpr size_t kRuns = 200;
  constexpr uint64_t kTarget = 120;

  std::vector<double> estimates;
  estimates.reserve(kRuns);
  for (size_t run = 0; run < kRuns; ++run) {
    auto tree = BuildTree(/*build_seed=*/5000 + run);
    auto sampler = MakeSampler(tree.get(), /*seed=*/5000 + run);
    sampling::OnlineAggregator agg(
        [](const char* rec) { return SaleRecord::DecodeFrom(rec).amount; },
        matching_ids_.size());
    while (!sampler->done() && agg.samples_seen() < kTarget) {
      auto batch = ValueOrDie(sampler->NextBatch());
      agg.Consume(batch);
    }
    ASSERT_GE(agg.samples_seen(), kTarget);
    estimates.push_back(agg.Avg().value);
  }

  double mean = 0.0;
  for (double e : estimates) mean += e;
  mean /= static_cast<double>(kRuns);
  double var = 0.0;
  for (double e : estimates) var += (e - mean) * (e - mean);
  var /= static_cast<double>(kRuns - 1);
  double stderr_of_mean = std::sqrt(var / static_cast<double>(kRuns));

  EXPECT_NEAR(mean, true_avg_, 4.0 * stderr_of_mean)
      << "mean of " << kRuns << " AVG estimates is biased";
  // Each individual run's CI should also be sane: positive half-width
  // once enough samples arrived.
  auto sampler = MakeSampler(tree_.get(), /*seed=*/77);
  sampling::OnlineAggregator agg(
      [](const char* rec) { return SaleRecord::DecodeFrom(rec).amount; },
      matching_ids_.size());
  while (!sampler->done() && agg.samples_seen() < kTarget) {
    agg.Consume(ValueOrDie(sampler->NextBatch()));
  }
  EXPECT_GT(agg.Avg().half_width, 0.0);
  EXPECT_NEAR(agg.Sum().value,
              agg.Avg().value * static_cast<double>(matching_ids_.size()),
              1e-6 * agg.Sum().value);
}

// ---------------------------------------------------------------------------
// Unified ingest stream — the P-partition interleave over memtable, sorted
// runs, and the ACE tree must preserve every property above: a prefix of
// the unified stream is a uniform subset of ALL matching records regardless
// of which layer currently holds them, and aggregates over it stay
// unbiased. Each run builds a fresh view and replays the same insert
// workload, so flush boundaries land mid-stream exactly as they would in
// production.
// ---------------------------------------------------------------------------

constexpr uint64_t kIngestBase = 1200;
constexpr uint64_t kIngestExtra = 800;

class IngestStatisticalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    layout_ = SaleRecord::Layout1D();

    // Ground truth from the same deterministic generators every per-run
    // view uses: a scan of the base relation plus a decode of the insert
    // payload.
    auto env = io::NewMemEnv();
    msv::testing::MakeSale(env.get(), "sale", kIngestBase, /*seed=*/7);
    auto heap = ValueOrDie(storage::HeapFile::Open(env.get(), "sale"));
    auto scanner = heap->NewScanner();
    for (uint64_t i = 0; i < heap->record_count(); ++i) {
      SaleRecord r = SaleRecord::DecodeFrom(ValueOrDie(scanner.Next()));
      if (Absorb(r)) ++base_matches_;
    }
    const std::string payload = InsertPayload();
    for (uint64_t i = 0; i < kIngestExtra; ++i) {
      Absorb(SaleRecord::DecodeFrom(payload.data() + i * SaleRecord::kSize));
    }
    ASSERT_GT(base_matches_, 400u);
    ASSERT_GT(matching_ids_.size() - base_matches_, 250u);
    true_avg_ = true_sum_ / static_cast<double>(matching_ids_.size());
  }

  bool Absorb(const SaleRecord& r) {
    if (r.day < kQueryLo || r.day > kQueryHi) return false;
    matching_ids_.insert(r.row_id);
    true_sum_ += r.amount;
    return true;
  }

  sampling::RangeQuery Query() const {
    return sampling::RangeQuery::OneDim(kQueryLo, kQueryHi);
  }

  /// The fixed post-build workload: 800 records with row ids continuing
  /// after the base, days spanning the full generator range.
  std::string InsertPayload() const {
    Pcg64 rng(17);
    std::string out;
    char buf[SaleRecord::kSize];
    for (uint64_t i = 0; i < kIngestExtra; ++i) {
      SaleRecord rec;
      rec.day = rng.DoubleInRange(0, 100000);
      rec.amount = rng.DoubleInRange(0, 10000);
      rec.row_id = kIngestBase + i;
      rec.EncodeTo(buf);
      out.append(buf, sizeof(buf));
    }
    return out;
  }

  /// Fresh view over the fixed base, then the fixed workload inserted in
  /// 50-record calls against a 150-record memtable: flushes fire after
  /// records 150/300/450/600/750, leaving five sorted runs plus 50 live
  /// memtable records. A prefix drawn here spans all three layers.
  std::unique_ptr<MaterializedSampleView> MakeView(uint64_t build_seed) {
    env_ = io::NewMemEnv();
    msv::testing::MakeSale(env_.get(), "sale", kIngestBase, /*seed=*/7);
    MaterializedSampleView::Options options;
    options.build.page_size = 4096;
    options.build.key_dims = 1;
    options.build.seed = build_seed;
    options.build.sort.memory_budget_bytes = 1 << 20;
    options.ingest.memtable_max_records = 150;
    options.ingest.background_compaction = false;
    auto view = ValueOrDie(MaterializedSampleView::Create(env_.get(), "v",
                                                          "sale", layout_,
                                                          options));
    const std::string payload = InsertPayload();
    for (uint64_t off = 0; off < kIngestExtra; off += 50) {
      MSV_EXPECT_OK(view->Insert(payload.data() + off * SaleRecord::kSize, 50));
    }
    return view;
  }

  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  std::set<uint64_t> matching_ids_;
  uint64_t base_matches_ = 0;
  double true_sum_ = 0.0;
  double true_avg_ = 0.0;
};

TEST_F(IngestStatisticalTest, UnifiedDrainIsExactWithoutReplacement) {
  auto view = MakeView(/*build_seed=*/99);
  auto sampler = ValueOrDie(view->Sample(Query(), /*seed=*/11, base_matches_));
  std::vector<uint64_t> ids = msv::testing::DrainRowIds(sampler.get());
  EXPECT_TRUE(AllDistinct(ids));
  EXPECT_EQ(std::set<uint64_t>(ids.begin(), ids.end()), matching_ids_);
}

TEST_F(IngestStatisticalTest, UnifiedPrefixIsUniformAcrossPartitions) {
  // Same chi-square design as PrefixIsUniformOverMatchingRecords, but the
  // matching population straddles the ACE tree (row ids < 1200) and the
  // write path (ids >= 1200, split across five runs and the memtable).
  // Rank buckets therefore cover every layer: any bias in the
  // hypergeometric split — e.g. over-drawing the memtable — inflates chi2.
  constexpr size_t kBuckets = 20;
  constexpr size_t kPrefix = 50;
  constexpr size_t kRuns = 40;

  std::vector<uint64_t> sorted(matching_ids_.begin(), matching_ids_.end());
  auto bucket_of = [&](uint64_t rid) {
    size_t rank = std::lower_bound(sorted.begin(), sorted.end(), rid) -
                  sorted.begin();
    return std::min(kBuckets - 1, rank * kBuckets / sorted.size());
  };

  std::vector<uint64_t> counts(kBuckets, 0);
  for (size_t run = 0; run < kRuns; ++run) {
    auto view = MakeView(/*build_seed=*/2000 + run);
    auto sampler =
        ValueOrDie(view->Sample(Query(), /*seed=*/2000 + run, base_matches_));
    std::vector<uint64_t> prefix =
        msv::testing::TakeRowIds(sampler.get(), kPrefix);
    ASSERT_GE(prefix.size(), kPrefix);
    for (size_t i = 0; i < kPrefix; ++i) ++counts[bucket_of(prefix[i])];
  }

  const double total = static_cast<double>(kRuns * kPrefix);
  double chi2 = 0.0;
  for (size_t b = 0; b < kBuckets; ++b) {
    size_t lo = b * sorted.size() / kBuckets;
    size_t hi = (b + 1) * sorted.size() / kBuckets;
    double expected = total * static_cast<double>(hi - lo) /
                      static_cast<double>(sorted.size());
    double diff = static_cast<double>(counts[b]) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 43.8) << "unified sample prefix is not uniform";
}

TEST_F(IngestStatisticalTest, UnifiedAvgIsUnbiased) {
  // 200 seeded runs of AVG over a 120-sample prefix of the unified
  // stream; the mean of the estimates must land within four standard
  // errors of the true average over base + inserted records.
  constexpr size_t kRuns = 200;
  constexpr uint64_t kTarget = 120;

  std::vector<double> estimates;
  estimates.reserve(kRuns);
  for (size_t run = 0; run < kRuns; ++run) {
    auto view = MakeView(/*build_seed=*/5000 + run);
    auto sampler =
        ValueOrDie(view->Sample(Query(), /*seed=*/5000 + run, base_matches_));
    sampling::OnlineAggregator agg(
        [](const char* rec) { return SaleRecord::DecodeFrom(rec).amount; },
        matching_ids_.size());
    while (!sampler->done() && agg.samples_seen() < kTarget) {
      agg.Consume(ValueOrDie(sampler->NextBatch()));
    }
    ASSERT_GE(agg.samples_seen(), kTarget);
    estimates.push_back(agg.Avg().value);
  }

  double mean = 0.0;
  for (double e : estimates) mean += e;
  mean /= static_cast<double>(kRuns);
  double var = 0.0;
  for (double e : estimates) var += (e - mean) * (e - mean);
  var /= static_cast<double>(kRuns - 1);
  double stderr_of_mean = std::sqrt(var / static_cast<double>(kRuns));

  EXPECT_NEAR(mean, true_avg_, 4.0 * stderr_of_mean)
      << "mean of " << kRuns << " unified AVG estimates is biased";
}

INSTANTIATE_TEST_SUITE_P(Modes, StatisticalTest,
                         ::testing::Values(Mode::kSerial, Mode::kParallel),
                         [](const ::testing::TestParamInfo<Mode>& info) {
                           return ModeName(info.param);
                         });

}  // namespace
}  // namespace msv::core
