#include <cmath>
#include <map>

#include "gtest/gtest.h"
#include "io/env.h"
#include "permuted/permuted_file.h"
#include "sampling/grouped_aggregator.h"
#include "sampling/online_aggregator.h"
#include "sampling/sample_stream.h"
#include "test_util.h"
#include "util/random.h"

namespace msv::sampling {
namespace {

using msv::testing::MakeSale;
using msv::testing::ValueOrDie;
using storage::SaleRecord;

TEST(SampleBatchTest, AppendAndAccess) {
  SampleBatch batch;
  batch.record_size = 4;
  EXPECT_TRUE(batch.empty());
  batch.Append("abcd");
  batch.Append("wxyz");
  EXPECT_EQ(batch.count(), 2u);
  EXPECT_EQ(std::string(batch.record(1), 4), "wxyz");
}

TEST(IntervalTest, Semantics) {
  Interval a{0, 10};
  EXPECT_TRUE(a.Contains(0));
  EXPECT_TRUE(a.Contains(10));
  EXPECT_FALSE(a.Contains(10.0001));
  EXPECT_TRUE(a.Overlaps(Interval{10, 20}));
  EXPECT_FALSE(a.Overlaps(Interval{10.5, 20}));
  EXPECT_TRUE(a.Covers(Interval{2, 8}));
  EXPECT_FALSE(a.Covers(Interval{2, 11}));
  EXPECT_TRUE((Interval{5, 4}.Empty()));
}

class OnlineAggregatorTest : public ::testing::Test {
 protected:
  static double Amount(const char* rec) {
    return SaleRecord::DecodeFrom(rec).amount;
  }
};

TEST_F(OnlineAggregatorTest, AvgConvergesToTruth) {
  auto env = io::NewMemEnv();
  const uint64_t kRecords = 20000;
  MakeSale(env.get(), "sale", kRecords, 3);
  MSV_ASSERT_OK(permuted::BuildPermutedFile(env.get(), "sale", "perm", {}));
  auto perm = ValueOrDie(storage::HeapFile::Open(env.get(), "perm"));

  // Ground truth over the full relation.
  double truth = 0;
  {
    auto scanner = perm->NewScanner();
    for (;;) {
      const char* rec = ValueOrDie(scanner.Next());
      if (rec == nullptr) break;
      truth += Amount(rec);
    }
    truth /= kRecords;
  }

  auto layout = SaleRecord::Layout1D();
  auto q = RangeQuery::OneDim(-1e18, 1e18);
  permuted::PermutedFileSampler sampler(perm.get(), layout, q, 100 * 64);
  OnlineAggregator agg(&Amount, kRecords, 0.95);

  double last_width = 1e18;
  uint64_t checkpoints = 0;
  while (!sampler.done() && agg.samples_seen() < 10000) {
    agg.Consume(ValueOrDie(sampler.NextBatch()));
    if (agg.samples_seen() > 100 && agg.samples_seen() % 2000 < 64) {
      Estimate e = agg.Avg();
      EXPECT_LE(e.half_width, last_width * 1.5);  // interval shrinks
      last_width = e.half_width;
      ++checkpoints;
    }
  }
  Estimate e = agg.Avg();
  EXPECT_GT(checkpoints, 2u);
  EXPECT_NEAR(e.value, truth, 4 * e.half_width + 1e-9);
  EXPECT_LT(e.half_width / truth, 0.05);
}

TEST_F(OnlineAggregatorTest, SumScalesByPopulation) {
  OnlineAggregator agg([](const char*) { return 2.0; }, 1000, 0.95);
  SampleBatch batch;
  batch.record_size = SaleRecord::kSize;
  char rec[SaleRecord::kSize] = {0};
  for (int i = 0; i < 50; ++i) batch.Append(rec);
  agg.Consume(batch);
  Estimate sum = agg.Sum();
  EXPECT_DOUBLE_EQ(sum.value, 2.0 * 1000);
  EXPECT_EQ(sum.samples, 50u);
  EXPECT_DOUBLE_EQ(sum.half_width, 0.0);  // zero variance
}

TEST_F(OnlineAggregatorTest, FinitePopulationCorrectionTightensAtEnd) {
  // When the sample approaches the whole population the interval must
  // collapse towards zero.
  Pcg64 rng(5);
  OnlineAggregator agg(
      [](const char* rec) { return SaleRecord::DecodeFrom(rec).amount; }, 200,
      0.95);
  SampleBatch batch;
  batch.record_size = SaleRecord::kSize;
  char buf[SaleRecord::kSize];
  for (int i = 0; i < 200; ++i) {
    SaleRecord r;
    r.amount = rng.NextDouble() * 100;
    r.EncodeTo(buf);
    batch.Append(buf);
  }
  agg.Consume(batch);
  Estimate e = agg.Avg();
  EXPECT_EQ(e.samples, 200u);
  EXPECT_LT(e.half_width, 1e-9);
}

TEST_F(OnlineAggregatorTest, CoverageOfConfidenceInterval) {
  // Monte-Carlo: the 95% CI over a mean of uniforms should cover the true
  // mean in roughly 95% of trials (population >> sample so FPC ~ 1).
  Pcg64 rng(6);
  int covered = 0;
  const int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    OnlineAggregator agg(
        [](const char* rec) { return SaleRecord::DecodeFrom(rec).amount; },
        1'000'000'000, 0.95);
    SampleBatch batch;
    batch.record_size = SaleRecord::kSize;
    char buf[SaleRecord::kSize];
    for (int i = 0; i < 400; ++i) {
      SaleRecord r;
      r.amount = rng.NextDouble();  // true mean 0.5
      r.EncodeTo(buf);
      batch.Append(buf);
    }
    agg.Consume(batch);
    Estimate e = agg.Avg();
    if (std::abs(e.value - 0.5) <= e.half_width) ++covered;
  }
  double coverage = covered / double(kTrials);
  EXPECT_GT(coverage, 0.90);
  EXPECT_LE(coverage, 1.0);
}

// ---------------------------------------------------------------------------
// GroupedAggregator
// ---------------------------------------------------------------------------

class GroupedAggregatorTest : public ::testing::Test {
 protected:
  // Synthetic population: 3 groups (supp % 3) with distinct means.
  static uint64_t Group(const char* rec) {
    return SaleRecord::DecodeFrom(rec).supp % 3;
  }
  static double Value(const char* rec) {
    return SaleRecord::DecodeFrom(rec).amount;
  }

  SampleBatch MakePopulationSample(uint64_t n, uint64_t seed) {
    SampleBatch batch;
    batch.record_size = SaleRecord::kSize;
    Pcg64 rng(seed);
    char buf[SaleRecord::kSize];
    for (uint64_t i = 0; i < n; ++i) {
      SaleRecord r;
      r.supp = rng.Below(3000);
      // Group means 100, 200, 300 with +/-10 noise.
      r.amount = 100.0 * static_cast<double>(r.supp % 3 + 1) +
                 (rng.NextDouble() - 0.5) * 20.0;
      r.EncodeTo(buf);
      batch.Append(buf);
    }
    return batch;
  }
};

TEST_F(GroupedAggregatorTest, PerGroupAvgConverges) {
  GroupedAggregator agg(&Group, &Value, 3'000'000, 0.95);
  agg.Consume(MakePopulationSample(6000, 3));
  auto groups = agg.Groups();
  ASSERT_EQ(groups.size(), 3u);
  for (const auto& g : groups) {
    double expected = 100.0 * static_cast<double>(g.group + 1);
    EXPECT_NEAR(g.avg.value, expected, 1.0) << "group " << g.group;
    EXPECT_LT(g.avg.half_width, 1.0);
    EXPECT_GT(g.samples, 1500u);
  }
}

TEST_F(GroupedAggregatorTest, CountEstimatesSplitThePopulation) {
  const uint64_t kPop = 900'000;
  GroupedAggregator agg(&Group, &Value, kPop, 0.95);
  agg.Consume(MakePopulationSample(9000, 4));
  auto groups = agg.Groups();
  ASSERT_EQ(groups.size(), 3u);
  double total = 0;
  for (const auto& g : groups) {
    EXPECT_NEAR(g.count.value, kPop / 3.0, 4 * g.count.half_width + 1.0);
    total += g.count.value;
  }
  EXPECT_NEAR(total, static_cast<double>(kPop), 1e-6);
}

TEST_F(GroupedAggregatorTest, SumEstimateMatchesAvgTimesCount) {
  GroupedAggregator agg(&Group, &Value, 300'000, 0.95);
  agg.Consume(MakePopulationSample(3000, 5));
  for (const auto& g : agg.Groups()) {
    // SUM_g ~ AVG_g * COUNT_g (they are estimated from the same sample).
    EXPECT_NEAR(g.sum.value, g.avg.value * g.count.value,
                0.01 * g.sum.value);
    EXPECT_GT(g.sum.half_width, 0.0);
  }
}

TEST_F(GroupedAggregatorTest, SumCoverageMonteCarlo) {
  // True per-group sum of a finite synthetic population vs the estimator
  // applied to uniform subsamples: the 95% CI should cover ~95%.
  SampleBatch population = MakePopulationSample(20000, 6);
  std::map<uint64_t, double> truth;
  for (size_t i = 0; i < population.count(); ++i) {
    truth[Group(population.record(i))] += Value(population.record(i));
  }
  Pcg64 rng(7);
  int covered = 0, checks = 0;
  for (int trial = 0; trial < 100; ++trial) {
    GroupedAggregator agg(&Group, &Value, population.count(), 0.95);
    SampleBatch sample;
    sample.record_size = SaleRecord::kSize;
    for (uint64_t idx :
         SampleWithoutReplacement(population.count(), 2000, &rng)) {
      sample.Append(population.record(static_cast<size_t>(idx)));
    }
    agg.Consume(sample);
    for (const auto& g : agg.Groups()) {
      ++checks;
      // Without-replacement sampling tightens the truth around the CI;
      // allow the plain CLT interval (no FPC) some slack.
      if (std::abs(g.sum.value - truth[g.group]) <= g.sum.half_width) {
        ++covered;
      }
    }
  }
  EXPECT_GT(static_cast<double>(covered) / checks, 0.90);
}

TEST_F(GroupedAggregatorTest, EmptyAggregatorHasNoGroups) {
  GroupedAggregator agg(&Group, &Value, 100, 0.95);
  EXPECT_EQ(agg.Groups().size(), 0u);
  EXPECT_EQ(agg.samples_seen(), 0u);
}

}  // namespace
}  // namespace msv::sampling
