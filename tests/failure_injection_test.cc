// Failure injection: corrupted, truncated and mismatched files must be
// rejected with Corruption/InvalidArgument — never a crash or a silently
// wrong sample.

#include <string>

#include "btree/ranked_btree.h"
#include "core/ace_builder.h"
#include "core/ace_tree.h"
#include "gtest/gtest.h"
#include "io/buffer_pool.h"
#include "io/env.h"
#include "rtree/rtree.h"
#include "test_util.h"
#include "util/coding.h"

namespace msv {
namespace {

using msv::testing::MakeSale;
using msv::testing::ValueOrDie;
using storage::SaleRecord;

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    MakeSale(env_.get(), "sale", 5000, 3);
    core::AceBuildOptions ace;
    ace.height = 4;
    MSV_ASSERT_OK(core::BuildAceTree(env_.get(), "sale", "ace",
                                     SaleRecord::Layout1D(), ace));
    btree::BTreeOptions bt;
    bt.page_size = 4096;
    MSV_ASSERT_OK(btree::BuildRankedBTree(env_.get(), "sale", "bt",
                                          SaleRecord::Layout1D(), bt));
    rtree::RTreeOptions rt;
    rt.page_size = 4096;
    MSV_ASSERT_OK(rtree::BuildRTree(env_.get(), "sale", "rt",
                                    SaleRecord::Layout2D(), rt));
  }

  void Clobber(const std::string& name, uint64_t offset,
               const std::string& bytes) {
    auto file = ValueOrDie(env_->OpenFile(name, false));
    MSV_ASSERT_OK(file->Write(offset, bytes.data(), bytes.size()));
  }

  void TruncateTo(const std::string& name, uint64_t size) {
    // MemEnv supports shrink.
    auto file = ValueOrDie(env_->OpenFile(name, false));
    MSV_ASSERT_OK(file->Truncate(size));
  }

  std::unique_ptr<io::Env> env_;
};

// ---------------------------------------------------------------------------
// ACE tree
// ---------------------------------------------------------------------------

TEST_F(FailureInjectionTest, AceBadMagic) {
  Clobber("ace", 0, "NOTATREE");
  auto r = core::AceTree::Open(env_.get(), "ace", SaleRecord::Layout1D());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(FailureInjectionTest, AceTruncatedDirectory) {
  TruncateTo("ace", 600);  // superblock survives, directory does not
  auto r = core::AceTree::Open(env_.get(), "ace", SaleRecord::Layout1D());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError() || r.status().IsCorruption());
}

TEST_F(FailureInjectionTest, AceTruncatedLeafRegion) {
  auto tree = ValueOrDie(
      core::AceTree::Open(env_.get(), "ace", SaleRecord::Layout1D()));
  uint64_t cut = tree->meta().data_offset + 100;
  tree.reset();
  TruncateTo("ace", cut);
  auto reopened = ValueOrDie(
      core::AceTree::Open(env_.get(), "ace", SaleRecord::Layout1D()));
  // Early leaves may still read; the last leaf must fail cleanly.
  auto r = reopened->ReadLeaf(reopened->meta().num_leaves - 1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError() || r.status().IsCorruption());
}

TEST_F(FailureInjectionTest, AceCorruptLeafHeader) {
  auto tree = ValueOrDie(
      core::AceTree::Open(env_.get(), "ace", SaleRecord::Layout1D()));
  uint64_t off = tree->meta().data_offset;
  tree.reset();
  char bad[4];
  EncodeFixed32(bad, 999999);  // leaf id that cannot match
  Clobber("ace", off, std::string(bad, 4));
  auto reopened = ValueOrDie(
      core::AceTree::Open(env_.get(), "ace", SaleRecord::Layout1D()));
  auto r = reopened->ReadLeaf(0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(FailureInjectionTest, AceBitFlipInLeafPayloadDetected) {
  // A single flipped byte anywhere in a leaf must trip the leaf checksum.
  auto tree = ValueOrDie(
      core::AceTree::Open(env_.get(), "ace", SaleRecord::Layout1D()));
  uint64_t off = tree->meta().data_offset + 200;  // inside leaf 0's records
  tree.reset();
  Clobber("ace", off, "\x01");
  auto reopened = ValueOrDie(
      core::AceTree::Open(env_.get(), "ace", SaleRecord::Layout1D()));
  auto r = reopened->ReadLeaf(0);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
  EXPECT_NE(std::string(r.status().message()).find("checksum"),
            std::string::npos);
}

TEST_F(FailureInjectionTest, AceSuperblockBitFlipDetected) {
  Clobber("ace", 40, "\x01");  // inside num_records
  auto r = core::AceTree::Open(env_.get(), "ace", SaleRecord::Layout1D());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(FailureInjectionTest, AceWrongLayoutRejected) {
  storage::RecordLayout wrong{64, {0}};
  auto r = core::AceTree::Open(env_.get(), "ace", wrong);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(FailureInjectionTest, AceHeightLeafCountMismatch) {
  // Flip the stored height; leaf count check must fire.
  char enc[4];
  EncodeFixed32(enc, 7);
  Clobber("ace", 24, std::string(enc, 4));
  auto r = core::AceTree::Open(env_.get(), "ace", SaleRecord::Layout1D());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(FailureInjectionTest, AceMissingFile) {
  auto r = core::AceTree::Open(env_.get(), "nope", SaleRecord::Layout1D());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Ranked B+-tree
// ---------------------------------------------------------------------------

TEST_F(FailureInjectionTest, BTreeBadMagic) {
  Clobber("bt", 0, "XXXXXXXX");
  io::BufferPool pool(4096, 16);
  auto r = btree::RankedBTree::Open(env_.get(), "bt",
                                    SaleRecord::Layout1D(), &pool, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(FailureInjectionTest, BTreePoolPageSizeMismatch) {
  io::BufferPool pool(8192, 16);  // tree was built with 4096
  auto r = btree::RankedBTree::Open(env_.get(), "bt",
                                    SaleRecord::Layout1D(), &pool, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(FailureInjectionTest, BTreeCorruptInternalPageType) {
  io::BufferPool pool(4096, 16);
  auto tree = ValueOrDie(btree::RankedBTree::Open(
      env_.get(), "bt", SaleRecord::Layout1D(), &pool, 1));
  uint64_t root_off = tree->meta().root_page * tree->meta().page_size;
  tree.reset();
  Clobber("bt", root_off, std::string(1, '\x7f'));
  io::BufferPool pool2(4096, 16);
  auto reopened = ValueOrDie(btree::RankedBTree::Open(
      env_.get(), "bt", SaleRecord::Layout1D(), &pool2, 2));
  std::vector<char> rec(SaleRecord::kSize);
  auto st = reopened->ReadByRank(0, rec.data());
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsCorruption());
}

// ---------------------------------------------------------------------------
// R-tree
// ---------------------------------------------------------------------------

TEST_F(FailureInjectionTest, RTreeBadMagic) {
  Clobber("rt", 0, "YYYYYYYY");
  io::BufferPool pool(4096, 16);
  auto r = rtree::RTree::Open(env_.get(), "rt", SaleRecord::Layout2D(),
                              &pool, 1);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(FailureInjectionTest, RTreeReadBeyondLeafCount) {
  io::BufferPool pool(4096, 16);
  auto tree = ValueOrDie(rtree::RTree::Open(
      env_.get(), "rt", SaleRecord::Layout2D(), &pool, 1));
  auto q = sampling::RangeQuery::TwoDim(-1e9, 1e9, -1e9, 1e9);
  auto runs = ValueOrDie(tree->CollectCandidates(q));
  ASSERT_FALSE(runs.empty());
  std::vector<char> rec(SaleRecord::kSize);
  auto st = tree->ReadRecordAt(runs[0].page, runs[0].count, rec.data());
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsOutOfRange());
}

}  // namespace
}  // namespace msv
