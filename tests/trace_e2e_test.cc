// End-to-end I/O-cost accounting tests: the per-level disk time the
// AceSampler attributes through the tracer must reconcile exactly with
// the DiskDevice's own totals, traced buffer-pool deltas must match
// BufferPoolStats, epoch-based resets must not discard counts, and the
// EXPLAIN ANALYZE / MSV_TRACE surfaces must produce the report.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "btree/btree_sampler.h"
#include "btree/ranked_btree.h"
#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "gtest/gtest.h"
#include "io/buffer_pool.h"
#include "io/disk_model.h"
#include "io/env.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "test_util.h"

namespace msv {
namespace {

using msv::testing::DrainRowIds;
using msv::testing::MakeSale;
using msv::testing::TakeRowIds;
using msv::testing::ValueOrDie;

// The acceptance check for the instrumentation stack: drain a full
// range-sample query against an ACE tree behind a simulated disk and
// require that the sampler's per-level disk-µs attribution (largest-
// remainder apportionment of each leaf read across its sections) sums
// exactly — not approximately — to the device's busy_us delta.
TEST(TraceE2eTest, AceLevelDiskUsSumsToDiskStats) {
  auto base = io::NewMemEnv();
  MakeSale(base.get(), "sale", 50000, /*seed=*/42);
  core::AceBuildOptions opt;
  opt.page_size = 16 << 10;
  opt.key_dims = 1;
  opt.seed = 5;
  MSV_ASSERT_OK(core::BuildAceTree(base.get(), "sale", "sale.ace",
                                   storage::SaleRecord::Layout1D(), opt));

  auto device = std::make_shared<io::DiskDevice>();
  auto timed = io::NewSimEnv(base.get(), device);
  auto tree = ValueOrDie(core::AceTree::Open(
      timed.get(), "sale.ace", storage::SaleRecord::Layout1D()));

  auto q = sampling::RangeQuery::OneDim(20000, 60000);
  core::AceSampler sampler(tree.get(), q, /*seed=*/99);
  const uint64_t busy_before = device->total_stats().busy_us;
  DrainRowIds(&sampler);
  const uint64_t busy_delta = device->total_stats().busy_us - busy_before;

  uint64_t level_sum = 0;
  for (uint32_t level = 1; level <= tree->meta().height; ++level) {
    level_sum += sampler.level_disk_us(level);
  }
  EXPECT_GT(busy_delta, 0u);
  EXPECT_EQ(level_sum, busy_delta);
}

// The traced io.pool.misses delta on the query's root span must equal
// what BufferPoolStats counted for the pool doing the fetching.
TEST(TraceE2eTest, BTreeSamplerTracedPoolMissesMatchStats) {
  auto base = io::NewMemEnv();
  MakeSale(base.get(), "sale", 50000, /*seed=*/42);
  btree::BTreeOptions bopt;
  bopt.page_size = 16 << 10;
  MSV_ASSERT_OK(btree::BuildRankedBTree(base.get(), "sale", "sale.btree",
                                        storage::SaleRecord::Layout1D(),
                                        bopt));

  auto device = std::make_shared<io::DiskDevice>();
  auto timed = io::NewSimEnv(base.get(), device);
  auto q = sampling::RangeQuery::OneDim(20000, 60000);

  obs::Tracer tracer;  // global registry: the instrumented layers' home
  obs::ScopedTracer scoped(&tracer);
  {
    obs::Span span = tracer.StartSpan("btree.query");
    // The pool is created inside the span and is the only pool active,
    // so the span's global-counter delta is exactly this pool's traffic.
    io::BufferPool pool(bopt.page_size, /*capacity_pages=*/64);
    auto tree = ValueOrDie(btree::RankedBTree::Open(
        timed.get(), "sale.btree", storage::SaleRecord::Layout1D(), &pool,
        1));
    btree::BTreeSampler sampler(tree.get(), q, /*seed=*/7,
                                /*pull_records=*/4);
    TakeRowIds(&sampler, 500);
    span.End();

    const io::BufferPoolStats stats = pool.stats();
    ASSERT_GT(stats.misses, 0u);
    ASSERT_FALSE(tracer.spans().empty());
    const obs::SpanRecord& rec = tracer.spans().front();
    double traced_misses = -1.0;
    double traced_hits = -1.0;
    for (const auto& [name, value] : rec.metrics) {
      if (name == "io.pool.misses") traced_misses = value;
      if (name == "io.pool.hits") traced_hits = value;
    }
    EXPECT_EQ(traced_misses, static_cast<double>(stats.misses));
    if (stats.hits > 0) {
      EXPECT_EQ(traced_hits, static_cast<double>(stats.hits));
    }
  }
}

TEST(TraceE2eTest, EpochResetDiscardsNothing) {
  auto base = io::NewMemEnv();
  auto device = std::make_shared<io::DiskDevice>();
  auto timed = io::NewSimEnv(base.get(), device);
  MakeSale(timed.get(), "sale", 2000);

  const io::DiskStats before = device->stats();
  ASSERT_GT(before.writes, 0u);
  const uint64_t counter_before =
      obs::MetricRegistry::Global().GetCounter("io.disk.writes")->Value();

  device->ResetStats();
  // The windowed view restarts...
  EXPECT_EQ(device->stats().writes, 0u);
  EXPECT_EQ(device->stats().busy_us, 0u);
  // ...but cumulative totals and the registry counter are monotone.
  EXPECT_EQ(device->total_stats().writes, before.writes);
  EXPECT_EQ(
      obs::MetricRegistry::Global().GetCounter("io.disk.writes")->Value(),
      counter_before);

  // New traffic lands in the new window on top of the old totals.
  MakeSale(timed.get(), "sale2", 1000);
  EXPECT_GT(device->stats().writes, 0u);
  EXPECT_EQ(device->total_stats().writes,
            before.writes + device->stats().writes);
}

TEST(TraceE2eTest, ExplainAnalyzeReportsLevelSpans) {
  auto env = io::NewMemEnv();
  auto ex = ValueOrDie(query::Executor::Open(env.get()));
  std::string out = ValueOrDie(ex->Run(
      "GENERATE TABLE sale ROWS 20000 SEED 7;"
      "CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale INDEX ON "
      "day;"
      "EXPLAIN ANALYZE SAMPLE FROM v WHERE day BETWEEN 10000 AND 50000 "
      "LIMIT 200;"));
  EXPECT_NE(out.find("-- EXPLAIN ANALYZE --"), std::string::npos) << out;
  EXPECT_NE(out.find("query.sample"), std::string::npos) << out;
  EXPECT_NE(out.find("ace.level"), std::string::npos) << out;
  EXPECT_NE(out.find("ace.leaf_reads"), std::string::npos) << out;

  // Plain EXPLAIN executes nothing and prints the plan only.
  out = ValueOrDie(
      ex->Run("EXPLAIN SAMPLE FROM v WHERE day BETWEEN 10000 AND 50000;"));
  EXPECT_NE(out.find("EXPLAIN"), std::string::npos) << out;
  EXPECT_EQ(out.find("ace.level"), std::string::npos) << out;
}

TEST(TraceE2eTest, MsvTraceEnvHookWritesJson) {
  const std::string path = ::testing::TempDir() + "/msv_trace_e2e.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("MSV_TRACE", path.c_str(), 1), 0);

  auto env = io::NewMemEnv();
  auto ex = ValueOrDie(query::Executor::Open(env.get()));
  auto run = ex->Run(
      "GENERATE TABLE sale ROWS 5000 SEED 3;"
      "CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale INDEX ON "
      "day;"
      "SAMPLE FROM v WHERE day BETWEEN 10000 AND 50000 LIMIT 50;");
  unsetenv("MSV_TRACE");
  MSV_ASSERT_OK(run.status());

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "MSV_TRACE file was not created";
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  obs::Json parsed = ValueOrDie(obs::Json::Parse(line));
  const obs::Json* spans = parsed.Find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_GT(spans->size(), 0u);
  bool found_query_span = false;
  for (const obs::Json& span : spans->items()) {
    const obs::Json* name = span.Find("name");
    if (name && name->AsString().rfind("query.", 0) == 0) {
      found_query_span = true;
    }
  }
  EXPECT_TRUE(found_query_span);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace msv
