// Determinism goldens: the exact byte sequences this PR must not change.
//
// Three layers are pinned:
//   1. SplitMix64 / DeriveRngStream — the per-query stream derivation.
//      Concurrent queries draw from independent Pcg64 streams derived
//      from one root seed; these values are the contract.
//   2. The serial AceSampler's full sample sequence for a fixed tree,
//      query and seed — same root seed + one thread must stay
//      byte-identical across refactors of the stab path.
//   3. ParallelAceSampler == AceSampler, byte for byte, at any worker
//      count: the parallel fan-out may reorder disk reads but never the
//      emitted stream.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "core/parallel_sampler.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "relation/sale_generator.h"
#include "storage/record.h"
#include "test_util.h"
#include "util/random.h"

namespace msv::core {
namespace {

using msv::testing::ValueOrDie;
using storage::SaleRecord;

// ---------------------------------------------------------------------------
// RNG stream derivation goldens
// ---------------------------------------------------------------------------

TEST(RngStreamTest, SplitMix64Golden) {
  uint64_t state = 1234;
  EXPECT_EQ(SplitMix64(&state), 13478418381427711195ULL);
  EXPECT_EQ(SplitMix64(&state), 10936887474700444964ULL);
  EXPECT_EQ(SplitMix64(&state), 3728693401281897946ULL);
}

TEST(RngStreamTest, DeriveRngStreamGolden) {
  struct Golden {
    uint64_t root_seed;
    uint64_t stream_id;
    uint64_t draws[4];
  };
  const Golden goldens[] = {
      {42, 0,
       {4933420552154059502ULL, 12011461925333370732ULL,
        14601072767271143407ULL, 12208670375848632323ULL}},
      {42, 1,
       {18164284030097939994ULL, 17484709183608418398ULL,
        9006915037742988350ULL, 17243094114724237355ULL}},
      {42, 2,
       {2630123446235948873ULL, 7901409897271332485ULL,
        17132753080837715186ULL, 5049221081009815177ULL}},
      {42, 3,
       {6223531505735042008ULL, 10080962388587157162ULL,
        3289446081051063222ULL, 2876132082466931957ULL}},
      {0, 7,
       {16559407115350555720ULL, 11310728182396579871ULL,
        16628964593460800163ULL, 6414758383543976400ULL}},
  };
  for (const Golden& g : goldens) {
    Pcg64 rng = DeriveRngStream(g.root_seed, g.stream_id);
    for (uint64_t want : g.draws) {
      EXPECT_EQ(rng.Next(), want)
          << "root=" << g.root_seed << " stream=" << g.stream_id;
    }
  }
}

TEST(RngStreamTest, StreamsAreIndependent) {
  // Streams from one root must not collide, and the same (root, stream)
  // pair must reproduce.
  Pcg64 a0 = DeriveRngStream(42, 0);
  Pcg64 a1 = DeriveRngStream(42, 1);
  Pcg64 b0 = DeriveRngStream(42, 0);
  for (int i = 0; i < 64; ++i) {
    uint64_t x = a0.Next();
    EXPECT_NE(x, a1.Next());
    EXPECT_EQ(x, b0.Next());
  }
}

// ---------------------------------------------------------------------------
// Sampler sequence goldens
// ---------------------------------------------------------------------------

// Fixed tree recipe; any change to these constants invalidates the
// goldens below, so they are deliberately local to this file.
constexpr uint64_t kRecords = 2000;
constexpr uint64_t kGenSeed = 7;
constexpr uint64_t kBuildSeed = 99;
constexpr uint64_t kSamplerSeed = 123;
constexpr double kQueryLo = 20000.0;
constexpr double kQueryHi = 70000.0;

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    relation::SaleGenOptions gen;
    gen.num_records = kRecords;
    gen.seed = kGenSeed;
    ASSERT_TRUE(relation::GenerateSaleRelation(env_.get(), "sale", gen).ok());
    AceBuildOptions build;
    build.page_size = 4096;
    build.key_dims = 1;
    build.seed = kBuildSeed;
    // In-memory sort; the default 64 MB budget only slows sanitizer runs.
    // (Budget does not affect the built tree, so goldens are unchanged.)
    build.sort.memory_budget_bytes = 1 << 20;
    layout_ = SaleRecord::Layout1D();
    ASSERT_TRUE(
        BuildAceTree(env_.get(), "sale", "sale.ace", layout_, build).ok());
    tree_ = ValueOrDie(AceTree::Open(env_.get(), "sale.ace", layout_));
  }

  sampling::RangeQuery Query() const {
    return sampling::RangeQuery::OneDim(kQueryLo, kQueryHi);
  }

  /// Drains `stream`, returning the concatenated record bytes.
  static std::string DrainBytes(sampling::SampleStream* stream) {
    std::string bytes;
    while (!stream->done()) {
      auto batch = ValueOrDie(stream->NextBatch());
      bytes += batch.data;
    }
    return bytes;
  }

  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  std::unique_ptr<AceTree> tree_;
};

TEST_F(DeterminismTest, SerialSampleSequenceMatchesGolden) {
  AceSampler sampler(tree_.get(), Query(), kSamplerSeed);
  std::vector<uint64_t> ids;
  uint64_t fnv = 14695981039346656037ULL;
  while (!sampler.done()) {
    auto batch = ValueOrDie(sampler.NextBatch());
    for (size_t i = 0; i < batch.count(); ++i) {
      uint64_t rid = SaleRecord::DecodeFrom(batch.record(i)).row_id;
      ids.push_back(rid);
      fnv = (fnv ^ rid) * 1099511628211ULL;
    }
  }
  EXPECT_EQ(ids.size(), 1017u);
  // FNV-1a over the row_ids in emission order: pins the entire sequence.
  EXPECT_EQ(fnv, 532171317302528852ULL);
  const std::vector<uint64_t> first16 = {536, 788, 1339, 1566, 583, 1843,
                                         552, 1202, 164,  280,  314, 537,
                                         982, 931,  1347, 1984};
  ASSERT_GE(ids.size(), first16.size());
  EXPECT_EQ(std::vector<uint64_t>(ids.begin(), ids.begin() + 16), first16);
  // The paper's Fig. 10 back-and-forth stab order over the leaves.
  const std::vector<uint64_t> leaf12 = {12, 32, 16, 40, 14, 36,
                                        24, 44, 13, 34, 20, 42};
  ASSERT_GE(sampler.leaf_read_order().size(), leaf12.size());
  EXPECT_EQ(std::vector<uint64_t>(sampler.leaf_read_order().begin(),
                                  sampler.leaf_read_order().begin() + 12),
            leaf12);
  EXPECT_EQ(sampler.leaves_read(), 64u);
}

TEST_F(DeterminismTest, StabLeafOrderMatchesSamplerReads) {
  std::vector<uint64_t> precomputed =
      ComputeStabLeafOrder(tree_->splits(), Query());
  AceSampler sampler(tree_.get(), Query(), kSamplerSeed);
  DrainBytes(&sampler);
  EXPECT_EQ(precomputed, sampler.leaf_read_order());
}

TEST_F(DeterminismTest, ParallelMatchesSerialByteForByte) {
  AceSampler serial(tree_.get(), Query(), kSamplerSeed);
  const std::string serial_bytes = DrainBytes(&serial);
  ASSERT_FALSE(serial_bytes.empty());

  for (size_t threads : {1u, 2u, 4u}) {
    ParallelAceSampler::Options options;
    options.threads = threads;
    ParallelAceSampler parallel(tree_.get(), Query(), kSamplerSeed, options);
    const std::string parallel_bytes = DrainBytes(&parallel);
    // Identical bytes in identical order: the fan-out reorders disk
    // reads, never the emitted stream.
    EXPECT_EQ(parallel_bytes, serial_bytes) << "threads=" << threads;
    EXPECT_EQ(parallel.leaf_read_order(), serial.leaf_read_order())
        << "threads=" << threads;
    EXPECT_EQ(parallel.samples_returned(), serial.samples_returned());
    EXPECT_EQ(parallel.leaves_read(), serial.leaves_read());
  }
}

TEST_F(DeterminismTest, BatchedWindowsEmitTheSerialByteStream) {
  // The batched stab path (io_batch_window != 1) issues leaf reads in
  // chunks but must consume them in exact stab order: every window —
  // including 0 (full drain) — reproduces the window-1 goldens above.
  AceSampler baseline(tree_.get(), Query(), kSamplerSeed);
  const std::string golden_bytes = DrainBytes(&baseline);
  ASSERT_FALSE(golden_bytes.empty());

  for (size_t window : {size_t{0}, size_t{2}, size_t{4}, size_t{64}}) {
    AceSamplerOptions options;
    options.io_batch_window = window;
    AceSampler sampler(tree_.get(), Query(), kSamplerSeed, options);
    EXPECT_EQ(DrainBytes(&sampler), golden_bytes) << "window=" << window;
    EXPECT_EQ(sampler.leaf_read_order(), baseline.leaf_read_order())
        << "window=" << window;
    EXPECT_EQ(sampler.leaves_read(), baseline.leaves_read());
    EXPECT_EQ(sampler.samples_returned(), baseline.samples_returned());
  }
}

TEST_F(DeterminismTest, BatchedWindowReproducesSequenceGolden) {
  // Belt and braces: the full-drain window checked directly against the
  // numeric golden, not just against another sampler run.
  AceSamplerOptions options;
  options.io_batch_window = 0;
  AceSampler sampler(tree_.get(), Query(), kSamplerSeed, options);
  uint64_t fnv = 14695981039346656037ULL;
  uint64_t n = 0;
  while (!sampler.done()) {
    auto batch = ValueOrDie(sampler.NextBatch());
    for (size_t i = 0; i < batch.count(); ++i) {
      fnv = (fnv ^ SaleRecord::DecodeFrom(batch.record(i)).row_id) *
            1099511628211ULL;
      ++n;
    }
  }
  EXPECT_EQ(n, 1017u);
  EXPECT_EQ(fnv, 532171317302528852ULL);
  EXPECT_EQ(sampler.leaves_read(), 64u);
}

TEST_F(DeterminismTest, ParallelReadBatchSizesMatchSerial) {
  AceSampler serial(tree_.get(), Query(), kSamplerSeed);
  const std::string serial_bytes = DrainBytes(&serial);

  for (size_t read_batch : {size_t{1}, size_t{3}, size_t{8}}) {
    ParallelAceSampler::Options options;
    options.threads = 4;
    options.read_batch = read_batch;
    ParallelAceSampler parallel(tree_.get(), Query(), kSamplerSeed, options);
    EXPECT_EQ(DrainBytes(&parallel), serial_bytes)
        << "read_batch=" << read_batch;
    EXPECT_EQ(parallel.leaf_read_order(), serial.leaf_read_order())
        << "read_batch=" << read_batch;
  }
}

TEST_F(DeterminismTest, RepeatRunsAreIdentical) {
  AceSampler a(tree_.get(), Query(), kSamplerSeed);
  AceSampler b(tree_.get(), Query(), kSamplerSeed);
  EXPECT_EQ(DrainBytes(&a), DrainBytes(&b));
  // A different presentation seed changes emission order but not the
  // delivered multiset size.
  AceSampler c(tree_.get(), Query(), kSamplerSeed + 1);
  DrainBytes(&c);
  EXPECT_EQ(c.samples_returned(), a.samples_returned());
}

}  // namespace
}  // namespace msv::core
