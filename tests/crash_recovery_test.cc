// Crash-point sweep over the ACE build, and fault injection during query
// serving.
//
// The sweep drives the atomic-build protocol (write <name>.tmp, sync,
// rename, sync dir) through every operation index k: arm a sticky fault
// at k, run the build until it dies, simulate power loss, recover, and
// assert the invariant the protocol promises — after a crash at ANY
// point, the tree name either does not exist (NotFound) or opens as a
// complete tree passing CheckInvariants(). Nothing in between.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "core/parallel_sampler.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "query/executor.h"
#include "query/session_pool.h"
#include "storage/record.h"
#include "test_util.h"

namespace msv::core {
namespace {

using msv::testing::MakeSale;
using msv::testing::ValueOrDie;

AceBuildOptions SmallBuild(uint64_t seed = 99) {
  AceBuildOptions build;
  build.page_size = 512;  // many leaves from few records -> height > 1
  build.key_dims = 1;
  build.seed = seed;
  build.sort.memory_budget_bytes = 1 << 20;  // in-memory sort, fast sweep
  return build;
}

/// One sweep iteration: a fresh store with a durable `sale` relation and
/// a fault env wrapped around it.
struct Fixture {
  std::unique_ptr<io::Env> inner;
  std::unique_ptr<io::FaultInjectionEnv> env;
};

Fixture FreshFixture(uint64_t records) {
  Fixture f;
  f.inner = io::NewMemEnv();
  // The input relation is written straight to the inner env BEFORE the
  // fault env snapshots it, so it predates the crash window and survives
  // every simulated power loss.
  MakeSale(f.inner.get(), "sale", records, /*seed=*/7);
  f.env = io::NewFaultInjectionEnv(f.inner.get());
  return f;
}

TEST(CrashSweepTest, FreshBuildAtomicAtEveryFaultIndex) {
  const uint64_t kRecords = 400;
  const storage::RecordLayout layout = storage::SaleRecord::Layout1D();

  // Fault-free reference run: total op count and a green invariant check.
  int64_t total_ops = 0;
  {
    Fixture f = FreshFixture(kRecords);
    MSV_ASSERT_OK(
        BuildAceTree(f.env.get(), "sale", "sale.ace", layout, SmallBuild()));
    total_ops = f.env->op_count();
    MSV_ASSERT_OK(f.env->DropUnsyncedData());
    auto tree = ValueOrDie(AceTree::Open(f.env.get(), "sale.ace", layout));
    auto report = tree->CheckInvariants();
    ASSERT_TRUE(report.ok()) << report.ToString();
  }
  ASSERT_GT(total_ops, 0);
  ASSERT_LT(total_ops, 20000) << "sweep would be unreasonably slow";

  for (int64_t k = 0; k < total_ops; ++k) {
    Fixture f = FreshFixture(kRecords);
    f.env->ArmFault(k, io::FaultMode::kError, /*sticky=*/true);
    Status build =
        BuildAceTree(f.env.get(), "sale", "sale.ace", layout, SmallBuild());
    const bool fired = f.env->fault_fired();
    f.env->ClearFault();
    MSV_ASSERT_OK(f.env->DropUnsyncedData());

    auto tree = AceTree::Open(f.env.get(), "sale.ace", layout);
    if (tree.ok()) {
      auto report = (*tree)->CheckInvariants();
      EXPECT_TRUE(report.ok()) << "fault index " << k
                               << " left a corrupt tree: " << report.ToString();
    } else {
      // No tree may only mean "cleanly absent", never a torn open.
      EXPECT_TRUE(tree.status().IsNotFound())
          << "fault index " << k
          << " left a torn tree: " << tree.status().ToString();
      EXPECT_FALSE(build.ok()) << "fault index " << k;
    }
    ASSERT_TRUE(fired) << "sweep ended early at index " << k << " of "
                       << total_ops;
  }
}

TEST(CrashSweepTest, RebuildOverExistingKeepsOldOrNew) {
  const uint64_t kRecords = 400;
  const storage::RecordLayout layout = storage::SaleRecord::Layout1D();

  // Reference rebuild to size the sweep.
  int64_t total_ops = 0;
  {
    Fixture f = FreshFixture(kRecords);
    MSV_ASSERT_OK(BuildAceTree(f.inner.get(), "sale", "sale.ace", layout,
                               SmallBuild(/*seed=*/1)));
    auto probe = io::NewFaultInjectionEnv(f.inner.get());
    MSV_ASSERT_OK(BuildAceTree(probe.get(), "sale", "sale.ace", layout,
                               SmallBuild(/*seed=*/2)));
    total_ops = probe->op_count();
  }
  ASSERT_GT(total_ops, 0);

  // Stride the sweep: rebuilds exercise the same protocol as fresh builds,
  // so spot-checking ~100 crash points (always including the first and
  // last few, where the rename/dir-sync endgame lives) keeps this fast.
  const int64_t stride = std::max<int64_t>(1, total_ops / 100);
  std::vector<int64_t> points;
  for (int64_t k = 0; k < total_ops; k += stride) points.push_back(k);
  for (int64_t k = std::max<int64_t>(0, total_ops - 8); k < total_ops; ++k) {
    points.push_back(k);
  }

  for (int64_t k : points) {
    Fixture f = FreshFixture(kRecords);
    // The pre-existing tree is built durably in the inner env...
    MSV_ASSERT_OK(BuildAceTree(f.inner.get(), "sale", "sale.ace", layout,
                               SmallBuild(/*seed=*/1)));
    // ...but the fault env snapshotted before it existed; re-wrap so the
    // old tree is part of the durable image.
    f.env = io::NewFaultInjectionEnv(f.inner.get());
    f.env->ArmFault(k, io::FaultMode::kError, /*sticky=*/true);
    Status build = BuildAceTree(f.env.get(), "sale", "sale.ace", layout,
                                SmallBuild(/*seed=*/2));
    f.env->ClearFault();
    MSV_ASSERT_OK(f.env->DropUnsyncedData());

    // Rebuilding over an existing name must never lose the tree: after a
    // crash anywhere, the name opens (old or new) and verifies.
    auto tree = AceTree::Open(f.env.get(), "sale.ace", layout);
    ASSERT_TRUE(tree.ok()) << "fault index " << k << " (build: "
                           << build.ToString()
                           << "): " << tree.status().ToString();
    auto report = (*tree)->CheckInvariants();
    EXPECT_TRUE(report.ok()) << "fault index " << k << ": "
                             << report.ToString();
  }
}

// ---------------------------------------------------------------------------
// Fault injection during serving
// ---------------------------------------------------------------------------

TEST(FaultServingTest, ParallelSamplerSurfacesFaultAndDrainsWorkers) {
  auto inner = io::NewMemEnv();
  msv::testing::MakeSale(inner.get(), "sale", 2000, /*seed=*/7);
  const storage::RecordLayout layout = storage::SaleRecord::Layout1D();
  AceBuildOptions build = SmallBuild();
  build.page_size = 4096;
  MSV_ASSERT_OK(BuildAceTree(inner.get(), "sale", "sale.ace", layout, build));

  auto fault = io::NewFaultInjectionEnv(inner.get());
  auto tree = ValueOrDie(AceTree::Open(fault.get(), "sale.ace", layout));
  fault->ArmFault(fault->op_count(), io::FaultMode::kError, /*sticky=*/true);

  ParallelAceSampler::Options options;
  options.threads = 4;
  ParallelAceSampler sampler(tree.get(),
                             sampling::RangeQuery::OneDim(20000.0, 70000.0),
                             /*seed=*/123, options);
  Status seen = Status::OK();
  for (int pulls = 0; !sampler.done() && pulls < 100000; ++pulls) {
    auto batch = sampler.NextBatch();
    if (!batch.ok()) {
      seen = batch.status();
      break;
    }
  }
  EXPECT_TRUE(seen.IsIOError()) << seen.ToString();
  EXPECT_NE(seen.ToString().find("injected"), std::string::npos)
      << seen.ToString();
  // Destruction joins the worker pool; the test finishing (instead of
  // hanging) is the drain assertion, and tsan checks the shutdown path.
}

TEST(FaultServingTest, SessionPoolReturnsErrorsWithoutHanging) {
  auto inner = io::NewMemEnv();
  auto fault = io::NewFaultInjectionEnv(inner.get());
  auto exec = ValueOrDie(query::Executor::Open(fault.get()));
  auto setup = exec->Run(
      "GENERATE TABLE sale ROWS 3000 SEED 7; "
      "CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();

  fault->ArmFault(fault->op_count(), io::FaultMode::kError, /*sticky=*/true);
  std::vector<std::string> scripts;
  for (int t = 0; t < 4; ++t) {
    scripts.push_back(
        "ESTIMATE AVG(amount) FROM v WHERE day BETWEEN 10000 AND 60000 "
        "SAMPLES 100;");
    scripts.push_back("SAMPLE FROM v WHERE day BETWEEN 0 AND 90000 LIMIT 30;");
  }
  auto results = query::SessionPool::RunScripts(exec.get(), scripts, 4);
  ASSERT_EQ(results.size(), scripts.size());
  for (size_t i = 0; i < results.size(); ++i) {
    // Every leaf read hits the dead device: each script must come back
    // with a clean error Status — no crash, no hang, workers drained.
    EXPECT_FALSE(results[i].ok()) << "script " << i << " succeeded";
    EXPECT_TRUE(results[i].status().IsIOError())
        << "script " << i << ": " << results[i].status().ToString();
  }

  // The device "recovers": the executor must still be fully serviceable.
  fault->ClearFault();
  auto after =
      exec->Run("SAMPLE FROM v WHERE day BETWEEN 0 AND 90000 LIMIT 10;");
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

}  // namespace
}  // namespace msv::core
