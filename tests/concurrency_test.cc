// Thread-safety tests for the concurrent-serving stack: shared
// BufferPool under pin/unpin/evict pressure, concurrent AceSamplers on
// one tree, the parallel sampler's worker pool, the executor's session
// pool, and the metrics registry's epoch contract. Designed to run under
// TSan (ctest -R concurrency on the tsan preset) in well under 10s.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "core/parallel_sampler.h"
#include "gtest/gtest.h"
#include "io/buffer_pool.h"
#include "io/env.h"
#include "obs/metrics.h"
#include "query/executor.h"
#include "query/session_pool.h"
#include "relation/sale_generator.h"
#include "storage/record.h"
#include "test_util.h"
#include "util/random.h"

namespace msv {
namespace {

using msv::testing::AllDistinct;
using msv::testing::DrainRowIds;
using msv::testing::ValueOrDie;
using storage::SaleRecord;

// ---------------------------------------------------------------------------
// Shared BufferPool under contention
// ---------------------------------------------------------------------------

TEST(BufferPoolConcurrencyTest, ManyThreadsOneSmallPool) {
  auto env = io::NewMemEnv();
  auto heap = msv::testing::MakeSale(env.get(), "sale", /*n=*/5000);
  auto file = ValueOrDie(env->OpenFile("sale", /*create=*/false));
  const size_t kPageSize = 1024;
  const uint64_t num_pages =
      (ValueOrDie(file->Size()) + kPageSize - 1) / kPageSize;
  ASSERT_GT(num_pages, 256u);

  // Far fewer frames than pages and an explicit multi-shard config, so
  // every thread continuously faults, evicts and collides on shards.
  // Each thread holds at most 2 pins (current + ring), so the worst case
  // of 16 pins landing in one 32-frame shard can never exhaust it.
  io::BufferPool pool(kPageSize, /*capacity_pages=*/128, /*shards=*/4);
  EXPECT_EQ(pool.shard_count(), 4u);

  constexpr size_t kThreads = 8;
  constexpr uint64_t kGetsPerThread = 3000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Pcg64 rng = DeriveRngStream(/*root_seed=*/42, /*stream_id=*/t);
      // A one-deep ring keeps the previous page pinned across the next
      // Get, so eviction constantly races against pinned frames.
      std::vector<io::PageRef> ring(1);
      for (uint64_t i = 0; i < kGetsPerThread; ++i) {
        auto page = pool.Get(file.get(), /*file_id=*/1, rng.Below(num_pages));
        ASSERT_TRUE(page.ok()) << page.status().ToString();
        ASSERT_GT(page.value().size(), 0u);
        // Read a byte while pinned: TSan verifies no writer touches it.
        volatile char c = page.value().data()[0];
        (void)c;
        ring[i % ring.size()] = std::move(page).value();
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(pool.CheckAccounting(), "");
  io::BufferPoolStats stats = pool.total_stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kGetsPerThread);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(pool.resident_pages(), pool.capacity());
}

TEST(BufferPoolConcurrencyTest, ConcurrentResetStatsKeepsDeltasSane) {
  auto env = io::NewMemEnv();
  auto heap = msv::testing::MakeSale(env.get(), "sale", /*n=*/2000);
  auto file = ValueOrDie(env->OpenFile("sale", /*create=*/false));
  const size_t kPageSize = 4096;
  const uint64_t num_pages =
      (ValueOrDie(file->Size()) + kPageSize - 1) / kPageSize;

  // 8 frames per shard against 4 single-pin threads: never exhaustible.
  io::BufferPool pool(kPageSize, /*capacity_pages=*/16, /*shards=*/2);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Pcg64 rng = DeriveRngStream(7, t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto page = pool.Get(file.get(), 1, rng.Below(num_pages));
        ASSERT_TRUE(page.ok());
      }
    });
  }
  // Epoch resets concurrent with traffic must never produce deltas that
  // exceed the monotone totals.
  for (int i = 0; i < 200; ++i) {
    pool.ResetStats();
    io::BufferPoolStats delta = pool.stats();
    io::BufferPoolStats total = pool.total_stats();
    EXPECT_LE(delta.hits, total.hits);
    EXPECT_LE(delta.misses, total.misses);
  }
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(pool.CheckAccounting(), "");
}

// ---------------------------------------------------------------------------
// Concurrent samplers on one shared ACE tree
// ---------------------------------------------------------------------------

class SharedTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    relation::SaleGenOptions gen;
    gen.num_records = 2000;
    gen.seed = 7;
    ASSERT_TRUE(relation::GenerateSaleRelation(env_.get(), "sale", gen).ok());
    core::AceBuildOptions build;
    build.page_size = 4096;
    build.key_dims = 1;
    build.seed = 99;
    // 2000 records sort in memory; skip the default 64 MB budget, which
    // TSan instruments expensively on every fixture SetUp.
    build.sort.memory_budget_bytes = 1 << 20;
    layout_ = SaleRecord::Layout1D();
    ASSERT_TRUE(core::BuildAceTree(env_.get(), "sale", "sale.ace", layout_,
                                   build)
                    .ok());
    tree_ = ValueOrDie(core::AceTree::Open(env_.get(), "sale.ace", layout_));
  }

  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  std::unique_ptr<core::AceTree> tree_;
};

TEST_F(SharedTreeTest, ManySamplersOneTree) {
  constexpr size_t kThreads = 8;
  std::vector<std::vector<uint64_t>> ids(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Overlapping but distinct ranges; each sampler has its own derived
      // RNG stream and shares only the read-only tree.
      double lo = 10000.0 + 5000.0 * static_cast<double>(t);
      auto q = sampling::RangeQuery::OneDim(lo, lo + 40000.0);
      core::AceSampler sampler(tree_.get(), q,
                               /*seed=*/1000 + t);
      ids[t] = DrainRowIds(&sampler);
      EXPECT_TRUE(sampler.done());
    });
  }
  for (auto& w : workers) w.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(AllDistinct(ids[t])) << "thread " << t;
    EXPECT_FALSE(ids[t].empty()) << "thread " << t;
  }
  // The tree must come out of the stampede structurally intact.
  EXPECT_TRUE(tree_->CheckInvariants().ok());
}

TEST_F(SharedTreeTest, ConcurrentParallelSamplers) {
  // Several ParallelAceSamplers at once: worker pools of different
  // queries interleave on the same tree.
  constexpr size_t kSamplers = 3;
  std::vector<std::vector<uint64_t>> ids(kSamplers);
  std::vector<std::thread> drivers;
  for (size_t s = 0; s < kSamplers; ++s) {
    drivers.emplace_back([&, s] {
      double lo = 15000.0 + 10000.0 * static_cast<double>(s);
      core::ParallelAceSampler::Options options;
      options.threads = 3;
      core::ParallelAceSampler sampler(
          tree_.get(), sampling::RangeQuery::OneDim(lo, lo + 30000.0),
          /*seed=*/500 + s, options);
      ids[s] = DrainRowIds(&sampler);
    });
  }
  for (auto& d : drivers) d.join();
  for (size_t s = 0; s < kSamplers; ++s) {
    EXPECT_TRUE(AllDistinct(ids[s])) << "sampler " << s;
    EXPECT_FALSE(ids[s].empty()) << "sampler " << s;
  }
}

TEST_F(SharedTreeTest, ParallelSamplerAbandonedMidStream) {
  // Destroying the sampler with workers mid-prefetch must join cleanly
  // (no leaked threads, no use-after-free — TSan enforces).
  core::ParallelAceSampler::Options options;
  options.threads = 4;
  for (int i = 0; i < 5; ++i) {
    core::ParallelAceSampler sampler(
        tree_.get(), sampling::RangeQuery::OneDim(20000.0, 70000.0),
        /*seed=*/i, options);
    auto batch = sampler.NextBatch();
    ASSERT_TRUE(batch.ok());
    // Dropped here with most leaves still queued.
  }
}

// ---------------------------------------------------------------------------
// Session pool: N MSVQL scripts against one executor
// ---------------------------------------------------------------------------

TEST(SessionPoolTest, ConcurrentReadScripts) {
  auto env = io::NewMemEnv();
  auto exec = ValueOrDie(query::Executor::Open(env.get()));
  auto setup = exec->Run(
      "GENERATE TABLE sale ROWS 3000 SEED 7; "
      "CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();

  std::vector<std::string> scripts;
  for (size_t t = 0; t < 8; ++t) {
    double lo = 2000.0 * static_cast<double>(t);
    scripts.push_back("ESTIMATE AVG(amount) FROM v WHERE day BETWEEN " +
                      std::to_string(lo) + " AND " +
                      std::to_string(lo + 40000.0) + " SAMPLES 150;");
    scripts.push_back("SAMPLE FROM v WHERE day BETWEEN " +
                      std::to_string(lo) + " AND " +
                      std::to_string(lo + 30000.0) + " LIMIT 30;");
  }
  auto results = query::SessionPool::RunScripts(exec.get(), scripts, 8);
  ASSERT_EQ(results.size(), scripts.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok())
        << "script " << i << ": " << results[i].status().ToString();
  }
}

TEST(SessionPoolTest, WritersSerializeAgainstReaders) {
  auto env = io::NewMemEnv();
  auto exec = ValueOrDie(query::Executor::Open(env.get()));
  auto setup = exec->Run(
      "GENERATE TABLE sale ROWS 2000 SEED 7; "
      "CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM sale "
      "INDEX ON day;");
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();

  // Readers on v race against a writer creating a second view over the
  // same table; the executor's statement lock must serialize the write
  // without wedging the readers.
  std::vector<std::string> scripts;
  for (int t = 0; t < 4; ++t) {
    scripts.push_back(
        "ESTIMATE AVG(amount) FROM v WHERE day BETWEEN 10000 AND 60000 "
        "SAMPLES 100;");
  }
  scripts.push_back(
      "CREATE MATERIALIZED SAMPLE VIEW v2 AS SELECT * FROM sale "
      "INDEX ON day;");
  scripts.push_back(
      "SAMPLE FROM v WHERE day BETWEEN 0 AND 90000 LIMIT 40;");
  auto results = query::SessionPool::RunScripts(exec.get(), scripts, 4);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].ok())
        << "script " << i << ": " << results[i].status().ToString();
  }
  // The view created concurrently must be queryable afterwards.
  auto after = exec->Run(
      "SAMPLE FROM v2 WHERE day BETWEEN 0 AND 90000 LIMIT 10;");
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

// ---------------------------------------------------------------------------
// Metrics registry epoch contract (see the BeginEpoch() doc comment)
// ---------------------------------------------------------------------------

TEST(ObsConcurrencyTest, EpochBaselineNeverExceedsTotal) {
  obs::MetricRegistry registry;
  constexpr size_t kWriters = 4;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      obs::Counter* c =
          registry.GetCounter("test.counter" + std::to_string(t % 2));
      while (!stop.load(std::memory_order_relaxed)) c->Add(1);
    });
  }
  // BeginEpoch/Snapshot race against relaxed Adds. The contract: for
  // every counter, since_epoch is a well-defined non-negative delta
  // (total >= baseline), and totals are monotone across snapshots.
  std::map<std::string, uint64_t> last_total;
  for (int i = 0; i < 300; ++i) {
    registry.BeginEpoch();
    obs::MetricsSnapshot snap = registry.Snapshot();
    for (const obs::CounterSample& c : snap.counters) {
      EXPECT_LE(c.since_epoch, c.total) << c.name;
      EXPECT_GE(c.total, last_total[c.name]) << c.name;
      last_total[c.name] = c.total;
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

TEST(ObsConcurrencyTest, SnapshotWithoutEpochSeesFullTotals) {
  obs::MetricRegistry registry;
  registry.GetCounter("a")->Add(5);
  obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].total, 5u);
  EXPECT_EQ(snap.counters[0].since_epoch, 5u);
  registry.BeginEpoch();
  registry.GetCounter("a")->Add(2);
  snap = registry.Snapshot();
  EXPECT_EQ(snap.counters[0].total, 7u);
  EXPECT_EQ(snap.counters[0].since_epoch, 2u);
}

}  // namespace
}  // namespace msv
