// Unit tests for the observability layer: metrics registry (counters,
// gauges, log-linear histograms, epochs), the span tracer (nesting,
// counter deltas, golden tree/JSON output), and the JSON round-trip
// contract the exporters rely on.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"
#include "util/histogram.h"

namespace msv::obs {
namespace {

using msv::testing::ValueOrDie;

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("c");
  EXPECT_EQ(c->Value(), 0u);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42u);
  // Same name -> same counter.
  EXPECT_EQ(reg.GetCounter("c"), c);

  Gauge* g = reg.GetGauge("g");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
}

TEST(MetricsTest, LabeledSeriesName) {
  EXPECT_EQ(MetricRegistry::Labeled("io.disk.reads", {{"dev", "0"}}),
            "io.disk.reads{dev=0}");
  EXPECT_EQ(MetricRegistry::Labeled("x", {{"a", "1"}, {"b", "2"}}),
            "x{a=1,b=2}");
  EXPECT_EQ(MetricRegistry::Labeled("bare", {}), "bare");
}

TEST(MetricsTest, EpochBaselinesNeverZeroTotals) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("events");
  c->Add(5);
  EXPECT_EQ(reg.epoch(), 0u);
  reg.BeginEpoch();
  EXPECT_EQ(reg.epoch(), 1u);
  c->Add(3);

  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "events");
  EXPECT_EQ(snap.counters[0].total, 8u);        // monotone, never reset
  EXPECT_EQ(snap.counters[0].since_epoch, 3u);  // delta since BeginEpoch
  EXPECT_EQ(snap.epoch, 1u);
}

TEST(MetricsTest, CounterRegisteredAfterEpochHasZeroBaseline) {
  MetricRegistry reg;
  reg.BeginEpoch();
  reg.GetCounter("late")->Add(7);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].total, 7u);
  EXPECT_EQ(snap.counters[0].since_epoch, 7u);
}

TEST(MetricsTest, LogHistogramMeanAndQuantiles) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(7);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 700u);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
  // All mass sits in the cell containing 7; interpolation stays inside.
  EXPECT_GE(h.P50(), 7.0);
  EXPECT_LE(h.P50(), 8.0);

  LogHistogram u;
  for (uint64_t v = 1; v <= 1000; ++v) u.Record(v);
  // Log-linear cells are <= 25% wide, so interpolated percentiles land
  // near the exact order statistics.
  EXPECT_NEAR(u.P50(), 500.0, 150.0);
  EXPECT_NEAR(u.P95(), 950.0, 250.0);
  EXPECT_NEAR(u.P99(), 990.0, 260.0);
  EXPECT_GT(u.P99(), u.P50());
}

TEST(MetricsTest, UtilHistogramFacadePercentiles) {
  // The fixed-width facade shares the same bucket math (one
  // implementation, two facades).
  Histogram h(0.0, 100.0, 20);
  for (int v = 1; v <= 100; ++v) h.Add(v);
  EXPECT_NEAR(h.P50(), 50.0, 6.0);
  EXPECT_NEAR(h.P95(), 95.0, 6.0);
  EXPECT_NEAR(h.P99(), 99.0, 6.0);
}

TEST(MetricsTest, ConcurrencySmoke) {
  // Mixed registration + increments from many threads; run under the
  // tsan preset this is the registry's data-race smoke test.
  MetricRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        reg.GetCounter("shared")->Add();
        reg.GetCounter("own." + std::to_string(t))->Add();
        reg.GetHistogram("lat")->Record(static_cast<uint64_t>(i % 97));
        if (i % 256 == 0) reg.Snapshot();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.GetCounter("shared")->Value(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.GetHistogram("lat")->count(),
            static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.GetCounter("own." + std::to_string(t))->Value(),
              static_cast<uint64_t>(kIters));
  }
}

// ---------------------------------------------------------------------------
// JSON round-trip (the exporter contract)
// ---------------------------------------------------------------------------

TEST(JsonTest, RoundTripNestedDocument) {
  Json doc = Json::Object();
  doc["name"] = "bench";
  doc["n"] = uint64_t{12345};
  doc["ratio"] = 0.0025;
  doc["ok"] = true;
  doc["nothing"] = Json();
  Json arr = Json::Array();
  arr.Append(1);
  arr.Append("two");
  arr.Append(Json::Object());
  doc["arr"] = std::move(arr);

  for (int indent : {0, 2}) {
    Json back = ValueOrDie(Json::Parse(doc.Dump(indent)));
    EXPECT_EQ(back, doc) << "indent=" << indent;
  }
}

TEST(JsonTest, MetricsSnapshotRoundTrips) {
  MetricRegistry reg;
  reg.GetCounter("io.disk.reads")->Add(17);
  reg.GetGauge("pool.fill")->Set(0.75);
  reg.GetHistogram("io.disk.access_us")->Record(640);
  reg.BeginEpoch();
  reg.GetCounter("io.disk.reads")->Add(3);

  Json j = reg.Snapshot().ToJson();
  Json back = ValueOrDie(Json::Parse(j.Dump(2)));
  EXPECT_EQ(back, j);
  const Json* counters = back.Find("counters");
  ASSERT_NE(counters, nullptr);
  const Json* reads = counters->Find("io.disk.reads");
  ASSERT_NE(reads, nullptr);
  EXPECT_DOUBLE_EQ(reads->Find("total")->AsNumber(), 20.0);
  EXPECT_DOUBLE_EQ(reads->Find("since_epoch")->AsNumber(), 3.0);
}

TEST(JsonTest, BenchRecordShapeRoundTrips) {
  // Mirrors bench::WriteBenchJson: {bench, numbers, metrics}.
  MetricRegistry reg;
  reg.GetCounter("ace.leaf_reads")->Add(5);
  Json record = Json::Object();
  record["bench"] = "fig11";
  Json numbers = Json::Object();
  numbers["records"] = uint64_t{100000};
  numbers["scan_ms"] = 205.6;
  record["numbers"] = std::move(numbers);
  record["metrics"] = reg.Snapshot().ToJson();

  Json back = ValueOrDie(Json::Parse(record.Dump(2)));
  EXPECT_EQ(back, record);
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TraceTest, SpanNestingGoldenTree) {
  // Private registry so counter deltas are fully deterministic.
  MetricRegistry reg;
  Tracer tracer(&reg);
  {
    Span root = tracer.StartSpan("query");
    root.AddAttr("view", "v");
    reg.GetCounter("io.leaf_reads")->Add(3);
    {
      Span child = tracer.StartSpan("sample");
      child.AddMetric("levels", 4);
      reg.GetCounter("io.leaf_reads")->Add(2);
      tracer.AddEvent("estimate", {{"samples", 100}, {"avg", 1.5}});
    }
  }
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(tracer.dropped_spans(), 0u);
  // Child sees only the increments while it was open; the root sees all
  // five (the counter was registered inside the root span, baseline 0).
  EXPECT_EQ(tracer.ToTree(/*include_wall=*/false),
            "query view=v [io.leaf_reads=5]\n"
            "  sample [levels=4 io.leaf_reads=2]\n"
            "    * estimate samples=100 avg=1.5\n");
}

TEST(TraceTest, EndingParentClosesChildren) {
  MetricRegistry reg;
  Tracer tracer(&reg);
  Span parent = tracer.StartSpan("parent");
  Span child = tracer.StartSpan("child");
  parent.End();  // force-closes the child LIFO
  EXPECT_EQ(tracer.open_spans(), 0u);
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, "parent");
  EXPECT_EQ(tracer.spans()[0].parent, 0u);
  EXPECT_EQ(tracer.spans()[1].name, "child");
  EXPECT_EQ(tracer.spans()[1].parent, tracer.spans()[0].id);
  child.End();  // already closed; must be a harmless no-op
  EXPECT_EQ(tracer.spans().size(), 2u);
}

TEST(TraceTest, JsonExportRoundTrips) {
  MetricRegistry reg;
  Tracer tracer(&reg);
  {
    Span root = tracer.StartSpan("query");
    root.AddAttr("kind", "estimate");
    reg.GetCounter("samples")->Add(10);
    tracer.AddEvent("estimate", {{"avg", 3.25}});
  }
  Json j = tracer.ToJson();
  Json back = ValueOrDie(Json::Parse(j.Dump()));
  EXPECT_EQ(back, j);
  const Json* spans = back.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 1u);
  EXPECT_EQ(spans->at(0).Find("name")->AsString(), "query");
  EXPECT_DOUBLE_EQ(
      spans->at(0).Find("metrics")->Find("samples")->AsNumber(), 10.0);
}

TEST(TraceTest, ScopedTracerInstallsAndRestores) {
  EXPECT_EQ(Tracer::Active(), nullptr);
  MetricRegistry reg;
  Tracer tracer(&reg);
  {
    ScopedTracer scoped(&tracer);
    EXPECT_EQ(Tracer::Active(), &tracer);
    Span s = StartTraceSpan("via-free-function");
    EXPECT_TRUE(s.active());
  }
  EXPECT_EQ(Tracer::Active(), nullptr);
  // Without an active tracer the free functions are inert.
  Span s = StartTraceSpan("dropped");
  EXPECT_FALSE(s.active());
}

TEST(TraceTest, MaxSpansDrops) {
  MetricRegistry reg;
  Tracer tracer(&reg, /*max_spans=*/2);
  Span a = tracer.StartSpan("a");
  Span b = tracer.StartSpan("b");
  Span c = tracer.StartSpan("c");
  EXPECT_FALSE(c.active());
  EXPECT_EQ(tracer.dropped_spans(), 1u);
}

TEST(TraceTest, ExportTraceIfRequestedWritesJsonLine) {
  MetricRegistry reg;
  Tracer tracer(&reg);
  { Span s = tracer.StartSpan("exported"); }

  const std::string path =
      ::testing::TempDir() + "/msv_obs_test_trace.json";
  std::remove(path.c_str());
  ASSERT_EQ(setenv("MSV_OBS_TEST_TRACE", path.c_str(), 1), 0);
  EXPECT_TRUE(ExportTraceIfRequested(tracer, "MSV_OBS_TEST_TRACE"));
  unsetenv("MSV_OBS_TEST_TRACE");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  Json parsed = ValueOrDie(Json::Parse(line));
  ASSERT_NE(parsed.Find("spans"), nullptr);
  EXPECT_EQ(parsed.Find("spans")->at(0).Find("name")->AsString(), "exported");
  std::remove(path.c_str());
}

TEST(TraceTest, UnsetEnvVarExportsNothing) {
  MetricRegistry reg;
  Tracer tracer(&reg);
  unsetenv("MSV_OBS_TEST_TRACE_UNSET");
  EXPECT_FALSE(ExportTraceIfRequested(tracer, "MSV_OBS_TEST_TRACE_UNSET"));
}

// ---------------------------------------------------------------------------
// LogHistogram::Quantile edge cases (pinned: exporters and msv_top rely
// on these exact boundary conventions)
// ---------------------------------------------------------------------------

TEST(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  LogHistogram h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(MetricsTest, QuantileZeroReturnsLowestEdge) {
  LogHistogram h;
  h.Record(100);
  h.Record(1000);
  // q=0 asks for "the value below everything": the grid's lowest edge.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), LogHistogram::BucketEdges().front());
}

TEST(MetricsTest, QuantileOneReturnsUpperEdgeOfMaxCell) {
  LogHistogram h;
  h.Record(100);
  const auto& edges = LogHistogram::BucketEdges();
  double q1 = h.Quantile(1.0);
  // q=1 lands on the upper edge of the cell holding the max sample —
  // within one cell (<= 25% relative width) of the true max.
  EXPECT_GE(q1, 100.0);
  EXPECT_LE(q1, 100.0 * 1.25);
  EXPECT_LT(q1, edges.back());
}

TEST(MetricsTest, SingleSampleQuantilesStayInItsCell) {
  LogHistogram h;
  h.Record(100);
  // 100 lies in octave [64, 128) split into 4 cells: [96, 112).
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    double v = h.Quantile(q);
    EXPECT_GE(v, 96.0) << "q=" << q;
    EXPECT_LE(v, 112.0) << "q=" << q;
  }
}

TEST(MetricsTest, ValuesBeyondMaxOctaveSaturateAtTopEdge) {
  LogHistogram h;
  const auto& edges = LogHistogram::BucketEdges();
  // 2^41 is past the 2^40 grid top: counted, summed, but bucketed as
  // overflow, so every quantile saturates at the top edge.
  const uint64_t huge = 1ull << 41;
  h.Record(huge);
  h.Record(huge);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 2 * huge);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), edges.back());
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), edges.back());
  std::vector<uint64_t> cells;
  uint64_t overflow = 0;
  h.SnapshotCells(&cells, &overflow);
  EXPECT_EQ(overflow, 2u);
  EXPECT_EQ(cells.size(), edges.size() - 1);
  for (uint64_t c : cells) EXPECT_EQ(c, 0u);
}

// ---------------------------------------------------------------------------
// JSON \u escape decoding (BMP, surrogate pairs, error cases)
// ---------------------------------------------------------------------------

TEST(JsonTest, UnicodeEscapeDecodesBasicMultilingualPlane) {
  // One-, two- and three-byte UTF-8 targets: A, U+00E9, U+20AC.
  Json j = ValueOrDie(Json::Parse(R"("A\u00e9\u20AC")"));
  EXPECT_EQ(j.AsString(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonTest, UnicodeEscapeDecodesSurrogatePairs) {
  // U+1F600 (grinning face), a supplementary-plane code point that
  // needs a \ud83d\ude00 surrogate pair and a 4-byte UTF-8 encoding.
  Json j = ValueOrDie(Json::Parse(R"("\ud83d\ude00")"));
  EXPECT_EQ(j.AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, UnicodeEscapeRoundTripsThroughDump) {
  // \u-escaped input decodes to UTF-8 bytes, dumps as those raw bytes
  // (still valid JSON), and reparses equal — the round-trip contract.
  Json original =
      ValueOrDie(Json::Parse(R"({"k":"caf\u00e9 \uD83D\uDE80"})"));
  Json reparsed = ValueOrDie(Json::Parse(original.Dump()));
  EXPECT_EQ(original, reparsed);
  EXPECT_EQ(reparsed.Find("k")->AsString(), "caf\xc3\xa9 \xf0\x9f\x9a\x80");
}

TEST(JsonTest, UnicodeEscapeRejectsLoneAndMalformedSurrogates) {
  EXPECT_FALSE(Json::Parse(R"("\ude00")").ok());         // lone low
  EXPECT_FALSE(Json::Parse(R"("\ud83d")").ok());         // lone high at end
  EXPECT_FALSE(Json::Parse(R"("\ud83dx")").ok());        // high + literal
  EXPECT_FALSE(Json::Parse(R"("\ud83dA")").ok());   // high + non-low
  EXPECT_FALSE(Json::Parse(R"("\ud83d\ud83d")").ok());   // high + high
}

TEST(JsonTest, UnicodeEscapeRejectsBadHex) {
  EXPECT_FALSE(Json::Parse(R"("\u12")").ok());      // too short
  EXPECT_FALSE(Json::Parse(R"("\u12g4")").ok());    // non-hex digit
  EXPECT_FALSE(Json::Parse(R"("\u")").ok());        // nothing at all
}

TEST(JsonTest, ControlCharactersEscapeAndRoundTrip) {
  Json j("line1\nline2\ttab\x01");
  std::string dumped = j.Dump();
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\t"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
  EXPECT_EQ(ValueOrDie(Json::Parse(dumped)).AsString(), j.AsString());
}

}  // namespace
}  // namespace msv::obs
