#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/sample_view.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "relation/workload.h"
#include "test_util.h"
#include "util/stats.h"

namespace msv::core {
namespace {

using msv::testing::AllDistinct;
using msv::testing::MakeSale;
using msv::testing::ValueOrDie;
using storage::SaleRecord;

class SampleViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    MakeSale(env_.get(), "sale", kBase, 5);
    layout_ = SaleRecord::Layout1D();
    MaterializedSampleView::Options options;
    options.build.height = 5;
    view_ = ValueOrDie(MaterializedSampleView::Create(env_.get(), "v",
                                                      "sale", layout_,
                                                      options));
  }

  // Encodes `n` fresh records with row ids starting at kBase and DAY
  // values inside [lo, hi).
  std::string MakeInserts(uint64_t n, double lo, double hi,
                          uint64_t seed = 17) {
    Pcg64 rng(seed);
    std::string out;
    char buf[SaleRecord::kSize];
    for (uint64_t i = 0; i < n; ++i) {
      SaleRecord rec;
      rec.day = rng.DoubleInRange(lo, hi);
      rec.amount = rng.DoubleInRange(0, 10000);
      rec.row_id = kBase + next_insert_id_++;
      rec.EncodeTo(buf);
      out.append(buf, sizeof(buf));
    }
    return out;
  }

  std::vector<uint64_t> Drain(ViewSampler* sampler) {
    std::vector<uint64_t> ids;
    while (!sampler->done()) {
      auto batch = ValueOrDie(sampler->NextBatch());
      for (size_t i = 0; i < batch.count(); ++i) {
        ids.push_back(SaleRecord::DecodeFrom(batch.record(i)).row_id);
      }
    }
    return ids;
  }

  static constexpr uint64_t kBase = 10000;
  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  std::unique_ptr<MaterializedSampleView> view_;
  uint64_t next_insert_id_ = 0;
};

TEST_F(SampleViewTest, FreshViewSamplesLikeThePlainTree) {
  auto q = sampling::RangeQuery::OneDim(20000, 60000);
  auto sale = ValueOrDie(storage::HeapFile::Open(env_.get(), "sale"));
  auto expected =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout_, q));
  auto sampler = ValueOrDie(view_->Sample(q, 3));
  auto ids = Drain(sampler.get());
  EXPECT_TRUE(AllDistinct(ids));
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, expected);
}

TEST_F(SampleViewTest, InsertsBecomeVisibleToNewSamplers) {
  auto q = sampling::RangeQuery::OneDim(30000, 40000);
  std::string inserts = MakeInserts(200, 30000, 40000);
  MSV_ASSERT_OK(view_->Insert(inserts.data(), 200));
  EXPECT_EQ(view_->delta_records(), 200u);

  auto sampler = ValueOrDie(view_->Sample(q, 4));
  auto ids = Drain(sampler.get());
  EXPECT_TRUE(AllDistinct(ids));
  uint64_t from_delta = 0;
  for (uint64_t id : ids) from_delta += id >= kBase;
  EXPECT_EQ(from_delta, 200u);  // every inserted record matches
}

TEST_F(SampleViewTest, InsertsOutsideTheQueryAreFilteredOut) {
  std::string inserts = MakeInserts(150, 90000, 99000);
  MSV_ASSERT_OK(view_->Insert(inserts.data(), 150));
  auto q = sampling::RangeQuery::OneDim(10000, 20000);
  auto sampler = ValueOrDie(view_->Sample(q, 4));
  for (uint64_t id : Drain(sampler.get())) {
    EXPECT_LT(id, kBase);
  }
}

TEST_F(SampleViewTest, UnifiedPrefixMixesPartitionsProportionally) {
  // Insert as many matching records as the base has in the range; an
  // early prefix of the unified stream should then be roughly half
  // delta, half base (exact hypergeometric interleave given exact
  // counts).
  auto q = sampling::RangeQuery::OneDim(45000, 55000);
  auto sale = ValueOrDie(storage::HeapFile::Open(env_.get(), "sale"));
  auto base_matches =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout_, q));
  uint64_t n = base_matches.size();
  std::string inserts = MakeInserts(n, 45000, 55000);
  MSV_ASSERT_OK(view_->Insert(inserts.data(), n));

  RunningStats delta_fraction;
  const int kTrials = 60;
  const size_t kPrefix = 200;
  for (int t = 0; t < kTrials; ++t) {
    auto sampler = ValueOrDie(view_->Sample(q, 100 + t, n));
    size_t from_delta = 0, seen = 0;
    while (!sampler->done() && seen < kPrefix) {
      auto batch = ValueOrDie(sampler->NextBatch());
      for (size_t i = 0; i < batch.count() && seen < kPrefix; ++i, ++seen) {
        from_delta +=
            SaleRecord::DecodeFrom(batch.record(i)).row_id >= kBase;
      }
    }
    delta_fraction.Add(static_cast<double>(from_delta) /
                       static_cast<double>(seen));
  }
  EXPECT_NEAR(delta_fraction.mean(), 0.5, 0.04);
}

TEST_F(SampleViewTest, RebuildFoldsDeltaIntoTheTree) {
  std::string inserts = MakeInserts(500, 0, 100000);
  MSV_ASSERT_OK(view_->Insert(inserts.data(), 500));
  EXPECT_EQ(view_->base_records(), kBase);
  MSV_ASSERT_OK(view_->Rebuild());
  EXPECT_EQ(view_->base_records(), kBase + 500);
  EXPECT_EQ(view_->delta_records(), 0u);

  // The rebuilt view still returns exactly the full match set.
  auto q = sampling::RangeQuery::OneDim(-1e18, 1e18);
  auto sampler = ValueOrDie(view_->Sample(q, 5));
  auto ids = Drain(sampler.get());
  EXPECT_EQ(ids.size(), kBase + 500);
  EXPECT_TRUE(AllDistinct(ids));
}

TEST_F(SampleViewTest, NeedsRebuildThreshold) {
  EXPECT_FALSE(view_->NeedsRebuild());
  std::string inserts = MakeInserts(1500, 0, 100000);  // 15% of the base
  MSV_ASSERT_OK(view_->Insert(inserts.data(), 1500));
  EXPECT_TRUE(view_->NeedsRebuild());
  MSV_ASSERT_OK(view_->Rebuild());
  EXPECT_FALSE(view_->NeedsRebuild());
}

TEST_F(SampleViewTest, ReopenSeesBaseAndDelta) {
  std::string inserts = MakeInserts(70, 20000, 30000);
  MSV_ASSERT_OK(view_->Insert(inserts.data(), 70));
  view_.reset();
  auto reopened = ValueOrDie(
      MaterializedSampleView::Open(env_.get(), "v", layout_));
  EXPECT_EQ(reopened->base_records(), kBase);
  EXPECT_EQ(reopened->delta_records(), 70u);
  auto q = sampling::RangeQuery::OneDim(20000, 30000);
  auto sampler = ValueOrDie(reopened->Sample(q, 6));
  std::vector<uint64_t> ids;
  while (!sampler->done()) {
    auto batch = ValueOrDie(sampler->NextBatch());
    for (size_t i = 0; i < batch.count(); ++i) {
      ids.push_back(SaleRecord::DecodeFrom(batch.record(i)).row_id);
    }
  }
  uint64_t from_delta = 0;
  for (uint64_t id : ids) from_delta += id >= kBase;
  EXPECT_EQ(from_delta, 70u);
}

TEST_F(SampleViewTest, MultipleInsertBatchesAccumulate) {
  for (int i = 0; i < 5; ++i) {
    std::string inserts = MakeInserts(10, 0, 100000, 40 + i);
    MSV_ASSERT_OK(view_->Insert(inserts.data(), 10));
  }
  EXPECT_EQ(view_->delta_records(), 50u);
  auto q = sampling::RangeQuery::OneDim(-1e18, 1e18);
  auto sampler = ValueOrDie(view_->Sample(q, 7));
  auto ids = Drain(sampler.get());
  EXPECT_EQ(ids.size(), kBase + 50);
  EXPECT_TRUE(AllDistinct(ids));
}

}  // namespace
}  // namespace msv::core
