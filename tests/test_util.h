// Shared helpers for the MSV test suite.

#ifndef MSV_TESTS_TEST_UTIL_H_
#define MSV_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "io/env.h"
#include "relation/sale_generator.h"
#include "relation/workload.h"
#include "sampling/sample_stream.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "util/status.h"

namespace msv::testing {

#define MSV_ASSERT_OK(expr)                                 \
  do {                                                      \
    ::msv::Status _st = (expr);                             \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                \
  } while (0)

#define MSV_EXPECT_OK(expr)                                 \
  do {                                                      \
    ::msv::Status _st = (expr);                             \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                \
  } while (0)

/// Unwraps a Result<T> or fails the test.
template <typename T>
T ValueOrDie(Result<T> result) {
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) std::abort();
  return std::move(result).value();
}

/// Generates a SALE heap file in `env` and returns its opened handle.
inline std::unique_ptr<storage::HeapFile> MakeSale(
    io::Env* env, const std::string& name, uint64_t n, uint64_t seed = 42,
    double day_max = 100000.0) {
  relation::SaleGenOptions options;
  options.num_records = n;
  options.seed = seed;
  options.day_max = day_max;
  EXPECT_TRUE(relation::GenerateSaleRelation(env, name, options).ok());
  return ValueOrDie(storage::HeapFile::Open(env, name));
}

/// Drains a sample stream to completion; returns row_ids in arrival order.
inline std::vector<uint64_t> DrainRowIds(sampling::SampleStream* stream,
                                         uint64_t max_pulls = 1'000'000) {
  std::vector<uint64_t> ids;
  for (uint64_t pulls = 0; !stream->done() && pulls < max_pulls; ++pulls) {
    auto batch = ValueOrDie(stream->NextBatch());
    for (size_t i = 0; i < batch.count(); ++i) {
      ids.push_back(storage::SaleRecord::DecodeFrom(batch.record(i)).row_id);
    }
  }
  EXPECT_TRUE(stream->done()) << "stream did not finish";
  return ids;
}

/// Pulls until at least `want` samples arrived (or the stream finishes);
/// returns row_ids in arrival order.
inline std::vector<uint64_t> TakeRowIds(sampling::SampleStream* stream,
                                        uint64_t want) {
  std::vector<uint64_t> ids;
  while (!stream->done() && ids.size() < want) {
    auto batch = ValueOrDie(stream->NextBatch());
    for (size_t i = 0; i < batch.count(); ++i) {
      ids.push_back(storage::SaleRecord::DecodeFrom(batch.record(i)).row_id);
    }
  }
  return ids;
}

/// True when `ids` contains no duplicate.
inline bool AllDistinct(const std::vector<uint64_t>& ids) {
  std::set<uint64_t> s(ids.begin(), ids.end());
  return s.size() == ids.size();
}

}  // namespace msv::testing

#endif  // MSV_TESTS_TEST_UTIL_H_
