# Negative-compilation driver for the thread-safety analysis.
#
# Invoked as a CTest test (see tests/CMakeLists.txt) with:
#   cmake -DCXX=<clang++> -DSRC=<thread_safety_compile_cases.cc>
#         -DINCLUDE_DIR=<repo>/src -P thread_safety_compile_test.cmake
#
# Asserts that the baseline translation unit compiles cleanly under
# -Wthread-safety -Wthread-safety-beta -Werror, and that each MSV_NC_*
# bad-pattern define makes the same compile FAIL with a thread-safety
# diagnostic. Requires a Clang compiler; the configure step only
# registers this test when CMAKE_CXX_COMPILER_ID matches Clang.

if(NOT DEFINED CXX OR NOT DEFINED SRC OR NOT DEFINED INCLUDE_DIR)
  message(FATAL_ERROR "usage: cmake -DCXX=... -DSRC=... -DINCLUDE_DIR=... -P thread_safety_compile_test.cmake")
endif()

set(FLAGS -std=c++20 -fsyntax-only -Wall -Wextra
    -Wthread-safety -Wthread-safety-beta -Werror "-I${INCLUDE_DIR}")

# Baseline: the harness itself must be clean, otherwise every negative
# case below would "fail to compile" for the wrong reason.
execute_process(
  COMMAND ${CXX} ${FLAGS} ${SRC}
  RESULT_VARIABLE baseline_rc
  OUTPUT_VARIABLE baseline_out
  ERROR_VARIABLE baseline_err)
if(NOT baseline_rc EQUAL 0)
  message(FATAL_ERROR "baseline compile of ${SRC} failed (rc=${baseline_rc}):\n${baseline_err}")
endif()
message(STATUS "baseline: clean compile OK")

set(BAD_CASES
  MSV_NC_UNGUARDED_READ
  MSV_NC_UNGUARDED_WRITE
  MSV_NC_MISSING_UNLOCK
  MSV_NC_UNLOCK_NOT_HELD
  MSV_NC_DOUBLE_LOCK
  MSV_NC_WRITE_UNDER_SHARED
  MSV_NC_REQUIRES_NOT_HELD)

foreach(case IN LISTS BAD_CASES)
  execute_process(
    COMMAND ${CXX} ${FLAGS} -D${case} ${SRC}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "${case}: compiled CLEAN but must be rejected — "
            "the thread-safety analysis is not catching this pattern")
  endif()
  if(NOT err MATCHES "thread-safety|thread_safety")
    message(FATAL_ERROR "${case}: failed for the wrong reason (no "
            "thread-safety diagnostic in stderr):\n${err}")
  endif()
  message(STATUS "${case}: rejected as expected")
endforeach()

message(STATUS "thread-safety negative-compilation checks passed")
