#include <algorithm>
#include <map>
#include <vector>

#include "btree/block_sampler.h"
#include "btree/btree_sampler.h"
#include "btree/ranked_btree.h"
#include "gtest/gtest.h"
#include "io/buffer_pool.h"
#include "io/env.h"
#include "relation/workload.h"
#include "test_util.h"
#include "util/stats.h"

namespace msv::btree {
namespace {

using msv::testing::AllDistinct;
using msv::testing::DrainRowIds;
using msv::testing::MakeSale;
using msv::testing::TakeRowIds;
using msv::testing::ValueOrDie;
using storage::HeapFile;
using storage::SaleRecord;

constexpr size_t kPageSize = 4096;  // small pages exercise multiple levels

class RankedBTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    MakeSale(env_.get(), "sale", kRecords, /*seed=*/21);
    BTreeOptions options;
    options.page_size = kPageSize;
    MSV_ASSERT_OK(BuildRankedBTree(env_.get(), "sale", "bt",
                                   SaleRecord::Layout1D(), options));
    pool_ = std::make_unique<io::BufferPool>(kPageSize, 256);
    tree_ = ValueOrDie(RankedBTree::Open(env_.get(), "bt",
                                         SaleRecord::Layout1D(), pool_.get(),
                                         /*file_id=*/1));
    // Oracle: all (key, row_id) sorted by key.
    auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
    auto scanner = sale->NewScanner();
    for (;;) {
      const char* rec = ValueOrDie(scanner.Next());
      if (rec == nullptr) break;
      auto r = SaleRecord::DecodeFrom(rec);
      sorted_.emplace_back(r.day, r.row_id);
    }
    std::sort(sorted_.begin(), sorted_.end());
  }

  static constexpr uint64_t kRecords = 20000;
  std::unique_ptr<io::Env> env_;
  std::unique_ptr<io::BufferPool> pool_;
  std::unique_ptr<RankedBTree> tree_;
  std::vector<std::pair<double, uint64_t>> sorted_;
};

TEST_F(RankedBTreeTest, MetaIsConsistent) {
  const BTreeMeta& meta = tree_->meta();
  EXPECT_EQ(meta.num_records, kRecords);
  EXPECT_GT(meta.height, 2u);  // multiple levels with 4 KB pages
  EXPECT_EQ(meta.num_leaves,
            (kRecords + meta.records_per_leaf - 1) / meta.records_per_leaf);
}

TEST_F(RankedBTreeTest, ReadByRankMatchesSortedOracle) {
  std::vector<char> rec(SaleRecord::kSize);
  for (uint64_t rank :
       std::vector<uint64_t>{0, 1, 57, 9999, kRecords - 1}) {
    MSV_ASSERT_OK(tree_->ReadByRank(rank, rec.data()));
    auto r = SaleRecord::DecodeFrom(rec.data());
    EXPECT_EQ(r.day, sorted_[rank].first) << "rank " << rank;
    EXPECT_EQ(r.row_id, sorted_[rank].second) << "rank " << rank;
  }
  EXPECT_TRUE(tree_->ReadByRank(kRecords, rec.data()).IsOutOfRange());
}

TEST_F(RankedBTreeTest, CountLessMatchesOracle) {
  for (double key : {0.0, 12345.6, 50000.0, 99999.9, 200000.0}) {
    uint64_t expected =
        std::lower_bound(sorted_.begin(), sorted_.end(),
                         std::make_pair(key, uint64_t{0})) -
        sorted_.begin();
    EXPECT_EQ(ValueOrDie(tree_->CountLess(key)), expected) << key;
  }
}

TEST_F(RankedBTreeTest, CountLessOrEqualAtExactKeys) {
  // Pick real keys; CountLE(key) - CountLT(key) == multiplicity (1 here).
  for (uint64_t rank : {10ull, 500ull, 19999ull}) {
    double key = sorted_[rank].first;
    uint64_t lt = ValueOrDie(tree_->CountLess(key));
    uint64_t le = ValueOrDie(tree_->CountLessOrEqual(key));
    EXPECT_EQ(le, lt + 1) << "key " << key;
    EXPECT_EQ(lt, rank);
  }
}

TEST_F(RankedBTreeTest, KeyAtRankIsMonotone) {
  double last = -1;
  for (uint64_t rank = 0; rank < kRecords; rank += 997) {
    double key = ValueOrDie(tree_->KeyAtRank(rank));
    EXPECT_GE(key, last);
    last = key;
  }
}

TEST_F(RankedBTreeTest, SamplerReturnsExactlyTheMatchSet) {
  auto layout = SaleRecord::Layout1D();
  auto query = sampling::RangeQuery::OneDim(25000, 35000);
  auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  auto expected =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout, query));

  BTreeSampler sampler(tree_.get(), query, /*seed=*/5);
  auto got = DrainRowIds(&sampler);
  EXPECT_TRUE(AllDistinct(got));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(sampler.population(), expected.size());
}

TEST_F(RankedBTreeTest, SamplerRespectsPredicate) {
  auto query = sampling::RangeQuery::OneDim(60000, 61000);
  BTreeSampler sampler(tree_.get(), query, 6);
  auto layout = SaleRecord::Layout1D();
  while (!sampler.done()) {
    auto batch = ValueOrDie(sampler.NextBatch());
    for (size_t i = 0; i < batch.count(); ++i) {
      EXPECT_TRUE(query.Matches(layout, batch.record(i)));
    }
  }
}

TEST_F(RankedBTreeTest, EmptyRangeFinishesImmediately) {
  auto query = sampling::RangeQuery::OneDim(2e6, 3e6);
  BTreeSampler sampler(tree_.get(), query, 6);
  auto got = DrainRowIds(&sampler);
  EXPECT_TRUE(got.empty());
}

TEST_F(RankedBTreeTest, SamplerPrefixIsUniform) {
  auto layout = SaleRecord::Layout1D();
  auto query = sampling::RangeQuery::OneDim(40000, 44000);
  auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  auto matching =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout, query));
  ASSERT_GT(matching.size(), 100u);
  std::map<uint64_t, size_t> index;
  for (size_t i = 0; i < matching.size(); ++i) index[matching[i]] = i;

  const uint64_t kPrefix = 40;
  const int kTrials = 400;
  std::vector<uint64_t> counts(matching.size(), 0);
  for (int t = 0; t < kTrials; ++t) {
    BTreeSampler sampler(tree_.get(), query, /*seed=*/9000 + t);
    auto prefix = TakeRowIds(&sampler, kPrefix);
    ASSERT_GE(prefix.size(), kPrefix);
    prefix.resize(kPrefix);  // batches may overshoot; keep an exact prefix
    for (uint64_t id : prefix) {
      ++counts[index.at(id)];
    }
  }
  std::vector<double> expected(
      matching.size(), double(kPrefix) * kTrials / double(matching.size()));
  double stat = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(stat, matching.size() - 1), 1e-5)
      << "stat=" << stat;
}

TEST_F(RankedBTreeTest, BufferPoolMakesRepeatSamplingCheap) {
  auto query = sampling::RangeQuery::OneDim(10000, 12000);
  BTreeSampler sampler(tree_.get(), query, 3);
  DrainRowIds(&sampler);
  // Sampling again: the touched range is small enough to be fully
  // buffered, so a fresh pass over the same range is nearly all hits.
  pool_->ResetStats();
  BTreeSampler again(tree_.get(), query, 4);
  DrainRowIds(&again);
  EXPECT_GT(pool_->stats().HitRate(), 0.95);
}

TEST_F(RankedBTreeTest, ReadLeafRecordsCoversTheTree) {
  std::string all;
  uint64_t total = 0;
  for (uint64_t leaf = 0; leaf < tree_->meta().num_leaves; ++leaf) {
    total += ValueOrDie(tree_->ReadLeafRecords(leaf, &all));
  }
  EXPECT_EQ(total, kRecords);
  EXPECT_EQ(all.size(), kRecords * SaleRecord::kSize);
  EXPECT_TRUE(tree_->ReadLeafRecords(tree_->meta().num_leaves, &all)
                  .status()
                  .IsOutOfRange());
}

TEST_F(RankedBTreeTest, BlockSamplerReturnsExactlyTheMatchSet) {
  auto layout = SaleRecord::Layout1D();
  auto query = sampling::RangeQuery::OneDim(30000, 50000);
  auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  auto expected =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout, query));
  BlockSampler sampler(tree_.get(), query, 5);
  auto got = DrainRowIds(&sampler);
  EXPECT_TRUE(AllDistinct(got));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  // Far fewer page reads than records returned — the block advantage.
  EXPECT_LT(sampler.pages_read(), expected.size() / 10);
}

TEST_F(RankedBTreeTest, BlockSamplerPageUniformity) {
  // Each pull is a whole page; over trials every covered page should be
  // drawn first equally often.
  auto query = sampling::RangeQuery::OneDim(10000, 90000);
  std::map<uint64_t, uint64_t> first_page_counts;
  const int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    BlockSampler sampler(tree_.get(), query, 4000 + t);
    MSV_ASSERT_OK(sampler.NextBatch().status());  // init
    auto batch = ValueOrDie(sampler.NextBatch());
    ASSERT_GT(batch.count(), 0u);
    // Identify the page by its first record's row id.
    ++first_page_counts[SaleRecord::DecodeFrom(batch.record(0)).row_id];
  }
  // No page should dominate: with ~P pages, max count ~ trials/P plus
  // noise.
  uint64_t max_count = 0;
  for (const auto& [_, count] : first_page_counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GT(first_page_counts.size(), 50u);
  EXPECT_LT(max_count, 25u);
}

TEST_F(RankedBTreeTest, BlockSamplerEmptyRange) {
  auto query = sampling::RangeQuery::OneDim(2e6, 3e6);
  BlockSampler sampler(tree_.get(), query, 5);
  EXPECT_TRUE(DrainRowIds(&sampler).empty());
}

// Parameterized: trees built over different relation sizes all verify.
class BTreeSizeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeSizeSweep, BuildAndFullValidate) {
  const uint64_t n = GetParam();
  auto env = io::NewMemEnv();
  MakeSale(env.get(), "sale", n, 31);
  BTreeOptions options;
  options.page_size = 4096;
  MSV_ASSERT_OK(BuildRankedBTree(env.get(), "sale", "bt",
                                 SaleRecord::Layout1D(), options));
  io::BufferPool pool(4096, 64);
  auto tree = ValueOrDie(RankedBTree::Open(env.get(), "bt",
                                           SaleRecord::Layout1D(), &pool, 1));
  EXPECT_EQ(tree->meta().num_records, n);
  // Every rank readable, keys monotone.
  std::vector<char> rec(SaleRecord::kSize);
  double last = -1;
  for (uint64_t r = 0; r < n; ++r) {
    MSV_ASSERT_OK(tree->ReadByRank(r, rec.data()));
    double key = SaleRecord::Layout1D().Key(rec.data(), 0);
    ASSERT_GE(key, last) << "rank " << r;
    last = key;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BTreeSizeSweep,
                         ::testing::Values(1, 2, 39, 40, 41, 1000, 5000));

}  // namespace
}  // namespace msv::btree
