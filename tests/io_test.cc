#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "io/buffer_pool.h"
#include "io/disk_model.h"
#include "io/env.h"
#include "test_util.h"

namespace msv::io {
namespace {

using msv::testing::ValueOrDie;

// ---------------------------------------------------------------------------
// Env / File
// ---------------------------------------------------------------------------

class EnvTest : public ::testing::TestWithParam<bool /* posix */> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      // A fresh directory per test so files from earlier runs cannot leak.
      const auto* info =
          ::testing::UnitTest::GetInstance()->current_test_info();
      root_ = ::testing::TempDir() + "/msv_" + info->name();
      std::filesystem::remove_all(root_);
      std::filesystem::create_directories(root_);
      env_ = NewPosixEnv(root_);
    } else {
      env_ = NewMemEnv();
    }
  }
  std::unique_ptr<Env> env_;
  std::string root_;
};

TEST_P(EnvTest, CreateWriteRead) {
  auto file = ValueOrDie(env_->OpenFile("t1", true));
  MSV_ASSERT_OK(file->Append("hello", 5));
  MSV_ASSERT_OK(file->Append(" world", 6));
  char buf[11];
  MSV_ASSERT_OK(file->ReadExact(0, 11, buf));
  EXPECT_EQ(std::string(buf, 11), "hello world");
  EXPECT_EQ(ValueOrDie(file->Size()), 11u);
}

TEST_P(EnvTest, PositionalWriteExtends) {
  auto file = ValueOrDie(env_->OpenFile("t2", true));
  MSV_ASSERT_OK(file->Write(100, "x", 1));
  EXPECT_EQ(ValueOrDie(file->Size()), 101u);
  char c;
  MSV_ASSERT_OK(file->ReadExact(100, 1, &c));
  EXPECT_EQ(c, 'x');
}

TEST_P(EnvTest, ShortReadAtEof) {
  auto file = ValueOrDie(env_->OpenFile("t3", true));
  MSV_ASSERT_OK(file->Append("abc", 3));
  char buf[10];
  size_t got = ValueOrDie(file->Read(1, 10, buf));
  EXPECT_EQ(got, 2u);
  EXPECT_EQ(std::string(buf, 2), "bc");
  EXPECT_TRUE(file->ReadExact(1, 10, buf).IsIOError());
}

TEST_P(EnvTest, MissingFileIsNotFound) {
  auto r = env_->OpenFile("nope", false);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_P(EnvTest, ExistsAndDelete) {
  EXPECT_FALSE(ValueOrDie(env_->FileExists("f")));
  { auto f = ValueOrDie(env_->OpenFile("f", true)); }
  EXPECT_TRUE(ValueOrDie(env_->FileExists("f")));
  MSV_ASSERT_OK(env_->DeleteFile("f"));
  EXPECT_FALSE(ValueOrDie(env_->FileExists("f")));
}

TEST_P(EnvTest, RenameReplacesTarget) {
  {
    auto f = ValueOrDie(env_->OpenFile("src", true));
    MSV_ASSERT_OK(f->Append("new", 3));
  }
  {
    auto f = ValueOrDie(env_->OpenFile("dst", true));
    MSV_ASSERT_OK(f->Append("old-old", 7));
  }
  MSV_ASSERT_OK(env_->RenameFile("src", "dst"));
  EXPECT_FALSE(ValueOrDie(env_->FileExists("src")));
  auto f = ValueOrDie(env_->OpenFile("dst", false));
  EXPECT_EQ(ValueOrDie(f->Size()), 3u);
  char buf[3];
  MSV_ASSERT_OK(f->ReadExact(0, 3, buf));
  EXPECT_EQ(std::string(buf, 3), "new");
}

TEST_P(EnvTest, RenameMissingSourceFails) {
  EXPECT_FALSE(env_->RenameFile("ghost", "dst").ok());
}

TEST_P(EnvTest, ReopenSeesData) {
  {
    auto f = ValueOrDie(env_->OpenFile("persist", true));
    MSV_ASSERT_OK(f->Append("data", 4));
    MSV_ASSERT_OK(f->Sync());
  }
  auto f = ValueOrDie(env_->OpenFile("persist", false));
  char buf[4];
  MSV_ASSERT_OK(f->ReadExact(0, 4, buf));
  EXPECT_EQ(std::string(buf, 4), "data");
}

INSTANTIATE_TEST_SUITE_P(MemAndPosix, EnvTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Posix" : "Mem";
                         });

TEST(MemEnvTest, PrivateEnvsAreIsolated) {
  auto a = NewMemEnv();
  auto b = NewMemEnv();
  { auto f = ValueOrDie(a->OpenFile("x", true)); }
  EXPECT_FALSE(ValueOrDie(b->FileExists("x")));
}

// ---------------------------------------------------------------------------
// Disk model
// ---------------------------------------------------------------------------

TEST(DiskModelTest, OptionsValidation) {
  DiskModelOptions bad;
  bad.transfer_mb_per_s = 0;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  bad = DiskModelOptions();
  bad.seek_ms = -1;
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  EXPECT_TRUE(DiskModelOptions().Validate().ok());
}

TEST(DiskModelTest, SequentialCheaperThanRandom) {
  DiskModelOptions options;
  DiskDevice seq(options), rnd(options);
  const uint64_t kPage = 64 << 10;
  // 100 sequential page reads vs 100 scattered ones.
  for (int i = 0; i < 100; ++i) {
    seq.Access(i * kPage, kPage, false);
    rnd.Access((i * 7919 % 1000) * kPage, kPage, false);
  }
  EXPECT_LT(seq.clock().NowMs() * 4, rnd.clock().NowMs());
  EXPECT_EQ(seq.stats().seeks, 1u);  // only the initial positioning
  EXPECT_EQ(seq.stats().sequential_ios, 99u);
}

TEST(DiskModelTest, ClockMonotone) {
  DiskDevice dev;
  double last = 0;
  for (int i = 0; i < 50; ++i) {
    dev.Access(i * 100, 100, i % 2 == 0);
    EXPECT_GT(dev.clock().NowMs(), last);
    last = dev.clock().NowMs();
  }
}

TEST(DiskModelTest, ScanTimeMatchesModel) {
  DiskModelOptions options;
  options.transfer_mb_per_s = 100.0;
  DiskDevice dev(options);
  // 100 MB sequential scan ~ 1000 ms + fixed costs.
  double ms = dev.SequentialScanMs(100 * 1000 * 1000);
  EXPECT_NEAR(ms, 1000.0 + options.seek_ms + options.rotational_ms +
                      options.request_overhead_ms,
              1e-9);
}

TEST(SimEnvTest, ChargesTimePerAccess) {
  auto mem = NewMemEnv();
  auto device = std::make_shared<DiskDevice>();
  auto sim = NewSimEnv(mem.get(), device);
  auto f = ValueOrDie(sim->OpenFile("f", true));
  std::string data(4096, 'a');
  MSV_ASSERT_OK(f->Append(data.data(), data.size()));
  double after_write = device->clock().NowMs();
  EXPECT_GT(after_write, 0.0);
  char buf[4096];
  MSV_ASSERT_OK(f->ReadExact(0, sizeof(buf), buf));
  EXPECT_GT(device->clock().NowMs(), after_write);
  EXPECT_EQ(device->stats().read_bytes, 4096u);
  EXPECT_EQ(device->stats().written_bytes, 4096u);
}

TEST(SimEnvTest, InterleavedFilesSeek) {
  auto mem = NewMemEnv();
  auto device = std::make_shared<DiskDevice>();
  auto sim = NewSimEnv(mem.get(), device);
  auto a = ValueOrDie(sim->OpenFile("a", true));
  auto b = ValueOrDie(sim->OpenFile("b", true));
  std::string block(1024, 'x');
  MSV_ASSERT_OK(a->Append(block.data(), block.size()));
  MSV_ASSERT_OK(b->Append(block.data(), block.size()));
  device->ResetStats();
  char buf[512];
  // Alternating reads across files must all be discontiguous.
  for (int i = 0; i < 4; ++i) {
    MSV_ASSERT_OK(a->ReadExact(i * 128, 128, buf));
    MSV_ASSERT_OK(b->ReadExact(i * 128, 128, buf));
  }
  EXPECT_EQ(device->stats().seeks, 8u);
}

TEST(SimEnvTest, DataIntegrityThroughDecorator) {
  auto mem = NewMemEnv();
  auto device = std::make_shared<DiskDevice>();
  auto sim = NewSimEnv(mem.get(), device);
  auto f = ValueOrDie(sim->OpenFile("f", true));
  MSV_ASSERT_OK(f->Write(10, "xyz", 3));
  char buf[3];
  MSV_ASSERT_OK(f->ReadExact(10, 3, buf));
  EXPECT_EQ(std::string(buf, 3), "xyz");
  // Inner env sees the same bytes.
  auto inner = ValueOrDie(mem->OpenFile("f", false));
  MSV_ASSERT_OK(inner->ReadExact(10, 3, buf));
  EXPECT_EQ(std::string(buf, 3), "xyz");
}

// ---------------------------------------------------------------------------
// Buffer pool
// ---------------------------------------------------------------------------

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = NewMemEnv();
    file_ = ValueOrDie(env_->OpenFile("data", true));
    // 8 pages of 256 bytes, each filled with its page number.
    for (int p = 0; p < 8; ++p) {
      std::string page(256, static_cast<char>('0' + p));
      MSV_ASSERT_OK(file_->Append(page.data(), page.size()));
    }
  }
  std::unique_ptr<Env> env_;
  std::unique_ptr<File> file_;
};

TEST_F(BufferPoolTest, MissThenHit) {
  BufferPool pool(256, 4);
  {
    auto ref = ValueOrDie(pool.Get(file_.get(), 1, 3));
    EXPECT_EQ(ref.data()[0], '3');
    EXPECT_EQ(ref.size(), 256u);
  }
  EXPECT_EQ(pool.stats().misses, 1u);
  { auto ref = ValueOrDie(pool.Get(file_.get(), 1, 3)); }
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(BufferPoolTest, EvictsLruWhenFull) {
  BufferPool pool(256, 2);
  { auto a = ValueOrDie(pool.Get(file_.get(), 1, 0)); }
  { auto b = ValueOrDie(pool.Get(file_.get(), 1, 1)); }
  // Touch page 0 so page 1 is LRU.
  { auto a = ValueOrDie(pool.Get(file_.get(), 1, 0)); }
  { auto c = ValueOrDie(pool.Get(file_.get(), 1, 2)); }
  EXPECT_EQ(pool.stats().evictions, 1u);
  pool.ResetStats();
  { auto a = ValueOrDie(pool.Get(file_.get(), 1, 0)); }
  EXPECT_EQ(pool.stats().hits, 1u);  // page 0 survived
  { auto b = ValueOrDie(pool.Get(file_.get(), 1, 1)); }
  EXPECT_EQ(pool.stats().misses, 1u);  // page 1 was evicted
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(256, 2);
  auto a = ValueOrDie(pool.Get(file_.get(), 1, 0));  // stays pinned
  auto b = ValueOrDie(pool.Get(file_.get(), 1, 1));  // stays pinned
  auto r = pool.Get(file_.get(), 1, 2);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST_F(BufferPoolTest, DistinctFileIdsDistinctPages) {
  BufferPool pool(256, 4);
  auto other = ValueOrDie(env_->OpenFile("other", true));
  std::string page(256, 'Z');
  MSV_ASSERT_OK(other->Append(page.data(), page.size()));
  auto a = ValueOrDie(pool.Get(file_.get(), 1, 0));
  auto b = ValueOrDie(pool.Get(other.get(), 2, 0));
  EXPECT_EQ(a.data()[0], '0');
  EXPECT_EQ(b.data()[0], 'Z');
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST_F(BufferPoolTest, PageBeyondEofFails) {
  BufferPool pool(256, 2);
  auto r = pool.Get(file_.get(), 1, 100);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
}

TEST_F(BufferPoolTest, ClearDropsUnpinned) {
  BufferPool pool(256, 4);
  { auto a = ValueOrDie(pool.Get(file_.get(), 1, 0)); }
  EXPECT_EQ(pool.resident_pages(), 1u);
  pool.Clear();
  EXPECT_EQ(pool.resident_pages(), 0u);
}

TEST_F(BufferPoolTest, MoveSemanticsOfPageRef) {
  BufferPool pool(256, 2);
  PageRef outer;
  {
    auto inner = ValueOrDie(pool.Get(file_.get(), 1, 0));
    outer = std::move(inner);
    EXPECT_FALSE(inner.valid());
  }
  EXPECT_TRUE(outer.valid());
  EXPECT_EQ(outer.data()[0], '0');
}

}  // namespace
}  // namespace msv::io
