// Bounded-error (WITHIN x%) and bounded-time (WITHIN t MS) ESTIMATE
// semantics:
//
//   * Grammar — the WITHIN clauses parse into EstimateStmt with strict
//     validation (range, integrality, duplicates).
//   * StoppingRule — the pure stopping predicate: warm-up gate, relative
//     error against |value|, deadline-first precedence, zero-value edge.
//   * Coverage — over 200 seeded runs, the CI produced when the rule
//     stops at "error bound met" contains the exact answer at (within
//     binomial tolerance of) the nominal confidence, and early stopping
//     does not bias the point estimate. Mirrors the harness style of
//     statistical_test.cc: fresh build seed per run, ground truth by
//     heap scan.
//   * Executor plumbing — bound-outcome output lines, the statement
//     ledger's estimate block, and the GROUP BY + WITHIN % rejection.

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "obs/log.h"
#include "query/executor.h"
#include "query/parser.h"
#include "relation/sale_generator.h"
#include "sampling/online_aggregator.h"
#include "sampling/stopping_rule.h"
#include "storage/record.h"
#include "test_util.h"

namespace msv {
namespace {

using msv::testing::ValueOrDie;
using query::EstimateStmt;
using query::ParseOne;
using sampling::StoppingRule;
using storage::SaleRecord;

// ---------------------------------------------------------------------------
// Grammar
// ---------------------------------------------------------------------------

TEST(WithinGrammarTest, ErrorBoundClause) {
  auto stmt = std::get<EstimateStmt>(ValueOrDie(ParseOne(
      "ESTIMATE AVG(amount) FROM v WHERE day BETWEEN 1 AND 2 WITHIN 2%")));
  EXPECT_DOUBLE_EQ(stmt.within_pct, 2.0);
  EXPECT_EQ(stmt.within_ms, 0u);
  EXPECT_FALSE(stmt.samples_set);
}

TEST(WithinGrammarTest, DeadlineClause) {
  auto stmt = std::get<EstimateStmt>(ValueOrDie(ParseOne(
      "ESTIMATE SUM(amount) FROM v WHERE day BETWEEN 1 AND 2 WITHIN 500 MS")));
  EXPECT_DOUBLE_EQ(stmt.within_pct, 0.0);
  EXPECT_EQ(stmt.within_ms, 500u);
}

TEST(WithinGrammarTest, BothClausesEitherOrder) {
  auto stmt = std::get<EstimateStmt>(
      ValueOrDie(ParseOne("ESTIMATE AVG(amount) FROM v WHERE day BETWEEN 1 "
                          "AND 2 WITHIN 250 MS WITHIN 1.5%")));
  EXPECT_DOUBLE_EQ(stmt.within_pct, 1.5);
  EXPECT_EQ(stmt.within_ms, 250u);
}

TEST(WithinGrammarTest, ComposesWithSamplesAndConfidence) {
  auto stmt = std::get<EstimateStmt>(ValueOrDie(
      ParseOne("ESTIMATE AVG(amount) FROM v WHERE day BETWEEN 1 AND 2 "
               "SAMPLES 5000 CONFIDENCE 0.99 WITHIN 2%")));
  EXPECT_TRUE(stmt.samples_set);
  EXPECT_EQ(stmt.samples, 5000u);
  EXPECT_DOUBLE_EQ(stmt.confidence, 0.99);
  EXPECT_DOUBLE_EQ(stmt.within_pct, 2.0);
}

TEST(WithinGrammarTest, RejectsMalformedBounds) {
  const char* bad[] = {
      // Out-of-range error bounds.
      "ESTIMATE AVG(a) FROM v WHERE d BETWEEN 1 AND 2 WITHIN 0%",
      "ESTIMATE AVG(a) FROM v WHERE d BETWEEN 1 AND 2 WITHIN 100%",
      "ESTIMATE AVG(a) FROM v WHERE d BETWEEN 1 AND 2 WITHIN -3%",
      // Non-positive / fractional deadlines.
      "ESTIMATE AVG(a) FROM v WHERE d BETWEEN 1 AND 2 WITHIN 0 MS",
      "ESTIMATE AVG(a) FROM v WHERE d BETWEEN 1 AND 2 WITHIN 2.5 MS",
      // Missing unit, duplicate clauses.
      "ESTIMATE AVG(a) FROM v WHERE d BETWEEN 1 AND 2 WITHIN 2",
      "ESTIMATE AVG(a) FROM v WHERE d BETWEEN 1 AND 2 WITHIN 2% WITHIN 3%",
      "ESTIMATE AVG(a) FROM v WHERE d BETWEEN 1 AND 2 WITHIN 10 MS WITHIN "
      "20 MS",
  };
  for (const char* sql : bad) {
    EXPECT_FALSE(ParseOne(sql).ok()) << sql;
  }
}

// ---------------------------------------------------------------------------
// StoppingRule
// ---------------------------------------------------------------------------

sampling::Estimate MakeEstimate(double value, double half_width,
                                uint64_t samples) {
  sampling::Estimate e;
  e.value = value;
  e.half_width = half_width;
  e.samples = samples;
  return e;
}

TEST(StoppingRuleTest, InactiveWithoutBounds) {
  StoppingRule rule({});
  EXPECT_FALSE(rule.active());
  EXPECT_EQ(rule.Check(MakeEstimate(100, 0, 1000)),
            StoppingRule::Verdict::kContinue);
}

TEST(StoppingRuleTest, ErrorBoundAgainstRelativeWidth) {
  StoppingRule::Options options;
  options.rel_error_pct = 5.0;
  StoppingRule rule(options);
  EXPECT_TRUE(rule.active());
  // 4% relative width qualifies, 6% does not.
  EXPECT_EQ(rule.Check(MakeEstimate(100, 4, 1000)),
            StoppingRule::Verdict::kErrorBoundMet);
  EXPECT_EQ(rule.Check(MakeEstimate(100, 6, 1000)),
            StoppingRule::Verdict::kContinue);
}

TEST(StoppingRuleTest, WarmupGateBlocksEarlyTrigger) {
  StoppingRule::Options options;
  options.rel_error_pct = 5.0;
  options.min_samples = 30;
  StoppingRule rule(options);
  // A 1-sample "estimate" has half_width 0 — without the warm-up gate it
  // would satisfy any error bound instantly.
  EXPECT_EQ(rule.Check(MakeEstimate(100, 0, 1)),
            StoppingRule::Verdict::kContinue);
  EXPECT_EQ(rule.Check(MakeEstimate(100, 0, 30)),
            StoppingRule::Verdict::kErrorBoundMet);
}

TEST(StoppingRuleTest, ZeroValueNeedsZeroWidth) {
  StoppingRule::Options options;
  options.rel_error_pct = 5.0;
  StoppingRule rule(options);
  // Relative error is undefined at value == 0: only an exact (zero-width)
  // interval qualifies.
  EXPECT_EQ(rule.Check(MakeEstimate(0, 1, 1000)),
            StoppingRule::Verdict::kContinue);
  EXPECT_EQ(rule.Check(MakeEstimate(0, 0, 1000)),
            StoppingRule::Verdict::kErrorBoundMet);
}

TEST(StoppingRuleTest, DeadlineTakesPrecedence) {
  StoppingRule::Options options;
  options.rel_error_pct = 50.0;
  options.deadline_us = 1000;
  // Fake elapsed budget: the modeled-disk hook reports the deadline is
  // long blown, so even an estimate meeting the error bound reports the
  // deadline verdict (checked first).
  options.extra_elapsed_us = [] { return uint64_t{10'000'000}; };
  StoppingRule rule(options);
  EXPECT_EQ(rule.Check(MakeEstimate(100, 1, 1000)),
            StoppingRule::Verdict::kDeadlineHit);
}

// ---------------------------------------------------------------------------
// Coverage + unbiasedness over seeded runs
// ---------------------------------------------------------------------------

class BoundedCoverageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    relation::SaleGenOptions gen;
    gen.num_records = 2000;
    gen.seed = 7;
    ASSERT_TRUE(relation::GenerateSaleRelation(env_.get(), "sale", gen).ok());
    layout_ = SaleRecord::Layout1D();

    auto heap = ValueOrDie(storage::HeapFile::Open(env_.get(), "sale"));
    auto scanner = heap->NewScanner();
    for (uint64_t i = 0; i < heap->record_count(); ++i) {
      const char* rec = ValueOrDie(scanner.Next());
      SaleRecord r = SaleRecord::DecodeFrom(rec);
      if (r.day >= kLo && r.day <= kHi) {
        ++matching_;
        true_sum_ += r.amount;
      }
    }
    ASSERT_GT(matching_, 500u);
    true_avg_ = true_sum_ / static_cast<double>(matching_);
  }

  static constexpr double kLo = 20000.0;
  static constexpr double kHi = 70000.0;

  std::unique_ptr<core::AceTree> BuildTree(uint64_t build_seed) {
    core::AceBuildOptions build;
    build.page_size = 4096;
    build.key_dims = 1;
    build.seed = build_seed;
    build.sort.memory_budget_bytes = 1 << 20;
    std::string name = "sale.ace." + std::to_string(build_seed);
    EXPECT_TRUE(
        core::BuildAceTree(env_.get(), "sale", name, layout_, build).ok());
    return ValueOrDie(core::AceTree::Open(env_.get(), name, layout_));
  }

  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  uint64_t matching_ = 0;
  double true_sum_ = 0.0;
  double true_avg_ = 0.0;
};

TEST_F(BoundedCoverageTest, ErrorBoundCiCoversTruthAtNominalRate) {
  constexpr int kRuns = 200;
  constexpr double kConfidence = 0.95;
  constexpr double kRelPct = 5.0;

  int covered = 0;
  int stopped_early = 0;
  double estimate_sum = 0.0;
  double estimate_sq_sum = 0.0;
  for (int run = 0; run < kRuns; ++run) {
    auto tree = BuildTree(3000 + static_cast<uint64_t>(run));
    core::AceSampler sampler(tree.get(),
                             sampling::RangeQuery::OneDim(kLo, kHi),
                             /*seed=*/900 + static_cast<uint64_t>(run));
    sampling::OnlineAggregator agg(
        [](const char* rec) { return SaleRecord::DecodeFrom(rec).amount; },
        matching_, kConfidence);

    StoppingRule::Options options;
    options.rel_error_pct = kRelPct;
    StoppingRule rule(options);
    auto verdict = StoppingRule::Verdict::kContinue;
    while (!sampler.done()) {
      sampling::SampleBatch batch = ValueOrDie(sampler.NextBatch());
      agg.Consume(batch);
      verdict = rule.Check(agg.Avg());
      if (verdict != StoppingRule::Verdict::kContinue) break;
    }
    const sampling::Estimate e = agg.Avg();
    if (verdict == StoppingRule::Verdict::kErrorBoundMet) {
      ++stopped_early;
      EXPECT_LE(e.half_width, std::fabs(e.value) * kRelPct / 100.0);
    }
    if (std::fabs(e.value - true_avg_) <= e.half_width) ++covered;
    estimate_sum += e.value;
    estimate_sq_sum += e.value * e.value;
  }

  // The bound must actually bind: these runs should stop on the error
  // bound, not drain the stream (a drained stream has a trivially exact
  // answer and would mask a broken rule).
  EXPECT_GT(stopped_early, kRuns / 2);

  // Nominal 95% coverage over 200 runs: binomial SE is ~1.5%, so demand
  // >= 90% (3+ SE below nominal fails).
  const double coverage = static_cast<double>(covered) / kRuns;
  EXPECT_GE(coverage, 0.90) << "covered " << covered << "/" << kRuns;

  // Early stopping must not bias the point estimate: the mean of the 200
  // stopped estimates stays within 4 standard errors of the truth.
  const double mean = estimate_sum / kRuns;
  const double var =
      (estimate_sq_sum - kRuns * mean * mean) / (kRuns - 1);
  const double se_mean = std::sqrt(std::max(var, 0.0) / kRuns);
  EXPECT_NEAR(mean, true_avg_, 4.0 * se_mean)
      << "stopped-estimate mean biased: " << mean << " vs " << true_avg_;
}

// ---------------------------------------------------------------------------
// Executor plumbing
// ---------------------------------------------------------------------------

class BoundedExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    executor_ = ValueOrDie(query::Executor::Open(env_.get()));
    ASSERT_TRUE(executor_
                    ->Run("GENERATE TABLE sale ROWS 20000 SEED 7; CREATE "
                          "MATERIALIZED SAMPLE VIEW sv AS SELECT * FROM "
                          "sale INDEX ON day;")
                    .ok());
  }

  std::unique_ptr<io::Env> env_;
  std::unique_ptr<query::Executor> executor_;
};

TEST_F(BoundedExecutorTest, ErrorBoundFillsLedgerAndOutput) {
  auto out = ValueOrDie(executor_->Run(
      "ESTIMATE AVG(amount) FROM sv WHERE day BETWEEN 1 AND 90000 WITHIN "
      "5%;"));
  EXPECT_NE(out.find("bound: within 5.0000% met"), std::string::npos) << out;
  const obs::StatementLedger& ledger = obs::ThreadStatementLedger();
  EXPECT_TRUE(ledger.has_estimate);
  EXPECT_FALSE(ledger.is_partial);
  EXPECT_DOUBLE_EQ(ledger.target_rel_pct, 5.0);
  EXPECT_GT(ledger.samples, 0u);
  EXPECT_GT(ledger.ci_half_width, 0.0);
  EXPECT_LE(ledger.ci_half_width, std::fabs(ledger.estimate_value) * 0.05);
}

TEST_F(BoundedExecutorTest, UnboundedStatementLeavesBoundsUnset) {
  ASSERT_TRUE(executor_
                  ->Run("ESTIMATE AVG(amount) FROM sv WHERE day BETWEEN 1 "
                        "AND 90000 SAMPLES 100;")
                  .ok());
  const obs::StatementLedger& ledger = obs::ThreadStatementLedger();
  EXPECT_TRUE(ledger.has_estimate);
  EXPECT_DOUBLE_EQ(ledger.target_rel_pct, 0.0);
  EXPECT_EQ(ledger.deadline_us, 0u);
  EXPECT_FALSE(ledger.is_partial);
}

TEST_F(BoundedExecutorTest, GroupByWithErrorBoundIsRejected) {
  auto result = executor_->Run(
      "ESTIMATE AVG(amount) FROM sv WHERE day BETWEEN 1 AND 90000 GROUP BY "
      "day WITHIN 5%;");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("GROUP BY"),
            std::string_view::npos);
}

TEST_F(BoundedExecutorTest, CountWithBoundIsTriviallyComplete) {
  auto out = ValueOrDie(executor_->Run(
      "ESTIMATE COUNT(*) FROM sv WHERE day BETWEEN 1 AND 90000 WITHIN "
      "2%;"));
  EXPECT_NE(out.find("COUNT"), std::string::npos);
  const obs::StatementLedger& ledger = obs::ThreadStatementLedger();
  EXPECT_TRUE(ledger.has_estimate);
  EXPECT_FALSE(ledger.is_partial);
}

}  // namespace
}  // namespace msv
