// Batched I/O equivalence and accounting tests.
//
// The ReadBatch contract must be indistinguishable from page-at-a-time
// Read() in the bytes it delivers — on every backend — while changing
// only the *cost*: runs of requests contiguous in array order collapse
// into one modeled device access (SimEnv), one fault-injection op index
// (FaultInjectionEnv) and one preadv(2) (PosixEnv). This file pins both
// halves: randomized byte-equivalence across backends, and the exact
// seek/op/metric accounting of the coalescing layers (SimFile,
// BufferPool::GetBatch, AceTree::ReadLeaves, the readahead scanner and
// the batched external sort).

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_tree.h"
#include "extsort/external_sorter.h"
#include "gtest/gtest.h"
#include "io/buffer_pool.h"
#include "io/disk_model.h"
#include "io/env.h"
#include "io/fault_env.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "test_util.h"
#include "util/random.h"

namespace msv::io {
namespace {

using msv::testing::ValueOrDie;

// ---------------------------------------------------------------------------
// Randomized ReadBatch == Read equivalence on every backend
// ---------------------------------------------------------------------------

enum class Backend { kMem, kPosix, kFault, kSim };

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kMem:
      return "Mem";
    case Backend::kPosix:
      return "Posix";
    case Backend::kFault:
      return "FaultInjection";
    case Backend::kSim:
      return "Sim";
  }
  return "?";
}

class BatchEquivalenceTest : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    switch (GetParam()) {
      case Backend::kMem:
        env_ = NewMemEnv();
        break;
      case Backend::kPosix: {
        const auto* info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        root_ = ::testing::TempDir() + "/msv_batch_" + info->name();
        std::filesystem::remove_all(root_);
        std::filesystem::create_directories(root_);
        env_ = NewPosixEnv(root_);
        break;
      }
      case Backend::kFault:
        inner_ = NewMemEnv();
        fault_env_ = NewFaultInjectionEnv(inner_.get());
        break;
      case Backend::kSim:
        inner_ = NewMemEnv();
        device_ = std::make_shared<DiskDevice>();
        env_ = NewSimEnv(inner_.get(), device_);
        break;
    }
  }
  void TearDown() override {
    env_.reset();
    fault_env_.reset();
    if (!root_.empty()) std::filesystem::remove_all(root_);
  }

  Env* env() {
    return fault_env_ ? static_cast<Env*>(fault_env_.get()) : env_.get();
  }

  std::unique_ptr<Env> inner_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<FaultInjectionEnv> fault_env_;
  std::shared_ptr<DiskDevice> device_;
  std::string root_;
};

TEST_P(BatchEquivalenceTest, RandomizedBatchesMatchScalarReads) {
  // A patterned file so every byte is position-identifiable.
  const size_t kFileSize = 10'000;
  std::string data(kFileSize, '\0');
  for (size_t i = 0; i < kFileSize; ++i) {
    data[i] = static_cast<char>((i * 131) ^ (i >> 8));
  }
  auto file = ValueOrDie(env()->OpenFile("f", true));
  MSV_ASSERT_OK(file->Write(0, data.data(), data.size()));

  Pcg64 rng = DeriveRngStream(2026, 805);
  for (int round = 0; round < 50; ++round) {
    const size_t count = 1 + rng.Below(12);
    std::vector<ReadRequest> reqs(count);
    std::vector<std::string> scratch(count);
    // Mix of adjacent, overlapping, out-of-order and past-EOF requests;
    // some rounds sort by offset so runs actually form.
    uint64_t cursor = rng.Below(kFileSize);
    for (size_t i = 0; i < count; ++i) {
      size_t n = 1 + rng.Below(700);
      uint64_t offset;
      switch (rng.Below(4)) {
        case 0:  // adjacent to the previous request
          offset = cursor;
          break;
        case 1:  // straddles or passes EOF
          offset = kFileSize - std::min<uint64_t>(kFileSize, rng.Below(300)) +
                   rng.Below(600);
          break;
        default:  // anywhere
          offset = rng.Below(kFileSize + 500);
          break;
      }
      scratch[i].assign(n, '\xee');
      reqs[i] = ReadRequest{offset, n, scratch[i].data()};
      cursor = offset + n;
    }
    if (rng.Bernoulli(0.5)) {
      std::sort(reqs.begin(), reqs.end(),
                [](const ReadRequest& a, const ReadRequest& b) {
                  return a.offset < b.offset;
                });
    }

    MSV_ASSERT_OK(file->ReadBatch(reqs.data(), reqs.size()));
    for (size_t i = 0; i < count; ++i) {
      std::string expect(reqs[i].n, '\xee');
      size_t want_got = ValueOrDie(file->Read(
          reqs[i].offset, reqs[i].n, expect.data()));
      ASSERT_EQ(reqs[i].got, want_got)
          << "round " << round << " req " << i << " offset "
          << reqs[i].offset << " n " << reqs[i].n;
      EXPECT_EQ(std::string(reqs[i].scratch, reqs[i].got),
                std::string(expect.data(), want_got))
          << "round " << round << " req " << i;
    }
  }
}

TEST_P(BatchEquivalenceTest, EmptyAndPastEofBatches) {
  auto file = ValueOrDie(env()->OpenFile("f", true));
  MSV_ASSERT_OK(file->Write(0, "abcdef", 6));
  MSV_ASSERT_OK(file->ReadBatch(nullptr, 0));  // empty batch is a no-op
  char buf[8];
  ReadRequest reqs[2] = {{100, 4, buf}, {200, 4, buf + 4}};
  MSV_ASSERT_OK(file->ReadBatch(reqs, 2));
  EXPECT_EQ(reqs[0].got, 0u);
  EXPECT_EQ(reqs[1].got, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BatchEquivalenceTest,
    ::testing::Values(Backend::kMem, Backend::kPosix, Backend::kFault,
                      Backend::kSim),
    [](const ::testing::TestParamInfo<Backend>& info) {
      return BackendName(info.param);
    });

// ---------------------------------------------------------------------------
// SimFile: coalescing and the io.batch.* accounting
// ---------------------------------------------------------------------------

class SimBatchTest : public ::testing::Test {
 protected:
  static constexpr size_t kPage = 1024;
  static constexpr size_t kPages = 16;

  void SetUp() override {
    inner_ = NewMemEnv();
    device_ = std::make_shared<DiskDevice>();
    env_ = NewSimEnv(inner_.get(), device_);
    std::string data(kPage * kPages, '\0');
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<char>(i / kPage);
    }
    file_ = ValueOrDie(env_->OpenFile("f", true));
    MSV_ASSERT_OK(file_->Write(0, data.data(), data.size()));
    device_->ResetStats();
  }

  /// Builds one page-sized request per entry of `pages`.
  std::vector<ReadRequest> PageRequests(const std::vector<uint64_t>& pages) {
    scratch_.assign(pages.size() * kPage, '\xee');
    std::vector<ReadRequest> reqs(pages.size());
    for (size_t i = 0; i < pages.size(); ++i) {
      reqs[i] = ReadRequest{pages[i] * kPage, kPage,
                            scratch_.data() + i * kPage};
    }
    return reqs;
  }

  std::unique_ptr<Env> inner_;
  std::shared_ptr<DiskDevice> device_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<File> file_;
  std::string scratch_;
};

TEST_F(SimBatchTest, AdjacentRunIsOneSeekOneAccess) {
  auto reqs = PageRequests({4, 5, 6, 7});
  MSV_ASSERT_OK(file_->ReadBatch(reqs.data(), reqs.size()));
  DiskStats d = device_->stats();
  EXPECT_EQ(d.reads, 1u);
  EXPECT_EQ(d.seeks, 1u);
  EXPECT_EQ(d.sequential_ios, 0u);
  EXPECT_EQ(d.read_bytes, 4 * kPage);
  EXPECT_EQ(d.batched_accesses, 1u);
  EXPECT_EQ(d.batched_pages, 4u);
}

TEST_F(SimBatchTest, BatchBusyTimeMatchesOneBigAccess) {
  // The whole point of coalescing: a 4-page adjacent batch must cost
  // exactly what one 4-page read costs, not 4 seeks.
  auto reqs = PageRequests({4, 5, 6, 7});
  MSV_ASSERT_OK(file_->ReadBatch(reqs.data(), reqs.size()));
  uint64_t batched_us = device_->stats().busy_us;

  DiskDevice reference;
  reference.Access(0, 4 * kPage, /*is_write=*/false);
  EXPECT_EQ(batched_us, reference.stats().busy_us);

  // And strictly less than the same pages read one at a time from a cold
  // head (4 seeks): the modeled saving the benches measure.
  DiskDevice scalar;
  for (int i = 0; i < 4; ++i) {
    scalar.Access(2 * i * kPage, kPage, /*is_write=*/false);  // discontiguous
  }
  EXPECT_LT(batched_us, scalar.stats().busy_us);
}

TEST_F(SimBatchTest, GapSplitsTheRun) {
  auto reqs = PageRequests({0, 1, 8, 9});
  MSV_ASSERT_OK(file_->ReadBatch(reqs.data(), reqs.size()));
  DiskStats d = device_->stats();
  EXPECT_EQ(d.reads, 2u);
  EXPECT_EQ(d.seeks, 2u);
  EXPECT_EQ(d.batched_accesses, 2u);
  EXPECT_EQ(d.batched_pages, 4u);
}

TEST_F(SimBatchTest, ArrayOrderDefinesRuns) {
  // The same pages out of order do not coalesce: the contract is
  // contiguity in array order, and callers are expected to sort.
  auto reqs = PageRequests({7, 6, 5, 4});
  MSV_ASSERT_OK(file_->ReadBatch(reqs.data(), reqs.size()));
  DiskStats d = device_->stats();
  EXPECT_EQ(d.reads, 4u);
  EXPECT_EQ(d.batched_accesses, 4u);
  EXPECT_EQ(d.batched_pages, 4u);
}

TEST_F(SimBatchTest, EofEndsTheRunAndZeroReadsAreFree) {
  // Requests: last full page, then one page past EOF, then fully past
  // EOF. The short/empty tail must not extend the charged run.
  scratch_.assign(3 * kPage, '\xee');
  ReadRequest reqs[3] = {
      {(kPages - 1) * kPage, kPage, scratch_.data()},
      {kPages * kPage, kPage, scratch_.data() + kPage},
      {(kPages + 1) * kPage, kPage, scratch_.data() + 2 * kPage},
  };
  MSV_ASSERT_OK(file_->ReadBatch(reqs, 3));
  EXPECT_EQ(reqs[0].got, kPage);
  EXPECT_EQ(reqs[1].got, 0u);
  EXPECT_EQ(reqs[2].got, 0u);
  DiskStats d = device_->stats();
  EXPECT_EQ(d.reads, 1u);
  EXPECT_EQ(d.read_bytes, kPage);
  EXPECT_EQ(d.batched_accesses, 1u);
  EXPECT_EQ(d.batched_pages, 1u);
}

TEST_F(SimBatchTest, RegistryCountersTrackDeviceStats) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  uint64_t acc0 = reg.GetCounter("io.batch.accesses")->Value();
  uint64_t pages0 = reg.GetCounter("io.batch.pages")->Value();
  auto reqs = PageRequests({2, 3, 4, 10, 11});
  MSV_ASSERT_OK(file_->ReadBatch(reqs.data(), reqs.size()));
  EXPECT_EQ(reg.GetCounter("io.batch.accesses")->Value(), acc0 + 2);
  EXPECT_EQ(reg.GetCounter("io.batch.pages")->Value(), pages0 + 5);
}

// ---------------------------------------------------------------------------
// BufferPool::GetBatch: partial-hit splitting and stats accounting
// ---------------------------------------------------------------------------

class BufferPoolBatchTest : public ::testing::Test {
 protected:
  static constexpr size_t kPage = 512;
  static constexpr size_t kFilePages = 12;

  void SetUp() override {
    inner_ = NewMemEnv();
    device_ = std::make_shared<DiskDevice>();
    env_ = NewSimEnv(inner_.get(), device_);
    std::string data(kPage * kFilePages, '\0');
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<char>('A' + i / kPage);
    }
    file_ = ValueOrDie(env_->OpenFile("f", true));
    MSV_ASSERT_OK(file_->Write(0, data.data(), data.size()));
    device_->ResetStats();
  }

  std::unique_ptr<Env> inner_;
  std::shared_ptr<DiskDevice> device_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<File> file_;
};

TEST_F(BufferPoolBatchTest, ColdBatchReadsOnceAndPinsInOrder) {
  BufferPool pool(kPage, 8);
  const uint64_t pages[] = {0, 1, 2, 3};
  std::vector<PageRef> refs;
  MSV_ASSERT_OK(pool.GetBatch(file_.get(), 1, pages, 4, &refs));
  ASSERT_EQ(refs.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(refs[i].valid());
    ASSERT_EQ(refs[i].size(), kPage);
    EXPECT_EQ(refs[i].data()[0], static_cast<char>('A' + i)) << i;
  }
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.hits, 0u);
  // Four adjacent uncached pages: one coalesced device access.
  DiskStats d = device_->stats();
  EXPECT_EQ(d.reads, 1u);
  EXPECT_EQ(d.batched_accesses, 1u);
  EXPECT_EQ(d.batched_pages, 4u);
  refs.clear();
  EXPECT_EQ(pool.CheckAccounting(), "");
}

TEST_F(BufferPoolBatchTest, CachedFrameSplitsTheDeviceRun) {
  BufferPool pool(kPage, 8);
  {
    auto ref = ValueOrDie(pool.Get(file_.get(), 1, 2));  // warm page 2
  }
  device_->ResetStats();
  const uint64_t pages[] = {0, 1, 2, 3, 4};
  std::vector<PageRef> refs;
  MSV_ASSERT_OK(pool.GetBatch(file_.get(), 1, pages, 5, &refs));
  ASSERT_EQ(refs.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(refs[i].data()[0], static_cast<char>('A' + i)) << i;
  }
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.hits, 1u);    // page 2
  EXPECT_EQ(s.misses, 5u);  // 4 from the batch + the warm-up read
  // The cached frame splits {0,1,2,3,4} into runs {0,1} and {3,4}.
  DiskStats d = device_->stats();
  EXPECT_EQ(d.batched_accesses, 2u);
  EXPECT_EQ(d.batched_pages, 4u);
  refs.clear();
  EXPECT_EQ(pool.CheckAccounting(), "");
}

TEST_F(BufferPoolBatchTest, DuplicatePagesCountOneMissRestHits) {
  BufferPool pool(kPage, 8);
  const uint64_t pages[] = {5, 5, 5};
  std::vector<PageRef> refs;
  MSV_ASSERT_OK(pool.GetBatch(file_.get(), 1, pages, 3, &refs));
  ASSERT_EQ(refs.size(), 3u);
  for (const PageRef& r : refs) {
    EXPECT_EQ(r.data()[0], static_cast<char>('A' + 5));
  }
  BufferPoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(device_->stats().read_bytes, kPage);  // one device page
  refs.clear();
  EXPECT_EQ(pool.CheckAccounting(), "");
}

TEST_F(BufferPoolBatchTest, BatchBeyondEofFailsCleanly) {
  BufferPool pool(kPage, 8);
  const uint64_t pages[] = {0, kFilePages + 3};
  std::vector<PageRef> refs;
  refs.emplace_back();  // sentinel: *out must stay untouched on error
  Status st = pool.GetBatch(file_.get(), 1, pages, 2, &refs);
  EXPECT_TRUE(st.IsOutOfRange()) << st.ToString();
  EXPECT_EQ(refs.size(), 1u);
  EXPECT_EQ(pool.CheckAccounting(), "");
}

TEST_F(BufferPoolBatchTest, BatchMatchesScalarGets) {
  // Same interleaved access pattern through GetBatch and scalar Get on
  // two pools: byte-identical pages and identical hit/miss totals.
  BufferPool batched(kPage, 6);
  BufferPool scalar(kPage, 6);
  Pcg64 rng = DeriveRngStream(7, 11);
  for (int round = 0; round < 40; ++round) {
    size_t count = 1 + rng.Below(6);
    std::vector<uint64_t> pages(count);
    for (auto& p : pages) p = rng.Below(kFilePages);
    std::vector<PageRef> refs;
    MSV_ASSERT_OK(
        batched.GetBatch(file_.get(), 1, pages.data(), count, &refs));
    ASSERT_EQ(refs.size(), count);
    for (size_t i = 0; i < count; ++i) {
      auto ref = ValueOrDie(scalar.Get(file_.get(), 1, pages[i]));
      ASSERT_EQ(refs[i].size(), ref.size());
      EXPECT_EQ(std::memcmp(refs[i].data(), ref.data(), ref.size()), 0)
          << "round " << round << " page " << pages[i];
    }
  }
  EXPECT_EQ(batched.CheckAccounting(), "");
  // Eviction counts can differ (batch pins whole groups at once), but
  // the evictions<=misses invariant must hold for both.
  EXPECT_LE(batched.stats().evictions, batched.stats().misses);
  EXPECT_LE(scalar.stats().evictions, scalar.stats().misses);
}

}  // namespace
}  // namespace msv::io

// ---------------------------------------------------------------------------
// AceTree::ReadLeaves: elevator order is invisible in results, visible
// in the device schedule
// ---------------------------------------------------------------------------

namespace msv::core {
namespace {

using msv::testing::ValueOrDie;

class ReadLeavesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inner_ = io::NewMemEnv();
    device_ = std::make_shared<io::DiskDevice>();
    env_ = io::NewSimEnv(inner_.get(), device_);
    relation::SaleGenOptions gen;
    gen.num_records = 2000;
    gen.seed = 7;
    MSV_ASSERT_OK(relation::GenerateSaleRelation(env_.get(), "sale", gen));
    AceBuildOptions build;
    build.page_size = 4096;
    build.key_dims = 1;
    build.seed = 99;
    build.sort.memory_budget_bytes = 1 << 20;
    layout_ = storage::SaleRecord::Layout1D();
    MSV_ASSERT_OK(
        BuildAceTree(env_.get(), "sale", "sale.ace", layout_, build));
    tree_ = ValueOrDie(AceTree::Open(env_.get(), "sale.ace", layout_));
    device_->ResetStats();
  }

  static void ExpectLeafEq(const LeafData& a, const LeafData& b) {
    EXPECT_EQ(a.leaf_index, b.leaf_index);
    EXPECT_EQ(a.record_size, b.record_size);
    ASSERT_EQ(a.sections.size(), b.sections.size());
    for (size_t i = 0; i < a.sections.size(); ++i) {
      EXPECT_EQ(a.sections[i], b.sections[i]) << "section " << i;
    }
  }

  std::unique_ptr<io::Env> inner_;
  std::shared_ptr<io::DiskDevice> device_;
  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  std::unique_ptr<AceTree> tree_;
};

TEST_F(ReadLeavesTest, ResultsMatchScalarReadLeafInInputOrder) {
  const uint64_t leaves = tree_->meta().num_leaves;
  ASSERT_GE(leaves, 8u);
  // A deliberately scrambled, non-adjacent request order.
  std::vector<uint64_t> want = {7, 0, 3, leaves - 1, 5, 1};
  auto batch = ValueOrDie(tree_->ReadLeaves(want));
  ASSERT_EQ(batch.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    auto scalar = ValueOrDie(tree_->ReadLeaf(want[i]));
    ExpectLeafEq(batch[i], scalar);
  }
}

TEST_F(ReadLeavesTest, AdjacentLeavesCoalesceIntoOneAccess) {
  // The builder lays leaves out contiguously in index order, so four
  // consecutive indices — in any request order — are one elevator run.
  device_->ResetStats();
  auto batch = ValueOrDie(tree_->ReadLeaves({12, 10, 13, 11}));
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].leaf_index, 12u);
  EXPECT_EQ(batch[3].leaf_index, 11u);
  io::DiskStats d = device_->stats();
  EXPECT_EQ(d.reads, 1u);
  EXPECT_EQ(d.batched_accesses, 1u);
  EXPECT_EQ(d.batched_pages, 4u);
}

TEST_F(ReadLeavesTest, InvalidIndexRejectedBeforeAnyIo) {
  device_->ResetStats();
  auto result = tree_->ReadLeaves({0, tree_->meta().num_leaves});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(device_->stats().reads, 0u);
}

TEST_F(ReadLeavesTest, EmptyBatchIsEmpty) {
  auto batch = ValueOrDie(tree_->ReadLeaves({}));
  EXPECT_TRUE(batch.empty());
}

}  // namespace
}  // namespace msv::core

// ---------------------------------------------------------------------------
// Readahead scanner and the batched external sort
// ---------------------------------------------------------------------------

namespace msv::extsort {
namespace {

using msv::testing::ValueOrDie;
using storage::HeapFile;

/// Reads a whole file's bytes through `env`.
std::string FileBytes(io::Env* env, const std::string& name) {
  auto file = ValueOrDie(env->OpenFile(name, false));
  uint64_t size = ValueOrDie(file->Size());
  std::string bytes(size, '\0');
  EXPECT_TRUE(file->ReadExact(0, size, bytes.data()).ok());
  return bytes;
}

TEST(ReadaheadScannerTest, SameRecordsHalfTheRefillSeeks) {
  auto inner = io::NewMemEnv();
  {
    auto gen_env = io::NewSimEnv(inner.get(), std::make_shared<io::DiskDevice>());
    msv::testing::MakeSale(gen_env.get(), "sale", 5000);
  }
  // Each variant scans through its own fresh device so both start from
  // the identical head state (parked at the header by HeapFile::Open).
  auto scan = [&](bool readahead, std::vector<uint64_t>* ids) {
    auto device = std::make_shared<io::DiskDevice>();
    auto env = io::NewSimEnv(inner.get(), device);
    auto sale = ValueOrDie(HeapFile::Open(env.get(), "sale"));
    const size_t chunk_bytes = 64 * sale->record_size();  // many refills
    device->ResetStats();
    auto scanner = sale->NewScanner(chunk_bytes, readahead);
    while (const char* rec = ValueOrDie(scanner.Next())) {
      ids->push_back(storage::SaleRecord::DecodeFrom(rec).row_id);
    }
    return device->stats();
  };

  std::vector<uint64_t> plain_ids, ahead_ids;
  io::DiskStats plain = scan(/*readahead=*/false, &plain_ids);
  io::DiskStats ahead = scan(/*readahead=*/true, &ahead_ids);

  EXPECT_EQ(ahead_ids, plain_ids);  // byte-for-byte the same scan
  EXPECT_EQ(ahead.read_bytes, plain.read_bytes);
  // Double-buffered refills: half the accesses (+1 for rounding), and
  // every refill is one coalesced two-block batch.
  EXPECT_LE(ahead.reads, plain.reads / 2 + 1);
  EXPECT_GT(ahead.batched_accesses, 0u);
  EXPECT_LT(ahead.busy_us, plain.busy_us);
}

TEST(ExternalSortBatchedIoTest, BatchedAndScalarOutputsAreIdentical) {
  auto env_a = io::NewMemEnv();
  auto env_b = io::NewMemEnv();
  // Enough records and a small budget to force multiple runs and a merge.
  auto sale_a = msv::testing::MakeSale(env_a.get(), "sale", 4000);
  auto sale_b = msv::testing::MakeSale(env_b.get(), "sale", 4000);
  const size_t rec = sale_a->record_size();
  RecordLess less = [rec](const char* a, const char* b) {
    return std::memcmp(a, b, rec) < 0;
  };
  SortOptions options;
  options.memory_budget_bytes = 600 * rec;
  options.max_fanin = 4;

  options.batched_io = true;
  SortMetrics batched;
  MSV_ASSERT_OK(
      ExternalSort(env_a.get(), "sale", "sorted", less, options, &batched));
  options.batched_io = false;
  SortMetrics scalar;
  MSV_ASSERT_OK(
      ExternalSort(env_b.get(), "sale", "sorted", less, options, &scalar));

  EXPECT_GT(batched.initial_runs, 1u);
  EXPECT_EQ(batched.records, scalar.records);
  EXPECT_EQ(batched.merge_passes, scalar.merge_passes);
  EXPECT_EQ(FileBytes(env_a.get(), "sorted"), FileBytes(env_b.get(), "sorted"));
}

TEST(ExternalSortBatchedIoTest, BatchedMergeCostsLessModeledTime) {
  auto run = [](bool batched_io) {
    auto inner = io::NewMemEnv();
    auto device = std::make_shared<io::DiskDevice>();
    auto env = io::NewSimEnv(inner.get(), device);
    auto sale = msv::testing::MakeSale(env.get(), "sale", 6000);
    const size_t rec = sale->record_size();
    RecordLess less = [rec](const char* a, const char* b) {
      return std::memcmp(a, b, rec) < 0;
    };
    SortOptions options;
    options.memory_budget_bytes = 500 * rec;
    options.max_fanin = 4;
    options.batched_io = batched_io;
    device->ResetStats();
    EXPECT_TRUE(ExternalSort(env.get(), "sale", "sorted", less, options).ok());
    return device->stats();
  };
  io::DiskStats batched = run(true);
  io::DiskStats scalar = run(false);
  EXPECT_EQ(batched.read_bytes, scalar.read_bytes);
  EXPECT_LT(batched.seeks, scalar.seeks);
  EXPECT_LT(batched.busy_us, scalar.busy_us);
}

}  // namespace
}  // namespace msv::extsort
