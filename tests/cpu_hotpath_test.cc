// Dispatch-equivalence suite for the CPU hot path (DESIGN.md §15).
//
// Pins the contracts the batched kernels must keep:
//   1. CpuLevel parsing/clamping never yields a level the host cannot
//      execute (MSV_CPU_FEATURES must not turn into SIGILL).
//   2. RangeQuery::MatchBatchAt agrees with the scalar Matches reference
//      record for record at EVERY dispatch level — including NaN keys,
//      ±inf bounds, empty intervals and chunk-boundary tails.
//   3. The sampler's emitted byte stream is identical at every forced
//      dispatch level (the kernels are a throughput decision, nothing
//      else).
//   4. Arena, FieldAccessor and SampleBatch bulk paths behave as the
//      combine engine and aggregators assume.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "query/catalog.h"
#include "relation/sale_generator.h"
#include "sampling/grouped_aggregator.h"
#include "sampling/online_aggregator.h"
#include "sampling/range_query.h"
#include "sampling/sample_stream.h"
#include "storage/record.h"
#include "storage/record_view.h"
#include "test_util.h"
#include "util/arena.h"
#include "util/coding.h"
#include "util/cpu.h"
#include "util/random.h"

namespace msv {
namespace {

using msv::testing::ValueOrDie;
using sampling::RangeQuery;
using sampling::SampleBatch;
using storage::FieldAccessor;
using storage::SaleRecord;
using util::CpuLevel;

/// Restores the process-wide dispatch level on scope exit, so forced
/// levels never leak into other tests in this binary.
class ScopedCpuLevel {
 public:
  explicit ScopedCpuLevel(CpuLevel level)
      : saved_(util::ActiveCpuLevel()) {
    util::SetActiveCpuLevelForTesting(level);
  }
  ~ScopedCpuLevel() { util::SetActiveCpuLevelForTesting(saved_); }

 private:
  CpuLevel saved_;
};

// ---------------------------------------------------------------------------
// CpuLevel
// ---------------------------------------------------------------------------

TEST(CpuLevelTest, ParseAcceptsKnownNamesOnly) {
  CpuLevel level = CpuLevel::kAvx2;
  EXPECT_TRUE(util::ParseCpuLevel("scalar", &level));
  EXPECT_EQ(level, CpuLevel::kScalar);
  EXPECT_TRUE(util::ParseCpuLevel("sse2", &level));
  EXPECT_EQ(level, CpuLevel::kSse2);
  EXPECT_TRUE(util::ParseCpuLevel("avx2", &level));
  EXPECT_EQ(level, CpuLevel::kAvx2);

  level = CpuLevel::kSse2;
  EXPECT_FALSE(util::ParseCpuLevel("", &level));
  EXPECT_FALSE(util::ParseCpuLevel("avx512", &level));
  EXPECT_FALSE(util::ParseCpuLevel("SCALAR", &level));
  EXPECT_EQ(level, CpuLevel::kSse2) << "failed parse must not write *out";
}

TEST(CpuLevelTest, NamesRoundTrip) {
  for (CpuLevel level :
       {CpuLevel::kScalar, CpuLevel::kSse2, CpuLevel::kAvx2}) {
    CpuLevel parsed = CpuLevel::kScalar;
    EXPECT_TRUE(util::ParseCpuLevel(util::CpuLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST(CpuLevelTest, ClampNeverExceedsDetected) {
  const CpuLevel detected = util::DetectCpuLevel();
  for (CpuLevel level :
       {CpuLevel::kScalar, CpuLevel::kSse2, CpuLevel::kAvx2}) {
    EXPECT_LE(static_cast<int>(util::ClampCpuLevel(level)),
              static_cast<int>(detected));
  }
  EXPECT_EQ(util::ClampCpuLevel(CpuLevel::kScalar), CpuLevel::kScalar);
}

TEST(CpuLevelTest, TestOverrideInstallsClampedLevel) {
  const CpuLevel saved = util::ActiveCpuLevel();
  const CpuLevel installed =
      util::SetActiveCpuLevelForTesting(CpuLevel::kAvx2);
  EXPECT_EQ(installed, util::ClampCpuLevel(CpuLevel::kAvx2));
  EXPECT_EQ(util::ActiveCpuLevel(), installed);
  util::SetActiveCpuLevelForTesting(CpuLevel::kScalar);
  EXPECT_EQ(util::ActiveCpuLevel(), CpuLevel::kScalar);
  util::SetActiveCpuLevelForTesting(saved);
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

TEST(ArenaTest, AlignmentAndAccounting) {
  util::Arena arena;
  char* a = arena.Allocate(13, 8);
  char* b = arena.Allocate(100, 32);
  char* c = arena.Allocate(1, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 32, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_EQ(arena.bytes_allocated(), 13u + 100u + 1u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
  // Writable across the whole extent.
  std::memset(a, 0xab, 13);
  std::memset(b, 0xcd, 100);
}

TEST(ArenaTest, ResetReusesBlocks) {
  util::Arena arena;
  char* first = arena.Allocate(1000, 8);
  // Spill past the first block so more than one is held.
  for (int i = 0; i < 200; ++i) arena.Allocate(1024, 8);
  const size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, util::Arena::kMinBlockBytes);

  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved) << "Reset must keep blocks";
  char* again = arena.Allocate(1000, 8);
  EXPECT_EQ(again, first) << "Reset must rewind to the first block";
  // The same workload must not grow the reservation.
  for (int i = 0; i < 200; ++i) arena.Allocate(1024, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, OversizedRequestGetsOwnBlock) {
  util::Arena arena;
  const size_t big = (1 << 20) + 17;
  char* p = arena.Allocate(big, 32);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 32, 0u);
  std::memset(p, 0x5a, big);
  EXPECT_EQ(arena.bytes_allocated(), big);
}

// ---------------------------------------------------------------------------
// FieldAccessor / SampleBatch
// ---------------------------------------------------------------------------

TEST(FieldAccessorTest, AgreesWithSchemaValue) {
  const query::TableSchema& schema = query::TableSchema::Sale();
  Pcg64 rng(11);
  char rec[SaleRecord::kSize];
  for (int i = 0; i < 256; ++i) {
    SaleRecord r;
    r.day = rng.DoubleInRange(-1e6, 1e6);
    r.amount = rng.DoubleInRange(-1e6, 1e6);
    r.cust = rng.Next();
    r.supp = rng.Below(1 << 20);
    r.row_id = rng.Next();
    r.EncodeTo(rec);
    for (const char* name : {"day", "amount", "cust", "supp", "row_id"}) {
      const query::Column* col = schema.Find(name);
      ASSERT_NE(col, nullptr) << name;
      FieldAccessor acc = col->type == query::ColumnType::kDouble
                              ? FieldAccessor::Double(col->offset)
                              : FieldAccessor::Uint64(col->offset);
      EXPECT_EQ(acc.Load(rec), schema.Value(rec, *col)) << name;
    }
  }
  EXPECT_EQ(FieldAccessor::ConstOne().Load(rec), 1.0);
  EXPECT_EQ(FieldAccessor::ConstOne().LoadU64(rec), 1u);
  EXPECT_EQ(FieldAccessor::Uint64(SaleRecord::kCustOffset).LoadU64(rec),
            DecodeFixed64(rec + SaleRecord::kCustOffset));
}

TEST(SampleBatchTest, ReserveAndBulkAppend) {
  const size_t record_size = 24;
  std::string recs(5 * record_size, '\0');
  for (size_t i = 0; i < recs.size(); ++i) {
    recs[i] = static_cast<char>(i * 7);
  }

  SampleBatch one;
  one.record_size = record_size;
  for (size_t i = 0; i < 5; ++i) one.Append(recs.data() + i * record_size);

  SampleBatch bulk;
  bulk.record_size = record_size;
  bulk.Reserve(5);
  const size_t cap = bulk.data.capacity();
  EXPECT_GE(cap, 5 * record_size);
  EXPECT_TRUE(bulk.empty()) << "Reserve must not change contents";
  bulk.AppendN(recs.data(), 5);
  EXPECT_EQ(bulk.data.capacity(), cap) << "reserved append must not grow";
  EXPECT_EQ(bulk.count(), 5u);
  EXPECT_EQ(bulk.data, one.data);
}

// ---------------------------------------------------------------------------
// MatchBatch vs the scalar reference
// ---------------------------------------------------------------------------

/// Densely packed 2-key records covering the predicate edge cases: NaN
/// keys, ±inf keys, exact bound hits.
std::string MakeAdversarialRecords(const storage::RecordLayout& layout,
                                   size_t n, uint64_t seed) {
  const double special[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      0.0,
      -0.0,
      20.0,   // exact lo of the test query
      80.0,   // exact hi of the test query
      std::nextafter(20.0, 0.0),
      std::nextafter(80.0, 1e9),
  };
  Pcg64 rng(seed);
  std::string data(n * layout.record_size, '\0');
  for (size_t i = 0; i < n; ++i) {
    char* rec = data.data() + i * layout.record_size;
    for (size_t d = 0; d < layout.key_dims(); ++d) {
      double v = rng.Below(4) == 0
                     ? special[rng.Below(sizeof(special) / sizeof(double))]
                     : rng.DoubleInRange(0.0, 100.0);
      layout.SetKey(rec, d, v);
    }
  }
  return data;
}

void ExpectBatchMatchesScalar(const RangeQuery& query,
                              const storage::RecordLayout& layout,
                              const std::string& data, size_t n) {
  // Scalar reference, record by record.
  std::vector<uint32_t> want;
  for (size_t i = 0; i < n; ++i) {
    if (query.Matches(layout, data.data() + i * layout.record_size)) {
      want.push_back(static_cast<uint32_t>(i));
    }
  }
  const CpuLevel detected = util::DetectCpuLevel();
  for (int l = 0; l <= static_cast<int>(detected); ++l) {
    std::vector<uint32_t> got(n + 1, 0xdeadbeef);
    size_t matches = query.MatchBatchAt(static_cast<CpuLevel>(l), layout,
                                        data.data(), n, got.data());
    ASSERT_EQ(matches, want.size())
        << "level=" << util::CpuLevelName(static_cast<CpuLevel>(l))
        << " n=" << n;
    EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin()))
        << "level=" << util::CpuLevelName(static_cast<CpuLevel>(l))
        << " n=" << n;
  }
}

TEST(MatchBatchTest, AgreesWithScalarOnAdversarialRecords) {
  // Sizes straddle the kernel's 1024-record chunk and its 4/2-lane SIMD
  // groups, including odd tails and the empty batch.
  const size_t sizes[] = {0, 1, 3, 7, 63, 1023, 1024, 1025, 4097};
  for (size_t dims : {size_t{1}, size_t{2}}) {
    storage::RecordLayout layout =
        dims == 1 ? SaleRecord::Layout1D() : SaleRecord::Layout2D();
    RangeQuery query;
    query.dims = dims;
    query.bounds[0] = {20.0, 80.0};
    if (dims == 2) query.bounds[1] = {10.0, 90.0};
    for (size_t n : sizes) {
      std::string data = MakeAdversarialRecords(layout, n, 17 * n + dims);
      ExpectBatchMatchesScalar(query, layout, data, n);
    }
  }
}

TEST(MatchBatchTest, HandlesInfiniteAndEmptyBounds) {
  storage::RecordLayout layout = SaleRecord::Layout1D();
  std::string data = MakeAdversarialRecords(layout, 2048, 5);
  const double inf = std::numeric_limits<double>::infinity();

  RangeQuery all = RangeQuery::OneDim(-inf, inf);
  RangeQuery below = RangeQuery::OneDim(-inf, 50.0);
  RangeQuery above = RangeQuery::OneDim(50.0, inf);
  RangeQuery point = RangeQuery::OneDim(20.0, 20.0);
  RangeQuery empty = RangeQuery::OneDim(80.0, 20.0);  // lo > hi: matches none
  for (const RangeQuery& q : {all, below, above, point, empty}) {
    ExpectBatchMatchesScalar(q, layout, data, 2048);
  }

  // NaN keys fail even the (-inf, inf) predicate — ordered compares.
  std::string nan_rec(layout.record_size, '\0');
  layout.SetKey(nan_rec.data(), 0,
                std::numeric_limits<double>::quiet_NaN());
  uint32_t idx = 0;
  EXPECT_FALSE(all.Matches(layout, nan_rec.data()));
  EXPECT_EQ(all.MatchBatch(layout, nan_rec.data(), 1, &idx), 0u);
}

TEST(MatchBatchTest, GatherKeyColumnMatchesLayoutKey) {
  storage::RecordLayout layout = SaleRecord::Layout2D();
  const size_t n = 1537;
  std::string data = MakeAdversarialRecords(layout, n, 23);
  std::vector<double> col(n);
  for (size_t d = 0; d < 2; ++d) {
    sampling::GatherKeyColumn(layout, data.data(), n, d, col.data());
    for (size_t i = 0; i < n; ++i) {
      double want = layout.Key(data.data() + i * layout.record_size, d);
      // Bit comparison: NaNs must gather as-is.
      uint64_t wbits, gbits;
      std::memcpy(&wbits, &want, 8);
      std::memcpy(&gbits, &col[i], 8);
      EXPECT_EQ(gbits, wbits) << "dim=" << d << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Sampler byte streams across forced dispatch levels
// ---------------------------------------------------------------------------

class DispatchStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    relation::SaleGenOptions gen;
    gen.num_records = 1500;
    gen.seed = 29;
    ASSERT_TRUE(relation::GenerateSaleRelation(env_.get(), "sale", gen).ok());
    core::AceBuildOptions build;
    build.page_size = 4096;
    build.key_dims = 1;
    build.seed = 31;
    build.sort.memory_budget_bytes = 1 << 20;
    layout_ = SaleRecord::Layout1D();
    ASSERT_TRUE(core::BuildAceTree(env_.get(), "sale", "sale.ace", layout_,
                                   build)
                    .ok());
    tree_ = ValueOrDie(core::AceTree::Open(env_.get(), "sale.ace", layout_));
  }

  std::string DrainAt(CpuLevel level) {
    ScopedCpuLevel scoped(level);
    core::AceSampler sampler(tree_.get(),
                             RangeQuery::OneDim(15000.0, 85000.0),
                             /*seed=*/77);
    std::string bytes;
    while (!sampler.done()) {
      SampleBatch batch = ValueOrDie(sampler.NextBatch());
      bytes += batch.data;
    }
    return bytes;
  }

  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  std::unique_ptr<core::AceTree> tree_;
};

TEST_F(DispatchStreamTest, SampleStreamIsByteIdenticalAtEveryLevel) {
  const std::string scalar_bytes = DrainAt(CpuLevel::kScalar);
  ASSERT_FALSE(scalar_bytes.empty());
  const CpuLevel detected = util::DetectCpuLevel();
  for (int l = 1; l <= static_cast<int>(detected); ++l) {
    EXPECT_EQ(DrainAt(static_cast<CpuLevel>(l)), scalar_bytes)
        << "level=" << util::CpuLevelName(static_cast<CpuLevel>(l));
  }
}

// ---------------------------------------------------------------------------
// Aggregator: compiled accessors vs std::function
// ---------------------------------------------------------------------------

SampleBatch MakeAmountBatch(size_t n, uint64_t seed) {
  SampleBatch batch;
  batch.record_size = SaleRecord::kSize;
  batch.Reserve(n);
  Pcg64 rng(seed);
  char rec[SaleRecord::kSize];
  for (size_t i = 0; i < n; ++i) {
    SaleRecord r;
    r.amount = rng.DoubleInRange(0.0, 10000.0);
    r.cust = rng.Below(8);  // GROUP BY key
    r.row_id = i;
    r.EncodeTo(rec);
    batch.Append(rec);
  }
  return batch;
}

TEST(AggregatorEquivalenceTest, AccessorMatchesFunctionWithinRounding) {
  // The accessor path folds batch moments and merges (one divide per
  // batch); the std::function path keeps per-record Welford. Same
  // moments, different association: equal to relative rounding error.
  sampling::OnlineAggregator fn_agg(
      [](const char* rec) {
        return DecodeDouble(rec + SaleRecord::kAmountOffset);
      },
      /*population=*/100000);
  sampling::OnlineAggregator acc_agg(
      FieldAccessor::Double(SaleRecord::kAmountOffset),
      /*population=*/100000);
  for (uint64_t seed : {1u, 2u, 3u}) {
    SampleBatch batch = MakeAmountBatch(997, seed);  // odd: exercises tails
    fn_agg.Consume(batch);
    acc_agg.Consume(batch);
  }
  ASSERT_EQ(fn_agg.samples_seen(), acc_agg.samples_seen());
  EXPECT_NEAR(acc_agg.Avg().value, fn_agg.Avg().value,
              1e-9 * std::abs(fn_agg.Avg().value));
  EXPECT_NEAR(acc_agg.Avg().half_width, fn_agg.Avg().half_width,
              1e-6 * fn_agg.Avg().half_width);
  EXPECT_NEAR(acc_agg.Sum().value, fn_agg.Sum().value,
              1e-9 * std::abs(fn_agg.Sum().value));
}

TEST(AggregatorEquivalenceTest, CountStyleConstOneIsExact) {
  // COUNT folds the constant 1.0: both paths produce mean exactly 1 and
  // variance exactly 0, so this case stays bit-identical.
  sampling::OnlineAggregator fn_agg([](const char*) { return 1.0; },
                                    /*population=*/5000);
  sampling::OnlineAggregator acc_agg(FieldAccessor::ConstOne(),
                                     /*population=*/5000);
  SampleBatch batch = MakeAmountBatch(513, 9);
  fn_agg.Consume(batch);
  acc_agg.Consume(batch);
  EXPECT_EQ(acc_agg.Avg().value, fn_agg.Avg().value);
  EXPECT_EQ(acc_agg.Avg().half_width, fn_agg.Avg().half_width);
  EXPECT_EQ(acc_agg.Sum().value, fn_agg.Sum().value);
}

TEST(AggregatorEquivalenceTest, GroupedAccessorIsBitIdentical) {
  // GroupedAggregator's two forms share the exact per-record Fold order,
  // so their estimates must match bit for bit.
  sampling::GroupedAggregator fn_agg(
      [](const char* rec) { return DecodeFixed64(rec + SaleRecord::kCustOffset); },
      [](const char* rec) {
        return DecodeDouble(rec + SaleRecord::kAmountOffset);
      },
      /*population=*/20000);
  sampling::GroupedAggregator acc_agg(
      FieldAccessor::Uint64(SaleRecord::kCustOffset),
      FieldAccessor::Double(SaleRecord::kAmountOffset),
      /*population=*/20000);
  SampleBatch batch = MakeAmountBatch(1201, 13);
  fn_agg.Consume(batch);
  acc_agg.Consume(batch);

  auto fn_groups = fn_agg.Groups();
  auto acc_groups = acc_agg.Groups();
  ASSERT_EQ(fn_groups.size(), acc_groups.size());
  for (size_t i = 0; i < fn_groups.size(); ++i) {
    EXPECT_EQ(acc_groups[i].group, fn_groups[i].group);
    EXPECT_EQ(acc_groups[i].samples, fn_groups[i].samples);
    EXPECT_EQ(acc_groups[i].avg.value, fn_groups[i].avg.value);
    EXPECT_EQ(acc_groups[i].avg.half_width, fn_groups[i].avg.half_width);
    EXPECT_EQ(acc_groups[i].sum.value, fn_groups[i].sum.value);
    EXPECT_EQ(acc_groups[i].count.value, fn_groups[i].count.value);
  }
}

}  // namespace
}  // namespace msv
