// Tests for the time-series half of the obs stack: the TimeSeries ring,
// the MetricsPoller background thread (lifecycle, restart, concurrent
// Start/Stop/readers — the CI tsan job runs these), the JSON-lines
// export that msv_top tails, and the Prometheus text exposition
// (golden output, parse-back round trip, semantic validation).

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/timeseries.h"
#include "test_util.h"

namespace msv::obs {
namespace {

using msv::testing::ValueOrDie;

TimeSeriesPoint MakePoint(uint64_t ts_us, uint64_t reads) {
  TimeSeriesPoint p;
  p.ts_us = ts_us;
  CounterSample c;
  c.name = "io.disk.reads";
  c.total = reads;
  c.since_epoch = reads;
  p.snapshot.counters.push_back(c);
  return p;
}

// ---------------------------------------------------------------------------
// TimeSeries ring
// ---------------------------------------------------------------------------

TEST(TimeSeriesTest, PushEvictsOldestAtCapacity) {
  TimeSeries series(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    series.Push(MakePoint(i * 1'000'000, i * 10));
  }
  EXPECT_EQ(series.size(), 3u);
  std::vector<TimeSeriesPoint> points = series.Points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points.front().ts_us, 3'000'000u);  // 1 and 2 evicted
  EXPECT_EQ(points.back().ts_us, 5'000'000u);
  EXPECT_EQ(series.Latest().ts_us, 5'000'000u);
}

TEST(TimeSeriesTest, EmptySeriesReportsZeroes) {
  TimeSeries series;
  EXPECT_EQ(series.size(), 0u);
  EXPECT_EQ(series.Latest().ts_us, 0u);
  EXPECT_DOUBLE_EQ(series.CounterRate("io.disk.reads", 1'000'000), 0.0);
  EXPECT_EQ(series.CounterDelta("io.disk.reads", 1'000'000), 0u);
}

TEST(TimeSeriesTest, CounterRateOverWindow) {
  TimeSeries series(10);
  // 100 reads/s for 4 seconds.
  for (uint64_t s = 0; s <= 4; ++s) {
    series.Push(MakePoint(s * 1'000'000, s * 100));
  }
  // Newest vs the point >= 2s older: (400 - 200) / 2s.
  EXPECT_DOUBLE_EQ(series.CounterRate("io.disk.reads", 2'000'000), 100.0);
  EXPECT_EQ(series.CounterDelta("io.disk.reads", 2'000'000), 200u);
  // Window wider than the ring clamps to the full span.
  EXPECT_DOUBLE_EQ(series.CounterRate("io.disk.reads", 60'000'000), 100.0);
  EXPECT_EQ(series.CounterDelta("io.disk.reads", 60'000'000), 400u);
  // Unknown counter: no delta.
  EXPECT_EQ(series.CounterDelta("no.such", 2'000'000), 0u);
}

// ---------------------------------------------------------------------------
// MetricsPoller lifecycle
// ---------------------------------------------------------------------------

TEST(MetricsPollerTest, StartPollsImmediatelyAndStopJoins) {
  MetricRegistry reg;
  reg.GetCounter("c")->Add(7);
  MetricsPollerOptions options;
  options.interval_ms = 3600 * 1000;  // no timer ticks during the test
  options.registry = &reg;
  MetricsPoller poller(options);
  EXPECT_FALSE(poller.running());

  poller.Start();
  EXPECT_TRUE(poller.running());
  // The first poll is synchronous-ish: the thread snapshots before its
  // first wait. Spin briefly for it.
  for (int i = 0; i < 1000 && poller.polls() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(poller.polls(), 1u);
  EXPECT_GE(poller.series().size(), 1u);
  EXPECT_GT(poller.series().Latest().ts_us, 0u);

  poller.Stop();
  EXPECT_FALSE(poller.running());
  // Ring stays readable after Stop.
  EXPECT_GE(poller.series().size(), 1u);
}

TEST(MetricsPollerTest, DoubleStartAndDoubleStopAreNoOps) {
  MetricRegistry reg;
  MetricsPollerOptions options;
  options.interval_ms = 3600 * 1000;
  options.registry = &reg;
  MetricsPoller poller(options);
  poller.Start();
  poller.Start();  // no second thread, no crash
  EXPECT_TRUE(poller.running());
  poller.Stop();
  poller.Stop();  // idempotent
  EXPECT_FALSE(poller.running());
}

TEST(MetricsPollerTest, RestartAfterStopKeepsAccumulating) {
  MetricRegistry reg;
  MetricsPollerOptions options;
  options.interval_ms = 3600 * 1000;
  options.registry = &reg;
  MetricsPoller poller(options);

  poller.Start();
  for (int i = 0; i < 1000 && poller.polls() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  poller.Stop();
  const uint64_t first_round = poller.polls();
  EXPECT_GE(first_round, 1u);

  poller.Start();
  for (int i = 0; i < 1000 && poller.polls() == first_round; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  poller.Stop();
  EXPECT_GT(poller.polls(), first_round);
}

TEST(MetricsPollerTest, TicksAccumulateAtShortInterval) {
  MetricRegistry reg;
  MetricsPollerOptions options;
  options.interval_ms = 1;
  options.registry = &reg;
  MetricsPoller poller(options);
  poller.Start();
  for (int i = 0; i < 2000 && poller.polls() < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  poller.Stop();
  EXPECT_GE(poller.polls(), 5u);
}

TEST(MetricsPollerTest, ConcurrentStartStopAndReadersAreSafe) {
  // The TSan target: lifecycle churn from multiple threads while other
  // threads read the series and the registry takes increments.
  MetricRegistry reg;
  Counter* c = reg.GetCounter("churn");
  MetricsPollerOptions options;
  options.interval_ms = 1;
  options.capacity = 16;
  options.registry = &reg;
  MetricsPoller poller(options);

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&poller] {
      for (int i = 0; i < 50; ++i) {
        poller.Start();
        poller.Stop();
      }
    });
  }
  threads.emplace_back([&poller, &done] {
    while (!done.load()) {
      poller.series().Points();
      poller.series().CounterRate("churn", 1'000'000);
      poller.PollNow();
    }
  });
  threads.emplace_back([c, &done] {
    while (!done.load()) c->Add();
  });

  threads[0].join();
  threads[1].join();
  done.store(true);
  threads[2].join();
  threads[3].join();
  EXPECT_FALSE(poller.running());
  EXPECT_GE(poller.polls(), 1u);
}

TEST(MetricsPollerTest, DestructorStopsARunningPoller) {
  MetricRegistry reg;
  MetricsPollerOptions options;
  options.interval_ms = 1;
  options.registry = &reg;
  {
    MetricsPoller poller(options);
    poller.Start();
  }  // must not leak the thread or deadlock
}

// ---------------------------------------------------------------------------
// JSON-lines export (the msv_top transport)
// ---------------------------------------------------------------------------

TEST(MetricsPollerTest, ExportFileParsesBackPointByPoint) {
  const std::string path = ::testing::TempDir() + "msv_poller_export.jsonl";
  std::remove(path.c_str());

  MetricRegistry reg;
  reg.GetCounter("io.disk.reads")->Add(42);
  reg.GetGauge("io.pool.resident_pages")->Set(12);
  reg.GetHistogram("query.statement_us")->Record(640);
  MetricsPollerOptions options;
  options.interval_ms = 3600 * 1000;
  options.registry = &reg;
  options.export_path = path;
  MetricsPoller poller(options);
  poller.PollNow();
  reg.GetCounter("io.disk.reads")->Add(8);
  poller.PollNow();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<Json> points;
  while (std::getline(in, line)) {
    if (!line.empty()) points.push_back(ValueOrDie(Json::Parse(line)));
  }
  ASSERT_EQ(points.size(), 2u);
  for (const Json& p : points) {
    ASSERT_NE(p.Find("ts_us"), nullptr);
    ASSERT_NE(p.Find("metrics"), nullptr);
    ASSERT_NE(p.Find("slow_queries"), nullptr);
  }
  const Json* reads =
      points[1].Find("metrics")->Find("counters")->Find("io.disk.reads");
  ASSERT_NE(reads, nullptr);
  EXPECT_DOUBLE_EQ(reads->Find("total")->AsNumber(), 50.0);
  EXPECT_DOUBLE_EQ(points[1]
                       .Find("metrics")
                       ->Find("gauges")
                       ->Find("io.pool.resident_pages")
                       ->AsNumber(),
                   12.0);
  std::remove(path.c_str());
}

TEST(ExportPointJsonTest, SchemaMatchesWhatMsvTopParses) {
  TimeSeriesPoint point = MakePoint(1'234'567, 99);
  Json j = ExportPointJson(point, /*include_slow_queries=*/false);
  EXPECT_DOUBLE_EQ(j.Find("ts_us")->AsNumber(), 1'234'567.0);
  ASSERT_NE(j.Find("metrics"), nullptr);
  EXPECT_EQ(j.Find("slow_queries"), nullptr);
  Json with = ExportPointJson(point, /*include_slow_queries=*/true);
  ASSERT_NE(with.Find("slow_queries"), nullptr);
}

// ---------------------------------------------------------------------------
// Prometheus exposition
// ---------------------------------------------------------------------------

TEST(PrometheusTest, NameSanitization) {
  EXPECT_EQ(PrometheusName("io.disk.reads"), "msv_io_disk_reads");
  EXPECT_EQ(PrometheusName("query.statement_us"), "msv_query_statement_us");
  EXPECT_EQ(PrometheusName("weird-name with spaces"),
            "msv_weird_name_with_spaces");
  // Colons are legal in exposition names but reserved by convention for
  // recording rules, so the sanitizer folds them too.
  EXPECT_EQ(PrometheusName("colons:folded"), "msv_colons_folded");
}

TEST(PrometheusTest, GoldenDumpForSmallRegistry) {
  MetricRegistry reg;
  reg.GetCounter("io.disk.reads")->Add(17);
  reg.GetGauge("io.pool.resident_pages")->Set(12.5);
  EXPECT_EQ(reg.DumpPrometheus(),
            "# TYPE msv_io_disk_reads_total counter\n"
            "msv_io_disk_reads_total 17\n"
            "# TYPE msv_io_pool_resident_pages gauge\n"
            "msv_io_pool_resident_pages 12.5\n");
}

TEST(PrometheusTest, LabeledSeriesSplitIntoLabels) {
  MetricRegistry reg;
  reg.GetCounter(MetricRegistry::Labeled("io.disk.reads", {{"dev", "0"}}))
      ->Add(3);
  std::string text = reg.DumpPrometheus();
  EXPECT_NE(text.find("msv_io_disk_reads_total{dev=\"0\"} 3"),
            std::string::npos);
  auto families = ValueOrDie(ParsePrometheusText(text));
  ASSERT_EQ(families.size(), 1u);
  ASSERT_EQ(families[0].samples.size(), 1u);
  ASSERT_EQ(families[0].samples[0].labels.size(), 1u);
  EXPECT_EQ(families[0].samples[0].labels[0].first, "dev");
  EXPECT_EQ(families[0].samples[0].labels[0].second, "0");
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeAndValid) {
  MetricRegistry reg;
  LogHistogram* h = reg.GetHistogram("query.statement_us");
  for (uint64_t v : {10, 10, 100, 1000, 5000}) h->Record(v);
  // One overflow sample past the 2^40 grid top.
  h->Record(1ull << 41);
  std::string text = reg.DumpPrometheus();

  ASSERT_TRUE(ValidatePrometheusText(text).ok()) << text;
  auto families = ValueOrDie(ParsePrometheusText(text));
  ASSERT_EQ(families.size(), 1u);
  EXPECT_EQ(families[0].type, "histogram");
  EXPECT_EQ(families[0].name, "msv_query_statement_us");

  double last_bucket = -1;
  double inf_bucket = -1, count = -1, sum = -1;
  for (const PromSample& s : families[0].samples) {
    if (s.name == "msv_query_statement_us_bucket") {
      ASSERT_EQ(s.labels.size(), 1u);
      EXPECT_EQ(s.labels[0].first, "le");
      EXPECT_GE(s.value, last_bucket);  // cumulative
      last_bucket = s.value;
      if (s.labels[0].second == "+Inf") inf_bucket = s.value;
    } else if (s.name == "msv_query_statement_us_count") {
      count = s.value;
    } else if (s.name == "msv_query_statement_us_sum") {
      sum = s.value;
    }
  }
  EXPECT_DOUBLE_EQ(inf_bucket, 6.0);  // all samples, overflow included
  EXPECT_DOUBLE_EQ(count, 6.0);
  EXPECT_GT(sum, 0.0);
}

TEST(PrometheusTest, FullRegistryRoundTripsAndValidates) {
  MetricRegistry reg;
  reg.GetCounter("io.disk.reads")->Add(100);
  reg.GetCounter("io.disk.read_bytes")->Add(1 << 20);
  reg.GetCounter(MetricRegistry::Labeled("query.statements", {{"kind", "estimate"}}))
      ->Add(7);
  reg.GetGauge("io.pool.capacity_pages")->Set(64);
  reg.GetGauge("io.disk.clock_ms")->Set(1234.5);
  LogHistogram* h = reg.GetHistogram("io.disk.access_us");
  for (uint64_t v = 1; v <= 300; ++v) h->Record(v * 7);

  std::string text = reg.DumpPrometheus();
  ASSERT_TRUE(ValidatePrometheusText(text).ok()) << text;

  auto families = ValueOrDie(ParsePrometheusText(text));
  size_t counters = 0, gauges = 0, histograms = 0;
  for (const PromFamily& f : families) {
    if (f.type == "counter") ++counters;
    if (f.type == "gauge") ++gauges;
    if (f.type == "histogram") ++histograms;
  }
  EXPECT_EQ(counters, 3u);
  EXPECT_EQ(gauges, 2u);
  EXPECT_EQ(histograms, 1u);
}

TEST(PrometheusTest, ValidatorRejectsMalformedDocuments) {
  // Sample without a TYPE declaration.
  EXPECT_FALSE(ParsePrometheusText("msv_x_total 1\n").ok());
  // Counter family not named *_total.
  EXPECT_FALSE(ValidatePrometheusText("# TYPE msv_x counter\nmsv_x 1\n").ok());
  // Negative counter value.
  EXPECT_FALSE(
      ValidatePrometheusText("# TYPE msv_x_total counter\nmsv_x_total -1\n")
          .ok());
  // Histogram with non-cumulative buckets.
  EXPECT_FALSE(ValidatePrometheusText(
                   "# TYPE msv_h histogram\n"
                   "msv_h_bucket{le=\"1\"} 5\n"
                   "msv_h_bucket{le=\"2\"} 3\n"
                   "msv_h_bucket{le=\"+Inf\"} 5\n"
                   "msv_h_sum 9\n"
                   "msv_h_count 5\n")
                   .ok());
  // Histogram missing the +Inf bucket.
  EXPECT_FALSE(ValidatePrometheusText(
                   "# TYPE msv_h histogram\n"
                   "msv_h_bucket{le=\"1\"} 5\n"
                   "msv_h_sum 9\n"
                   "msv_h_count 5\n")
                   .ok());
  // Bad metric name.
  EXPECT_FALSE(ParsePrometheusText("# TYPE 9bad counter\n9bad 1\n").ok());
  // Garbage line.
  EXPECT_FALSE(ParsePrometheusText("!!!\n").ok());
}

TEST(PrometheusTest, ParserAcceptsEscapesTimestampsAndInf) {
  auto families = ValueOrDie(ParsePrometheusText(
      "# TYPE msv_g gauge\n"
      "msv_g{path=\"a\\\\b\\\"c\\nd\"} +Inf 1700000000000\n"));
  ASSERT_EQ(families.size(), 1u);
  ASSERT_EQ(families[0].samples.size(), 1u);
  const PromSample& s = families[0].samples[0];
  ASSERT_EQ(s.labels.size(), 1u);
  EXPECT_EQ(s.labels[0].second, "a\\b\"c\nd");
  EXPECT_TRUE(std::isinf(s.value));
}

}  // namespace
}  // namespace msv::obs
