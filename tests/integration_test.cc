// End-to-end integration: all samplers over the same relation through the
// simulated disk, verifying both agreement (identical match sets) and the
// paper's headline performance ordering at low selectivity.

#include <algorithm>
#include <memory>

#include "btree/btree_sampler.h"
#include "btree/ranked_btree.h"
#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "gtest/gtest.h"
#include "io/buffer_pool.h"
#include "io/disk_model.h"
#include "io/env.h"
#include "permuted/permuted_file.h"
#include "relation/workload.h"
#include "rtree/rtree.h"
#include "rtree/rtree_sampler.h"
#include "storage/heap_file.h"
#include "test_util.h"

namespace msv {
namespace {

using msv::testing::AllDistinct;
using msv::testing::DrainRowIds;
using msv::testing::MakeSale;
using msv::testing::ValueOrDie;
using storage::HeapFile;
using storage::SaleRecord;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    MakeSale(env_.get(), "sale", kRecords, 7);
    layout_ = SaleRecord::Layout1D();
    core::AceBuildOptions ace;
    ace.page_size = kPage;
    MSV_ASSERT_OK(core::BuildAceTree(env_.get(), "sale", "ace", layout_, ace));
    btree::BTreeOptions bt;
    bt.page_size = kPage;
    MSV_ASSERT_OK(
        btree::BuildRankedBTree(env_.get(), "sale", "bt", layout_, bt));
    MSV_ASSERT_OK(permuted::BuildPermutedFile(env_.get(), "sale", "perm"));
  }

  static constexpr uint64_t kRecords = 100'000;
  static constexpr size_t kPage = 64 << 10;  // the paper's page size
  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
};

TEST_F(IntegrationTest, AllSamplersAgreeOnTheMatchSet) {
  auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  relation::WorkloadGenerator gen({{0.0, 100000.0}}, 3);
  for (double sel : {0.003, 0.08}) {
    auto q = gen.Query(sel, 1);
    auto expected =
        ValueOrDie(relation::CollectMatchingRowIds(*sale, layout_, q));

    auto tree = ValueOrDie(core::AceTree::Open(env_.get(), "ace", layout_));
    core::AceSampler ace(tree.get(), q, 1);
    auto ace_ids = DrainRowIds(&ace);
    std::sort(ace_ids.begin(), ace_ids.end());
    EXPECT_EQ(ace_ids, expected);

    io::BufferPool pool(kPage, 64);
    auto bt = ValueOrDie(
        btree::RankedBTree::Open(env_.get(), "bt", layout_, &pool, 1));
    btree::BTreeSampler btree_sampler(bt.get(), q, 2);
    auto bt_ids = DrainRowIds(&btree_sampler);
    std::sort(bt_ids.begin(), bt_ids.end());
    EXPECT_EQ(bt_ids, expected);

    auto perm = ValueOrDie(HeapFile::Open(env_.get(), "perm"));
    permuted::PermutedFileSampler perm_sampler(perm.get(), layout_, q);
    auto perm_ids = DrainRowIds(&perm_sampler);
    std::sort(perm_ids.begin(), perm_ids.end());
    EXPECT_EQ(perm_ids, expected);
  }
}

TEST_F(IntegrationTest, AceBeatsPermutedFileEarlyAtLowSelectivity) {
  // The headline claim (Fig. 11): at 0.25% selectivity the ACE tree
  // returns far more samples than a permuted-file scan in the same
  // simulated I/O time budget.
  auto q = sampling::RangeQuery::OneDim(40000, 40250);  // 0.25% of domain

  auto run = [&](auto make_sampler) -> uint64_t {
    auto device = std::make_shared<io::DiskDevice>();
    auto timed = io::NewSimEnv(env_.get(), device);
    auto sampler = make_sampler(timed.get(), device);
    double budget =
        device->SequentialScanMs(kRecords * SaleRecord::kSize) * 0.04;
    device->clock().Reset();
    while (!sampler->done() && device->clock().NowMs() < budget) {
      MSV_EXPECT_OK(sampler->NextBatch().status());
    }
    return sampler->samples_returned();
  };

  uint64_t ace_samples = run([&](io::Env* timed, auto device) {
    (void)device;
    auto tree = ValueOrDie(core::AceTree::Open(timed, "ace", layout_));
    struct Holder : sampling::SampleStream {
      std::unique_ptr<core::AceTree> tree;
      std::unique_ptr<core::AceSampler> inner;
      Result<sampling::SampleBatch> NextBatch() override {
        return inner->NextBatch();
      }
      bool done() const override { return inner->done(); }
      uint64_t samples_returned() const override {
        return inner->samples_returned();
      }
      std::string name() const override { return inner->name(); }
    };
    auto h = std::make_unique<Holder>();
    h->tree = std::move(tree);
    h->inner = std::make_unique<core::AceSampler>(h->tree.get(), q, 5);
    return h;
  });

  uint64_t perm_samples = run([&](io::Env* timed, auto device) {
    (void)device;
    auto file = ValueOrDie(HeapFile::Open(timed, "perm"));
    struct Holder : sampling::SampleStream {
      std::unique_ptr<HeapFile> file;
      std::unique_ptr<permuted::PermutedFileSampler> inner;
      Result<sampling::SampleBatch> NextBatch() override {
        return inner->NextBatch();
      }
      bool done() const override { return inner->done(); }
      uint64_t samples_returned() const override {
        return inner->samples_returned();
      }
      std::string name() const override { return inner->name(); }
    };
    auto h = std::make_unique<Holder>();
    h->file = std::move(file);
    h->inner = std::make_unique<permuted::PermutedFileSampler>(
        h->file.get(), layout_, q, 64 << 10);
    return h;
  });

  EXPECT_GT(ace_samples, 3 * perm_samples)
      << "ace=" << ace_samples << " permuted=" << perm_samples;
}

TEST_F(IntegrationTest, SamplersAreDeterministicGivenSeeds) {
  auto q = sampling::RangeQuery::OneDim(20000, 60000);
  auto tree = ValueOrDie(core::AceTree::Open(env_.get(), "ace", layout_));
  core::AceSampler a(tree.get(), q, 42), b(tree.get(), q, 42);
  auto ids_a = DrainRowIds(&a);
  auto ids_b = DrainRowIds(&b);
  EXPECT_EQ(ids_a, ids_b);

  io::BufferPool pool(kPage, 64);
  auto bt = ValueOrDie(
      btree::RankedBTree::Open(env_.get(), "bt", layout_, &pool, 1));
  btree::BTreeSampler s1(bt.get(), q, 42, 8), s2(bt.get(), q, 42, 8);
  EXPECT_EQ(DrainRowIds(&s1), DrainRowIds(&s2));
}

TEST_F(IntegrationTest, TwoDimStackAgrees) {
  auto layout2 = SaleRecord::Layout2D();
  core::AceBuildOptions ace;
  ace.key_dims = 2;
  ace.page_size = kPage;
  MSV_ASSERT_OK(
      core::BuildAceTree(env_.get(), "sale", "ace2", layout2, ace));
  rtree::RTreeOptions rt;
  rt.page_size = kPage;
  MSV_ASSERT_OK(rtree::BuildRTree(env_.get(), "sale", "rt", layout2, rt));

  auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  auto q = sampling::RangeQuery::TwoDim(20000, 50000, 2000, 5000);
  auto expected =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout2, q));

  auto tree = ValueOrDie(core::AceTree::Open(env_.get(), "ace2", layout2));
  core::AceSampler ace_sampler(tree.get(), q, 4);
  auto ace_ids = DrainRowIds(&ace_sampler);
  std::sort(ace_ids.begin(), ace_ids.end());
  EXPECT_EQ(ace_ids, expected);

  io::BufferPool pool(kPage, 64);
  auto rtree_ptr =
      ValueOrDie(rtree::RTree::Open(env_.get(), "rt", layout2, &pool, 9));
  rtree::RTreeSampler rt_sampler(rtree_ptr.get(), q, 4);
  auto rt_ids = DrainRowIds(&rt_sampler);
  std::sort(rt_ids.begin(), rt_ids.end());
  EXPECT_EQ(rt_ids, expected);
}

}  // namespace
}  // namespace msv
