// Bounded-time (WITHIN t MS) queries against the simulated disk.
//
// The deadline budget charges wall-clock time PLUS the modeled disk time
// the statement's thread accrues (io::ThreadDiskBusyUs()) — on a
// simulated device a statement "spends" milliseconds of seek/rotation in
// microseconds of wall time, so these tests pin the budget arithmetic
// without long real sleeps:
//
//   * a deadline query stops within deadline + one leaf-batch slack
//     (paper-grade random page cost is ~7 modeled ms; the rule checks
//     once per batch, so the overshoot is bounded by one batch's cost),
//   * the result is marked partial and still carries a valid CI,
//   * a longer deadline on the same seeded stream never yields a worse
//     interval than a shorter one.

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "gtest/gtest.h"
#include "io/disk_model.h"
#include "io/env.h"
#include "obs/log.h"
#include "query/executor.h"
#include "relation/sale_generator.h"
#include "sampling/online_aggregator.h"
#include "sampling/stopping_rule.h"
#include "storage/record.h"
#include "test_util.h"

namespace msv {
namespace {

using msv::testing::ValueOrDie;
using sampling::StoppingRule;
using storage::SaleRecord;

/// One random-page budget under the default (paper-grade) disk model:
/// seek + rotational + page transfer + overhead, with margin for a batch
/// touching a few pages plus wall-clock scheduling noise.
constexpr uint64_t kLeafBatchSlackUs = 40'000;

class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mem_env_ = io::NewMemEnv();
    relation::SaleGenOptions gen;
    gen.num_records = 20000;
    gen.seed = 7;
    ASSERT_TRUE(
        relation::GenerateSaleRelation(mem_env_.get(), "sale", gen).ok());
    layout_ = SaleRecord::Layout1D();

    core::AceBuildOptions build;
    build.page_size = 4096;
    build.key_dims = 1;
    build.seed = 99;
    build.sort.memory_budget_bytes = 1 << 20;
    ASSERT_TRUE(
        core::BuildAceTree(mem_env_.get(), "sale", "sale.ace", layout_, build)
            .ok());

    device_ = std::make_shared<io::DiskDevice>(io::DiskModelOptions{});
    sim_env_ = io::NewSimEnv(mem_env_.get(), device_);
    tree_ = ValueOrDie(core::AceTree::Open(sim_env_.get(), "sale.ace",
                                           layout_));
  }

  /// Runs one bounded AVG estimate over the simulated disk; returns the
  /// final estimate, the verdict and the budget the rule consumed.
  struct BoundedRun {
    sampling::Estimate estimate;
    StoppingRule::Verdict verdict = StoppingRule::Verdict::kContinue;
    uint64_t elapsed_us = 0;
    bool stream_done = false;
  };
  BoundedRun RunBounded(uint64_t seed, uint64_t deadline_ms) {
    core::AceSampler sampler(tree_.get(),
                             sampling::RangeQuery::OneDim(20000.0, 70000.0),
                             seed);
    sampling::OnlineAggregator agg(
        [](const char* rec) { return SaleRecord::DecodeFrom(rec).amount; },
        /*population=*/10000);
    const uint64_t disk_before = io::ThreadDiskBusyUs();
    StoppingRule::Options options;
    options.deadline_us = deadline_ms * 1000;
    options.extra_elapsed_us = [disk_before] {
      return io::ThreadDiskBusyUs() - disk_before;
    };
    StoppingRule rule(options);
    BoundedRun run;
    while (!sampler.done()) {
      agg.Consume(ValueOrDie(sampler.NextBatch()));
      run.verdict = rule.Check(agg.Avg());
      if (run.verdict != StoppingRule::Verdict::kContinue) break;
    }
    run.estimate = agg.Avg();
    run.elapsed_us = rule.ElapsedUs();
    run.stream_done = sampler.done();
    return run;
  }

  std::unique_ptr<io::Env> mem_env_;
  std::shared_ptr<io::DiskDevice> device_;
  std::unique_ptr<io::Env> sim_env_;
  storage::RecordLayout layout_;
  std::unique_ptr<core::AceTree> tree_;
};

TEST_F(DeadlineTest, StopsWithinDeadlinePlusOneBatch) {
  const BoundedRun run = RunBounded(/*seed=*/11, /*deadline_ms=*/50);
  EXPECT_EQ(run.verdict, StoppingRule::Verdict::kDeadlineHit);
  EXPECT_FALSE(run.stream_done);
  EXPECT_GE(run.elapsed_us, 50'000u);  // the deadline actually fired
  EXPECT_LE(run.elapsed_us, 50'000u + kLeafBatchSlackUs)
      << "overshot the deadline by more than one leaf batch";
}

TEST_F(DeadlineTest, PartialResultCarriesValidCi) {
  const BoundedRun run = RunBounded(/*seed=*/12, /*deadline_ms=*/50);
  ASSERT_EQ(run.verdict, StoppingRule::Verdict::kDeadlineHit);
  EXPECT_GT(run.estimate.samples, 0u);
  EXPECT_GT(run.estimate.half_width, 0.0);
  EXPECT_TRUE(std::isfinite(run.estimate.value));
  // The partial CI is a real interval around a plausible mean (amount is
  // uniform in (0, 10000), so the estimate must land well inside).
  EXPECT_GT(run.estimate.value, 0.0);
  EXPECT_LT(run.estimate.value, 10000.0);
}

TEST_F(DeadlineTest, LongerDeadlineNeverWorsensTheInterval) {
  // Same seed => the longer run consumes a superset of the shorter run's
  // sample stream. The deadlines are far apart (4x) so the CLT width
  // shrink dominates any sample-variance wobble.
  const BoundedRun short_run = RunBounded(/*seed=*/21, /*deadline_ms=*/50);
  const BoundedRun long_run = RunBounded(/*seed=*/21, /*deadline_ms=*/200);
  ASSERT_EQ(short_run.verdict, StoppingRule::Verdict::kDeadlineHit);
  EXPECT_GT(long_run.estimate.samples, short_run.estimate.samples);
  EXPECT_LE(long_run.estimate.half_width, short_run.estimate.half_width)
      << "more budget produced a wider interval";
}

TEST_F(DeadlineTest, ModeledDiskTimeCountsAgainstTheBudget) {
  // The run above finishes in far less wall time than its modeled
  // budget: the rule must be charging simulated microseconds. Verify by
  // re-running and checking modeled disk time dominates the elapsed
  // budget (on a memory-backed device wall time is microseconds).
  const uint64_t disk_before = io::ThreadDiskBusyUs();
  const BoundedRun run = RunBounded(/*seed=*/31, /*deadline_ms=*/50);
  const uint64_t disk_delta = io::ThreadDiskBusyUs() - disk_before;
  EXPECT_EQ(run.verdict, StoppingRule::Verdict::kDeadlineHit);
  EXPECT_GT(disk_delta, run.elapsed_us / 2)
      << "modeled disk time should dominate the consumed budget";
}

/// Executor-level: the WITHIN ... MS plumbing over a simulated-disk
/// catalog env reports a partial estimate in the statement ledger.
TEST(DeadlineExecutorTest, PartialEstimateThroughExecutor) {
  auto mem = io::NewMemEnv();
  auto device = std::make_shared<io::DiskDevice>(io::DiskModelOptions{});
  auto sim = io::NewSimEnv(mem.get(), device);
  auto executor = ValueOrDie(query::Executor::Open(sim.get()));
  // Large enough that a 10 ms budget cannot drain the stream even when
  // every page is already resident (pure-wall sampling), so the result
  // is partial regardless of buffer-pool warmth.
  ASSERT_TRUE(executor
                  ->Run("GENERATE TABLE sale ROWS 100000 SEED 7; CREATE "
                        "MATERIALIZED SAMPLE VIEW sv AS SELECT * FROM sale "
                        "INDEX ON day;")
                  .ok());
  auto out = ValueOrDie(executor->Run(
      "ESTIMATE AVG(amount) FROM sv WHERE day BETWEEN 20000 AND 70000 "
      "WITHIN 10 MS;"));
  EXPECT_NE(out.find("deadline 10 ms hit"), std::string::npos) << out;
  EXPECT_NE(out.find("partial"), std::string::npos) << out;
  const obs::StatementLedger& ledger = obs::ThreadStatementLedger();
  EXPECT_TRUE(ledger.has_estimate);
  EXPECT_TRUE(ledger.is_partial);
  EXPECT_EQ(ledger.deadline_us, 10'000u);
  EXPECT_GE(ledger.elapsed_us, 10'000u);
  EXPECT_LE(ledger.elapsed_us, 10'000u + kLeafBatchSlackUs);
  EXPECT_GT(ledger.ci_half_width, 0.0);
}

}  // namespace
}  // namespace msv
