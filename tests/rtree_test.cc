#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "io/buffer_pool.h"
#include "io/env.h"
#include "relation/workload.h"
#include "rtree/rtree.h"
#include "rtree/rtree_sampler.h"
#include "test_util.h"
#include "util/stats.h"

namespace msv::rtree {
namespace {

using msv::testing::AllDistinct;
using msv::testing::DrainRowIds;
using msv::testing::MakeSale;
using msv::testing::TakeRowIds;
using msv::testing::ValueOrDie;
using storage::HeapFile;
using storage::SaleRecord;

constexpr size_t kPageSize = 4096;

class RTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    MakeSale(env_.get(), "sale", kRecords, /*seed=*/51);
    RTreeOptions options;
    options.page_size = kPageSize;
    options.dims = 2;
    MSV_ASSERT_OK(BuildRTree(env_.get(), "sale", "rt",
                             SaleRecord::Layout2D(), options));
    pool_ = std::make_unique<io::BufferPool>(kPageSize, 256);
    tree_ = ValueOrDie(RTree::Open(env_.get(), "rt", SaleRecord::Layout2D(),
                                   pool_.get(), /*file_id=*/1));
  }

  static constexpr uint64_t kRecords = 20000;
  std::unique_ptr<io::Env> env_;
  std::unique_ptr<io::BufferPool> pool_;
  std::unique_ptr<RTree> tree_;
};

TEST_F(RTreeTest, MetaIsConsistent) {
  const RTreeMeta& meta = tree_->meta();
  EXPECT_EQ(meta.num_records, kRecords);
  EXPECT_EQ(meta.dims, 2u);
  EXPECT_GT(meta.height, 1u);
  EXPECT_EQ(meta.num_leaves,
            (kRecords + meta.records_per_leaf - 1) / meta.records_per_leaf);
}

TEST_F(RTreeTest, AllLeavesHoldAllRecordsExactlyOnce) {
  // A query covering everything must produce candidate runs containing all
  // records exactly once.
  auto query = sampling::RangeQuery::TwoDim(-1e9, 1e9, -1e9, 1e9);
  auto runs = ValueOrDie(tree_->CollectCandidates(query));
  uint64_t total = 0;
  std::set<uint64_t> ids;
  std::vector<char> rec(SaleRecord::kSize);
  for (const auto& run : runs) {
    total += run.count;
    for (uint32_t i = 0; i < run.count; ++i) {
      MSV_ASSERT_OK(tree_->ReadRecordAt(run.page, i, rec.data()));
      ids.insert(SaleRecord::DecodeFrom(rec.data()).row_id);
    }
  }
  EXPECT_EQ(total, kRecords);
  EXPECT_EQ(ids.size(), kRecords);
}

TEST_F(RTreeTest, CandidatesAreSupersetOfMatches) {
  auto layout = SaleRecord::Layout2D();
  auto query = sampling::RangeQuery::TwoDim(20000, 60000, 2000, 6000);
  auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  auto expected =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout, query));

  auto runs = ValueOrDie(tree_->CollectCandidates(query));
  std::set<uint64_t> candidates;
  std::vector<char> rec(SaleRecord::kSize);
  for (const auto& run : runs) {
    for (uint32_t i = 0; i < run.count; ++i) {
      MSV_ASSERT_OK(tree_->ReadRecordAt(run.page, i, rec.data()));
      candidates.insert(SaleRecord::DecodeFrom(rec.data()).row_id);
    }
  }
  for (uint64_t id : expected) {
    EXPECT_TRUE(candidates.count(id)) << "match " << id << " not a candidate";
  }
}

TEST_F(RTreeTest, StrPackingIsSpatiallySelective) {
  // A small query rectangle should touch far fewer leaves than the tree
  // holds (that's the point of STR packing).
  auto query = sampling::RangeQuery::TwoDim(50000, 55000, 5000, 5500);
  auto runs = ValueOrDie(tree_->CollectCandidates(query));
  EXPECT_LT(runs.size(), tree_->meta().num_leaves / 4)
      << runs.size() << " of " << tree_->meta().num_leaves;
}

TEST_F(RTreeTest, SamplerReturnsExactlyTheMatchSet) {
  auto layout = SaleRecord::Layout2D();
  auto query = sampling::RangeQuery::TwoDim(10000, 50000, 1000, 5000);
  auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  auto expected =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout, query));

  RTreeSampler sampler(tree_.get(), query, /*seed=*/7);
  auto got = DrainRowIds(&sampler);
  EXPECT_TRUE(AllDistinct(got));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST_F(RTreeTest, SamplerRespectsPredicate) {
  auto layout = SaleRecord::Layout2D();
  auto query = sampling::RangeQuery::TwoDim(70000, 75000, 7000, 7500);
  RTreeSampler sampler(tree_.get(), query, 8);
  while (!sampler.done()) {
    auto batch = ValueOrDie(sampler.NextBatch());
    for (size_t i = 0; i < batch.count(); ++i) {
      EXPECT_TRUE(query.Matches(layout, batch.record(i)));
    }
  }
}

TEST_F(RTreeTest, EmptyQueryFinishes) {
  auto query = sampling::RangeQuery::TwoDim(2e6, 3e6, 2e6, 3e6);
  RTreeSampler sampler(tree_.get(), query, 8);
  EXPECT_TRUE(DrainRowIds(&sampler).empty());
}

TEST_F(RTreeTest, SamplerPrefixIsUniform) {
  auto layout = SaleRecord::Layout2D();
  auto query = sampling::RangeQuery::TwoDim(30000, 70000, 3000, 7000);
  auto sale = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  auto matching =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout, query));
  ASSERT_GT(matching.size(), 200u);
  std::map<uint64_t, size_t> index;
  for (size_t i = 0; i < matching.size(); ++i) index[matching[i]] = i;

  const uint64_t kPrefix = 60;
  const int kTrials = 400;
  std::vector<uint64_t> counts(matching.size(), 0);
  for (int t = 0; t < kTrials; ++t) {
    RTreeSampler sampler(tree_.get(), query, 7000 + t);
    auto prefix = TakeRowIds(&sampler, kPrefix);
    ASSERT_GE(prefix.size(), kPrefix);
    prefix.resize(kPrefix);  // batches may overshoot; keep an exact prefix
    for (uint64_t id : prefix) {
      ++counts[index.at(id)];
    }
  }
  std::vector<double> expected(
      matching.size(), double(kPrefix) * kTrials / double(matching.size()));
  double stat = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(stat, matching.size() - 1), 1e-5)
      << "stat=" << stat;
}

class RTreeSizeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RTreeSizeSweep, BuildAndDrainEverything) {
  const uint64_t n = GetParam();
  auto env = io::NewMemEnv();
  MakeSale(env.get(), "sale", n, 61);
  RTreeOptions options;
  options.page_size = 4096;
  MSV_ASSERT_OK(
      BuildRTree(env.get(), "sale", "rt", SaleRecord::Layout2D(), options));
  io::BufferPool pool(4096, 64);
  auto tree = ValueOrDie(
      RTree::Open(env.get(), "rt", SaleRecord::Layout2D(), &pool, 1));
  auto query = sampling::RangeQuery::TwoDim(-1e9, 1e9, -1e9, 1e9);
  RTreeSampler sampler(tree.get(), query, 1);
  auto got = DrainRowIds(&sampler);
  EXPECT_EQ(got.size(), n);
  EXPECT_TRUE(AllDistinct(got));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeSizeSweep,
                         ::testing::Values(1, 2, 39, 40, 41, 1000, 5000));

}  // namespace
}  // namespace msv::rtree
