// Golden Prometheus exposition for the serving metrics.
//
// Runs a fixed, deterministic request set against a live server — two
// successes, one MSVQL parse failure, one execution failure, one
// protocol-level garbage frame — then scrapes the global registry and
// pins the `msv_serve_*` families: the exact counter values, the TYPE
// declarations, and that the whole document still passes the strict
// exposition validator (so a real Prometheus server would ingest it).
//
// Timing-dependent series (bytes in/out, histogram sum, request
// latencies) are deliberately NOT pinned; their presence and shape are
// covered by the validator.

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "io/env.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "query/executor.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "test_util.h"

namespace msv {
namespace {

using msv::testing::ValueOrDie;
using serve::Client;
using serve::EncodeFrame;
using serve::Server;
using serve::ServerOptions;

/// Polls `predicate` until it holds or ~5 s elapse (the server's I/O
/// loop observes disconnects within one 100 ms poll turn).
template <typename Predicate>
bool EventuallyTrue(Predicate predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

TEST(ServePrometheusTest, GoldenExpositionForDeterministicRequestSet) {
  auto env = io::NewMemEnv();
  auto executor = ValueOrDie(query::Executor::Open(env.get()));
  ASSERT_TRUE(executor
                  ->Run("GENERATE TABLE sale ROWS 5000 SEED 7; CREATE "
                        "MATERIALIZED SAMPLE VIEW sv AS SELECT * FROM sale "
                        "INDEX ON day;")
                  .ok());
  ServerOptions options;
  options.port = 0;
  options.workers = 1;  // serialize execution for deterministic counts
  Server server(executor.get(), options);
  ASSERT_TRUE(server.Start().ok());

  {
    auto client = ValueOrDie(Client::Connect("127.0.0.1", server.port()));
    // Two successes.
    for (int i = 0; i < 2; ++i) {
      auto doc = client->Call(
          "ESTIMATE AVG(amount) FROM sv WHERE day BETWEEN 1000 AND 90000 "
          "SAMPLES 64;");
      ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    }
    // One MSVQL parse failure.
    ASSERT_FALSE(client->Call("NOT A STATEMENT;").ok());
    // One execution failure.
    ASSERT_FALSE(
        client->Call("ESTIMATE AVG(amount) FROM no_such_view SAMPLES 8;")
            .ok());
    // One protocol failure: a complete frame that is not request JSON.
    const std::string garbage = EncodeFrame("{broken");
    ASSERT_TRUE(client->SendBytes(garbage.data(), garbage.size()).ok());
    auto protocol_error = ValueOrDie(client->Read());
    EXPECT_FALSE(protocol_error.Find("ok")->AsBool());
  }  // disconnect -> the server must register one dropped connection

  auto& registry = obs::MetricRegistry::Global();
  ASSERT_TRUE(EventuallyTrue([&] {
    return registry.GetCounter("serve.connections_dropped")->Value() >= 1;
  })) << "server never observed the client disconnect";

  const std::string text = registry.DumpPrometheus();

  // The full document must be ingestible exposition format.
  ASSERT_TRUE(obs::ValidatePrometheusText(text).ok()) << text;

  // Golden serve.* counter lines: 5 frames total, 2 succeeded, one
  // failure of each remaining kind, nothing shed by admission.
  for (const char* line : {
           "# TYPE msv_serve_requests_total counter",
           "msv_serve_requests_total 5",
           "msv_serve_responses_total 2",
           "msv_serve_errors_parse_total 1",
           "msv_serve_errors_exec_total 1",
           "msv_serve_errors_protocol_total 1",
           "msv_serve_rejected_overload_total 0",
           "msv_serve_partial_results_total 0",
           "msv_serve_connections_accepted_total 1",
           "msv_serve_connections_dropped_total 1",
           "# TYPE msv_serve_connections_active gauge",
           "msv_serve_connections_active 0",
           "# TYPE msv_serve_queue_depth gauge",
           "msv_serve_queue_depth 0",
           "# TYPE msv_serve_request_us histogram",
           "msv_serve_request_us_count 2",
       }) {
    EXPECT_NE(text.find(std::string(line) + "\n"), std::string::npos)
        << "missing exposition line: " << line;
  }

  // Byte counters exist and moved, but their values are traffic-shaped —
  // presence only.
  EXPECT_NE(text.find("msv_serve_bytes_in_total"), std::string::npos);
  EXPECT_NE(text.find("msv_serve_bytes_out_total"), std::string::npos);

  server.Stop();
}

/// The serve families parse back with the right types — guards against a
/// future rename silently detaching the dashboards.
TEST(ServePrometheusTest, ServeFamiliesParseBackWithExpectedTypes) {
  auto env = io::NewMemEnv();
  auto executor = ValueOrDie(query::Executor::Open(env.get()));
  ServerOptions options;
  options.port = 0;
  Server server(executor.get(), options);
  ASSERT_TRUE(server.Start().ok());
  server.Stop();

  auto families = ValueOrDie(
      obs::ParsePrometheusText(obs::MetricRegistry::Global().DumpPrometheus()));
  int counters = 0, gauges = 0, histograms = 0;
  for (const auto& family : families) {
    if (family.name.rfind("msv_serve_", 0) != 0) continue;
    if (family.type == "counter") ++counters;
    if (family.type == "gauge") ++gauges;
    if (family.type == "histogram") ++histograms;
  }
  EXPECT_EQ(counters, 11);
  EXPECT_EQ(gauges, 2);
  EXPECT_EQ(histograms, 1);
}

}  // namespace
}  // namespace msv
