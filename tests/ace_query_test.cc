#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "core/combine_engine.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "relation/workload.h"
#include "test_util.h"
#include "util/stats.h"

namespace msv::core {
namespace {

using msv::testing::AllDistinct;
using msv::testing::DrainRowIds;
using msv::testing::MakeSale;
using msv::testing::TakeRowIds;
using msv::testing::ValueOrDie;
using storage::HeapFile;
using storage::SaleRecord;

// ---------------------------------------------------------------------------
// CombineEngine unit tests (synthetic sections; 16-byte records:
// key double at offset 0, id u64 at offset 8)
// ---------------------------------------------------------------------------

constexpr size_t kRec = 16;

std::string MakeRecords(std::vector<std::pair<double, uint64_t>> rows) {
  std::string out(rows.size() * kRec, '\0');
  for (size_t i = 0; i < rows.size(); ++i) {
    EncodeDouble(out.data() + i * kRec, rows[i].first);
    EncodeFixed64(out.data() + i * kRec + 8, rows[i].second);
  }
  return out;
}

std::vector<uint64_t> Ids(const sampling::SampleBatch& batch) {
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < batch.count(); ++i) {
    ids.push_back(DecodeFixed64(batch.record(i) + 8));
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

class CombineEngineTest : public ::testing::Test {
 protected:
  CombineEngineTest() : layout_{kRec, {0}} {}

  LeafData MakeLeaf(uint64_t leaf_index, std::string s1, std::string s2) {
    LeafData leaf;
    leaf.leaf_index = leaf_index;
    leaf.record_size = kRec;
    leaf.sections = {std::move(s1), std::move(s2)};
    return leaf;
  }

  storage::RecordLayout layout_;
  Pcg64 rng_{99};
};

TEST_F(CombineEngineTest, RootSectionEmitsImmediately) {
  // Height 2; query overlaps both leaves, so covering = {1} / {2, 3}.
  auto q = sampling::RangeQuery::OneDim(0, 100);
  CombineEngine engine(&layout_, q, {{1}, {2, 3}}, kRec, 2);
  sampling::SampleBatch out;
  out.record_size = kRec;
  engine.AddLeaf(2, MakeLeaf(0, MakeRecords({{10, 1}, {60, 2}}), ""), &out,
                 &rng_);
  // Section 1 (root level) has a single covering node: emitted at once.
  EXPECT_EQ(Ids(out), (std::vector<uint64_t>{1, 2}));
}

TEST_F(CombineEngineTest, SiblingSectionsWaitForPartner) {
  auto q = sampling::RangeQuery::OneDim(0, 100);
  CombineEngine engine(&layout_, q, {{1}, {2, 3}}, kRec, 2);
  sampling::SampleBatch out;
  out.record_size = kRec;
  // Leaf 0 (heap 2): section 2 covers [0, 50): must be buffered.
  engine.AddLeaf(2, MakeLeaf(0, "", MakeRecords({{10, 1}, {20, 2}})), &out,
                 &rng_);
  EXPECT_EQ(out.count(), 0u);
  EXPECT_EQ(engine.buffered_records(), 2u);
  // Leaf 1 (heap 3): partner arrives; both are appended and emitted.
  engine.AddLeaf(3, MakeLeaf(1, "", MakeRecords({{70, 3}})), &out, &rng_);
  EXPECT_EQ(Ids(out), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(engine.buffered_records(), 0u);
  EXPECT_EQ(engine.rounds(2), 1u);
}

TEST_F(CombineEngineTest, FilteringHappensAtBufferTime) {
  auto q = sampling::RangeQuery::OneDim(0, 15);  // only keys <= 15 match
  CombineEngine engine(&layout_, q, {{1}, {2}}, kRec, 2);
  sampling::SampleBatch out;
  out.record_size = kRec;
  engine.AddLeaf(2, MakeLeaf(0, MakeRecords({{10, 1}, {60, 2}}),
                             MakeRecords({{12, 3}, {40, 4}})),
                 &out, &rng_);
  // Root section filtered to {1}; level-2 covering is {2} alone, so its
  // filtered section {3} emits immediately too.
  EXPECT_EQ(Ids(out), (std::vector<uint64_t>{1, 3}));
  EXPECT_EQ(engine.buffered_records(), 0u);
}

TEST_F(CombineEngineTest, EmptyFilteredContributionCompletesRound) {
  auto q = sampling::RangeQuery::OneDim(0, 100);
  CombineEngine engine(&layout_, q, {{1}, {2, 3}}, kRec, 2);
  sampling::SampleBatch out;
  out.record_size = kRec;
  engine.AddLeaf(2, MakeLeaf(0, "", MakeRecords({{10, 1}})), &out, &rng_);
  EXPECT_EQ(out.count(), 0u);
  // Partner's section 2 is empty; the round must still complete and emit
  // leaf 0's buffered records.
  engine.AddLeaf(3, MakeLeaf(1, "", ""), &out, &rng_);
  EXPECT_EQ(Ids(out), (std::vector<uint64_t>{1}));
}

TEST_F(CombineEngineTest, MultipleRoundsFifo) {
  auto q = sampling::RangeQuery::OneDim(0, 100);
  CombineEngine engine(&layout_, q, {{1}, {2, 3}}, kRec, 2);
  sampling::SampleBatch out;
  out.record_size = kRec;
  // Two contributions from leaf-side 2 stack up.
  engine.AddLeaf(2, MakeLeaf(0, "", MakeRecords({{10, 1}})), &out, &rng_);
  engine.AddLeaf(2, MakeLeaf(0, "", MakeRecords({{11, 2}})), &out, &rng_);
  EXPECT_EQ(out.count(), 0u);
  EXPECT_EQ(engine.buffered_records(), 2u);
  engine.AddLeaf(3, MakeLeaf(1, "", MakeRecords({{70, 3}})), &out, &rng_);
  EXPECT_EQ(engine.rounds(2), 1u);
  EXPECT_EQ(Ids(out), (std::vector<uint64_t>{1, 3}));
  EXPECT_EQ(engine.buffered_records(), 1u);  // {11,2} awaits next partner
  engine.AddLeaf(3, MakeLeaf(1, "", MakeRecords({{71, 4}})), &out, &rng_);
  EXPECT_EQ(engine.rounds(2), 2u);
  EXPECT_EQ(Ids(out), (std::vector<uint64_t>{1, 2, 3, 4}));
}

TEST_F(CombineEngineTest, FlushEmitsLeftovers) {
  auto q = sampling::RangeQuery::OneDim(0, 100);
  CombineEngine engine(&layout_, q, {{1}, {2, 3}}, kRec, 2);
  sampling::SampleBatch out;
  out.record_size = kRec;
  engine.AddLeaf(2, MakeLeaf(0, "", MakeRecords({{10, 1}, {20, 2}})), &out,
                 &rng_);
  EXPECT_EQ(engine.buffered_records(), 2u);
  engine.Flush(&out, &rng_);
  EXPECT_EQ(Ids(out), (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(engine.buffered_records(), 0u);
}

// ---------------------------------------------------------------------------
// AceSampler end-to-end
// ---------------------------------------------------------------------------

class AceSamplerFixture : public ::testing::Test {
 protected:
  void Build(uint64_t n, uint32_t height, uint32_t dims, uint64_t seed) {
    env_ = io::NewMemEnv();
    MakeSale(env_.get(), "sale", n, seed);
    layout_ = dims == 1 ? SaleRecord::Layout1D() : SaleRecord::Layout2D();
    AceBuildOptions options;
    options.height = height;
    options.key_dims = dims;
    options.seed = seed * 3 + 1;
    MSV_ASSERT_OK(BuildAceTree(env_.get(), "sale", "ace", layout_, options));
    tree_ = ValueOrDie(AceTree::Open(env_.get(), "ace", layout_));
    sale_ = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  }

  std::vector<uint64_t> Oracle(const sampling::RangeQuery& q) {
    return ValueOrDie(relation::CollectMatchingRowIds(*sale_, layout_, q));
  }

  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  std::unique_ptr<AceTree> tree_;
  std::unique_ptr<HeapFile> sale_;
};

class AceSamplerSelectivity
    : public AceSamplerFixture,
      public ::testing::WithParamInterface<double> {
 protected:
  void SetUp() override { Build(20000, 6, 1, /*seed=*/71); }
};

TEST_P(AceSamplerSelectivity, ReturnsExactlyTheMatchSet) {
  double sel = GetParam();
  relation::WorkloadGenerator gen({{0.0, 100000.0}}, 17);
  for (int i = 0; i < 3; ++i) {
    auto q = gen.Query(sel, 1);
    auto expected = Oracle(q);
    AceSampler sampler(tree_.get(), q, /*seed=*/100 + i);
    auto got = DrainRowIds(&sampler);
    EXPECT_TRUE(AllDistinct(got));
    EXPECT_EQ(sampler.samples_returned(), got.size());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << q.ToString();
    EXPECT_EQ(sampler.buffered_records(), 0u);
    EXPECT_LE(sampler.leaves_read(), tree_->meta().num_leaves);
  }
}

TEST_P(AceSamplerSelectivity, PredicateHoldsForEveryEmittedRecord) {
  double sel = GetParam();
  relation::WorkloadGenerator gen({{0.0, 100000.0}}, 18);
  auto q = gen.Query(sel, 1);
  AceSampler sampler(tree_.get(), q, 1);
  while (!sampler.done()) {
    auto batch = ValueOrDie(sampler.NextBatch());
    for (size_t i = 0; i < batch.count(); ++i) {
      ASSERT_TRUE(q.Matches(layout_, batch.record(i)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Selectivities, AceSamplerSelectivity,
                         ::testing::Values(0.0025, 0.025, 0.25, 0.9),
                         [](const auto& info) {
                           return "sel" + std::to_string(static_cast<int>(
                                              info.param * 10000));
                         });

class AceSamplerTest : public AceSamplerFixture {
 protected:
  void SetUp() override { Build(20000, 6, 1, /*seed=*/73); }
};

TEST_F(AceSamplerTest, FastFirstSamplesArriveImmediately) {
  // After just two stabs the sampler must already have produced samples
  // (the paper's headline behaviour; Sec. 3.3's example yields 11 from 2
  // leaves).
  auto q = sampling::RangeQuery::OneDim(30000, 65000);
  AceSampler sampler(tree_.get(), q, 2);
  uint64_t after2 = 0;
  for (int i = 0; i < 2; ++i) {
    auto batch = ValueOrDie(sampler.NextBatch());
    after2 += batch.count();
  }
  EXPECT_GT(after2, 0u);
  EXPECT_EQ(sampler.leaves_read(), 2u);
}

TEST_F(AceSamplerTest, FirstStabEmitsRootSection) {
  // The very first leaf's section 1 always spans the whole domain, so the
  // first stab emits at least its filtered records (usually > 0 for a
  // non-tiny query).
  auto q = sampling::RangeQuery::OneDim(10000, 90000);  // 80% selectivity
  AceSampler sampler(tree_.get(), q, 3);
  auto batch = ValueOrDie(sampler.NextBatch());
  EXPECT_GT(batch.count(), 0u);
}

TEST_F(AceSamplerTest, StabOrderAlternatesSubtrees) {
  // With a whole-domain query, consecutive stabs must alternate between
  // the root's two subtrees (paper Fig. 10).
  auto q = sampling::RangeQuery::OneDim(-1e9, 1e9);
  AceSampler sampler(tree_.get(), q, 4);
  std::vector<uint64_t> leaves;
  uint64_t f = tree_->meta().num_leaves;
  while (!sampler.done()) {
    uint64_t before = sampler.leaves_read();
    ValueOrDie(sampler.NextBatch());
    if (sampler.leaves_read() == before) continue;
    leaves.push_back(sampler.leaves_read());
  }
  EXPECT_EQ(sampler.leaves_read(), f);
}

TEST_F(AceSamplerTest, PaperStabOrderReproduced) {
  // The paper's running example (Sec. 3.3 / Fig. 10): an 8-leaf tree with
  // near-even splits over [0, 100k] and Q = [30%, 65%] of the domain
  // retrieves leaves in the order L3, L5, L4, L6, L1, L7, L2, L8
  // (1-indexed), i.e. 2, 4, 3, 5, 0, 6, 1, 7.
  Build(4000, 4, 1, /*seed=*/91);
  auto q = sampling::RangeQuery::OneDim(30000, 65000);
  AceSampler sampler(tree_.get(), q, 1);
  DrainRowIds(&sampler);
  EXPECT_EQ(sampler.leaf_read_order(),
            (std::vector<uint64_t>{2, 4, 3, 5, 0, 6, 1, 7}));
}

TEST_F(AceSamplerTest, WholeDomainStabOrderAlternates) {
  // With a whole-domain query every choice is free: the first two stabs
  // must land in opposite halves, the first four in all four quarters.
  Build(4000, 4, 1, /*seed=*/92);
  auto q = sampling::RangeQuery::OneDim(-1e18, 1e18);
  AceSampler sampler(tree_.get(), q, 1);
  DrainRowIds(&sampler);
  const auto& order = sampler.leaf_read_order();
  ASSERT_EQ(order.size(), 8u);
  EXPECT_NE(order[0] / 4, order[1] / 4);  // opposite root halves
  std::set<uint64_t> quarters{order[0] / 2, order[1] / 2, order[2] / 2,
                              order[3] / 2};
  EXPECT_EQ(quarters.size(), 4u);
}

TEST_F(AceSamplerTest, DoneQueryOutsideDomain) {
  auto q = sampling::RangeQuery::OneDim(2e6, 3e6);
  AceSampler sampler(tree_.get(), q, 5);
  EXPECT_TRUE(sampler.done());
  auto batch = ValueOrDie(sampler.NextBatch());
  EXPECT_EQ(batch.count(), 0u);
}

TEST_F(AceSamplerTest, NextBatchAfterDoneStaysEmpty) {
  auto q = sampling::RangeQuery::OneDim(40000, 41000);
  AceSampler sampler(tree_.get(), q, 5);
  DrainRowIds(&sampler);
  uint64_t total = sampler.samples_returned();
  for (int i = 0; i < 3; ++i) {
    auto batch = ValueOrDie(sampler.NextBatch());
    EXPECT_EQ(batch.count(), 0u);
  }
  EXPECT_EQ(sampler.samples_returned(), total);
}

TEST_F(AceSamplerTest, ConcurrentSamplersAreIndependent) {
  // Two samplers over the same open tree, different queries, interleaved
  // pulls: each must still produce its exact match set.
  auto q1 = sampling::RangeQuery::OneDim(10000, 30000);
  auto q2 = sampling::RangeQuery::OneDim(60000, 90000);
  AceSampler s1(tree_.get(), q1, 1);
  AceSampler s2(tree_.get(), q2, 2);
  std::vector<uint64_t> ids1, ids2;
  while (!s1.done() || !s2.done()) {
    if (!s1.done()) {
      auto b = ValueOrDie(s1.NextBatch());
      for (size_t i = 0; i < b.count(); ++i) {
        ids1.push_back(SaleRecord::DecodeFrom(b.record(i)).row_id);
      }
    }
    if (!s2.done()) {
      auto b = ValueOrDie(s2.NextBatch());
      for (size_t i = 0; i < b.count(); ++i) {
        ids2.push_back(SaleRecord::DecodeFrom(b.record(i)).row_id);
      }
    }
  }
  std::sort(ids1.begin(), ids1.end());
  std::sort(ids2.begin(), ids2.end());
  EXPECT_EQ(ids1, Oracle(q1));
  EXPECT_EQ(ids2, Oracle(q2));
}

TEST_F(AceSamplerTest, SmallQueryPrioritizesOverlappingLeaves) {
  // Every leaf holds query-relevant coarse sections, so completion needs
  // all of them; but the shuttle must walk the overlapping subtree FIRST
  // (that is the fast-first property).
  auto q = sampling::RangeQuery::OneDim(50000, 52000);
  auto covering = tree_->splits().CoveringSets(q);
  const auto& leaf_level = covering[tree_->meta().height - 1];
  AceSampler sampler(tree_.get(), q, 6);
  // The first |overlapping| stabs all land on overlapping leaves: the
  // sampler's early sample mass comes from the query region.
  uint64_t expected_first = leaf_level.size();
  uint64_t matched_early = 0;
  for (uint64_t i = 0; i < expected_first; ++i) {
    ValueOrDie(sampler.NextBatch());
    ++matched_early;
  }
  EXPECT_EQ(sampler.leaves_read(), matched_early);
  EXPECT_GT(sampler.samples_returned(), 0u);
  // Completion reads every leaf.
  DrainRowIds(&sampler);
  EXPECT_EQ(sampler.leaves_read(), tree_->meta().num_leaves);
}

TEST_F(AceSamplerTest, CumulativeSamplesNeverDecrease) {
  auto q = sampling::RangeQuery::OneDim(20000, 70000);
  AceSampler sampler(tree_.get(), q, 7);
  uint64_t last = 0;
  while (!sampler.done()) {
    ValueOrDie(sampler.NextBatch());
    EXPECT_GE(sampler.samples_returned(), last);
    last = sampler.samples_returned();
  }
}

TEST_F(AceSamplerTest, BufferedRecordsStayBounded) {
  // Fig. 15: at the paper's selectivities the buffered fraction is a tiny
  // share of the relation (matching records awaiting combine partners).
  auto q25 = sampling::RangeQuery::OneDim(40000, 42500);  // ~2.5% sel
  AceSampler s25(tree_.get(), q25, 8);
  uint64_t peak25 = 0;
  while (!s25.done()) {
    ValueOrDie(s25.NextBatch());
    peak25 = std::max(peak25, s25.buffered_records());
  }
  EXPECT_LT(peak25, 20000u / 50);  // < 2% of the relation
  EXPECT_EQ(s25.buffered_records(), 0u);

  // Even at 50% selectivity the peak stays well below the match count
  // (records are emitted continuously, not held to the end).
  auto q50 = sampling::RangeQuery::OneDim(25000, 75000);
  AceSampler s50(tree_.get(), q50, 8);
  uint64_t peak50 = 0;
  while (!s50.done()) {
    ValueOrDie(s50.NextBatch());
    peak50 = std::max(peak50, s50.buffered_records());
  }
  EXPECT_LT(peak50, 10000u / 2);  // < half of the ~10k matches
  EXPECT_EQ(s50.buffered_records(), 0u);
}

TEST_F(AceSamplerTest, TwoDimensionalCompleteness) {
  Build(20000, 5, 2, /*seed=*/79);
  relation::WorkloadGenerator gen({{0.0, 100000.0}, {0.0, 10000.0}}, 23);
  for (double sel : {0.01, 0.25}) {
    auto q = gen.Query(sel, 2);
    auto expected = Oracle(q);
    AceSampler sampler(tree_.get(), q, 9);
    EXPECT_EQ(sampler.name(), "kd-ace");
    auto got = DrainRowIds(&sampler);
    EXPECT_TRUE(AllDistinct(got));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << q.ToString();
  }
}

TEST_F(AceSamplerTest, SingleLeafTree) {
  Build(200, 1, 1, /*seed=*/83);
  auto q = sampling::RangeQuery::OneDim(0, 100000);
  AceSampler sampler(tree_.get(), q, 10);
  auto got = DrainRowIds(&sampler);
  EXPECT_EQ(got.size(), 200u);
  EXPECT_EQ(sampler.leaves_read(), 1u);
}

// ---------------------------------------------------------------------------
// Statistical guarantee: every prefix of the stream is a uniform random
// sample of the match set. The tree's randomness lives in construction, so
// we rebuild with many seeds and count per-record inclusion frequencies of
// a fixed-size prefix.
// ---------------------------------------------------------------------------

TEST(AceSamplerStatTest, PrefixIsUniformSampleOverRebuilds) {
  auto env = io::NewMemEnv();
  const uint64_t kRecords = 3000;
  MakeSale(env.get(), "sale", kRecords, /*seed=*/311);
  auto layout = SaleRecord::Layout1D();
  auto sale = ValueOrDie(HeapFile::Open(env.get(), "sale"));
  auto q = sampling::RangeQuery::OneDim(35000, 65000);
  auto matching =
      ValueOrDie(relation::CollectMatchingRowIds(*sale, layout, q));
  ASSERT_GT(matching.size(), 400u);
  std::map<uint64_t, size_t> index;
  for (size_t i = 0; i < matching.size(); ++i) index[matching[i]] = i;

  const uint64_t kPrefix = 60;
  const int kTrials = 200;
  std::vector<uint64_t> counts(matching.size(), 0);
  for (int t = 0; t < kTrials; ++t) {
    AceBuildOptions options;
    options.height = 4;
    options.seed = 40000 + t;
    MSV_ASSERT_OK(BuildAceTree(env.get(), "sale", "acetrial", layout, options));
    auto tree = ValueOrDie(AceTree::Open(env.get(), "acetrial", layout));
    AceSampler sampler(tree.get(), q, /*seed=*/t);
    auto prefix = TakeRowIds(&sampler, kPrefix);
    ASSERT_GE(prefix.size(), kPrefix);
    prefix.resize(kPrefix);
    for (uint64_t id : prefix) ++counts[index.at(id)];
  }
  std::vector<double> expected(
      matching.size(),
      double(kPrefix) * kTrials / double(matching.size()));
  double stat = ChiSquareStatistic(counts, expected);
  double p = ChiSquarePValue(stat, matching.size() - 1);
  EXPECT_GT(p, 1e-5) << "stat=" << stat << " dof=" << matching.size() - 1;
}

}  // namespace
}  // namespace msv::core
