#include <algorithm>
#include <vector>

#include "extsort/external_sorter.h"
#include "extsort/loser_tree.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "storage/heap_file.h"
#include "test_util.h"
#include "util/coding.h"
#include "util/random.h"

namespace msv::extsort {
namespace {

using msv::testing::ValueOrDie;
using storage::HeapFile;
using storage::HeapFileWriter;

// ---------------------------------------------------------------------------
// LoserTree
// ---------------------------------------------------------------------------

TEST(LoserTreeTest, MergesSortedSequences) {
  std::vector<std::vector<int>> inputs = {
      {1, 4, 7, 10}, {2, 5, 8}, {3, 6, 9, 11, 12}, {}};
  std::vector<size_t> pos(inputs.size(), 0);
  LoserTree tree(
      inputs.size(),
      [&](size_t a, size_t b) {
        return inputs[a][pos[a]] < inputs[b][pos[b]];
      },
      [&](size_t i) { return pos[i] >= inputs[i].size(); });
  std::vector<int> out;
  while (tree.Top() != LoserTree::kInvalid) {
    size_t i = tree.Top();
    out.push_back(inputs[i][pos[i]]);
    ++pos[i];
    tree.Advance();
  }
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}));
}

TEST(LoserTreeTest, SingleInput) {
  std::vector<int> input = {5, 6, 7};
  size_t pos = 0;
  LoserTree tree(
      1, [&](size_t, size_t) { return false; },
      [&](size_t) { return pos >= input.size(); });
  std::vector<int> out;
  while (tree.Top() != LoserTree::kInvalid) {
    out.push_back(input[pos++]);
    tree.Advance();
  }
  EXPECT_EQ(out, input);
}

TEST(LoserTreeTest, AllInputsEmpty) {
  LoserTree tree(
      3, [](size_t, size_t) { return false; },
      [](size_t) { return true; });
  EXPECT_EQ(tree.Top(), LoserTree::kInvalid);
}

TEST(LoserTreeTest, ManyInputsWithDuplicates) {
  Pcg64 rng(4);
  const size_t k = 37;
  std::vector<std::vector<uint64_t>> inputs(k);
  std::vector<uint64_t> all;
  for (auto& input : inputs) {
    size_t n = rng.Below(50);
    for (size_t i = 0; i < n; ++i) input.push_back(rng.Below(100));
    std::sort(input.begin(), input.end());
    all.insert(all.end(), input.begin(), input.end());
  }
  std::sort(all.begin(), all.end());

  std::vector<size_t> pos(k, 0);
  LoserTree tree(
      k,
      [&](size_t a, size_t b) {
        return inputs[a][pos[a]] < inputs[b][pos[b]];
      },
      [&](size_t i) { return pos[i] >= inputs[i].size(); });
  std::vector<uint64_t> out;
  while (tree.Top() != LoserTree::kInvalid) {
    size_t i = tree.Top();
    out.push_back(inputs[i][pos[i]]);
    ++pos[i];
    tree.Advance();
  }
  EXPECT_EQ(out, all);
}

// ---------------------------------------------------------------------------
// ExternalSort — parameterized sweep over sizes, budgets and fan-in
// ---------------------------------------------------------------------------

struct SortCase {
  uint64_t records;
  size_t budget_bytes;
  size_t fanin;
};

class ExternalSortTest : public ::testing::TestWithParam<SortCase> {
 protected:
  void SetUp() override { env_ = io::NewMemEnv(); }

  // Each record: 8-byte key, 8-byte payload (original index).
  static constexpr size_t kRecordSize = 16;

  std::vector<uint64_t> WriteRandom(const std::string& name, uint64_t n,
                                    uint64_t seed) {
    auto writer =
        ValueOrDie(HeapFileWriter::Create(env_.get(), name, kRecordSize));
    Pcg64 rng(seed);
    std::vector<uint64_t> keys;
    char rec[kRecordSize];
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t key = rng.Below(1000);  // plenty of duplicates
      keys.push_back(key);
      EncodeFixed64(rec, key);
      EncodeFixed64(rec + 8, i);
      MSV_EXPECT_OK(writer->Append(rec));
    }
    MSV_EXPECT_OK(writer->Finish());
    return keys;
  }

  std::unique_ptr<io::Env> env_;
};

TEST_P(ExternalSortTest, SortsLikeStdSort) {
  const SortCase& c = GetParam();
  std::vector<uint64_t> keys = WriteRandom("in", c.records, 77);

  SortOptions options;
  options.memory_budget_bytes = c.budget_bytes;
  options.max_fanin = c.fanin;
  SortMetrics metrics;
  MSV_ASSERT_OK(ExternalSort(
      env_.get(), "in", "out",
      [](const char* a, const char* b) {
        return DecodeFixed64(a) < DecodeFixed64(b);
      },
      options, &metrics));

  auto out = ValueOrDie(HeapFile::Open(env_.get(), "out"));
  ASSERT_EQ(out->record_count(), c.records);
  EXPECT_EQ(metrics.records, c.records);

  std::sort(keys.begin(), keys.end());
  auto scanner = out->NewScanner();
  std::set<uint64_t> payloads;
  for (uint64_t i = 0; i < c.records; ++i) {
    const char* rec = ValueOrDie(scanner.Next());
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(DecodeFixed64(rec), keys[i]) << "at position " << i;
    payloads.insert(DecodeFixed64(rec + 8));
  }
  // No record lost or duplicated.
  EXPECT_EQ(payloads.size(), c.records);

  // Temp run files are cleaned up.
  for (const std::string& name : ValueOrDie(env_->ListFiles())) {
    EXPECT_EQ(name.find("extsort_run"), std::string::npos) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExternalSortTest,
    ::testing::Values(
        SortCase{0, 1 << 10, 4},         // empty input
        SortCase{1, 1 << 10, 4},         // single record
        SortCase{100, 1 << 20, 64},      // one in-memory run
        SortCase{1000, 1 << 10, 64},     // many runs, single merge pass
        SortCase{5000, 512, 4},          // budget of 32 records, fanin 4:
                                         // multiple merge passes
        SortCase{5000, 256, 2},          // binary merges, deep recursion
        SortCase{10000, 1 << 10, 8}),    // mid-size stress
    [](const ::testing::TestParamInfo<SortCase>& info) {
      return "n" + std::to_string(info.param.records) + "_b" +
             std::to_string(info.param.budget_bytes) + "_f" +
             std::to_string(info.param.fanin);
    });

TEST(ExternalSortEdgeTest, RejectsTinyBudget) {
  auto env = io::NewMemEnv();
  auto writer = ValueOrDie(HeapFileWriter::Create(env.get(), "in", 64));
  std::vector<char> rec(64, 0);
  MSV_ASSERT_OK(writer->Append(rec.data()));
  MSV_ASSERT_OK(writer->Finish());
  SortOptions options;
  options.memory_budget_bytes = 32;  // smaller than one record
  auto status = ExternalSort(
      env.get(), "in", "out",
      [](const char*, const char*) { return false; }, options);
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST(ExternalSortEdgeTest, MultiPassMetricsReported) {
  auto env = io::NewMemEnv();
  auto writer = ValueOrDie(HeapFileWriter::Create(env.get(), "in", 16));
  Pcg64 rng(5);
  char rec[16];
  for (int i = 0; i < 2000; ++i) {
    EncodeFixed64(rec, rng.Next());
    EncodeFixed64(rec + 8, i);
    MSV_ASSERT_OK(writer->Append(rec));
  }
  MSV_ASSERT_OK(writer->Finish());

  SortOptions options;
  options.memory_budget_bytes = 16 * 10;  // 10-record runs -> 200 runs
  options.max_fanin = 4;
  SortMetrics metrics;
  MSV_ASSERT_OK(ExternalSort(
      env.get(), "in", "out",
      [](const char* a, const char* b) {
        return DecodeFixed64(a) < DecodeFixed64(b);
      },
      options, &metrics));
  EXPECT_EQ(metrics.initial_runs, 200u);
  EXPECT_GE(metrics.merge_passes, 4u);  // log_4(200) rounded up, plus final
}

TEST(ExternalSortEdgeTest, AlreadySortedInput) {
  auto env = io::NewMemEnv();
  auto writer = ValueOrDie(HeapFileWriter::Create(env.get(), "in", 16));
  char rec[16];
  for (uint64_t i = 0; i < 500; ++i) {
    EncodeFixed64(rec, i);
    EncodeFixed64(rec + 8, i);
    MSV_ASSERT_OK(writer->Append(rec));
  }
  MSV_ASSERT_OK(writer->Finish());
  SortOptions options;
  options.memory_budget_bytes = 16 * 50;
  MSV_ASSERT_OK(ExternalSort(
      env.get(), "in", "out",
      [](const char* a, const char* b) {
        return DecodeFixed64(a) < DecodeFixed64(b);
      },
      options));
  auto out = ValueOrDie(HeapFile::Open(env.get(), "out"));
  auto scanner = out->NewScanner();
  for (uint64_t i = 0; i < 500; ++i) {
    const char* r = ValueOrDie(scanner.Next());
    EXPECT_EQ(DecodeFixed64(r), i);
  }
}

}  // namespace
}  // namespace msv::extsort
