#include <cstring>
#include <set>

#include "gtest/gtest.h"
#include "io/env.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "test_util.h"

namespace msv::storage {
namespace {

using msv::testing::ValueOrDie;

// ---------------------------------------------------------------------------
// RecordLayout / SaleRecord
// ---------------------------------------------------------------------------

TEST(RecordLayoutTest, Validation) {
  EXPECT_TRUE((RecordLayout{0, {0}}.Validate().IsInvalidArgument()));
  EXPECT_TRUE((RecordLayout{100, {}}.Validate().IsInvalidArgument()));
  EXPECT_TRUE((RecordLayout{100, {96}}.Validate().IsInvalidArgument()));
  EXPECT_TRUE(
      (RecordLayout{100, {0, 8, 16, 24, 32}}.Validate().IsInvalidArgument()));
  MSV_EXPECT_OK((RecordLayout{100, {0, 8}}.Validate()));
}

TEST(SaleRecordTest, EncodeDecodeRoundTrip) {
  SaleRecord rec;
  rec.day = 1234.5;
  rec.amount = 99.25;
  rec.cust = 17;
  rec.part = 23;
  rec.supp = 5;
  rec.row_id = 987654321;
  char buf[SaleRecord::kSize];
  rec.EncodeTo(buf);
  SaleRecord back = SaleRecord::DecodeFrom(buf);
  EXPECT_EQ(back.day, rec.day);
  EXPECT_EQ(back.amount, rec.amount);
  EXPECT_EQ(back.cust, rec.cust);
  EXPECT_EQ(back.part, rec.part);
  EXPECT_EQ(back.supp, rec.supp);
  EXPECT_EQ(back.row_id, rec.row_id);
}

TEST(SaleRecordTest, LayoutKeysMatchFields) {
  SaleRecord rec;
  rec.day = 42.0;
  rec.amount = 7.5;
  char buf[SaleRecord::kSize];
  rec.EncodeTo(buf);
  RecordLayout l1 = SaleRecord::Layout1D();
  RecordLayout l2 = SaleRecord::Layout2D();
  EXPECT_EQ(l1.Key(buf, 0), 42.0);
  EXPECT_EQ(l2.Key(buf, 0), 42.0);
  EXPECT_EQ(l2.Key(buf, 1), 7.5);
  l2.SetKey(buf, 1, 9.0);
  EXPECT_EQ(l2.Key(buf, 1), 9.0);
}

// ---------------------------------------------------------------------------
// HeapFile
// ---------------------------------------------------------------------------

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override { env_ = io::NewMemEnv(); }

  // Writes n records whose first 8 bytes are the index.
  void WriteFile(const std::string& name, uint64_t n, size_t record_size) {
    auto writer =
        ValueOrDie(HeapFileWriter::Create(env_.get(), name, record_size));
    std::vector<char> rec(record_size, 0);
    for (uint64_t i = 0; i < n; ++i) {
      EncodeFixed64(rec.data(), i);
      MSV_ASSERT_OK(writer->Append(rec.data()));
    }
    EXPECT_EQ(writer->records_written(), n);
    MSV_ASSERT_OK(writer->Finish());
  }

  std::unique_ptr<io::Env> env_;
};

TEST_F(HeapFileTest, WriteAndRandomRead) {
  WriteFile("f", 100, 24);
  auto file = ValueOrDie(HeapFile::Open(env_.get(), "f"));
  EXPECT_EQ(file->record_count(), 100u);
  EXPECT_EQ(file->record_size(), 24u);
  char rec[24];
  MSV_ASSERT_OK(file->ReadRecord(57, rec));
  EXPECT_EQ(DecodeFixed64(rec), 57u);
  EXPECT_TRUE(file->ReadRecord(100, rec).IsOutOfRange());
}

TEST_F(HeapFileTest, ScannerSeesAllInOrder) {
  WriteFile("f", 1000, 16);
  auto file = ValueOrDie(HeapFile::Open(env_.get(), "f"));
  auto scanner = file->NewScanner(64);  // tiny chunks to exercise refill
  for (uint64_t i = 0; i < 1000; ++i) {
    const char* rec = ValueOrDie(scanner.Next());
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(DecodeFixed64(rec), i);
  }
  EXPECT_EQ(ValueOrDie(scanner.Next()), nullptr);
  EXPECT_EQ(ValueOrDie(scanner.Next()), nullptr);  // idempotent at end
}

TEST_F(HeapFileTest, EmptyFile) {
  WriteFile("f", 0, 8);
  auto file = ValueOrDie(HeapFile::Open(env_.get(), "f"));
  EXPECT_EQ(file->record_count(), 0u);
  auto scanner = file->NewScanner();
  EXPECT_EQ(ValueOrDie(scanner.Next()), nullptr);
}

TEST_F(HeapFileTest, CorruptMagicRejected) {
  WriteFile("f", 10, 8);
  auto raw = ValueOrDie(env_->OpenFile("f", false));
  MSV_ASSERT_OK(raw->Write(0, "XXXXXXXX", 8));
  auto r = HeapFile::Open(env_.get(), "f");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(HeapFileTest, TruncatedFileRejected) {
  WriteFile("f", 10, 8);
  auto raw = ValueOrDie(env_->OpenFile("f", false));
  MSV_ASSERT_OK(raw->Truncate(kHeapFileHeaderSize + 5 * 8));
  auto r = HeapFile::Open(env_.get(), "f");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST_F(HeapFileTest, FileBytesAccountsHeaderAndRecords) {
  WriteFile("f", 10, 32);
  auto file = ValueOrDie(HeapFile::Open(env_.get(), "f"));
  EXPECT_EQ(file->file_bytes(), kHeapFileHeaderSize + 10 * 32);
}

TEST_F(HeapFileTest, WriterBufferSmallerThanRecordStillWorks) {
  auto writer = ValueOrDie(
      HeapFileWriter::Create(env_.get(), "f", 64, /*buffer_bytes=*/16));
  std::vector<char> rec(64, 'a');
  for (int i = 0; i < 10; ++i) MSV_ASSERT_OK(writer->Append(rec.data()));
  MSV_ASSERT_OK(writer->Finish());
  auto file = ValueOrDie(HeapFile::Open(env_.get(), "f"));
  EXPECT_EQ(file->record_count(), 10u);
}

TEST_F(HeapFileTest, AppendToHeapFileExtends) {
  WriteFile("f", 5, 16);
  std::string extra(3 * 16, '\0');
  for (int i = 0; i < 3; ++i) {
    EncodeFixed64(extra.data() + i * 16, 100 + i);
  }
  MSV_ASSERT_OK(AppendToHeapFile(env_.get(), "f", extra.data(), 3));
  auto file = ValueOrDie(HeapFile::Open(env_.get(), "f"));
  EXPECT_EQ(file->record_count(), 8u);
  char rec[16];
  MSV_ASSERT_OK(file->ReadRecord(6, rec));
  EXPECT_EQ(DecodeFixed64(rec), 101u);
  // Original records untouched.
  MSV_ASSERT_OK(file->ReadRecord(4, rec));
  EXPECT_EQ(DecodeFixed64(rec), 4u);
}

TEST_F(HeapFileTest, AppendToMissingOrCorruptFileFails) {
  char rec[16] = {0};
  EXPECT_FALSE(AppendToHeapFile(env_.get(), "ghost", rec, 1).ok());
  WriteFile("bad", 1, 16);
  auto raw = ValueOrDie(env_->OpenFile("bad", false));
  MSV_ASSERT_OK(raw->Write(0, "XXXXXXXX", 8));
  EXPECT_TRUE(AppendToHeapFile(env_.get(), "bad", rec, 1).IsCorruption());
}

// ---------------------------------------------------------------------------
// Generator + workload
// ---------------------------------------------------------------------------

TEST(SaleGeneratorTest, GeneratesRequestedCount) {
  auto env = io::NewMemEnv();
  auto sale = msv::testing::MakeSale(env.get(), "sale", 5000, 1);
  EXPECT_EQ(sale->record_count(), 5000u);
  EXPECT_EQ(sale->record_size(), SaleRecord::kSize);

  // Row ids are 0..n-1, keys inside the domain.
  auto scanner = sale->NewScanner();
  std::set<uint64_t> ids;
  for (;;) {
    const char* rec = ValueOrDie(scanner.Next());
    if (rec == nullptr) break;
    SaleRecord r = SaleRecord::DecodeFrom(rec);
    ids.insert(r.row_id);
    EXPECT_GE(r.day, 0.0);
    EXPECT_LT(r.day, 100000.0);
    EXPECT_GE(r.amount, 0.0);
    EXPECT_LT(r.amount, 10000.0);
  }
  EXPECT_EQ(ids.size(), 5000u);
  EXPECT_EQ(*ids.rbegin(), 4999u);
}

TEST(SaleGeneratorTest, DeterministicForSeed) {
  auto env = io::NewMemEnv();
  msv::testing::MakeSale(env.get(), "a", 100, 7);
  msv::testing::MakeSale(env.get(), "b", 100, 7);
  msv::testing::MakeSale(env.get(), "c", 100, 8);
  auto fa = ValueOrDie(HeapFile::Open(env.get(), "a"));
  auto fb = ValueOrDie(HeapFile::Open(env.get(), "b"));
  auto fc = ValueOrDie(HeapFile::Open(env.get(), "c"));
  char ra[SaleRecord::kSize], rb[SaleRecord::kSize], rc[SaleRecord::kSize];
  bool any_diff_c = false;
  for (uint64_t i = 0; i < 100; ++i) {
    MSV_ASSERT_OK(fa->ReadRecord(i, ra));
    MSV_ASSERT_OK(fb->ReadRecord(i, rb));
    MSV_ASSERT_OK(fc->ReadRecord(i, rc));
    EXPECT_EQ(std::memcmp(ra, rb, SaleRecord::kSize), 0);
    if (std::memcmp(ra, rc, SaleRecord::kSize) != 0) any_diff_c = true;
  }
  EXPECT_TRUE(any_diff_c);
}

TEST(SaleGeneratorTest, RejectsBadOptions) {
  auto env = io::NewMemEnv();
  relation::SaleGenOptions options;
  options.num_records = 0;
  EXPECT_TRUE(relation::GenerateSaleRelation(env.get(), "x", options)
                  .IsInvalidArgument());
  options.num_records = 10;
  options.day_max = options.day_min;
  EXPECT_TRUE(relation::GenerateSaleRelation(env.get(), "x", options)
                  .IsInvalidArgument());
}

class WorkloadSelectivityTest
    : public ::testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(WorkloadSelectivityTest, EmpiricalSelectivityNearTarget) {
  auto [selectivity, dims] = GetParam();
  auto env = io::NewMemEnv();
  auto sale = msv::testing::MakeSale(env.get(), "sale", 40000, 3);
  relation::WorkloadGenerator gen(
      {{0.0, 100000.0}, {0.0, 10000.0}}, /*seed=*/5);
  RecordLayout layout =
      dims == 1 ? SaleRecord::Layout1D() : SaleRecord::Layout2D();
  double total = 0;
  const int kQueries = 10;
  for (int i = 0; i < kQueries; ++i) {
    auto q = gen.Query(selectivity, dims);
    uint64_t matches =
        ValueOrDie(relation::CountMatches(*sale, layout, q));
    total += static_cast<double>(matches) / 40000.0;
  }
  double avg = total / kQueries;
  EXPECT_NEAR(avg, selectivity, selectivity * 0.35 + 0.001)
      << "dims=" << dims;
}

INSTANTIATE_TEST_SUITE_P(
    Selectivities, WorkloadSelectivityTest,
    ::testing::Combine(::testing::Values(0.0025, 0.025, 0.25),
                       ::testing::Values(size_t{1}, size_t{2})));

TEST(WorkloadTest, QueriesStayInsideDomain) {
  relation::WorkloadGenerator gen({{10.0, 20.0}, {-5.0, 5.0}}, 9);
  for (int i = 0; i < 100; ++i) {
    auto q = gen.Query(0.1, 2);
    EXPECT_GE(q.bounds[0].lo, 10.0);
    EXPECT_LE(q.bounds[0].hi, 20.0);
    EXPECT_GE(q.bounds[1].lo, -5.0);
    EXPECT_LE(q.bounds[1].hi, 5.0);
  }
}

TEST(RangeQueryTest, MatchesAndValidate) {
  RecordLayout layout = SaleRecord::Layout2D();
  SaleRecord rec;
  rec.day = 50;
  rec.amount = 5;
  char buf[SaleRecord::kSize];
  rec.EncodeTo(buf);

  auto q1 = sampling::RangeQuery::OneDim(40, 60);
  EXPECT_TRUE(q1.Matches(layout, buf));
  auto q2 = sampling::RangeQuery::OneDim(51, 60);
  EXPECT_FALSE(q2.Matches(layout, buf));
  auto q3 = sampling::RangeQuery::TwoDim(40, 60, 6, 10);
  EXPECT_FALSE(q3.Matches(layout, buf));
  auto q4 = sampling::RangeQuery::TwoDim(50, 50, 5, 5);  // closed bounds
  EXPECT_TRUE(q4.Matches(layout, buf));

  MSV_EXPECT_OK(q1.Validate(layout));
  auto bad = sampling::RangeQuery::OneDim(10, 5);
  EXPECT_TRUE(bad.Validate(layout).IsInvalidArgument());
  sampling::RangeQuery too_many;
  too_many.dims = 3;
  EXPECT_TRUE(too_many.Validate(layout).IsInvalidArgument());
}

}  // namespace
}  // namespace msv::storage
