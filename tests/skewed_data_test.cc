// The ACE tree's split points are data medians, not domain midpoints, so
// every guarantee must survive heavily skewed key distributions. These
// tests rebuild the core invariants over Zipfian and clustered data.

#include <algorithm>
#include <map>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "gtest/gtest.h"
#include "io/env.h"
#include "relation/sale_generator.h"
#include "relation/workload.h"
#include "test_util.h"
#include "util/stats.h"

namespace msv::core {
namespace {

using msv::testing::AllDistinct;
using msv::testing::DrainRowIds;
using msv::testing::TakeRowIds;
using msv::testing::ValueOrDie;
using relation::DayDistribution;
using storage::HeapFile;
using storage::SaleRecord;

class SkewedDataTest
    : public ::testing::TestWithParam<DayDistribution> {
 protected:
  void SetUp() override {
    env_ = io::NewMemEnv();
    relation::SaleGenOptions gen;
    gen.num_records = kRecords;
    gen.seed = 97;
    gen.day_distribution = GetParam();
    MSV_ASSERT_OK(relation::GenerateSaleRelation(env_.get(), "sale", gen));
    layout_ = SaleRecord::Layout1D();
    AceBuildOptions build;
    build.height = 6;
    MSV_ASSERT_OK(
        BuildAceTree(env_.get(), "sale", "ace", layout_, build));
    tree_ = ValueOrDie(AceTree::Open(env_.get(), "ace", layout_));
    sale_ = ValueOrDie(HeapFile::Open(env_.get(), "sale"));
  }

  static constexpr uint64_t kRecords = 20000;
  std::unique_ptr<io::Env> env_;
  storage::RecordLayout layout_;
  std::unique_ptr<AceTree> tree_;
  std::unique_ptr<HeapFile> sale_;
};

TEST_P(SkewedDataTest, MedianSplitsKeepCountsBalanced) {
  // Exponentiality is about record counts, not key-space widths: under
  // skew the boxes are lopsided in key space but still halve the records.
  for (uint64_t id = 1; id < tree_->meta().num_leaves; ++id) {
    uint64_t total = tree_->NodeCount(id);
    if (total < 64) continue;
    double balance =
        static_cast<double>(std::max(tree_->NodeCount(2 * id),
                                     tree_->NodeCount(2 * id + 1))) /
        static_cast<double>(total);
    EXPECT_LE(balance, 0.55) << "node " << id;
  }
}

TEST_P(SkewedDataTest, SamplerStillReturnsExactMatchSet) {
  // Queries positioned in both the dense head and the sparse tail.
  for (auto [lo, hi] : std::vector<std::pair<double, double>>{
           {0.0, 500.0}, {100.0, 2000.0}, {50000.0, 90000.0}}) {
    auto q = sampling::RangeQuery::OneDim(lo, hi);
    auto expected =
        ValueOrDie(relation::CollectMatchingRowIds(*sale_, layout_, q));
    AceSampler sampler(tree_.get(), q, 1);
    auto got = DrainRowIds(&sampler);
    EXPECT_TRUE(AllDistinct(got));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << q.ToString();
  }
}

TEST_P(SkewedDataTest, EstimateMatchCountStaysUseful) {
  // Dense-region estimates rely on fine cells where the data is; error
  // should stay within a boundary cell or so.
  auto q = sampling::RangeQuery::OneDim(0.0, 1000.0);
  uint64_t truth = ValueOrDie(relation::CountMatches(*sale_, layout_, q));
  uint64_t est = ValueOrDie(tree_->EstimateMatchCount(q));
  double cell = static_cast<double>(kRecords) /
                static_cast<double>(tree_->meta().num_leaves);
  EXPECT_NEAR(static_cast<double>(est), static_cast<double>(truth),
              2.5 * cell + 0.1 * static_cast<double>(truth));
}

TEST_P(SkewedDataTest, PrefixUniformityUnderSkew) {
  // The statistical guarantee must hold regardless of key distribution.
  auto q = sampling::RangeQuery::OneDim(0.0, 5000.0);
  auto matching =
      ValueOrDie(relation::CollectMatchingRowIds(*sale_, layout_, q));
  if (matching.size() < 200) GTEST_SKIP() << "not enough matches";
  std::map<uint64_t, size_t> index;
  for (size_t i = 0; i < matching.size(); ++i) index[matching[i]] = i;

  const uint64_t kPrefix = 50;
  const int kTrials = 120;
  std::vector<uint64_t> counts(matching.size(), 0);
  for (int t = 0; t < kTrials; ++t) {
    AceBuildOptions build;
    build.height = 6;
    build.seed = 7000 + t;
    MSV_ASSERT_OK(
        BuildAceTree(env_.get(), "sale", "acetrial", layout_, build));
    auto tree = ValueOrDie(AceTree::Open(env_.get(), "acetrial", layout_));
    AceSampler sampler(tree.get(), q, t);
    auto prefix = TakeRowIds(&sampler, kPrefix);
    ASSERT_GE(prefix.size(), kPrefix);
    prefix.resize(kPrefix);
    for (uint64_t id : prefix) ++counts[index.at(id)];
  }
  std::vector<double> expected(
      matching.size(),
      double(kPrefix) * kTrials / double(matching.size()));
  double stat = ChiSquareStatistic(counts, expected);
  EXPECT_GT(ChiSquarePValue(stat, matching.size() - 1), 1e-5)
      << "stat=" << stat;
}

INSTANTIATE_TEST_SUITE_P(Distributions, SkewedDataTest,
                         ::testing::Values(DayDistribution::kUniform,
                                           DayDistribution::kZipfian,
                                           DayDistribution::kClustered),
                         [](const auto& info) {
                           switch (info.param) {
                             case DayDistribution::kUniform:
                               return "Uniform";
                             case DayDistribution::kZipfian:
                               return "Zipfian";
                             case DayDistribution::kClustered:
                               return "Clustered";
                           }
                           return "Unknown";
                         });

TEST(SkewedGeneratorTest, ZipfConcentratesMassAtTheHead) {
  auto env = io::NewMemEnv();
  relation::SaleGenOptions gen;
  gen.num_records = 20000;
  gen.day_distribution = DayDistribution::kZipfian;
  MSV_ASSERT_OK(relation::GenerateSaleRelation(env.get(), "z", gen));
  auto file = ValueOrDie(HeapFile::Open(env.get(), "z"));
  auto layout = SaleRecord::Layout1D();
  // With theta = 0.8 the analytic head mass is 0.02^(1-0.8) ~ 45.7% in
  // the first 2% of the domain (vs 2% for uniform data).
  auto head = sampling::RangeQuery::OneDim(0, 2000);
  uint64_t in_head = ValueOrDie(relation::CountMatches(*file, layout, head));
  EXPECT_NEAR(static_cast<double>(in_head), 0.457 * 20000, 600);
}

TEST(SkewedGeneratorTest, ClusteredLeavesGapsEmpty) {
  auto env = io::NewMemEnv();
  relation::SaleGenOptions gen;
  gen.num_records = 20000;
  gen.day_distribution = DayDistribution::kClustered;
  gen.clusters = 4;
  MSV_ASSERT_OK(relation::GenerateSaleRelation(env.get(), "c", gen));
  auto file = ValueOrDie(HeapFile::Open(env.get(), "c"));
  auto layout = SaleRecord::Layout1D();
  // With 4 narrow clusters most 1%-wide windows are empty.
  relation::WorkloadGenerator wg({{0.0, 100000.0}}, 5);
  int empty = 0;
  for (int i = 0; i < 30; ++i) {
    auto q = wg.Query(0.01, 1);
    if (ValueOrDie(relation::CountMatches(*file, layout, q)) == 0) ++empty;
  }
  EXPECT_GT(empty, 15);
}

}  // namespace
}  // namespace msv::core
