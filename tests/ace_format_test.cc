#include <cmath>
#include <vector>

#include "core/ace_format.h"
#include "core/split_tree.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace msv::core {
namespace {

// ---------------------------------------------------------------------------
// Superblock / internal node serialization
// ---------------------------------------------------------------------------

TEST(AceFormatTest, SuperblockRoundTrip) {
  AceMeta meta;
  meta.page_size = 64 << 10;
  meta.record_size = 100;
  meta.key_dims = 2;
  meta.height = 5;
  meta.num_leaves = 16;
  meta.num_records = 123456;
  meta.internal_offset = 512;
  meta.directory_offset = 2048;
  meta.data_offset = 65536;
  meta.domain_min[0] = -3.5;
  meta.domain_max[0] = 99.5;
  meta.domain_min[1] = 0.25;
  meta.domain_max[1] = 7.75;

  char buf[kSuperblockSize];
  EncodeSuperblock(buf, meta);
  AceMeta back = msv::testing::ValueOrDie(DecodeSuperblock(buf));
  EXPECT_EQ(back.page_size, meta.page_size);
  EXPECT_EQ(back.record_size, meta.record_size);
  EXPECT_EQ(back.key_dims, meta.key_dims);
  EXPECT_EQ(back.height, meta.height);
  EXPECT_EQ(back.num_leaves, meta.num_leaves);
  EXPECT_EQ(back.num_records, meta.num_records);
  EXPECT_EQ(back.internal_offset, meta.internal_offset);
  EXPECT_EQ(back.directory_offset, meta.directory_offset);
  EXPECT_EQ(back.data_offset, meta.data_offset);
  EXPECT_EQ(back.domain_min[0], meta.domain_min[0]);
  EXPECT_EQ(back.domain_max[1], meta.domain_max[1]);
}

TEST(AceFormatTest, BadMagicRejected) {
  char buf[kSuperblockSize] = {0};
  EXPECT_TRUE(DecodeSuperblock(buf).status().IsCorruption());
}

TEST(AceFormatTest, InconsistentGeometryRejected) {
  AceMeta meta;
  meta.record_size = 100;
  meta.height = 4;
  meta.num_leaves = 7;  // must be 2^(h-1) = 8
  char buf[kSuperblockSize];
  EncodeSuperblock(buf, meta);
  EXPECT_TRUE(DecodeSuperblock(buf).status().IsCorruption());
}

TEST(AceFormatTest, InternalNodeRoundTrip) {
  InternalNode n;
  n.split_key = 42.5;
  n.split_dim = 1;
  n.cnt_left = 1000;
  n.cnt_right = 2000;
  char buf[kInternalNodeSize];
  EncodeInternalNode(buf, n);
  InternalNode back = DecodeInternalNode(buf);
  EXPECT_EQ(back.split_key, n.split_key);
  EXPECT_EQ(back.split_dim, n.split_dim);
  EXPECT_EQ(back.cnt_left, n.cnt_left);
  EXPECT_EQ(back.cnt_right, n.cnt_right);
}

// ---------------------------------------------------------------------------
// SplitTree navigation
// ---------------------------------------------------------------------------

// The paper's running example (Fig. 2): height 4, domain [0, 100],
// splits 50 / 25, 75 / 12, 37, 62, 88.
SplitTree PaperTree() {
  std::vector<InternalNode> nodes(7);
  double keys[] = {50, 25, 75, 12.5, 37.5, 62.5, 88};
  for (int i = 0; i < 7; ++i) {
    nodes[i].split_key = keys[i];
    nodes[i].split_dim = 0;
  }
  Box root;
  root.dims = 1;
  root.lo[0] = 0;
  root.hi[0] = 100;
  return SplitTree(4, 1, std::move(nodes), root);
}

TEST(SplitTreeTest, LevelsAndAncestors) {
  EXPECT_EQ(SplitTree::LevelOf(1), 1u);
  EXPECT_EQ(SplitTree::LevelOf(2), 2u);
  EXPECT_EQ(SplitTree::LevelOf(3), 2u);
  EXPECT_EQ(SplitTree::LevelOf(7), 3u);
  EXPECT_EQ(SplitTree::LevelOf(8), 4u);
  EXPECT_EQ(SplitTree::LevelOf(15), 4u);
  EXPECT_EQ(SplitTree::AncestorAtLevel(13, 1), 1u);
  EXPECT_EQ(SplitTree::AncestorAtLevel(13, 2), 3u);
  EXPECT_EQ(SplitTree::AncestorAtLevel(13, 3), 6u);
  EXPECT_EQ(SplitTree::AncestorAtLevel(13, 4), 13u);
}

TEST(SplitTreeTest, LeafNumbering) {
  SplitTree tree = PaperTree();
  EXPECT_EQ(tree.num_leaves(), 8u);
  EXPECT_EQ(tree.LeafHeapId(0), 8u);
  EXPECT_EQ(tree.LeafHeapId(7), 15u);
  EXPECT_EQ(tree.LeafIndexOf(8), 0u);
  EXPECT_EQ(tree.LeafIndexOf(15), 7u);
}

TEST(SplitTreeTest, LeavesUnder) {
  SplitTree tree = PaperTree();
  auto [lo1, hi1] = tree.LeavesUnder(1);
  EXPECT_EQ(lo1, 0u);
  EXPECT_EQ(hi1, 8u);
  auto [lo2, hi2] = tree.LeavesUnder(3);  // right child of root
  EXPECT_EQ(lo2, 4u);
  EXPECT_EQ(hi2, 8u);
  auto [lo3, hi3] = tree.LeavesUnder(6);
  EXPECT_EQ(lo3, 4u);
  EXPECT_EQ(hi3, 6u);
  auto [lo4, hi4] = tree.LeavesUnder(13);  // a leaf itself
  EXPECT_EQ(lo4, 5u);
  EXPECT_EQ(hi4, 6u);
}

TEST(SplitTreeTest, BoxOfMatchesPaperRanges) {
  SplitTree tree = PaperTree();
  Box root = tree.BoxOf(1);
  EXPECT_EQ(root.lo[0], 0);
  EXPECT_EQ(root.hi[0], 100);
  Box left = tree.BoxOf(2);
  EXPECT_EQ(left.lo[0], 0);
  EXPECT_EQ(left.hi[0], 50);
  Box l4_parent = tree.BoxOf(5);  // I3,2 of the paper: [25, 50)
  EXPECT_EQ(l4_parent.lo[0], 25);
  EXPECT_EQ(l4_parent.hi[0], 50);
  Box leaf_l4 = tree.BoxOf(11);  // paper's L4: [37.5, 50)
  EXPECT_EQ(leaf_l4.lo[0], 37.5);
  EXPECT_EQ(leaf_l4.hi[0], 50);
}

TEST(SplitTreeTest, DescendFollowsSplits) {
  SplitTree tree = PaperTree();
  double key30 = 30;
  // 30 < 50 -> left (2); 30 >= 25 -> right (5); 30 < 37.5 -> left (10).
  EXPECT_EQ(tree.DescendToLevel(&key30, 1), 1u);
  EXPECT_EQ(tree.DescendToLevel(&key30, 2), 2u);
  EXPECT_EQ(tree.DescendToLevel(&key30, 3), 5u);
  EXPECT_EQ(tree.DescendToLevel(&key30, 4), 10u);
  EXPECT_EQ(tree.CellOf(&key30), 2u);
  double key99 = 99;
  EXPECT_EQ(tree.CellOf(&key99), 7u);
  double key0 = 0;
  EXPECT_EQ(tree.CellOf(&key0), 0u);
}

TEST(SplitTreeTest, DescentAgreesWithBoxes) {
  SplitTree tree = PaperTree();
  for (double key = 0.5; key < 100; key += 1.0) {
    uint64_t cell = tree.CellOf(&key);
    Box box = tree.BoxOf(tree.LeafHeapId(cell));
    EXPECT_GE(key, box.lo[0]) << key;
    EXPECT_LT(key, box.hi[0]) << key;
  }
}

TEST(SplitTreeTest, CoveringSetsForPaperQuery) {
  SplitTree tree = PaperTree();
  // The paper's example query Q = [30, 65].
  auto q = sampling::RangeQuery::OneDim(30, 65);
  auto covering = tree.CoveringSets(q);
  ASSERT_EQ(covering.size(), 4u);
  EXPECT_EQ(covering[0], (std::vector<uint64_t>{1}));
  EXPECT_EQ(covering[1], (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(covering[2], (std::vector<uint64_t>{5, 6}));
  // Leaf boxes: [25,37.5) [37.5,50) [50,62.5) [62.5,75) overlap [30,65].
  EXPECT_EQ(covering[3], (std::vector<uint64_t>{10, 11, 12, 13}));
}

TEST(SplitTreeTest, CoveringSetsDisjointQueries) {
  SplitTree tree = PaperTree();
  auto q = sampling::RangeQuery::OneDim(200, 300);  // outside the domain
  auto covering = tree.CoveringSets(q);
  for (const auto& level : covering) EXPECT_TRUE(level.empty());
}

TEST(SplitTreeTest, PointQueryCoversOnePathPlusRoot) {
  SplitTree tree = PaperTree();
  auto q = sampling::RangeQuery::OneDim(40, 40);
  auto covering = tree.CoveringSets(q);
  for (const auto& level : covering) EXPECT_EQ(level.size(), 1u);
  EXPECT_EQ(covering[3][0], 11u);  // leaf [37.5, 50)
}

TEST(SplitTreeTest, BoxQueryOverlapSemantics) {
  Box b;
  b.dims = 1;
  b.lo[0] = 10;
  b.hi[0] = 20;  // [10, 20)
  EXPECT_TRUE(BoxOverlapsQuery(b, sampling::RangeQuery::OneDim(19.9, 30)));
  EXPECT_FALSE(BoxOverlapsQuery(b, sampling::RangeQuery::OneDim(20, 30)));
  EXPECT_TRUE(BoxOverlapsQuery(b, sampling::RangeQuery::OneDim(0, 10)));
  EXPECT_TRUE(BoxCoversQuery(b, sampling::RangeQuery::OneDim(10, 19.9)));
  EXPECT_FALSE(BoxCoversQuery(b, sampling::RangeQuery::OneDim(10, 20)));
}

TEST(SplitTreeTest, SingleLeafTree) {
  Box root;
  root.dims = 1;
  root.lo[0] = 0;
  root.hi[0] = 1;
  SplitTree tree(1, 1, {}, root);
  EXPECT_EQ(tree.num_leaves(), 1u);
  double k = 0.5;
  EXPECT_EQ(tree.CellOf(&k), 0u);
  auto covering = tree.CoveringSets(sampling::RangeQuery::OneDim(0.2, 0.8));
  ASSERT_EQ(covering.size(), 1u);
  EXPECT_EQ(covering[0], (std::vector<uint64_t>{1}));
}

TEST(SplitTreeTest, TwoDimCoveringRespectsBothDims) {
  // Height 3, 2-d: root splits dim0 at 50; level-2 nodes split dim1 at 50.
  std::vector<InternalNode> nodes(3);
  nodes[0] = {50.0, 0, 0, 0};
  nodes[1] = {50.0, 1, 0, 0};
  nodes[2] = {50.0, 1, 0, 0};
  Box root;
  root.dims = 2;
  root.lo[0] = root.lo[1] = 0;
  root.hi[0] = root.hi[1] = 100;
  SplitTree tree(3, 2, std::move(nodes), root);

  // A query confined to dim0 < 50 and dim1 < 50 covers only leaf 0.
  auto q = sampling::RangeQuery::TwoDim(10, 20, 10, 20);
  auto covering = tree.CoveringSets(q);
  EXPECT_EQ(covering[0], (std::vector<uint64_t>{1}));
  EXPECT_EQ(covering[1], (std::vector<uint64_t>{2}));
  EXPECT_EQ(covering[2], (std::vector<uint64_t>{4}));

  // A query crossing the dim1 split covers two leaves under node 2.
  auto q2 = sampling::RangeQuery::TwoDim(10, 20, 40, 60);
  auto covering2 = tree.CoveringSets(q2);
  EXPECT_EQ(covering2[2], (std::vector<uint64_t>{4, 5}));
}

}  // namespace
}  // namespace msv::core
