#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace msv::serve {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port,
                                                uint64_t timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status Client::SendBytes(const void* data, size_t n) {
  if (fd_ < 0) return Status::InvalidArgument("client closed");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status Client::Send(uint64_t id, const std::string& statement) {
  obs::Json doc = obs::Json::Object();
  doc["id"] = id;
  doc["statement"] = statement;
  const std::string frame = EncodeFrame(doc.Dump());
  return SendBytes(frame.data(), frame.size());
}

Result<obs::Json> Client::Read(uint64_t timeout_ms) {
  if (fd_ < 0) return Status::InvalidArgument("client closed");
  std::string payload;
  for (;;) {
    const auto outcome = decoder_.Next(&payload);
    if (outcome == FrameDecoder::Outcome::kFrame) {
      auto doc = obs::Json::Parse(payload);
      if (!doc.ok()) {
        return Status::Corruption("bad response JSON: " +
                                  std::string(doc.status().message()));
      }
      return *doc;
    }
    if (outcome == FrameDecoder::Outcome::kTooLarge) {
      return Status::Corruption("oversized response frame");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    if (rc == 0) return Status::IOError("response timeout");
    char buf[64 << 10];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) return Status::IOError("server closed connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Errno("read");
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

Result<obs::Json> Client::Call(const std::string& statement,
                               uint64_t timeout_ms) {
  MSV_RETURN_IF_ERROR(Send(next_id_++, statement));
  MSV_ASSIGN_OR_RETURN(obs::Json doc, Read(timeout_ms));
  const obs::Json* ok = doc.Find("ok");
  if (ok != nullptr && ok->type() == obs::Json::Type::kBool && !ok->AsBool()) {
    std::string kind = "unknown";
    std::string message;
    if (const obs::Json* error = doc.Find("error")) {
      if (const obs::Json* k = error->Find("kind")) kind = k->AsString();
      if (const obs::Json* m = error->Find("message")) message = m->AsString();
    }
    return Status::InvalidArgument(kind + ": " + message);
  }
  return doc;
}

}  // namespace msv::serve
