// Wire protocol for the MSVQL server: length-prefixed JSON frames.
//
// Each frame is a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON. Requests carry one MSVQL script:
//
//   {"id": 17, "statement": "ESTIMATE AVG(amount) FROM sv ... WITHIN 2%;"}
//
// Responses echo the id and either succeed:
//
//   {"id": 17, "ok": true, "output": "...", "elapsed_us": 1234,
//    "estimate": {"value": ..., "half_width": ..., "samples": ...,
//                 "confidence": ..., "is_partial": false,
//                 "deadline_us": 0, "elapsed_us": ...}}
//
// (the "estimate" member appears only when the script's last statement
// produced a point estimate) or fail with a typed error so clients can
// distinguish backpressure from their own bugs:
//
//   {"id": 17, "ok": false,
//    "error": {"kind": "overload" | "parse" | "exec" | "protocol",
//              "message": "..."}}
//
// The decoder is incremental (feed bytes as they arrive, frames come out
// as they complete) and enforces a maximum frame size so one client
// cannot balloon server memory.

#ifndef MSV_SERVE_PROTOCOL_H_
#define MSV_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "obs/log.h"
#include "util/result.h"

namespace msv::serve {

/// Frame length prefix: 4 bytes, big endian.
inline constexpr size_t kFrameHeaderBytes = 4;
/// Default ceiling on a single frame's payload.
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/// Prepends the length header to `payload`.
std::string EncodeFrame(const std::string& payload);

/// Incremental frame reassembly over a byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  enum class Outcome {
    kFrame,     ///< *payload holds one complete frame's payload
    kNeedMore,  ///< header or body incomplete; feed more bytes
    kTooLarge,  ///< declared length exceeds the ceiling; drop the client
  };
  Outcome Next(std::string* payload);

  /// True when a frame header has arrived but its body has not — the
  /// state a slow-loris client parks a connection in.
  bool mid_frame() const { return !buf_.empty(); }
  size_t buffered() const { return buf_.size(); }

 private:
  size_t max_frame_bytes_;
  std::string buf_;
};

/// One parsed request.
struct Request {
  uint64_t id = 0;        ///< echoed verbatim in the response
  bool has_id = false;    ///< "id" member present
  std::string statement;  ///< MSVQL script text
};

/// Typed failure classes (stable wire strings via ErrorKindName).
enum class ErrorKind {
  kOverload,  ///< admission queue full; retry later
  kParse,     ///< MSVQL did not parse
  kExec,      ///< statement failed during execution
  kProtocol,  ///< request frame was not valid protocol JSON
};
const char* ErrorKindName(ErrorKind kind);

/// Parses a request payload. Protocol errors (bad JSON, missing or
/// non-string "statement") come back as InvalidArgument.
Result<Request> ParseRequest(const std::string& payload);

/// Builds the success response payload. `ledger` contributes the
/// structured "estimate" member when the executed script left one.
std::string EncodeResultResponse(const Request& request,
                                 const std::string& output,
                                 const obs::StatementLedger& ledger,
                                 uint64_t elapsed_us);

/// Builds the typed-error response payload.
std::string EncodeErrorResponse(const Request& request, ErrorKind kind,
                                const std::string& message);

}  // namespace msv::serve

#endif  // MSV_SERVE_PROTOCOL_H_
