#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/log.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "util/logging.h"

namespace msv::serve {

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t NowMs() { return NowUs() / 1000; }

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

/// Per-connection state. The I/O thread owns fd readiness and the
/// decoder; workers only touch the staged-output buffer (under out_mu)
/// and the flags. The fd is closed by the destructor, i.e. only once the
/// last reference (worker or connection table) is gone, so a late
/// StageResponse can never hit a recycled descriptor.
struct Server::Conn {
  Conn(uint64_t id_in, int fd_in, size_t max_frame)
      : id(id_in), fd(fd_in), decoder(max_frame) {}
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  const uint64_t id;
  const int fd;
  FrameDecoder decoder;          ///< I/O thread only
  uint64_t last_progress_ms = 0; ///< I/O thread only (stall sweep)

  /// Set by the I/O thread when the connection is dropped: workers stop
  /// staging into it.
  std::atomic<bool> dead{false};
  /// Set by StageResponse when the output buffer exceeds its ceiling;
  /// the I/O thread drops the connection at the next loop turn.
  std::atomic<bool> kill{false};

  Mutex out_mu;
  std::string out MSV_GUARDED_BY(out_mu);

  /// Reads the staged-output size (for poll interest).
  size_t pending() {
    MutexLock lock(out_mu);
    return out.size();
  }
};

Server::Server(query::Executor* executor, ServerOptions options)
    : executor_(executor), options_(std::move(options)) {
  auto& reg = obs::MetricRegistry::Global();
  accepted_ = reg.GetCounter("serve.connections_accepted");
  requests_ = reg.GetCounter("serve.requests");
  responses_ = reg.GetCounter("serve.responses");
  rejected_overload_ = reg.GetCounter("serve.rejected_overload");
  errors_parse_ = reg.GetCounter("serve.errors_parse");
  errors_exec_ = reg.GetCounter("serve.errors_exec");
  errors_protocol_ = reg.GetCounter("serve.errors_protocol");
  dropped_conns_ = reg.GetCounter("serve.connections_dropped");
  partial_results_ = reg.GetCounter("serve.partial_results");
  bytes_in_ = reg.GetCounter("serve.bytes_in");
  bytes_out_ = reg.GetCounter("serve.bytes_out");
  active_conns_ = reg.GetGauge("serve.connections_active");
  queue_depth_ = reg.GetGauge("serve.queue_depth");
  request_us_ = reg.GetHistogram("serve.request_us");
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) return Status::InvalidArgument("server already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 1024) < 0) return Errno("listen");
  MSV_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_fds_) < 0) return Errno("pipe");
  MSV_RETURN_IF_ERROR(SetNonBlocking(wake_fds_[0]));
  MSV_RETURN_IF_ERROR(SetNonBlocking(wake_fds_[1]));

  running_.store(true);
  io_thread_ = std::thread([this] { IoLoop(); });
  const int workers = options_.workers > 0 ? options_.workers : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  MSV_LOG(Info) << "msv_serve listening on " << options_.host << ":" << port_
                << " (" << workers << " workers, queue "
                << options_.max_queue << ")";
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  WakeIo();
  {
    MutexLock lock(queue_mu_);
  }
  queue_cv_.SignalAll();
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    // Discard requests that never started.
    MutexLock lock(queue_mu_);
    queue_.clear();
  }
  conns_.clear();
  active_conns_->Set(0);
  queue_depth_->Set(0);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

size_t Server::connections() const { return conns_.size(); }

void Server::WakeIo() {
  const char byte = 'w';
  // Best effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

void Server::IoLoop() {
  obs::SetThreadLabel("serve-io");
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Conn>> polled;
  while (running_.load(std::memory_order_relaxed)) {
    pfds.clear();
    polled.clear();
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (conn->pending() > 0) events |= POLLOUT;
      pfds.push_back({conn->fd, events, 0});
      polled.push_back(conn);
    }

    const int rc = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/100);
    if (!running_.load(std::memory_order_relaxed)) break;
    if (rc < 0) {
      if (errno == EINTR) continue;
      MSV_LOG(Error) << "serve poll: " << std::strerror(errno);
      break;
    }

    if (pfds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (pfds[1].revents & POLLIN) AcceptNew();

    for (size_t i = 0; i < polled.size(); ++i) {
      const auto& conn = polled[i];
      const short revents = pfds[i + 2].revents;
      if (conn->kill.load(std::memory_order_relaxed)) {
        DropConn(conn->id);
        continue;
      }
      if (revents & POLLOUT) {
        if (!FlushConn(conn)) {
          DropConn(conn->id);
          continue;
        }
      }
      if (revents & (POLLIN | POLLHUP | POLLERR)) ReadConn(conn);
    }
    // Staged output may have raced past the poll — flush opportunistically
    // so responses are not delayed by a full poll interval.
    for (const auto& conn : polled) {
      if (!conn->dead.load(std::memory_order_relaxed) && conn->pending() > 0) {
        if (!FlushConn(conn)) DropConn(conn->id);
      }
    }
    if (options_.stall_timeout_ms > 0) SweepStalled(NowMs());
  }
  // Shutdown: drop every connection (sends FIN once refs drain).
  while (!conns_.empty()) DropConn(conns_.begin()->first);
}

void Server::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      // EMFILE/ENFILE under churn: log (rate-limited) and carry on.
      MSV_LOG(Warn) << "serve accept: " << std::strerror(errno);
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_shared<Conn>(id, fd, options_.max_frame_bytes);
    conn->last_progress_ms = NowMs();
    conns_.emplace(id, std::move(conn));
    accepted_->Add();
    active_conns_->Set(static_cast<double>(conns_.size()));
  }
}

void Server::ReadConn(const std::shared_ptr<Conn>& conn) {
  char buf[64 << 10];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      bytes_in_->Add(static_cast<uint64_t>(n));
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      conn->last_progress_ms = NowMs();
      std::string payload;
      for (;;) {
        const auto outcome = conn->decoder.Next(&payload);
        if (outcome == FrameDecoder::Outcome::kNeedMore) break;
        if (outcome == FrameDecoder::Outcome::kTooLarge) {
          errors_protocol_->Add();
          StageResponse(conn,
                        EncodeErrorResponse(Request{}, ErrorKind::kProtocol,
                                            "frame exceeds " +
                                                std::to_string(
                                                    options_.max_frame_bytes) +
                                                " bytes"));
          FlushConn(conn);
          DropConn(conn->id);
          return;
        }
        requests_->Add();
        auto request = ParseRequest(payload);
        if (!request.ok()) {
          errors_protocol_->Add();
          StageResponse(conn,
                        EncodeErrorResponse(Request{}, ErrorKind::kProtocol,
                                            std::string(request.status().message())));
          continue;
        }
        bool admitted = false;
        {
          MutexLock lock(queue_mu_);
          if (queue_.size() < options_.max_queue) {
            queue_.push_back(Work{conn, std::move(*request)});
            queue_depth_->Set(static_cast<double>(queue_.size()));
            admitted = true;
          }
        }
        if (admitted) {
          queue_cv_.Signal();
        } else {
          rejected_overload_->Add();
          StageResponse(conn,
                        EncodeErrorResponse(*request, ErrorKind::kOverload,
                                            "admission queue full; retry"));
        }
      }
      continue;
    }
    if (n == 0) {  // EOF: client closed (possibly mid-frame)
      DropConn(conn->id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    DropConn(conn->id);
    return;
  }
}

bool Server::FlushConn(const std::shared_ptr<Conn>& conn) {
  MutexLock lock(conn->out_mu);
  while (!conn->out.empty()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data(), conn->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      bytes_out_->Add(static_cast<uint64_t>(n));
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // EPIPE/ECONNRESET: reader gone
  }
  return true;
}

void Server::DropConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  it->second->dead.store(true, std::memory_order_relaxed);
  // Send FIN now; the fd itself is closed when the last reference drops,
  // so in-flight worker responses land on a dead-but-unrecycled socket.
  ::shutdown(it->second->fd, SHUT_RDWR);
  conns_.erase(it);
  dropped_conns_->Add();
  active_conns_->Set(static_cast<double>(conns_.size()));
}

void Server::SweepStalled(uint64_t now_ms) {
  std::vector<uint64_t> stalled;
  for (const auto& [id, conn] : conns_) {
    if (conn->decoder.mid_frame() &&
        now_ms - conn->last_progress_ms > options_.stall_timeout_ms) {
      stalled.push_back(id);
    }
  }
  for (uint64_t id : stalled) {
    MSV_LOG(Warn) << "serve: dropping stalled connection " << id
                  << " (mid-frame for > " << options_.stall_timeout_ms
                  << " ms)";
    DropConn(id);
  }
}

void Server::WorkerLoop(int index) {
  obs::SetThreadLabel("serve-worker-" + std::to_string(index));
  for (;;) {
    Work work;
    {
      MutexLock lock(queue_mu_);
      while (running_.load(std::memory_order_relaxed) && queue_.empty()) {
        queue_cv_.Wait(queue_mu_);
      }
      if (!running_.load(std::memory_order_relaxed)) return;
      work = std::move(queue_.front());
      queue_.erase(queue_.begin());
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
    if (work.conn->dead.load(std::memory_order_relaxed)) continue;
    obs::SetThreadLabel("serve-conn-" + std::to_string(work.conn->id));
    const std::string payload = Process(work.request);
    obs::SetThreadLabel("serve-worker-" + std::to_string(index));
    StageResponse(work.conn, payload);
  }
}

std::string Server::Process(const Request& request) {
  const uint64_t start_us = NowUs();
  auto statements = query::Parse(request.statement);
  if (!statements.ok()) {
    errors_parse_->Add();
    return EncodeErrorResponse(request, ErrorKind::kParse,
                               std::string(statements.status().message()));
  }
  std::string output;
  obs::StatementLedger result_ledger;
  for (const auto& statement : *statements) {
    auto result = executor_->Execute(statement);
    if (!result.ok()) {
      errors_exec_->Add();
      return EncodeErrorResponse(request, ErrorKind::kExec,
                                 std::string(result.status().message()));
    }
    output += *result;
    const obs::StatementLedger& ledger = obs::ThreadStatementLedger();
    if (ledger.has_estimate) result_ledger = ledger;
  }
  if (result_ledger.is_partial) partial_results_->Add();
  const uint64_t elapsed_us = NowUs() - start_us;
  request_us_->Record(elapsed_us);
  responses_->Add();
  return EncodeResultResponse(request, output, result_ledger, elapsed_us);
}

void Server::StageResponse(const std::shared_ptr<Conn>& conn,
                           const std::string& payload) {
  {
    MutexLock lock(conn->out_mu);
    if (conn->dead.load(std::memory_order_relaxed)) return;
    conn->out += EncodeFrame(payload);
    if (conn->out.size() > options_.max_output_bytes) {
      conn->kill.store(true, std::memory_order_relaxed);
    }
  }
  WakeIo();
}

}  // namespace msv::serve
