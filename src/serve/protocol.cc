#include "serve/protocol.h"

#include <cstring>

namespace msv::serve {

std::string EncodeFrame(const std::string& payload) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>(n & 0xff));
  frame.append(payload);
  return frame;
}

FrameDecoder::Outcome FrameDecoder::Next(std::string* payload) {
  if (buf_.size() < kFrameHeaderBytes) return Outcome::kNeedMore;
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data());
  const size_t n = (static_cast<size_t>(p[0]) << 24) |
                   (static_cast<size_t>(p[1]) << 16) |
                   (static_cast<size_t>(p[2]) << 8) | static_cast<size_t>(p[3]);
  if (n > max_frame_bytes_) return Outcome::kTooLarge;
  if (buf_.size() < kFrameHeaderBytes + n) return Outcome::kNeedMore;
  payload->assign(buf_, kFrameHeaderBytes, n);
  buf_.erase(0, kFrameHeaderBytes + n);
  return Outcome::kFrame;
}

const char* ErrorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kOverload:
      return "overload";
    case ErrorKind::kParse:
      return "parse";
    case ErrorKind::kExec:
      return "exec";
    case ErrorKind::kProtocol:
      return "protocol";
  }
  return "unknown";
}

Result<Request> ParseRequest(const std::string& payload) {
  auto parsed = obs::Json::Parse(payload);
  if (!parsed.ok()) {
    return Status::InvalidArgument("request is not valid JSON: " +
                                   std::string(parsed.status().message()));
  }
  const obs::Json& doc = *parsed;
  if (doc.type() != obs::Json::Type::kObject) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request request;
  if (const obs::Json* id = doc.Find("id")) {
    if (id->type() != obs::Json::Type::kNumber) {
      return Status::InvalidArgument("request \"id\" must be a number");
    }
    request.id = static_cast<uint64_t>(id->AsNumber());
    request.has_id = true;
  }
  const obs::Json* statement = doc.Find("statement");
  if (statement == nullptr) {
    return Status::InvalidArgument("request missing \"statement\"");
  }
  if (statement->type() != obs::Json::Type::kString) {
    return Status::InvalidArgument("request \"statement\" must be a string");
  }
  request.statement = statement->AsString();
  return request;
}

std::string EncodeResultResponse(const Request& request,
                                 const std::string& output,
                                 const obs::StatementLedger& ledger,
                                 uint64_t elapsed_us) {
  obs::Json doc = obs::Json::Object();
  if (request.has_id) doc["id"] = request.id;
  doc["ok"] = true;
  doc["output"] = output;
  doc["elapsed_us"] = elapsed_us;
  if (ledger.has_estimate) {
    obs::Json estimate = obs::Json::Object();
    estimate["value"] = ledger.estimate_value;
    estimate["half_width"] = ledger.ci_half_width;
    estimate["samples"] = ledger.samples;
    estimate["confidence"] = ledger.confidence;
    estimate["is_partial"] = ledger.is_partial;
    estimate["target_rel_pct"] = ledger.target_rel_pct;
    estimate["deadline_us"] = ledger.deadline_us;
    estimate["elapsed_us"] = ledger.elapsed_us;
    doc["estimate"] = std::move(estimate);
  }
  return doc.Dump();
}

std::string EncodeErrorResponse(const Request& request, ErrorKind kind,
                                const std::string& message) {
  obs::Json doc = obs::Json::Object();
  if (request.has_id) doc["id"] = request.id;
  doc["ok"] = false;
  obs::Json error = obs::Json::Object();
  error["kind"] = ErrorKindName(kind);
  error["message"] = message;
  doc["error"] = std::move(error);
  return doc.Dump();
}

}  // namespace msv::serve
