// TCP front end over the MSVQL executor.
//
// Thread model — single-writer event loop plus a worker pool:
//
//   * One I/O thread owns every socket: it accepts, reads nonblocking
//     bytes into per-connection frame decoders, parses complete frames
//     into requests, and performs every write (responses are staged into
//     per-connection output buffers and flushed under POLLOUT). Because
//     only this thread touches fds, there is no close/reuse race and no
//     worker ever blocks on a slow client.
//
//   * N worker threads pop admitted requests from a bounded queue and run
//     them against the shared query::Executor (whose reader/writer
//     statement lock provides the actual query concurrency), then stage
//     the response and wake the I/O thread through its self-pipe.
//
// Admission control: the queue is bounded (ServerOptions::max_queue).
// When it is full the I/O thread answers immediately with a typed
// "overload" error instead of queueing — clients see backpressure as a
// distinct, retryable failure rather than as latency. Malformed JSON is
// a "protocol" error, MSVQL that does not parse is a "parse" error, and
// a statement failing mid-script is an "exec" error; all four are
// counted separately under serve.*.
//
// Robustness: oversized frames and ballooning output buffers drop the
// connection; connections parked mid-frame (slow loris) are swept after
// stall_timeout_ms. A dropped connection's in-flight responses are
// discarded harmlessly — the fd stays open (refcounted) until the last
// worker reference drains, so the kernel cannot recycle the descriptor
// under a concurrent stage.

#ifndef MSV_SERVE_SERVER_H_
#define MSV_SERVE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "query/executor.h"
#include "serve/protocol.h"
#include "util/result.h"
#include "util/sync.h"

namespace msv::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; read the bound port from port()
  int workers = 4;
  size_t max_queue = 128;  ///< admitted-but-unserved request bound
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection staged-output ceiling; a reader this far behind is
  /// dropped rather than buffered without bound.
  size_t max_output_bytes = 4 << 20;
  /// Connections holding a partial frame with no progress for this long
  /// are closed (slow-loris sweep). 0 disables.
  uint64_t stall_timeout_ms = 10000;
};

class Server {
 public:
  /// `executor` must outlive the server; the server adds no locking of
  /// its own around it (Execute is thread-safe).
  Server(query::Executor* executor, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the I/O + worker threads.
  Status Start();

  /// Stops accepting, closes every connection, joins all threads.
  /// Queued-but-unstarted requests are discarded. Idempotent.
  void Stop();

  /// The bound port (valid after Start(); useful with port 0).
  int port() const { return port_; }

  /// Live connection count (I/O thread's view, approximate off-thread).
  size_t connections() const;

 private:
  struct Conn;
  struct Work {
    std::shared_ptr<Conn> conn;
    Request request;
  };

  void IoLoop();
  void WorkerLoop(int index);

  /// Runs one request against the executor; returns the response payload.
  std::string Process(const Request& request);

  /// Stages `payload` as a frame on `conn` and wakes the I/O thread.
  void StageResponse(const std::shared_ptr<Conn>& conn,
                     const std::string& payload);

  /// I/O-thread helpers.
  void AcceptNew();
  void ReadConn(const std::shared_ptr<Conn>& conn);
  bool FlushConn(const std::shared_ptr<Conn>& conn);
  void DropConn(uint64_t conn_id);
  void SweepStalled(uint64_t now_ms);
  void WakeIo();

  query::Executor* executor_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: [0] polled, [1] written

  std::atomic<bool> running_{false};
  std::thread io_thread_;
  std::vector<std::thread> workers_;

  /// Connection table — I/O thread only (no lock needed): fd lifetime is
  /// managed by shared_ptr so workers finishing late write into an open,
  /// if dead, socket instead of a recycled descriptor.
  std::map<uint64_t, std::shared_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;

  Mutex queue_mu_;
  CondVar queue_cv_;
  std::vector<Work> queue_ MSV_GUARDED_BY(queue_mu_);

  /// serve.* metrics, resolved once at construction.
  obs::Counter* accepted_;
  obs::Counter* requests_;
  obs::Counter* responses_;
  obs::Counter* rejected_overload_;
  obs::Counter* errors_parse_;
  obs::Counter* errors_exec_;
  obs::Counter* errors_protocol_;
  obs::Counter* dropped_conns_;
  obs::Counter* partial_results_;
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Gauge* active_conns_;
  obs::Gauge* queue_depth_;
  obs::LogHistogram* request_us_;
};

}  // namespace msv::serve

#endif  // MSV_SERVE_SERVER_H_
