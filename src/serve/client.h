// Blocking client for the MSVQL wire protocol — used by tools/msv_serve's
// --query mode, the serving bench drivers and the protocol tests. One
// Client is one TCP connection; it is not thread-safe (drive one client
// per thread, or many clients from one poll loop via fd()).

#ifndef MSV_SERVE_CLIENT_H_
#define MSV_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "obs/json.h"
#include "serve/protocol.h"
#include "util/result.h"

namespace msv::serve {

class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 int port,
                                                 uint64_t timeout_ms = 5000);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request frame.
  Status Send(uint64_t id, const std::string& statement);

  /// Blocks (bounded by timeout_ms) for the next response frame.
  Result<obs::Json> Read(uint64_t timeout_ms = 30000);

  /// Send + Read. Execution/parse/overload failures surface as error
  /// Status with the typed kind prefixed ("exec: ...", "overload: ...");
  /// the full response document is available via Read for callers that
  /// need the estimate block.
  Result<obs::Json> Call(const std::string& statement,
                         uint64_t timeout_ms = 30000);

  /// Raw escape hatches for the robustness tests.
  Status SendBytes(const void* data, size_t n);
  int fd() const { return fd_; }
  void Close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  FrameDecoder decoder_;
  uint64_t next_id_ = 1;
};

}  // namespace msv::serve

#endif  // MSV_SERVE_CLIENT_H_
