// Statement AST for MSVQL.

#ifndef MSV_QUERY_AST_H_
#define MSV_QUERY_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace msv::query {

/// `column BETWEEN lo AND hi`.
struct BetweenPredicate {
  std::string column;
  double lo = 0.0;
  double hi = 0.0;
};

/// GENERATE TABLE name ROWS n [SEED s];
struct GenerateTableStmt {
  std::string table;
  uint64_t rows = 0;
  uint64_t seed = 42;
};

/// CREATE MATERIALIZED SAMPLE VIEW v AS SELECT * FROM t INDEX ON c1[, c2];
struct CreateViewStmt {
  std::string view;
  std::string table;
  std::vector<std::string> index_columns;
};

/// SAMPLE FROM v [WHERE preds] [LIMIT n];
struct SampleStmt {
  std::string view;
  std::vector<BetweenPredicate> predicates;
  uint64_t limit = 10;
};

/// ESTIMATE AVG(col) | SUM(col) | COUNT(*) FROM v [WHERE preds]
///   [GROUP BY c] [SAMPLES n] [CONFIDENCE p]
///   [WITHIN e%] [WITHIN t MS];
struct EstimateStmt {
  enum class Agg { kAvg, kSum, kCount };
  Agg agg = Agg::kAvg;
  std::string column;  // empty for COUNT(*)
  std::string view;
  std::vector<BetweenPredicate> predicates;
  /// Optional GROUP BY column (integer-typed); empty = no grouping.
  std::string group_by;
  uint64_t samples = 1000;
  /// True when SAMPLES was written explicitly. A WITHIN clause lifts the
  /// default cap (the bound decides when to stop), but an explicit
  /// SAMPLES n stays a hard cap alongside the bound.
  bool samples_set = false;
  double confidence = 0.95;
  /// WITHIN <pct>%: error-bounded mode — sampling stops once the CI
  /// half-width is within pct percent of the point estimate. 0 = unset.
  double within_pct = 0.0;
  /// WITHIN <t> MS: time-bounded mode — sampling stops at the deadline
  /// (wall clock + modeled disk µs) and the result is tagged partial if
  /// the stream was not exhausted. 0 = unset.
  uint64_t within_ms = 0;
};

/// INSERT INTO v ROWS n [SEED s];  (generated rows appended to the delta)
struct InsertStmt {
  std::string view;
  uint64_t rows = 0;
  uint64_t seed = 43;
};

/// REBUILD v;
struct RebuildStmt {
  std::string view;
};

/// DROP VIEW v;
struct DropViewStmt {
  std::string view;
};

/// SHOW VIEWS; / SHOW TABLES;
struct ShowStmt {
  bool views = true;  // false -> tables
};

struct ExplainStmt;

using Statement =
    std::variant<GenerateTableStmt, CreateViewStmt, SampleStmt, EstimateStmt,
                 InsertStmt, RebuildStmt, DropViewStmt, ShowStmt, ExplainStmt>;

/// EXPLAIN <stmt>;          plan summary, nothing executed.
/// EXPLAIN ANALYZE <stmt>;  executes under a tracer and appends the
///                          per-span I/O-cost report to the output.
struct ExplainStmt {
  bool analyze = false;
  /// The explained statement (never itself an EXPLAIN). shared_ptr to
  /// break the variant's self-reference; never null after parsing.
  std::shared_ptr<Statement> inner;
};

}  // namespace msv::query

#endif  // MSV_QUERY_AST_H_
