// SessionPool: N concurrent MSVQL sessions over one shared Executor.
//
// The executor classifies statements into reads and writes and serializes
// only the writes (see executor.h), so a pool of sessions sampling the
// same materialized view genuinely overlaps in the buffer pool and on the
// simulated disk arm. Each submitted script runs to completion on one
// worker thread; results are collected per ticket, in any order.

#ifndef MSV_QUERY_SESSION_POOL_H_
#define MSV_QUERY_SESSION_POOL_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "query/executor.h"
#include "util/result.h"
#include "util/sync.h"

namespace msv::query {

class SessionPool {
 public:
  /// `executor` must outlive the pool. `threads` is clamped to >= 1.
  SessionPool(Executor* executor, size_t threads);
  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;
  /// Joins the workers; scripts still queued are abandoned (their Wait()
  /// would never return, so collect every ticket before destruction).
  ~SessionPool();

  /// Enqueues a script for execution on the next free session; returns a
  /// ticket for Wait().
  uint64_t Submit(std::string script);

  /// Blocks until the ticket's script finishes and returns its output (or
  /// its error). Each ticket may be collected once.
  Result<std::string> Wait(uint64_t ticket);

  size_t session_count() const { return workers_.size(); }

  /// Convenience: runs every script concurrently on a fresh pool of
  /// `threads` sessions and returns the results in submission order.
  static std::vector<Result<std::string>> RunScripts(
      Executor* executor, const std::vector<std::string>& scripts,
      size_t threads);

 private:
  struct Job {
    std::string script;
    std::optional<Result<std::string>> result;
  };

  void WorkerLoop(size_t session_index);

  Executor* executor_;
  Mutex mu_;
  CondVar job_cv_;   // workers wait: queue non-empty
  CondVar done_cv_;  // waiters wait: their job finished
  std::deque<uint64_t> queue_ MSV_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Job> jobs_ MSV_GUARDED_BY(mu_);
  uint64_t next_ticket_ MSV_GUARDED_BY(mu_) = 1;
  bool stop_ MSV_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace msv::query

#endif  // MSV_QUERY_SESSION_POOL_H_
