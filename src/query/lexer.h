// Lexer for MSVQL, the little query language exposing the paper's
// interface (CREATE MATERIALIZED SAMPLE VIEW ... INDEX ON ...; SAMPLE
// FROM ... WHERE k BETWEEN a AND b; ESTIMATE AVG(x) ...).

#ifndef MSV_QUERY_LEXER_H_
#define MSV_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace msv::query {

enum class TokenType {
  kIdentifier,  // table / view / column names (case-preserved)
  kKeyword,     // upper-cased reserved word
  kNumber,      // double literal
  kSymbol,      // one of ( ) , ; * = %
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // keyword/identifier/symbol spelling
  double number = 0.0;  // for kNumber
  size_t position = 0;  // byte offset, for error messages

  bool IsKeyword(const std::string& kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(char c) const {
    return type == TokenType::kSymbol && text.size() == 1 && text[0] == c;
  }
};

/// Tokenizes one or more statements. Keywords are recognized
/// case-insensitively and normalized to upper case; anything else
/// alphanumeric is an identifier.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace msv::query

#endif  // MSV_QUERY_LEXER_H_
