// Executor: runs parsed MSVQL statements against an Env-backed catalog of
// tables and materialized sample views.

#ifndef MSV_QUERY_EXECUTOR_H_
#define MSV_QUERY_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>

#include "core/sample_view.h"
#include "query/ast.h"
#include "query/catalog.h"
#include "util/result.h"

namespace msv::query {

class Executor {
 public:
  /// Opens (or initializes) a session over `env`; catalog state persists
  /// in the env under `catalog_file`.
  static Result<std::unique_ptr<Executor>> Open(
      io::Env* env, const std::string& catalog_file = "msv.catalog");

  /// Parses and executes a script; returns the concatenated output of all
  /// statements, or the first error.
  Result<std::string> Run(const std::string& script);

  /// Executes one already-parsed statement.
  Result<std::string> Execute(const Statement& statement);

  Catalog& catalog() { return *catalog_; }

 private:
  Executor(io::Env* env, std::unique_ptr<Catalog> catalog)
      : env_(env), catalog_(std::move(catalog)) {}

  Result<std::string> ExecGenerate(const GenerateTableStmt& stmt);
  Result<std::string> ExecCreateView(const CreateViewStmt& stmt);
  Result<std::string> ExecSample(const SampleStmt& stmt);
  Result<std::string> ExecEstimate(const EstimateStmt& stmt);
  Result<std::string> ExecInsert(const InsertStmt& stmt);
  Result<std::string> ExecRebuild(const RebuildStmt& stmt);
  Result<std::string> ExecDropView(const DropViewStmt& stmt);
  Result<std::string> ExecShow(const ShowStmt& stmt);
  Result<std::string> ExecExplain(const ExplainStmt& stmt);

  /// Plan summary for EXPLAIN (no execution): statement kind, the range
  /// query it induces and the view geometry it would touch.
  Result<std::string> ExplainPlan(const Statement& statement);

  /// Opens (and caches) the view handle; fails for unknown views.
  Result<core::MaterializedSampleView*> GetView(const std::string& name);

  /// Translates WHERE predicates to a RangeQuery on the view's indexed
  /// dimensions (unreferenced dimensions stay unbounded); predicates on
  /// non-indexed columns are rejected.
  Result<sampling::RangeQuery> BuildQuery(
      const ViewInfo& view, const std::vector<BetweenPredicate>& predicates)
      const;

  io::Env* env_;
  std::unique_ptr<Catalog> catalog_;
  std::map<std::string, std::unique_ptr<core::MaterializedSampleView>>
      open_views_;
  uint64_t next_seed_ = 0x415ce7;  // advanced per sampling statement
};

}  // namespace msv::query

#endif  // MSV_QUERY_EXECUTOR_H_
