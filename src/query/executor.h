// Executor: runs parsed MSVQL statements against an Env-backed catalog of
// tables and materialized sample views.
//
// Concurrency: one Executor may serve statements from many threads. Each
// statement is classified as a read (SAMPLE, ESTIMATE, SHOW, EXPLAIN of a
// read) or a write (GENERATE, CREATE VIEW, INSERT, REBUILD, DROP VIEW);
// reads run concurrently under a shared lock while writes are exclusive,
// so a sampler never observes a view mid-mutation. The seed sequence
// driving sampling statements is a single atomic, so a serial script
// draws exactly the historical seeds and concurrent scripts draw disjoint
// ones.

#ifndef MSV_QUERY_EXECUTOR_H_
#define MSV_QUERY_EXECUTOR_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "core/sample_view.h"
#include "obs/metrics.h"
#include "query/ast.h"
#include "query/catalog.h"
#include "util/result.h"
#include "util/sync.h"

namespace msv::query {

class Executor {
 public:
  /// Opens (or initializes) a session over `env`; catalog state persists
  /// in the env under `catalog_file`.
  static Result<std::unique_ptr<Executor>> Open(
      io::Env* env, const std::string& catalog_file = "msv.catalog");

  /// Parses and executes a script; returns the concatenated output of all
  /// statements, or the first error. Safe to call from multiple threads.
  Result<std::string> Run(const std::string& script);

  /// Executes one already-parsed statement. Safe to call from multiple
  /// threads (see the classification rules in the file comment).
  Result<std::string> Execute(const Statement& statement);

  Catalog& catalog() { return *catalog_; }

 private:
  Executor(io::Env* env, std::unique_ptr<Catalog> catalog);

  /// Dispatch without taking stmt_mu_ — for EXPLAIN ANALYZE recursion,
  /// which already holds the lock for the (unwrapped) inner statement.
  /// Wraps Dispatch() with the per-statement cost capture feeding the
  /// slow-query log (obs::SlowQueryLog) and the query.* counters; the
  /// recursion means EXPLAIN ANALYZE yields records for both the inner
  /// statement and the wrapping explain.
  ///
  /// The statement methods below are annotated REQUIRES_SHARED even for
  /// writes: the single dispatcher serves both classes, so "shared or
  /// better" is the strongest precondition expressible to the analysis.
  /// Write exclusivity is enforced where the lock is chosen — Execute()
  /// takes stmt_mu_ exclusive for every IsWriteStatement() statement.
  Result<std::string> ExecuteLocked(const Statement& statement)
      MSV_REQUIRES_SHARED(stmt_mu_);

  /// The get_if dispatch chain proper (no telemetry).
  Result<std::string> Dispatch(const Statement& statement)
      MSV_REQUIRES_SHARED(stmt_mu_);

  Result<std::string> ExecGenerate(const GenerateTableStmt& stmt)
      MSV_REQUIRES_SHARED(stmt_mu_);
  Result<std::string> ExecCreateView(const CreateViewStmt& stmt)
      MSV_REQUIRES_SHARED(stmt_mu_);
  Result<std::string> ExecSample(const SampleStmt& stmt)
      MSV_REQUIRES_SHARED(stmt_mu_);
  Result<std::string> ExecEstimate(const EstimateStmt& stmt)
      MSV_REQUIRES_SHARED(stmt_mu_);
  Result<std::string> ExecInsert(const InsertStmt& stmt)
      MSV_REQUIRES_SHARED(stmt_mu_);
  Result<std::string> ExecRebuild(const RebuildStmt& stmt)
      MSV_REQUIRES_SHARED(stmt_mu_);
  Result<std::string> ExecDropView(const DropViewStmt& stmt)
      MSV_REQUIRES_SHARED(stmt_mu_);
  Result<std::string> ExecShow(const ShowStmt& stmt)
      MSV_REQUIRES_SHARED(stmt_mu_);
  Result<std::string> ExecExplain(const ExplainStmt& stmt)
      MSV_REQUIRES_SHARED(stmt_mu_);

  /// Plan summary for EXPLAIN (no execution): statement kind, the range
  /// query it induces and the view geometry it would touch.
  Result<std::string> ExplainPlan(const Statement& statement)
      MSV_REQUIRES_SHARED(stmt_mu_);

  /// Opens (and caches) the view handle; fails for unknown views. Safe
  /// under the shared statement lock: the cache has its own mutex, and a
  /// cached pointer stays valid while any statement lock is held (only
  /// DROP VIEW — exclusive — erases entries).
  Result<core::MaterializedSampleView*> GetView(const std::string& name)
      MSV_REQUIRES_SHARED(stmt_mu_);

  /// Translates WHERE predicates to a RangeQuery on the view's indexed
  /// dimensions (unreferenced dimensions stay unbounded); predicates on
  /// non-indexed columns are rejected.
  Result<sampling::RangeQuery> BuildQuery(
      const ViewInfo& view, const std::vector<BetweenPredicate>& predicates)
      const;

  io::Env* env_;
  std::unique_ptr<Catalog> catalog_;

  /// Reader/writer statement lock (see file comment). The catalog and the
  /// views' contents are only mutated while it is held exclusively.
  mutable SharedMutex stmt_mu_;
  /// Guards the open_views_ map itself (concurrent readers may race to
  /// open the same view); ordered after stmt_mu_.
  mutable Mutex views_mu_ MSV_ACQUIRED_AFTER(stmt_mu_);
  std::map<std::string, std::unique_ptr<core::MaterializedSampleView>>
      open_views_ MSV_GUARDED_BY(views_mu_);
  /// Advanced per sampling statement; atomic so concurrent readers draw
  /// distinct seeds while a serial script sees the historical sequence.
  std::atomic<uint64_t> next_seed_{0x415ce7};

  /// Cached registry series (process-wide totals across executors):
  /// statements started, statements failed, statement wall-time µs.
  obs::Counter* c_statements_;
  obs::Counter* c_errors_;
  obs::LogHistogram* h_statement_us_;
};

}  // namespace msv::query

#endif  // MSV_QUERY_EXECUTOR_H_
