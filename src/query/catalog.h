// Catalog: named tables and sample views, persisted inside the Env so a
// session can reopen them.
//
// The storage layer works on fixed-size records; the catalog attaches
// column names/types so MSVQL statements can reference them. The SALE
// schema of the paper is built in; tables are materialized with
// GENERATE TABLE.

#ifndef MSV_QUERY_CATALOG_H_
#define MSV_QUERY_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sample_view.h"
#include "io/env.h"
#include "storage/record.h"
#include "util/result.h"

namespace msv::query {

enum class ColumnType { kDouble, kUint64 };

struct Column {
  std::string name;
  ColumnType type;
  size_t offset;
};

/// A table schema over fixed-size records.
struct TableSchema {
  std::string name;       // schema name ("sale")
  size_t record_size = 0;
  std::vector<Column> columns;

  const Column* Find(const std::string& column_name) const;
  /// Value of a column as a double (u64 columns are converted).
  double Value(const char* record, const Column& column) const;

  /// The paper's SALE schema.
  static const TableSchema& Sale();
};

struct TableInfo {
  std::string name;  // table name
  std::string file;  // heap file name in the env
  const TableSchema* schema;
};

struct ViewInfo {
  std::string name;
  std::string table;                       // base table name
  std::vector<std::string> index_columns;  // key dimensions, in order
};

/// Named tables and views; persists itself to a catalog file in the Env.
class Catalog {
 public:
  /// Opens (or initializes) the catalog stored at `file_name`.
  static Result<std::unique_ptr<Catalog>> Open(io::Env* env,
                                               std::string file_name);

  Status AddTable(const std::string& name, const std::string& file,
                  const TableSchema* schema);
  Status AddView(const ViewInfo& view);
  Status DropView(const std::string& name);

  const TableInfo* FindTable(const std::string& name) const;
  const ViewInfo* FindView(const std::string& name) const;
  std::vector<std::string> TableNames() const;
  std::vector<std::string> ViewNames() const;

  /// Record layout implied by a view's index columns.
  Result<storage::RecordLayout> ViewLayout(const ViewInfo& view) const;

 private:
  Catalog(io::Env* env, std::string file_name)
      : env_(env), file_name_(std::move(file_name)) {}

  Status Load();
  Status Save() const;

  io::Env* env_;
  std::string file_name_;
  std::map<std::string, TableInfo> tables_;
  std::map<std::string, ViewInfo> views_;
};

}  // namespace msv::query

#endif  // MSV_QUERY_CATALOG_H_
