#include "query/catalog.h"

#include <sstream>

#include "util/coding.h"

namespace msv::query {

const Column* TableSchema::Find(const std::string& column_name) const {
  for (const Column& column : columns) {
    if (column.name == column_name) return &column;
  }
  return nullptr;
}

double TableSchema::Value(const char* record, const Column& column) const {
  switch (column.type) {
    case ColumnType::kDouble:
      return DecodeDouble(record + column.offset);
    case ColumnType::kUint64:
      return static_cast<double>(DecodeFixed64(record + column.offset));
  }
  return 0.0;
}

const TableSchema& TableSchema::Sale() {
  static const TableSchema kSale = {
      "sale",
      storage::SaleRecord::kSize,
      {
          {"day", ColumnType::kDouble, storage::SaleRecord::kDayOffset},
          {"amount", ColumnType::kDouble, storage::SaleRecord::kAmountOffset},
          {"cust", ColumnType::kUint64, storage::SaleRecord::kCustOffset},
          {"part", ColumnType::kUint64, storage::SaleRecord::kPartOffset},
          {"supp", ColumnType::kUint64, storage::SaleRecord::kSuppOffset},
          {"row_id", ColumnType::kUint64, storage::SaleRecord::kRowIdOffset},
      },
  };
  return kSale;
}

Result<std::unique_ptr<Catalog>> Catalog::Open(io::Env* env,
                                               std::string file_name) {
  std::unique_ptr<Catalog> catalog(new Catalog(env, std::move(file_name)));
  MSV_ASSIGN_OR_RETURN(bool exists, env->FileExists(catalog->file_name_));
  if (exists) {
    MSV_RETURN_IF_ERROR(catalog->Load());
  }
  return catalog;
}

Status Catalog::Load() {
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                       env_->OpenFile(file_name_, /*create=*/false));
  MSV_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string contents(size, '\0');
  MSV_RETURN_IF_ERROR(file->ReadExact(0, size, contents.data()));

  std::istringstream in(contents);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "table") {
      TableInfo table;
      std::string schema_name;
      fields >> table.name >> table.file >> schema_name;
      if (schema_name != "sale") {
        return Status::Corruption("unknown schema in catalog: " + schema_name);
      }
      table.schema = &TableSchema::Sale();
      tables_[table.name] = table;
    } else if (kind == "view") {
      ViewInfo view;
      fields >> view.name >> view.table;
      std::string column;
      while (fields >> column) view.index_columns.push_back(column);
      if (view.index_columns.empty()) {
        return Status::Corruption("view without index columns: " + view.name);
      }
      views_[view.name] = view;
    } else {
      return Status::Corruption("bad catalog line: " + line);
    }
  }
  return Status::OK();
}

Status Catalog::Save() const {
  std::ostringstream out;
  for (const auto& [name, table] : tables_) {
    out << "table " << name << " " << table.file << " "
        << table.schema->name << "\n";
  }
  for (const auto& [name, view] : views_) {
    out << "view " << name << " " << view.table;
    for (const std::string& column : view.index_columns) {
      out << " " << column;
    }
    out << "\n";
  }
  std::string contents = out.str();
  // Atomic replace: a crash mid-save must leave the previous catalog, not
  // a torn one (same tmp/sync/rename/dir-sync protocol as the ACE build).
  const std::string tmp_name = file_name_ + ".tmp";
  auto write_tmp = [&]() -> Status {
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                         env_->OpenFile(tmp_name, /*create=*/true));
    MSV_RETURN_IF_ERROR(file->Truncate(0));
    MSV_RETURN_IF_ERROR(file->Write(0, contents.data(), contents.size()));
    return file->Sync();
  };
  Status st = write_tmp();
  if (!st.ok()) {
    env_->DeleteFile(tmp_name).IgnoreError();  // best-effort scratch cleanup
    return st;
  }
  MSV_RETURN_IF_ERROR(env_->RenameFile(tmp_name, file_name_));
  return env_->SyncDir();
}

Status Catalog::AddTable(const std::string& name, const std::string& file,
                         const TableSchema* schema) {
  tables_[name] = TableInfo{name, file, schema};
  return Save();
}

Status Catalog::AddView(const ViewInfo& view) {
  if (views_.count(view.name)) {
    return Status::InvalidArgument("view already exists: " + view.name);
  }
  views_[view.name] = view;
  return Save();
}

Status Catalog::DropView(const std::string& name) {
  if (views_.erase(name) == 0) {
    return Status::NotFound("no such view: " + name);
  }
  return Save();
}

const TableInfo* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const ViewInfo* Catalog::FindView(const std::string& name) const {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

std::vector<std::string> Catalog::ViewNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : views_) names.push_back(name);
  return names;
}

Result<storage::RecordLayout> Catalog::ViewLayout(const ViewInfo& view) const {
  const TableInfo* table = FindTable(view.table);
  if (table == nullptr) {
    return Status::NotFound("base table missing: " + view.table);
  }
  storage::RecordLayout layout;
  layout.record_size = table->schema->record_size;
  for (const std::string& column_name : view.index_columns) {
    const Column* column = table->schema->Find(column_name);
    if (column == nullptr) {
      return Status::InvalidArgument("no such column: " + column_name);
    }
    if (column->type != ColumnType::kDouble) {
      return Status::InvalidArgument("index column must be numeric (double): " +
                                     column_name);
    }
    layout.key_offsets.push_back(column->offset);
  }
  return layout;
}

}  // namespace msv::query
