#include "query/executor.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "io/buffer_pool.h"
#include "io/disk_model.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "query/parser.h"
#include "relation/sale_generator.h"
#include "sampling/grouped_aggregator.h"
#include "sampling/online_aggregator.h"
#include "sampling/stopping_rule.h"
#include "storage/heap_file.h"
#include "util/random.h"

namespace msv::query {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

/// Compiles a schema column reference down to the inlineable accessor the
/// aggregators consume batches through (offset + kind; no per-record
/// std::function dispatch). nullptr means COUNT-style "1 per record".
storage::FieldAccessor AccessorFor(const Column* column) {
  if (column == nullptr) return storage::FieldAccessor::ConstOne();
  switch (column->type) {
    case ColumnType::kDouble:
      return storage::FieldAccessor::Double(column->offset);
    case ColumnType::kUint64:
      return storage::FieldAccessor::Uint64(column->offset);
  }
  return storage::FieldAccessor::ConstOne();
}

const char* StatementName(const Statement& statement) {
  return std::visit(
      [](const auto& stmt) -> const char* {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, GenerateTableStmt>) {
          return "generate";
        } else if constexpr (std::is_same_v<T, CreateViewStmt>) {
          return "create_view";
        } else if constexpr (std::is_same_v<T, SampleStmt>) {
          return "sample";
        } else if constexpr (std::is_same_v<T, EstimateStmt>) {
          return "estimate";
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          return "insert";
        } else if constexpr (std::is_same_v<T, RebuildStmt>) {
          return "rebuild";
        } else if constexpr (std::is_same_v<T, DropViewStmt>) {
          return "drop_view";
        } else if constexpr (std::is_same_v<T, ExplainStmt>) {
          return "explain";
        } else {
          return "show";
        }
      },
      statement);
}

/// True for statements that mutate the catalog, a view, or a table (and
/// so need the exclusive statement lock). EXPLAIN is classified by the
/// statement it wraps: EXPLAIN ANALYZE executes the inner statement.
bool IsWriteStatement(const Statement& statement) {
  const Statement* cur = &statement;
  while (const ExplainStmt* e = std::get_if<ExplainStmt>(cur)) {
    if (e->inner == nullptr) return false;
    cur = e->inner.get();
  }
  return std::holds_alternative<GenerateTableStmt>(*cur) ||
         std::holds_alternative<CreateViewStmt>(*cur) ||
         std::holds_alternative<InsertStmt>(*cur) ||
         std::holds_alternative<RebuildStmt>(*cur) ||
         std::holds_alternative<DropViewStmt>(*cur);
}

std::string DescribeQuery(const ViewInfo& info,
                          const sampling::RangeQuery& query) {
  std::ostringstream out;
  bool any = false;
  for (size_t d = 0; d < info.index_columns.size(); ++d) {
    if (std::isinf(query.bounds[d].lo) && std::isinf(query.bounds[d].hi)) {
      continue;
    }
    out << (any ? " AND " : "") << info.index_columns[d] << " in ["
        << FormatDouble(query.bounds[d].lo) << ", "
        << FormatDouble(query.bounds[d].hi) << "]";
    any = true;
  }
  if (!any) out << "(unbounded)";
  return out.str();
}

}  // namespace

Executor::Executor(io::Env* env, std::unique_ptr<Catalog> catalog)
    : env_(env), catalog_(std::move(catalog)) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  c_statements_ = reg.GetCounter("query.statements");
  c_errors_ = reg.GetCounter("query.errors");
  h_statement_us_ = reg.GetHistogram("query.statement_us");
}

Result<std::unique_ptr<Executor>> Executor::Open(
    io::Env* env, const std::string& catalog_file) {
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<Catalog> catalog,
                       Catalog::Open(env, catalog_file));
  // Serving picks the slow-query threshold up from the environment
  // without any explicit opt-in at the call sites.
  obs::SlowQueryLog::Global().ArmFromEnv();
  return std::unique_ptr<Executor>(new Executor(env, std::move(catalog)));
}

Result<std::string> Executor::Run(const std::string& script) {
  MSV_ASSIGN_OR_RETURN(std::vector<Statement> statements, Parse(script));

  // MSV_TRACE=path.json traces every statement of the script and appends
  // one JSON trace document to the file, even without EXPLAIN ANALYZE.
  // (Skipped when a tracer is already installed, e.g. by a test harness.)
  // Read-only env lookup; the process never calls setenv concurrently.
  const bool want_trace =
      std::getenv("MSV_TRACE") != nullptr &&  // NOLINT(concurrency-mt-unsafe)
      obs::Tracer::Active() == nullptr;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::ScopedTracer> scoped;
  if (want_trace) {
    tracer = std::make_unique<obs::Tracer>();
    scoped = std::make_unique<obs::ScopedTracer>(tracer.get());
  }

  std::string out;
  for (const Statement& statement : statements) {
    MSV_ASSIGN_OR_RETURN(std::string one, Execute(statement));
    out += one;
  }

  if (want_trace) {
    scoped.reset();
    obs::ExportTraceIfRequested(*tracer);
  }
  return out;
}

Result<std::string> Executor::Execute(const Statement& statement) {
  if (IsWriteStatement(statement)) {
    WriterLock lock(stmt_mu_);
    return ExecuteLocked(statement);
  }
  ReaderLock lock(stmt_mu_);
  return ExecuteLocked(statement);
}

Result<std::string> Executor::ExecuteLocked(const Statement& statement) {
  // Root span per statement. Inert (free) unless a tracer is installed —
  // by EXPLAIN ANALYZE, by the MSV_TRACE hook in Run(), or by a caller.
  obs::Span span =
      obs::StartTraceSpan(std::string("query.") + StatementName(statement));
  c_statements_->Add();
  // The ledger is reset unconditionally: the serving layer reads the
  // estimate block after every statement, armed or not.
  obs::ThreadStatementLedger().Reset();
  obs::SlowQueryLog& slow = obs::SlowQueryLog::Global();
  if (!slow.armed()) {
    // Disarmed fast path: one relaxed load above, no clock reads.
    Result<std::string> result = Dispatch(statement);
    if (!result.ok()) c_errors_->Add();
    return result;
  }
  const uint64_t disk_before = io::ThreadDiskBusyUs();
  const uint64_t pages_before = io::ThreadPoolPages();
  const auto start = std::chrono::steady_clock::now();
  Result<std::string> result = Dispatch(statement);
  if (!result.ok()) c_errors_->Add();
  const uint64_t wall_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  h_statement_us_->Record(wall_us);
  if (wall_us >= slow.threshold_us()) {
    const obs::StatementLedger& ledger = obs::ThreadStatementLedger();
    obs::SlowQueryRecord rec;
    rec.ts_us = obs::WallTimeUs();
    rec.wall_us = wall_us;
    rec.disk_us = io::ThreadDiskBusyUs() - disk_before;
    rec.pages = io::ThreadPoolPages() - pages_before;
    rec.samples = ledger.samples;
    rec.ci_half_width = ledger.ci_half_width;
    rec.statement = StatementName(statement);
    rec.session = obs::ThreadLabel();
    rec.ok = result.ok();
    if (!result.ok()) rec.error = result.status().ToString();
    slow.Record(std::move(rec));
  }
  return result;
}

Result<std::string> Executor::Dispatch(const Statement& statement) {
  // Dispatch by get_if rather than std::visit: the visitor lambda would
  // be analyzed as a separate function without this method's stmt_mu_
  // context, so the REQUIRES_SHARED callees would warn under
  // -Wthread-safety.
  if (const auto* s = std::get_if<GenerateTableStmt>(&statement)) {
    return ExecGenerate(*s);
  }
  if (const auto* s = std::get_if<CreateViewStmt>(&statement)) {
    return ExecCreateView(*s);
  }
  if (const auto* s = std::get_if<SampleStmt>(&statement)) {
    return ExecSample(*s);
  }
  if (const auto* s = std::get_if<EstimateStmt>(&statement)) {
    return ExecEstimate(*s);
  }
  if (const auto* s = std::get_if<InsertStmt>(&statement)) {
    return ExecInsert(*s);
  }
  if (const auto* s = std::get_if<RebuildStmt>(&statement)) {
    return ExecRebuild(*s);
  }
  if (const auto* s = std::get_if<DropViewStmt>(&statement)) {
    return ExecDropView(*s);
  }
  if (const auto* s = std::get_if<ExplainStmt>(&statement)) {
    return ExecExplain(*s);
  }
  return ExecShow(std::get<ShowStmt>(statement));
}

Result<std::string> Executor::ExecExplain(const ExplainStmt& stmt) {
  if (stmt.inner == nullptr) {
    return Status::InvalidArgument("EXPLAIN needs a statement");
  }
  if (!stmt.analyze) return ExplainPlan(*stmt.inner);

  obs::Tracer tracer;
  std::string result;
  {
    obs::ScopedTracer scoped(&tracer);
    // The statement lock is already held (Execute classified this EXPLAIN
    // by its inner statement), so dispatch without re-locking.
    MSV_ASSIGN_OR_RETURN(result, ExecuteLocked(*stmt.inner));
  }
  obs::ExportTraceIfRequested(tracer);
  std::ostringstream out;
  out << result << "-- EXPLAIN ANALYZE --\n" << tracer.ToTree();
  return out.str();
}

Result<std::string> Executor::ExplainPlan(const Statement& statement) {
  std::ostringstream out;
  out << "EXPLAIN " << StatementName(statement) << "\n";
  const SampleStmt* sample = std::get_if<SampleStmt>(&statement);
  const EstimateStmt* estimate = std::get_if<EstimateStmt>(&statement);
  const std::string* view_name =
      sample ? &sample->view : estimate ? &estimate->view : nullptr;
  if (view_name == nullptr) {
    out << "  (no plan details for this statement kind)\n";
    return out.str();
  }
  MSV_ASSIGN_OR_RETURN(core::MaterializedSampleView* view,
                       GetView(*view_name));
  const ViewInfo* info = catalog_->FindView(*view_name);
  MSV_ASSIGN_OR_RETURN(
      sampling::RangeQuery query,
      BuildQuery(*info, sample ? sample->predicates : estimate->predicates));
  const std::shared_ptr<const core::AceTree> tree = view->tree();
  const core::AceMeta& meta = tree->meta();
  out << "  view=" << *view_name << " base_records=" << view->base_records()
      << " delta_records=" << view->delta_records() << "\n";
  out << "  ace_tree: height=" << meta.height << " leaves=" << meta.num_leaves
      << " page_size=" << meta.page_size << "\n";
  out << "  range: " << DescribeQuery(*info, query) << "\n";
  MSV_ASSIGN_OR_RETURN(uint64_t matches,
                       view->tree()->EstimateMatchCount(query));
  out << "  estimated matches (index counts): " << matches << "\n";
  return out.str();
}

Result<std::string> Executor::ExecGenerate(const GenerateTableStmt& stmt) {
  relation::SaleGenOptions options;
  options.num_records = stmt.rows;
  options.seed = stmt.seed;
  const std::string file = "tbl." + stmt.table;
  MSV_RETURN_IF_ERROR(relation::GenerateSaleRelation(env_, file, options));
  MSV_RETURN_IF_ERROR(
      catalog_->AddTable(stmt.table, file, &TableSchema::Sale()));
  return "generated table " + stmt.table + " with " +
         std::to_string(stmt.rows) + " rows\n";
}

Result<std::string> Executor::ExecCreateView(const CreateViewStmt& stmt) {
  const TableInfo* table = catalog_->FindTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + stmt.table);
  }
  if (catalog_->FindView(stmt.view) != nullptr) {
    return Status::InvalidArgument("view already exists: " + stmt.view);
  }
  ViewInfo info{stmt.view, stmt.table, stmt.index_columns};
  MSV_ASSIGN_OR_RETURN(storage::RecordLayout layout,
                       catalog_->ViewLayout(info));

  core::MaterializedSampleView::Options options;
  options.build.key_dims = static_cast<uint32_t>(stmt.index_columns.size());
  MSV_ASSIGN_OR_RETURN(
      std::unique_ptr<core::MaterializedSampleView> view,
      core::MaterializedSampleView::Create(env_, "view." + stmt.view,
                                           table->file, layout, options));
  MSV_RETURN_IF_ERROR(catalog_->AddView(info));
  std::string out = "created materialized sample view " + stmt.view +
                    " over " + stmt.table + " (" +
                    std::to_string(view->base_records()) + " rows, height " +
                    std::to_string(view->tree()->meta().height) + ")\n";
  {
    MutexLock lock(views_mu_);
    open_views_[stmt.view] = std::move(view);
  }
  return out;
}

Result<core::MaterializedSampleView*> Executor::GetView(
    const std::string& name) {
  // Held across the open so two readers racing on a cold view cannot
  // both open it (the loser's handle would invalidate the winner's raw
  // pointer). Opens are rare; the hit path is one map lookup.
  MutexLock lock(views_mu_);
  auto it = open_views_.find(name);
  if (it != open_views_.end()) return it->second.get();
  const ViewInfo* info = catalog_->FindView(name);
  if (info == nullptr) {
    return Status::NotFound("no such view: " + name);
  }
  MSV_ASSIGN_OR_RETURN(storage::RecordLayout layout,
                       catalog_->ViewLayout(*info));
  core::MaterializedSampleView::Options options;
  options.build.key_dims = static_cast<uint32_t>(info->index_columns.size());
  MSV_ASSIGN_OR_RETURN(
      std::unique_ptr<core::MaterializedSampleView> view,
      core::MaterializedSampleView::Open(env_, "view." + name, layout,
                                         options));
  core::MaterializedSampleView* raw = view.get();
  open_views_[name] = std::move(view);
  return raw;
}

Result<sampling::RangeQuery> Executor::BuildQuery(
    const ViewInfo& view,
    const std::vector<BetweenPredicate>& predicates) const {
  sampling::RangeQuery query;
  query.dims = view.index_columns.size();
  for (const BetweenPredicate& pred : predicates) {
    bool found = false;
    for (size_t d = 0; d < view.index_columns.size(); ++d) {
      if (view.index_columns[d] == pred.column) {
        query.bounds[d] = sampling::Interval{pred.lo, pred.hi};
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotSupported(
          "predicate on non-indexed column '" + pred.column +
          "' (view indexes: sample from an indexed range, then filter)");
    }
  }
  return query;
}

Result<std::string> Executor::ExecSample(const SampleStmt& stmt) {
  MSV_ASSIGN_OR_RETURN(core::MaterializedSampleView* view,
                       GetView(stmt.view));
  const ViewInfo* info = catalog_->FindView(stmt.view);
  MSV_ASSIGN_OR_RETURN(sampling::RangeQuery query,
                       BuildQuery(*info, stmt.predicates));
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<core::ViewSampler> sampler,
                       view->Sample(query, ++next_seed_));

  const TableInfo* table = catalog_->FindTable(info->table);
  const TableSchema& schema = *table->schema;

  std::ostringstream out;
  // Header row.
  for (size_t c = 0; c < schema.columns.size(); ++c) {
    out << (c ? " | " : "") << schema.columns[c].name;
  }
  out << "\n";
  uint64_t emitted = 0;
  while (!sampler->done() && emitted < stmt.limit) {
    MSV_ASSIGN_OR_RETURN(sampling::SampleBatch batch, sampler->NextBatch());
    for (size_t i = 0; i < batch.count() && emitted < stmt.limit; ++i) {
      const char* rec = batch.record(i);
      for (size_t c = 0; c < schema.columns.size(); ++c) {
        const Column& column = schema.columns[c];
        out << (c ? " | " : "");
        if (column.type == ColumnType::kDouble) {
          out << FormatDouble(schema.Value(rec, column));
        } else {
          out << static_cast<uint64_t>(schema.Value(rec, column));
        }
      }
      out << "\n";
      ++emitted;
    }
  }
  out << "(" << emitted << " random sample" << (emitted == 1 ? "" : "s")
      << ")\n";
  obs::ThreadStatementLedger().samples = emitted;
  return out.str();
}

Result<std::string> Executor::ExecEstimate(const EstimateStmt& stmt) {
  MSV_ASSIGN_OR_RETURN(core::MaterializedSampleView* view,
                       GetView(stmt.view));
  const ViewInfo* info = catalog_->FindView(stmt.view);
  MSV_ASSIGN_OR_RETURN(sampling::RangeQuery query,
                       BuildQuery(*info, stmt.predicates));

  const TableInfo* table = catalog_->FindTable(info->table);
  const TableSchema& schema = *table->schema;
  const Column* column = nullptr;
  if (stmt.agg != EstimateStmt::Agg::kCount) {
    column = schema.Find(stmt.column);
    if (column == nullptr) {
      return Status::InvalidArgument("no such column: " + stmt.column);
    }
  }

  const bool bounded = stmt.within_pct > 0.0 || stmt.within_ms > 0;
  if (stmt.within_pct > 0.0 && !stmt.group_by.empty()) {
    return Status::NotSupported(
        "WITHIN % with GROUP BY is not supported (no single interval to "
        "bound); use a WITHIN ... MS deadline instead");
  }
  // The WITHIN budget starts before the first I/O: it covers sampling,
  // not planning. Wall clock plus this thread's modeled-disk delta.
  const uint64_t disk_before = io::ThreadDiskBusyUs();
  sampling::StoppingRule::Options rule_options;
  rule_options.rel_error_pct = stmt.within_pct;
  rule_options.deadline_us = stmt.within_ms * 1000;
  rule_options.extra_elapsed_us = [disk_before] {
    return io::ThreadDiskBusyUs() - disk_before;
  };
  const sampling::StoppingRule rule(rule_options);
  // An explicit SAMPLES n stays a hard cap; the historical default cap
  // of 1000 is lifted when a WITHIN bound decides when to stop.
  uint64_t target = stmt.samples;
  if (bounded && !stmt.samples_set) {
    target = std::numeric_limits<uint64_t>::max();
  }

  // Population of the predicate from the tree's internal-node counts,
  // plus the matching delta records.
  MSV_ASSIGN_OR_RETURN(uint64_t base_population,
                       view->tree()->EstimateMatchCount(query));
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<core::ViewSampler> sampler,
                       view->Sample(query, ++next_seed_));

  if (!stmt.group_by.empty()) {
    const Column* group_column = schema.Find(stmt.group_by);
    if (group_column == nullptr) {
      return Status::InvalidArgument("no such column: " + stmt.group_by);
    }
    if (group_column->type != ColumnType::kUint64) {
      return Status::NotSupported("GROUP BY needs an integer column");
    }
    sampling::GroupedAggregator agg(AccessorFor(group_column),
                                    AccessorFor(column), base_population,
                                    stmt.confidence);
    bool deadline_hit = false;
    while (!sampler->done() && agg.samples_seen() < target) {
      MSV_ASSIGN_OR_RETURN(sampling::SampleBatch batch, sampler->NextBatch());
      agg.Consume(batch);
      if (rule.active() && rule.Check(sampling::Estimate{}) ==
                               sampling::StoppingRule::Verdict::kDeadlineHit) {
        deadline_hit = true;
        break;
      }
    }
    auto groups = agg.Groups();
    std::ostringstream out;
    const size_t shown = std::min<size_t>(groups.size(), 12);
    for (size_t i = 0; i < shown; ++i) {
      const auto& g = groups[i];
      out << stmt.group_by << "=" << g.group << "  ";
      switch (stmt.agg) {
        case EstimateStmt::Agg::kAvg:
          out << "AVG(" << stmt.column << ") = " << FormatDouble(g.avg.value)
              << " +/- " << FormatDouble(g.avg.half_width);
          break;
        case EstimateStmt::Agg::kSum:
          out << "SUM(" << stmt.column << ") = " << FormatDouble(g.sum.value)
              << " +/- " << FormatDouble(g.sum.half_width);
          break;
        case EstimateStmt::Agg::kCount:
          out << "COUNT(*) = " << FormatDouble(g.count.value) << " +/- "
              << FormatDouble(g.count.half_width);
          break;
      }
      out << "  (" << g.samples << " samples)\n";
    }
    if (groups.size() > shown) {
      out << "... and " << groups.size() - shown << " more groups\n";
    }
    out << "(" << groups.size() << " groups, " << agg.samples_seen()
        << " samples total)\n";
    obs::StatementLedger& ledger = obs::ThreadStatementLedger();
    ledger.samples = agg.samples_seen();
    if (bounded) {
      ledger.deadline_us = stmt.within_ms * 1000;
      ledger.elapsed_us = rule.ElapsedUs();
      ledger.is_partial = deadline_hit && !sampler->done();
      if (ledger.is_partial) {
        out << "bound: deadline " << stmt.within_ms << " ms hit after "
            << agg.samples_seen() << " samples (partial)\n";
      }
    }
    return out.str();
  }

  if (stmt.agg == EstimateStmt::Agg::kCount) {
    std::ostringstream out;
    out << "COUNT(*) ~ " << base_population
        << " (from index counts; delta adds <= " << view->delta_records()
        << ")\n";
    // COUNT(*) is answered from the index counts without sampling: any
    // WITHIN bound is trivially met and the result is never partial.
    obs::StatementLedger& ledger = obs::ThreadStatementLedger();
    ledger.has_estimate = true;
    ledger.estimate_value = static_cast<double>(base_population);
    ledger.confidence = stmt.confidence;
    ledger.target_rel_pct = stmt.within_pct;
    ledger.deadline_us = stmt.within_ms * 1000;
    if (bounded) ledger.elapsed_us = rule.ElapsedUs();
    return out.str();
  }

  sampling::OnlineAggregator agg(AccessorFor(column), base_population,
                                 stmt.confidence);
  // The stopping rule is checked once per batch: a deadline can overshoot
  // by at most one batch's cost, an error bound by one batch of samples.
  auto verdict = sampling::StoppingRule::Verdict::kContinue;
  while (!sampler->done() && agg.samples_seen() < target) {
    MSV_ASSIGN_OR_RETURN(sampling::SampleBatch batch, sampler->NextBatch());
    agg.Consume(batch);
    if (rule.active()) {
      verdict = rule.Check(stmt.agg == EstimateStmt::Agg::kAvg ? agg.Avg()
                                                               : agg.Sum());
      if (verdict != sampling::StoppingRule::Verdict::kContinue) break;
    }
  }

  std::ostringstream out;
  obs::StatementLedger& ledger = obs::ThreadStatementLedger();
  sampling::Estimate e =
      stmt.agg == EstimateStmt::Agg::kAvg ? agg.Avg() : agg.Sum();
  out << (stmt.agg == EstimateStmt::Agg::kAvg ? "AVG(" : "SUM(")
      << stmt.column << ") = " << FormatDouble(e.value) << " +/- "
      << FormatDouble(e.half_width) << " ("
      << static_cast<int>(stmt.confidence * 100) << "% CI, " << e.samples
      << " samples)\n";
  ledger.ci_half_width = e.half_width;
  ledger.samples = agg.samples_seen();
  ledger.has_estimate = true;
  ledger.estimate_value = e.value;
  ledger.confidence = stmt.confidence;
  if (bounded) {
    ledger.target_rel_pct = stmt.within_pct;
    ledger.deadline_us = stmt.within_ms * 1000;
    ledger.elapsed_us = rule.ElapsedUs();
    // A deadline stop with samples still in the stream is a partial
    // result: the CI is valid over what was consumed, just wider than an
    // uninterrupted run would have reached.
    ledger.is_partial =
        verdict == sampling::StoppingRule::Verdict::kDeadlineHit &&
        !sampler->done();
    const double achieved_pct =
        e.value != 0.0 ? 100.0 * e.half_width / std::fabs(e.value) : 0.0;
    if (ledger.is_partial) {
      out << "bound: deadline " << stmt.within_ms << " ms hit after "
          << e.samples << " samples (partial, achieved +/- "
          << FormatDouble(achieved_pct) << "%)\n";
    } else if (verdict == sampling::StoppingRule::Verdict::kErrorBoundMet) {
      out << "bound: within " << FormatDouble(stmt.within_pct)
          << "% met after " << e.samples << " samples (achieved +/- "
          << FormatDouble(achieved_pct) << "%)\n";
    } else {
      out << "bound: stream complete after " << e.samples
          << " samples (exact answer)\n";
    }
  }
  return out.str();
}

Result<std::string> Executor::ExecInsert(const InsertStmt& stmt) {
  MSV_ASSIGN_OR_RETURN(core::MaterializedSampleView* view,
                       GetView(stmt.view));
  // Generate fresh SALE rows (row ids continue after the base).
  Pcg64 rng(stmt.seed);
  std::string batch;
  char buf[storage::SaleRecord::kSize];
  uint64_t next_row = view->base_records() + view->delta_records();
  for (uint64_t i = 0; i < stmt.rows; ++i) {
    storage::SaleRecord rec;
    rec.day = rng.DoubleInRange(0, 100000.0);
    rec.amount = rng.DoubleInRange(0, 10000.0);
    rec.cust = rng.Below(1'000'000);
    rec.part = rng.Below(200'000);
    rec.supp = rng.Below(10'000);
    rec.row_id = next_row + i;
    rec.EncodeTo(buf);
    batch.append(buf, sizeof(buf));
  }
  MSV_RETURN_IF_ERROR(view->Insert(batch.data(), stmt.rows));
  std::ostringstream out;
  out << "inserted " << stmt.rows << " rows into " << stmt.view
      << " (delta now " << view->delta_records() << " rows"
      << (view->NeedsRebuild() ? "; REBUILD recommended" : "") << ")\n";
  return out.str();
}

Result<std::string> Executor::ExecRebuild(const RebuildStmt& stmt) {
  MSV_ASSIGN_OR_RETURN(core::MaterializedSampleView* view,
                       GetView(stmt.view));
  MSV_RETURN_IF_ERROR(view->Rebuild());
  return "rebuilt " + stmt.view + " (" +
         std::to_string(view->base_records()) +
         " rows in the base tree, empty delta)\n";
}

Result<std::string> Executor::ExecDropView(const DropViewStmt& stmt) {
  if (catalog_->FindView(stmt.view) == nullptr) {
    return Status::NotFound("no such view: " + stmt.view);
  }
  {
    MutexLock lock(views_mu_);
    open_views_.erase(stmt.view);
  }
  MSV_RETURN_IF_ERROR(catalog_->DropView(stmt.view));
  core::MaterializedSampleView::DropFiles(env_, "view." + stmt.view)
      .IgnoreError();  // best-effort file cleanup
  return "dropped view " + stmt.view + "\n";
}

Result<std::string> Executor::ExecShow(const ShowStmt& stmt) {
  std::ostringstream out;
  if (stmt.views) {
    for (const std::string& name : catalog_->ViewNames()) {
      const ViewInfo* view = catalog_->FindView(name);
      out << name << " ON " << view->table << " INDEX ON";
      for (const std::string& column : view->index_columns) {
        out << " " << column;
      }
      out << "\n";
    }
    if (catalog_->ViewNames().empty()) out << "(no views)\n";
  } else {
    for (const std::string& name : catalog_->TableNames()) {
      out << name << "\n";
    }
    if (catalog_->TableNames().empty()) out << "(no tables)\n";
  }
  return out.str();
}

}  // namespace msv::query
