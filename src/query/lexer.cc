#include "query/lexer.h"

#include <cctype>
#include <cstdlib>
#include <set>

namespace msv::query {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "CREATE", "MATERIALIZED", "SAMPLE",   "VIEW",    "AS",      "SELECT",
      "FROM",   "INDEX",        "ON",       "WHERE",   "BETWEEN", "AND",
      "LIMIT",  "ESTIMATE",     "AVG",      "SUM",     "COUNT",   "SAMPLES",
      "INSERT", "INTO",         "ROWS",     "SEED",    "REBUILD", "DROP",
      "SHOW",   "VIEWS",        "GENERATE", "TABLE",   "TABLES",  "CONFIDENCE",
      "GROUP",  "BY",           "EXPLAIN",  "ANALYZE", "WITHIN",  "MS",
  };
  return kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;  // -- comment
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word = input.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
               ((c == '-' || c == '+') && i + 1 < n &&
                (std::isdigit(static_cast<unsigned char>(input[i + 1])) ||
                 input[i + 1] == '.'))) {
      char* end = nullptr;
      token.type = TokenType::kNumber;
      token.number = std::strtod(input.c_str() + i, &end);
      if (end == input.c_str() + i) {
        return Status::InvalidArgument("bad number at offset " +
                                       std::to_string(i));
      }
      token.text = input.substr(i, static_cast<size_t>(end - input.c_str()) - i);
      i = static_cast<size_t>(end - input.c_str());
    } else if (c == '(' || c == ')' || c == ',' || c == ';' || c == '*' ||
               c == '=' || c == '%') {
      token.type = TokenType::kSymbol;
      token.text = std::string(1, c);
      ++i;
    } else {
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' at offset " + std::to_string(i));
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.type = TokenType::kEnd;
  end_token.position = n;
  tokens.push_back(end_token);
  return tokens;
}

}  // namespace msv::query
