#include "query/session_pool.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"

namespace msv::query {

SessionPool::SessionPool(Executor* executor, size_t threads)
    : executor_(executor) {
  threads = std::max<size_t>(1, threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back(&SessionPool::WorkerLoop, this, i);
  }
}

SessionPool::~SessionPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  job_cv_.SignalAll();
  for (std::thread& w : workers_) w.join();
}

uint64_t SessionPool::Submit(std::string script) {
  uint64_t ticket;
  {
    MutexLock lock(mu_);
    ticket = next_ticket_++;
    jobs_.emplace(ticket, Job{std::move(script), std::nullopt});
    queue_.push_back(ticket);
  }
  job_cv_.Signal();
  return ticket;
}

Result<std::string> SessionPool::Wait(uint64_t ticket) {
  MutexLock lock(mu_);
  auto it = jobs_.find(ticket);
  MSV_CHECK_MSG(it != jobs_.end(), "unknown or already-collected ticket");
  // Hold a reference, not the iterator: done_cv_ releases mu_ while
  // blocked, and a concurrent Submit() may rehash jobs_, invalidating
  // iterators. References to values survive a rehash.
  Job& job = it->second;
  while (!job.result.has_value()) {
    done_cv_.Wait(mu_);
  }
  Result<std::string> result = std::move(*job.result);
  jobs_.erase(ticket);
  return result;
}

void SessionPool::WorkerLoop(size_t session_index) {
  obs::SetThreadLabel("session-" + std::to_string(session_index));
  for (;;) {
    uint64_t ticket;
    std::string script;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) {
        job_cv_.Wait(mu_);
      }
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      ticket = queue_.front();
      queue_.pop_front();
      script = jobs_.at(ticket).script;
    }
    Result<std::string> result = executor_->Run(script);
    {
      MutexLock lock(mu_);
      jobs_.at(ticket).result = std::move(result);
    }
    done_cv_.SignalAll();
  }
}

std::vector<Result<std::string>> SessionPool::RunScripts(
    Executor* executor, const std::vector<std::string>& scripts,
    size_t threads) {
  SessionPool pool(executor, threads);
  std::vector<uint64_t> tickets;
  tickets.reserve(scripts.size());
  for (const std::string& s : scripts) tickets.push_back(pool.Submit(s));
  std::vector<Result<std::string>> results;
  results.reserve(tickets.size());
  for (uint64_t t : tickets) results.push_back(pool.Wait(t));
  return results;
}

}  // namespace msv::query
