#include "query/session_pool.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "util/logging.h"

namespace msv::query {

SessionPool::SessionPool(Executor* executor, size_t threads)
    : executor_(executor) {
  threads = std::max<size_t>(1, threads);
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back(&SessionPool::WorkerLoop, this, i);
  }
}

SessionPool::~SessionPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

uint64_t SessionPool::Submit(std::string script) {
  uint64_t ticket;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ticket = next_ticket_++;
    jobs_.emplace(ticket, Job{std::move(script), std::nullopt});
    queue_.push_back(ticket);
  }
  job_cv_.notify_one();
  return ticket;
}

Result<std::string> SessionPool::Wait(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(ticket);
  MSV_CHECK_MSG(it != jobs_.end(), "unknown or already-collected ticket");
  done_cv_.wait(lock, [&] { return it->second.result.has_value(); });
  Result<std::string> result = std::move(*it->second.result);
  jobs_.erase(it);
  return result;
}

void SessionPool::WorkerLoop(size_t session_index) {
  obs::SetThreadLabel("session-" + std::to_string(session_index));
  for (;;) {
    uint64_t ticket;
    std::string script;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      ticket = queue_.front();
      queue_.pop_front();
      script = jobs_.at(ticket).script;
    }
    Result<std::string> result = executor_->Run(script);
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.at(ticket).result = std::move(result);
    }
    done_cv_.notify_all();
  }
}

std::vector<Result<std::string>> SessionPool::RunScripts(
    Executor* executor, const std::vector<std::string>& scripts,
    size_t threads) {
  SessionPool pool(executor, threads);
  std::vector<uint64_t> tickets;
  tickets.reserve(scripts.size());
  for (const std::string& s : scripts) tickets.push_back(pool.Submit(s));
  std::vector<Result<std::string>> results;
  results.reserve(tickets.size());
  for (uint64_t t : tickets) results.push_back(pool.Wait(t));
  return results;
}

}  // namespace msv::query
