// Recursive-descent parser for MSVQL statements.

#ifndef MSV_QUERY_PARSER_H_
#define MSV_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "query/ast.h"
#include "util/result.h"

namespace msv::query {

/// Parses a script of `;`-separated statements.
Result<std::vector<Statement>> Parse(const std::string& input);

/// Parses exactly one statement (trailing `;` optional).
Result<Statement> ParseOne(const std::string& input);

}  // namespace msv::query

#endif  // MSV_QUERY_PARSER_H_
