#include "query/parser.h"

#include "query/lexer.h"

namespace msv::query {

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> ParseScript() {
    std::vector<Statement> statements;
    while (!Peek().IsSymbol(';') && Peek().type != TokenType::kEnd) {
      MSV_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      statements.push_back(std::move(stmt));
      // Consume one or more separators.
      if (!Peek().IsSymbol(';') && Peek().type != TokenType::kEnd) {
        return Error("expected ';' after statement");
      }
      while (Peek().IsSymbol(';')) Advance();
    }
    return statements;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " near offset " +
                                   std::to_string(Peek().position) +
                                   (Peek().text.empty()
                                        ? ""
                                        : " ('" + Peek().text + "')"));
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected " + what);
    }
    return Advance().text;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!Peek().IsKeyword(kw)) return Error("expected " + kw);
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(char c) {
    if (!Peek().IsSymbol(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<double> ExpectNumber(const std::string& what) {
    if (Peek().type != TokenType::kNumber) return Error("expected " + what);
    return Advance().number;
  }

  Result<uint64_t> ExpectCount(const std::string& what) {
    MSV_ASSIGN_OR_RETURN(double v, ExpectNumber(what));
    if (v < 0 || v != static_cast<double>(static_cast<uint64_t>(v))) {
      return Status::InvalidArgument(what + " must be a non-negative integer");
    }
    return static_cast<uint64_t>(v);
  }

  Result<std::vector<BetweenPredicate>> ParseWhere() {
    std::vector<BetweenPredicate> predicates;
    if (!Peek().IsKeyword("WHERE")) return predicates;
    Advance();
    for (;;) {
      BetweenPredicate pred;
      MSV_ASSIGN_OR_RETURN(pred.column, ExpectIdentifier("column name"));
      MSV_RETURN_IF_ERROR(ExpectKeyword("BETWEEN"));
      MSV_ASSIGN_OR_RETURN(pred.lo, ExpectNumber("lower bound"));
      MSV_RETURN_IF_ERROR(ExpectKeyword("AND"));
      MSV_ASSIGN_OR_RETURN(pred.hi, ExpectNumber("upper bound"));
      predicates.push_back(pred);
      if (!Peek().IsKeyword("AND")) break;
      Advance();
    }
    return predicates;
  }

  Result<Statement> ParseStatement() {
    if (Peek().IsKeyword("EXPLAIN")) return ParseExplain();
    if (Peek().IsKeyword("GENERATE")) return ParseGenerate();
    if (Peek().IsKeyword("CREATE")) return ParseCreate();
    if (Peek().IsKeyword("SAMPLE")) return ParseSample();
    if (Peek().IsKeyword("ESTIMATE")) return ParseEstimate();
    if (Peek().IsKeyword("INSERT")) return ParseInsert();
    if (Peek().IsKeyword("REBUILD")) return ParseRebuild();
    if (Peek().IsKeyword("DROP")) return ParseDrop();
    if (Peek().IsKeyword("SHOW")) return ParseShow();
    return Error("expected a statement");
  }

  Result<Statement> ParseExplain() {
    Advance();  // EXPLAIN
    ExplainStmt stmt;
    if (Peek().IsKeyword("ANALYZE")) {
      stmt.analyze = true;
      Advance();
    }
    if (Peek().IsKeyword("EXPLAIN")) return Error("cannot nest EXPLAIN");
    MSV_ASSIGN_OR_RETURN(Statement inner, ParseStatement());
    stmt.inner = std::make_shared<Statement>(std::move(inner));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseGenerate() {
    Advance();  // GENERATE
    MSV_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    GenerateTableStmt stmt;
    MSV_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    MSV_RETURN_IF_ERROR(ExpectKeyword("ROWS"));
    MSV_ASSIGN_OR_RETURN(stmt.rows, ExpectCount("row count"));
    if (Peek().IsKeyword("SEED")) {
      Advance();
      MSV_ASSIGN_OR_RETURN(stmt.seed, ExpectCount("seed"));
    }
    return Statement(stmt);
  }

  Result<Statement> ParseCreate() {
    Advance();  // CREATE
    MSV_RETURN_IF_ERROR(ExpectKeyword("MATERIALIZED"));
    MSV_RETURN_IF_ERROR(ExpectKeyword("SAMPLE"));
    MSV_RETURN_IF_ERROR(ExpectKeyword("VIEW"));
    CreateViewStmt stmt;
    MSV_ASSIGN_OR_RETURN(stmt.view, ExpectIdentifier("view name"));
    MSV_RETURN_IF_ERROR(ExpectKeyword("AS"));
    MSV_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    MSV_RETURN_IF_ERROR(ExpectSymbol('*'));
    MSV_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    MSV_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    MSV_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    MSV_RETURN_IF_ERROR(ExpectKeyword("ON"));
    for (;;) {
      MSV_ASSIGN_OR_RETURN(std::string col,
                           ExpectIdentifier("index column"));
      stmt.index_columns.push_back(col);
      if (!Peek().IsSymbol(',')) break;
      Advance();
    }
    return Statement(stmt);
  }

  Result<Statement> ParseSample() {
    Advance();  // SAMPLE
    MSV_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SampleStmt stmt;
    MSV_ASSIGN_OR_RETURN(stmt.view, ExpectIdentifier("view name"));
    MSV_ASSIGN_OR_RETURN(stmt.predicates, ParseWhere());
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      MSV_ASSIGN_OR_RETURN(stmt.limit, ExpectCount("limit"));
    }
    return Statement(stmt);
  }

  Result<Statement> ParseEstimate() {
    Advance();  // ESTIMATE
    EstimateStmt stmt;
    if (Peek().IsKeyword("AVG")) {
      stmt.agg = EstimateStmt::Agg::kAvg;
    } else if (Peek().IsKeyword("SUM")) {
      stmt.agg = EstimateStmt::Agg::kSum;
    } else if (Peek().IsKeyword("COUNT")) {
      stmt.agg = EstimateStmt::Agg::kCount;
    } else {
      return Error("expected AVG, SUM or COUNT");
    }
    Advance();
    MSV_RETURN_IF_ERROR(ExpectSymbol('('));
    if (stmt.agg == EstimateStmt::Agg::kCount) {
      MSV_RETURN_IF_ERROR(ExpectSymbol('*'));
    } else {
      MSV_ASSIGN_OR_RETURN(stmt.column, ExpectIdentifier("column"));
    }
    MSV_RETURN_IF_ERROR(ExpectSymbol(')'));
    MSV_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    MSV_ASSIGN_OR_RETURN(stmt.view, ExpectIdentifier("view name"));
    MSV_ASSIGN_OR_RETURN(stmt.predicates, ParseWhere());
    if (Peek().IsKeyword("GROUP")) {
      Advance();
      MSV_RETURN_IF_ERROR(ExpectKeyword("BY"));
      MSV_ASSIGN_OR_RETURN(stmt.group_by, ExpectIdentifier("group column"));
    }
    if (Peek().IsKeyword("SAMPLES")) {
      Advance();
      MSV_ASSIGN_OR_RETURN(stmt.samples, ExpectCount("sample count"));
      stmt.samples_set = true;
    }
    if (Peek().IsKeyword("CONFIDENCE")) {
      Advance();
      MSV_ASSIGN_OR_RETURN(stmt.confidence, ExpectNumber("confidence"));
      if (stmt.confidence <= 0 || stmt.confidence >= 1) {
        return Status::InvalidArgument("confidence must be in (0, 1)");
      }
    }
    // WITHIN <pct>% (error bound) and/or WITHIN <t> MS (deadline); both
    // may appear, in either order — whichever fires first stops sampling.
    while (Peek().IsKeyword("WITHIN")) {
      Advance();
      MSV_ASSIGN_OR_RETURN(double bound, ExpectNumber("WITHIN bound"));
      if (Peek().IsSymbol('%')) {
        Advance();
        if (bound <= 0 || bound >= 100) {
          return Status::InvalidArgument(
              "WITHIN error bound must be in (0, 100) percent");
        }
        if (stmt.within_pct != 0) {
          return Error("duplicate WITHIN % clause");
        }
        stmt.within_pct = bound;
      } else if (Peek().IsKeyword("MS")) {
        Advance();
        if (bound <= 0 || bound != static_cast<double>(
                                       static_cast<uint64_t>(bound))) {
          return Status::InvalidArgument(
              "WITHIN deadline must be a positive integer of milliseconds");
        }
        if (stmt.within_ms != 0) {
          return Error("duplicate WITHIN ... MS clause");
        }
        stmt.within_ms = static_cast<uint64_t>(bound);
      } else {
        return Error("expected '%' or MS after WITHIN bound");
      }
    }
    return Statement(stmt);
  }

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    MSV_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    MSV_ASSIGN_OR_RETURN(stmt.view, ExpectIdentifier("view name"));
    MSV_RETURN_IF_ERROR(ExpectKeyword("ROWS"));
    MSV_ASSIGN_OR_RETURN(stmt.rows, ExpectCount("row count"));
    if (Peek().IsKeyword("SEED")) {
      Advance();
      MSV_ASSIGN_OR_RETURN(stmt.seed, ExpectCount("seed"));
    }
    return Statement(stmt);
  }

  Result<Statement> ParseRebuild() {
    Advance();  // REBUILD
    RebuildStmt stmt;
    MSV_ASSIGN_OR_RETURN(stmt.view, ExpectIdentifier("view name"));
    return Statement(stmt);
  }

  Result<Statement> ParseDrop() {
    Advance();  // DROP
    MSV_RETURN_IF_ERROR(ExpectKeyword("VIEW"));
    DropViewStmt stmt;
    MSV_ASSIGN_OR_RETURN(stmt.view, ExpectIdentifier("view name"));
    return Statement(stmt);
  }

  Result<Statement> ParseShow() {
    Advance();  // SHOW
    ShowStmt stmt;
    if (Peek().IsKeyword("VIEWS")) {
      stmt.views = true;
    } else if (Peek().IsKeyword("TABLES")) {
      stmt.views = false;
    } else {
      return Error("expected VIEWS or TABLES");
    }
    Advance();
    return Statement(stmt);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Statement>> Parse(const std::string& input) {
  MSV_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  ParserImpl parser(std::move(tokens));
  return parser.ParseScript();
}

Result<Statement> ParseOne(const std::string& input) {
  MSV_ASSIGN_OR_RETURN(std::vector<Statement> statements, Parse(input));
  if (statements.size() != 1) {
    return Status::InvalidArgument("expected exactly one statement, got " +
                                   std::to_string(statements.size()));
  }
  return std::move(statements[0]);
}

}  // namespace msv::query
