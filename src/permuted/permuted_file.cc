#include "permuted/permuted_file.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/coding.h"
#include "util/logging.h"
#include "util/random.h"

namespace msv::permuted {

namespace {
using storage::HeapFile;
using storage::HeapFileWriter;
}  // namespace

Status BuildPermutedFile(io::Env* env, const std::string& input_name,
                         const std::string& output_name,
                         const PermuteOptions& options) {
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> input,
                       HeapFile::Open(env, input_name));
  const size_t record_size = input->record_size();
  const size_t keyed_size = record_size + sizeof(uint64_t);

  // Pass A: prepend a random sort key to every record.
  const std::string keyed_name = output_name + ".keyed";
  {
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFileWriter> writer,
                         HeapFileWriter::Create(env, keyed_name, keyed_size));
    Pcg64 rng(options.seed);
    std::vector<char> buf(keyed_size);
    auto scanner = input->NewScanner();
    for (;;) {
      MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
      if (rec == nullptr) break;
      EncodeFixed64(buf.data(), rng.Next());
      std::memcpy(buf.data() + sizeof(uint64_t), rec, record_size);
      MSV_RETURN_IF_ERROR(writer->Append(buf.data()));
    }
    MSV_RETURN_IF_ERROR(writer->Finish());
  }
  input.reset();

  // External sort on the random key (TPMMS).
  const std::string sorted_name = output_name + ".sorted";
  extsort::SortOptions sort_options = options.sort;
  sort_options.temp_prefix = output_name + ".sortrun";
  MSV_RETURN_IF_ERROR(extsort::ExternalSort(
      env, keyed_name, sorted_name,
      [](const char* a, const char* b) {
        return DecodeFixed64(a) < DecodeFixed64(b);
      },
      sort_options));
  env->DeleteFile(keyed_name).IgnoreError();  // best-effort scratch cleanup

  // Pass B: strip the key while writing the final file (the paper notes
  // the key is removed during the final TPMMS pass; we keep the sorter
  // generic and strip in a separate sequential pass).
  {
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> sorted,
                         HeapFile::Open(env, sorted_name));
    MSV_ASSIGN_OR_RETURN(
        std::unique_ptr<HeapFileWriter> writer,
        HeapFileWriter::Create(env, output_name, record_size));
    auto scanner = sorted->NewScanner();
    for (;;) {
      MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
      if (rec == nullptr) break;
      MSV_RETURN_IF_ERROR(writer->Append(rec + sizeof(uint64_t)));
    }
    MSV_RETURN_IF_ERROR(writer->Finish());
  }
  env->DeleteFile(sorted_name).IgnoreError();  // best-effort scratch cleanup
  return Status::OK();
}

PermutedFileSampler::PermutedFileSampler(const storage::HeapFile* file,
                                         storage::RecordLayout layout,
                                         sampling::RangeQuery query,
                                         size_t chunk_bytes)
    : file_(file),
      layout_(std::move(layout)),
      query_(query),
      scanner_(file->NewScanner(chunk_bytes)),
      records_per_pull_(
          std::max<size_t>(1, chunk_bytes / file->record_size())) {
  MSV_CHECK(query_.Validate(layout_).ok());
  done_ = file_->record_count() == 0;
}

Result<sampling::SampleBatch> PermutedFileSampler::NextBatch() {
  sampling::SampleBatch batch;
  batch.record_size = file_->record_size();
  if (done_) return batch;
  for (size_t i = 0; i < records_per_pull_; ++i) {
    MSV_ASSIGN_OR_RETURN(const char* rec, scanner_.Next());
    if (rec == nullptr) {
      done_ = true;
      break;
    }
    ++scanned_;
    if (query_.Matches(layout_, rec)) {
      batch.Append(rec);
      ++returned_;
    }
  }
  return batch;
}

}  // namespace msv::permuted
