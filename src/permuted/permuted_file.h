// Randomly permuted file baseline (paper Sec. 2.1).
//
// Build: assign each record a uniform 64-bit key, external-sort on it, and
// strip the key — one external sort, exactly the TPMMS procedure the paper
// describes. Sample: scan the file sequentially and return the records
// matching the predicate; because the stored order is a uniform random
// permutation, every scan prefix yields a true online random sample.

#ifndef MSV_PERMUTED_PERMUTED_FILE_H_
#define MSV_PERMUTED_PERMUTED_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "extsort/external_sorter.h"
#include "io/env.h"
#include "sampling/sample_stream.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "util/result.h"

namespace msv::permuted {

struct PermuteOptions {
  uint64_t seed = 1;
  extsort::SortOptions sort;
};

/// Permutes heap file `input_name` into heap file `output_name` (same
/// record size, same multiset of records, uniformly random order).
Status BuildPermutedFile(io::Env* env, const std::string& input_name,
                         const std::string& output_name,
                         const PermuteOptions& options = {});

/// Online sampler over a permuted file: sequential scan + filter.
class PermutedFileSampler : public sampling::SampleStream {
 public:
  /// `chunk_bytes` is the amount scanned per NextBatch() pull.
  PermutedFileSampler(const storage::HeapFile* file,
                      storage::RecordLayout layout,
                      sampling::RangeQuery query,
                      size_t chunk_bytes = 1 << 20);

  Result<sampling::SampleBatch> NextBatch() override;
  bool done() const override { return done_; }
  uint64_t samples_returned() const override { return returned_; }
  std::string name() const override { return "permuted"; }

  /// Records scanned so far (matching or not).
  uint64_t records_scanned() const { return scanned_; }

 private:
  const storage::HeapFile* file_;
  storage::RecordLayout layout_;
  sampling::RangeQuery query_;
  storage::HeapFile::Scanner scanner_;
  size_t records_per_pull_;
  uint64_t scanned_ = 0;
  uint64_t returned_ = 0;
  bool done_ = false;
};

}  // namespace msv::permuted

#endif  // MSV_PERMUTED_PERMUTED_FILE_H_
