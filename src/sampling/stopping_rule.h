// Bounded-error / bounded-time stopping rules for online estimation
// (BlinkDB-style `ESTIMATE ... WITHIN 2%` / `WITHIN 500ms` semantics).
//
// The sampling loop that feeds an OnlineAggregator checks the rule after
// every batch:
//
//   * error bound  — stop once the CLT confidence interval's half-width
//     has shrunk to within `rel_error_pct` percent of the point estimate
//     (after a warm-up of `min_samples`, below which the variance
//     estimate and hence the interval are not trustworthy);
//   * time bound   — stop once the query's consumed budget reaches the
//     deadline. The budget is wall-clock time plus whatever extra cost
//     the caller accounts through `extra_elapsed_us` — the executor
//     passes the per-thread modeled-disk-µs delta (io::ThreadDiskBusyUs),
//     so deadlines hold against the simulated disk, where the real wall
//     clock barely moves.
//
// A deadline stop yields a *partial* result: the estimate is still an
// unbiased point estimate with a valid CI over the samples consumed so
// far (every prefix of the stream is a uniform sample), just wider than
// requested. The caller tags it `is_partial` and reports the achieved
// interval.

#ifndef MSV_SAMPLING_STOPPING_RULE_H_
#define MSV_SAMPLING_STOPPING_RULE_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "sampling/online_aggregator.h"

namespace msv::sampling {

class StoppingRule {
 public:
  struct Options {
    /// Stop when half_width <= |value| * rel_error_pct / 100. 0 disables
    /// the error bound.
    double rel_error_pct = 0.0;
    /// Stop when ElapsedUs() >= deadline_us. 0 disables the deadline.
    uint64_t deadline_us = 0;
    /// CLT warm-up: the error bound may not fire below this many samples
    /// (a 2-sample run with s ~ 0 would otherwise stop immediately with
    /// a meaningless interval). Deadlines are not gated — a deadline is
    /// a hard budget.
    uint64_t min_samples = 30;
    /// Extra elapsed budget in µs, added to the wall clock — the
    /// executor supplies the per-thread modeled-disk delta here. May be
    /// null.
    std::function<uint64_t()> extra_elapsed_us;
  };

  enum class Verdict {
    kContinue,
    kErrorBoundMet,  ///< CI within the requested relative error
    kDeadlineHit,    ///< budget exhausted; result is partial
  };

  explicit StoppingRule(Options options);

  /// True when either bound is configured (callers skip the per-batch
  /// check entirely otherwise).
  bool active() const {
    return options_.rel_error_pct > 0.0 || options_.deadline_us > 0;
  }

  /// Wall-clock µs since construction plus the caller's extra budget.
  uint64_t ElapsedUs() const;

  /// The per-batch check. The deadline is tested first: a bound met at
  /// the same instant the budget runs out still counts as met only if
  /// the interval qualifies, but an expired budget always stops.
  Verdict Check(const Estimate& estimate) const;

  /// Whether `estimate` satisfies the error bound (ignores the clock).
  /// A zero point estimate with zero half-width qualifies (the exact
  /// answer); a zero point estimate with a positive half-width does not
  /// (relative error is undefined — only the deadline or a full drain
  /// ends such a query).
  bool ErrorBoundMet(const Estimate& estimate) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace msv::sampling

#endif  // MSV_SAMPLING_STOPPING_RULE_H_
