#include "sampling/stopping_rule.h"

#include <cmath>

namespace msv::sampling {

StoppingRule::StoppingRule(Options options)
    : options_(std::move(options)), start_(std::chrono::steady_clock::now()) {}

uint64_t StoppingRule::ElapsedUs() const {
  uint64_t wall = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  if (options_.extra_elapsed_us) wall += options_.extra_elapsed_us();
  return wall;
}

bool StoppingRule::ErrorBoundMet(const Estimate& estimate) const {
  if (options_.rel_error_pct <= 0.0) return false;
  if (estimate.samples < options_.min_samples) return false;
  const double denom = std::fabs(estimate.value);
  if (denom == 0.0) return estimate.half_width == 0.0;
  return estimate.half_width <= denom * options_.rel_error_pct / 100.0;
}

StoppingRule::Verdict StoppingRule::Check(const Estimate& estimate) const {
  if (options_.deadline_us > 0 && ElapsedUs() >= options_.deadline_us) {
    return Verdict::kDeadlineHit;
  }
  if (ErrorBoundMet(estimate)) return Verdict::kErrorBoundMet;
  return Verdict::kContinue;
}

}  // namespace msv::sampling
