// The online-sampling interface every sampler implements.
//
// A SampleStream produces records satisfying a fixed RangeQuery such that,
// at every point in time, the multiset of records returned so far is a
// uniform random sample (without replacement) of all matching records.
// Consumers (online aggregation, clustering, the benchmark harness) pull
// batches; each pull may perform I/O on the underlying device.

#ifndef MSV_SAMPLING_SAMPLE_STREAM_H_
#define MSV_SAMPLING_SAMPLE_STREAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sampling/range_query.h"
#include "util/result.h"

namespace msv::sampling {

/// A batch of fixed-size records, densely packed.
struct SampleBatch {
  size_t record_size = 0;
  std::string data;

  size_t count() const { return record_size ? data.size() / record_size : 0; }
  const char* record(size_t i) const { return data.data() + i * record_size; }
  void Append(const char* rec) { data.append(rec, record_size); }
  bool empty() const { return data.empty(); }

  /// Pre-sizes the buffer for `additional` more records, so a producer
  /// that knows its emission size (the combine engine's rounds do) pays
  /// one growth instead of log-many reallocating appends.
  void Reserve(size_t additional) {
    data.reserve(data.size() + additional * record_size);
  }
  /// Appends `n` densely packed records in one copy.
  void AppendN(const char* recs, size_t n) {
    data.append(recs, n * record_size);
  }
};

/// Pull-based online sampler. Implementations are single-use: one stream
/// answers one query.
class SampleStream {
 public:
  virtual ~SampleStream() = default;

  /// Produces the next batch of new samples. An empty batch does NOT mean
  /// the stream is finished (a pull may only perform I/O that feeds later
  /// batches); call done() to detect completion. After done() returns true
  /// every matching record has been returned exactly once.
  virtual Result<SampleBatch> NextBatch() = 0;

  /// True once all records matching the query have been delivered.
  virtual bool done() const = 0;

  /// Total samples delivered so far.
  virtual uint64_t samples_returned() const = 0;

  /// Sampler name for reports ("ace", "btree", "permuted", ...).
  virtual std::string name() const = 0;
};

}  // namespace msv::sampling

#endif  // MSV_SAMPLING_SAMPLE_STREAM_H_
