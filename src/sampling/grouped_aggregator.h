// Online GROUP BY aggregation over a SampleStream.
//
// Extends OnlineAggregator to per-group estimates, the classic online-
// aggregation interface ("SELECT g, AVG(x) ... GROUP BY g" with per-group
// confidence intervals that tighten as samples stream in). Group SUM and
// COUNT use the standard transformed-variable estimator: for group g,
// y_i = x_i * 1[group(r_i) = g] over ALL samples, so SUM_g = N * mean(y)
// with a CLT interval from var(y); only per-group (count, sum, sum-of-
// squares) plus the global sample count need be stored.
//
// Like OnlineAggregator, the hot path takes compiled FieldAccessors for
// the group key and the aggregated expression (no per-record indirect
// calls); the std::function pair remains for ad-hoc expressions.

#ifndef MSV_SAMPLING_GROUPED_AGGREGATOR_H_
#define MSV_SAMPLING_GROUPED_AGGREGATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sampling/online_aggregator.h"
#include "sampling/sample_stream.h"
#include "storage/record_view.h"

namespace msv::sampling {

class GroupedAggregator {
 public:
  /// Hot path: `group_acc` extracts the (integer) group key, `value_acc`
  /// the value being aggregated; `population` is |σ_Q(R)| (for SUM/COUNT
  /// scale-up).
  GroupedAggregator(storage::FieldAccessor group_acc,
                    storage::FieldAccessor value_acc, uint64_t population,
                    double confidence = 0.95);

  /// Cold path: arbitrary expressions via std::function.
  GroupedAggregator(std::function<uint64_t(const char*)> group_fn,
                    std::function<double(const char*)> expression,
                    uint64_t population, double confidence = 0.95);

  void Consume(const SampleBatch& batch);

  struct GroupResult {
    uint64_t group = 0;
    uint64_t samples = 0;   ///< samples seen in this group
    Estimate avg;           ///< within-group mean of the expression
    Estimate sum;           ///< scaled to the full population
    Estimate count;         ///< estimated group size in the population
  };

  /// Current per-group estimates, ordered by group key.
  std::vector<GroupResult> Groups() const;

  uint64_t samples_seen() const { return n_; }
  size_t group_count() const { return groups_.size(); }

 private:
  struct GroupStats {
    uint64_t n = 0;
    double sum = 0.0;
    double sumsq = 0.0;
  };

  void Fold(uint64_t group, double x);

  storage::FieldAccessor group_acc_;
  storage::FieldAccessor value_acc_;
  bool use_accessors_ = false;
  std::function<uint64_t(const char*)> group_fn_;
  std::function<double(const char*)> expression_;
  uint64_t population_;
  double z_;
  uint64_t n_ = 0;
  std::map<uint64_t, GroupStats> groups_;
};

}  // namespace msv::sampling

#endif  // MSV_SAMPLING_GROUPED_AGGREGATOR_H_
