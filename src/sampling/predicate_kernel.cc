// Batched, branch-free range-predicate kernels with runtime CPU dispatch.
//
// RangeQuery::MatchBatch evaluates a whole leaf section (or any run of
// densely packed records) in three stages, chunked so the scratch stays
// L1-resident:
//
//   1. gather: the key bytes of one dimension are strided out of the
//      record images into a contiguous, 32-byte-aligned columnar view
//      (double col[kChunk]);
//   2. mask: a branch-free `lo <= v <= hi` over the column produces a
//      0/1 byte per record, ANDed across dimensions. This is the stage
//      with SSE2/AVX2 variants (2 / 4 records per vector op); ordered
//      vector compares reject NaN keys exactly like the scalar
//      reference, and an empty interval (lo > hi) rejects everything.
//   3. emit: mask bytes become ascending match indices with a
//      branch-free `out[cnt] = i; cnt += mask[i]` loop.
//
// The variant is chosen per call from util::ActiveCpuLevel() (detected
// once per process, overridable via MSV_CPU_FEATURES); MatchBatchAt pins
// a level for the dispatch-equivalence tests and the in-bench A/B. All
// variants are compiled in one TU via per-function target attributes,
// so no source file needs -mavx2 globally.

#include <cstddef>
#include <cstdint>

#include "sampling/range_query.h"
#include "util/coding.h"
#include "util/cpu.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define MSV_KERNEL_X86 1
#include <immintrin.h>
#endif

namespace msv::sampling {

namespace {

/// Records per kernel chunk: 8 KiB of column + 1 KiB of mask, L1-sized.
constexpr size_t kChunk = 1024;

void GatherColumn(const char* base, size_t record_size, size_t key_offset,
                  size_t n, double* col) {
  const char* p = base + key_offset;
  for (size_t i = 0; i < n; ++i) {
    col[i] = DecodeDouble(p);
    p += record_size;
  }
}

// --- mask kernels ----------------------------------------------------------
// Each writes (first dimension) or ANDs (later dimensions) a 0/1 byte per
// record. `!(v >= lo && v <= hi)` inverted: match = (v >= lo) & (v <= hi),
// false for NaN under both scalar and ordered-vector compares.

template <bool kFirstDim>
void MaskScalar(const double* col, size_t n, double lo, double hi,
                uint8_t* mask) {
  for (size_t i = 0; i < n; ++i) {
    uint8_t ok = static_cast<uint8_t>(col[i] >= lo) &
                 static_cast<uint8_t>(col[i] <= hi);
    if (kFirstDim) {
      mask[i] = ok;
    } else {
      mask[i] &= ok;
    }
  }
}

#ifdef MSV_KERNEL_X86

template <bool kFirstDim>
void MaskSse2(const double* col, size_t n, double lo, double hi,
              uint8_t* mask) {
  const __m128d vlo = _mm_set1_pd(lo);
  const __m128d vhi = _mm_set1_pd(hi);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d v = _mm_load_pd(col + i);
    // cmpge/cmple are ordered: NaN lanes compare false on both sides.
    __m128d ok = _mm_and_pd(_mm_cmpge_pd(v, vlo), _mm_cmple_pd(v, vhi));
    int bits = _mm_movemask_pd(ok);  // bit k = lane k matched
    if (kFirstDim) {
      mask[i] = static_cast<uint8_t>(bits & 1);
      mask[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
    } else {
      mask[i] &= static_cast<uint8_t>(bits & 1);
      mask[i + 1] &= static_cast<uint8_t>((bits >> 1) & 1);
    }
  }
  if (i < n) MaskScalar<kFirstDim>(col + i, n - i, lo, hi, mask + i);
}

template <bool kFirstDim>
__attribute__((target("avx2")))
void MaskAvx2(const double* col, size_t n, double lo, double hi,
              uint8_t* mask) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d v = _mm256_load_pd(col + i);
    // _CMP_GE_OQ / _CMP_LE_OQ: ordered, quiet — NaN lanes are false.
    __m256d ok = _mm256_and_pd(_mm256_cmp_pd(v, vlo, _CMP_GE_OQ),
                               _mm256_cmp_pd(v, vhi, _CMP_LE_OQ));
    int bits = _mm256_movemask_pd(ok);
    if (kFirstDim) {
      mask[i] = static_cast<uint8_t>(bits & 1);
      mask[i + 1] = static_cast<uint8_t>((bits >> 1) & 1);
      mask[i + 2] = static_cast<uint8_t>((bits >> 2) & 1);
      mask[i + 3] = static_cast<uint8_t>((bits >> 3) & 1);
    } else {
      mask[i] &= static_cast<uint8_t>(bits & 1);
      mask[i + 1] &= static_cast<uint8_t>((bits >> 1) & 1);
      mask[i + 2] &= static_cast<uint8_t>((bits >> 2) & 1);
      mask[i + 3] &= static_cast<uint8_t>((bits >> 3) & 1);
    }
  }
  if (i < n) MaskScalar<kFirstDim>(col + i, n - i, lo, hi, mask + i);
}

#endif  // MSV_KERNEL_X86

void MaskDim(util::CpuLevel level, bool first_dim, const double* col,
             size_t n, double lo, double hi, uint8_t* mask) {
  switch (level) {
#ifdef MSV_KERNEL_X86
    case util::CpuLevel::kAvx2:
      first_dim ? MaskAvx2<true>(col, n, lo, hi, mask)
                : MaskAvx2<false>(col, n, lo, hi, mask);
      return;
    case util::CpuLevel::kSse2:
      first_dim ? MaskSse2<true>(col, n, lo, hi, mask)
                : MaskSse2<false>(col, n, lo, hi, mask);
      return;
#else
    case util::CpuLevel::kAvx2:
    case util::CpuLevel::kSse2:
#endif
    case util::CpuLevel::kScalar:
      first_dim ? MaskScalar<true>(col, n, lo, hi, mask)
                : MaskScalar<false>(col, n, lo, hi, mask);
      return;
  }
  MaskScalar<true>(col, n, lo, hi, mask);
}

/// Branch-free mask → ascending index compaction. Mask bytes are 0/1.
size_t EmitIndices(const uint8_t* mask, size_t n, uint32_t base_index,
                   uint32_t* out_idx, size_t count) {
  for (size_t i = 0; i < n; ++i) {
    out_idx[count] = base_index + static_cast<uint32_t>(i);
    count += mask[i];
  }
  return count;
}

}  // namespace

void GatherKeyColumn(const storage::RecordLayout& layout, const char* base,
                     size_t n, size_t dim, double* out) {
  GatherColumn(base, layout.record_size, layout.key_offsets[dim], n, out);
}

size_t RangeQuery::MatchBatchAt(util::CpuLevel level,
                                const storage::RecordLayout& layout,
                                const char* base, size_t n,
                                uint32_t* out_idx) const {
  level = util::ClampCpuLevel(level);
  alignas(32) double col[kChunk];
  alignas(32) uint8_t mask[kChunk];
  const size_t record_size = layout.record_size;
  const size_t* offsets = layout.key_offsets.data();
  size_t count = 0;
  for (size_t start = 0; start < n; start += kChunk) {
    const size_t len = n - start < kChunk ? n - start : kChunk;
    const char* chunk_base = base + start * record_size;
    for (size_t d = 0; d < dims; ++d) {
      GatherColumn(chunk_base, record_size, offsets[d], len, col);
      MaskDim(level, d == 0, col, len, bounds[d].lo, bounds[d].hi, mask);
    }
    count = EmitIndices(mask, len, static_cast<uint32_t>(start), out_idx,
                        count);
  }
  return count;
}

size_t RangeQuery::MatchBatch(const storage::RecordLayout& layout,
                              const char* base, size_t n,
                              uint32_t* out_idx) const {
  return MatchBatchAt(util::ActiveCpuLevel(), layout, base, n, out_idx);
}

}  // namespace msv::sampling
