#include "sampling/grouped_aggregator.h"

#include <cmath>

#include "util/stats.h"

namespace msv::sampling {

GroupedAggregator::GroupedAggregator(storage::FieldAccessor group_acc,
                                     storage::FieldAccessor value_acc,
                                     uint64_t population, double confidence)
    : group_acc_(group_acc),
      value_acc_(value_acc),
      use_accessors_(true),
      population_(population),
      z_(NormalCriticalValue(confidence)) {}

GroupedAggregator::GroupedAggregator(
    std::function<uint64_t(const char*)> group_fn,
    std::function<double(const char*)> expression, uint64_t population,
    double confidence)
    : group_fn_(std::move(group_fn)),
      expression_(std::move(expression)),
      population_(population),
      z_(NormalCriticalValue(confidence)) {}

void GroupedAggregator::Fold(uint64_t group, double x) {
  GroupStats& g = groups_[group];
  ++g.n;
  g.sum += x;
  g.sumsq += x * x;
  ++n_;
}

void GroupedAggregator::Consume(const SampleBatch& batch) {
  const size_t n = batch.count();
  if (use_accessors_) {
    // Compiled accessors: both loads inline, so the per-record cost is
    // the map probe and the three accumulator updates.
    const char* rec = batch.data.data();
    const size_t record_size = batch.record_size;
    for (size_t i = 0; i < n; ++i, rec += record_size) {
      Fold(group_acc_.LoadU64(rec), value_acc_.Load(rec));
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const char* rec = batch.record(i);
      Fold(group_fn_(rec), expression_(rec));  // NOLINT(msv-hot-path-alloc) ad-hoc-expression cold path
    }
  }
}

std::vector<GroupedAggregator::GroupResult> GroupedAggregator::Groups()
    const {
  std::vector<GroupResult> out;
  out.reserve(groups_.size());
  const double n = static_cast<double>(n_);
  const double pop = static_cast<double>(population_);
  for (const auto& [key, g] : groups_) {
    GroupResult result;
    result.group = key;
    result.samples = g.n;

    // Within-group AVG (plain CLT over the group's own samples).
    result.avg.samples = g.n;
    double group_n = static_cast<double>(g.n);
    result.avg.value = g.n ? g.sum / group_n : 0.0;
    if (g.n > 1) {
      double var = (g.sumsq - g.sum * g.sum / group_n) / (group_n - 1);
      result.avg.half_width = z_ * std::sqrt(std::max(0.0, var) / group_n);
    }

    // SUM via the transformed variable y = x * 1[in group] over ALL n
    // samples: mean(y) = g.sum / n, var(y) from g.sumsq (zeros elsewhere).
    result.sum.samples = n_;
    if (n_ > 0) {
      double mean_y = g.sum / n;
      result.sum.value = pop * mean_y;
      if (n_ > 1) {
        double var_y = (g.sumsq - g.sum * mean_y) / (n - 1);
        result.sum.half_width =
            z_ * pop * std::sqrt(std::max(0.0, var_y) / n);
      }
    }

    // COUNT via the group-membership proportion.
    result.count.samples = n_;
    if (n_ > 0) {
      double p = group_n / n;
      result.count.value = pop * p;
      if (n_ > 1) {
        result.count.half_width =
            z_ * pop * std::sqrt(p * (1 - p) / n);
      }
    }
    out.push_back(result);
  }
  return out;
}

}  // namespace msv::sampling
