#include "sampling/grouped_aggregator.h"

#include <cmath>

#include "util/stats.h"

namespace msv::sampling {

GroupedAggregator::GroupedAggregator(
    std::function<uint64_t(const char*)> group_fn,
    std::function<double(const char*)> expression, uint64_t population,
    double confidence)
    : group_fn_(std::move(group_fn)),
      expression_(std::move(expression)),
      population_(population),
      z_(NormalCriticalValue(confidence)) {}

void GroupedAggregator::Consume(const SampleBatch& batch) {
  for (size_t i = 0; i < batch.count(); ++i) {
    const char* rec = batch.record(i);
    GroupStats& g = groups_[group_fn_(rec)];
    double x = expression_(rec);
    ++g.n;
    g.sum += x;
    g.sumsq += x * x;
    ++n_;
  }
}

std::vector<GroupedAggregator::GroupResult> GroupedAggregator::Groups()
    const {
  std::vector<GroupResult> out;
  out.reserve(groups_.size());
  const double n = static_cast<double>(n_);
  const double pop = static_cast<double>(population_);
  for (const auto& [key, g] : groups_) {
    GroupResult result;
    result.group = key;
    result.samples = g.n;

    // Within-group AVG (plain CLT over the group's own samples).
    result.avg.samples = g.n;
    double group_n = static_cast<double>(g.n);
    result.avg.value = g.n ? g.sum / group_n : 0.0;
    if (g.n > 1) {
      double var = (g.sumsq - g.sum * g.sum / group_n) / (group_n - 1);
      result.avg.half_width = z_ * std::sqrt(std::max(0.0, var) / group_n);
    }

    // SUM via the transformed variable y = x * 1[in group] over ALL n
    // samples: mean(y) = g.sum / n, var(y) from g.sumsq (zeros elsewhere).
    result.sum.samples = n_;
    if (n_ > 0) {
      double mean_y = g.sum / n;
      result.sum.value = pop * mean_y;
      if (n_ > 1) {
        double var_y = (g.sumsq - g.sum * mean_y) / (n - 1);
        result.sum.half_width =
            z_ * pop * std::sqrt(std::max(0.0, var_y) / n);
      }
    }

    // COUNT via the group-membership proportion.
    result.count.samples = n_;
    if (n_ > 0) {
      double p = group_n / n;
      result.count.value = pop * p;
      if (n_ > 1) {
        result.count.half_width =
            z_ * pop * std::sqrt(p * (1 - p) / n);
      }
    }
    out.push_back(result);
  }
  return out;
}

}  // namespace msv::sampling
