// Range predicates over indexed key attributes.
//
// All samplers in the library answer queries of the SQL form
//   SELECT * FROM R WHERE k1 BETWEEN lo1 AND hi1 [AND k2 BETWEEN ...]
// i.e. closed intervals per key dimension (the paper's Sec. 2.2 example).

#ifndef MSV_SAMPLING_RANGE_QUERY_H_
#define MSV_SAMPLING_RANGE_QUERY_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "storage/record.h"
#include "util/cpu.h"
#include "util/status.h"

namespace msv::sampling {

/// A closed interval [lo, hi] on one key attribute.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  bool Contains(double v) const { return v >= lo && v <= hi; }
  bool Overlaps(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }
  /// True when this interval fully contains `o`.
  bool Covers(const Interval& o) const { return lo <= o.lo && o.hi <= hi; }
  bool Empty() const { return lo > hi; }
  double Width() const { return hi - lo; }
};

/// A conjunctive range predicate over `dims` key dimensions.
struct RangeQuery {
  size_t dims = 1;
  std::array<Interval, storage::kMaxKeyDims> bounds;

  static RangeQuery OneDim(double lo, double hi) {
    RangeQuery q;
    q.dims = 1;
    q.bounds[0] = Interval{lo, hi};
    return q;
  }

  static RangeQuery TwoDim(double lo0, double hi0, double lo1, double hi1) {
    RangeQuery q;
    q.dims = 2;
    q.bounds[0] = Interval{lo0, hi0};
    q.bounds[1] = Interval{lo1, hi1};
    return q;
  }

  /// True when record `rec` (interpreted through `layout`) satisfies every
  /// per-dimension bound. Dimensions beyond layout.key_dims() are invalid.
  ///
  /// This is the scalar reference the batched SIMD kernels are tested
  /// against: the key_offsets base pointer is hoisted out of the loop and
  /// dimension 0 (the primary range attribute, by far the most selective
  /// in practice) short-circuits before the loop even starts. The
  /// `!(v >= lo && v <= hi)` shape is deliberate — it rejects NaN keys,
  /// where `v < lo || v > hi` would accept them.
  bool Matches(const storage::RecordLayout& layout, const char* rec) const {
    const size_t* offsets = layout.key_offsets.data();
    double v0 = DecodeDouble(rec + offsets[0]);
    if (!(v0 >= bounds[0].lo && v0 <= bounds[0].hi)) return false;
    for (size_t d = 1; d < dims; ++d) {
      double v = DecodeDouble(rec + offsets[d]);
      if (!(v >= bounds[d].lo && v <= bounds[d].hi)) return false;
    }
    return true;
  }

  /// Batched predicate evaluation over `n` densely packed records at
  /// `base`: writes the ascending indices of matching records to
  /// `out_idx` (caller provides room for `n`) and returns how many
  /// matched. Gathers each key dimension into a columnar view and runs a
  /// branch-free range check over it with the best kernel the host CPU
  /// supports (util::ActiveCpuLevel()); agrees with Matches() record for
  /// record, including NaN keys, ±inf bounds and empty intervals.
  size_t MatchBatch(const storage::RecordLayout& layout, const char* base,
                    size_t n, uint32_t* out_idx) const;

  /// MatchBatch pinned to one dispatch level (testing / in-bench A/B;
  /// `level` is clamped to what the host can execute).
  size_t MatchBatchAt(util::CpuLevel level,
                      const storage::RecordLayout& layout, const char* base,
                      size_t n, uint32_t* out_idx) const;

  Status Validate(const storage::RecordLayout& layout) const {
    if (dims == 0 || dims > layout.key_dims()) {
      return Status::InvalidArgument(
          "query dimensionality incompatible with record layout");
    }
    for (size_t d = 0; d < dims; ++d) {
      if (bounds[d].Empty()) {
        return Status::InvalidArgument("empty interval in dimension " +
                                       std::to_string(d));
      }
    }
    return Status::OK();
  }

  std::string ToString() const;
};

/// Gathers key dimension `dim` of `n` densely packed records into the
/// contiguous `out` array — the columnar key view the batched kernels
/// (and the bench's scan loop) run over.
void GatherKeyColumn(const storage::RecordLayout& layout, const char* base,
                     size_t n, size_t dim, double* out);

}  // namespace msv::sampling

#endif  // MSV_SAMPLING_RANGE_QUERY_H_
