// Range predicates over indexed key attributes.
//
// All samplers in the library answer queries of the SQL form
//   SELECT * FROM R WHERE k1 BETWEEN lo1 AND hi1 [AND k2 BETWEEN ...]
// i.e. closed intervals per key dimension (the paper's Sec. 2.2 example).

#ifndef MSV_SAMPLING_RANGE_QUERY_H_
#define MSV_SAMPLING_RANGE_QUERY_H_

#include <array>
#include <cstddef>
#include <limits>
#include <string>

#include "storage/record.h"
#include "util/status.h"

namespace msv::sampling {

/// A closed interval [lo, hi] on one key attribute.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  bool Contains(double v) const { return v >= lo && v <= hi; }
  bool Overlaps(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }
  /// True when this interval fully contains `o`.
  bool Covers(const Interval& o) const { return lo <= o.lo && o.hi <= hi; }
  bool Empty() const { return lo > hi; }
  double Width() const { return hi - lo; }
};

/// A conjunctive range predicate over `dims` key dimensions.
struct RangeQuery {
  size_t dims = 1;
  std::array<Interval, storage::kMaxKeyDims> bounds;

  static RangeQuery OneDim(double lo, double hi) {
    RangeQuery q;
    q.dims = 1;
    q.bounds[0] = Interval{lo, hi};
    return q;
  }

  static RangeQuery TwoDim(double lo0, double hi0, double lo1, double hi1) {
    RangeQuery q;
    q.dims = 2;
    q.bounds[0] = Interval{lo0, hi0};
    q.bounds[1] = Interval{lo1, hi1};
    return q;
  }

  /// True when record `rec` (interpreted through `layout`) satisfies every
  /// per-dimension bound. Dimensions beyond layout.key_dims() are invalid.
  bool Matches(const storage::RecordLayout& layout, const char* rec) const {
    for (size_t d = 0; d < dims; ++d) {
      if (!bounds[d].Contains(layout.Key(rec, d))) return false;
    }
    return true;
  }

  Status Validate(const storage::RecordLayout& layout) const {
    if (dims == 0 || dims > layout.key_dims()) {
      return Status::InvalidArgument(
          "query dimensionality incompatible with record layout");
    }
    for (size_t d = 0; d < dims; ++d) {
      if (bounds[d].Empty()) {
        return Status::InvalidArgument("empty interval in dimension " +
                                       std::to_string(d));
      }
    }
    return Status::OK();
  }

  std::string ToString() const;
};

}  // namespace msv::sampling

#endif  // MSV_SAMPLING_RANGE_QUERY_H_
