// Online aggregation over a SampleStream (Hellerstein, Haas & Wang style).
//
// Consumes an online random sample and maintains running estimates of
// SUM / AVG / COUNT of an expression over all records matching the query,
// together with CLT-based confidence intervals. This is the paper's primary
// motivating application (Sec. 1): with an online sample, the interval
// shrinks continuously and is valid at every instant.

#ifndef MSV_SAMPLING_ONLINE_AGGREGATOR_H_
#define MSV_SAMPLING_ONLINE_AGGREGATOR_H_

#include <cstdint>
#include <functional>

#include "sampling/sample_stream.h"
#include "util/result.h"
#include "util/stats.h"

namespace msv::sampling {

/// A point estimate with a symmetric confidence half-width.
struct Estimate {
  double value = 0.0;
  double half_width = 0.0;  ///< +/- at the configured confidence level
  uint64_t samples = 0;

  double lo() const { return value - half_width; }
  double hi() const { return value + half_width; }
};

/// Streaming AVG/SUM estimator over matching records.
class OnlineAggregator {
 public:
  /// `expression` maps a record to the aggregated value (e.g. AMOUNT).
  /// `population` is the number of records matching the query (the ACE
  /// tree's internal-node counts provide it, per Sec. 3.2 of the paper);
  /// required for SUM and COUNT-style scale-up, not for AVG.
  OnlineAggregator(std::function<double(const char*)> expression,
                   uint64_t population, double confidence = 0.95);

  /// Folds every record of a batch into the estimate.
  void Consume(const SampleBatch& batch);

  /// Current AVG estimate with CLT confidence interval.
  Estimate Avg() const;

  /// Current SUM estimate (population * running mean), scaled interval.
  Estimate Sum() const;

  uint64_t samples_seen() const { return stats_.count(); }

 private:
  /// Emits an `estimate` trace event (samples, avg, ci half-width) on the
  /// active span whenever the sample count crosses the next step of a
  /// 1-2-5 ladder, so an EXPLAIN ANALYZE trace shows the interval
  /// shrinking as the stream progresses.
  void MaybeEmitCheckpoint();

  std::function<double(const char*)> expression_;
  uint64_t population_;
  double z_;
  RunningStats stats_;
  uint64_t next_checkpoint_ = 10;
};

}  // namespace msv::sampling

#endif  // MSV_SAMPLING_ONLINE_AGGREGATOR_H_
