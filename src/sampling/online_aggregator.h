// Online aggregation over a SampleStream (Hellerstein, Haas & Wang style).
//
// Consumes an online random sample and maintains running estimates of
// SUM / AVG / COUNT of an expression over all records matching the query,
// together with CLT-based confidence intervals. This is the paper's primary
// motivating application (Sec. 1): with an online sample, the interval
// shrinks continuously and is valid at every instant.
//
// Two expression forms are supported. The hot path is a compiled
// storage::FieldAccessor (offset + kind enum): Consume() folds a whole
// SampleBatch at once — batch moments with chain-free independent
// accumulators, then one Chan merge into the running state — instead of
// a per-record indirect call feeding a per-record Welford divide. The
// std::function form remains for ad-hoc expressions (tests, cold paths)
// and keeps the historical per-record Welford fold; this is why the
// MSVQL executor compiles its column references down to accessors
// (DESIGN.md §15). The two forms accumulate the same moments in a
// different association, so estimates agree to rounding error (ulps),
// not bit-for-bit; sample streams themselves are unaffected.

#ifndef MSV_SAMPLING_ONLINE_AGGREGATOR_H_
#define MSV_SAMPLING_ONLINE_AGGREGATOR_H_

#include <cstdint>
#include <functional>

#include "sampling/sample_stream.h"
#include "storage/record_view.h"
#include "util/result.h"
#include "util/stats.h"

namespace msv::sampling {

/// A point estimate with a symmetric confidence half-width.
struct Estimate {
  double value = 0.0;
  double half_width = 0.0;  ///< +/- at the configured confidence level
  uint64_t samples = 0;

  double lo() const { return value - half_width; }
  double hi() const { return value + half_width; }
};

/// Streaming AVG/SUM estimator over matching records.
class OnlineAggregator {
 public:
  /// Hot path: `accessor` is the compiled form of the aggregated
  /// expression (e.g. AMOUNT at its record offset). `population` is the
  /// number of records matching the query (the ACE tree's internal-node
  /// counts provide it, per Sec. 3.2 of the paper); required for SUM and
  /// COUNT-style scale-up, not for AVG.
  OnlineAggregator(storage::FieldAccessor accessor, uint64_t population,
                   double confidence = 0.95);

  /// Cold path: arbitrary expression via std::function — one indirect
  /// call per record; prefer the FieldAccessor form on batch loops.
  OnlineAggregator(std::function<double(const char*)> expression,
                   uint64_t population, double confidence = 0.95);

  /// Folds every record of a batch into the estimate.
  void Consume(const SampleBatch& batch);

  /// Current AVG estimate with CLT confidence interval.
  Estimate Avg() const;

  /// Current SUM estimate (population * running mean), scaled interval.
  Estimate Sum() const;

  uint64_t samples_seen() const { return stats_.count(); }

 private:
  /// Emits an `estimate` trace event (samples, avg, ci half-width) on the
  /// active span whenever the sample count crosses the next step of a
  /// 1-2-5 ladder, so an EXPLAIN ANALYZE trace shows the interval
  /// shrinking as the stream progresses.
  void MaybeEmitCheckpoint();

  storage::FieldAccessor accessor_;
  bool use_accessor_ = false;
  std::function<double(const char*)> expression_;
  uint64_t population_;
  double z_;
  RunningStats stats_;
  uint64_t next_checkpoint_ = 10;
};

}  // namespace msv::sampling

#endif  // MSV_SAMPLING_ONLINE_AGGREGATOR_H_
