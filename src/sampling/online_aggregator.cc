#include "sampling/online_aggregator.h"

#include <algorithm>
#include <limits>

#include "obs/trace.h"

namespace msv::sampling {

OnlineAggregator::OnlineAggregator(storage::FieldAccessor accessor,
                                   uint64_t population, double confidence)
    : accessor_(accessor),
      use_accessor_(true),
      population_(population),
      z_(NormalCriticalValue(confidence)) {}

OnlineAggregator::OnlineAggregator(
    std::function<double(const char*)> expression, uint64_t population,
    double confidence)
    : expression_(std::move(expression)),
      population_(population),
      z_(NormalCriticalValue(confidence)) {}

void OnlineAggregator::Consume(const SampleBatch& batch) {
  const size_t n = batch.count();
  if (use_accessor_) {
    // Compiled-accessor batch fold. Per-record Welford carries a serial
    // dependence through a divide (~20 cycles/record no matter how cheap
    // the load is), so the hot path computes the batch's own moments with
    // chain-free independent accumulators — pass 1 sums (and min/max),
    // pass 2 sums squared deviations from the batch mean — and merges
    // them into the running state with one Chan update. One divide per
    // batch instead of one per record; the reduction order is fixed by
    // this code, so results do not depend on the dispatch level.
    if (n == 0) return;
    const char* rec = batch.data.data();
    const size_t record_size = batch.record_size;
    double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    const char* p = rec;
    size_t i = 0;
    for (; i + 4 <= n; i += 4, p += 4 * record_size) {
      double a = accessor_.Load(p);
      double b = accessor_.Load(p + record_size);
      double c = accessor_.Load(p + 2 * record_size);
      double d = accessor_.Load(p + 3 * record_size);
      s0 += a;
      s1 += b;
      s2 += c;
      s3 += d;
      mn = std::min({mn, a, b, c, d});
      mx = std::max({mx, a, b, c, d});
    }
    double sum = (s0 + s1) + (s2 + s3);
    for (; i < n; ++i, p += record_size) {
      double v = accessor_.Load(p);
      sum += v;
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    const double batch_mean = sum / static_cast<double>(n);
    double q0 = 0, q1 = 0, q2 = 0, q3 = 0;
    p = rec;
    i = 0;
    for (; i + 4 <= n; i += 4, p += 4 * record_size) {
      double a = accessor_.Load(p) - batch_mean;
      double b = accessor_.Load(p + record_size) - batch_mean;
      double c = accessor_.Load(p + 2 * record_size) - batch_mean;
      double d = accessor_.Load(p + 3 * record_size) - batch_mean;
      q0 += a * a;
      q1 += b * b;
      q2 += c * c;
      q3 += d * d;
    }
    double m2 = (q0 + q1) + (q2 + q3);
    for (; i < n; ++i, p += record_size) {
      double v = accessor_.Load(p) - batch_mean;
      m2 += v * v;
    }
    stats_.Merge(RunningStats::FromMoments(n, batch_mean, m2, mn, mx));
  } else {
    for (size_t i = 0; i < n; ++i) {
      stats_.Add(expression_(batch.record(i)));  // NOLINT(msv-hot-path-alloc) ad-hoc-expression cold path
    }
  }
  MaybeEmitCheckpoint();
}

void OnlineAggregator::MaybeEmitCheckpoint() {
  if (stats_.count() < next_checkpoint_ || obs::Tracer::Active() == nullptr) {
    return;
  }
  while (next_checkpoint_ <= stats_.count()) {
    // 1-2-5 ladder: 10, 20, 50, 100, ...
    uint64_t lead = next_checkpoint_;
    while (lead >= 10) lead /= 10;
    next_checkpoint_ = lead == 1   ? next_checkpoint_ * 2
                       : lead == 2 ? next_checkpoint_ / 2 * 5
                                   : next_checkpoint_ * 2;
  }
  Estimate avg = Avg();
  obs::AddTraceEvent(
      "estimate", {{"samples", static_cast<double>(avg.samples)},
                   {"avg", avg.value},
                   {"ci_half_width", avg.half_width}});
}

Estimate OnlineAggregator::Avg() const {
  Estimate e;
  e.samples = stats_.count();
  e.value = stats_.mean();
  if (stats_.count() > 1) {
    double se = stats_.stderr_mean();
    // Finite-population correction: we sample without replacement.
    if (population_ > 1 && stats_.count() <= population_) {
      double fpc = std::sqrt(
          static_cast<double>(population_ - stats_.count()) /
          static_cast<double>(population_ - 1));
      se *= fpc;
    }
    e.half_width = z_ * se;
  }
  return e;
}

Estimate OnlineAggregator::Sum() const {
  Estimate avg = Avg();
  Estimate e;
  e.samples = avg.samples;
  e.value = avg.value * static_cast<double>(population_);
  e.half_width = avg.half_width * static_cast<double>(population_);
  return e;
}

}  // namespace msv::sampling
