#include "sampling/online_aggregator.h"

#include "obs/trace.h"

namespace msv::sampling {

OnlineAggregator::OnlineAggregator(
    std::function<double(const char*)> expression, uint64_t population,
    double confidence)
    : expression_(std::move(expression)),
      population_(population),
      z_(NormalCriticalValue(confidence)) {}

void OnlineAggregator::Consume(const SampleBatch& batch) {
  for (size_t i = 0; i < batch.count(); ++i) {
    stats_.Add(expression_(batch.record(i)));
  }
  MaybeEmitCheckpoint();
}

void OnlineAggregator::MaybeEmitCheckpoint() {
  if (stats_.count() < next_checkpoint_ || obs::Tracer::Active() == nullptr) {
    return;
  }
  while (next_checkpoint_ <= stats_.count()) {
    // 1-2-5 ladder: 10, 20, 50, 100, ...
    uint64_t lead = next_checkpoint_;
    while (lead >= 10) lead /= 10;
    next_checkpoint_ = lead == 1   ? next_checkpoint_ * 2
                       : lead == 2 ? next_checkpoint_ / 2 * 5
                                   : next_checkpoint_ * 2;
  }
  Estimate avg = Avg();
  obs::AddTraceEvent(
      "estimate", {{"samples", static_cast<double>(avg.samples)},
                   {"avg", avg.value},
                   {"ci_half_width", avg.half_width}});
}

Estimate OnlineAggregator::Avg() const {
  Estimate e;
  e.samples = stats_.count();
  e.value = stats_.mean();
  if (stats_.count() > 1) {
    double se = stats_.stderr_mean();
    // Finite-population correction: we sample without replacement.
    if (population_ > 1 && stats_.count() <= population_) {
      double fpc = std::sqrt(
          static_cast<double>(population_ - stats_.count()) /
          static_cast<double>(population_ - 1));
      se *= fpc;
    }
    e.half_width = z_ * se;
  }
  return e;
}

Estimate OnlineAggregator::Sum() const {
  Estimate avg = Avg();
  Estimate e;
  e.samples = avg.samples;
  e.value = avg.value * static_cast<double>(population_);
  e.half_width = avg.half_width * static_cast<double>(population_);
  return e;
}

}  // namespace msv::sampling
