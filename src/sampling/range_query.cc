#include "sampling/range_query.h"

#include <cstdio>

namespace msv::sampling {

std::string RangeQuery::ToString() const {
  std::string out = "{";
  char buf[64];
  for (size_t d = 0; d < dims; ++d) {
    if (d > 0) out += " AND ";
    std::snprintf(buf, sizeof(buf), "k%zu in [%.6g, %.6g]", d, bounds[d].lo,
                  bounds[d].hi);
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace msv::sampling
