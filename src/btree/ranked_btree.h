// Ranked B+-Tree: a bulk-loaded primary B+-Tree index whose internal
// entries carry subtree record counts, enabling rank(key) and
// record-at-rank(i) in one root-to-leaf descent (paper Sec. 2.2; Olken,
// Antoshenkov).
//
// On-disk layout (one file, fixed-size pages):
//   page 0              superblock
//   pages 1..L          leaf pages, in key order (the relation itself —
//                       this is a primary index; leaves hold the records)
//   pages L+1..end      internal pages, built bottom-up; root is last
//
// Leaf page:     [type=1][nrec u32][records ...]
// Internal page: [type=2][nentries u32]
//                [entries: child_page u64, subtree_count u64, max_key f64]

#ifndef MSV_BTREE_RANKED_BTREE_H_
#define MSV_BTREE_RANKED_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "extsort/external_sorter.h"
#include "io/buffer_pool.h"
#include "io/env.h"
#include "storage/record.h"
#include "util/result.h"

namespace msv::btree {

inline constexpr uint64_t kBTreeMagic = 0x3145455254425352ULL;  // "RSBTREE1"

struct BTreeOptions {
  size_t page_size = 64 << 10;
  /// When false the builder external-sorts the input by key first (that
  /// sort is part of the build, as with any bulk load of a primary index).
  bool input_sorted = false;
  extsort::SortOptions sort;

  Status Validate(size_t record_size) const;
};

struct BTreeMeta {
  size_t page_size = 0;
  size_t record_size = 0;
  uint64_t num_records = 0;
  uint64_t num_leaves = 0;
  uint64_t root_page = 0;
  uint32_t height = 0;  ///< levels including leaf level
  uint32_t records_per_leaf = 0;
};

/// Bulk-builds a ranked B+-Tree file `output_name` from heap file
/// `input_name`, keyed on layout dimension 0.
Status BuildRankedBTree(io::Env* env, const std::string& input_name,
                        const std::string& output_name,
                        const storage::RecordLayout& layout,
                        const BTreeOptions& options = {});

/// Read-side handle. All page access goes through the caller's BufferPool,
/// so sampling behaviour under a limited buffer is faithful to the paper.
class RankedBTree {
 public:
  /// Opens `name`; `file_id` must be unique per open file within `pool`.
  static Result<std::unique_ptr<RankedBTree>> Open(
      io::Env* env, const std::string& name,
      const storage::RecordLayout& layout, io::BufferPool* pool,
      uint64_t file_id);

  const BTreeMeta& meta() const { return meta_; }
  const storage::RecordLayout& layout() const { return layout_; }

  /// Number of records with key strictly less than `key` (0-based rank of
  /// the first record >= key).
  Result<uint64_t> CountLess(double key) const;

  /// Number of records with key <= `key`.
  Result<uint64_t> CountLessOrEqual(double key) const;

  /// Copies the record with 0-based rank `rank` (key order) into `out`.
  Status ReadByRank(uint64_t rank, char* out) const;

  /// Key of the record at `rank` (descends like ReadByRank).
  Result<double> KeyAtRank(uint64_t rank) const;

  /// Appends every record of leaf ordinal `leaf` (0-based, key order) to
  /// `out`; returns the number of records appended. One page access —
  /// the unit of block-based sampling (Sec. 2.3).
  Result<uint32_t> ReadLeafRecords(uint64_t leaf, std::string* out) const;

 private:
  RankedBTree(std::unique_ptr<io::File> file,
              const storage::RecordLayout& layout, io::BufferPool* pool,
              uint64_t file_id, BTreeMeta meta)
      : file_(std::move(file)),
        layout_(layout),
        pool_(pool),
        file_id_(file_id),
        meta_(meta) {}

  Result<io::PageRef> GetPage(uint64_t page_no) const;

  std::unique_ptr<io::File> file_;
  storage::RecordLayout layout_;
  io::BufferPool* pool_;
  uint64_t file_id_;
  BTreeMeta meta_;
};

/// Page-format helpers shared by the builder, reader and tests.
namespace format {
inline constexpr uint8_t kLeafPage = 1;
inline constexpr uint8_t kInternalPage = 2;
inline constexpr size_t kPageHeaderSize = 8;  // type u8, pad, count u32
inline constexpr size_t kInternalEntrySize = 24;
inline constexpr size_t kSuperblockSize = 80;

size_t LeafCapacity(size_t page_size, size_t record_size);
size_t InternalCapacity(size_t page_size);
}  // namespace format

}  // namespace msv::btree

#endif  // MSV_BTREE_RANKED_BTREE_H_
