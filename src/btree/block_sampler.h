// Block-based random sampling from a B+-tree (paper Sec. 2.3; Haas &
// Koenig's bi-level Bernoulli, Chaudhuri et al.'s block-level sampling).
//
// Instead of one record per random I/O, whole leaf pages are drawn
// uniformly without replacement from the query's leaf range and ALL of
// their matching records are consumed. This is 2-3 orders of magnitude
// cheaper per record — but the records of one page are not independent:
// when values correlate with key order (which clusters them into pages),
// an N-record block sample carries far less information than N
// independent samples. The paper cites this "design effect" as the reason
// block sampling cannot replace a true record-level sample; the
// ablation_block_sampling bench quantifies it with this implementation.
//
// The stream's batches are per-page; each batch is a census of one
// uniformly chosen page, so estimators must treat pages (not records) as
// the sampling unit (cluster sampling).

#ifndef MSV_BTREE_BLOCK_SAMPLER_H_
#define MSV_BTREE_BLOCK_SAMPLER_H_

#include <optional>
#include <string>

#include "btree/ranked_btree.h"
#include "sampling/sample_stream.h"
#include "util/random.h"

namespace msv::btree {

class BlockSampler : public sampling::SampleStream {
 public:
  BlockSampler(const RankedBTree* tree, sampling::RangeQuery query,
               uint64_t seed);

  /// One pull = one uniformly drawn leaf page; the batch holds every
  /// matching record of that page.
  Result<sampling::SampleBatch> NextBatch() override;
  bool done() const override { return initialized_ && shuffle_->done(); }
  uint64_t samples_returned() const override { return returned_; }
  std::string name() const override { return "btree-block"; }

  uint64_t pages_read() const { return pages_read_; }

 private:
  Status Initialize();

  const RankedBTree* tree_;
  sampling::RangeQuery query_;
  Pcg64 rng_;

  bool initialized_ = false;
  uint64_t first_leaf_ = 0;  // leaf page range covering [r1, r2)
  uint64_t last_leaf_ = 0;   // inclusive
  std::optional<LazyShuffle> shuffle_;
  uint64_t pages_read_ = 0;
  uint64_t returned_ = 0;
};

}  // namespace msv::btree

#endif  // MSV_BTREE_BLOCK_SAMPLER_H_
