// Random sampling from a ranked B+-Tree (paper Algorithm 1; Olken /
// Antoshenkov).
//
// On construction the sampler resolves the query range to a rank interval
// [r1, r2] with two root-to-leaf descents, then repeatedly draws a uniform
// not-yet-used rank and fetches that record — one page access per draw
// unless the page is already buffered. The duplicate-rank rejection of
// Algorithm 1 is realized by an incremental Fisher-Yates permutation,
// which has an identical output distribution without the late-stage
// rejection slowdown.

#ifndef MSV_BTREE_BTREE_SAMPLER_H_
#define MSV_BTREE_BTREE_SAMPLER_H_

#include <memory>
#include <optional>
#include <string>

#include "btree/ranked_btree.h"
#include "sampling/sample_stream.h"
#include "util/random.h"

namespace msv::btree {

class BTreeSampler : public sampling::SampleStream {
 public:
  /// Creates a sampler for `query` (dimension 0 only; B+-Trees are 1-d).
  /// The rank interval is resolved lazily on the first NextBatch() so that
  /// construction itself does no I/O.
  BTreeSampler(const RankedBTree* tree, sampling::RangeQuery query,
               uint64_t seed, size_t records_per_pull = 16);

  Result<sampling::SampleBatch> NextBatch() override;
  bool done() const override { return initialized_ && shuffle_->done(); }
  uint64_t samples_returned() const override { return returned_; }
  std::string name() const override { return "btree"; }

  /// Matching-record count (valid after the first NextBatch call).
  uint64_t population() const { return r2_ - r1_; }

 private:
  Status Initialize();

  const RankedBTree* tree_;
  sampling::RangeQuery query_;
  Pcg64 rng_;
  size_t records_per_pull_;

  bool initialized_ = false;
  uint64_t r1_ = 0;  // first matching rank
  uint64_t r2_ = 0;  // one past last matching rank
  std::optional<LazyShuffle> shuffle_;
  uint64_t returned_ = 0;
};

}  // namespace msv::btree

#endif  // MSV_BTREE_BTREE_SAMPLER_H_
