#include "btree/ranked_btree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "storage/heap_file.h"
#include "util/coding.h"
#include "util/logging.h"

namespace msv::btree {

namespace format {

size_t LeafCapacity(size_t page_size, size_t record_size) {
  return (page_size - kPageHeaderSize) / record_size;
}

size_t InternalCapacity(size_t page_size) {
  return (page_size - kPageHeaderSize) / kInternalEntrySize;
}

}  // namespace format

namespace {

using storage::HeapFile;

struct ChildInfo {
  uint64_t page = 0;
  uint64_t count = 0;
  double max_key = 0.0;
};

void WritePageHeader(char* page, uint8_t type, uint32_t count) {
  page[0] = static_cast<char>(type);
  page[1] = page[2] = page[3] = 0;
  EncodeFixed32(page + 4, count);
}

void EncodeSuperblock(char* dst, const BTreeMeta& meta) {
  std::memset(dst, 0, format::kSuperblockSize);
  EncodeFixed64(dst, kBTreeMagic);
  EncodeFixed32(dst + 8, 1);  // version
  EncodeFixed32(dst + 12, static_cast<uint32_t>(meta.page_size));
  EncodeFixed32(dst + 16, static_cast<uint32_t>(meta.record_size));
  EncodeFixed32(dst + 20, meta.records_per_leaf);
  EncodeFixed64(dst + 24, meta.num_records);
  EncodeFixed64(dst + 32, meta.num_leaves);
  EncodeFixed64(dst + 40, meta.root_page);
  EncodeFixed32(dst + 48, meta.height);
}

Result<BTreeMeta> DecodeSuperblock(const char* src) {
  if (DecodeFixed64(src) != kBTreeMagic) {
    return Status::Corruption("bad B+-tree magic");
  }
  if (DecodeFixed32(src + 8) != 1) {
    return Status::Corruption("unsupported B+-tree version");
  }
  BTreeMeta meta;
  meta.page_size = DecodeFixed32(src + 12);
  meta.record_size = DecodeFixed32(src + 16);
  meta.records_per_leaf = DecodeFixed32(src + 20);
  meta.num_records = DecodeFixed64(src + 24);
  meta.num_leaves = DecodeFixed64(src + 32);
  meta.root_page = DecodeFixed64(src + 40);
  meta.height = DecodeFixed32(src + 48);
  if (meta.page_size == 0 || meta.record_size == 0) {
    return Status::Corruption("zero page or record size in superblock");
  }
  return meta;
}

}  // namespace

Status BTreeOptions::Validate(size_t record_size) const {
  if (page_size < format::kPageHeaderSize + record_size) {
    return Status::InvalidArgument("page too small for one record");
  }
  if (format::InternalCapacity(page_size) < 2) {
    return Status::InvalidArgument("page too small for internal fanout 2");
  }
  return Status::OK();
}

Status BuildRankedBTree(io::Env* env, const std::string& input_name,
                        const std::string& output_name,
                        const storage::RecordLayout& layout,
                        const BTreeOptions& options) {
  MSV_RETURN_IF_ERROR(layout.Validate());
  MSV_RETURN_IF_ERROR(options.Validate(layout.record_size));

  // Sort input by key if necessary.
  std::string sorted_name = input_name;
  if (!options.input_sorted) {
    sorted_name = output_name + ".bykey";
    extsort::SortOptions sort_options = options.sort;
    sort_options.temp_prefix = output_name + ".sortrun";
    MSV_RETURN_IF_ERROR(extsort::ExternalSort(
        env, input_name, sorted_name,
        [&layout](const char* a, const char* b) {
          return layout.Key(a, 0) < layout.Key(b, 0);
        },
        sort_options));
  }

  MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> input,
                       HeapFile::Open(env, sorted_name));
  if (input->record_size() != layout.record_size) {
    return Status::InvalidArgument("layout record size mismatch");
  }

  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> out,
                       env->OpenFile(output_name, /*create=*/true));
  MSV_RETURN_IF_ERROR(out->Truncate(0));

  const size_t page_size = options.page_size;
  const size_t leaf_cap = format::LeafCapacity(page_size, layout.record_size);
  std::vector<char> page(page_size, 0);

  // --- Leaf level: stream sorted records into consecutive full pages.
  std::vector<ChildInfo> level;  // children of the level above
  uint64_t next_page = 1;        // page 0 = superblock
  {
    auto scanner = input->NewScanner();
    uint64_t remaining = input->record_count();
    while (remaining > 0) {
      size_t n = static_cast<size_t>(
          std::min<uint64_t>(leaf_cap, remaining));
      std::memset(page.data(), 0, page_size);
      WritePageHeader(page.data(), format::kLeafPage,
                      static_cast<uint32_t>(n));
      double max_key = 0.0;
      for (size_t i = 0; i < n; ++i) {
        MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
        MSV_CHECK(rec != nullptr);
        std::memcpy(page.data() + format::kPageHeaderSize +
                        i * layout.record_size,
                    rec, layout.record_size);
        max_key = layout.Key(rec, 0);
      }
      remaining -= n;
      MSV_RETURN_IF_ERROR(
          out->Write(next_page * page_size, page.data(), page_size));
      level.push_back(ChildInfo{next_page, n, max_key});
      ++next_page;
    }
  }

  BTreeMeta meta;
  meta.page_size = page_size;
  meta.record_size = layout.record_size;
  meta.records_per_leaf = static_cast<uint32_t>(leaf_cap);
  meta.num_records = input->record_count();
  meta.num_leaves = level.size();
  meta.height = 1;

  // Degenerate: empty relation -> single empty leaf as root.
  if (level.empty()) {
    std::memset(page.data(), 0, page_size);
    WritePageHeader(page.data(), format::kLeafPage, 0);
    MSV_RETURN_IF_ERROR(
        out->Write(next_page * page_size, page.data(), page_size));
    level.push_back(ChildInfo{next_page, 0, 0.0});
    meta.num_leaves = 1;
    ++next_page;
  }

  // --- Internal levels, bottom-up until a single root remains.
  const size_t internal_cap = format::InternalCapacity(page_size);
  while (level.size() > 1) {
    std::vector<ChildInfo> parent_level;
    for (size_t i = 0; i < level.size(); i += internal_cap) {
      size_t n = std::min(internal_cap, level.size() - i);
      std::memset(page.data(), 0, page_size);
      WritePageHeader(page.data(), format::kInternalPage,
                      static_cast<uint32_t>(n));
      uint64_t count = 0;
      double max_key = 0.0;
      for (size_t j = 0; j < n; ++j) {
        const ChildInfo& child = level[i + j];
        char* entry = page.data() + format::kPageHeaderSize +
                      j * format::kInternalEntrySize;
        EncodeFixed64(entry, child.page);
        EncodeFixed64(entry + 8, child.count);
        EncodeDouble(entry + 16, child.max_key);
        count += child.count;
        max_key = child.max_key;
      }
      MSV_RETURN_IF_ERROR(
          out->Write(next_page * page_size, page.data(), page_size));
      parent_level.push_back(ChildInfo{next_page, count, max_key});
      ++next_page;
    }
    level = std::move(parent_level);
    ++meta.height;
  }
  meta.root_page = level[0].page;

  // --- Superblock last (so a crash mid-build leaves no valid file).
  std::memset(page.data(), 0, page_size);
  EncodeSuperblock(page.data(), meta);
  MSV_RETURN_IF_ERROR(out->Write(0, page.data(), page_size));
  MSV_RETURN_IF_ERROR(out->Sync());

  if (!options.input_sorted) {
    env->DeleteFile(sorted_name).IgnoreError();  // best-effort scratch cleanup
  }
  return Status::OK();
}

Result<std::unique_ptr<RankedBTree>> RankedBTree::Open(
    io::Env* env, const std::string& name,
    const storage::RecordLayout& layout, io::BufferPool* pool,
    uint64_t file_id) {
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                       env->OpenFile(name, /*create=*/false));
  char header[format::kSuperblockSize];
  MSV_RETURN_IF_ERROR(file->ReadExact(0, sizeof(header), header));
  MSV_ASSIGN_OR_RETURN(BTreeMeta meta, DecodeSuperblock(header));
  if (meta.record_size != layout.record_size) {
    return Status::InvalidArgument("layout record size mismatch");
  }
  if (pool->page_size() != meta.page_size) {
    return Status::InvalidArgument("buffer pool page size mismatch");
  }
  return std::unique_ptr<RankedBTree>(new RankedBTree(
      std::move(file), layout, pool, file_id, meta));
}

Result<io::PageRef> RankedBTree::GetPage(uint64_t page_no) const {
  return pool_->Get(file_.get(), file_id_, page_no);
}

Result<uint64_t> RankedBTree::CountLess(double key) const {
  uint64_t rank = 0;
  uint64_t page_no = meta_.root_page;
  for (;;) {
    MSV_ASSIGN_OR_RETURN(io::PageRef page, GetPage(page_no));
    const char* data = page.data();
    uint8_t type = static_cast<uint8_t>(data[0]);
    uint32_t count = DecodeFixed32(data + 4);
    if (type == format::kLeafPage) {
      for (uint32_t i = 0; i < count; ++i) {
        const char* rec =
            data + format::kPageHeaderSize + i * meta_.record_size;
        if (layout_.Key(rec, 0) < key) {
          ++rank;
        } else {
          break;
        }
      }
      return rank;
    }
    if (type != format::kInternalPage) {
      return Status::Corruption("unknown page type");
    }
    // Descend into the first child whose max key >= `key`; all earlier
    // children contain only smaller keys.
    uint64_t next = 0;
    bool descended = false;
    for (uint32_t i = 0; i < count; ++i) {
      const char* entry = data + format::kPageHeaderSize +
                          i * format::kInternalEntrySize;
      double max_key = DecodeDouble(entry + 16);
      uint64_t child_count = DecodeFixed64(entry + 8);
      if (max_key >= key) {
        next = DecodeFixed64(entry);
        descended = true;
        break;
      }
      rank += child_count;
    }
    if (!descended) return rank;  // key beyond every record
    page_no = next;
  }
}

Result<uint64_t> RankedBTree::CountLessOrEqual(double key) const {
  // For IEEE doubles, {x : x <= key} == {x : x < nextafter(key, +inf)}.
  return CountLess(std::nextafter(key, std::numeric_limits<double>::infinity()));
}

Status RankedBTree::ReadByRank(uint64_t rank, char* out) const {
  if (rank >= meta_.num_records) {
    return Status::OutOfRange("rank " + std::to_string(rank) +
                              " >= record count");
  }
  uint64_t page_no = meta_.root_page;
  uint64_t remaining = rank;
  for (;;) {
    MSV_ASSIGN_OR_RETURN(io::PageRef page, GetPage(page_no));
    const char* data = page.data();
    uint8_t type = static_cast<uint8_t>(data[0]);
    uint32_t count = DecodeFixed32(data + 4);
    if (type == format::kLeafPage) {
      if (remaining >= count) {
        return Status::Corruption("rank descent overran leaf");
      }
      std::memcpy(out,
                  data + format::kPageHeaderSize +
                      remaining * meta_.record_size,
                  meta_.record_size);
      return Status::OK();
    }
    if (type != format::kInternalPage) {
      return Status::Corruption("unknown page type");
    }
    bool descended = false;
    for (uint32_t i = 0; i < count; ++i) {
      const char* entry = data + format::kPageHeaderSize +
                          i * format::kInternalEntrySize;
      uint64_t child_count = DecodeFixed64(entry + 8);
      if (remaining < child_count) {
        page_no = DecodeFixed64(entry);
        descended = true;
        break;
      }
      remaining -= child_count;
    }
    if (!descended) {
      return Status::Corruption("rank descent fell off internal node");
    }
  }
}

Result<uint32_t> RankedBTree::ReadLeafRecords(uint64_t leaf,
                                              std::string* out) const {
  if (leaf >= meta_.num_leaves) {
    return Status::OutOfRange("leaf ordinal out of range");
  }
  // Leaves are pages 1..num_leaves in key order (bulk-built layout).
  MSV_ASSIGN_OR_RETURN(io::PageRef page, GetPage(1 + leaf));
  const char* data = page.data();
  if (static_cast<uint8_t>(data[0]) != format::kLeafPage) {
    return Status::Corruption("expected a leaf page");
  }
  uint32_t count = DecodeFixed32(data + 4);
  out->append(data + format::kPageHeaderSize,
              static_cast<size_t>(count) * meta_.record_size);
  return count;
}

Result<double> RankedBTree::KeyAtRank(uint64_t rank) const {
  std::vector<char> rec(meta_.record_size);
  MSV_RETURN_IF_ERROR(ReadByRank(rank, rec.data()));
  return layout_.Key(rec.data(), 0);
}

}  // namespace msv::btree
