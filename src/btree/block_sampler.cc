#include "btree/block_sampler.h"

#include "util/logging.h"

namespace msv::btree {

BlockSampler::BlockSampler(const RankedBTree* tree,
                           sampling::RangeQuery query, uint64_t seed)
    : tree_(tree), query_(query), rng_(seed) {
  MSV_CHECK_MSG(query_.dims == 1, "block sampling is one-dimensional");
}

Status BlockSampler::Initialize() {
  MSV_ASSIGN_OR_RETURN(uint64_t r1, tree_->CountLess(query_.bounds[0].lo));
  MSV_ASSIGN_OR_RETURN(uint64_t r2,
                       tree_->CountLessOrEqual(query_.bounds[0].hi));
  const uint32_t per_leaf = tree_->meta().records_per_leaf;
  if (r2 <= r1 || per_leaf == 0) {
    first_leaf_ = 1;
    last_leaf_ = 0;
    shuffle_.emplace(0);
  } else {
    first_leaf_ = r1 / per_leaf;
    last_leaf_ = (r2 - 1) / per_leaf;
    shuffle_.emplace(last_leaf_ - first_leaf_ + 1);
  }
  initialized_ = true;
  return Status::OK();
}

Result<sampling::SampleBatch> BlockSampler::NextBatch() {
  sampling::SampleBatch batch;
  batch.record_size = tree_->meta().record_size;
  if (!initialized_) {
    MSV_RETURN_IF_ERROR(Initialize());
    return batch;
  }
  if (shuffle_->done()) return batch;

  uint64_t leaf = first_leaf_ + shuffle_->Next(&rng_);
  std::string page_records;
  MSV_ASSIGN_OR_RETURN(uint32_t count,
                       tree_->ReadLeafRecords(leaf, &page_records));
  ++pages_read_;
  const auto& layout = tree_->layout();
  for (uint32_t i = 0; i < count; ++i) {
    const char* rec = page_records.data() + i * batch.record_size;
    if (query_.Matches(layout, rec)) {
      batch.Append(rec);
      ++returned_;
    }
  }
  return batch;
}

}  // namespace msv::btree
