#include "btree/btree_sampler.h"

#include <vector>

#include "util/logging.h"

namespace msv::btree {

BTreeSampler::BTreeSampler(const RankedBTree* tree,
                           sampling::RangeQuery query, uint64_t seed,
                           size_t records_per_pull)
    : tree_(tree),
      query_(query),
      rng_(seed),
      records_per_pull_(records_per_pull) {
  MSV_CHECK(records_per_pull_ > 0);
  MSV_CHECK_MSG(query_.dims == 1, "B+-tree sampling is one-dimensional");
}

Status BTreeSampler::Initialize() {
  // Steps 1-2 of Algorithm 1: find the ranks delimiting the query range.
  MSV_ASSIGN_OR_RETURN(r1_, tree_->CountLess(query_.bounds[0].lo));
  MSV_ASSIGN_OR_RETURN(r2_, tree_->CountLessOrEqual(query_.bounds[0].hi));
  if (r2_ < r1_) r2_ = r1_;
  shuffle_.emplace(r2_ - r1_);
  initialized_ = true;
  return Status::OK();
}

Result<sampling::SampleBatch> BTreeSampler::NextBatch() {
  sampling::SampleBatch batch;
  batch.record_size = tree_->meta().record_size;
  if (!initialized_) {
    MSV_RETURN_IF_ERROR(Initialize());
    return batch;  // the two rank descents were this pull's I/O
  }
  if (shuffle_->done()) return batch;

  std::vector<char> rec(tree_->meta().record_size);
  for (size_t i = 0; i < records_per_pull_ && !shuffle_->done(); ++i) {
    uint64_t rank = r1_ + shuffle_->Next(&rng_);
    MSV_RETURN_IF_ERROR(tree_->ReadByRank(rank, rec.data()));
    batch.Append(rec.data());
    ++returned_;
  }
  return batch;
}

}  // namespace msv::btree
