#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/logging.h"

namespace msv {

namespace bucketing {

std::vector<double> LinearEdges(double lo, double hi, size_t buckets) {
  MSV_DCHECK(hi > lo);
  MSV_DCHECK(buckets > 0);
  std::vector<double> edges(buckets + 1);
  double width = (hi - lo) / static_cast<double>(buckets);
  for (size_t i = 0; i <= buckets; ++i) {
    edges[i] = lo + width * static_cast<double>(i);
  }
  edges.back() = hi;  // exact upper edge despite fp accumulation
  return edges;
}

std::vector<double> LogLinearEdges(unsigned max_octave, unsigned sub) {
  MSV_DCHECK(sub > 0);
  std::vector<double> edges;
  edges.reserve(2 + static_cast<size_t>(max_octave) * sub);
  edges.push_back(0.0);
  edges.push_back(1.0);
  for (unsigned e = 0; e < max_octave; ++e) {
    double base = std::ldexp(1.0, static_cast<int>(e));
    double step = base / static_cast<double>(sub);
    for (unsigned s = 1; s <= sub; ++s) {
      edges.push_back(base + step * static_cast<double>(s));
    }
  }
  return edges;
}

size_t BucketFor(const std::vector<double>& edges, double v) {
  MSV_DCHECK(edges.size() >= 2);
  MSV_DCHECK(v >= edges.front() && v < edges.back());
  auto it = std::upper_bound(edges.begin(), edges.end(), v);
  return static_cast<size_t>(it - edges.begin()) - 1;
}

double QuantileFromCounts(const std::vector<double>& edges,
                          const uint64_t* counts, uint64_t underflow,
                          uint64_t overflow, uint64_t total, double q) {
  MSV_DCHECK(q >= 0.0 && q <= 1.0);
  (void)overflow;  // implied by total; kept for call-site clarity
  if (total == 0) return 0.0;
  double target = q * static_cast<double>(total);
  double cum = static_cast<double>(underflow);
  if (cum >= target) return edges.front();
  const size_t n = edges.size() - 1;
  for (size_t i = 0; i < n; ++i) {
    double next = cum + static_cast<double>(counts[i]);
    if (next >= target && counts[i] > 0) {
      double frac = (target - cum) / static_cast<double>(counts[i]);
      return edges[i] + (edges[i + 1] - edges[i]) * frac;
    }
    cum = next;
  }
  return edges.back();
}

std::string RenderCounts(const std::vector<double>& edges,
                         const uint64_t* counts, uint64_t total, double mean,
                         double min_seen, double max_seen) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "count=%llu mean=%.4g min=%.4g max=%.4g\n",
                static_cast<unsigned long long>(total), mean,
                total ? min_seen : 0.0, total ? max_seen : 0.0);
  out += line;
  const size_t n = edges.size() - 1;
  uint64_t peak = 1;
  for (size_t i = 0; i < n; ++i) peak = std::max(peak, counts[i]);
  for (size_t i = 0; i < n; ++i) {
    if (counts[i] == 0) continue;
    int bar = static_cast<int>(50.0 * static_cast<double>(counts[i]) /
                               static_cast<double>(peak));
    std::snprintf(line, sizeof(line), "[%10.4g, %10.4g) %8llu %s\n",
                  edges[i], edges[i + 1],
                  static_cast<unsigned long long>(counts[i]),
                  std::string(static_cast<size_t>(bar), '#').c_str());
    out += line;
  }
  return out;
}

}  // namespace bucketing

Histogram::Histogram(double lo, double hi, size_t buckets)
    : edges_(bucketing::LinearEdges(lo, hi, buckets)),
      lo_(lo),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void Histogram::Add(double value) {
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (value < edges_.front()) {
    ++underflow_;
  } else if (value >= edges_.back()) {
    ++overflow_;
  } else {
    // Equal-width layout: direct arithmetic beats the shared binary
    // search and lands in the same cell.
    size_t i = static_cast<size_t>((value - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge
    ++counts_[i];
  }
}

void Histogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double Histogram::Quantile(double q) const {
  return bucketing::QuantileFromCounts(edges_, counts_.data(), underflow_,
                                       overflow_, count_, q);
}

std::string Histogram::ToString() const {
  return bucketing::RenderCounts(edges_, counts_.data(), count_, mean(),
                                 min_, max_);
}

}  // namespace msv
