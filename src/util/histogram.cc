#include "util/histogram.h"

#include <algorithm>
#include "util/logging.h"
#include <cmath>
#include <cstdio>
#include <limits>

namespace msv {

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  MSV_DCHECK(hi > lo);
  MSV_DCHECK(buckets > 0);
}

void Histogram::Add(double value) {
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (value < lo_) {
    ++underflow_;
  } else if (value >= hi_) {
    ++overflow_;
  } else {
    size_t i = static_cast<size_t>((value - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge
    ++counts_[i];
  }
}

void Histogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

double Histogram::Quantile(double q) const {
  MSV_DCHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (cum >= target) return lo_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      double frac = (target - cum) / static_cast<double>(counts_[i]);
      return lo_ + width_ * (static_cast<double>(i) + frac);
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToString() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "count=%llu mean=%.4g min=%.4g max=%.4g\n",
                static_cast<unsigned long long>(count_), mean(),
                count_ ? min_ : 0.0, count_ ? max_ : 0.0);
  out += line;
  uint64_t peak = 1;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    int bar = static_cast<int>(50.0 * static_cast<double>(counts_[i]) /
                               static_cast<double>(peak));
    std::snprintf(line, sizeof(line), "[%10.4g, %10.4g) %8llu %s\n",
                  lo_ + width_ * static_cast<double>(i),
                  lo_ + width_ * static_cast<double>(i + 1),
                  static_cast<unsigned long long>(counts_[i]),
                  std::string(static_cast<size_t>(bar), '#').c_str());
    out += line;
  }
  return out;
}

}  // namespace msv
