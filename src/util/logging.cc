#include "util/logging.h"

#include <atomic>

namespace msv {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<LogSinkFn> g_sink{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogSinkFn SetLogSink(LogSinkFn sink) { return g_sink.exchange(sink); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()),
      level_(level),
      file_(file),
      line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  LogSinkFn sink = g_sink.load();
  if (sink) {
    sink(level_, file_, line_, stream_.str());
    return;
  }
  const char* base = file_;
  for (const char* p = file_; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  // Default sink: one preformatted line to stderr.
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), base,  // NOLINT(msv-raw-logging)
               line_, stream_.str().c_str());
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& message) {
  // Abort path stays on raw stderr: it must work even mid-crash, with
  // the structured logger's locks possibly held by the failing thread.
  std::fprintf(stderr, "CHECK failed: %s at %s:%d %s\n", expr, file,  // NOLINT(msv-raw-logging)
               line, message.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace msv
