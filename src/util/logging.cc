#include "util/logging.h"

#include <atomic>

namespace msv {
namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

void CheckFailed(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d %s\n", expr, file, line,
               message.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace msv
