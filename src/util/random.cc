#include "util/random.h"

#include <unordered_set>

#include "util/logging.h"

namespace msv {

std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k,
                                               Pcg64* rng) {
  MSV_DCHECK(k <= n);
  // Robert Floyd's algorithm: for j = n-k .. n-1, draw t in [0, j]; insert
  // t unless already present, else insert j. Each k-subset is equally
  // likely.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(k));
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = rng->Below(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace msv
