#include "util/random.h"

#include <unordered_set>

#include "util/logging.h"

namespace msv {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30u)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27u)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31u);
}

Pcg64 DeriveRngStream(uint64_t root_seed, uint64_t stream_id) {
  // Mix the stream id into the SplitMix state before drawing, so streams
  // 0 and 1 of one root share no arithmetic relationship. Pinned by the
  // RngStreamDerivationGolden test — do not change.
  uint64_t state = root_seed ^ (stream_id * 0xda3e39cb94b95bdbULL);
  uint64_t seed = SplitMix64(&state);
  uint64_t stream = SplitMix64(&state);
  return Pcg64(seed, stream);
}

std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k,
                                               Pcg64* rng) {
  MSV_DCHECK(k <= n);
  // Robert Floyd's algorithm: for j = n-k .. n-1, draw t in [0, j]; insert
  // t unless already present, else insert j. Each k-subset is equally
  // likely.
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(static_cast<size_t>(k) * 2);
  std::vector<uint64_t> out;
  out.reserve(static_cast<size_t>(k));
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = rng->Below(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace msv
