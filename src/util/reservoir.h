// Reservoir sampling (Vitter's Algorithm R): maintain a uniform k-subset
// of a stream of unknown length in O(k) memory. Used by the k-d ACE tree
// builder for split-point estimation and available as a general utility.

#ifndef MSV_UTIL_RESERVOIR_H_
#define MSV_UTIL_RESERVOIR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/random.h"

namespace msv {

template <typename T>
class ReservoirSampler {
 public:
  /// Holds at most `capacity` items.
  explicit ReservoirSampler(size_t capacity) : capacity_(capacity) {
    sample_.reserve(capacity);
  }

  /// Offers one stream element; each element seen so far has probability
  /// capacity/seen of being in the reservoir afterwards.
  void Offer(T value, Pcg64* rng) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(std::move(value));
      return;
    }
    uint64_t j = rng->Below(seen_);
    if (j < capacity_) {
      sample_[static_cast<size_t>(j)] = std::move(value);
    }
  }

  uint64_t seen() const { return seen_; }
  const std::vector<T>& sample() const { return sample_; }
  std::vector<T>&& TakeSample() && { return std::move(sample_); }
  bool IsExhaustive() const { return seen_ <= capacity_; }

 private:
  size_t capacity_;
  uint64_t seen_ = 0;
  std::vector<T> sample_;
};

}  // namespace msv

#endif  // MSV_UTIL_RESERVOIR_H_
