// Capability-annotated synchronization primitives.
//
// Every lock in the library goes through these wrappers so that Clang's
// Thread Safety Analysis (-Wthread-safety) can prove the locking
// discipline at compile time: which fields a mutex guards (MSV_GUARDED_BY),
// which private methods may only run with a lock held (MSV_REQUIRES /
// MSV_REQUIRES_SHARED), and that every acquire is matched by a release on
// every path. On compilers without the annotations (GCC) the macros expand
// to nothing and the wrappers are zero-cost veneers over the std types, so
// the portable build is unchanged while every Clang build — the CI
// `thread-safety` job compiles with -Wthread-safety -Wthread-safety-beta
// promoted to errors — rejects discipline violations before they become
// TSan-only interleaving bugs.
//
// Raw std::mutex / std::shared_mutex / std::lock_guard / std::unique_lock /
// std::condition_variable are banned outside this header by the
// msv-raw-sync lint rule (tools/lint.py). Annotation conventions are
// documented in DESIGN.md §11; the negative-compilation harness in
// tests/thread_safety_compile_test.cmake proves the analysis actually
// rejects the classic bad patterns (unguarded read, missing unlock, write
// under a shared lock).

#ifndef MSV_UTIL_SYNC_H_
#define MSV_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Thread-safety annotation macros (Clang attributes; no-ops elsewhere).
// Names follow the clang documentation's canonical macro set with an MSV_
// prefix to keep the global namespace clean.
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define MSV_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MSV_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex", "shared_mutex", ...).
#define MSV_CAPABILITY(x) MSV_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define MSV_SCOPED_CAPABILITY MSV_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be accessed with the given capability held (exclusively
/// for writes, at least shared for reads).
#define MSV_GUARDED_BY(x) MSV_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed with the capability.
#define MSV_PT_GUARDED_BY(x) MSV_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability held exclusively on entry (and does
/// not release it).
#define MSV_REQUIRES(...) \
  MSV_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the capability held at least shared on entry.
#define MSV_REQUIRES_SHARED(...) \
  MSV_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability exclusively and holds it on return.
#define MSV_ACQUIRE(...) \
  MSV_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability shared and holds it on return.
#define MSV_ACQUIRE_SHARED(...) \
  MSV_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases an exclusively-held capability.
#define MSV_RELEASE(...) \
  MSV_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a shared-held capability.
#define MSV_RELEASE_SHARED(...) \
  MSV_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function releases a capability whatever mode it was acquired in —
/// the right destructor annotation for scoped lockers that may hold the
/// underlying capability shared (ReaderLock).
#if defined(__clang__) && __has_attribute(release_generic_capability)
#define MSV_RELEASE_GENERIC(...) \
  __attribute__((release_generic_capability(__VA_ARGS__)))
#else
#define MSV_RELEASE_GENERIC(...) \
  MSV_THREAD_ANNOTATION_(unlock_function(__VA_ARGS__))
#endif

/// Function attempts the acquire; holds the capability iff it returned
/// the given boolean value.
#define MSV_TRY_ACQUIRE(...) \
  MSV_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define MSV_TRY_ACQUIRE_SHARED(...) \
  MSV_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for functions that
/// acquire it themselves).
#define MSV_EXCLUDES(...) MSV_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime-checked assertion that the capability is held; informs the
/// analysis on paths it cannot prove (e.g. external locking contracts).
#define MSV_ASSERT_CAPABILITY(x) MSV_THREAD_ANNOTATION_(assert_capability(x))

#define MSV_ASSERT_SHARED_CAPABILITY(x) \
  MSV_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Function returns a reference to the given capability (lock accessors).
#define MSV_RETURN_CAPABILITY(x) MSV_THREAD_ANNOTATION_(lock_returned(x))

/// Documented lock-ordering edges, checked under -Wthread-safety-beta.
#define MSV_ACQUIRED_BEFORE(...) \
  MSV_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define MSV_ACQUIRED_AFTER(...) \
  MSV_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the discipline holds anyway.
#define MSV_NO_THREAD_SAFETY_ANALYSIS \
  MSV_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace msv {

class CondVar;

/// Plain exclusive mutex (std::mutex) carrying the "mutex" capability.
class MSV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MSV_ACQUIRE() { mu_.lock(); }
  void Unlock() MSV_RELEASE() { mu_.unlock(); }
  bool TryLock() MSV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis (not the runtime) that this thread holds the
  /// lock — for contracts the analysis cannot see, e.g. callbacks invoked
  /// under a lock taken elsewhere.
  void AssertHeld() MSV_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer mutex (std::shared_mutex) carrying the "shared_mutex"
/// capability: writes need Lock(), reads need at least LockShared().
class MSV_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MSV_ACQUIRE() { mu_.lock(); }
  void Unlock() MSV_RELEASE() { mu_.unlock(); }
  bool TryLock() MSV_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() MSV_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() MSV_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() MSV_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  void AssertHeld() MSV_ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() MSV_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex (the std::lock_guard replacement).
class MSV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MSV_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() MSV_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over a SharedMutex (writer side).
class MSV_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MSV_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() MSV_RELEASE_GENERIC() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over a SharedMutex (reader side). Writes to fields
/// guarded by the SharedMutex are compile errors while only this is held.
class MSV_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) MSV_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() MSV_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable waiting on a Mutex. Wait takes the mutex the caller
/// already holds — annotated MSV_REQUIRES(mu) — so the analysis checks the
/// wait is issued under the right lock. There is deliberately no
/// predicate-lambda overload: the analysis cannot see through lambda
/// boundaries, so callers write the standard explicit loop
///
///     MutexLock lock(mu_);
///     while (!condition) cv_.Wait(mu_);
///
/// which keeps every guarded read inside the annotated function body.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires `mu`.
  /// Spurious wakeups happen; always wait in a condition loop.
  void Wait(Mutex& mu) MSV_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Timed wait; returns false on timeout (true on notify OR spurious
  /// wakeup — re-check the condition either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      MSV_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    bool notified = cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace msv

#endif  // MSV_UTIL_SYNC_H_
