// Little-endian fixed-width encoding helpers for on-disk formats.
//
// All MSV file formats are explicitly little-endian regardless of host
// byte order, so files are portable across machines.

#ifndef MSV_UTIL_CODING_H_
#define MSV_UTIL_CODING_H_

#include <cstdint>
#include <cstring>

namespace msv {

inline void EncodeFixed32(char* dst, uint32_t v) {
  std::memcpy(dst, &v, sizeof(v));  // little-endian hosts only; asserted below
}

inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, sizeof(v)); }

inline void EncodeDouble(char* dst, double v) { std::memcpy(dst, &v, sizeof(v)); }

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

inline double DecodeDouble(const char* src) {
  double v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

static_assert(sizeof(double) == 8, "IEEE-754 binary64 required");

}  // namespace msv

#endif  // MSV_UTIL_CODING_H_
