// Status: lightweight error propagation for I/O and index code paths.
//
// Follows the RocksDB/Arrow convention: functions that can fail return a
// Status (or Result<T>, see result.h) instead of throwing. Statuses are
// cheap to copy in the OK case (no allocation) and carry a code plus a
// human-readable message otherwise.

#ifndef MSV_UTIL_STATUS_H_
#define MSV_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace msv {

/// Error categories used across the library.
enum class StatusCode : unsigned char {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kNotSupported,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
};

/// Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. An OK status carries no payload
/// and no allocation; error statuses carry a code and message.
///
/// Marked [[nodiscard]] (like Result<T>): a caller that drops a Status on
/// the floor is almost always a bug. The rare deliberate ignore must spell
/// out why, e.g. `status.IgnoreError();  // best-effort cleanup`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const noexcept { return rep_ == nullptr; }
  StatusCode code() const noexcept {
    return rep_ ? rep_->code : StatusCode::kOk;
  }
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// Message attached at construction; empty for OK.
  std::string_view message() const noexcept {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// "OK" or "<Code>: <message>"; suitable for logs and test failures.
  std::string ToString() const;

  /// Explicitly discards this status. The only sanctioned way to ignore a
  /// Status-returning call; the call site should say why in a comment
  /// (best-effort cleanup, error already reported through another channel).
  void IgnoreError() const noexcept {}

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_unique<Rep>(Rep{code, std::move(msg)})) {}

  std::unique_ptr<Rep> rep_;  // nullptr <=> OK
};

}  // namespace msv

/// Propagates a non-OK status to the caller; evaluates `expr` exactly once.
#define MSV_RETURN_IF_ERROR(expr)                    \
  do {                                               \
    ::msv::Status _msv_status = (expr);              \
    if (!_msv_status.ok()) return _msv_status;       \
  } while (0)

#endif  // MSV_UTIL_STATUS_H_
