// Result<T>: a value-or-Status holder, analogous to arrow::Result /
// absl::StatusOr. Used by factory functions and read paths that produce a
// value on success.

#ifndef MSV_UTIL_RESULT_H_
#define MSV_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace msv {

/// Holds either a T or a non-OK Status.
///
/// A Result is never in an "OK but empty" state: constructing from an OK
/// status is a programming error (asserted in debug builds, converted to an
/// Internal error otherwise).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Success: wraps a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Failure: wraps a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    MSV_DCHECK(!status_.ok() && "Result constructed from an OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is held.
  const Status& status() const { return status_; }

  /// Value accessors; must only be called when ok().
  T& value() & {
    MSV_DCHECK(ok());
    return *value_;
  }
  const T& value() const& {
    MSV_DCHECK(ok());
    return *value_;
  }
  T&& value() && {
    MSV_DCHECK(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

}  // namespace msv

/// Assigns the value of a Result-producing expression to `lhs`, or returns
/// its status. `lhs` may be a declaration ("auto x") or an existing lvalue.
#define MSV_ASSIGN_OR_RETURN(lhs, expr)                        \
  MSV_ASSIGN_OR_RETURN_IMPL_(                                  \
      MSV_RESULT_CONCAT_(_msv_result_, __LINE__), lhs, expr)

#define MSV_RESULT_CONCAT_INNER_(a, b) a##b
#define MSV_RESULT_CONCAT_(a, b) MSV_RESULT_CONCAT_INNER_(a, b)

#define MSV_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#endif  // MSV_UTIL_RESULT_H_
