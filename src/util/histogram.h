// Histograms used by I/O statistics, the metrics registry and the
// benchmark harness.
//
// There is exactly ONE implementation of bucket bookkeeping (edge
// construction, value->bucket mapping, interpolated quantiles, ASCII
// rendering) — the free functions in msv::bucketing — and two facades
// over it:
//
//   * msv::Histogram           fixed-range equal-width buckets,
//                              thread-compatible (no locking);
//   * msv::obs::LogHistogram   log-linear buckets with atomic counts,
//                              safe for concurrent Record() calls
//                              (see obs/metrics.h).

#ifndef MSV_UTIL_HISTOGRAM_H_
#define MSV_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msv {

namespace bucketing {

/// `buckets`+1 edges for equal-width cells spanning [lo, hi).
std::vector<double> LinearEdges(double lo, double hi, size_t buckets);

/// Edges for a log-linear layout over [0, 2^max_octave): one cell for
/// [0, 1), then every power-of-two octave [2^k, 2^(k+1)) split into `sub`
/// equal-width cells. Relative quantile error is bounded by 1/sub.
std::vector<double> LogLinearEdges(unsigned max_octave, unsigned sub);

/// Index of the cell containing `v`: edges[i] <= v < edges[i+1].
/// Requires edges.front() <= v < edges.back().
size_t BucketFor(const std::vector<double>& edges, double v);

/// Interpolated quantile from per-cell counts. `counts[i]` covers
/// [edges[i], edges[i+1]); `underflow`/`overflow` sit below/above the
/// edge range; `total` = underflow + overflow + sum(counts).
double QuantileFromCounts(const std::vector<double>& edges,
                          const uint64_t* counts, uint64_t underflow,
                          uint64_t overflow, uint64_t total, double q);

/// Multi-line ASCII rendering (header line + one bar per non-empty cell).
std::string RenderCounts(const std::vector<double>& edges,
                         const uint64_t* counts, uint64_t total, double mean,
                         double min_seen, double max_seen);

}  // namespace bucketing

/// Histogram over a fixed numeric range with equal-width buckets, plus
/// underflow/overflow buckets. Thread-compatible (no internal locking).
class Histogram {
 public:
  /// Buckets span [lo, hi) divided into `buckets` equal cells.
  Histogram(double lo, double hi, size_t buckets);

  void Add(double value);
  void Clear();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min_seen() const { return min_; }
  double max_seen() const { return max_; }

  /// Count in bucket i (excluding under/overflow).
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }

  /// Approximate quantile (linear interpolation inside the bucket).
  double Quantile(double q) const;

  /// Percentile accessors used by trace reports.
  double Percentile(double p) const { return Quantile(p / 100.0); }
  double P50() const { return Percentile(50); }
  double P95() const { return Percentile(95); }
  double P99() const { return Percentile(99); }

  /// Multi-line ASCII rendering for logs.
  std::string ToString() const;

 private:
  std::vector<double> edges_;
  double lo_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace msv

#endif  // MSV_UTIL_HISTOGRAM_H_
