// Fixed-bucket and log-scale histograms used by I/O statistics and the
// benchmark harness.

#ifndef MSV_UTIL_HISTOGRAM_H_
#define MSV_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace msv {

/// Histogram over a fixed numeric range with equal-width buckets, plus
/// underflow/overflow buckets. Thread-compatible (no internal locking).
class Histogram {
 public:
  /// Buckets span [lo, hi) divided into `buckets` equal cells.
  Histogram(double lo, double hi, size_t buckets);

  void Add(double value);
  void Clear();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min_seen() const { return min_; }
  double max_seen() const { return max_; }

  /// Count in bucket i (excluding under/overflow).
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }

  /// Approximate quantile (linear interpolation inside the bucket).
  double Quantile(double q) const;

  /// Multi-line ASCII rendering for logs.
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace msv

#endif  // MSV_UTIL_HISTOGRAM_H_
