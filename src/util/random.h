// Deterministic pseudo-random number generation for the whole library.
//
// Every randomized component (data generation, ACE tree construction,
// samplers, tests, benchmarks) draws from Pcg64, a small permuted
// congruential generator. All experiments are reproducible given a seed.

#ifndef MSV_UTIL_RANDOM_H_
#define MSV_UTIL_RANDOM_H_

#include "util/logging.h"
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace msv {

/// PCG-XSL-RR 128/64: high-quality 64-bit generator with 128-bit state.
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions, but the helpers below are preferred since
/// they are deterministic across standard library implementations.
class Pcg64 {
 public:
  using result_type = uint64_t;

  explicit Pcg64(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (static_cast<unsigned __int128>(stream) << 1u) | 1u;
    Next();
    state_ += (static_cast<unsigned __int128>(seed) << 64u) | seed;
    Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return Next(); }

  /// Next raw 64-bit output.
  uint64_t Next() {
    state_ = state_ * kMultiplier + inc_;
    uint64_t xored =
        static_cast<uint64_t>(state_ >> 64u) ^ static_cast<uint64_t>(state_);
    unsigned rot = static_cast<unsigned>(state_ >> 122u);
    return (xored >> rot) | (xored << ((-rot) & 63u));
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method: unbiased and branch-cheap. bound must be > 0.
  uint64_t Below(uint64_t bound) {
    MSV_DCHECK(bound > 0);
    unsigned __int128 product =
        static_cast<unsigned __int128>(Next()) * bound;
    uint64_t low = static_cast<uint64_t>(product);
    if (low < bound) {
      uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
      while (low < threshold) {
        product = static_cast<unsigned __int128>(Next()) * bound;
        low = static_cast<uint64_t>(product);
      }
    }
    return static_cast<uint64_t>(product >> 64u);
  }

  /// Uniform integer in the closed interval [lo, hi].
  uint64_t InRange(uint64_t lo, uint64_t hi) {
    MSV_DCHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble() {
    return static_cast<double>(Next() >> 11u) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double DoubleInRange(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Forks an independent generator; the child stream is derived from this
  /// generator's output so seeding one master seed yields a reproducible
  /// tree of generators.
  Pcg64 Fork() {
    uint64_t seed = Next();
    uint64_t stream = Next();
    return Pcg64(seed, stream);
  }

 private:
  static constexpr unsigned __int128 kMultiplier =
      (static_cast<unsigned __int128>(2549297995355413924ULL) << 64u) |
      4865540595714422341ULL;

  unsigned __int128 state_;
  unsigned __int128 inc_;
};

/// One step of the SplitMix64 sequence: advances `*state` by the golden
/// gamma and returns a well-mixed 64-bit output. This is the standard
/// seed-expansion function (Steele, Lea & Flood 2014); consecutive states
/// yield statistically independent outputs, which is what makes it safe
/// to mint many generator seeds from one root seed.
uint64_t SplitMix64(uint64_t* state);

/// Derives the `stream_id`-th independent Pcg64 from `root_seed`.
///
/// Concurrency contract: every concurrently running sampler/query MUST
/// draw from its own stream (same root, distinct stream_id) instead of
/// sharing one generator — Pcg64 is not thread-safe, and splitting one
/// generator's outputs across threads would also make runs depend on
/// thread scheduling. Distinct stream_ids give distinct PCG increments,
/// so the streams never collide even if their states coincide.
///
/// The derivation (two SplitMix64 draws from root_seed ^ mixed stream_id
/// feeding Pcg64's seed and stream selector) is pinned by a golden test:
/// published experiment numbers depend on it, so changing it is a
/// breaking change to every recorded seed.
Pcg64 DeriveRngStream(uint64_t root_seed, uint64_t stream_id);

/// Fisher-Yates shuffle of an entire vector.
template <typename T>
void Shuffle(std::vector<T>* v, Pcg64* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng->Below(i));
    using std::swap;
    swap((*v)[i - 1], (*v)[j]);
  }
}

/// Returns a uniformly random k-subset of [0, n) in arbitrary order
/// (Floyd's algorithm; O(k) expected time and memory).
std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k,
                                               Pcg64* rng);

/// Incremental Fisher-Yates over [0, n): Next() returns the elements of a
/// uniformly random permutation one at a time, using memory proportional to
/// the number of elements drawn so far. This realizes "generate a random
/// rank, discard duplicates" (Algorithm 1 of the paper) without the
/// coupon-collector slowdown near exhaustion — the sequence of draws has
/// exactly the same distribution.
class LazyShuffle {
 public:
  explicit LazyShuffle(uint64_t n) : n_(n) {}

  bool done() const { return next_ == n_; }
  uint64_t remaining() const { return n_ - next_; }

  /// Next element of the permutation; must not be called when done().
  uint64_t Next(Pcg64* rng) {
    MSV_DCHECK(!done());
    uint64_t i = next_++;
    uint64_t j = i + rng->Below(n_ - i);
    uint64_t vi = ValueAt(i);
    uint64_t vj = ValueAt(j);
    if (i != j) {
      swaps_[j] = vi;  // position j now holds what was at i
    }
    swaps_.erase(i);  // position i is consumed; free its entry
    return vj;
  }

 private:
  uint64_t ValueAt(uint64_t pos) const {
    auto it = swaps_.find(pos);
    return it == swaps_.end() ? pos : it->second;
  }

  uint64_t n_;
  uint64_t next_ = 0;
  std::unordered_map<uint64_t, uint64_t> swaps_;
};

}  // namespace msv

#endif  // MSV_UTIL_RANDOM_H_
