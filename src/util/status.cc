#include "util/status.h"

namespace msv {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out.append(": ");
  out.append(rep_->message);
  return out;
}

}  // namespace msv
