#include "util/crc32c.h"

namespace msv {
namespace {

// Table for the Castagnoli polynomial 0x1EDC6F41 (reflected 0x82F63B78).
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32c(const char* data, size_t n, uint32_t init) {
  const Crc32cTable& table = Table();
  uint32_t crc = ~init;
  for (size_t i = 0; i < n; ++i) {
    crc = table.entries[(crc ^ static_cast<unsigned char>(data[i])) & 0xffu] ^
          (crc >> 8);
  }
  return ~crc;
}

}  // namespace msv
