#include "util/cpu.h"

#include <cstdlib>
#include <mutex>  // NOLINT(msv-raw-sync) std::call_once only; no lockable state

#include "util/logging.h"

namespace msv::util {

const char* CpuLevelName(CpuLevel level) {
  switch (level) {
    case CpuLevel::kScalar:
      return "scalar";
    case CpuLevel::kSse2:
      return "sse2";
    case CpuLevel::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool ParseCpuLevel(const std::string& name, CpuLevel* out) {
  if (name == "scalar") {
    *out = CpuLevel::kScalar;
  } else if (name == "sse2") {
    *out = CpuLevel::kSse2;
  } else if (name == "avx2") {
    *out = CpuLevel::kAvx2;
  } else {
    return false;
  }
  return true;
}

CpuLevel DetectCpuLevel() {
#if defined(__x86_64__) || defined(_M_X64)
  // cpuid via the compiler builtin: resolves the feature bits once per
  // process (the builtin caches). SSE2 is architecturally guaranteed on
  // x86-64, so the floor there is kSse2, not kScalar.
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return CpuLevel::kAvx2;
#endif
  return CpuLevel::kSse2;
#else
  return CpuLevel::kScalar;
#endif
}

CpuLevel ClampCpuLevel(CpuLevel requested) {
  CpuLevel detected = DetectCpuLevel();
  return static_cast<int>(requested) <= static_cast<int>(detected) ? requested
                                                                   : detected;
}

namespace {

CpuLevel g_active_level = CpuLevel::kScalar;
std::once_flag g_active_once;

void InitActiveLevel() {
  CpuLevel level = DetectCpuLevel();
  if (const char* env = std::getenv("MSV_CPU_FEATURES")) {
    CpuLevel requested;
    if (ParseCpuLevel(env, &requested)) {
      CpuLevel clamped = ClampCpuLevel(requested);
      if (clamped != requested) {
        MSV_LOG(Warn) << "MSV_CPU_FEATURES requests "
                      << CpuLevelName(requested) << " but host supports at "
                      << "most " << CpuLevelName(clamped) << "; clamping";
      }
      level = clamped;
    } else {
      MSV_LOG(Warn) << "unrecognized MSV_CPU_FEATURES value '" << env
                    << "' (want scalar|sse2|avx2); using detected level";
    }
  }
  g_active_level = level;
}

}  // namespace

CpuLevel ActiveCpuLevel() {
  std::call_once(g_active_once, InitActiveLevel);
  return g_active_level;
}

CpuLevel SetActiveCpuLevelForTesting(CpuLevel level) {
  std::call_once(g_active_once, InitActiveLevel);  // settle env handling
  g_active_level = ClampCpuLevel(level);
  return g_active_level;
}

}  // namespace msv::util
