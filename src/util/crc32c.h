// CRC-32C (Castagnoli) checksums for on-disk integrity.
//
// Software implementation (slice-by-one table); fast enough for the
// header/leaf sizes we protect and dependency-free.

#ifndef MSV_UTIL_CRC32C_H_
#define MSV_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace msv {

/// CRC-32C of `data[0, n)`, seeded with `init` (pass a previous Crc32c
/// result to extend a running checksum).
uint32_t Crc32c(const char* data, size_t n, uint32_t init = 0);

/// Masked CRC, RocksDB/LevelDB style: storing the CRC of data that itself
/// contains CRCs is error-prone, so stored checksums are rotated+offset.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace msv

#endif  // MSV_UTIL_CRC32C_H_
