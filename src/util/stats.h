// Streaming statistics utilities: running mean/variance (Welford),
// min/max/avg accumulators, and significance helpers used by the
// statistical test suite and the online-aggregation estimator.

#ifndef MSV_UTIL_STATS_H_
#define MSV_UTIL_STATS_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace msv {

/// Numerically stable running mean / variance (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean.
  double stderr_mean() const {
    return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
  }

  /// Builds a RunningStats directly from precomputed moments — the batch
  /// side of a fold-then-Merge pattern (OnlineAggregator's accessor path
  /// computes a whole batch's count/mean/M2/min/max with independent
  /// accumulators and merges the result in one step).
  static RunningStats FromMoments(uint64_t n, double mean, double m2,
                                  double min, double max) {
    RunningStats s;
    s.n_ = n;
    s.mean_ = n ? mean : 0.0;
    s.m2_ = n ? m2 : 0.0;
    s.min_ = n ? min : std::numeric_limits<double>::infinity();
    s.max_ = n ? max : -std::numeric_limits<double>::infinity();
    return s;
  }

  void Merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    uint64_t n = n_ + other.n_;
    double delta = other.mean_ - mean_;
    double mean = mean_ + delta * static_cast<double>(other.n_) /
                              static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(n);
    mean_ = mean;
    n_ = n;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided normal critical value for the given confidence level, e.g.
/// 0.95 -> 1.959964. Uses the Acklam inverse-normal approximation
/// (relative error < 1.15e-9), adequate for confidence-interval display.
double NormalCriticalValue(double confidence);

/// Standard normal CDF.
double NormalCdf(double z);

/// Upper-tail p-value of a chi-square statistic with `dof` degrees of
/// freedom, via the Wilson-Hilferty normal approximation. Accurate enough
/// for hypothesis tests at the 1e-4 .. 0.5 levels used in our test suite.
double ChiSquarePValue(double statistic, uint64_t dof);

/// Pearson chi-square goodness-of-fit statistic for observed counts against
/// expected counts. Vectors must be the same non-zero length.
double ChiSquareStatistic(const std::vector<uint64_t>& observed,
                          const std::vector<double>& expected);

}  // namespace msv

#endif  // MSV_UTIL_STATS_H_
