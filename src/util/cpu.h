// Runtime CPU-feature detection and dispatch-level selection.
//
// The batched hot-path kernels (sampling::MatchBatch, the columnar key
// gather) are compiled in up to three variants — scalar, SSE2 and AVX2 —
// and the variant actually executed is chosen once per process from
// cpuid-style feature detection. Every variant produces byte-identical
// output (golden-pinned by the dispatch-equivalence test suite), so the
// choice is purely a throughput decision.
//
// `MSV_CPU_FEATURES=scalar|sse2|avx2` overrides the detected level for
// testing; requesting a level the host cannot execute clamps down to the
// best supported one (the override must never turn into SIGILL).

#ifndef MSV_UTIL_CPU_H_
#define MSV_UTIL_CPU_H_

#include <string>

namespace msv::util {

/// Kernel dispatch levels, ordered: a level implies all lower ones.
enum class CpuLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Human-readable name ("scalar" / "sse2" / "avx2").
const char* CpuLevelName(CpuLevel level);

/// Parses a level name as accepted by MSV_CPU_FEATURES. Returns false
/// (leaving *out untouched) for anything else.
bool ParseCpuLevel(const std::string& name, CpuLevel* out);

/// Best level the host CPU can execute, from compiler builtins backed by
/// cpuid. Unconditionally kScalar on non-x86-64 builds.
CpuLevel DetectCpuLevel();

/// `requested` clamped down to DetectCpuLevel(), so a pinned level is
/// always executable on this host.
CpuLevel ClampCpuLevel(CpuLevel requested);

/// The process-wide dispatch level: DetectCpuLevel() clamped by the
/// MSV_CPU_FEATURES override. Read from the environment once, on first
/// call; cached thereafter.
CpuLevel ActiveCpuLevel();

/// Test hook: forces ActiveCpuLevel() to `level` (still clamped to
/// DetectCpuLevel() so a forced avx2 on an sse2-only host stays
/// executable). Returns the level actually installed.
CpuLevel SetActiveCpuLevelForTesting(CpuLevel level);

}  // namespace msv::util

#endif  // MSV_UTIL_CPU_H_
