// Minimal leveled logging and assertion macros.
//
// MSV_CHECK aborts on violated invariants in all build types (used for
// corruption-class conditions); MSV_DCHECK compiles out of release builds.

#ifndef MSV_UTIL_LOGGING_H_
#define MSV_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace msv {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Pluggable destination for MSV_LOG output. The default (nullptr) sink
/// formats "[LEVEL file:line] message" onto stderr; the obs structured
/// logger (src/obs/log.cc) installs itself here at static-init time when
/// linked, so util cannot depend on obs yet every MSV_LOG statement
/// routes through the structured pipeline. The sink is called once per
/// level-enabled statement with the bare message (no prefix); it must be
/// callable from any thread.
using LogSinkFn = void (*)(LogLevel level, const char* file, int line,
                           const std::string& message);

/// Installs the process-wide sink; returns the previous one. Thread-safe
/// (atomic pointer swap), but normally called once before threads start.
LogSinkFn SetLogSink(LogSinkFn sink);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const std::string& message);

}  // namespace internal
}  // namespace msv

#define MSV_LOG(level)                                                \
  ::msv::internal::LogMessage(::msv::LogLevel::k##level, __FILE__,    \
                              __LINE__)

#define MSV_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::msv::internal::CheckFailed(#cond, __FILE__, __LINE__, "");        \
    }                                                                     \
  } while (0)

#define MSV_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::msv::internal::CheckFailed(#cond, __FILE__, __LINE__, (msg));     \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define MSV_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define MSV_DCHECK(cond) MSV_CHECK(cond)
#endif

#endif  // MSV_UTIL_LOGGING_H_
