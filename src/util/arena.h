// Bump-pointer arena for per-query scratch state.
//
// The combine engine buffers filtered leaf-section contributions between
// rounds; doing that with one std::string per section costs an allocator
// round-trip (and a copy-on-grow) per contribution on the hottest CPU
// path in the system. The arena replaces that with a pointer bump:
// allocations are served from geometrically growing blocks, nothing is
// freed individually, and the whole arena dies (or is Reset) with the
// query.
//
// Reset() keeps the allocated blocks and reuses them, so a caller that
// resets at quiescent points (the combine engine does, whenever its
// buffers drain) holds memory proportional to the high-water mark of
// *live* bytes, not to the total bytes ever allocated.
//
// Not thread-safe: one arena belongs to one query executor, matching the
// single-consumer design of CombineEngine (DESIGN.md §8).

#ifndef MSV_UTIL_ARENA_H_
#define MSV_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace msv::util {

class Arena {
 public:
  static constexpr size_t kMinBlockBytes = 64 << 10;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `n` bytes aligned to `align` (a power of two). Never fails
  /// short of OOM. Allocate(0) may return nullptr; callers treat empty
  /// spans as {nullptr, 0}.
  char* Allocate(size_t n, size_t align = alignof(std::max_align_t)) {
    uintptr_t p = reinterpret_cast<uintptr_t>(next_);
    uintptr_t aligned = (p + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
    size_t padding = aligned - p;
    if (padding + n <= remaining_) {
      char* out = next_ + padding;
      next_ += padding + n;
      remaining_ -= padding + n;
      bytes_allocated_ += n;
      return out;
    }
    return AllocateSlow(n, align);
  }

  /// Rewinds the arena to empty, keeping every block for reuse.
  void Reset() {
    block_in_use_ = 0;
    bytes_allocated_ = 0;
    if (!blocks_.empty()) {
      next_ = blocks_[0].data.get();
      remaining_ = blocks_[0].size;
      block_in_use_ = 1;
    } else {
      next_ = nullptr;
      remaining_ = 0;
    }
  }

  /// Live payload bytes handed out since construction/Reset.
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total block capacity currently held (survives Reset).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  char* AllocateSlow(size_t n, size_t align) {
    // Advance through retained blocks first (post-Reset reuse), then
    // grow: each fresh block doubles the last size, floored at
    // kMinBlockBytes and always large enough for the request.
    while (block_in_use_ < blocks_.size()) {
      Block& b = blocks_[block_in_use_++];
      next_ = b.data.get();
      remaining_ = b.size;
      uintptr_t p = reinterpret_cast<uintptr_t>(next_);
      uintptr_t aligned =
          (p + (align - 1)) & ~static_cast<uintptr_t>(align - 1);
      size_t padding = aligned - p;
      if (padding + n <= remaining_) {
        char* out = next_ + padding;
        next_ += padding + n;
        remaining_ -= padding + n;
        bytes_allocated_ += n;
        return out;
      }
    }
    size_t block_size = blocks_.empty() ? kMinBlockBytes
                                        : blocks_.back().size * 2;
    if (block_size < n + align) block_size = n + align;
    Block b;
    b.data = std::make_unique<char[]>(block_size);
    b.size = block_size;
    blocks_.push_back(std::move(b));
    bytes_reserved_ += block_size;
    block_in_use_ = blocks_.size();
    next_ = blocks_.back().data.get();
    remaining_ = block_size;
    return Allocate(n, align);
  }

  std::vector<Block> blocks_;
  size_t block_in_use_ = 0;  ///< blocks_[0..block_in_use_) already visited
  char* next_ = nullptr;
  size_t remaining_ = 0;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace msv::util

#endif  // MSV_UTIL_ARENA_H_
