#include "core/sample_view.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "obs/log.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace msv::core {

// ---------------------------------------------------------------------------
// ViewSampler
// ---------------------------------------------------------------------------

ViewSampler::ViewSampler(std::shared_ptr<const AceTree> tree,
                         std::unique_ptr<AceSampler> base,
                         uint64_t base_estimate, bool base_exact,
                         std::vector<ExactPartition> exact, size_t record_size,
                         uint64_t seed, size_t records_per_pull)
    : tree_(std::move(tree)),
      base_(std::move(base)),
      base_estimate_(base_estimate),
      base_exact_(base_exact),
      exact_(std::move(exact)),
      record_size_(record_size),
      rng_(seed),
      records_per_pull_(records_per_pull) {
  for (ExactPartition& p : exact_) {
    Shuffle(&p.records, &rng_);
    exact_remaining_ += p.records.size();
  }
}

uint64_t ViewSampler::BaseRemaining() const {
  if (base_->done()) return base_queue_.size();
  uint64_t estimated =
      base_estimate_ > base_emitted_ ? base_estimate_ - base_emitted_ : 0;
  if (base_exact_) {
    // The caller vouched for the count; records already pulled into the
    // queue are matches in hand, so never report below them.
    return std::max<uint64_t>(estimated, base_queue_.size());
  }
  // At least one more than the queue holds (the stream is not done), but
  // never below what we can see; otherwise trust the estimate.
  uint64_t seen_floor = base_queue_.size() + 1;
  return std::max<uint64_t>(estimated, seen_floor);
}

bool ViewSampler::done() const {
  bool base_done = base_->done() ? base_queue_.empty()
                                 : (base_exact_ && BaseRemaining() == 0);
  return base_done && exact_remaining_ == 0;
}

Result<sampling::SampleBatch> ViewSampler::NextBatch() {
  sampling::SampleBatch batch;
  batch.record_size = record_size_;
  size_t emitted = 0;
  while (emitted < records_per_pull_) {
    uint64_t rb = BaseRemaining();
    uint64_t total = rb + exact_remaining_;
    if (total == 0) break;
    // P-partition hypergeometric choice: the next unified sample comes
    // from a partition with probability proportional to its remaining
    // matching count, so every prefix stays a uniform without-replacement
    // sample of the union (Brown & Haas).
    uint64_t draw = rng_.Below(total);
    if (draw < rb) {
      while (base_queue_.empty() && !base_->done()) {
        MSV_ASSIGN_OR_RETURN(sampling::SampleBatch pulled, base_->NextBatch());
        for (size_t i = 0; i < pulled.count(); ++i) {
          base_queue_.emplace_back(pulled.record(i), record_size_);
        }
      }
      if (base_queue_.empty()) continue;  // base finished under estimate
      batch.Append(base_queue_.back().data());
      base_queue_.pop_back();
      ++base_emitted_;
    } else {
      // Walk the in-memory partitions by their remaining counts; within
      // the chosen partition the pre-shuffled order makes the head a
      // uniform draw of its remainder.
      uint64_t offset = draw - rb;
      bool taken = false;
      for (ExactPartition& p : exact_) {
        uint64_t remaining = p.records.size() - p.next;
        if (offset < remaining) {
          batch.Append(p.records[p.next].data());
          ++p.next;
          --exact_remaining_;
          taken = true;
          break;
        }
        offset -= remaining;
      }
      if (!taken) continue;  // unreachable: counts always cover the draw
    }
    ++emitted;
    ++returned_;
  }
  obs::MetricRegistry::Global().GetCounter("view.samples_emitted")
      ->Add(emitted);
  return batch;
}

// ---------------------------------------------------------------------------
// MaterializedSampleView: construction, open, recovery
// ---------------------------------------------------------------------------

namespace {

/// Parses `text` as `<stem><decimal id>` with nothing trailing.
bool ParseSuffixId(const std::string& text, const std::string& stem,
                   uint64_t* id) {
  if (text.size() <= stem.size() || text.compare(0, stem.size(), stem) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = stem.size(); i < text.size(); ++i) {
    char c = text[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *id = value;
  return true;
}

}  // namespace

MaterializedSampleView::MaterializedSampleView(io::Env* env, std::string name,
                                               storage::RecordLayout layout,
                                               Options options)
    : env_(env),
      name_(std::move(name)),
      layout_(std::move(layout)),
      options_(options),
      c_inserted_records_(obs::MetricRegistry::Global().GetCounter(
          "ingest.inserted_records")),
      c_flushes_(obs::MetricRegistry::Global().GetCounter("ingest.flushes")),
      c_compactions_(
          obs::MetricRegistry::Global().GetCounter("ingest.compactions")),
      c_compacted_records_(obs::MetricRegistry::Global().GetCounter(
          "ingest.compacted_records")),
      c_compaction_errors_(obs::MetricRegistry::Global().GetCounter(
          "ingest.compaction_errors")),
      c_flush_errors_(obs::MetricRegistry::Global().GetCounter(
          "ingest.flush_errors")),
      c_wal_bytes_(
          obs::MetricRegistry::Global().GetCounter("ingest.wal_bytes")),
      g_memtable_records_(obs::MetricRegistry::Global().GetGauge(
          "ingest.memtable_records")),
      g_run_count_(obs::MetricRegistry::Global().GetGauge("ingest.runs")),
      g_run_records_(
          obs::MetricRegistry::Global().GetGauge("ingest.run_records")),
      g_base_records_(
          obs::MetricRegistry::Global().GetGauge("ingest.base_records")),
      h_flush_us_(
          obs::MetricRegistry::Global().GetHistogram("ingest.flush_us")),
      h_compact_us_(
          obs::MetricRegistry::Global().GetHistogram("ingest.compact_us")) {}

MaterializedSampleView::~MaterializedSampleView() { StopCompactor(); }

Result<std::unique_ptr<MaterializedSampleView>> MaterializedSampleView::Create(
    io::Env* env, const std::string& name, const std::string& relation_name,
    const storage::RecordLayout& layout, const Options& options) {
  std::unique_ptr<MaterializedSampleView> view(
      new MaterializedSampleView(env, name, layout, options));
  {
    MutexLock lock(view->mu_);
    // Generation 1 is the paper's bulk build over the source relation.
    const std::string base = view->BaseGenName(1);
    MSV_RETURN_IF_ERROR(
        BuildAceTree(env, relation_name, base, layout, options.build));
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<AceTree> tree,
                         AceTree::Open(env, base, layout));
    view->tree_ = std::move(tree);
    view->base_file_ = base;
    view->next_id_ = 2;
    const uint64_t memtable_id = view->next_id_++;
    // The manifest commit makes the view exist; a crash before it leaves
    // only orphans that DropFiles/recovery clean up.
    MSV_RETURN_IF_ERROR(SaveManifest(env, view->ManifestName(),
                                     view->CurrentManifestLocked()));
    view->memtable_ =
        std::make_unique<Memtable>(memtable_id, layout.record_size);
    MSV_ASSIGN_OR_RETURN(view->wal_,
                         WalWriter::Open(env, view->WalName(memtable_id),
                                         layout.record_size,
                                         options.ingest.sync_wal));
    view->UpdateGaugesLocked();
  }
  view->StartCompactor();
  return view;
}

Result<std::unique_ptr<MaterializedSampleView>> MaterializedSampleView::Open(
    io::Env* env, const std::string& name, const storage::RecordLayout& layout,
    const Options& options) {
  std::unique_ptr<MaterializedSampleView> view(
      new MaterializedSampleView(env, name, layout, options));
  {
    MutexLock lock(view->mu_);
    MSV_RETURN_IF_ERROR(view->RecoverLocked());
  }
  view->StartCompactor();
  return view;
}

Status MaterializedSampleView::RecoverLocked() {
  bool dirty = false;  // structural changes to persist before returning
  ViewManifest manifest;
  MSV_ASSIGN_OR_RETURN(bool have_manifest,
                       env_->FileExists(ManifestName()));
  if (have_manifest) {
    MSV_ASSIGN_OR_RETURN(manifest, LoadManifest(env_, ManifestName()));
  } else {
    MSV_RETURN_IF_ERROR(MigrateLegacyLocked(&manifest));
    dirty = true;
  }

  MSV_ASSIGN_OR_RETURN(std::unique_ptr<AceTree> tree,
                       AceTree::Open(env_, manifest.base_file, layout_));
  tree_ = std::move(tree);
  base_file_ = manifest.base_file;
  next_id_ = manifest.next_id;
  flushed_through_ = manifest.flushed_through;
  runs_.clear();
  run_records_ = 0;
  for (uint64_t id : manifest.runs) {
    MSV_RETURN_IF_ERROR(OpenRunLocked(id));
  }

  // WAL replay: every WAL newer than flushed_through holds acknowledged
  // inserts that never reached a run. All but the newest are sealed —
  // flush them to runs; the newest becomes the live memtable again.
  MSV_ASSIGN_OR_RETURN(std::vector<std::string> files, env_->ListFiles());
  const std::string prefix = name_ + ".";
  std::vector<uint64_t> wal_ids;
  for (const std::string& f : files) {
    if (f.rfind(prefix, 0) != 0) continue;
    uint64_t id = 0;
    if (ParseSuffixId(f.substr(prefix.size()), "wal.", &id) &&
        id > flushed_through_) {
      wal_ids.push_back(id);
    }
  }
  std::sort(wal_ids.begin(), wal_ids.end());
  for (size_t i = 0; i + 1 < wal_ids.size(); ++i) {
    const uint64_t id = wal_ids[i];
    MSV_ASSIGN_OR_RETURN(std::string data,  // NOLINT(msv-hot-path-alloc) WAL replay, recovery-time cold path
                         ReadWal(env_, WalName(id), layout_.record_size));
    const uint64_t n = data.size() / layout_.record_size;
    if (n > 0) {
      Memtable replay(id, layout_.record_size);
      replay.Append(data.data(), n);
      MSV_RETURN_IF_ERROR(WriteRunFile(env_, RunName(id),
                                       layout_.record_size,
                                       replay.SortedRecords(layout_)));
      MSV_RETURN_IF_ERROR(OpenRunLocked(id));
    }
    flushed_through_ = id;
    next_id_ = std::max(next_id_, id + 1);
    dirty = true;
  }
  uint64_t memtable_id;
  if (!wal_ids.empty()) {
    memtable_id = wal_ids.back();
    memtable_ = std::make_unique<Memtable>(memtable_id, layout_.record_size);
    MSV_ASSIGN_OR_RETURN(
        std::string data,
        ReadWal(env_, WalName(memtable_id), layout_.record_size));
    const uint64_t n = data.size() / layout_.record_size;
    if (n > 0) memtable_->Append(data.data(), n);
    next_id_ = std::max(next_id_, memtable_id + 1);
  } else {
    memtable_id = next_id_++;
    memtable_ = std::make_unique<Memtable>(memtable_id, layout_.record_size);
  }
  MSV_ASSIGN_OR_RETURN(wal_, WalWriter::Open(env_, WalName(memtable_id),
                                             layout_.record_size,
                                             options_.ingest.sync_wal));

  if (dirty) {
    MSV_RETURN_IF_ERROR(
        SaveManifest(env_, ManifestName(), CurrentManifestLocked()));
  }
  MSV_RETURN_IF_ERROR(CleanOrphansLocked());
  UpdateGaugesLocked();
  return Status::OK();
}

Status MaterializedSampleView::MigrateLegacyLocked(ViewManifest* manifest) {
  // Pre-manifest format: `<name>.base` ACE tree + `<name>.delta` heap
  // file. Adopt the base in place; fold a non-empty delta into run 1.
  MSV_ASSIGN_OR_RETURN(bool have_base, env_->FileExists(LegacyBaseName()));
  if (!have_base) {
    return Status::NotFound("no such sample view: " + name_);
  }
  manifest->base_file = LegacyBaseName();
  manifest->next_id = 1;
  manifest->flushed_through = 0;
  MSV_ASSIGN_OR_RETURN(bool have_delta, env_->FileExists(LegacyDeltaName()));
  if (have_delta) {
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<storage::HeapFile> delta,
                         storage::HeapFile::Open(env_, LegacyDeltaName()));
    if (delta->record_count() > 0) {
      Memtable replay(1, layout_.record_size);
      auto scanner = delta->NewScanner();
      for (;;) {
        MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
        if (rec == nullptr) break;
        replay.Append(rec, 1);
      }
      MSV_RETURN_IF_ERROR(WriteRunFile(env_, RunName(1), layout_.record_size,
                                       replay.SortedRecords(layout_)));
      manifest->runs.push_back(1);
      manifest->flushed_through = 1;
      manifest->next_id = 2;
    }
  }
  // The delta file itself is deleted by CleanOrphansLocked, which runs
  // only after the manifest is durably committed.
  return Status::OK();
}

Status MaterializedSampleView::CleanOrphansLocked() {
  MSV_ASSIGN_OR_RETURN(std::vector<std::string> files, env_->ListFiles());
  const std::string prefix = name_ + ".";
  std::set<uint64_t> live_runs;
  for (const RunHandle& run : runs_) live_runs.insert(run.id);
  for (const std::string& f : files) {
    if (f.rfind(prefix, 0) != 0) continue;
    const std::string suffix = f.substr(prefix.size());  // NOLINT(msv-hot-path-alloc) file GC scan, cold
    bool drop = false;
    uint64_t id = 0;
    if (suffix.size() > 4 && suffix.compare(suffix.size() - 4, 4, ".tmp") == 0) {
      drop = true;  // torn atomic write of any view file
    } else if (suffix == "scratch" || suffix == "rebuild" ||
               suffix == "delta") {
      drop = true;  // compaction scratch / migrated legacy delta
    } else if (suffix == "base") {
      drop = f != base_file_;
    } else if (ParseSuffixId(suffix, "base.g", &id)) {
      drop = f != base_file_;
    } else if (ParseSuffixId(suffix, "run.", &id)) {
      drop = live_runs.count(id) == 0;
    } else if (ParseSuffixId(suffix, "wal.", &id)) {
      drop = id <= flushed_through_;
    }
    if (drop) env_->DeleteFile(f).IgnoreError();
  }
  return Status::OK();
}

Status MaterializedSampleView::DropFiles(io::Env* env,
                                         const std::string& name) {
  MSV_ASSIGN_OR_RETURN(std::vector<std::string> files, env->ListFiles());
  const std::string prefix = name + ".";
  for (const std::string& f : files) {
    if (f.rfind(prefix, 0) != 0) continue;
    const std::string suffix = f.substr(prefix.size());  // NOLINT(msv-hot-path-alloc) file listing scan, cold
    uint64_t id = 0;
    bool ours =
        suffix == "manifest" || suffix == "base" || suffix == "delta" ||
        suffix == "scratch" || suffix == "rebuild" ||
        (suffix.size() > 4 &&
         suffix.compare(suffix.size() - 4, 4, ".tmp") == 0) ||
        ParseSuffixId(suffix, "base.g", &id) ||
        ParseSuffixId(suffix, "run.", &id) ||
        ParseSuffixId(suffix, "wal.", &id);
    if (ours) env->DeleteFile(f).IgnoreError();
  }
  return Status::OK();
}

ViewManifest MaterializedSampleView::CurrentManifestLocked() const {
  ViewManifest m;
  m.base_file = base_file_;
  m.next_id = next_id_;
  m.flushed_through = flushed_through_;
  for (const RunHandle& run : runs_) m.runs.push_back(run.id);
  return m;
}

Status MaterializedSampleView::OpenRunLocked(uint64_t id) {
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<storage::HeapFile> file,
                       storage::HeapFile::Open(env_, RunName(id)));
  run_records_ += file->record_count();
  runs_.push_back(RunHandle{id, std::move(file)});
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Write path: Insert, Flush
// ---------------------------------------------------------------------------

Status MaterializedSampleView::Insert(const char* records, size_t count) {
  if (count == 0) return Status::OK();
  MutexLock lock(mu_);
  // WAL first: the insert is acknowledged only once it would survive a
  // crash (sync_wal), then it becomes visible via the memtable.
  MSV_RETURN_IF_ERROR(wal_->Append(records, layout_.record_size, count));
  memtable_->Append(records, count);
  c_inserted_records_->Add(count);
  c_wal_bytes_->Add(count * layout_.record_size);
  if (memtable_->count() >= options_.ingest.memtable_max_records) {
    // Once the records are WAL-durable and memtable-visible the insert
    // has succeeded; an inline flush failure must not be surfaced as
    // "insert failed" — a caller retrying on that error would duplicate
    // records. The failure is counted and logged, the memtable stays
    // intact, and the flush retries at the next threshold crossing (or
    // an explicit Flush(), which does report errors).
    Status flushed = FlushLocked();
    if (!flushed.ok()) {
      c_flush_errors_->Add(1);
      MSV_LOG(Warn) << "view " << name_
                    << " inline flush: " << flushed.ToString();
    }
  }
  UpdateGaugesLocked();
  if (CompactionTriggeredLocked()) cv_.SignalAll();
  return Status::OK();
}

Status MaterializedSampleView::Flush() {
  MutexLock lock(mu_);
  Status st = FlushLocked();
  UpdateGaugesLocked();
  if (CompactionTriggeredLocked()) cv_.SignalAll();
  return st;
}

Status MaterializedSampleView::FlushLocked() {
  if (memtable_->empty()) return Status::OK();
  const uint64_t start_us = obs::WallTimeUs();
  const uint64_t run_id = memtable_->id();
  const uint64_t new_memtable_id = next_id_;

  // Every fallible step is staged before the commit point: run written
  // and opened, next WAL created. A failure anywhere backs out with the
  // old memtable, WAL and manifest fully intact, and after the manifest
  // commits nothing below can fail — so the committed run is never
  // missing from runs_ and wal_ is never left null.
  std::shared_ptr<storage::HeapFile> run_file;
  std::unique_ptr<WalWriter> new_wal;
  auto stage = [&]() -> Status {
    MSV_RETURN_IF_ERROR(WriteRunFile(env_, RunName(run_id),
                                     layout_.record_size,
                                     memtable_->SortedRecords(layout_)));
    MSV_ASSIGN_OR_RETURN(run_file,
                         storage::HeapFile::Open(env_, RunName(run_id)));
    // The next memtable's WAL is created pre-commit on purpose: if we
    // crash here, recovery sees an empty WAL newer than flushed_through
    // and replays zero records from it — harmless.
    MSV_ASSIGN_OR_RETURN(new_wal,
                         WalWriter::Open(env_, WalName(new_memtable_id),
                                         layout_.record_size,
                                         options_.ingest.sync_wal));
    // Manifest commit: the run becomes live and its WAL dead in one
    // atomic step. A crash before this replays the WAL; after it, opens
    // the run.
    ViewManifest m = CurrentManifestLocked();
    m.runs.push_back(run_id);
    m.flushed_through = run_id;
    m.next_id = new_memtable_id + 1;
    return SaveManifest(env_, ManifestName(), m);
  };
  Status staged = stage();
  if (!staged.ok()) {
    env_->DeleteFile(RunName(run_id)).IgnoreError();
    if (new_wal != nullptr) {
      new_wal.reset();
      env_->DeleteFile(WalName(new_memtable_id)).IgnoreError();
    }
    return staged;
  }

  flushed_through_ = run_id;
  next_id_ = new_memtable_id + 1;
  memtable_ = std::make_unique<Memtable>(new_memtable_id, layout_.record_size);
  wal_ = std::move(new_wal);
  run_records_ += run_file->record_count();
  runs_.push_back(RunHandle{run_id, std::move(run_file)});
  env_->DeleteFile(WalName(run_id)).IgnoreError();  // dead per the manifest
  c_flushes_->Add(1);
  h_flush_us_->Record(obs::WallTimeUs() - start_us);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Compaction
// ---------------------------------------------------------------------------

bool MaterializedSampleView::CompactionTriggeredLocked() const {
  if (runs_.empty()) return false;
  if (runs_.size() >= options_.ingest.compact_trigger_runs) return true;
  return static_cast<double>(run_records_) >
         options_.max_delta_fraction *
             static_cast<double>(tree_->meta().num_records);
}

Status MaterializedSampleView::Compact() { return CompactOnce(); }

Status MaterializedSampleView::Rebuild() {
  MSV_RETURN_IF_ERROR(Flush());
  return CompactOnce();
}

Status MaterializedSampleView::BuildCompactedBase(const CompactionPlan& plan) {
  // Dump the sealed inputs — base leaves in order (a sequential read of
  // the data region) plus every sealed run — into a scratch heap file,
  // then rebuild. All inputs are immutable; no lock is held.
  const std::string scratch = ScratchName();
  auto write_scratch = [&]() -> Status {
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<storage::HeapFileWriter> writer,
                         storage::HeapFileWriter::Create(
                             env_, scratch, layout_.record_size));
    for (uint64_t leaf = 0; leaf < plan.base->meta().num_leaves; ++leaf) {
      MSV_ASSIGN_OR_RETURN(LeafData data, plan.base->ReadLeaf(leaf));
      for (uint32_t s = 1; s <= plan.base->meta().height; ++s) {
        for (size_t i = 0; i < data.SectionCount(s); ++i) {
          MSV_RETURN_IF_ERROR(writer->Append(data.SectionRecord(s, i)));
        }
      }
    }
    for (const RunHandle& run : plan.runs) {
      auto scanner = run.file->NewScanner();
      for (;;) {
        MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
        if (rec == nullptr) break;
        MSV_RETURN_IF_ERROR(writer->Append(rec));
      }
    }
    return writer->Finish();
  };
  Status st = write_scratch();
  if (st.ok()) {
    AceBuildOptions build = options_.build;
    build.seed = plan.build_seed;  // fresh section/leaf randomness
    st = BuildAceTree(env_, scratch, plan.output_file, layout_, build);
  }
  env_->DeleteFile(scratch).IgnoreError();  // best-effort scratch cleanup
  return st;
}

Status MaterializedSampleView::CompactOnce() {
  CompactionPlan plan;
  {
    MutexLock lock(mu_);
    while (compacting_) cv_.Wait(mu_);
    if (runs_.empty()) return Status::OK();
    compacting_ = true;
    plan.base = tree_;
    plan.runs = runs_;
    plan.output_file = BaseGenName(next_id_);
    plan.build_seed = options_.build.seed ^ (0x517cc1b727220a95ULL * next_id_);
    ++next_id_;
  }
  const uint64_t start_us = obs::WallTimeUs();
  Status result = BuildCompactedBase(plan);

  bool committed = false;
  std::vector<std::string> obsolete;
  {
    MutexLock lock(mu_);
    if (result.ok()) {
      auto opened = AceTree::Open(env_, plan.output_file, layout_);
      if (!opened.ok()) {
        result = opened.status();
      } else {
        // Commit: the manifest swap retires the old generation and the
        // sealed runs in one atomic step. Runs flushed while we built
        // (ids not in the plan) stay live. The old base file is deleted
        // only after the commit — never before — so a crash anywhere
        // leaves an openable tree.
        std::set<uint64_t> sealed;
        for (const RunHandle& run : plan.runs) sealed.insert(run.id);
        ViewManifest m = CurrentManifestLocked();
        m.base_file = plan.output_file;
        m.runs.clear();
        for (const RunHandle& run : runs_) {
          if (sealed.count(run.id) == 0) m.runs.push_back(run.id);
        }
        Status saved = SaveManifest(env_, ManifestName(), m);
        if (!saved.ok()) {
          result = saved;
        } else {
          committed = true;
          obsolete.push_back(base_file_);
          uint64_t folded = 0;
          for (const RunHandle& run : plan.runs) {
            obsolete.push_back(RunName(run.id));
            folded += run.file->record_count();
          }
          base_file_ = plan.output_file;
          tree_ = std::shared_ptr<const AceTree>(std::move(opened.value()));
          std::vector<RunHandle> remaining;
          run_records_ = 0;
          for (RunHandle& run : runs_) {
            if (sealed.count(run.id) == 0) {
              run_records_ += run.file->record_count();
              remaining.push_back(std::move(run));
            }
          }
          runs_ = std::move(remaining);
          c_compactions_->Add(1);
          c_compacted_records_->Add(folded);
          h_compact_us_->Record(obs::WallTimeUs() - start_us);
          UpdateGaugesLocked();
        }
      }
    }
    compacting_ = false;
    cv_.SignalAll();
  }
  if (!committed) {
    env_->DeleteFile(plan.output_file).IgnoreError();
  }
  // Old generation and folded runs: open handles (live samplers, MemEnv
  // shared file data, POSIX fd semantics) keep their data readable.
  for (const std::string& f : obsolete) env_->DeleteFile(f).IgnoreError();
  return result;
}

// ---------------------------------------------------------------------------
// Background compactor lifecycle (the MetricsPoller pattern)
// ---------------------------------------------------------------------------

void MaterializedSampleView::StartCompactor() {
  if (!options_.ingest.background_compaction) return;
  MutexLock lock(mu_);
  // A concurrent StopCompactor() owns the thread until it finishes
  // joining.
  while (compactor_state_ == CompactorState::kStopping) cv_.Wait(mu_);
  if (compactor_state_ == CompactorState::kRunning) return;
  stop_requested_ = false;
  compactor_thread_ =
      std::thread(&MaterializedSampleView::CompactorMain, this);
  compactor_state_ = CompactorState::kRunning;
}

void MaterializedSampleView::StopCompactor() {
  std::thread to_join;
  {
    MutexLock lock(mu_);
    while (compactor_state_ == CompactorState::kStopping) cv_.Wait(mu_);
    if (compactor_state_ == CompactorState::kStopped) return;
    compactor_state_ = CompactorState::kStopping;
    stop_requested_ = true;
    cv_.SignalAll();
    to_join = std::move(compactor_thread_);
  }
  to_join.join();
  MutexLock lock(mu_);
  compactor_state_ = CompactorState::kStopped;
  cv_.SignalAll();
}

void MaterializedSampleView::CompactorMain() {
  obs::SetThreadLabel("view-compactor");
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!stop_requested_ &&
             !(CompactionTriggeredLocked() && !compacting_)) {
        cv_.WaitFor(mu_,
                    std::chrono::milliseconds(options_.ingest.compact_poll_ms));
      }
      if (stop_requested_) return;
    }
    Status st = CompactOnce();
    if (!st.ok()) {
      c_compaction_errors_->Add(1);
      MSV_LOG(Warn) << "view " << name_ << " compaction: " << st.ToString();
      // Back off so a persistently failing compaction doesn't spin.
      MutexLock lock(mu_);
      if (stop_requested_) return;
      cv_.WaitFor(mu_, std::chrono::milliseconds(
                           options_.ingest.compact_poll_ms * 20));
    }
  }
}

// ---------------------------------------------------------------------------
// Read path: accessors, Sample
// ---------------------------------------------------------------------------

uint64_t MaterializedSampleView::base_records() const {
  MutexLock lock(mu_);
  return tree_->meta().num_records;
}

uint64_t MaterializedSampleView::DeltaRecordsLocked() const {
  return run_records_ + (memtable_ != nullptr ? memtable_->count() : 0);
}

uint64_t MaterializedSampleView::delta_records() const {
  MutexLock lock(mu_);
  return DeltaRecordsLocked();
}

uint64_t MaterializedSampleView::memtable_records() const {
  MutexLock lock(mu_);
  return memtable_ != nullptr ? memtable_->count() : 0;
}

uint64_t MaterializedSampleView::run_count() const {
  MutexLock lock(mu_);
  return runs_.size();
}

bool MaterializedSampleView::NeedsRebuild() const {
  MutexLock lock(mu_);
  return static_cast<double>(DeltaRecordsLocked()) >
         options_.max_delta_fraction *
             static_cast<double>(tree_->meta().num_records);
}

std::shared_ptr<const AceTree> MaterializedSampleView::tree() const {
  MutexLock lock(mu_);
  return tree_;
}

void MaterializedSampleView::UpdateGaugesLocked() {
  g_memtable_records_->Set(
      static_cast<double>(memtable_ != nullptr ? memtable_->count() : 0));
  g_run_count_->Set(static_cast<double>(runs_.size()));
  g_run_records_->Set(static_cast<double>(run_records_));
  g_base_records_->Set(
      static_cast<double>(tree_ != nullptr ? tree_->meta().num_records : 0));
}

Result<std::unique_ptr<ViewSampler>> MaterializedSampleView::Sample(
    const sampling::RangeQuery& query, uint64_t seed,
    std::optional<uint64_t> exact_base_count) const {
  MSV_RETURN_IF_ERROR(query.Validate(layout_));

  // Under the lock, take only a consistent snapshot: the tree handle,
  // shared run handles, and a copy of the memtable's matches (the
  // memtable mutates under mu_, but it is small — bounded by the flush
  // threshold). The runs themselves are scanned after release.
  std::shared_ptr<const AceTree> tree;
  std::vector<RunHandle> runs;
  ViewSampler::ExactPartition memtable_matches;
  {
    MutexLock lock(mu_);
    tree = tree_;
    runs = runs_;
    if (memtable_ != nullptr) {
      memtable_->CollectMatches(layout_, query, &memtable_matches.records);
    }
  }

  // Scan the runs without mu_ held, so a sampler over large or many runs
  // never stalls Insert/Flush for the scan duration. Runs are immutable,
  // and the shared handles keep a concurrently compacted-away run
  // readable. Partition order: runs oldest first, then the memtable.
  std::vector<ViewSampler::ExactPartition> exact;
  exact.reserve(runs.size() + 1);
  for (const RunHandle& run : runs) {
    ViewSampler::ExactPartition p;
    auto scanner = run.file->NewScanner();
    for (;;) {
      MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
      if (rec == nullptr) break;
      if (query.Matches(layout_, rec)) {
        p.records.emplace_back(rec, layout_.record_size);
      }
    }
    exact.push_back(std::move(p));
  }
  exact.push_back(std::move(memtable_matches));

  uint64_t base_estimate;
  bool base_exact = exact_base_count.has_value();
  if (base_exact) {
    base_estimate = *exact_base_count;
  } else {
    MSV_ASSIGN_OR_RETURN(base_estimate, tree->EstimateMatchCount(query));
  }
  auto base = std::make_unique<AceSampler>(tree.get(), query, seed);
  return std::unique_ptr<ViewSampler>(new ViewSampler(
      tree, std::move(base), base_estimate, base_exact, std::move(exact),
      layout_.record_size, seed ^ 0x9e3779b97f4a7c15ULL, 64));
}

}  // namespace msv::core
