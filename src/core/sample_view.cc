#include "core/sample_view.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace msv::core {

// ---------------------------------------------------------------------------
// ViewSampler
// ---------------------------------------------------------------------------

ViewSampler::ViewSampler(std::unique_ptr<AceSampler> base,
                         uint64_t base_estimate,
                         std::vector<std::string> delta_matches,
                         size_t record_size, uint64_t seed,
                         size_t records_per_pull)
    : base_(std::move(base)),
      base_estimate_(base_estimate),
      delta_(std::move(delta_matches)),
      record_size_(record_size),
      rng_(seed),
      records_per_pull_(records_per_pull) {
  Shuffle(&delta_, &rng_);
}

uint64_t ViewSampler::BaseRemaining() const {
  if (base_->done()) return base_queue_.size();
  // At least one more than the queue holds (the stream is not done), but
  // never below what we can see; otherwise trust the estimate.
  uint64_t seen_floor = base_queue_.size() + 1;
  uint64_t estimated = base_estimate_ > base_emitted_
                           ? base_estimate_ - base_emitted_
                           : 0;
  return std::max<uint64_t>(estimated, seen_floor);
}

bool ViewSampler::done() const {
  return base_->done() && base_queue_.empty() && delta_next_ >= delta_.size();
}

Result<sampling::SampleBatch> ViewSampler::NextBatch() {
  sampling::SampleBatch batch;
  batch.record_size = record_size_;
  size_t emitted = 0;
  while (emitted < records_per_pull_) {
    uint64_t rb = BaseRemaining();
    uint64_t rd = delta_.size() - delta_next_;
    if (rb == 0 && rd == 0) break;
    // Hypergeometric choice: the next unified sample comes from a
    // partition with probability proportional to its remaining matches.
    bool from_base = rng_.Below(rb + rd) < rb;
    if (from_base) {
      while (base_queue_.empty() && !base_->done()) {
        MSV_ASSIGN_OR_RETURN(sampling::SampleBatch pulled,
                             base_->NextBatch());
        for (size_t i = 0; i < pulled.count(); ++i) {
          base_queue_.emplace_back(pulled.record(i), record_size_);
        }
      }
      if (base_queue_.empty()) continue;  // base finished under estimate
      batch.Append(base_queue_.back().data());
      base_queue_.pop_back();
      ++base_emitted_;
    } else {
      batch.Append(delta_[delta_next_].data());
      ++delta_next_;
    }
    ++emitted;
    ++returned_;
  }
  obs::MetricRegistry::Global().GetCounter("view.samples_emitted")
      ->Add(emitted);
  return batch;
}

// ---------------------------------------------------------------------------
// MaterializedSampleView
// ---------------------------------------------------------------------------

Result<std::unique_ptr<MaterializedSampleView>> MaterializedSampleView::Create(
    io::Env* env, const std::string& name, const std::string& relation_name,
    const storage::RecordLayout& layout, const Options& options) {
  std::unique_ptr<MaterializedSampleView> view(
      new MaterializedSampleView(env, name, layout, options));
  MSV_RETURN_IF_ERROR(BuildAceTree(env, relation_name, view->BaseName(),
                                   layout, options.build));
  // Fresh, empty differential file.
  MSV_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::HeapFileWriter> writer,
      storage::HeapFileWriter::Create(env, view->DeltaName(),
                                      layout.record_size));
  MSV_RETURN_IF_ERROR(writer->Finish());
  MSV_RETURN_IF_ERROR(view->OpenTree());
  MSV_RETURN_IF_ERROR(view->LoadDelta());
  return view;
}

Result<std::unique_ptr<MaterializedSampleView>> MaterializedSampleView::Open(
    io::Env* env, const std::string& name,
    const storage::RecordLayout& layout, const Options& options) {
  std::unique_ptr<MaterializedSampleView> view(
      new MaterializedSampleView(env, name, layout, options));
  MSV_RETURN_IF_ERROR(view->OpenTree());
  MSV_RETURN_IF_ERROR(view->LoadDelta());
  return view;
}

Status MaterializedSampleView::OpenTree() {
  MSV_ASSIGN_OR_RETURN(tree_, AceTree::Open(env_, BaseName(), layout_));
  return Status::OK();
}

Status MaterializedSampleView::LoadDelta() {
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<storage::HeapFile> delta,
                       storage::HeapFile::Open(env_, DeltaName()));
  delta_count_ = delta->record_count();
  return Status::OK();
}

Status MaterializedSampleView::Insert(const char* records, size_t count) {
  MSV_RETURN_IF_ERROR(
      storage::AppendToHeapFile(env_, DeltaName(), records, count));
  delta_count_ += count;
  return Status::OK();
}

bool MaterializedSampleView::NeedsRebuild() const {
  return static_cast<double>(delta_count_) >
         options_.max_delta_fraction * static_cast<double>(base_records());
}

Result<std::unique_ptr<ViewSampler>> MaterializedSampleView::Sample(
    const sampling::RangeQuery& query, uint64_t seed,
    uint64_t exact_base_count) const {
  MSV_RETURN_IF_ERROR(query.Validate(layout_));

  // The differential file is small by design: scan it, keep the matches.
  std::vector<std::string> delta_matches;
  {
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<storage::HeapFile> delta,
                         storage::HeapFile::Open(env_, DeltaName()));
    auto scanner = delta->NewScanner();
    for (;;) {
      MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
      if (rec == nullptr) break;
      if (query.Matches(layout_, rec)) {
        delta_matches.emplace_back(rec, layout_.record_size);
      }
    }
  }

  uint64_t base_estimate = exact_base_count;
  if (base_estimate == 0) {
    MSV_ASSIGN_OR_RETURN(base_estimate, tree_->EstimateMatchCount(query));
  }
  auto base = std::make_unique<AceSampler>(tree_.get(), query, seed);
  return std::unique_ptr<ViewSampler>(new ViewSampler(
      std::move(base), base_estimate, std::move(delta_matches),
      layout_.record_size, seed ^ 0x9e3779b97f4a7c15ULL, 64));
}

Status MaterializedSampleView::Rebuild() {
  // Dump the view's full contents (base leaves in order — a sequential
  // read of the data region — plus the delta) into a scratch heap file.
  const std::string scratch = name_ + ".rebuild";
  {
    MSV_ASSIGN_OR_RETURN(
        std::unique_ptr<storage::HeapFileWriter> writer,
        storage::HeapFileWriter::Create(env_, scratch, layout_.record_size));
    for (uint64_t leaf = 0; leaf < tree_->meta().num_leaves; ++leaf) {
      MSV_ASSIGN_OR_RETURN(LeafData data, tree_->ReadLeaf(leaf));
      for (uint32_t s = 1; s <= tree_->meta().height; ++s) {
        for (size_t i = 0; i < data.SectionCount(s); ++i) {
          MSV_RETURN_IF_ERROR(writer->Append(data.SectionRecord(s, i)));
        }
      }
    }
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<storage::HeapFile> delta,
                         storage::HeapFile::Open(env_, DeltaName()));
    auto scanner = delta->NewScanner();
    for (;;) {
      MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
      if (rec == nullptr) break;
      MSV_RETURN_IF_ERROR(writer->Append(rec));
    }
    MSV_RETURN_IF_ERROR(writer->Finish());
  }

  // Build the replacement tree, then swap it in and reset the delta.
  const std::string new_base = BaseName() + ".new";
  AceBuildOptions build = options_.build;
  build.seed ^= 0x517cc1b727220a95ULL;  // fresh section/leaf randomness
  MSV_RETURN_IF_ERROR(BuildAceTree(env_, scratch, new_base, layout_, build));
  env_->DeleteFile(scratch).IgnoreError();  // best-effort scratch cleanup

  tree_.reset();  // release the old file before replacing it
  MSV_RETURN_IF_ERROR(env_->DeleteFile(BaseName()));
  MSV_RETURN_IF_ERROR(env_->RenameFile(new_base, BaseName()));
  {
    MSV_ASSIGN_OR_RETURN(
        std::unique_ptr<storage::HeapFileWriter> writer,
        storage::HeapFileWriter::Create(env_, DeltaName(),
                                        layout_.record_size));
    MSV_RETURN_IF_ERROR(writer->Finish());
  }
  delta_count_ = 0;
  return OpenTree();
}

}  // namespace msv::core
