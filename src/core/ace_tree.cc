#include "core/ace_tree.h"

#include <algorithm>
#include <cmath>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace msv::core {

Result<std::unique_ptr<AceTree>> AceTree::Open(
    io::Env* env, const std::string& name,
    const storage::RecordLayout& layout) {
  MSV_RETURN_IF_ERROR(layout.Validate());
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                       env->OpenFile(name, /*create=*/false));

  char super[kSuperblockSize];
  MSV_RETURN_IF_ERROR(file->ReadExact(0, sizeof(super), super));
  MSV_ASSIGN_OR_RETURN(AceMeta meta, DecodeSuperblock(super));
  if (meta.record_size != layout.record_size) {
    return Status::InvalidArgument("layout record size mismatch");
  }
  if (meta.key_dims > layout.key_dims()) {
    return Status::InvalidArgument("layout has fewer key dims than tree");
  }

  const uint64_t num_leaves = meta.num_leaves;

  // Internal-node array; region checksum verified before any node is
  // trusted (format v2).
  std::vector<InternalNode> nodes(num_leaves - 1);
  {
    std::string bytes((num_leaves - 1) * kInternalNodeSize, '\0');
    if (!bytes.empty()) {
      MSV_RETURN_IF_ERROR(
          file->ReadExact(meta.internal_offset, bytes.size(), bytes.data()));
    }
    if (MaskCrc(Crc32c(bytes.data(), bytes.size())) != meta.internal_crc) {
      return Status::Corruption("ACE internal region checksum mismatch");
    }
    for (uint64_t id = 1; id < num_leaves; ++id) {
      nodes[id - 1] =
          DecodeInternalNode(bytes.data() + (id - 1) * kInternalNodeSize);
    }
  }

  // Leaf directory, checksummed the same way.
  std::vector<LeafLocation> directory(num_leaves);
  {
    std::string bytes(num_leaves * kDirectoryEntrySize, '\0');
    MSV_RETURN_IF_ERROR(
        file->ReadExact(meta.directory_offset, bytes.size(), bytes.data()));
    if (MaskCrc(Crc32c(bytes.data(), bytes.size())) != meta.directory_crc) {
      return Status::Corruption("ACE directory checksum mismatch");
    }
    for (uint64_t i = 0; i < num_leaves; ++i) {
      directory[i].offset = DecodeFixed64(bytes.data() + i * kDirectoryEntrySize);
      directory[i].length =
          DecodeFixed64(bytes.data() + i * kDirectoryEntrySize + 8);
    }
  }

  Box root;
  root.dims = meta.key_dims;
  for (uint32_t d = 0; d < meta.key_dims; ++d) {
    root.lo[d] = meta.domain_min[d];
    root.hi[d] = meta.domain_max[d];
  }
  auto splits = std::make_unique<SplitTree>(meta.height, meta.key_dims,
                                            std::move(nodes), root);

  // Per-node record counts, rebuilt from cnt_l/cnt_r.
  std::vector<uint64_t> node_counts(2 * num_leaves, 0);
  node_counts[1] = meta.num_records;
  for (uint64_t id = 1; id < num_leaves; ++id) {
    const InternalNode& n = splits->node(id);
    node_counts[2 * id] = n.cnt_left;
    node_counts[2 * id + 1] = n.cnt_right;
  }

  MSV_ASSIGN_OR_RETURN(uint64_t file_bytes, file->Size());

  return std::unique_ptr<AceTree>(new AceTree(
      std::move(file), layout, meta, std::move(splits), std::move(directory),
      std::move(node_counts), file_bytes));
}

Result<LeafData> AceTree::ReadLeaf(uint64_t leaf_index) const {
  if (leaf_index >= meta_.num_leaves) {
    return Status::OutOfRange("leaf index out of range");
  }
  const LeafLocation& loc = directory_[leaf_index];
  std::string blob(loc.length, '\0');
  MSV_RETURN_IF_ERROR(file_->ReadExact(loc.offset, loc.length, blob.data()));
  return ParseLeafBlob(std::move(blob), leaf_index);
}

Result<std::vector<LeafData>> AceTree::ReadLeaves(
    const std::vector<uint64_t>& leaf_indices) const {
  for (uint64_t idx : leaf_indices) {
    if (idx >= meta_.num_leaves) {
      return Status::OutOfRange("leaf index out of range");
    }
  }
  // Elevator (SCAN) schedule: issue requests in ascending physical offset
  // so adjacent leaves become contiguous in array order, which is what
  // File::ReadBatch coalesces into single modeled accesses.
  std::vector<size_t> order(leaf_indices.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    uint64_t oa = directory_[leaf_indices[a]].offset;
    uint64_t ob = directory_[leaf_indices[b]].offset;
    if (oa != ob) return oa < ob;
    return a < b;
  });

  std::vector<std::string> blobs(leaf_indices.size());
  std::vector<io::ReadRequest> reqs(leaf_indices.size());
  for (size_t k = 0; k < order.size(); ++k) {
    const size_t pos = order[k];
    const LeafLocation& loc = directory_[leaf_indices[pos]];
    blobs[pos].resize(loc.length);
    reqs[k].offset = loc.offset;
    reqs[k].n = loc.length;
    reqs[k].scratch = blobs[pos].data();
  }
  MSV_RETURN_IF_ERROR(file_->ReadBatch(reqs.data(), reqs.size()));
  for (size_t k = 0; k < reqs.size(); ++k) {
    if (reqs[k].got != reqs[k].n) {
      return Status::IOError(
          "short read: wanted " + std::to_string(reqs[k].n) +
          " bytes at offset " + std::to_string(reqs[k].offset) + ", got " +
          std::to_string(reqs[k].got));
    }
  }

  std::vector<LeafData> leaves;
  leaves.reserve(leaf_indices.size());
  for (size_t i = 0; i < leaf_indices.size(); ++i) {
    MSV_ASSIGN_OR_RETURN(LeafData leaf,
                         ParseLeafBlob(std::move(blobs[i]), leaf_indices[i]));
    leaves.push_back(std::move(leaf));
  }
  return leaves;
}

Result<LeafData> AceTree::ParseLeafBlob(std::string blob,
                                        uint64_t leaf_index) const {
  if (blob.size() < 4) {
    return Status::Corruption("leaf blob shorter than its checksum");
  }
  uint32_t stored = UnmaskCrc(DecodeFixed32(blob.data() + blob.size() - 4));
  if (stored != Crc32c(blob.data(), blob.size() - 4)) {
    return Status::Corruption("leaf " + std::to_string(leaf_index) +
                              " checksum mismatch");
  }
  blob.resize(blob.size() - 4);

  const size_t header = LeafHeaderSize(meta_.height);
  if (blob.size() < header) {
    return Status::Corruption("leaf blob shorter than header");
  }
  uint32_t stored_index = DecodeFixed32(blob.data());
  uint32_t stored_height = DecodeFixed32(blob.data() + 4);
  if (stored_index != leaf_index || stored_height != meta_.height) {
    return Status::Corruption("leaf header mismatch for leaf " +
                              std::to_string(leaf_index));
  }

  LeafData leaf;
  leaf.leaf_index = leaf_index;
  leaf.record_size = meta_.record_size;
  leaf.sections.resize(meta_.height);
  size_t off = header;
  for (uint32_t s = 0; s < meta_.height; ++s) {
    uint32_t count = DecodeFixed32(blob.data() + 8 + 4 * s);
    size_t bytes = static_cast<size_t>(count) * meta_.record_size;
    if (off + bytes > blob.size()) {
      return Status::Corruption("leaf section overruns blob");
    }
    leaf.sections[s].assign(blob.data() + off, bytes);
    off += bytes;
  }
  if (off != blob.size()) {
    return Status::Corruption("trailing bytes in leaf blob");
  }
  return leaf;
}

uint64_t AceTree::NodeCount(uint64_t heap_id) const {
  MSV_CHECK(heap_id >= 1 && heap_id < 2 * meta_.num_leaves);
  return node_counts_[heap_id];
}

namespace {

// Fraction of box `b` (half-open) covered by query `q` (closed), assuming
// uniform density inside the box.
double VolumeOverlapFraction(const Box& b, const sampling::RangeQuery& q) {
  double frac = 1.0;
  for (size_t d = 0; d < q.dims; ++d) {
    double width = b.hi[d] - b.lo[d];
    if (width <= 0) return 0.0;
    double lo = std::max(b.lo[d], q.bounds[d].lo);
    double hi = std::min(b.hi[d], q.bounds[d].hi);
    if (hi <= lo) return 0.0;
    frac *= (hi - lo) / width;
  }
  return frac;
}

}  // namespace

Result<uint64_t> AceTree::EstimateMatchCount(
    const sampling::RangeQuery& q) const {
  MSV_RETURN_IF_ERROR(q.Validate(layout_));
  if (q.dims != meta_.key_dims) {
    return Status::InvalidArgument(
        "query dimensionality differs from tree key_dims");
  }
  double estimate = 0.0;
  struct Item {
    uint64_t id;
    Box box;
  };
  std::vector<Item> stack{{1, splits_->root_box()}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    if (!BoxOverlapsQuery(item.box, q)) continue;
    uint64_t count = node_counts_[item.id];
    if (count == 0) continue;
    if (BoxCoversQuery(item.box, q) && !BoxOverlapsQuery(item.box, q)) {
      continue;  // unreachable; kept for clarity
    }
    // Fully inside the query: exact contribution.
    bool inside = true;
    for (size_t d = 0; d < q.dims; ++d) {
      if (!(q.bounds[d].lo <= item.box.lo[d] &&
            item.box.hi[d] <= std::nextafter(
                                  q.bounds[d].hi,
                                  std::numeric_limits<double>::infinity()))) {
        inside = false;
        break;
      }
    }
    if (inside) {
      estimate += static_cast<double>(count);
      continue;
    }
    if (item.id < meta_.num_leaves) {
      stack.push_back({2 * item.id,
                       splits_->ChildBox(item.box, item.id, /*left=*/true)});
      stack.push_back({2 * item.id + 1,
                       splits_->ChildBox(item.box, item.id, /*left=*/false)});
    } else {
      // Finest cell partially overlapping the query: pro-rate by volume.
      estimate += static_cast<double>(count) *
                  VolumeOverlapFraction(item.box, q);
    }
  }
  return static_cast<uint64_t>(std::llround(estimate));
}

}  // namespace msv::core
