#include "core/ace_sampler.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace msv::core {

AceSampler::AceSampler(const AceTree* tree, sampling::RangeQuery query,
                       uint64_t seed)
    : tree_(tree), query_(query), rng_(seed) {
  MSV_CHECK_MSG(query_.Validate(tree_->layout()).ok(), "invalid query");
  MSV_CHECK_MSG(query_.dims == tree_->meta().key_dims,
                "query dims must match the tree's indexed dims");

  const SplitTree& splits = tree_->splits();
  const uint64_t num_leaves = splits.num_leaves();
  auto covering = splits.CoveringSets(query_);
  combiner_ = std::make_unique<CombineEngine>(
      &tree_->layout(), query_, covering, tree_->meta().record_size,
      tree_->meta().height);

  overlaps_.assign(2 * num_leaves, 0);
  done_.assign(2 * num_leaves, 0);
  next_right_.assign(2 * num_leaves, 0);
  for (const auto& level_nodes : covering) {
    for (uint64_t id : level_nodes) overlaps_[id] = 1;
  }
  finished_ = overlaps_[1] == 0;  // query misses the whole domain

  level_disk_us_.assign(tree_->meta().height, 0);
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  c_leaf_reads_ = reg.GetCounter("ace.leaf_reads");
  c_samples_ = reg.GetCounter("ace.samples_emitted");
  c_disk_busy_ = reg.GetCounter("io.disk.busy_us");
  span_ = obs::StartTraceSpan(name() + ".sample");
  span_.AddAttr("leaves", num_leaves);
  span_.AddAttr("height", static_cast<uint64_t>(tree_->meta().height));
}

AceSampler::~AceSampler() { EmitLevelSpans(); }

void AceSampler::ApportionDiskUs(uint64_t delta_us, const LeafData& leaf) {
  const uint32_t h = tree_->meta().height;
  uint64_t total_bytes = 0;
  for (const std::string& s : leaf.sections) total_bytes += s.size();
  if (total_bytes == 0 || h == 0) {
    if (h > 0) level_disk_us_[0] += delta_us;
    return;
  }
  // Largest-remainder split: integer shares proportional to section
  // bytes whose sum is exactly delta_us.
  uint64_t assigned = 0;
  std::vector<std::pair<uint64_t, uint32_t>> remainders;  // (remainder, level-1)
  remainders.reserve(h);
  for (uint32_t i = 0; i < h; ++i) {
    uint64_t numer = delta_us * leaf.sections[i].size();
    level_disk_us_[i] += numer / total_bytes;
    assigned += numer / total_bytes;
    remainders.emplace_back(numer % total_bytes, i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  for (uint64_t r = delta_us - assigned, i = 0; r > 0; --r, ++i) {
    ++level_disk_us_[remainders[i % remainders.size()].second];
  }
}

void AceSampler::EmitLevelSpans() {
  if (level_spans_emitted_) return;
  level_spans_emitted_ = true;
  if (!span_.active()) return;
  for (uint32_t level = 1; level <= tree_->meta().height; ++level) {
    obs::Span s = obs::StartTraceSpan("ace.level");
    s.AddAttr("level", static_cast<uint64_t>(level));
    s.AddMetric("disk_us", static_cast<double>(level_disk_us_[level - 1]));
    s.AddMetric("sections_read", static_cast<double>(leaves_read_));
    s.AddMetric("rounds", static_cast<double>(combiner_->rounds(level)));
    s.AddMetric("samples", static_cast<double>(combiner_->emitted(level)));
  }
  span_.AddAttr("leaves_read", leaves_read_);
  span_.AddAttr("samples", returned_);
  span_.End();
}

Status AceSampler::Stab(sampling::SampleBatch* out) {
  const uint64_t num_leaves = tree_->splits().num_leaves();
  uint64_t id = 1;
  while (id < num_leaves) {
    uint64_t left = 2 * id;
    uint64_t right = left + 1;
    // Every leaf is relevant (its coarse sections sample ranges that span
    // the query), so only exhausted subtrees are skipped; subtrees whose
    // box overlaps the query are merely *preferred*, which is what makes
    // the early samples arrive fast.
    bool l_ok = !done_[left];
    bool r_ok = !done_[right];
    if (l_ok && r_ok) {
      bool l_ov = overlaps_[left] != 0;
      bool r_ov = overlaps_[right] != 0;
      if (l_ov != r_ov) {
        // Exactly one side overlaps: take it, leaving the toggle bit
        // untouched (the paper's "irrespective of the indicator bit").
        id = l_ov ? left : right;
      } else if (next_right_[id]) {
        // Free choice: alternate (the paper's back-and-forth order, which
        // maximizes the disparity of retrieved sections).
        id = right;
        next_right_[id / 2] = 0;
      } else {
        id = left;
        next_right_[id / 2] = 1;
      }
    } else if (l_ok) {
      id = left;
    } else if (r_ok) {
      id = right;
    } else {
      return Status::Internal("stab reached a node with no viable child");
    }
  }

  // Leaf reached: retrieve and combine.
  uint64_t busy_before = c_disk_busy_->Value();
  MSV_ASSIGN_OR_RETURN(LeafData leaf,
                       tree_->ReadLeaf(tree_->splits().LeafIndexOf(id)));
  ApportionDiskUs(c_disk_busy_->Value() - busy_before, leaf);
  ++leaves_read_;
  c_leaf_reads_->Add();
  leaf_read_order_.push_back(tree_->splits().LeafIndexOf(id));
  combiner_->AddLeaf(id, leaf, out, &rng_);
  done_[id] = 1;

  // Propagate done-ness towards the root: a node is done once all leaves
  // beneath it have been accessed (the paper's lookup-table `done` flag).
  for (uint64_t n = id / 2; n >= 1; n /= 2) {
    if (done_[2 * n] && done_[2 * n + 1]) {
      done_[n] = 1;
    } else {
      break;
    }
  }

  if (done_[1]) {
    // Every leaf consumed. All combine rounds have balanced out (each
    // covering node at level i received exactly 2^(h-i) contributions),
    // so the flush is a no-op safety net completing the match set.
    combiner_->Flush(out, &rng_);
    finished_ = true;
  }
  return Status::OK();
}

Result<sampling::SampleBatch> AceSampler::NextBatch() {
  sampling::SampleBatch batch;
  batch.record_size = tree_->meta().record_size;
  if (finished_) return batch;
  MSV_RETURN_IF_ERROR(Stab(&batch));
  returned_ += batch.count();
  c_samples_->Add(batch.count());
  if (finished_) EmitLevelSpans();
  return batch;
}

}  // namespace msv::core
