#include "core/ace_sampler.h"

#include <algorithm>
#include <utility>

#include "io/disk_model.h"
#include "util/logging.h"

namespace msv::core {

StabCursor::StabCursor(const SplitTree* splits,
                       const std::vector<std::vector<uint64_t>>& covering)
    : splits_(splits) {
  const uint64_t num_leaves = splits_->num_leaves();
  overlaps_.assign(2 * num_leaves, 0);
  done_.assign(2 * num_leaves, 0);
  next_right_.assign(2 * num_leaves, 0);
  for (const auto& level_nodes : covering) {
    for (uint64_t id : level_nodes) overlaps_[id] = 1;
  }
  exhausted_ = overlaps_[1] == 0;  // query misses the whole domain
}

uint64_t StabCursor::NextLeafId() {
  if (exhausted_) return 0;
  const uint64_t num_leaves = splits_->num_leaves();
  uint64_t id = 1;
  while (id < num_leaves) {
    uint64_t left = 2 * id;
    uint64_t right = left + 1;
    // Every leaf is relevant (its coarse sections sample ranges that span
    // the query), so only exhausted subtrees are skipped; subtrees whose
    // box overlaps the query are merely *preferred*, which is what makes
    // the early samples arrive fast.
    bool l_ok = !done_[left];
    bool r_ok = !done_[right];
    if (l_ok && r_ok) {
      bool l_ov = overlaps_[left] != 0;
      bool r_ov = overlaps_[right] != 0;
      if (l_ov != r_ov) {
        // Exactly one side overlaps: take it, leaving the toggle bit
        // untouched (the paper's "irrespective of the indicator bit").
        id = l_ov ? left : right;
      } else if (next_right_[id]) {
        // Free choice: alternate (the paper's back-and-forth order, which
        // maximizes the disparity of retrieved sections).
        id = right;
        next_right_[id / 2] = 0;
      } else {
        id = left;
        next_right_[id / 2] = 1;
      }
    } else if (l_ok) {
      id = left;
    } else if (r_ok) {
      id = right;
    } else {
      MSV_CHECK_MSG(false, "stab reached a node with no viable child");
    }
  }

  done_[id] = 1;
  // Propagate done-ness towards the root: a node is done once all leaves
  // beneath it have been accessed (the paper's lookup-table `done` flag).
  for (uint64_t n = id / 2; n >= 1; n /= 2) {
    if (done_[2 * n] && done_[2 * n + 1]) {
      done_[n] = 1;
    } else {
      break;
    }
  }
  exhausted_ = done_[1] != 0;
  return id;
}

std::vector<uint64_t> ComputeStabLeafOrder(
    const SplitTree& splits, const sampling::RangeQuery& query) {
  StabCursor cursor(&splits, splits.CoveringSets(query));
  std::vector<uint64_t> order;
  order.reserve(splits.num_leaves());
  while (!cursor.exhausted()) {
    uint64_t id = cursor.NextLeafId();
    if (id == 0) break;
    order.push_back(splits.LeafIndexOf(id));
  }
  return order;
}

void ApportionDiskUsAcrossLevels(uint64_t delta_us, const LeafData& leaf,
                                 uint32_t height,
                                 std::vector<uint64_t>* level_us) {
  uint64_t total_bytes = 0;
  for (const std::string& s : leaf.sections) total_bytes += s.size();
  if (total_bytes == 0 || height == 0) {
    if (height > 0) (*level_us)[0] += delta_us;
    return;
  }
  // Largest-remainder split: integer shares proportional to section
  // bytes whose sum is exactly delta_us.
  uint64_t assigned = 0;
  std::vector<std::pair<uint64_t, uint32_t>> remainders;  // (remainder, level-1)
  remainders.reserve(height);
  for (uint32_t i = 0; i < height; ++i) {
    uint64_t numer = delta_us * leaf.sections[i].size();
    (*level_us)[i] += numer / total_bytes;
    assigned += numer / total_bytes;
    remainders.emplace_back(numer % total_bytes, i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  for (uint64_t r = delta_us - assigned, i = 0; r > 0; --r, ++i) {
    ++(*level_us)[remainders[i % remainders.size()].second];
  }
}

std::vector<uint64_t> ApportionDiskUsAcrossLeaves(
    uint64_t delta_us, const std::vector<LeafData>& leaves) {
  std::vector<uint64_t> shares(leaves.size(), 0);
  if (leaves.empty()) return shares;
  uint64_t total_bytes = 0;
  std::vector<uint64_t> leaf_bytes(leaves.size(), 0);
  for (size_t i = 0; i < leaves.size(); ++i) {
    for (const std::string& s : leaves[i].sections) leaf_bytes[i] += s.size();
    total_bytes += leaf_bytes[i];
  }
  if (total_bytes == 0) {
    shares[0] = delta_us;
    return shares;
  }
  uint64_t assigned = 0;
  std::vector<std::pair<uint64_t, size_t>> remainders;  // (remainder, index)
  remainders.reserve(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    uint64_t numer = delta_us * leaf_bytes[i];
    shares[i] = numer / total_bytes;
    assigned += shares[i];
    remainders.emplace_back(numer % total_bytes, i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  for (uint64_t r = delta_us - assigned, i = 0; r > 0; --r, ++i) {
    ++shares[remainders[i % remainders.size()].second];
  }
  return shares;
}

AceSampler::AceSampler(const AceTree* tree, sampling::RangeQuery query,
                       uint64_t seed)
    : AceSampler(tree, query, seed, AceSamplerOptions{}) {}

AceSampler::AceSampler(const AceTree* tree, sampling::RangeQuery query,
                       uint64_t seed, const AceSamplerOptions& options)
    : tree_(tree), query_(query), options_(options), rng_(seed) {
  MSV_CHECK_MSG(query_.Validate(tree_->layout()).ok(), "invalid query");
  MSV_CHECK_MSG(query_.dims == tree_->meta().key_dims,
                "query dims must match the tree's indexed dims");

  const SplitTree& splits = tree_->splits();
  const uint64_t num_leaves = splits.num_leaves();
  auto covering = splits.CoveringSets(query_);
  combiner_ = std::make_unique<CombineEngine>(
      &tree_->layout(), query_, covering, tree_->meta().record_size,
      tree_->meta().height);
  cursor_ = std::make_unique<StabCursor>(&splits, covering);
  finished_ = cursor_->exhausted();

  level_disk_us_.assign(tree_->meta().height, 0);
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  c_leaf_reads_ = reg.GetCounter("ace.leaf_reads");
  c_samples_ = reg.GetCounter("ace.samples_emitted");
  span_ = obs::StartTraceSpan(name() + ".sample");
  span_.AddAttr("leaves", num_leaves);
  span_.AddAttr("height", static_cast<uint64_t>(tree_->meta().height));
}

AceSampler::~AceSampler() { EmitLevelSpans(); }

void AceSampler::EmitLevelSpans() {
  if (level_spans_emitted_) return;
  level_spans_emitted_ = true;
  if (!span_.active()) return;
  for (uint32_t level = 1; level <= tree_->meta().height; ++level) {
    obs::Span s = obs::StartTraceSpan("ace.level");
    s.AddAttr("level", static_cast<uint64_t>(level));
    s.AddMetric("disk_us", static_cast<double>(level_disk_us_[level - 1]));
    s.AddMetric("sections_read", static_cast<double>(leaves_read_));
    s.AddMetric("rounds", static_cast<double>(combiner_->rounds(level)));
    s.AddMetric("samples", static_cast<double>(combiner_->emitted(level)));
  }
  span_.AddAttr("leaves_read", leaves_read_);
  span_.AddAttr("samples", returned_);
  // Block capacity of the combiner's per-query arena (DESIGN.md §15):
  // tracks the high-water mark of buffered-record bytes.
  span_.AddAttr("arena_bytes",
                static_cast<uint64_t>(combiner_->arena_bytes()));
  span_.End();
}

Status AceSampler::FillPending() {
  // Pull the next window of stab positions. The cursor is the sole
  // authority on order; prefetching only changes *when* the bytes move,
  // never which leaf feeds the combiner next.
  const size_t window = options_.io_batch_window;
  std::vector<uint64_t> heap_ids;
  while (!cursor_->exhausted() &&
         (window == 0 || heap_ids.size() < window)) {
    uint64_t id = cursor_->NextLeafId();
    if (id == 0) break;
    heap_ids.push_back(id);
  }
  if (heap_ids.empty()) {
    return Status::Internal("stab on an exhausted cursor");
  }
  std::vector<uint64_t> leaf_indices;
  leaf_indices.reserve(heap_ids.size());
  for (uint64_t id : heap_ids) {
    leaf_indices.push_back(tree_->splits().LeafIndexOf(id));
  }
  uint64_t busy_before = io::ThreadDiskBusyUs();
  MSV_ASSIGN_OR_RETURN(std::vector<LeafData> leaves,
                       tree_->ReadLeaves(leaf_indices));
  std::vector<uint64_t> shares = ApportionDiskUsAcrossLeaves(
      io::ThreadDiskBusyUs() - busy_before, leaves);
  for (size_t i = 0; i < heap_ids.size(); ++i) {
    pending_.push_back(
        PendingLeaf{heap_ids[i], std::move(leaves[i]), shares[i]});
  }
  return Status::OK();
}

Status AceSampler::Stab(sampling::SampleBatch* out) {
  if (options_.io_batch_window != 1) {
    if (pending_.empty()) MSV_RETURN_IF_ERROR(FillPending());
    PendingLeaf p = std::move(pending_.front());
    pending_.pop_front();
    // Attribution, read order and counters are recorded at *consumption*
    // (stab order), so diagnostics match the serial path exactly.
    ApportionDiskUsAcrossLevels(p.disk_us, p.leaf, tree_->meta().height,
                                &level_disk_us_);
    ++leaves_read_;
    c_leaf_reads_->Add();
    leaf_read_order_.push_back(p.leaf.leaf_index);
    combiner_->AddLeaf(p.heap_id, p.leaf, out, &rng_);
    if (cursor_->exhausted() && pending_.empty()) {
      combiner_->Flush(out, &rng_);
      finished_ = true;
    }
    return Status::OK();
  }

  uint64_t id = cursor_->NextLeafId();
  if (id == 0) {
    return Status::Internal("stab on an exhausted cursor");
  }

  // Leaf reached: retrieve and combine. The busy delta is the calling
  // thread's own attribution, so concurrent samplers hammering the same
  // arm never inflate each other's levels.
  uint64_t busy_before = io::ThreadDiskBusyUs();
  MSV_ASSIGN_OR_RETURN(LeafData leaf,
                       tree_->ReadLeaf(tree_->splits().LeafIndexOf(id)));
  ApportionDiskUsAcrossLevels(io::ThreadDiskBusyUs() - busy_before, leaf,
                              tree_->meta().height, &level_disk_us_);
  ++leaves_read_;
  c_leaf_reads_->Add();
  leaf_read_order_.push_back(tree_->splits().LeafIndexOf(id));
  combiner_->AddLeaf(id, leaf, out, &rng_);

  if (cursor_->exhausted()) {
    // Every leaf consumed. All combine rounds have balanced out (each
    // covering node at level i received exactly 2^(h-i) contributions),
    // so the flush is a no-op safety net completing the match set.
    combiner_->Flush(out, &rng_);
    finished_ = true;
  }
  return Status::OK();
}

Result<sampling::SampleBatch> AceSampler::NextBatch() {
  sampling::SampleBatch batch;
  batch.record_size = tree_->meta().record_size;
  if (finished_) return batch;
  MSV_RETURN_IF_ERROR(Stab(&batch));
  returned_ += batch.count();
  c_samples_->Add(batch.count());
  if (finished_) EmitLevelSpans();
  return batch;
}

}  // namespace msv::core
