#include "core/ace_sampler.h"

#include "util/logging.h"

namespace msv::core {

AceSampler::AceSampler(const AceTree* tree, sampling::RangeQuery query,
                       uint64_t seed)
    : tree_(tree), query_(query), rng_(seed) {
  MSV_CHECK_MSG(query_.Validate(tree_->layout()).ok(), "invalid query");
  MSV_CHECK_MSG(query_.dims == tree_->meta().key_dims,
                "query dims must match the tree's indexed dims");

  const SplitTree& splits = tree_->splits();
  const uint64_t num_leaves = splits.num_leaves();
  auto covering = splits.CoveringSets(query_);
  combiner_ = std::make_unique<CombineEngine>(
      &tree_->layout(), query_, covering, tree_->meta().record_size,
      tree_->meta().height);

  overlaps_.assign(2 * num_leaves, 0);
  done_.assign(2 * num_leaves, 0);
  next_right_.assign(2 * num_leaves, 0);
  for (const auto& level_nodes : covering) {
    for (uint64_t id : level_nodes) overlaps_[id] = 1;
  }
  finished_ = overlaps_[1] == 0;  // query misses the whole domain
}

Status AceSampler::Stab(sampling::SampleBatch* out) {
  const uint64_t num_leaves = tree_->splits().num_leaves();
  uint64_t id = 1;
  while (id < num_leaves) {
    uint64_t left = 2 * id;
    uint64_t right = left + 1;
    // Every leaf is relevant (its coarse sections sample ranges that span
    // the query), so only exhausted subtrees are skipped; subtrees whose
    // box overlaps the query are merely *preferred*, which is what makes
    // the early samples arrive fast.
    bool l_ok = !done_[left];
    bool r_ok = !done_[right];
    if (l_ok && r_ok) {
      bool l_ov = overlaps_[left] != 0;
      bool r_ov = overlaps_[right] != 0;
      if (l_ov != r_ov) {
        // Exactly one side overlaps: take it, leaving the toggle bit
        // untouched (the paper's "irrespective of the indicator bit").
        id = l_ov ? left : right;
      } else if (next_right_[id]) {
        // Free choice: alternate (the paper's back-and-forth order, which
        // maximizes the disparity of retrieved sections).
        id = right;
        next_right_[id / 2] = 0;
      } else {
        id = left;
        next_right_[id / 2] = 1;
      }
    } else if (l_ok) {
      id = left;
    } else if (r_ok) {
      id = right;
    } else {
      return Status::Internal("stab reached a node with no viable child");
    }
  }

  // Leaf reached: retrieve and combine.
  MSV_ASSIGN_OR_RETURN(LeafData leaf,
                       tree_->ReadLeaf(tree_->splits().LeafIndexOf(id)));
  ++leaves_read_;
  leaf_read_order_.push_back(tree_->splits().LeafIndexOf(id));
  combiner_->AddLeaf(id, leaf, out, &rng_);
  done_[id] = 1;

  // Propagate done-ness towards the root: a node is done once all leaves
  // beneath it have been accessed (the paper's lookup-table `done` flag).
  for (uint64_t n = id / 2; n >= 1; n /= 2) {
    if (done_[2 * n] && done_[2 * n + 1]) {
      done_[n] = 1;
    } else {
      break;
    }
  }

  if (done_[1]) {
    // Every leaf consumed. All combine rounds have balanced out (each
    // covering node at level i received exactly 2^(h-i) contributions),
    // so the flush is a no-op safety net completing the match set.
    combiner_->Flush(out, &rng_);
    finished_ = true;
  }
  return Status::OK();
}

Result<sampling::SampleBatch> AceSampler::NextBatch() {
  sampling::SampleBatch batch;
  batch.record_size = tree_->meta().record_size;
  if (finished_) return batch;
  MSV_RETURN_IF_ERROR(Stab(&batch));
  returned_ += batch.count();
  return batch;
}

}  // namespace msv::core
