#include "core/ace_format.h"

#include <cstring>

#include "util/coding.h"
#include "util/crc32c.h"

namespace msv::core {

void EncodeSuperblock(char* dst, const AceMeta& meta) {
  std::memset(dst, 0, kSuperblockSize);
  EncodeFixed64(dst + 0, kAceMagic);
  EncodeFixed32(dst + 8, kAceVersion);
  EncodeFixed32(dst + 12, static_cast<uint32_t>(meta.page_size));
  EncodeFixed32(dst + 16, static_cast<uint32_t>(meta.record_size));
  EncodeFixed32(dst + 20, meta.key_dims);
  EncodeFixed32(dst + 24, meta.height);
  EncodeFixed64(dst + 32, meta.num_leaves);
  EncodeFixed64(dst + 40, meta.num_records);
  EncodeFixed64(dst + 48, meta.internal_offset);
  EncodeFixed64(dst + 56, meta.directory_offset);
  EncodeFixed64(dst + 64, meta.data_offset);
  size_t off = 72;
  for (size_t d = 0; d < storage::kMaxKeyDims; ++d) {
    EncodeDouble(dst + off, meta.domain_min[d]);
    off += 8;
  }
  for (size_t d = 0; d < storage::kMaxKeyDims; ++d) {
    EncodeDouble(dst + off, meta.domain_max[d]);
    off += 8;
  }
  EncodeFixed32(dst + off, meta.internal_crc);
  EncodeFixed32(dst + off + 4, meta.directory_crc);
  // Masked CRC over everything before it, in the final 4 bytes.
  EncodeFixed32(dst + kSuperblockSize - 4,
                MaskCrc(Crc32c(dst, kSuperblockSize - 4)));
}

Result<AceMeta> DecodeSuperblock(const char* src) {
  if (DecodeFixed64(src) != kAceMagic) {
    return Status::Corruption("bad ACE tree magic");
  }
  uint32_t stored = UnmaskCrc(DecodeFixed32(src + kSuperblockSize - 4));
  if (stored != Crc32c(src, kSuperblockSize - 4)) {
    return Status::Corruption("ACE superblock checksum mismatch");
  }
  if (DecodeFixed32(src + 8) != kAceVersion) {
    return Status::Corruption("unsupported ACE tree version");
  }
  AceMeta meta;
  meta.page_size = DecodeFixed32(src + 12);
  meta.record_size = DecodeFixed32(src + 16);
  meta.key_dims = DecodeFixed32(src + 20);
  meta.height = DecodeFixed32(src + 24);
  meta.num_leaves = DecodeFixed64(src + 32);
  meta.num_records = DecodeFixed64(src + 40);
  meta.internal_offset = DecodeFixed64(src + 48);
  meta.directory_offset = DecodeFixed64(src + 56);
  meta.data_offset = DecodeFixed64(src + 64);
  size_t off = 72;
  for (size_t d = 0; d < storage::kMaxKeyDims; ++d) {
    meta.domain_min[d] = DecodeDouble(src + off);
    off += 8;
  }
  for (size_t d = 0; d < storage::kMaxKeyDims; ++d) {
    meta.domain_max[d] = DecodeDouble(src + off);
    off += 8;
  }
  meta.internal_crc = DecodeFixed32(src + off);
  meta.directory_crc = DecodeFixed32(src + off + 4);
  if (meta.record_size == 0 || meta.height == 0 || meta.key_dims == 0 ||
      meta.key_dims > storage::kMaxKeyDims) {
    return Status::Corruption("implausible ACE superblock geometry");
  }
  if (meta.num_leaves != (1ull << (meta.height - 1))) {
    return Status::Corruption("leaf count inconsistent with height");
  }
  return meta;
}

void EncodeInternalNode(char* dst, const InternalNode& node) {
  EncodeDouble(dst + 0, node.split_key);
  EncodeFixed32(dst + 8, node.split_dim);
  EncodeFixed32(dst + 12, 0);
  EncodeFixed64(dst + 16, node.cnt_left);
  EncodeFixed64(dst + 24, node.cnt_right);
}

InternalNode DecodeInternalNode(const char* src) {
  InternalNode node;
  node.split_key = DecodeDouble(src + 0);
  node.split_dim = DecodeFixed32(src + 8);
  node.cnt_left = DecodeFixed64(src + 16);
  node.cnt_right = DecodeFixed64(src + 24);
  return node;
}

}  // namespace msv::core
