// The section combine/append engine (paper Sec. 6, Algorithm 4,
// generalized).
//
// For a query Q and section level i, the level-i nodes whose boxes
// intersect Q form the *covering set* C_i: the section-i contributions of
// leaves under these nodes jointly span Q. Arriving leaf sections are
// filtered against Q and queued per covering node; whenever every node in
// C_i has at least one queued contribution, one contribution per node is
// popped, appended (appendability), and emitted (combinability).
//
// Emitting in such "rounds" is exactly the condition under which the
// running output is an unbiased sample: a record matching Q is emitted at
// level i with probability (1/h) * rounds_i / 2^(h-i), independent of
// where in the query range it lies, because every covering node has
// contributed the same number of leaf sections. Leftover contributions
// stay buffered (the paper's buckets[]; their size is the Fig. 15
// experiment) until the final flush, which runs only when every relevant
// leaf has been consumed — at that point the output is the complete match
// set and unbiasedness is trivial.
//
// CPU hot path (DESIGN.md §15): sections are filtered with the batched
// branch-free RangeQuery::MatchBatch kernel instead of a per-record
// Matches call, matching records are copied once into a per-query bump
// arena, and everything queued/emitted from then on is a zero-copy
// {ptr,count} RecordSpan — no per-section std::string, no round
// concatenation, no reallocating per-record appends. The arena rewinds
// whenever the buffers fully drain, so held memory tracks the high-water
// mark of *buffered* records, as the string version's live bytes did.

#ifndef MSV_CORE_COMBINE_ENGINE_H_
#define MSV_CORE_COMBINE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "core/ace_tree.h"
#include "sampling/range_query.h"
#include "sampling/sample_stream.h"
#include "storage/record.h"
#include "storage/record_view.h"
#include "util/arena.h"
#include "util/random.h"

namespace msv::core {

class CombineEngine {
 public:
  /// `covering` is SplitTree::CoveringSets(query): per level (index i-1),
  /// the heap ids of level-i nodes intersecting the query.
  CombineEngine(const storage::RecordLayout* layout,
                const sampling::RangeQuery& query,
                const std::vector<std::vector<uint64_t>>& covering,
                size_t record_size, uint32_t height);

  /// Feeds one retrieved leaf; appends any newly emittable samples to
  /// `out` (shuffled so consumers see exchangeable order).
  void AddLeaf(uint64_t leaf_heap_id, const LeafData& leaf,
               sampling::SampleBatch* out, Pcg64* rng);

  /// Emits everything still buffered. Only valid once every relevant leaf
  /// has been fed (the caller — the sampler — guarantees this).
  void Flush(sampling::SampleBatch* out, Pcg64* rng);

  /// Matching records currently buffered (paper Fig. 15 metric).
  uint64_t buffered_records() const { return buffered_; }

  /// Completed combine rounds at section level `level` (1-based).
  uint64_t rounds(uint32_t level) const { return levels_[level - 1].rounds; }

  /// Records emitted from section level `level` (1-based), including the
  /// final flush. Drives the per-level sample-progress trace spans.
  uint64_t emitted(uint32_t level) const { return levels_[level - 1].emitted; }

  /// Block capacity held by the per-query arena (diagnostics).
  size_t arena_bytes() const { return arena_.bytes_reserved(); }

 private:
  struct LevelState {
    /// queue index by covering-node heap id.
    std::unordered_map<uint64_t, size_t> node_pos;
    /// One FIFO of filtered, arena-resident section spans per covering
    /// node. Spans may be empty — rounds count sections, not records.
    std::vector<std::deque<storage::RecordSpan>> queues;
    size_t nonempty = 0;
    uint64_t rounds = 0;
    uint64_t emitted = 0;  ///< records emitted from this level
  };

  /// Emits `spans` (already in covering-node order) shuffled into `out`,
  /// consuming `rng` exactly as the historical string-concatenation path
  /// did: one Shuffle over the round's record count. Uses scratch_*
  /// members, hence non-const.
  void EmitShuffled(const std::vector<storage::RecordSpan>& spans,
                    sampling::SampleBatch* out, Pcg64* rng);

  /// Filters one leaf section with the batched kernel and copies the
  /// matching records into the arena; returns the resulting span.
  storage::RecordSpan FilterSection(const std::string& raw);

  const storage::RecordLayout* layout_;
  sampling::RangeQuery query_;
  size_t record_size_;
  uint32_t height_;
  std::vector<LevelState> levels_;
  uint64_t buffered_ = 0;

  /// Per-query allocator backing every queued span; rewound whenever the
  /// engine drains (buffered_ == 0, no live spans reference it).
  util::Arena arena_;
  /// Reusable scratch: match indices from the kernel, the spans of the
  /// round being emitted, and the flattened per-record pointers fed to
  /// the shuffle.
  std::vector<uint32_t> scratch_idx_;
  std::vector<storage::RecordSpan> scratch_round_;
  std::vector<const char*> scratch_recs_;
  std::vector<uint32_t> scratch_order_;
};

}  // namespace msv::core

#endif  // MSV_CORE_COMBINE_ENGINE_H_
