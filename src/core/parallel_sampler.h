// Parallel ACE sampling: one query's leaf reads fanned across a worker
// pool, merged back into a single without-replacement stream.
//
// The stab order of AceSampler depends only on the split tree and the
// query's covering sets — never on leaf contents — so the full retrieval
// sequence is known up front (StabCursor). Workers prefetch leaves from
// that sequence out of order, bounded by a reorder window; the consumer
// (NextBatch's caller thread) feeds leaves to the CombineEngine strictly
// in stab order with a single presentation RNG. The emitted byte stream
// is therefore identical to a serial AceSampler with the same seed — the
// determinism test asserts equality — while the disk and buffer-pool
// layers see concurrent requests.

#ifndef MSV_CORE_PARALLEL_SAMPLER_H_
#define MSV_CORE_PARALLEL_SAMPLER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "core/combine_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/sample_stream.h"
#include "util/random.h"
#include "util/sync.h"

namespace msv::core {

class ParallelAceSampler : public sampling::SampleStream {
 public:
  struct Options {
    /// Worker threads prefetching leaves. 0 or 1 degrades to a single
    /// worker (still asynchronous, same output).
    size_t threads = 4;
    /// Maximum leaves fetched ahead of the consumer. 0 picks 2*threads.
    /// Bounds both memory and how far workers run ahead.
    size_t prefetch_window = 0;
    /// Leaves a worker claims per batched read. Claimed chunks are read
    /// with AceTree::ReadLeaves (elevator order, adjacent leaves
    /// coalesced into single modeled accesses); the consumer still
    /// drains positions strictly in stab order, so the output stream is
    /// unchanged. 0 picks max(1, prefetch_window / threads).
    size_t read_batch = 0;
  };

  /// Same seed semantics as AceSampler: `seed` drives only the
  /// presentation-order shuffling, applied by the consumer thread.
  ParallelAceSampler(const AceTree* tree, sampling::RangeQuery query,
                     uint64_t seed, Options options);
  ParallelAceSampler(const AceTree* tree, sampling::RangeQuery query,
                     uint64_t seed)
      : ParallelAceSampler(tree, query, seed, Options()) {}
  ~ParallelAceSampler() override;

  Result<sampling::SampleBatch> NextBatch() override;
  bool done() const override { return finished_; }
  uint64_t samples_returned() const override { return returned_; }
  std::string name() const override { return "ace-par"; }

  uint64_t buffered_records() const { return combiner_->buffered_records(); }
  uint64_t leaves_read() const { return leaves_read_; }
  const std::vector<uint64_t>& leaf_read_order() const {
    return leaf_read_order_;
  }
  size_t worker_count() const { return workers_.size(); }

  /// Per-level disk-µs attribution with the same contract as
  /// AceSampler::level_disk_us(): each leaf read's delta is measured on
  /// the worker thread that issued it via io::ThreadDiskBusyUs(), so the
  /// per-level sums reconcile exactly with the device's busy time charged
  /// to this query even under concurrent queries.
  uint64_t level_disk_us(uint32_t level) const {
    return level_disk_us_[level - 1];
  }

 private:
  /// A leaf fetched by a worker, waiting for the consumer.
  struct Fetched {
    LeafData leaf;
    uint64_t disk_us = 0;
  };

  void WorkerLoop(size_t worker_index);
  void EmitLevelSpans();

  const AceTree* tree_;
  sampling::RangeQuery query_;
  Pcg64 rng_;  // consumer-only; the serial presentation RNG
  std::unique_ptr<CombineEngine> combiner_;

  /// Stab order as (heap id, leaf index) pairs, fixed at construction.
  std::vector<std::pair<uint64_t, uint64_t>> order_;
  size_t window_ = 0;
  size_t read_batch_ = 1;

  Mutex mu_;
  CondVar work_cv_;   // workers wait: window space
  CondVar ready_cv_;  // consumer waits: next leaf fetched
  /// Next order_ position a worker may take.
  size_t next_claim_ MSV_GUARDED_BY(mu_) = 0;
  /// Next order_ position the consumer needs.
  size_t consumed_ MSV_GUARDED_BY(mu_) = 0;
  /// position -> result
  std::unordered_map<size_t, Fetched> fetched_ MSV_GUARDED_BY(mu_);
  /// First failure; sticky.
  Status worker_error_ MSV_GUARDED_BY(mu_);
  bool stop_ MSV_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;

  uint64_t returned_ = 0;
  uint64_t leaves_read_ = 0;
  std::vector<uint64_t> leaf_read_order_;
  bool finished_ = false;

  std::vector<uint64_t> level_disk_us_;
  obs::Counter* c_leaf_reads_;
  obs::Counter* c_samples_;
  obs::Span span_;
  bool level_spans_emitted_ = false;
};

}  // namespace msv::core

#endif  // MSV_CORE_PARALLEL_SAMPLER_H_
