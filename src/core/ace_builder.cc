#include "core/ace_builder.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "core/ace_format.h"
#include "core/split_tree.h"
#include "obs/trace.h"
#include "storage/heap_file.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/reservoir.h"

namespace msv::core {

namespace {

using storage::HeapFile;
using storage::HeapFileWriter;

uint64_t AlignUp(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

// Maps a Phase-1 rank boundary index m (1..F-1) to the heap id of the
// internal node whose split key lives at that boundary: boundary m of the
// sorted file is the (2j-1)-th boundary at granularity 2^(h-1-i), i.e.
// m = (2j-1) * 2^(h-1-i) for node j (1-based) of level i.
uint64_t BoundaryToHeapId(uint64_t m, uint32_t height) {
  unsigned t = static_cast<unsigned>(std::countr_zero(m));
  uint64_t odd = m >> t;
  uint32_t level = height - 1 - static_cast<uint32_t>(t);
  uint64_t j = (odd + 1) / 2;           // 1-based index within the level
  return (1ull << (level - 1)) + j - 1;  // heap id
}

// Phase 1, 1-d: external sort by key, then read split keys off the exact
// rank boundaries in one sequential pass. Returns the sorted file's name.
Result<std::string> Phase1OneDim(io::Env* env, const std::string& input_name,
                                 const std::string& output_name,
                                 const storage::RecordLayout& layout,
                                 const AceBuildOptions& options,
                                 uint32_t height, uint64_t num_records,
                                 std::vector<InternalNode>* nodes, Box* root,
                                 extsort::SortMetrics* sort_metrics) {
  const std::string sorted_name = output_name + ".phase1";
  extsort::SortOptions sort_options = options.sort;
  sort_options.temp_prefix = output_name + ".p1run";
  MSV_RETURN_IF_ERROR(extsort::ExternalSort(
      env, input_name, sorted_name,
      [&layout](const char* a, const char* b) {
        return layout.Key(a, 0) < layout.Key(b, 0);
      },
      sort_options, sort_metrics));

  const uint64_t num_leaves = 1ull << (height - 1);
  // Rank of boundary m is floor(m * N / F); boundaries are non-decreasing.
  std::vector<uint64_t> boundary_ranks(num_leaves);  // index m (1-based)
  for (uint64_t m = 1; m < num_leaves; ++m) {
    boundary_ranks[m] = m * num_records / num_leaves;
  }

  MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> sorted,
                       HeapFile::Open(env, sorted_name));
  auto scanner =
      sorted->NewScanner(4 << 20, /*readahead=*/options.sort.batched_io);
  uint64_t next_m = 1;
  double first_key = 0.0, last_key = 0.0;
  for (uint64_t r = 0; r < num_records; ++r) {
    MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
    MSV_CHECK(rec != nullptr);
    double key = layout.Key(rec, 0);
    if (r == 0) first_key = key;
    last_key = key;
    while (next_m < num_leaves && boundary_ranks[next_m] == r) {
      uint64_t heap_id = BoundaryToHeapId(next_m, height);
      (*nodes)[heap_id - 1].split_key = key;
      (*nodes)[heap_id - 1].split_dim = 0;
      ++next_m;
    }
  }
  MSV_CHECK_MSG(next_m == num_leaves, "missed split boundaries");

  root->dims = 1;
  root->lo[0] = first_key;
  root->hi[0] =
      std::nextafter(last_key, std::numeric_limits<double>::infinity());
  return sorted_name;
}

// Phase 1, k-d: reservoir-sample key vectors (one sequential pass, also
// collecting the exact domain), then assign split keys by recursive
// in-memory medians of alternating dimensions.
Status Phase1MultiDim(io::Env* env, const std::string& input_name,
                      const storage::RecordLayout& layout,
                      const AceBuildOptions& options, uint32_t height,
                      std::vector<InternalNode>* nodes, Box* root) {
  const uint32_t dims = options.key_dims;
  using KeyVec = std::array<double, storage::kMaxKeyDims>;

  MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> input,
                       HeapFile::Open(env, input_name));
  ReservoirSampler<KeyVec> reservoir(
      static_cast<size_t>(options.split_sample_size));
  Pcg64 rng(options.seed ^ 0x5eed5a3bULL);

  root->dims = dims;
  for (uint32_t d = 0; d < dims; ++d) {
    root->lo[d] = std::numeric_limits<double>::infinity();
    root->hi[d] = -std::numeric_limits<double>::infinity();
  }

  auto scanner =
      input->NewScanner(4 << 20, /*readahead=*/options.sort.batched_io);
  for (;;) {
    MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
    if (rec == nullptr) break;
    KeyVec keys{};
    for (uint32_t d = 0; d < dims; ++d) {
      keys[d] = layout.Key(rec, d);
      root->lo[d] = std::min(root->lo[d], keys[d]);
      root->hi[d] = std::max(root->hi[d], keys[d]);
    }
    reservoir.Offer(keys, &rng);
  }
  std::vector<KeyVec> sample = std::move(reservoir).TakeSample();
  for (uint32_t d = 0; d < dims; ++d) {
    root->hi[d] =
        std::nextafter(root->hi[d], std::numeric_limits<double>::infinity());
  }

  // Recursive median assignment over the sample. Iterative worklist to
  // avoid deep recursion.
  const uint64_t num_leaves = 1ull << (height - 1);
  struct Task {
    uint64_t heap_id;
    size_t begin, end;
  };
  std::vector<Task> work;
  if (num_leaves > 1) work.push_back({1, 0, sample.size()});
  while (!work.empty()) {
    Task t = work.back();
    work.pop_back();
    uint32_t level = SplitTree::LevelOf(t.heap_id);
    uint32_t dim = (level - 1) % dims;
    size_t mid = t.begin + (t.end - t.begin) / 2;
    double split;
    if (t.begin == t.end) {
      // Degenerate partition (tiny sample): inherit the domain midpoint.
      split = 0.0;
    } else {
      std::nth_element(sample.begin() + t.begin, sample.begin() + mid,
                       sample.begin() + t.end,
                       [dim](const KeyVec& a, const KeyVec& b) {
                         return a[dim] < b[dim];
                       });
      split = sample[mid][dim];
    }
    (*nodes)[t.heap_id - 1].split_key = split;
    (*nodes)[t.heap_id - 1].split_dim = dim;
    // Partition by value to mirror the assignment rule (key < split).
    auto border = std::partition(sample.begin() + t.begin,
                                 sample.begin() + t.end,
                                 [dim, split](const KeyVec& k) {
                                   return k[dim] < split;
                                 });
    size_t border_idx = static_cast<size_t>(border - sample.begin());
    uint64_t left = 2 * t.heap_id;
    uint64_t right = left + 1;
    if (left < num_leaves) work.push_back({left, t.begin, border_idx});
    if (right < num_leaves) work.push_back({right, border_idx, t.end});
  }
  return Status::OK();
}

}  // namespace

uint32_t ChooseHeight(uint64_t num_records, size_t record_size,
                      size_t page_size) {
  // Smallest F = 2^(h-1) with expected leaf bytes N*record_size/F within
  // one page.
  uint64_t total = num_records * record_size;
  uint64_t leaves = 1;
  while (leaves * page_size < total) leaves <<= 1;
  return static_cast<uint32_t>(std::bit_width(leaves));  // log2(F) + 1
}

Status AceBuildOptions::Validate(const storage::RecordLayout& layout) const {
  MSV_RETURN_IF_ERROR(layout.Validate());
  if (key_dims == 0 || key_dims > layout.key_dims()) {
    return Status::InvalidArgument("key_dims incompatible with layout");
  }
  if (page_size < 512) {
    return Status::InvalidArgument("page_size too small");
  }
  if (height > 40) {
    return Status::InvalidArgument("height too large");
  }
  if (key_dims > 1 && split_sample_size == 0) {
    return Status::InvalidArgument("split_sample_size must be positive");
  }
  return Status::OK();
}

Status BuildAceTree(io::Env* env, const std::string& input_name,
                    const std::string& output_name,
                    const storage::RecordLayout& layout,
                    const AceBuildOptions& options, AceBuildMetrics* metrics) {
  MSV_RETURN_IF_ERROR(options.Validate(layout));

  MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> input,
                       HeapFile::Open(env, input_name));
  if (input->record_size() != layout.record_size) {
    return Status::InvalidArgument("layout record size mismatch");
  }
  const uint64_t num_records = input->record_count();
  if (num_records == 0) {
    return Status::InvalidArgument("cannot build an ACE tree over 0 records");
  }
  const size_t record_size = layout.record_size;
  input.reset();

  const uint32_t height =
      options.height > 0
          ? options.height
          : ChooseHeight(num_records, record_size, options.page_size);
  const uint64_t num_leaves = 1ull << (height - 1);

  AceBuildMetrics local;
  local.records = num_records;
  local.height = height;
  local.leaves = num_leaves;

  obs::Span build_span = obs::StartTraceSpan("ace.build");
  build_span.AddAttr("records", num_records);
  build_span.AddAttr("height", static_cast<uint64_t>(height));
  build_span.AddAttr("leaves", num_leaves);

  // -------------------------------------------------------------------
  // Phase 1: split points.
  // -------------------------------------------------------------------
  std::vector<InternalNode> nodes(num_leaves - 1);
  Box root_box;
  std::string phase2_input = input_name;
  std::string phase1_file;  // to delete later
  {
    obs::Span span = obs::StartTraceSpan("ace.build.phase1");
    if (options.key_dims == 1) {
      MSV_ASSIGN_OR_RETURN(
          phase1_file,
          Phase1OneDim(env, input_name, output_name, layout, options, height,
                       num_records, &nodes, &root_box, &local.phase1_sort));
      phase2_input = phase1_file;  // same multiset; saves re-reading input
    } else {
      MSV_RETURN_IF_ERROR(Phase1MultiDim(env, input_name, layout, options,
                                         height, &nodes, &root_box));
    }
  }

  SplitTree splits(height, options.key_dims, std::move(nodes), root_box);

  // -------------------------------------------------------------------
  // Phase 2a: assign (leaf, section) to every record; count cells.
  // -------------------------------------------------------------------
  const std::string tagged_name = output_name + ".phase2";
  const size_t tagged_size = record_size + 8;
  std::vector<uint64_t> cell_counts(num_leaves, 0);
  {
    obs::Span span = obs::StartTraceSpan("ace.build.phase2a");
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> in,
                         HeapFile::Open(env, phase2_input));
    MSV_ASSIGN_OR_RETURN(
        std::unique_ptr<HeapFileWriter> writer,
        HeapFileWriter::Create(env, tagged_name, tagged_size));
    Pcg64 rng(options.seed);
    std::vector<char> buf(tagged_size);
    double keys[storage::kMaxKeyDims] = {0};
    auto scanner =
        in->NewScanner(4 << 20, /*readahead=*/options.sort.batched_io);
    for (;;) {
      MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
      if (rec == nullptr) break;
      for (uint32_t d = 0; d < options.key_dims; ++d) {
        keys[d] = layout.Key(rec, d);
      }
      uint32_t section =
          1 + static_cast<uint32_t>(rng.Below(height));  // uniform in [1,h]
      uint64_t anchor = splits.DescendToLevel(keys, section);
      auto [leaf_lo, leaf_hi] = splits.LeavesUnder(anchor);
      uint64_t leaf = leaf_lo + rng.Below(leaf_hi - leaf_lo);
      ++cell_counts[splits.CellOf(keys)];
      EncodeFixed32(buf.data(), static_cast<uint32_t>(leaf));
      EncodeFixed32(buf.data() + 4, section);
      std::memcpy(buf.data() + 8, rec, record_size);
      MSV_RETURN_IF_ERROR(writer->Append(buf.data()));
    }
    MSV_RETURN_IF_ERROR(writer->Finish());
  }
  if (!phase1_file.empty()) env->DeleteFile(phase1_file).IgnoreError();  // best-effort scratch cleanup

  // -------------------------------------------------------------------
  // Phase 2b: external sort by (leaf, section).
  // -------------------------------------------------------------------
  const std::string placed_name = output_name + ".placed";
  {
    obs::Span span = obs::StartTraceSpan("ace.build.phase2b");
    extsort::SortOptions sort_options = options.sort;
    sort_options.temp_prefix = output_name + ".p2run";
    MSV_RETURN_IF_ERROR(extsort::ExternalSort(
        env, tagged_name, placed_name,
        [](const char* a, const char* b) {
          uint32_t la = DecodeFixed32(a), lb = DecodeFixed32(b);
          if (la != lb) return la < lb;
          return DecodeFixed32(a + 4) < DecodeFixed32(b + 4);
        },
        sort_options, &local.phase2_sort));
  }
  env->DeleteFile(tagged_name).IgnoreError();  // best-effort scratch cleanup

  // -------------------------------------------------------------------
  // Phase 2c: stream sorted records into leaf nodes + directory; then
  // write internal nodes and superblock.
  // -------------------------------------------------------------------
  obs::Span phase2c_span = obs::StartTraceSpan("ace.build.phase2c");
  AceMeta meta;
  meta.page_size = options.page_size;
  meta.record_size = record_size;
  meta.key_dims = options.key_dims;
  meta.height = height;
  meta.num_leaves = num_leaves;
  meta.num_records = num_records;
  meta.internal_offset = AlignUp(kSuperblockSize, 512);
  meta.directory_offset = AlignUp(
      meta.internal_offset + (num_leaves - 1) * kInternalNodeSize, 512);
  meta.data_offset = AlignUp(
      meta.directory_offset + num_leaves * kDirectoryEntrySize,
      options.page_size);
  for (uint32_t d = 0; d < options.key_dims; ++d) {
    meta.domain_min[d] = root_box.lo[d];
    meta.domain_max[d] = root_box.hi[d];
  }

  // Atomic-build protocol: the tree is assembled in `<output>.tmp`, synced,
  // renamed over `output_name`, and the directory is synced. A crash at any
  // point leaves either no tree (or the previous one, when rebuilding over
  // an existing name) or a complete, checksummed one — never a torn file
  // under the final name.
  const std::string tmp_name = output_name + ".tmp";
  const size_t leaf_header = LeafHeaderSize(height);
  auto write_tree = [&]() -> Status {
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> out,
                         env->OpenFile(tmp_name, /*create=*/true));
    MSV_RETURN_IF_ERROR(out->Truncate(0));

    std::vector<LeafLocation> directory(num_leaves);
    uint64_t write_off = meta.data_offset;
    {
      MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> placed,
                           HeapFile::Open(env, placed_name));
      auto scanner =
          placed->NewScanner(4 << 20, /*readahead=*/options.sort.batched_io);
      MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());

      // Leaf blobs accumulate here and flush as one large write, so the
      // read (placed scan) / write (leaf region) interleave costs one
      // seek pair per buffer-full instead of one per leaf. A zero
      // threshold (batching off) degenerates to one write per leaf.
      const size_t write_buffer_bytes =
          options.sort.batched_io ? size_t{4} << 20 : 0;
      std::string pending;
      uint64_t pending_off = write_off;
      auto flush_pending = [&]() -> Status {
        if (pending.empty()) return Status::OK();
        MSV_RETURN_IF_ERROR(
            out->Write(pending_off, pending.data(), pending.size()));
        pending_off += pending.size();
        pending.clear();
        return Status::OK();
      };

      std::string blob;  // one leaf's serialized bytes
      std::vector<uint32_t> section_counts(height);
      for (uint64_t leaf = 0; leaf < num_leaves; ++leaf) {
        blob.assign(leaf_header, '\0');
        std::fill(section_counts.begin(), section_counts.end(), 0);
        while (rec != nullptr && DecodeFixed32(rec) == leaf) {
          uint32_t section = DecodeFixed32(rec + 4);
          MSV_CHECK(section >= 1 && section <= height);
          // Records arrive grouped by section in ascending order, so
          // appending keeps sections contiguous.
          blob.append(rec + 8, record_size);
          ++section_counts[section - 1];
          MSV_ASSIGN_OR_RETURN(rec, scanner.Next());
        }
        EncodeFixed32(blob.data(), static_cast<uint32_t>(leaf));
        EncodeFixed32(blob.data() + 4, height);
        for (uint32_t s = 0; s < height; ++s) {
          EncodeFixed32(blob.data() + 8 + 4 * s, section_counts[s]);
        }
        // Trailing masked CRC protects the whole leaf blob.
        char crc[4];
        EncodeFixed32(crc, MaskCrc(Crc32c(blob.data(), blob.size())));
        blob.append(crc, sizeof(crc));
        pending.append(blob);
        directory[leaf] = LeafLocation{write_off, blob.size()};
        write_off += blob.size();
        if (pending.size() >= write_buffer_bytes) {
          MSV_RETURN_IF_ERROR(flush_pending());
        }
      }
      MSV_RETURN_IF_ERROR(flush_pending());
      MSV_CHECK_MSG(rec == nullptr, "records left after final leaf");
    }

    // Exact subtree counts from finest-cell counts.
    {
      std::vector<uint64_t> counts(2 * num_leaves, 0);
      for (uint64_t i = 0; i < num_leaves; ++i) {
        counts[num_leaves + i] = cell_counts[i];
      }
      for (uint64_t id = num_leaves - 1; id >= 1; --id) {
        counts[id] = counts[2 * id] + counts[2 * id + 1];
      }
      std::string internal_bytes((num_leaves - 1) * kInternalNodeSize, '\0');
      for (uint64_t id = 1; id < num_leaves; ++id) {
        InternalNode node = splits.node(id);
        node.cnt_left = counts[2 * id];
        node.cnt_right = counts[2 * id + 1];
        EncodeInternalNode(internal_bytes.data() +
                               (id - 1) * kInternalNodeSize,
                           node);
      }
      meta.internal_crc =
          MaskCrc(Crc32c(internal_bytes.data(), internal_bytes.size()));
      if (!internal_bytes.empty()) {
        MSV_RETURN_IF_ERROR(out->Write(meta.internal_offset,
                                       internal_bytes.data(),
                                       internal_bytes.size()));
      }
    }

    // Directory.
    {
      std::string dir_bytes(num_leaves * kDirectoryEntrySize, '\0');
      for (uint64_t i = 0; i < num_leaves; ++i) {
        EncodeFixed64(dir_bytes.data() + i * kDirectoryEntrySize,
                      directory[i].offset);
        EncodeFixed64(dir_bytes.data() + i * kDirectoryEntrySize + 8,
                      directory[i].length);
      }
      meta.directory_crc =
          MaskCrc(Crc32c(dir_bytes.data(), dir_bytes.size()));
      MSV_RETURN_IF_ERROR(out->Write(meta.directory_offset, dir_bytes.data(),
                                     dir_bytes.size()));
    }

    // Superblock last, then fsync the file before the rename publishes it.
    {
      char super[kSuperblockSize];
      EncodeSuperblock(super, meta);
      MSV_RETURN_IF_ERROR(out->Write(0, super, sizeof(super)));
      MSV_RETURN_IF_ERROR(out->Sync());
    }
    return Status::OK();
  };
  Status write_status = write_tree();
  env->DeleteFile(placed_name).IgnoreError();  // best-effort scratch cleanup
  if (!write_status.ok()) {
    env->DeleteFile(tmp_name).IgnoreError();  // best-effort scratch cleanup
    return write_status;
  }
  MSV_RETURN_IF_ERROR(env->RenameFile(tmp_name, output_name));
  MSV_RETURN_IF_ERROR(env->SyncDir());
  phase2c_span.End();

  local.overhead_bytes = meta.data_offset + num_leaves * leaf_header -
                         0;  // region headers + per-leaf headers
  local.overhead_bytes = meta.data_offset + num_leaves * leaf_header;
  if (metrics != nullptr) *metrics = local;
  return Status::OK();
}

}  // namespace msv::core
