// The ACE Tree online query algorithm (paper Sec. 6, Algorithms 2-4).
//
// Each NextBatch() performs one *stab*: a root-to-leaf traversal that, at
// every internal node with a free choice, takes the child opposite to the
// one taken last time (the per-node `next` toggle bit of the paper's
// lookup table T), always preferring children that overlap the query and
// skipping exhausted subtrees (the `done` flag). The retrieved leaf's
// sections are handed to the CombineEngine, which emits every sample the
// combinability/appendability properties allow. At all times the records
// returned so far are a uniform random sample, without replacement, of
// the records matching the query; when the stream completes it has
// returned exactly the full match set.

#ifndef MSV_CORE_ACE_SAMPLER_H_
#define MSV_CORE_ACE_SAMPLER_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/ace_tree.h"
#include "core/combine_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/sample_stream.h"
#include "util/random.h"

namespace msv::core {

/// Deterministic stab cursor: replays the paper's back-and-forth
/// root-to-leaf descents (Fig. 10) over the split tree, yielding the heap
/// id of each leaf in retrieval order. The order depends only on the
/// split tree and the query's covering sets — never on leaf contents —
/// which is what lets ParallelAceSampler prefetch leaves out of order and
/// still feed its combiner in the exact serial sequence.
class StabCursor {
 public:
  StabCursor(const SplitTree* splits,
             const std::vector<std::vector<uint64_t>>& covering);

  /// Heap id of the next leaf to retrieve; marks it consumed and
  /// propagates done-ness toward the root. Returns 0 once every leaf has
  /// been yielded (immediately, if the query misses the whole domain).
  uint64_t NextLeafId();
  bool exhausted() const { return exhausted_; }

 private:
  const SplitTree* splits_;
  /// Heap-indexed node state (ids 1..2F-1; index 0 unused).
  std::vector<uint8_t> overlaps_;    // box intersects the query
  std::vector<uint8_t> done_;       // subtree fully consumed
  std::vector<uint8_t> next_right_;  // toggle bit: take right child next
  bool exhausted_ = false;
};

/// Full stab order for `query` as leaf *indices* (not heap ids): the
/// sequence of LeafIndexOf() values an AceSampler on the same tree would
/// produce in leaf_read_order().
std::vector<uint64_t> ComputeStabLeafOrder(const SplitTree& splits,
                                           const sampling::RangeQuery& query);

/// Splits one leaf read's disk-µs delta across the leaf's section levels
/// proportionally to section bytes, largest-remainder rounding, adding the
/// shares into `level_us` (size `height`, index level-1). The shares sum
/// to exactly `delta_us`.
void ApportionDiskUsAcrossLevels(uint64_t delta_us, const LeafData& leaf,
                                 uint32_t height,
                                 std::vector<uint64_t>* level_us);

/// Splits one batched read's disk-µs delta across the leaves it fetched,
/// proportionally to each leaf's total bytes, largest-remainder rounding.
/// The returned shares (one per leaf) sum to exactly `delta_us`, so the
/// per-leaf → per-level apportionment chain still reconciles with
/// DiskStats to the microsecond.
std::vector<uint64_t> ApportionDiskUsAcrossLeaves(
    uint64_t delta_us, const std::vector<LeafData>& leaves);

struct AceSamplerOptions {
  /// How many upcoming stab leaves to fetch per batched read. 1 (the
  /// default) keeps the historical one-leaf-per-NextBatch I/O pattern;
  /// 0 means unlimited (fetch the query's whole remaining leaf set in one
  /// elevator-ordered batch — the to-completion configuration). Values
  /// above 1 trade first-sample latency for coalesced seeks: the stab
  /// order is bit-reversal-like, so a window of W covers leaves roughly
  /// F/W apart and only wide windows produce physical adjacency. The
  /// emitted sample stream is byte-identical for every window value.
  size_t io_batch_window = 1;
};

class AceSampler : public sampling::SampleStream {
 public:
  /// `seed` drives only presentation-order shuffling of emitted rounds —
  /// which records are returned when is fully determined by the tree
  /// contents and the deterministic stab order.
  AceSampler(const AceTree* tree, sampling::RangeQuery query, uint64_t seed);
  AceSampler(const AceTree* tree, sampling::RangeQuery query, uint64_t seed,
             const AceSamplerOptions& options);
  ~AceSampler() override;

  Result<sampling::SampleBatch> NextBatch() override;
  bool done() const override { return finished_; }
  uint64_t samples_returned() const override { return returned_; }
  std::string name() const override {
    return tree_->meta().key_dims > 1 ? "kd-ace" : "ace";
  }

  /// Matching records buffered awaiting combination (Fig. 15 metric).
  uint64_t buffered_records() const { return combiner_->buffered_records(); }
  /// Leaf nodes retrieved so far.
  uint64_t leaves_read() const { return leaves_read_; }
  /// Leaf indices in retrieval order (diagnostics; the paper's Fig. 10
  /// back-and-forth stab order is asserted against this in tests).
  const std::vector<uint64_t>& leaf_read_order() const {
    return leaf_read_order_;
  }

  /// Simulated disk microseconds attributed to section level `level`
  /// (1-based). Each leaf read's disk-µs delta — measured with the
  /// calling thread's io::ThreadDiskBusyUs(), so concurrent samplers
  /// never see each other's I/O — is apportioned across the leaf's
  /// section levels proportionally to section bytes with a
  /// largest-remainder split, so
  ///   sum_level level_disk_us(level) == total busy_us of all leaf reads
  /// holds exactly (asserted by the trace end-to-end test).
  uint64_t level_disk_us(uint32_t level) const {
    return level_disk_us_[level - 1];
  }

 private:
  /// A leaf fetched ahead of consumption by a batched read, waiting for
  /// its stab turn. disk_us is the leaf's apportioned share of the
  /// batch's busy delta.
  struct PendingLeaf {
    uint64_t heap_id = 0;
    LeafData leaf;
    uint64_t disk_us = 0;
  };

  /// One stab; appends emitted samples to `out`.
  Status Stab(sampling::SampleBatch* out);

  /// Pulls up to io_batch_window leaf ids from the cursor and fetches
  /// them with one elevator-ordered batched read into pending_.
  Status FillPending();

  /// Closes out the trace: one child span per section level carrying the
  /// level's leaf-section visits, emitted samples and disk µs. Runs once,
  /// when the stream completes or the sampler is destroyed early.
  void EmitLevelSpans();

  const AceTree* tree_;
  sampling::RangeQuery query_;
  AceSamplerOptions options_;
  Pcg64 rng_;
  std::unique_ptr<CombineEngine> combiner_;
  std::unique_ptr<StabCursor> cursor_;
  std::deque<PendingLeaf> pending_;

  uint64_t returned_ = 0;
  uint64_t leaves_read_ = 0;
  std::vector<uint64_t> leaf_read_order_;
  bool finished_ = false;

  /// Per-level (index level-1) disk-µs attribution; see level_disk_us().
  std::vector<uint64_t> level_disk_us_;
  obs::Counter* c_leaf_reads_;
  obs::Counter* c_samples_;
  /// Open for the sampler's whole lifetime; level spans nest under it.
  obs::Span span_;
  bool level_spans_emitted_ = false;
};

}  // namespace msv::core

#endif  // MSV_CORE_ACE_SAMPLER_H_
