// MaterializedSampleView: the managed, updatable form of a sample view.
//
// The ACE tree is bulk-built and not incrementally updatable; the paper
// (Sec. 9) prescribes the classic differential-file remedy: keep new
// records outside the tree and, when sampling, draw from each partition
// with the appropriate hypergeometric probability (citing Brown & Haas
// for multi-partition sampling). This module productionizes that remedy
// with LSM structuring:
//
//   view "V" = V.base.g<N>  the live ACE tree generation
//            + V.run.<i>    immutable sorted runs (flushed memtables)
//            + memtable     the in-memory insert buffer, WAL-backed
//            + V.manifest   checksummed; names the live file set
//
// Insert() appends to the WAL (durable before acknowledgement) and the
// memtable; a full memtable flushes to a sorted run via the crash-atomic
// write protocol; a background compaction thread folds base + runs into
// a fresh tree generation with BuildAceTree and commits the swap by
// atomically rewriting the manifest — the old generation is deleted only
// after the new one is durably committed, so a crash at any point leaves
// an openable view and every acknowledged insert.
//
// Sampling interleaves the base tree's online sampler with in-memory
// shuffles of each run's and the memtable's matching records: each
// emitted record comes from a partition with probability proportional to
// that partition's remaining matching count, which keeps every prefix of
// the unified stream a uniform without-replacement sample of the whole
// view (P-partition hypergeometric interleave). Samplers snapshot the
// partition set under the view mutex, so concurrent inserts, flushes and
// compactions never disturb a running stream.

#ifndef MSV_CORE_SAMPLE_VIEW_H_
#define MSV_CORE_SAMPLE_VIEW_H_

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "core/ingest.h"
#include "io/env.h"
#include "obs/metrics.h"
#include "sampling/sample_stream.h"
#include "storage/heap_file.h"
#include "util/result.h"
#include "util/sync.h"

namespace msv::core {

/// A unified online sampler over base tree + runs + memtable. Single-use,
/// like every SampleStream. The sampler owns a snapshot of its partition
/// set (shared tree handle, copied run/memtable matches), so it stays
/// valid while the view compacts or flushes concurrently.
class ViewSampler : public sampling::SampleStream {
 public:
  Result<sampling::SampleBatch> NextBatch() override;
  bool done() const override;
  uint64_t samples_returned() const override { return returned_; }
  std::string name() const override { return "sample-view"; }

  /// Number of partitions in the interleave (base + runs + memtable).
  size_t partitions() const { return 1 + exact_.size(); }
  /// Leaf pages the base partition has read (I/O visibility for tests).
  uint64_t base_leaves_read() const { return base_->leaves_read(); }

 private:
  friend class MaterializedSampleView;

  /// One fully in-memory partition (a run's or the memtable's matches),
  /// pre-shuffled; next_ records have been emitted.
  struct ExactPartition {
    std::vector<std::string> records;
    size_t next = 0;
  };

  ViewSampler(std::shared_ptr<const AceTree> tree,
              std::unique_ptr<AceSampler> base, uint64_t base_estimate,
              bool base_exact, std::vector<ExactPartition> exact,
              size_t record_size, uint64_t seed, size_t records_per_pull);

  /// Remaining matching records believed to be in the base partition.
  uint64_t BaseRemaining() const;

  std::shared_ptr<const AceTree> tree_;  // keeps the sampled generation alive
  std::unique_ptr<AceSampler> base_;
  std::vector<std::string> base_queue_;  // pulled but not yet emitted
  uint64_t base_estimate_;               // matching count (estimate or exact)
  bool base_exact_;                      // caller vouched for base_estimate_
  uint64_t base_emitted_ = 0;

  std::vector<ExactPartition> exact_;  // runs (oldest first), then memtable
  uint64_t exact_remaining_ = 0;

  size_t record_size_;
  Pcg64 rng_;
  size_t records_per_pull_;
  uint64_t returned_ = 0;
};

/// Catalog-level handle to one named sample view. Thread-safe: Insert(),
/// Sample(), the accessors and the background compaction may run
/// concurrently from different threads.
class MaterializedSampleView {
 public:
  struct Options {
    AceBuildOptions build;
    /// Rebuild/compaction is recommended when the out-of-tree record
    /// count (runs + memtable) exceeds this fraction of the base.
    double max_delta_fraction = 0.10;
    /// Write-path knobs (memtable size, WAL syncing, compaction cadence).
    IngestOptions ingest;
  };

  /// Creates view `name` over the records of heap file `relation_name`.
  static Result<std::unique_ptr<MaterializedSampleView>> Create(
      io::Env* env, const std::string& name, const std::string& relation_name,
      const storage::RecordLayout& layout, const Options& options);
  static Result<std::unique_ptr<MaterializedSampleView>> Create(
      io::Env* env, const std::string& name, const std::string& relation_name,
      const storage::RecordLayout& layout) {
    return Create(env, name, relation_name, layout, Options());
  }

  /// Opens an existing view, replaying WALs and completing any structural
  /// change the manifest doesn't name (crash recovery). Views written by
  /// the pre-manifest format (single `<name>.delta` heap file) are
  /// migrated on first open.
  static Result<std::unique_ptr<MaterializedSampleView>> Open(
      io::Env* env, const std::string& name,
      const storage::RecordLayout& layout, const Options& options);
  static Result<std::unique_ptr<MaterializedSampleView>> Open(
      io::Env* env, const std::string& name,
      const storage::RecordLayout& layout) {
    return Open(env, name, layout, Options());
  }

  ~MaterializedSampleView();

  /// Appends new records (record_size bytes each). Durable (WAL) and
  /// visible to samplers created afterwards when this returns OK. May
  /// flush the memtable inline when it reaches its threshold; an inline
  /// flush failure does NOT fail the insert (the records are already
  /// durable — failing here would invite a duplicating retry). It is
  /// counted in ingest.flush_errors and retried on the next crossing.
  /// An error return means the records were not acknowledged durable and
  /// it is safe to retry the batch.
  Status Insert(const char* records, size_t count) MSV_EXCLUDES(mu_);

  /// Flushes the memtable (if non-empty) to an immutable sorted run.
  Status Flush() MSV_EXCLUDES(mu_);

  /// Folds all current runs into a fresh base tree generation. No-op when
  /// there are no runs. Safe to call while inserts proceed: the run set
  /// is sealed at the start; records inserted afterwards go to the
  /// memtable and later runs, and are never lost.
  Status Compact() MSV_EXCLUDES(mu_);

  /// Flush() + Compact(): folds everything inserted so far into the tree.
  Status Rebuild() MSV_EXCLUDES(mu_);

  /// Records in the base ACE tree / outside it (runs + memtable).
  uint64_t base_records() const MSV_EXCLUDES(mu_);
  uint64_t delta_records() const MSV_EXCLUDES(mu_);
  uint64_t memtable_records() const MSV_EXCLUDES(mu_);
  uint64_t run_count() const MSV_EXCLUDES(mu_);
  bool NeedsRebuild() const MSV_EXCLUDES(mu_);

  /// Starts a unified online sampler for `query`. `exact_base_count`,
  /// when provided, overrides the internal-node estimate of the base
  /// match count — callers that know it (e.g. from a prior completed
  /// stream) get an exactly hypergeometric interleave, including the
  /// zero-match case that skips base I/O entirely. The caller's count
  /// must be correct; a low-ball ends the base stream early.
  Result<std::unique_ptr<ViewSampler>> Sample(
      const sampling::RangeQuery& query, uint64_t seed,
      std::optional<uint64_t> exact_base_count = std::nullopt) const
      MSV_EXCLUDES(mu_);

  /// The live base tree generation. Callers hold a shared snapshot that
  /// survives concurrent compaction.
  std::shared_ptr<const AceTree> tree() const MSV_EXCLUDES(mu_);

  /// Deletes every file belonging to view `name` (base generations, runs,
  /// WALs, manifest, legacy delta). Best-effort; missing files are fine.
  static Status DropFiles(io::Env* env, const std::string& name);

 private:
  MaterializedSampleView(io::Env* env, std::string name,
                         storage::RecordLayout layout, Options options);

  std::string ManifestName() const { return name_ + ".manifest"; }
  std::string BaseGenName(uint64_t id) const {
    return name_ + ".base.g" + std::to_string(id);
  }
  std::string RunName(uint64_t id) const {
    return name_ + ".run." + std::to_string(id);
  }
  std::string WalName(uint64_t id) const {
    return name_ + ".wal." + std::to_string(id);
  }
  std::string ScratchName() const { return name_ + ".scratch"; }
  std::string LegacyBaseName() const { return name_ + ".base"; }
  std::string LegacyDeltaName() const { return name_ + ".delta"; }

  /// A live sorted run: its id and an open read handle.
  struct RunHandle {
    uint64_t id = 0;
    std::shared_ptr<storage::HeapFile> file;
  };

  /// The inputs of one compaction, sealed under mu_ and processed
  /// without it (all inputs are immutable).
  struct CompactionPlan {
    std::shared_ptr<const AceTree> base;
    std::vector<RunHandle> runs;
    std::string output_file;
    uint64_t build_seed = 0;
  };

  Status RecoverLocked() MSV_REQUIRES(mu_);
  Status MigrateLegacyLocked(ViewManifest* manifest) MSV_REQUIRES(mu_);
  Status CleanOrphansLocked() MSV_REQUIRES(mu_);
  ViewManifest CurrentManifestLocked() const MSV_REQUIRES(mu_);
  Status OpenRunLocked(uint64_t id) MSV_REQUIRES(mu_);
  Status FlushLocked() MSV_REQUIRES(mu_);
  bool CompactionTriggeredLocked() const MSV_REQUIRES(mu_);
  uint64_t DeltaRecordsLocked() const MSV_REQUIRES(mu_);
  void UpdateGaugesLocked() MSV_REQUIRES(mu_);

  /// One compaction cycle: seal the run set, build the new generation
  /// (unlocked), commit via the manifest, delete obsolete files.
  Status CompactOnce() MSV_EXCLUDES(mu_);
  Status BuildCompactedBase(const CompactionPlan& plan);

  void StartCompactor() MSV_EXCLUDES(mu_);
  void StopCompactor() MSV_EXCLUDES(mu_);
  void CompactorMain() MSV_EXCLUDES(mu_);

  io::Env* const env_;
  const std::string name_;
  const storage::RecordLayout layout_;
  const Options options_;

  mutable Mutex mu_;
  /// Signaled on: compaction trigger, compaction completion, compactor
  /// lifecycle transitions.
  mutable CondVar cv_;

  std::shared_ptr<const AceTree> tree_ MSV_GUARDED_BY(mu_);
  std::string base_file_ MSV_GUARDED_BY(mu_);
  std::unique_ptr<Memtable> memtable_ MSV_GUARDED_BY(mu_);
  std::unique_ptr<WalWriter> wal_ MSV_GUARDED_BY(mu_);
  std::vector<RunHandle> runs_ MSV_GUARDED_BY(mu_);
  uint64_t run_records_ MSV_GUARDED_BY(mu_) = 0;
  uint64_t next_id_ MSV_GUARDED_BY(mu_) = 1;
  uint64_t flushed_through_ MSV_GUARDED_BY(mu_) = 0;
  /// True while one compaction is between seal and commit; compactions
  /// are serialized through this flag (the builder runs unlocked).
  bool compacting_ MSV_GUARDED_BY(mu_) = false;

  // Background compactor lifecycle (the MetricsPoller pattern: Stop()
  // joins outside the lock while kStopping parks concurrent Start/Stop).
  enum class CompactorState { kStopped, kRunning, kStopping };
  CompactorState compactor_state_ MSV_GUARDED_BY(mu_) =
      CompactorState::kStopped;
  bool stop_requested_ MSV_GUARDED_BY(mu_) = false;
  std::thread compactor_thread_ MSV_GUARDED_BY(mu_);

  // Process-wide ingest metrics (registry-owned).
  obs::Counter* const c_inserted_records_;
  obs::Counter* const c_flushes_;
  obs::Counter* const c_compactions_;
  obs::Counter* const c_compacted_records_;
  obs::Counter* const c_compaction_errors_;
  obs::Counter* const c_flush_errors_;
  obs::Counter* const c_wal_bytes_;
  obs::Gauge* const g_memtable_records_;
  obs::Gauge* const g_run_count_;
  obs::Gauge* const g_run_records_;
  obs::Gauge* const g_base_records_;
  obs::LogHistogram* const h_flush_us_;
  obs::LogHistogram* const h_compact_us_;
};

}  // namespace msv::core

#endif  // MSV_CORE_SAMPLE_VIEW_H_
