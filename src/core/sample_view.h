// MaterializedSampleView: the managed, updatable form of a sample view.
//
// The ACE tree is bulk-built and not incrementally updatable; the paper
// (Sec. 9) prescribes the classic differential-file remedy: keep new
// records in a small side file and, when sampling, draw from the ACE tree
// or the differential file with the appropriate hypergeometric
// probability (citing Brown & Haas for multi-partition sampling). This
// module implements exactly that:
//
//   view "V"  =  V.base  (an ACE tree over the records at build time)
//             +  V.delta (a heap file of records inserted since)
//             +  V.manifest (geometry + counts, checksummed)
//
// Sampling interleaves the base tree's online sampler with an in-memory
// shuffle of the (small) delta's matching records: each emitted record
// comes from a partition with probability proportional to that
// partition's remaining matching count, which keeps every prefix of the
// unified stream a uniform random sample of base ∪ delta. Rebuild() folds
// the delta back in by reconstructing the ACE tree from the view's own
// contents (two external sorts again).

#ifndef MSV_CORE_SAMPLE_VIEW_H_
#define MSV_CORE_SAMPLE_VIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ace_builder.h"
#include "core/ace_sampler.h"
#include "core/ace_tree.h"
#include "io/env.h"
#include "sampling/sample_stream.h"
#include "storage/heap_file.h"
#include "util/result.h"

namespace msv::core {

/// A unified online sampler over base ∪ delta. Single-use, like every
/// SampleStream.
class ViewSampler : public sampling::SampleStream {
 public:
  Result<sampling::SampleBatch> NextBatch() override;
  bool done() const override;
  uint64_t samples_returned() const override { return returned_; }
  std::string name() const override { return "sample-view"; }

 private:
  friend class MaterializedSampleView;
  ViewSampler(std::unique_ptr<AceSampler> base, uint64_t base_estimate,
              std::vector<std::string> delta_matches, size_t record_size,
              uint64_t seed, size_t records_per_pull);

  /// Remaining matching records believed to be in the base partition.
  uint64_t BaseRemaining() const;

  std::unique_ptr<AceSampler> base_;
  std::vector<std::string> base_queue_;  // pulled but not yet emitted
  uint64_t base_estimate_;               // matching count estimate
  uint64_t base_emitted_ = 0;

  std::vector<std::string> delta_;  // shuffled matching delta records
  size_t delta_next_ = 0;

  size_t record_size_;
  Pcg64 rng_;
  size_t records_per_pull_;
  uint64_t returned_ = 0;
};

/// Catalog-level handle to one named sample view.
class MaterializedSampleView {
 public:
  struct Options {
    AceBuildOptions build;
    /// Rebuild is recommended when the delta exceeds this fraction of the
    /// base (NeedsRebuild()).
    double max_delta_fraction = 0.10;
  };

  /// Creates view `name` over the records of heap file `relation_name`.
  static Result<std::unique_ptr<MaterializedSampleView>> Create(
      io::Env* env, const std::string& name, const std::string& relation_name,
      const storage::RecordLayout& layout, const Options& options);
  static Result<std::unique_ptr<MaterializedSampleView>> Create(
      io::Env* env, const std::string& name, const std::string& relation_name,
      const storage::RecordLayout& layout) {
    return Create(env, name, relation_name, layout, Options());
  }

  /// Opens an existing view.
  static Result<std::unique_ptr<MaterializedSampleView>> Open(
      io::Env* env, const std::string& name,
      const storage::RecordLayout& layout, const Options& options);
  static Result<std::unique_ptr<MaterializedSampleView>> Open(
      io::Env* env, const std::string& name,
      const storage::RecordLayout& layout) {
    return Open(env, name, layout, Options());
  }

  /// Appends new records (record_size bytes each) to the differential
  /// file. Visible to samplers created afterwards.
  Status Insert(const char* records, size_t count);

  /// Records in the base ACE tree / in the differential file.
  uint64_t base_records() const { return tree_->meta().num_records; }
  uint64_t delta_records() const { return delta_count_; }
  bool NeedsRebuild() const;

  /// Starts a unified online sampler for `query`. `exact_base_count`, if
  /// non-zero, overrides the internal-node estimate of the base match
  /// count (callers that know it — e.g. from a prior completed stream —
  /// get an exactly hypergeometric interleave; the estimate is within
  /// one boundary cell otherwise).
  Result<std::unique_ptr<ViewSampler>> Sample(
      const sampling::RangeQuery& query, uint64_t seed,
      uint64_t exact_base_count = 0) const;

  /// Folds the delta into a fresh ACE tree built from the view's own
  /// contents; the delta becomes empty. Costs two external sorts plus
  /// sequential passes, like the original build.
  Status Rebuild();

  const AceTree& tree() const { return *tree_; }

 private:
  MaterializedSampleView(io::Env* env, std::string name,
                         storage::RecordLayout layout, Options options)
      : env_(env),
        name_(std::move(name)),
        layout_(std::move(layout)),
        options_(options) {}

  std::string BaseName() const { return name_ + ".base"; }
  std::string DeltaName() const { return name_ + ".delta"; }

  Status LoadDelta();
  Status OpenTree();

  io::Env* env_;
  std::string name_;
  storage::RecordLayout layout_;
  Options options_;
  std::unique_ptr<AceTree> tree_;
  std::unique_ptr<storage::HeapFileWriter> delta_writer_;
  uint64_t delta_count_ = 0;
};

}  // namespace msv::core

#endif  // MSV_CORE_SAMPLE_VIEW_H_
