// AceTree::CheckInvariants: structural verification of a materialized
// sample view on disk.
//
// The checks mirror the paper's correctness claims:
//   * leaf-page integrity — CRC32C checksum and self-identifying header
//     of every leaf blob (format invariants, ace_format.h);
//   * split-tree sanity — split dimensions in range, split keys inside
//     their node's box, persisted cnt_l/cnt_r summing bottom-up to the
//     superblock's record total;
//   * level-i leaf-set partitioning — every record stored in section i
//     of leaf L descends (through the split tree) to L's level-i
//     ancestor, i.e. sections really are samples of the ancestor boxes;
//   * Lemma 2 section sizes — each section's size stays within a
//     configurable number of binomial standard deviations of its
//     expectation n_A / (h * F_A);
//   * Lemma 1 without-replacement — the h sections of a leaf are
//     pairwise disjoint record sets;
//   * exact counts — recounting records per finest cell reproduces the
//     persisted per-node counts used for population estimates.
//
// The pass reads every leaf exactly once and is meant to be cheap enough
// to run after every bulk build in tests and via `msv_inspect --verify`.

#include <chrono>
#include <cmath>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/ace_tree.h"
#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace msv::core {

namespace {

Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kIOError:
      return Status::IOError(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(msg));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(msg));
    case StatusCode::kOk:
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(std::move(msg));
}

/// Collects violations with an optional cap; callers bail out once the
/// cap is hit so a badly mangled file does not produce gigabytes of
/// report.
class ViolationSink {
 public:
  ViolationSink(InvariantReport* report, size_t cap)
      : report_(report), cap_(cap) {}

  void Add(StatusCode code, uint64_t leaf, std::string detail) {
    if (full()) return;
    report_->violations.push_back(
        InvariantViolation{code, leaf, std::move(detail)});
    // Hitting the cap stops the scan, so further violations (if any)
    // would go unseen; flag the report as cut short.
    if (full()) report_->truncated = true;
  }

  bool full() const {
    return cap_ != 0 && report_->violations.size() >= cap_;
  }

 private:
  InvariantReport* report_;
  size_t cap_;
};

/// Stamps the duration of each verification phase into the report and
/// into `verify.<phase>_us` registry counters (Finish resets the clock,
/// so phases are measured back to back).
class PhaseTimer {
 public:
  explicit PhaseTimer(InvariantReport* report)
      : report_(report), start_(std::chrono::steady_clock::now()) {}

  void Finish(const char* phase) {
    const auto now = std::chrono::steady_clock::now();
    const uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - start_)
            .count());
    report_->check_us.emplace_back(phase, us);
    obs::MetricRegistry::Global()
        .GetCounter(std::string("verify.") + phase + "_us")
        ->Add(us);
    start_ = now;
  }

 private:
  InvariantReport* report_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::string InvariantViolation::ToString() const {
  std::string out(StatusCodeToString(code));
  if (leaf != kNoLeaf) {
    out += " [leaf " + std::to_string(leaf) + "]";
  }
  out += ": " + detail;
  return out;
}

Status InvariantReport::ToStatus() const {
  if (ok()) return Status::OK();
  const InvariantViolation& first = violations.front();
  std::string msg = first.ToString();
  if (violations.size() > 1) {
    msg += " (+" + std::to_string(violations.size() - 1) + " more)";
  }
  return MakeStatus(first.code, std::move(msg));
}

std::string InvariantReport::ToString() const {
  if (ok()) {
    return "OK: " + std::to_string(leaves_checked) + " leaves, " +
           std::to_string(records_checked) + " records, " +
           std::to_string(sections_checked) + " sections verified";
  }
  std::string out = std::to_string(violations.size()) +
                    (truncated ? "+ violations:\n" : " violations:\n");
  for (const InvariantViolation& v : violations) {
    out += "  " + v.ToString() + "\n";
  }
  return out;
}

InvariantReport AceTree::CheckInvariants(
    const InvariantCheckOptions& options) const {
  InvariantReport report;
  ViolationSink sink(&report, options.max_violations);
  PhaseTimer timer(&report);
  const uint64_t F = meta_.num_leaves;
  const uint32_t h = meta_.height;

  // --- Geometry: the superblock's regions must be ordered and the
  // directory must point inside the data region.
  if (h < 1 || F != (1ull << (h - 1))) {
    sink.Add(StatusCode::kCorruption, InvariantViolation::kNoLeaf,
             "geometry: num_leaves " + std::to_string(F) +
                 " != 2^(h-1) for height " + std::to_string(h));
    timer.Finish("geometry");
    return report;  // nothing below is meaningful with broken geometry
  }
  const uint64_t internal_end =
      meta_.internal_offset + meta_.num_internal_nodes() * kInternalNodeSize;
  const uint64_t directory_end =
      meta_.directory_offset + F * kDirectoryEntrySize;
  if (meta_.internal_offset < kSuperblockSize ||
      meta_.directory_offset < internal_end ||
      meta_.data_offset < directory_end) {
    sink.Add(StatusCode::kCorruption, InvariantViolation::kNoLeaf,
             "geometry: region offsets out of order (internal@" +
                 std::to_string(meta_.internal_offset) + " directory@" +
                 std::to_string(meta_.directory_offset) + " data@" +
                 std::to_string(meta_.data_offset) + ")");
  }
  for (uint64_t leaf = 0; leaf < F && !sink.full(); ++leaf) {
    const LeafLocation& loc = directory_[leaf];
    if (loc.offset < meta_.data_offset ||
        loc.offset + loc.length > file_bytes_ ||
        loc.length < LeafHeaderSize(h) + 4 /* checksum */) {
      sink.Add(StatusCode::kCorruption, leaf,
               "directory entry outside data region: offset " +
                   std::to_string(loc.offset) + " length " +
                   std::to_string(loc.length));
    }
  }
  timer.Finish("geometry");

  // --- Region checksums: re-read the raw internal-node and directory
  // bytes and compare against the superblock's CRCs (format v2). Open()
  // already verified these once; re-checking here catches corruption that
  // landed after the tree was opened.
  {
    std::string bytes(meta_.num_internal_nodes() * kInternalNodeSize, '\0');
    Status st = bytes.empty()
                    ? Status::OK()
                    : file_->ReadExact(meta_.internal_offset, bytes.size(),
                                       bytes.data());
    if (!st.ok()) {
      sink.Add(st.code(), InvariantViolation::kNoLeaf,
               "regions: " + std::string(st.message()));
    } else if (MaskCrc(Crc32c(bytes.data(), bytes.size())) !=
               meta_.internal_crc) {
      sink.Add(StatusCode::kCorruption, InvariantViolation::kNoLeaf,
               "regions: internal region checksum mismatch");
    }
    bytes.assign(F * kDirectoryEntrySize, '\0');
    st = file_->ReadExact(meta_.directory_offset, bytes.size(), bytes.data());
    if (!st.ok()) {
      sink.Add(st.code(), InvariantViolation::kNoLeaf,
               "regions: " + std::string(st.message()));
    } else if (MaskCrc(Crc32c(bytes.data(), bytes.size())) !=
               meta_.directory_crc) {
      sink.Add(StatusCode::kCorruption, InvariantViolation::kNoLeaf,
               "regions: directory checksum mismatch");
    }
  }
  timer.Finish("regions");

  // --- Split tree: dimensions, split keys inside their box, counts
  // summing parent = left + right down the heap.
  if (node_counts_[1] != meta_.num_records) {
    sink.Add(StatusCode::kCorruption, InvariantViolation::kNoLeaf,
             "root count " + std::to_string(node_counts_[1]) +
                 " != superblock record total " +
                 std::to_string(meta_.num_records));
  }
  {
    // DFS with boxes threaded down, so each node's box is available
    // without repeated root descents.
    struct Item {
      uint64_t id;
      Box box;
    };
    std::vector<Item> stack{{1, splits_->root_box()}};
    while (!stack.empty() && !sink.full()) {
      Item item = stack.back();
      stack.pop_back();
      if (item.id >= F) continue;  // leaves have no split
      const InternalNode& n = splits_->node(item.id);
      if (n.split_dim >= meta_.key_dims) {
        sink.Add(StatusCode::kCorruption, InvariantViolation::kNoLeaf,
                 "node " + std::to_string(item.id) + " split_dim " +
                     std::to_string(n.split_dim) + " >= key_dims");
        continue;
      }
      if (!(item.box.lo[n.split_dim] <= n.split_key &&
            n.split_key <= item.box.hi[n.split_dim])) {
        sink.Add(StatusCode::kCorruption, InvariantViolation::kNoLeaf,
                 "node " + std::to_string(item.id) + " split key " +
                     std::to_string(n.split_key) + " outside its box");
      }
      if (node_counts_[item.id] != n.cnt_left + n.cnt_right) {
        sink.Add(StatusCode::kCorruption, InvariantViolation::kNoLeaf,
                 "node " + std::to_string(item.id) + " count " +
                     std::to_string(node_counts_[item.id]) +
                     " != cnt_l + cnt_r");
      }
      stack.push_back(
          {2 * item.id, splits_->ChildBox(item.box, item.id, true)});
      stack.push_back(
          {2 * item.id + 1, splits_->ChildBox(item.box, item.id, false)});
    }
  }
  timer.Finish("split_tree");

  // --- Leaf scan: checksums, headers, partitioning, Lemma 1/2.
  std::vector<uint64_t> cell_counts(options.check_cell_counts ? F : 0, 0);
  std::vector<double> keys(meta_.key_dims, 0.0);
  uint64_t total_records = 0;
  for (uint64_t leaf = 0; leaf < F && !sink.full(); ++leaf) {
    Result<LeafData> data_or = ReadLeaf(leaf);
    if (!data_or.ok()) {
      sink.Add(data_or.status().code(), leaf,
               std::string(data_or.status().message()));  // NOLINT(msv-hot-path-alloc) scrubber error path, cold
      continue;
    }
    const LeafData& data = data_or.value();
    ++report.leaves_checked;
    const uint64_t leaf_heap = splits_->LeafHeapId(leaf);

    std::unordered_set<std::string_view> seen;
    if (options.check_disjointness) {
      seen.reserve(static_cast<size_t>(data.TotalRecords()));
    }

    for (uint32_t level = 1; level <= h && !sink.full(); ++level) {
      const size_t count = data.SectionCount(level);
      ++report.sections_checked;
      total_records += count;

      // Lemma 2: section i of leaf L samples the records of L's level-i
      // ancestor A; its size is Binomial(n_A, 1 / (h * F_A)).
      const uint64_t ancestor = SplitTree::AncestorAtLevel(leaf_heap, level);
      const uint64_t n_anc = node_counts_[ancestor];
      const uint64_t width = F >> (level - 1);  // leaves under the ancestor
      const double p = 1.0 / (static_cast<double>(h) *
                              static_cast<double>(width));
      const double expected = static_cast<double>(n_anc) * p;
      if (expected >= options.min_expected_for_bound) {
        const double sd = std::sqrt(expected * (1.0 - p));
        const double dev =
            std::abs(static_cast<double>(count) - expected);
        if (dev > options.section_size_sigmas * sd) {
          sink.Add(StatusCode::kCorruption, leaf,
                   "section " + std::to_string(level) + " size " +
                       std::to_string(count) + " deviates from Lemma-2 " +
                       "expectation " + std::to_string(expected) + " by " +
                       std::to_string(dev / sd) + " sigma");
        }
      }

      size_t misplaced = 0;
      size_t duplicates = 0;
      for (size_t r = 0; r < count; ++r) {
        const char* rec = data.SectionRecord(level, r);
        ++report.records_checked;
        for (uint32_t d = 0; d < meta_.key_dims; ++d) {
          keys[d] = layout_.Key(rec, d);
        }
        // Leaf-set partitioning: the record's split-tree path must pass
        // through the leaf's level-i ancestor.
        const uint64_t cell_heap = splits_->DescendToLevel(keys.data(), h);
        if (SplitTree::AncestorAtLevel(cell_heap, level) != ancestor) {
          ++misplaced;
        }
        if (options.check_cell_counts) {
          ++cell_counts[splits_->LeafIndexOf(cell_heap)];
        }
        if (options.check_disjointness &&
            !seen.insert(std::string_view(rec, meta_.record_size)).second) {
          ++duplicates;
        }
      }
      if (misplaced > 0) {
        sink.Add(StatusCode::kCorruption, leaf,
                 "section " + std::to_string(level) + ": " +
                     std::to_string(misplaced) + " of " +
                     std::to_string(count) +
                     " records outside the level-" + std::to_string(level) +
                     " ancestor's box");
      }
      if (duplicates > 0) {
        sink.Add(StatusCode::kCorruption, leaf,
                 "section " + std::to_string(level) + ": " +
                     std::to_string(duplicates) +
                     " records duplicate earlier sections "
                     "(violates without-replacement, Lemma 1)");
      }
    }
  }
  timer.Finish("leaf_scan");

  // --- Global totals: leaves must hold exactly the superblock's record
  // count, and recounted finest cells must match the persisted counts.
  if (!sink.full() && total_records != meta_.num_records) {
    sink.Add(StatusCode::kCorruption, InvariantViolation::kNoLeaf,
             "leaves hold " + std::to_string(total_records) +
                 " records, superblock claims " +
                 std::to_string(meta_.num_records));
  }
  if (options.check_cell_counts && report.leaves_checked == F) {
    for (uint64_t cell = 0; cell < F && !sink.full(); ++cell) {
      const uint64_t stored = node_counts_[F + cell];
      if (cell_counts[cell] != stored) {
        sink.Add(StatusCode::kCorruption, InvariantViolation::kNoLeaf,
                 "cell " + std::to_string(cell) + " recount " +
                     std::to_string(cell_counts[cell]) +
                     " != persisted count " + std::to_string(stored));
      }
    }
  }
  timer.Finish("totals");
  return report;
}

}  // namespace msv::core
