#include "core/split_tree.h"

namespace msv::core {

bool BoxOverlapsQuery(const Box& b, const sampling::RangeQuery& q) {
  for (size_t d = 0; d < q.dims; ++d) {
    // box [lo, hi) vs query [qlo, qhi]
    if (!(q.bounds[d].lo < b.hi[d] && b.lo[d] <= q.bounds[d].hi)) {
      return false;
    }
  }
  return true;
}

bool BoxCoversQuery(const Box& b, const sampling::RangeQuery& q) {
  for (size_t d = 0; d < q.dims; ++d) {
    if (!(b.lo[d] <= q.bounds[d].lo && q.bounds[d].hi < b.hi[d])) {
      return false;
    }
  }
  return true;
}

SplitTree::SplitTree(uint32_t height, uint32_t dims,
                     std::vector<InternalNode> nodes, Box root_box)
    : height_(height),
      dims_(dims),
      num_leaves_(1ull << (height - 1)),
      nodes_(std::move(nodes)),
      root_box_(root_box) {
  MSV_CHECK(height_ >= 1);
  MSV_CHECK(dims_ >= 1 && dims_ <= storage::kMaxKeyDims);
  MSV_CHECK(nodes_.size() == num_leaves_ - 1);
  root_box_.dims = dims_;
}

Box SplitTree::ChildBox(const Box& parent, uint64_t heap_id,
                        bool left) const {
  const InternalNode& n = node(heap_id);
  Box child = parent;
  if (left) {
    child.hi[n.split_dim] = n.split_key;
  } else {
    child.lo[n.split_dim] = n.split_key;
  }
  return child;
}

Box SplitTree::BoxOf(uint64_t heap_id) const {
  MSV_CHECK(heap_id >= 1 && heap_id < 2 * num_leaves_);
  Box box = root_box_;
  uint32_t level = LevelOf(heap_id);
  // Walk root-to-node following the bits of heap_id below its leading 1.
  for (uint32_t l = 1; l < level; ++l) {
    uint64_t ancestor = heap_id >> (level - l);
    bool went_left = ((heap_id >> (level - l - 1)) & 1) == 0;
    box = ChildBox(box, ancestor, went_left);
  }
  return box;
}

uint64_t SplitTree::DescendToLevel(const double* keys, uint32_t level) const {
  MSV_DCHECK(level >= 1 && level <= height_);
  uint64_t id = 1;
  for (uint32_t l = 1; l < level; ++l) {
    const InternalNode& n = node(id);
    id = 2 * id + (keys[n.split_dim] < n.split_key ? 0 : 1);
  }
  return id;
}

std::vector<std::vector<uint64_t>> SplitTree::CoveringSets(
    const sampling::RangeQuery& q) const {
  std::vector<std::vector<uint64_t>> covering(height_);
  // Iterative DFS from the root; boxes are threaded down the stack.
  struct Item {
    uint64_t id;
    Box box;
  };
  std::vector<Item> stack;
  if (BoxOverlapsQuery(root_box_, q)) {
    stack.push_back({1, root_box_});
  }
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    uint32_t level = LevelOf(item.id);
    covering[level - 1].push_back(item.id);
    if (item.id < num_leaves_) {  // internal: recurse into children
      Box lbox = ChildBox(item.box, item.id, /*left=*/true);
      Box rbox = ChildBox(item.box, item.id, /*left=*/false);
      // Push right first so ids come out in ascending heap order.
      if (BoxOverlapsQuery(rbox, q)) stack.push_back({2 * item.id + 1, rbox});
      if (BoxOverlapsQuery(lbox, q)) stack.push_back({2 * item.id, lbox});
    }
  }
  return covering;
}

}  // namespace msv::core
