// Read-side handle of an ACE Tree file.
//
// Opening a tree loads the superblock, the internal-node array (split tree
// plus exact subtree counts) and the leaf directory into memory — the same
// working set the paper's query algorithm assumes (its lookup table T is
// memory-resident). Leaf nodes are then single contiguous file reads.

#ifndef MSV_CORE_ACE_TREE_H_
#define MSV_CORE_ACE_TREE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ace_format.h"
#include "core/split_tree.h"
#include "io/env.h"
#include "sampling/range_query.h"
#include "storage/record.h"
#include "util/result.h"

namespace msv::core {

/// One leaf node read from disk: h sections, each a packed run of records.
/// Section i (1-based) is a uniform random subset of the records in the
/// box of the leaf's level-i ancestor.
struct LeafData {
  uint64_t leaf_index = 0;
  size_t record_size = 0;
  /// sections[i-1] holds section i's records, densely packed.
  std::vector<std::string> sections;

  size_t SectionCount(size_t level) const {
    return sections[level - 1].size() / record_size;
  }
  const char* SectionRecord(size_t level, size_t idx) const {
    return sections[level - 1].data() + idx * record_size;
  }
  uint64_t TotalRecords() const {
    uint64_t n = 0;
    for (const auto& s : sections) n += s.size();
    return n / record_size;
  }
};

/// Tuning knobs for AceTree::CheckInvariants().
struct InvariantCheckOptions {
  /// Slack, in binomial standard deviations, allowed between a section's
  /// observed size and its Lemma-2 expectation n_A / (h * F_A) before the
  /// section is reported out of bounds.
  double section_size_sigmas = 6.0;
  /// Size bounds are only enforced when the expected section size is at
  /// least this large; below it the relative variance makes any
  /// fixed-sigma test either vacuous or flaky.
  double min_expected_for_bound = 32.0;
  /// Check that a leaf's sections are pairwise disjoint as byte strings
  /// (Lemma 1's without-replacement property). Sound only when source
  /// records are pairwise distinct, which holds for SALE data (row_id).
  bool check_disjointness = true;
  /// Recount records per finest cell and compare with the persisted
  /// cnt_l/cnt_r tree. Costs one DescendToLevel per record.
  bool check_cell_counts = true;
  /// Stop collecting after this many violations (0 = unlimited).
  size_t max_violations = 64;
};

/// One invariant violation. `leaf` identifies the offending on-disk leaf
/// page where the problem is local; kNoLeaf marks tree-wide violations.
struct InvariantViolation {
  static constexpr uint64_t kNoLeaf = ~0ull;

  StatusCode code = StatusCode::kCorruption;
  uint64_t leaf = kNoLeaf;
  std::string detail;

  std::string ToString() const;
};

/// Outcome of a structural verification pass.
struct InvariantReport {
  std::vector<InvariantViolation> violations;
  uint64_t leaves_checked = 0;
  uint64_t records_checked = 0;
  uint64_t sections_checked = 0;
  /// True when max_violations cut the scan short.
  bool truncated = false;
  /// Wall-clock duration of each verification phase (geometry,
  /// split_tree, leaf_scan, totals) in execution order, microseconds.
  /// Each phase is also published as a `verify.<phase>_us` counter in
  /// the global metrics registry, so `msv_inspect --verify` can surface
  /// slow checks on large trees.
  std::vector<std::pair<std::string, uint64_t>> check_us;

  bool ok() const { return violations.empty(); }
  /// OK when clean; otherwise the first violation's code and a summary.
  Status ToStatus() const;
  /// Multi-line human-readable report (one line per violation).
  std::string ToString() const;
};

class AceTree {
 public:
  /// Opens the ACE tree file `name` in `env`.
  static Result<std::unique_ptr<AceTree>> Open(
      io::Env* env, const std::string& name,
      const storage::RecordLayout& layout);

  const AceMeta& meta() const { return meta_; }
  const SplitTree& splits() const { return *splits_; }
  const storage::RecordLayout& layout() const { return layout_; }

  /// Reads one leaf (a single contiguous I/O; a large leaf spans pages but
  /// costs only one seek, per the paper's variable-size-leaf scheme).
  Result<LeafData> ReadLeaf(uint64_t leaf_index) const;

  /// Reads a set of leaves with one batched I/O call. Requests are issued
  /// in elevator order (ascending physical offset), so runs of leaves
  /// that are adjacent on disk — the builder lays leaves out contiguously
  /// in index order — coalesce into single modeled accesses. Results are
  /// returned in *input* order, so callers' consumption order (and hence
  /// the sample stream) is unaffected by the I/O schedule.
  Result<std::vector<LeafData>> ReadLeaves(
      const std::vector<uint64_t>& leaf_indices) const;

  /// Exact number of records in heap node `heap_id`'s box (from the
  /// persisted cnt_l/cnt_r; heap_id may be internal or a leaf cell).
  uint64_t NodeCount(uint64_t heap_id) const;

  /// Estimate of |σ_Q(R)| from the internal-node counts: fully covered
  /// subtrees contribute exactly, boundary cells are pro-rated by volume
  /// overlap. Used by online aggregation to scale AVG to SUM.
  Result<uint64_t> EstimateMatchCount(const sampling::RangeQuery& q) const;

  /// Bytes occupied by the whole file (scan-time denominator in benches).
  uint64_t file_bytes() const { return file_bytes_; }

  /// Full structural verification of the on-disk tree (ace_verify.cc):
  /// leaf-page checksums and headers, directory geometry, split-tree
  /// sanity, Lemma-2 section-size bounds, level-i leaf-set partitioning
  /// (every section-i record descends to the leaf's level-i ancestor),
  /// per-leaf section disjointness (Lemma 1), and cnt_l/cnt_r count
  /// consistency. Reads every leaf once; O(N) records scanned.
  InvariantReport CheckInvariants(
      const InvariantCheckOptions& options = {}) const;

 private:
  AceTree(std::unique_ptr<io::File> file, storage::RecordLayout layout,
          AceMeta meta, std::unique_ptr<SplitTree> splits,
          std::vector<LeafLocation> directory,
          std::vector<uint64_t> node_counts, uint64_t file_bytes)
      : file_(std::move(file)),
        layout_(std::move(layout)),
        meta_(meta),
        splits_(std::move(splits)),
        directory_(std::move(directory)),
        node_counts_(std::move(node_counts)),
        file_bytes_(file_bytes) {}

  /// Checksum-verifies and decodes one raw leaf blob (consumed).
  Result<LeafData> ParseLeafBlob(std::string blob, uint64_t leaf_index) const;

  std::unique_ptr<io::File> file_;
  storage::RecordLayout layout_;
  AceMeta meta_;
  std::unique_ptr<SplitTree> splits_;
  std::vector<LeafLocation> directory_;
  /// Record count per heap node, ids 1..2F-1 (index by id).
  std::vector<uint64_t> node_counts_;
  uint64_t file_bytes_;
};

}  // namespace msv::core

#endif  // MSV_CORE_ACE_TREE_H_
