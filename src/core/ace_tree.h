// Read-side handle of an ACE Tree file.
//
// Opening a tree loads the superblock, the internal-node array (split tree
// plus exact subtree counts) and the leaf directory into memory — the same
// working set the paper's query algorithm assumes (its lookup table T is
// memory-resident). Leaf nodes are then single contiguous file reads.

#ifndef MSV_CORE_ACE_TREE_H_
#define MSV_CORE_ACE_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ace_format.h"
#include "core/split_tree.h"
#include "io/env.h"
#include "sampling/range_query.h"
#include "storage/record.h"
#include "util/result.h"

namespace msv::core {

/// One leaf node read from disk: h sections, each a packed run of records.
/// Section i (1-based) is a uniform random subset of the records in the
/// box of the leaf's level-i ancestor.
struct LeafData {
  uint64_t leaf_index = 0;
  size_t record_size = 0;
  /// sections[i-1] holds section i's records, densely packed.
  std::vector<std::string> sections;

  size_t SectionCount(size_t level) const {
    return sections[level - 1].size() / record_size;
  }
  const char* SectionRecord(size_t level, size_t idx) const {
    return sections[level - 1].data() + idx * record_size;
  }
  uint64_t TotalRecords() const {
    uint64_t n = 0;
    for (const auto& s : sections) n += s.size();
    return n / record_size;
  }
};

class AceTree {
 public:
  /// Opens the ACE tree file `name` in `env`.
  static Result<std::unique_ptr<AceTree>> Open(
      io::Env* env, const std::string& name,
      const storage::RecordLayout& layout);

  const AceMeta& meta() const { return meta_; }
  const SplitTree& splits() const { return *splits_; }
  const storage::RecordLayout& layout() const { return layout_; }

  /// Reads one leaf (a single contiguous I/O; a large leaf spans pages but
  /// costs only one seek, per the paper's variable-size-leaf scheme).
  Result<LeafData> ReadLeaf(uint64_t leaf_index) const;

  /// Exact number of records in heap node `heap_id`'s box (from the
  /// persisted cnt_l/cnt_r; heap_id may be internal or a leaf cell).
  uint64_t NodeCount(uint64_t heap_id) const;

  /// Estimate of |σ_Q(R)| from the internal-node counts: fully covered
  /// subtrees contribute exactly, boundary cells are pro-rated by volume
  /// overlap. Used by online aggregation to scale AVG to SUM.
  Result<uint64_t> EstimateMatchCount(const sampling::RangeQuery& q) const;

  /// Bytes occupied by the whole file (scan-time denominator in benches).
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  AceTree(std::unique_ptr<io::File> file, storage::RecordLayout layout,
          AceMeta meta, std::unique_ptr<SplitTree> splits,
          std::vector<LeafLocation> directory,
          std::vector<uint64_t> node_counts, uint64_t file_bytes)
      : file_(std::move(file)),
        layout_(std::move(layout)),
        meta_(meta),
        splits_(std::move(splits)),
        directory_(std::move(directory)),
        node_counts_(std::move(node_counts)),
        file_bytes_(file_bytes) {}

  std::unique_ptr<io::File> file_;
  storage::RecordLayout layout_;
  AceMeta meta_;
  std::unique_ptr<SplitTree> splits_;
  std::vector<LeafLocation> directory_;
  /// Record count per heap node, ids 1..2F-1 (index by id).
  std::vector<uint64_t> node_counts_;
  uint64_t file_bytes_;
};

}  // namespace msv::core

#endif  // MSV_CORE_ACE_TREE_H_
