#include "core/parallel_sampler.h"

#include <algorithm>
#include <utility>

#include "io/disk_model.h"
#include "util/logging.h"

namespace msv::core {

ParallelAceSampler::ParallelAceSampler(const AceTree* tree,
                                       sampling::RangeQuery query,
                                       uint64_t seed, Options options)
    : tree_(tree), query_(query), rng_(seed) {
  MSV_CHECK_MSG(query_.Validate(tree_->layout()).ok(), "invalid query");
  MSV_CHECK_MSG(query_.dims == tree_->meta().key_dims,
                "query dims must match the tree's indexed dims");

  const SplitTree& splits = tree_->splits();
  auto covering = splits.CoveringSets(query_);
  combiner_ = std::make_unique<CombineEngine>(
      &tree_->layout(), query_, covering, tree_->meta().record_size,
      tree_->meta().height);

  StabCursor cursor(&splits, covering);
  order_.reserve(splits.num_leaves());
  while (!cursor.exhausted()) {
    uint64_t id = cursor.NextLeafId();
    if (id == 0) break;
    order_.emplace_back(id, splits.LeafIndexOf(id));
  }
  finished_ = order_.empty();

  level_disk_us_.assign(tree_->meta().height, 0);
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  c_leaf_reads_ = reg.GetCounter("ace.leaf_reads");
  c_samples_ = reg.GetCounter("ace.samples_emitted");
  span_ = obs::StartTraceSpan(name() + ".sample");
  span_.AddAttr("leaves", splits.num_leaves());
  span_.AddAttr("height", static_cast<uint64_t>(tree_->meta().height));

  size_t threads = std::max<size_t>(1, options.threads);
  threads = std::min(threads, order_.empty() ? size_t{1} : order_.size());
  window_ = options.prefetch_window ? options.prefetch_window : 2 * threads;
  read_batch_ = options.read_batch ? options.read_batch
                                   : std::max<size_t>(1, window_ / threads);
  span_.AddAttr("threads", static_cast<uint64_t>(threads));
  if (!finished_) {
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back(&ParallelAceSampler::WorkerLoop, this, i);
    }
  }
}

ParallelAceSampler::~ParallelAceSampler() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.SignalAll();
  ready_cv_.SignalAll();
  for (std::thread& w : workers_) w.join();
  EmitLevelSpans();
}

void ParallelAceSampler::WorkerLoop(size_t worker_index) {
  obs::SetThreadLabel("ace-par-w" + std::to_string(worker_index));
  for (;;) {
    size_t begin, end;
    {
      MutexLock lock(mu_);
      // Wait for window space (explicit loop: the analysis cannot see
      // guarded reads inside a wait-predicate lambda).
      while (!stop_ && next_claim_ < order_.size() &&
             next_claim_ >= consumed_ + window_) {
        work_cv_.Wait(mu_);
      }
      if (stop_ || next_claim_ >= order_.size()) return;
      // Claim a chunk of consecutive stab positions, capped by the
      // remaining reorder-window space so the consumer's memory bound
      // still holds (the wait predicate guarantees at least one slot).
      begin = next_claim_;
      end = std::min({order_.size(), begin + read_batch_,
                      consumed_ + window_});
      next_claim_ = end;
    }

    // The read happens outside mu_ so workers overlap in the buffer pool
    // and on the (serialized) disk arm; ReadLeaves issues the chunk in
    // elevator order and coalesces adjacent leaves. The busy delta is
    // this thread's own attribution, split across the chunk's leaves.
    std::vector<uint64_t> indices;
    indices.reserve(end - begin);
    for (size_t pos = begin; pos < end; ++pos) {
      indices.push_back(order_[pos].second);
    }
    uint64_t busy_before = io::ThreadDiskBusyUs();
    Result<std::vector<LeafData>> leaves = tree_->ReadLeaves(indices);
    uint64_t delta = io::ThreadDiskBusyUs() - busy_before;

    MutexLock lock(mu_);
    if (!leaves.ok()) {
      if (worker_error_.ok()) worker_error_ = leaves.status();
      stop_ = true;
      work_cv_.SignalAll();
      ready_cv_.SignalAll();
      return;
    }
    std::vector<uint64_t> shares =
        ApportionDiskUsAcrossLeaves(delta, *leaves);
    for (size_t pos = begin; pos < end; ++pos) {
      fetched_.emplace(pos, Fetched{std::move((*leaves)[pos - begin]),
                                    shares[pos - begin]});
    }
    ready_cv_.SignalAll();
  }
}

void ParallelAceSampler::EmitLevelSpans() {
  if (level_spans_emitted_) return;
  level_spans_emitted_ = true;
  if (!span_.active()) return;
  for (uint32_t level = 1; level <= tree_->meta().height; ++level) {
    obs::Span s = obs::StartTraceSpan("ace.level");
    s.AddAttr("level", static_cast<uint64_t>(level));
    s.AddMetric("disk_us", static_cast<double>(level_disk_us_[level - 1]));
    s.AddMetric("sections_read", static_cast<double>(leaves_read_));
    s.AddMetric("rounds", static_cast<double>(combiner_->rounds(level)));
    s.AddMetric("samples", static_cast<double>(combiner_->emitted(level)));
  }
  span_.AddAttr("leaves_read", leaves_read_);
  span_.AddAttr("samples", returned_);
  // Block capacity of the combiner's per-query arena (DESIGN.md §15).
  span_.AddAttr("arena_bytes",
                static_cast<uint64_t>(combiner_->arena_bytes()));
  span_.End();
}

Result<sampling::SampleBatch> ParallelAceSampler::NextBatch() {
  sampling::SampleBatch batch;
  batch.record_size = tree_->meta().record_size;
  if (finished_) return batch;

  Fetched f;
  uint64_t heap_id;
  uint64_t leaf_index;
  {
    MutexLock lock(mu_);
    while (!stop_ && fetched_.count(consumed_) == 0) {
      ready_cv_.Wait(mu_);
    }
    if (!worker_error_.ok()) return worker_error_;
    auto it = fetched_.find(consumed_);
    MSV_CHECK_MSG(it != fetched_.end(), "sampler stopped mid-stream");
    f = std::move(it->second);
    fetched_.erase(it);
    heap_id = order_[consumed_].first;
    leaf_index = order_[consumed_].second;
    ++consumed_;
    // The window slid: wake workers parked on it.
    work_cv_.SignalAll();
  }

  // Everything below runs only on the consumer thread, against the same
  // combiner state and RNG a serial AceSampler would hold — the output
  // bytes match a serial run with the same seed.
  ApportionDiskUsAcrossLevels(f.disk_us, f.leaf, tree_->meta().height,
                              &level_disk_us_);
  ++leaves_read_;
  c_leaf_reads_->Add();
  leaf_read_order_.push_back(leaf_index);
  combiner_->AddLeaf(heap_id, f.leaf, &batch, &rng_);

  if (consumed_ == order_.size()) {
    combiner_->Flush(&batch, &rng_);
    finished_ = true;
  }
  returned_ += batch.count();
  c_samples_->Add(batch.count());
  if (finished_) EmitLevelSpans();
  return batch;
}

}  // namespace msv::core
