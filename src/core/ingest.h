// Ingest primitives for the updatable sample view's LSM-style write path.
//
// A MaterializedSampleView absorbs Insert() into an in-memory Memtable
// whose records are made durable by a write-ahead log (WalWriter). When
// the memtable reaches its size threshold it is flushed to an immutable
// sorted run (WriteRunFile — the crash-atomic tmp + Sync + rename +
// SyncDir protocol), and a background compaction folds runs into a fresh
// ACE tree. The set of live files — base tree generation, sorted runs,
// WAL ids — is named by a checksummed manifest (ViewManifest) whose
// atomic rewrite is the single commit point for every structural change;
// recovery after a crash at any point therefore sees either the old or
// the new file set, never a mix.
//
// File naming, all under the view's name prefix:
//   <view>.manifest     checksummed manifest (the commit point)
//   <view>.base.g<N>    ACE tree generation N (never overwritten in place)
//   <view>.run.<N>      immutable sorted run flushed from memtable N
//   <view>.wal.<N>      write-ahead log of memtable N (raw records)
// Ids are drawn from one monotone counter so a file name is never reused
// across the view's lifetime.

#ifndef MSV_CORE_INGEST_H_
#define MSV_CORE_INGEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"
#include "sampling/range_query.h"
#include "storage/record.h"
#include "util/result.h"

namespace msv::core {

/// Knobs for the view's write path.
struct IngestOptions {
  /// Memtable record count that triggers a flush to a sorted run.
  size_t memtable_max_records = 4096;
  /// Sync the WAL on every Insert() so acknowledged inserts survive power
  /// loss. Disable only when durability of the tail is expendable.
  bool sync_wal = true;
  /// Background compaction folds runs into the base tree once this many
  /// runs exist (or the run fraction exceeds max_delta_fraction).
  size_t compact_trigger_runs = 4;
  /// Run compaction on a background thread. When false, runs accumulate
  /// until an explicit Compact()/Rebuild().
  bool background_compaction = true;
  /// Poll period of the compaction thread between trigger checks.
  uint64_t compact_poll_ms = 50;
};

/// An append-only in-memory buffer of fixed-size records; the mutable
/// head of the view. Not internally synchronized — the owning view
/// guards it with its mutex.
class Memtable {
 public:
  Memtable(uint64_t id, size_t record_size)
      : id_(id), record_size_(record_size) {}

  uint64_t id() const { return id_; }
  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Appends `count` records of record_size bytes each.
  void Append(const char* records, size_t count);

  const char* record(uint64_t i) const {
    return data_.data() + i * record_size_;
  }

  /// Copies the records matching `query` into `out`.
  void CollectMatches(const storage::RecordLayout& layout,
                      const sampling::RangeQuery& query,
                      std::vector<std::string>* out) const;

  /// Record pointers sorted by the first key dimension (the run order).
  std::vector<const char*> SortedRecords(
      const storage::RecordLayout& layout) const;

 private:
  uint64_t id_;
  size_t record_size_;
  std::string data_;
  uint64_t count_ = 0;
};

/// Appends raw records to a view WAL. The format is a bare concatenation
/// of fixed-size records: replay truncates at the last whole record, so a
/// torn tail write loses only the unacknowledged suffix.
class WalWriter {
 public:
  /// Opens `name` for appending, creating it (and making the creation
  /// directory-durable) when missing. A torn tail — a trailing partial
  /// record left by a crash mid-append — is truncated away (and the
  /// repair synced) before the first new append, so record boundaries
  /// stay aligned across any number of crash/replay cycles.
  static Result<std::unique_ptr<WalWriter>> Open(io::Env* env,
                                                 const std::string& name,
                                                 size_t record_size,
                                                 bool sync_each_append);

  /// Appends `count` records; with sync_each_append the records are
  /// crash-durable when this returns OK.
  Status Append(const char* records, size_t record_size, size_t count);

  uint64_t bytes() const { return offset_; }

 private:
  WalWriter(std::unique_ptr<io::File> file, uint64_t offset, bool sync)
      : file_(std::move(file)), offset_(offset), sync_(sync) {}

  std::unique_ptr<io::File> file_;
  uint64_t offset_;
  bool sync_;
};

/// Reads every whole record of WAL `name` (missing file: empty). A
/// trailing partial record — a torn write at the crash point — is
/// silently dropped; it was never acknowledged durable.
Result<std::string> ReadWal(io::Env* env, const std::string& name,
                            size_t record_size);

/// The durable description of a view's live file set. Saving it
/// atomically (tmp + Sync + rename-over + SyncDir) commits a structural
/// change; every field is covered by a masked CRC32C.
struct ViewManifest {
  /// File name of the live ACE tree generation.
  std::string base_file;
  /// Next unallocated id for memtables/runs/base generations.
  uint64_t next_id = 1;
  /// Highest memtable id whose records are fully contained in runs or the
  /// base; WALs with ids <= flushed_through are dead.
  uint64_t flushed_through = 0;
  /// Ids of the live sorted runs, oldest first.
  std::vector<uint64_t> runs;
};

Status SaveManifest(io::Env* env, const std::string& file,
                    const ViewManifest& manifest);
Result<ViewManifest> LoadManifest(io::Env* env, const std::string& file);

/// Writes `records` (pre-sorted) as heap file `file` via the crash-atomic
/// protocol: the file either exists complete and synced, or not at all.
Status WriteRunFile(io::Env* env, const std::string& file, size_t record_size,
                    const std::vector<const char*>& records);

}  // namespace msv::core

#endif  // MSV_CORE_INGEST_H_
