// Bulk construction of an ACE Tree (paper Sec. 5).
//
// Phase 1 determines split points: for one-dimensional keys the input is
// external-sorted by key and split keys are the exact recursive medians
// read off rank boundaries in one sequential pass. For k-d trees (Sec. 7)
// exact per-partition medians of alternating dimensions would require a
// pass per level, so split points are computed from a large uniform
// reservoir sample (exact when the sample covers the whole input); the
// substitution is recorded in DESIGN.md.
//
// Phase 2 assigns each record a uniform section number s in [1, h] and a
// uniform leaf among the leaves below its level-s ancestor, then
// external-sorts by (leaf, section) and streams the result into leaf
// nodes, the leaf directory, and the internal-node array. Exact subtree
// counts (cnt_l / cnt_r) are accumulated during the assignment pass.
//
// Total cost: two external sorts plus sequential passes — the paper's
// claimed construction cost.

#ifndef MSV_CORE_ACE_BUILDER_H_
#define MSV_CORE_ACE_BUILDER_H_

#include <cstdint>
#include <string>

#include "extsort/external_sorter.h"
#include "io/env.h"
#include "storage/record.h"
#include "util/result.h"

namespace msv::core {

struct AceBuildOptions {
  /// Target disk block size; the height is chosen so the *expected* leaf
  /// size is the largest that does not exceed one block (paper footnote 2).
  size_t page_size = 64 << 10;
  /// Explicit tree height; 0 selects it automatically from page_size.
  uint32_t height = 0;
  /// Number of indexed dimensions (1 = classic ACE Tree, >=2 = k-d).
  uint32_t key_dims = 1;
  /// Reservoir size for k-d split-point estimation.
  uint64_t split_sample_size = 1 << 20;
  /// Seed for section/leaf assignment randomness.
  uint64_t seed = 7;
  extsort::SortOptions sort;

  Status Validate(const storage::RecordLayout& layout) const;
};

struct AceBuildMetrics {
  uint64_t records = 0;
  uint32_t height = 0;
  uint64_t leaves = 0;
  extsort::SortMetrics phase1_sort;
  extsort::SortMetrics phase2_sort;
  /// Bytes of index overhead beyond the raw records (superblock +
  /// internal nodes + directory + leaf headers).
  uint64_t overhead_bytes = 0;
};

/// Builds an ACE Tree file `output_name` over heap file `input_name`.
Status BuildAceTree(io::Env* env, const std::string& input_name,
                    const std::string& output_name,
                    const storage::RecordLayout& layout,
                    const AceBuildOptions& options = {},
                    AceBuildMetrics* metrics = nullptr);

/// Smallest height whose expected leaf size fits in `page_size` (exposed
/// for tests and capacity planning).
uint32_t ChooseHeight(uint64_t num_records, size_t record_size,
                      size_t page_size);

}  // namespace msv::core

#endif  // MSV_CORE_ACE_BUILDER_H_
