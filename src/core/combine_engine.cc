#include "core/combine_engine.h"

#include "core/split_tree.h"
#include "util/logging.h"

namespace msv::core {

CombineEngine::CombineEngine(const storage::RecordLayout* layout,
                             const sampling::RangeQuery& query,
                             const std::vector<std::vector<uint64_t>>& covering,
                             size_t record_size, uint32_t height)
    : layout_(layout),
      query_(query),
      record_size_(record_size),
      height_(height) {
  MSV_CHECK(covering.size() == height_);
  levels_.resize(height_);
  for (uint32_t i = 0; i < height_; ++i) {
    LevelState& state = levels_[i];
    state.queues.resize(covering[i].size());
    state.node_pos.reserve(covering[i].size());
    for (size_t j = 0; j < covering[i].size(); ++j) {
      state.node_pos.emplace(covering[i][j], j);
    }
  }
}

void CombineEngine::EmitShuffled(std::string&& records,
                                 sampling::SampleBatch* out,
                                 Pcg64* rng) const {
  size_t n = records.size() / record_size_;
  if (n == 0) return;
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  Shuffle(&order, rng);
  for (uint32_t idx : order) {
    out->Append(records.data() + static_cast<size_t>(idx) * record_size_);
  }
}

void CombineEngine::AddLeaf(uint64_t leaf_heap_id, const LeafData& leaf,
                            sampling::SampleBatch* out, Pcg64* rng) {
  MSV_CHECK(leaf.sections.size() == height_);
  for (uint32_t level = 1; level <= height_; ++level) {
    LevelState& state = levels_[level - 1];
    uint64_t ancestor = SplitTree::AncestorAtLevel(leaf_heap_id, level);
    auto it = state.node_pos.find(ancestor);
    if (it == state.node_pos.end()) {
      // The leaf's level-`level` ancestor does not intersect the query;
      // can only happen for a leaf the shuttle should not have visited.
      continue;
    }
    // Filter the section against the query now (the paper buffers only
    // records matching the predicate, Sec. 8.2 / Fig. 15).
    std::string filtered;
    const std::string& raw = leaf.sections[level - 1];
    size_t count = raw.size() / record_size_;
    for (size_t r = 0; r < count; ++r) {
      const char* rec = raw.data() + r * record_size_;
      if (query_.Matches(*layout_, rec)) {
        filtered.append(rec, record_size_);
      }
    }
    buffered_ += filtered.size() / record_size_;
    std::deque<std::string>& queue = state.queues[it->second];
    if (queue.empty()) ++state.nonempty;
    queue.push_back(std::move(filtered));

    // Emit complete rounds: one contribution per covering node. (A
    // contribution may be empty after filtering — it still counts, since
    // rounds are about *leaf sections consumed*, not records.)
    while (state.nonempty == state.queues.size()) {
      std::string round;
      for (std::deque<std::string>& q : state.queues) {
        round += q.front();
        q.pop_front();
        if (q.empty()) --state.nonempty;
      }
      buffered_ -= round.size() / record_size_;
      ++state.rounds;
      state.emitted += round.size() / record_size_;
      EmitShuffled(std::move(round), out, rng);
    }
  }
}

void CombineEngine::Flush(sampling::SampleBatch* out, Pcg64* rng) {
  std::string rest;
  for (LevelState& state : levels_) {
    size_t level_bytes = 0;
    for (std::deque<std::string>& q : state.queues) {
      while (!q.empty()) {
        level_bytes += q.front().size();
        rest += q.front();
        q.pop_front();
      }
    }
    state.emitted += level_bytes / record_size_;
    state.nonempty = 0;
  }
  buffered_ = 0;
  EmitShuffled(std::move(rest), out, rng);
}

}  // namespace msv::core
