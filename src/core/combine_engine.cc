#include "core/combine_engine.h"

#include <cstring>

#include "core/split_tree.h"
#include "util/logging.h"

namespace msv::core {

CombineEngine::CombineEngine(const storage::RecordLayout* layout,
                             const sampling::RangeQuery& query,
                             const std::vector<std::vector<uint64_t>>& covering,
                             size_t record_size, uint32_t height)
    : layout_(layout),
      query_(query),
      record_size_(record_size),
      height_(height) {
  MSV_CHECK(covering.size() == height_);
  levels_.resize(height_);
  for (uint32_t i = 0; i < height_; ++i) {
    LevelState& state = levels_[i];
    state.queues.resize(covering[i].size());
    state.node_pos.reserve(covering[i].size());
    for (size_t j = 0; j < covering[i].size(); ++j) {
      state.node_pos.emplace(covering[i][j], j);
    }
  }
}

storage::RecordSpan CombineEngine::FilterSection(const std::string& raw) {
  const size_t count = raw.size() / record_size_;
  if (count == 0) return storage::RecordSpan{};
  if (scratch_idx_.size() < count) scratch_idx_.resize(count);
  const size_t matches =
      query_.MatchBatch(*layout_, raw.data(), count, scratch_idx_.data());
  if (matches == 0) return storage::RecordSpan{};
  // One arena slab per contribution; matching records are copied exactly
  // once and referenced as zero-copy spans from then on.
  char* dst = arena_.Allocate(matches * record_size_, alignof(double));
  if (matches == count) {
    // Fully covered section (common at coarse levels): one straight copy.
    std::memcpy(dst, raw.data(), count * record_size_);
  } else {
    char* out = dst;
    for (size_t i = 0; i < matches; ++i) {
      std::memcpy(out,
                  raw.data() +
                      static_cast<size_t>(scratch_idx_[i]) * record_size_,
                  record_size_);
      out += record_size_;
    }
  }
  return storage::RecordSpan{dst, matches};
}

void CombineEngine::EmitShuffled(const std::vector<storage::RecordSpan>& spans,
                                 sampling::SampleBatch* out, Pcg64* rng) {
  size_t n = 0;
  for (const storage::RecordSpan& s : spans) n += s.count;
  if (n == 0) return;
  // Flatten to per-record pointers in covering-node order — the same
  // logical concatenation the string path materialized — then shuffle
  // index order with the identical rng consumption (one Below per swap,
  // a function of n only) and gather into the pre-sized output.
  scratch_recs_.clear();
  scratch_recs_.reserve(n);
  for (const storage::RecordSpan& s : spans) {
    const char* rec = s.data;
    for (size_t i = 0; i < s.count; ++i, rec += record_size_) {
      scratch_recs_.push_back(rec);
    }
  }
  scratch_order_.resize(n);
  for (size_t i = 0; i < n; ++i) scratch_order_[i] = static_cast<uint32_t>(i);
  Shuffle(&scratch_order_, rng);
  out->Reserve(n);
  for (uint32_t idx : scratch_order_) out->Append(scratch_recs_[idx]);
}

void CombineEngine::AddLeaf(uint64_t leaf_heap_id, const LeafData& leaf,
                            sampling::SampleBatch* out, Pcg64* rng) {
  MSV_CHECK(leaf.sections.size() == height_);
  for (uint32_t level = 1; level <= height_; ++level) {
    LevelState& state = levels_[level - 1];
    uint64_t ancestor = SplitTree::AncestorAtLevel(leaf_heap_id, level);
    auto it = state.node_pos.find(ancestor);
    if (it == state.node_pos.end()) {
      // The leaf's level-`level` ancestor does not intersect the query;
      // can only happen for a leaf the shuttle should not have visited.
      continue;
    }
    // Filter the section against the query now (the paper buffers only
    // records matching the predicate, Sec. 8.2 / Fig. 15) with the
    // batched branch-free kernel; the surviving records live in the
    // per-query arena until their round emits.
    storage::RecordSpan filtered = FilterSection(leaf.sections[level - 1]);
    buffered_ += filtered.count;
    std::deque<storage::RecordSpan>& queue = state.queues[it->second];
    if (queue.empty()) ++state.nonempty;
    queue.push_back(filtered);

    // Emit complete rounds: one contribution per covering node. (A
    // contribution may be empty after filtering — it still counts, since
    // rounds are about *leaf sections consumed*, not records.)
    while (state.nonempty == state.queues.size()) {
      scratch_round_.clear();
      for (std::deque<storage::RecordSpan>& q : state.queues) {
        scratch_round_.push_back(q.front());
        q.pop_front();
        if (q.empty()) --state.nonempty;
      }
      uint64_t round_records = 0;
      for (const storage::RecordSpan& s : scratch_round_) {
        round_records += s.count;
      }
      buffered_ -= round_records;
      ++state.rounds;
      state.emitted += round_records;
      EmitShuffled(scratch_round_, out, rng);
    }
  }
  // Fully drained: no queued span references the arena any more (empty
  // contributions carry no bytes), so rewind it. This caps arena growth
  // at the high-water mark of simultaneously buffered records.
  if (buffered_ == 0) arena_.Reset();
}

void CombineEngine::Flush(sampling::SampleBatch* out, Pcg64* rng) {
  scratch_round_.clear();
  for (LevelState& state : levels_) {
    uint64_t level_records = 0;
    for (std::deque<storage::RecordSpan>& q : state.queues) {
      while (!q.empty()) {
        level_records += q.front().count;
        scratch_round_.push_back(q.front());
        q.pop_front();
      }
    }
    state.emitted += level_records;
    state.nonempty = 0;
  }
  buffered_ = 0;
  EmitShuffled(scratch_round_, out, rng);
  arena_.Reset();
}

}  // namespace msv::core
