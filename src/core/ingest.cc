#include "core/ingest.h"

#include <algorithm>
#include <sstream>

#include "storage/heap_file.h"
#include "util/crc32c.h"

namespace msv::core {

// ---------------------------------------------------------------------------
// Memtable
// ---------------------------------------------------------------------------

void Memtable::Append(const char* records, size_t count) {
  data_.append(records, count * record_size_);
  count_ += count;
}

void Memtable::CollectMatches(const storage::RecordLayout& layout,
                              const sampling::RangeQuery& query,
                              std::vector<std::string>* out) const {
  for (uint64_t i = 0; i < count_; ++i) {
    const char* rec = record(i);
    if (query.Matches(layout, rec)) {
      out->emplace_back(rec, record_size_);
    }
  }
}

std::vector<const char*> Memtable::SortedRecords(
    const storage::RecordLayout& layout) const {
  std::vector<const char*> recs;
  recs.reserve(count_);
  for (uint64_t i = 0; i < count_; ++i) recs.push_back(record(i));
  std::stable_sort(recs.begin(), recs.end(),
                   [&layout](const char* a, const char* b) {
                     return layout.Key(a, 0) < layout.Key(b, 0);
                   });
  return recs;
}

// ---------------------------------------------------------------------------
// WalWriter / ReadWal
// ---------------------------------------------------------------------------

Result<std::unique_ptr<WalWriter>> WalWriter::Open(io::Env* env,
                                                   const std::string& name,
                                                   size_t record_size,
                                                   bool sync_each_append) {
  MSV_ASSIGN_OR_RETURN(bool existed, env->FileExists(name));
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                       env->OpenFile(name, /*create=*/true));
  MSV_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (!existed) {
    // The empty WAL's directory entry must survive a crash, or replay
    // would miss the memtable entirely while the manifest already names
    // its id as live.
    MSV_RETURN_IF_ERROR(env->SyncDir());
  }
  const uint64_t whole = (size / record_size) * record_size;
  if (whole != size) {
    // Torn tail from a crash mid-append. Replay already ignores it, but
    // appending after the garbage would misalign every later record on
    // the *next* replay — truncate to the last whole-record boundary and
    // make the repair durable before anything lands after it.
    MSV_RETURN_IF_ERROR(file->Truncate(whole));
    MSV_RETURN_IF_ERROR(file->Sync());
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), whole, sync_each_append));
}

Status WalWriter::Append(const char* records, size_t record_size,
                         size_t count) {
  const size_t n = record_size * count;
  MSV_RETURN_IF_ERROR(file_->Write(offset_, records, n));
  if (sync_) {
    MSV_RETURN_IF_ERROR(file_->Sync());
  }
  offset_ += n;
  return Status::OK();
}

Result<std::string> ReadWal(io::Env* env, const std::string& name,
                            size_t record_size) {
  MSV_ASSIGN_OR_RETURN(bool exists, env->FileExists(name));
  if (!exists) return std::string();
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                       env->OpenFile(name, /*create=*/false));
  MSV_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  const uint64_t whole = (size / record_size) * record_size;
  std::string data(whole, '\0');
  if (whole > 0) {
    MSV_RETURN_IF_ERROR(file->ReadExact(0, whole, data.data()));
  }
  return data;
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

namespace {

constexpr char kManifestMagic[] = "msview1";

std::string ManifestPayload(const ViewManifest& m) {
  std::ostringstream out;
  out << "base " << m.base_file << "\n";
  out << "next " << m.next_id << "\n";
  out << "flushed " << m.flushed_through << "\n";
  for (uint64_t id : m.runs) out << "run " << id << "\n";
  return out.str();
}

}  // namespace

Status SaveManifest(io::Env* env, const std::string& file,
                    const ViewManifest& manifest) {
  const std::string payload = ManifestPayload(manifest);
  const uint32_t crc =
      MaskCrc(Crc32c(payload.data(), payload.size()));
  std::ostringstream out;
  out << kManifestMagic << " " << crc << "\n" << payload;
  const std::string contents = out.str();

  // Atomic replace (the Catalog::Save protocol): a crash mid-save leaves
  // the previous manifest — and with it the previous file set — intact.
  const std::string tmp_name = file + ".tmp";
  auto write_tmp = [&]() -> Status {
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> f,
                         env->OpenFile(tmp_name, /*create=*/true));
    MSV_RETURN_IF_ERROR(f->Truncate(0));
    MSV_RETURN_IF_ERROR(f->Write(0, contents.data(), contents.size()));
    return f->Sync();
  };
  Status st = write_tmp();
  if (!st.ok()) {
    env->DeleteFile(tmp_name).IgnoreError();  // best-effort scratch cleanup
    return st;
  }
  MSV_RETURN_IF_ERROR(env->RenameFile(tmp_name, file));
  return env->SyncDir();
}

Result<ViewManifest> LoadManifest(io::Env* env, const std::string& file) {
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> f,
                       env->OpenFile(file, /*create=*/false));
  MSV_ASSIGN_OR_RETURN(uint64_t size, f->Size());
  std::string contents(size, '\0');
  MSV_RETURN_IF_ERROR(f->ReadExact(0, size, contents.data()));

  const size_t eol = contents.find('\n');
  if (eol == std::string::npos) {
    return Status::Corruption("view manifest: missing header line");
  }
  std::istringstream header(contents.substr(0, eol));
  std::string magic;
  uint32_t stored_crc = 0;
  header >> magic >> stored_crc;
  if (magic != kManifestMagic) {
    return Status::Corruption("view manifest: bad magic '" + magic + "'");
  }
  const std::string payload = contents.substr(eol + 1);
  const uint32_t actual =
      MaskCrc(Crc32c(payload.data(), payload.size()));
  if (actual != stored_crc) {
    return Status::Corruption("view manifest: checksum mismatch");
  }

  ViewManifest m;
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind;  // NOLINT(msv-hot-path-alloc) manifest parse, recovery-time cold path
    fields >> kind;
    if (kind == "base") {
      fields >> m.base_file;
    } else if (kind == "next") {
      fields >> m.next_id;
    } else if (kind == "flushed") {
      fields >> m.flushed_through;
    } else if (kind == "run") {
      uint64_t id = 0;
      fields >> id;
      m.runs.push_back(id);
    } else {
      return Status::Corruption("view manifest: bad line '" + line + "'");
    }
  }
  if (m.base_file.empty()) {
    return Status::Corruption("view manifest: no base file");
  }
  return m;
}

// ---------------------------------------------------------------------------
// WriteRunFile
// ---------------------------------------------------------------------------

Status WriteRunFile(io::Env* env, const std::string& file, size_t record_size,
                    const std::vector<const char*>& records) {
  const std::string tmp_name = file + ".tmp";
  auto write_tmp = [&]() -> Status {
    MSV_ASSIGN_OR_RETURN(
        std::unique_ptr<storage::HeapFileWriter> writer,
        storage::HeapFileWriter::Create(env, tmp_name, record_size));
    for (const char* rec : records) {
      MSV_RETURN_IF_ERROR(writer->Append(rec));
    }
    return writer->Finish();  // flushes and syncs the file
  };
  Status st = write_tmp();
  if (!st.ok()) {
    env->DeleteFile(tmp_name).IgnoreError();  // best-effort scratch cleanup
    return st;
  }
  MSV_RETURN_IF_ERROR(env->RenameFile(tmp_name, file));
  return env->SyncDir();
}

}  // namespace msv::core
