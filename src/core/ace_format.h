// On-disk format of the ACE Tree (Appendability, Combinability,
// Exponentiality Tree), the index structure implementing a materialized
// sample view (paper Secs. 3-5).
//
// One file, byte-addressed with page-aligned regions:
//
//   [superblock]        fixed-size header (magic, geometry, key domain)
//   [internal region]   F-1 internal nodes in heap order (node 1 = root,
//                       node n's children are 2n and 2n+1): split key,
//                       split dimension, cnt_left, cnt_right
//   [directory region]  F entries: byte offset + byte length of each leaf
//   [leaf region]       leaf nodes in leaf-id order; each leaf is
//                       [leaf header: section record-counts[h]]
//                       [section 1 records][section 2 records]...[section h]
//
// Leaves are variable-sized and may span disk pages (the paper's chosen
// scheme, Sec. 5.6); the directory makes every leaf a single contiguous
// read. The internal region and directory are loaded into memory when the
// tree is opened — together they are a tiny fraction of the data size.

#ifndef MSV_CORE_ACE_FORMAT_H_
#define MSV_CORE_ACE_FORMAT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "storage/record.h"
#include "util/result.h"

namespace msv::core {

inline constexpr uint64_t kAceMagic = 0x3145455254454341ULL;  // "ACETREE1"
/// v2 adds masked CRC32C checksums of the internal and directory regions
/// to the superblock (previously only leaves and the superblock itself
/// were checksummed), so a torn write anywhere in the file surfaces as
/// Status::Corruption on open. v1 files are not readable.
inline constexpr uint32_t kAceVersion = 2;
inline constexpr size_t kSuperblockSize = 256;
inline constexpr size_t kInternalNodeSize = 32;  // key f64, dim u32, pad, cnt_l u64, cnt_r u64
inline constexpr size_t kDirectoryEntrySize = 16;  // offset u64, length u64

/// Geometry and key-domain metadata persisted in the superblock.
struct AceMeta {
  size_t page_size = 64 << 10;
  size_t record_size = 0;
  uint32_t key_dims = 1;
  /// Tree height h = number of ranges/sections per leaf. Internal node
  /// levels are 1..h-1; level h corresponds to the leaves themselves.
  uint32_t height = 0;
  /// Number of leaves, F = 2^(h-1).
  uint64_t num_leaves = 0;
  uint64_t num_records = 0;
  /// Region offsets in bytes.
  uint64_t internal_offset = 0;
  uint64_t directory_offset = 0;
  uint64_t data_offset = 0;
  /// Smallest/largest key value per dimension (defines the root range).
  std::array<double, storage::kMaxKeyDims> domain_min{};
  std::array<double, storage::kMaxKeyDims> domain_max{};
  /// Masked CRC32C of the raw internal-node and directory regions (format
  /// v2). Verified by AceTree::Open before either region is trusted.
  uint32_t internal_crc = 0;
  uint32_t directory_crc = 0;

  uint64_t num_internal_nodes() const {
    return num_leaves > 0 ? num_leaves - 1 : 0;
  }
};

/// One internal node of the binary split tree. Node n (heap order,
/// 1-indexed) splits its range on `split_dim` at `split_key`: records with
/// key < split_key belong to child 2n, the rest to child 2n+1. cnt_left /
/// cnt_right are exact record counts of the two subtrees (paper Sec. 3.2;
/// used for online-aggregation population estimates).
struct InternalNode {
  double split_key = 0.0;
  uint32_t split_dim = 0;
  uint64_t cnt_left = 0;
  uint64_t cnt_right = 0;
};

/// Directory entry locating one leaf in the data region.
struct LeafLocation {
  uint64_t offset = 0;  // absolute byte offset in the file
  uint64_t length = 0;  // bytes, header included
};

/// An axis-aligned box with half-open intervals [lo, hi) per dimension.
/// The root box spans [domain_min, just-above-domain_max).
struct Box {
  std::array<double, storage::kMaxKeyDims> lo{};
  std::array<double, storage::kMaxKeyDims> hi{};
  uint32_t dims = 1;
};

/// Serialization helpers (format details shared with tests).
void EncodeSuperblock(char* dst, const AceMeta& meta);
Result<AceMeta> DecodeSuperblock(const char* src);
void EncodeInternalNode(char* dst, const InternalNode& node);
InternalNode DecodeInternalNode(const char* src);

/// Size in bytes of a leaf header for a tree of height h.
inline size_t LeafHeaderSize(uint32_t height) {
  return 8 + 4ul * height;  // leaf id u32, height u32, per-section counts
}

}  // namespace msv::core

#endif  // MSV_CORE_ACE_FORMAT_H_
