// In-memory complete binary split tree shared by the ACE Tree builder,
// reader and query algorithm.
//
// Heap numbering: node 1 is the root; node n has children 2n and 2n+1.
// Internal nodes occupy ids [1, F) and leaves occupy [F, 2F) where
// F = 2^(h-1) is the leaf count. The *level* of node n is
// floor(log2 n) + 1, so the root is level 1 and leaves are level h —
// matching the paper's numbering of leaf ranges R_1..R_h and sections
// S_1..S_h: L.R_i is the box of L's level-i ancestor.
//
// Each internal node splits its box on one dimension: records with
// key < split_key go left. Boxes are half-open per dimension, so sibling
// boxes partition their parent exactly.

#ifndef MSV_CORE_SPLIT_TREE_H_
#define MSV_CORE_SPLIT_TREE_H_

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/ace_format.h"
#include "sampling/range_query.h"
#include "util/logging.h"

namespace msv::core {

/// True when half-open box `b` intersects the closed query `q`.
bool BoxOverlapsQuery(const Box& b, const sampling::RangeQuery& q);

/// True when box `b` fully contains the closed query `q`.
bool BoxCoversQuery(const Box& b, const sampling::RangeQuery& q);

class SplitTree {
 public:
  /// `nodes` holds the F-1 internal nodes indexed by heap id - 1. For
  /// height 1 (a single leaf) `nodes` is empty.
  SplitTree(uint32_t height, uint32_t dims, std::vector<InternalNode> nodes,
            Box root_box);

  uint32_t height() const { return height_; }
  uint32_t dims() const { return dims_; }
  uint64_t num_leaves() const { return num_leaves_; }
  const Box& root_box() const { return root_box_; }

  const InternalNode& node(uint64_t heap_id) const {
    MSV_DCHECK(heap_id >= 1 && heap_id < num_leaves_);
    return nodes_[heap_id - 1];
  }
  const std::vector<InternalNode>& nodes() const { return nodes_; }

  /// 1-based level of a heap node (root = 1, leaves = height()).
  static uint32_t LevelOf(uint64_t heap_id) {
    return std::bit_width(heap_id);
  }

  /// Heap id of leaf number `leaf` (0-based).
  uint64_t LeafHeapId(uint64_t leaf) const { return num_leaves_ + leaf; }

  /// Leaf number of a leaf heap id.
  uint64_t LeafIndexOf(uint64_t heap_id) const {
    MSV_DCHECK(heap_id >= num_leaves_ && heap_id < 2 * num_leaves_);
    return heap_id - num_leaves_;
  }

  /// Heap id of the level-`level` ancestor of `heap_id` (level must not
  /// exceed the node's own level).
  static uint64_t AncestorAtLevel(uint64_t heap_id, uint32_t level) {
    return heap_id >> (LevelOf(heap_id) - level);
  }

  /// Leaf-number interval [lo, hi) of the leaves in node `heap_id`'s
  /// subtree.
  std::pair<uint64_t, uint64_t> LeavesUnder(uint64_t heap_id) const {
    uint32_t level = LevelOf(heap_id);
    uint64_t width = num_leaves_ >> (level - 1);
    uint64_t first = heap_id * width - num_leaves_;
    return {first, first + width};
  }

  /// Box of one child of internal node `heap_id`, given the node's box.
  Box ChildBox(const Box& parent, uint64_t heap_id, bool left) const;

  /// Box of an arbitrary heap node (root-to-node descent).
  Box BoxOf(uint64_t heap_id) const;

  /// Heap id of the node at `level` on the root-to-leaf path of a record
  /// with the given key vector (level in [1, height]).
  uint64_t DescendToLevel(const double* keys, uint32_t level) const;

  /// Finest-level cell (leaf number) a record's keys fall into.
  uint64_t CellOf(const double* keys) const {
    return LeafIndexOf(DescendToLevel(keys, height_));
  }

  /// For each level i (index i-1 of the result), the heap ids of all
  /// level-i nodes whose box intersects `q`, in heap-id order. These are
  /// the paper's per-section covering sets: the section-i contributions of
  /// leaves under these nodes, taken together, span the query.
  std::vector<std::vector<uint64_t>> CoveringSets(
      const sampling::RangeQuery& q) const;

 private:
  uint32_t height_;
  uint32_t dims_;
  uint64_t num_leaves_;
  std::vector<InternalNode> nodes_;
  Box root_box_;
};

}  // namespace msv::core

#endif  // MSV_CORE_SPLIT_TREE_H_
