// Two-phase multi-way merge sort (TPMMS) over heap files of fixed-size
// records, following Garcia-Molina, Ullman & Widom.
//
// Phase 1 reads the input in memory-budget-sized chunks, sorts each chunk
// in memory and writes it back as a sorted run. Phase 2 merges runs with a
// loser-tree k-way merger; when the number of runs exceeds the fan-in the
// merge recurses in passes. The ACE Tree bulk-construction algorithm calls
// this twice (Sec. 5 of the paper: "two external sorts"), and the
// randomly-permuted-file baseline calls it once.

#ifndef MSV_EXTSORT_EXTERNAL_SORTER_H_
#define MSV_EXTSORT_EXTERNAL_SORTER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "io/env.h"
#include "util/result.h"

namespace msv::extsort {

/// Strict weak ordering over raw record bytes.
using RecordLess = std::function<bool(const char*, const char*)>;

struct SortOptions {
  /// In-memory working set for run formation and merge buffers.
  size_t memory_budget_bytes = 64 << 20;
  /// Maximum runs merged in one pass.
  size_t max_fanin = 64;
  /// Name prefix for temporary run files (deleted on success).
  std::string temp_prefix = "extsort_run";
  /// Double-buffered merge readahead + batched run writes: each merge
  /// input keeps a lookahead block fetched together with the current one
  /// as a single coalesced access, and the output writer's buffer is
  /// doubled to match. Halves the per-input refill seeks of the merge
  /// phase at the cost of ~2x the per-input buffer memory (the
  /// synchronous disk model expresses overlap as fewer seeks, not as
  /// hidden latency — see HeapFile::NewScanner).
  bool batched_io = true;

  Status Validate(size_t record_size) const;
};

struct SortMetrics {
  uint64_t records = 0;
  uint64_t initial_runs = 0;
  uint64_t merge_passes = 0;
  uint64_t run_files_written = 0;
};

/// Sorts heap file `input_name` into a new heap file `output_name` using
/// the given ordering. Both live in `env`. On success temp files are
/// removed and metrics (if non-null) describe the work done.
Status ExternalSort(io::Env* env, const std::string& input_name,
                    const std::string& output_name, const RecordLess& less,
                    const SortOptions& options = {},
                    SortMetrics* metrics = nullptr);

}  // namespace msv::extsort

#endif  // MSV_EXTSORT_EXTERNAL_SORTER_H_
