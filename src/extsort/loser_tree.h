// Loser-tree (tournament tree) k-way merge selector.
//
// Classic external-merge machinery: after initialization, each Pop returns
// the index of the input holding the smallest current record and replays
// exactly ceil(log2 k) comparisons to restore the tree, independent of k.

#ifndef MSV_EXTSORT_LOSER_TREE_H_
#define MSV_EXTSORT_LOSER_TREE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "util/logging.h"

namespace msv::extsort {

/// Selection tree over `k` inputs. The caller supplies a comparator over
/// input indices ("does input a's current record sort before input b's?")
/// and a predicate saying whether an input is exhausted.
class LoserTree {
 public:
  using IndexLess = std::function<bool(size_t, size_t)>;
  using Exhausted = std::function<bool(size_t)>;

  LoserTree(size_t k, IndexLess less, Exhausted exhausted)
      : k_(k), less_(std::move(less)), exhausted_(std::move(exhausted)) {
    MSV_CHECK(k_ > 0);
    tree_.assign(k_, kInvalid);
    // Play the complete initial tournament: internal node n stores the
    // loser of the match between its two subtrees' winners.
    winner_ = Play(1);
    if (winner_ != kInvalid && exhausted_(winner_)) {
      winner_ = kInvalid;
    }
  }

  /// Index of the input currently holding the global minimum, or kInvalid
  /// when all inputs are exhausted.
  size_t Top() const { return winner_; }

  /// After the caller advances input Top(), restores the tournament.
  void Advance() { Replay(winner_); }

  static constexpr size_t kInvalid = static_cast<size_t>(-1);

 private:
  // True when a should be preferred over b (smaller record, with exhausted
  // inputs ranked last).
  bool Prefer(size_t a, size_t b) const {
    if (a == kInvalid) return false;
    if (b == kInvalid) return true;
    bool a_done = exhausted_(a);
    bool b_done = exhausted_(b);
    if (a_done || b_done) return !a_done && b_done;
    return less_(a, b);
  }

  // Initial tournament below tree position `node`; returns the winner.
  // Positions >= k_ denote leaves (input index = position - k_), matching
  // the leaf-to-parent map used by Replay.
  size_t Play(size_t node) {
    if (node >= k_) return node - k_;
    size_t a = Play(2 * node);
    size_t b = (2 * node + 1 < 2 * k_) ? Play(2 * node + 1) : kInvalid;
    size_t winner = Prefer(a, b) ? a : b;
    tree_[node] = (winner == a) ? b : a;
    return winner;
  }

  // Re-plays matches from leaf `input` up to the root.
  void Replay(size_t input) {
    size_t winner = input;
    size_t node = (input + k_) / 2;
    while (node > 0) {
      if (Prefer(tree_[node], winner)) {
        std::swap(tree_[node], winner);
      }
      node /= 2;
    }
    winner_ = winner;
    if (winner_ != kInvalid && exhausted_(winner_)) {
      winner_ = kInvalid;
    }
  }

  size_t k_;
  IndexLess less_;
  Exhausted exhausted_;
  std::vector<size_t> tree_;  // internal nodes hold match losers
  size_t winner_ = kInvalid;
};

}  // namespace msv::extsort

#endif  // MSV_EXTSORT_LOSER_TREE_H_
