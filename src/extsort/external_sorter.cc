#include "extsort/external_sorter.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "extsort/loser_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/heap_file.h"
#include "util/logging.h"

namespace msv::extsort {

namespace {

using storage::HeapFile;
using storage::HeapFileWriter;

std::string RunName(const std::string& prefix, uint64_t id) {
  return prefix + "." + std::to_string(id);
}

// Reads the input sequentially, sorts chunks in memory, writes sorted runs.
Result<std::vector<std::string>> FormRuns(io::Env* env, const HeapFile& input,
                                          const RecordLess& less,
                                          const SortOptions& options,
                                          uint64_t* next_run_id) {
  const size_t record_size = input.record_size();
  const size_t chunk_records =
      std::max<size_t>(1, options.memory_budget_bytes / record_size);

  std::vector<std::string> runs;
  std::vector<char> chunk(chunk_records * record_size);
  std::vector<const char*> ptrs;
  ptrs.reserve(chunk_records);

  auto scanner = input.NewScanner(4 << 20, options.batched_io);
  uint64_t remaining = input.record_count();
  while (remaining > 0) {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(chunk_records, remaining));
    for (size_t i = 0; i < n; ++i) {
      MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
      MSV_CHECK(rec != nullptr);
      std::memcpy(chunk.data() + i * record_size, rec, record_size);
    }
    remaining -= n;

    ptrs.clear();
    for (size_t i = 0; i < n; ++i) {
      ptrs.push_back(chunk.data() + i * record_size);
    }
    std::sort(ptrs.begin(), ptrs.end(),
              [&less](const char* a, const char* b) { return less(a, b); });

    std::string run_name = RunName(options.temp_prefix, (*next_run_id)++);
    // Batched run writes: a bigger writer buffer turns the run dump into
    // fewer, larger accesses interleaving less with the input scan.
    const size_t writer_buffer =
        options.batched_io
            ? std::max<size_t>(1 << 20, options.memory_budget_bytes / 8)
            : size_t{1} << 20;
    MSV_ASSIGN_OR_RETURN(
        std::unique_ptr<HeapFileWriter> writer,
        HeapFileWriter::Create(env, run_name, record_size, writer_buffer));
    for (const char* p : ptrs) {
      MSV_RETURN_IF_ERROR(writer->Append(p));
    }
    MSV_RETURN_IF_ERROR(writer->Finish());
    runs.push_back(std::move(run_name));
  }
  return runs;
}

// Merges `run_names` into the heap file `output_name`.
Status MergeRuns(io::Env* env, const std::vector<std::string>& run_names,
                 const std::string& output_name, const RecordLess& less,
                 const SortOptions& options) {
  const size_t k = run_names.size();
  MSV_CHECK(k >= 1);

  std::vector<std::unique_ptr<HeapFile>> files;
  std::vector<std::unique_ptr<HeapFile::Scanner>> scanners;
  std::vector<const char*> current(k, nullptr);
  files.reserve(k);
  scanners.reserve(k);

  size_t record_size = 0;
  uint64_t total = 0;
  const size_t per_input_buffer =
      std::max<size_t>(64 << 10, options.memory_budget_bytes / (k + 1));
  for (const std::string& name : run_names) {
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> f, HeapFile::Open(env, name));
    record_size = f->record_size();
    total += f->record_count();
    scanners.push_back(std::make_unique<HeapFile::Scanner>(
        f->NewScanner(per_input_buffer, /*readahead=*/options.batched_io)));
    files.push_back(std::move(f));
  }

  // Prime each input.
  for (size_t i = 0; i < k; ++i) {
    MSV_ASSIGN_OR_RETURN(current[i], scanners[i]->Next());
  }

  LoserTree tree(
      k,
      [&](size_t a, size_t b) { return less(current[a], current[b]); },
      [&](size_t i) { return current[i] == nullptr; });

  const size_t writer_buffer =
      options.batched_io ? 2 * per_input_buffer : per_input_buffer;
  MSV_ASSIGN_OR_RETURN(
      std::unique_ptr<HeapFileWriter> writer,
      HeapFileWriter::Create(env, output_name, record_size, writer_buffer));

  uint64_t written = 0;
  while (tree.Top() != LoserTree::kInvalid) {
    size_t i = tree.Top();
    MSV_RETURN_IF_ERROR(writer->Append(current[i]));
    ++written;
    MSV_ASSIGN_OR_RETURN(current[i], scanners[i]->Next());
    tree.Advance();
  }
  MSV_RETURN_IF_ERROR(writer->Finish());
  if (written != total) {
    return Status::Internal("merge lost records: wrote " +
                            std::to_string(written) + " of " +
                            std::to_string(total));
  }
  return Status::OK();
}

}  // namespace

Status SortOptions::Validate(size_t record_size) const {
  if (memory_budget_bytes < record_size) {
    return Status::InvalidArgument(
        "memory budget smaller than one record");
  }
  if (max_fanin < 2) {
    return Status::InvalidArgument("max_fanin must be at least 2");
  }
  return Status::OK();
}

Status ExternalSort(io::Env* env, const std::string& input_name,
                    const std::string& output_name, const RecordLess& less,
                    const SortOptions& options, SortMetrics* metrics) {
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> input,
                       HeapFile::Open(env, input_name));
  MSV_RETURN_IF_ERROR(options.Validate(input->record_size()));

  SortMetrics local;
  local.records = input->record_count();

  // Empty input: write an empty output directly.
  if (input->record_count() == 0) {
    MSV_ASSIGN_OR_RETURN(
        std::unique_ptr<HeapFileWriter> writer,
        HeapFileWriter::Create(env, output_name, input->record_size()));
    MSV_RETURN_IF_ERROR(writer->Finish());
    if (metrics != nullptr) *metrics = local;
    return Status::OK();
  }

  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  reg.GetCounter("extsort.records")->Add(local.records);

  uint64_t next_run_id = 0;
  std::vector<std::string> runs;
  {
    obs::Span span = obs::StartTraceSpan("extsort.form_runs");
    MSV_ASSIGN_OR_RETURN(
        runs, FormRuns(env, *input, less, options, &next_run_id));
    span.AddAttr("runs", static_cast<uint64_t>(runs.size()));
  }
  input.reset();
  local.initial_runs = runs.size();
  local.run_files_written = runs.size();
  reg.GetCounter("extsort.runs")->Add(runs.size());

  // Merge passes until at most max_fanin runs remain, then one final merge
  // into the output.
  std::vector<std::string> to_delete = runs;
  while (runs.size() > options.max_fanin) {
    obs::Span span = obs::StartTraceSpan("extsort.merge_pass");
    span.AddAttr("inputs", static_cast<uint64_t>(runs.size()));
    std::vector<std::string> next;
    for (size_t i = 0; i < runs.size(); i += options.max_fanin) {
      size_t end = std::min(runs.size(), i + options.max_fanin);
      std::vector<std::string> group(runs.begin() + i, runs.begin() + end);
      std::string merged = RunName(options.temp_prefix, next_run_id++);
      MSV_RETURN_IF_ERROR(MergeRuns(env, group, merged, less, options));
      next.push_back(merged);
      to_delete.push_back(merged);
      ++local.run_files_written;
    }
    runs = std::move(next);
    ++local.merge_passes;
  }

  {
    obs::Span span = obs::StartTraceSpan("extsort.final_merge");
    span.AddAttr("inputs", static_cast<uint64_t>(runs.size()));
    MSV_RETURN_IF_ERROR(MergeRuns(env, runs, output_name, less, options));
  }
  ++local.merge_passes;
  reg.GetCounter("extsort.merge_passes")->Add(local.merge_passes);

  for (const std::string& name : to_delete) {
    // Best-effort cleanup; a failure to delete a temp run is not a sort
    // failure.
    env->DeleteFile(name).IgnoreError();  // best-effort scratch cleanup
  }
  if (metrics != nullptr) *metrics = local;
  return Status::OK();
}

}  // namespace msv::extsort
