// Random sampling from a ranked R-tree (the paper's "obvious extension" of
// Antoshenkov's ranked B+-tree algorithm to spatial data, Sec. 8).
//
// The query's candidate set is the union of records on leaf pages whose
// MBR intersects the query (collected with one internal traversal).
// Candidates are visited in a uniformly random order without replacement
// (incremental Fisher-Yates over the candidate count); each visited
// candidate costs one page access unless buffered and is emitted iff it
// actually satisfies the predicate. Every prefix of the emitted stream is
// therefore a uniform without-replacement sample of the match set.

#ifndef MSV_RTREE_RTREE_SAMPLER_H_
#define MSV_RTREE_RTREE_SAMPLER_H_

#include <optional>
#include <string>
#include <vector>

#include "rtree/rtree.h"
#include "sampling/sample_stream.h"
#include "util/random.h"

namespace msv::rtree {

class RTreeSampler : public sampling::SampleStream {
 public:
  RTreeSampler(const RTree* tree, sampling::RangeQuery query, uint64_t seed,
               size_t candidates_per_pull = 16);

  Result<sampling::SampleBatch> NextBatch() override;
  bool done() const override { return initialized_ && shuffle_->done(); }
  uint64_t samples_returned() const override { return returned_; }
  std::string name() const override { return "rtree"; }

  /// Candidate-set size (valid after the first pull).
  uint64_t candidate_count() const { return total_candidates_; }

 private:
  Status Initialize();

  const RTree* tree_;
  sampling::RangeQuery query_;
  Pcg64 rng_;
  size_t candidates_per_pull_;

  bool initialized_ = false;
  std::vector<CandidateRun> runs_;
  std::vector<uint64_t> cumulative_;  // exclusive prefix sums of run counts
  uint64_t total_candidates_ = 0;
  std::optional<LazyShuffle> shuffle_;
  uint64_t returned_ = 0;
};

}  // namespace msv::rtree

#endif  // MSV_RTREE_RTREE_SAMPLER_H_
