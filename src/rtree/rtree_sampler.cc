#include "rtree/rtree_sampler.h"

#include <algorithm>

#include "util/logging.h"

namespace msv::rtree {

RTreeSampler::RTreeSampler(const RTree* tree, sampling::RangeQuery query,
                           uint64_t seed, size_t candidates_per_pull)
    : tree_(tree),
      query_(query),
      rng_(seed),
      candidates_per_pull_(candidates_per_pull) {
  MSV_CHECK(candidates_per_pull_ > 0);
}

Status RTreeSampler::Initialize() {
  MSV_ASSIGN_OR_RETURN(runs_, tree_->CollectCandidates(query_));
  cumulative_.resize(runs_.size());
  uint64_t cum = 0;
  for (size_t i = 0; i < runs_.size(); ++i) {
    cumulative_[i] = cum;
    cum += runs_[i].count;
  }
  total_candidates_ = cum;
  shuffle_.emplace(total_candidates_);
  initialized_ = true;
  return Status::OK();
}

Result<sampling::SampleBatch> RTreeSampler::NextBatch() {
  sampling::SampleBatch batch;
  batch.record_size = tree_->meta().record_size;
  if (!initialized_) {
    MSV_RETURN_IF_ERROR(Initialize());
    return batch;  // candidate collection was this pull's I/O
  }
  if (shuffle_->done()) return batch;

  std::vector<char> rec(tree_->meta().record_size);
  const storage::RecordLayout& layout = tree_->layout();
  for (size_t i = 0; i < candidates_per_pull_ && !shuffle_->done(); ++i) {
    uint64_t candidate = shuffle_->Next(&rng_);
    // Locate the run holding this candidate ordinal.
    size_t run = static_cast<size_t>(
        std::upper_bound(cumulative_.begin(), cumulative_.end(), candidate) -
        cumulative_.begin() - 1);
    uint32_t index = static_cast<uint32_t>(candidate - cumulative_[run]);
    MSV_RETURN_IF_ERROR(
        tree_->ReadRecordAt(runs_[run].page, index, rec.data()));
    if (query_.Matches(layout, rec.data())) {
      batch.Append(rec.data());
      ++returned_;
    }
  }
  return batch;
}

}  // namespace msv::rtree
