#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "storage/heap_file.h"
#include "util/coding.h"
#include "util/logging.h"

namespace msv::rtree {

namespace {

using storage::HeapFile;
using storage::HeapFileWriter;

struct Mbr {
  double lo[storage::kMaxKeyDims];
  double hi[storage::kMaxKeyDims];

  static Mbr Empty(uint32_t dims) {
    Mbr m;
    for (uint32_t d = 0; d < dims; ++d) {
      m.lo[d] = std::numeric_limits<double>::infinity();
      m.hi[d] = -std::numeric_limits<double>::infinity();
    }
    return m;
  }
  void ExpandPoint(const double* keys, uint32_t dims) {
    for (uint32_t d = 0; d < dims; ++d) {
      lo[d] = std::min(lo[d], keys[d]);
      hi[d] = std::max(hi[d], keys[d]);
    }
  }
  void ExpandMbr(const Mbr& o, uint32_t dims) {
    for (uint32_t d = 0; d < dims; ++d) {
      lo[d] = std::min(lo[d], o.lo[d]);
      hi[d] = std::max(hi[d], o.hi[d]);
    }
  }
  bool OverlapsQuery(const sampling::RangeQuery& q) const {
    for (size_t d = 0; d < q.dims; ++d) {
      if (!(q.bounds[d].lo <= hi[d] && lo[d] <= q.bounds[d].hi)) return false;
    }
    return true;
  }
};

struct ChildInfo {
  uint64_t page = 0;
  uint64_t count = 0;
  Mbr mbr;
};

void WritePageHeader(char* page, uint8_t type, uint32_t count) {
  page[0] = static_cast<char>(type);
  page[1] = page[2] = page[3] = 0;
  EncodeFixed32(page + 4, count);
}

void EncodeSuperblock(char* dst, const RTreeMeta& meta) {
  std::memset(dst, 0, format::kSuperblockSize);
  EncodeFixed64(dst, kRTreeMagic);
  EncodeFixed32(dst + 8, 1);
  EncodeFixed32(dst + 12, static_cast<uint32_t>(meta.page_size));
  EncodeFixed32(dst + 16, static_cast<uint32_t>(meta.record_size));
  EncodeFixed32(dst + 20, meta.dims);
  EncodeFixed64(dst + 24, meta.num_records);
  EncodeFixed64(dst + 32, meta.num_leaves);
  EncodeFixed64(dst + 40, meta.root_page);
  EncodeFixed32(dst + 48, meta.height);
  EncodeFixed32(dst + 52, meta.records_per_leaf);
}

Result<RTreeMeta> DecodeSuperblock(const char* src) {
  if (DecodeFixed64(src) != kRTreeMagic) {
    return Status::Corruption("bad R-tree magic");
  }
  if (DecodeFixed32(src + 8) != 1) {
    return Status::Corruption("unsupported R-tree version");
  }
  RTreeMeta meta;
  meta.page_size = DecodeFixed32(src + 12);
  meta.record_size = DecodeFixed32(src + 16);
  meta.dims = DecodeFixed32(src + 20);
  meta.num_records = DecodeFixed64(src + 24);
  meta.num_leaves = DecodeFixed64(src + 32);
  meta.root_page = DecodeFixed64(src + 40);
  meta.height = DecodeFixed32(src + 48);
  meta.records_per_leaf = DecodeFixed32(src + 52);
  if (meta.page_size == 0 || meta.record_size == 0 || meta.dims == 0) {
    return Status::Corruption("implausible R-tree superblock");
  }
  return meta;
}

}  // namespace

Status RTreeOptions::Validate(const storage::RecordLayout& layout) const {
  MSV_RETURN_IF_ERROR(layout.Validate());
  if (dims < 1 || dims > layout.key_dims()) {
    return Status::InvalidArgument("dims incompatible with record layout");
  }
  if (format::LeafCapacity(page_size, layout.record_size) == 0 ||
      format::InternalCapacity(page_size, dims) < 2) {
    return Status::InvalidArgument("page too small");
  }
  return Status::OK();
}

Status BuildRTree(io::Env* env, const std::string& input_name,
                  const std::string& output_name,
                  const storage::RecordLayout& layout,
                  const RTreeOptions& options) {
  MSV_RETURN_IF_ERROR(options.Validate(layout));
  const uint32_t dims = options.dims;
  const size_t record_size = layout.record_size;
  const size_t leaf_cap = format::LeafCapacity(options.page_size, record_size);

  // ----- STR step 1: sort by dimension 0.
  const std::string byx_name = output_name + ".byx";
  {
    extsort::SortOptions sort_options = options.sort;
    sort_options.temp_prefix = output_name + ".r1run";
    MSV_RETURN_IF_ERROR(extsort::ExternalSort(
        env, input_name, byx_name,
        [&layout](const char* a, const char* b) {
          return layout.Key(a, 0) < layout.Key(b, 0);
        },
        sort_options));
  }

  MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> byx,
                       HeapFile::Open(env, byx_name));
  const uint64_t num_records = byx->record_count();
  const uint64_t num_leaf_pages =
      std::max<uint64_t>(1, (num_records + leaf_cap - 1) / leaf_cap);
  const uint64_t num_slices = static_cast<uint64_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaf_pages))));
  const uint64_t slice_records = std::max<uint64_t>(
      1, leaf_cap * ((num_leaf_pages + num_slices - 1) / num_slices));

  // ----- STR step 2: tag records with their slice id.
  const std::string tagged_name = output_name + ".tagged";
  {
    MSV_ASSIGN_OR_RETURN(
        std::unique_ptr<HeapFileWriter> writer,
        HeapFileWriter::Create(env, tagged_name, record_size + 4));
    std::vector<char> buf(record_size + 4);
    auto scanner = byx->NewScanner();
    for (uint64_t i = 0;; ++i) {
      MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
      if (rec == nullptr) break;
      EncodeFixed32(buf.data(), static_cast<uint32_t>(i / slice_records));
      std::memcpy(buf.data() + 4, rec, record_size);
      MSV_RETURN_IF_ERROR(writer->Append(buf.data()));
    }
    MSV_RETURN_IF_ERROR(writer->Finish());
  }
  byx.reset();
  env->DeleteFile(byx_name).IgnoreError();  // best-effort scratch cleanup

  // ----- STR step 3: sort by (slice, dimension 1 [, dim 2 ...]).
  const std::string placed_name = output_name + ".placed";
  {
    extsort::SortOptions sort_options = options.sort;
    sort_options.temp_prefix = output_name + ".r2run";
    MSV_RETURN_IF_ERROR(extsort::ExternalSort(
        env, tagged_name, placed_name,
        [&layout, dims](const char* a, const char* b) {
          uint32_t sa = DecodeFixed32(a), sb = DecodeFixed32(b);
          if (sa != sb) return sa < sb;
          for (uint32_t d = 1; d < dims; ++d) {
            double ka = layout.Key(a + 4, d), kb = layout.Key(b + 4, d);
            if (ka != kb) return ka < kb;
          }
          return false;
        },
        sort_options));
  }
  env->DeleteFile(tagged_name).IgnoreError();  // best-effort scratch cleanup

  // ----- Pack leaves, then internal levels bottom-up.
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> out,
                       env->OpenFile(output_name, /*create=*/true));
  MSV_RETURN_IF_ERROR(out->Truncate(0));

  const size_t page_size = options.page_size;
  std::vector<char> page(page_size, 0);
  std::vector<ChildInfo> level;
  uint64_t next_page = 1;
  {
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> placed,
                         HeapFile::Open(env, placed_name));
    auto scanner = placed->NewScanner();
    uint64_t remaining = placed->record_count();
    double keys[storage::kMaxKeyDims] = {0};
    while (remaining > 0) {
      size_t n =
          static_cast<size_t>(std::min<uint64_t>(leaf_cap, remaining));
      std::memset(page.data(), 0, page_size);
      WritePageHeader(page.data(), format::kLeafPage,
                      static_cast<uint32_t>(n));
      Mbr mbr = Mbr::Empty(dims);
      for (size_t i = 0; i < n; ++i) {
        MSV_ASSIGN_OR_RETURN(const char* rec, scanner.Next());
        MSV_CHECK(rec != nullptr);
        std::memcpy(page.data() + format::kPageHeaderSize + i * record_size,
                    rec + 4, record_size);
        for (uint32_t d = 0; d < dims; ++d) {
          keys[d] = layout.Key(rec + 4, d);
        }
        mbr.ExpandPoint(keys, dims);
      }
      remaining -= n;
      MSV_RETURN_IF_ERROR(
          out->Write(next_page * page_size, page.data(), page_size));
      level.push_back(ChildInfo{next_page, n, mbr});
      ++next_page;
    }
  }
  env->DeleteFile(placed_name).IgnoreError();  // best-effort scratch cleanup

  RTreeMeta meta;
  meta.page_size = page_size;
  meta.record_size = record_size;
  meta.dims = dims;
  meta.num_records = num_records;
  meta.num_leaves = level.size();
  meta.records_per_leaf = static_cast<uint32_t>(leaf_cap);
  meta.height = 1;

  if (level.empty()) {
    std::memset(page.data(), 0, page_size);
    WritePageHeader(page.data(), format::kLeafPage, 0);
    MSV_RETURN_IF_ERROR(
        out->Write(next_page * page_size, page.data(), page_size));
    level.push_back(ChildInfo{next_page, 0, Mbr::Empty(dims)});
    meta.num_leaves = 1;
    ++next_page;
  }

  const size_t internal_cap = format::InternalCapacity(page_size, dims);
  const size_t entry_size = format::InternalEntrySize(dims);
  while (level.size() > 1) {
    std::vector<ChildInfo> parents;
    for (size_t i = 0; i < level.size(); i += internal_cap) {
      size_t n = std::min(internal_cap, level.size() - i);
      std::memset(page.data(), 0, page_size);
      WritePageHeader(page.data(), format::kInternalPage,
                      static_cast<uint32_t>(n));
      ChildInfo parent;
      parent.page = next_page;
      parent.mbr = Mbr::Empty(dims);
      for (size_t j = 0; j < n; ++j) {
        const ChildInfo& child = level[i + j];
        char* entry =
            page.data() + format::kPageHeaderSize + j * entry_size;
        EncodeFixed64(entry, child.page);
        EncodeFixed64(entry + 8, child.count);
        for (uint32_t d = 0; d < dims; ++d) {
          EncodeDouble(entry + 16 + 16 * d, child.mbr.lo[d]);
          EncodeDouble(entry + 24 + 16 * d, child.mbr.hi[d]);
        }
        parent.count += child.count;
        parent.mbr.ExpandMbr(child.mbr, dims);
      }
      MSV_RETURN_IF_ERROR(
          out->Write(next_page * page_size, page.data(), page_size));
      parents.push_back(parent);
      ++next_page;
    }
    level = std::move(parents);
    ++meta.height;
  }
  meta.root_page = level[0].page;

  std::memset(page.data(), 0, page_size);
  EncodeSuperblock(page.data(), meta);
  MSV_RETURN_IF_ERROR(out->Write(0, page.data(), page_size));
  return out->Sync();
}

Result<std::unique_ptr<RTree>> RTree::Open(io::Env* env,
                                           const std::string& name,
                                           const storage::RecordLayout& layout,
                                           io::BufferPool* pool,
                                           uint64_t file_id) {
  MSV_ASSIGN_OR_RETURN(std::unique_ptr<io::File> file,
                       env->OpenFile(name, /*create=*/false));
  char header[format::kSuperblockSize];
  MSV_RETURN_IF_ERROR(file->ReadExact(0, sizeof(header), header));
  MSV_ASSIGN_OR_RETURN(RTreeMeta meta, DecodeSuperblock(header));
  if (meta.record_size != layout.record_size) {
    return Status::InvalidArgument("layout record size mismatch");
  }
  if (pool->page_size() != meta.page_size) {
    return Status::InvalidArgument("buffer pool page size mismatch");
  }
  return std::unique_ptr<RTree>(
      new RTree(std::move(file), layout, pool, file_id, meta));
}

Result<io::PageRef> RTree::GetPage(uint64_t page_no) const {
  return pool_->Get(file_.get(), file_id_, page_no);
}

Result<std::vector<CandidateRun>> RTree::CollectCandidates(
    const sampling::RangeQuery& query) const {
  if (query.dims > meta_.dims) {
    return Status::InvalidArgument("query dims exceed tree dims");
  }
  std::vector<CandidateRun> runs;
  std::vector<uint64_t> stack{meta_.root_page};
  const size_t entry_size = format::InternalEntrySize(meta_.dims);
  while (!stack.empty()) {
    uint64_t page_no = stack.back();
    stack.pop_back();
    MSV_ASSIGN_OR_RETURN(io::PageRef page, GetPage(page_no));
    const char* data = page.data();
    uint8_t type = static_cast<uint8_t>(data[0]);
    uint32_t count = DecodeFixed32(data + 4);
    if (type == format::kLeafPage) {
      runs.push_back(CandidateRun{page_no, count});
      continue;
    }
    if (type != format::kInternalPage) {
      return Status::Corruption("unknown R-tree page type");
    }
    for (uint32_t i = 0; i < count; ++i) {
      const char* entry = data + format::kPageHeaderSize + i * entry_size;
      Mbr mbr;
      for (uint32_t d = 0; d < meta_.dims; ++d) {
        mbr.lo[d] = DecodeDouble(entry + 16 + 16 * d);
        mbr.hi[d] = DecodeDouble(entry + 24 + 16 * d);
      }
      if (mbr.OverlapsQuery(query)) {
        stack.push_back(DecodeFixed64(entry));
      }
    }
  }
  // The root was pushed unconditionally; if it is a leaf whose MBR misses
  // the query, filtering during sampling handles it.
  std::sort(runs.begin(), runs.end(),
            [](const CandidateRun& a, const CandidateRun& b) {
              return a.page < b.page;
            });
  return runs;
}

Status RTree::ReadRecordAt(uint64_t page_no, uint32_t index,
                           char* out) const {
  MSV_ASSIGN_OR_RETURN(io::PageRef page, GetPage(page_no));
  const char* data = page.data();
  if (static_cast<uint8_t>(data[0]) != format::kLeafPage) {
    return Status::InvalidArgument("not a leaf page");
  }
  uint32_t count = DecodeFixed32(data + 4);
  if (index >= count) {
    return Status::OutOfRange("record index beyond leaf count");
  }
  std::memcpy(out,
              data + format::kPageHeaderSize + index * meta_.record_size,
              meta_.record_size);
  return Status::OK();
}

}  // namespace msv::rtree
