// STR-packed R-Tree over multi-dimensional point records, used as the 2-d
// baseline of the paper's Experiment 2.
//
// Built in bulk with Sort-Tile-Recursive (Leutenegger et al., ICDE 1997):
// records are external-sorted by dimension 0, cut into vertical slices,
// each slice external-sorted by dimension 1 and packed into full leaf
// pages; internal levels are packed bottom-up with exact MBRs and subtree
// record counts (a "ranked" R-tree, the obvious extension of
// Antoshenkov's ranked B+-tree sampling to spatial data).
//
// Layout mirrors the ranked B+-tree:
//   page 0        superblock
//   pages 1..L    leaf pages (the relation itself; primary index)
//   pages L+1..   internal pages, root last
//
// Leaf page:     [type=1][nrec u32][records...]
// Internal page: [type=2][nentries u32]
//                [entries: child_page u64, count u64,
//                          per-dim (lo f64, hi f64) x dims]

#ifndef MSV_RTREE_RTREE_H_
#define MSV_RTREE_RTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "extsort/external_sorter.h"
#include "io/buffer_pool.h"
#include "io/env.h"
#include "sampling/range_query.h"
#include "storage/record.h"
#include "util/result.h"

namespace msv::rtree {

inline constexpr uint64_t kRTreeMagic = 0x3145455254525453ULL;  // "STRRTEE1"

struct RTreeOptions {
  size_t page_size = 64 << 10;
  uint32_t dims = 2;
  extsort::SortOptions sort;

  Status Validate(const storage::RecordLayout& layout) const;
};

struct RTreeMeta {
  size_t page_size = 0;
  size_t record_size = 0;
  uint32_t dims = 0;
  uint64_t num_records = 0;
  uint64_t num_leaves = 0;
  uint64_t root_page = 0;
  uint32_t height = 0;
  uint32_t records_per_leaf = 0;
};

/// Bulk-builds an STR R-tree file from a heap file.
Status BuildRTree(io::Env* env, const std::string& input_name,
                  const std::string& output_name,
                  const storage::RecordLayout& layout,
                  const RTreeOptions& options = {});

/// A leaf page overlapping some query, with its record count (sampling
/// candidate run).
struct CandidateRun {
  uint64_t page = 0;
  uint32_t count = 0;
};

class RTree {
 public:
  static Result<std::unique_ptr<RTree>> Open(
      io::Env* env, const std::string& name,
      const storage::RecordLayout& layout, io::BufferPool* pool,
      uint64_t file_id);

  const RTreeMeta& meta() const { return meta_; }
  const storage::RecordLayout& layout() const { return layout_; }

  /// All leaf pages whose MBR intersects `query`, via a root-to-leaf
  /// traversal of internal pages (charged through the buffer pool). The
  /// records on these pages are the candidate superset of the match set.
  Result<std::vector<CandidateRun>> CollectCandidates(
      const sampling::RangeQuery& query) const;

  /// Copies record `index` of leaf `page` into `out`.
  Status ReadRecordAt(uint64_t page, uint32_t index, char* out) const;

 private:
  RTree(std::unique_ptr<io::File> file, const storage::RecordLayout& layout,
        io::BufferPool* pool, uint64_t file_id, RTreeMeta meta)
      : file_(std::move(file)),
        layout_(layout),
        pool_(pool),
        file_id_(file_id),
        meta_(meta) {}

  Result<io::PageRef> GetPage(uint64_t page_no) const;

  std::unique_ptr<io::File> file_;
  storage::RecordLayout layout_;
  io::BufferPool* pool_;
  uint64_t file_id_;
  RTreeMeta meta_;
};

namespace format {
inline constexpr uint8_t kLeafPage = 1;
inline constexpr uint8_t kInternalPage = 2;
inline constexpr size_t kPageHeaderSize = 8;
inline constexpr size_t kSuperblockSize = 96;

inline size_t InternalEntrySize(uint32_t dims) { return 16 + 16ul * dims; }
inline size_t LeafCapacity(size_t page_size, size_t record_size) {
  return (page_size - kPageHeaderSize) / record_size;
}
inline size_t InternalCapacity(size_t page_size, uint32_t dims) {
  return (page_size - kPageHeaderSize) / InternalEntrySize(dims);
}
}  // namespace format

}  // namespace msv::rtree

#endif  // MSV_RTREE_RTREE_H_
