// Structured, leveled, thread-safe logging plus the slow-query ledger.
//
// Three layers:
//
//  1. StructuredLogger — the process logger every diagnostic routes
//     through. It installs itself as util/logging's LogSinkFn at
//     static-init time (any binary linking msv_obs gets it), so the
//     existing MSV_LOG(...) << ... call sites keep working unchanged
//     while gaining: a JSON-lines file sink (MSV_LOG_FILE or
//     OpenJsonSink), per-site rate limiting (a runaway loop logging
//     every iteration cannot flood the sink), and structured key=value
//     fields via LogEvent(). MSV_LOG_LEVEL=debug|info|warn|error sets
//     the global threshold at startup.
//
//  2. SlowQueryLog — a bounded ring of per-statement cost records
//     (wall µs, modeled disk µs, pool pages touched, samples drawn,
//     final CI half-width, session label) that the executor appends to
//     whenever a statement's wall time crosses the armed threshold
//     (MSV_SLOW_QUERY_US, or set_threshold_us in-process). Disarmed
//     cost: one relaxed atomic load per statement.
//
//  3. StatementLedger — a thread-local scratchpad the execution layer
//     fills in (samples emitted, CI width reached) so the slow-query
//     record can carry statistics the executor's dispatch loop doesn't
//     otherwise see. Reset at statement start by the executor.

#ifndef MSV_OBS_LOG_H_
#define MSV_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "util/logging.h"
#include "util/sync.h"

namespace msv::obs {

/// One structured field: string key, Json value (string/number/bool).
using LogFields = std::vector<std::pair<std::string, Json>>;

class StructuredLogger {
 public:
  /// The process-wide logger. First use applies MSV_LOG_LEVEL /
  /// MSV_LOG_FILE and installs the util/logging sink (idempotent).
  static StructuredLogger& Global();

  /// Emits one record: a human-readable line on stderr (same
  /// "[LEVEL file:line] message" shape the default sink prints, with
  /// " key=value" appended per field) and, when a JSON sink is open,
  /// one JSON object line {"ts_us","level","site","msg",...fields}.
  /// Level filtering happened at the MSV_LOG macro; LogEvent callers
  /// are filtered here against msv::GetLogLevel().
  void Log(LogLevel level, const char* file, int line,
           const std::string& message, const LogFields& fields = {});

  /// Opens (append) the JSON-lines sink; replaces any open one.
  Status OpenJsonSink(const std::string& path);
  void CloseJsonSink();
  bool json_sink_open() const;

  /// Suppresses the human stderr line (JSON sink still written) — used
  /// by tests and by msv_top, whose terminal the logger must not paint.
  void set_stderr_enabled(bool on) { stderr_enabled_.store(on); }

  /// Per-site flood control: at most `limit` records per site (file:line)
  /// per `window_us`; further records are dropped and accounted, and the
  /// first record of the next window carries a "suppressed=N" field.
  /// limit 0 disables rate limiting.
  void set_site_limit(uint64_t limit, uint64_t window_us = 1000000);

  /// Drops per-site rate-limiter state (tests).
  void ResetSites();

  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  StructuredLogger() = default;

  struct SiteState {
    uint64_t window_start_us = 0;
    uint64_t count = 0;
    uint64_t suppressed = 0;
  };

  /// Returns false when the record should be dropped; *carry_suppressed
  /// reports how many drops from the previous window to surface.
  bool AdmitSite(const std::string& site, uint64_t now_us,
                 uint64_t* carry_suppressed);

  std::atomic<bool> stderr_enabled_{true};
  std::atomic<uint64_t> site_limit_{100};
  std::atomic<uint64_t> site_window_us_{1000000};
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> suppressed_{0};

  mutable Mutex mu_;
  std::map<std::string, SiteState> sites_ MSV_GUARDED_BY(mu_);
  /// JSON sink: FILE* kept behind the mutex so concurrent writers
  /// produce whole lines.
  std::FILE* json_file_ MSV_GUARDED_BY(mu_) = nullptr;
};

/// Ensures the structured logger is installed as the MSV_LOG sink and
/// env configuration applied. Idempotent, cheap after the first call.
/// Linked-in static init already calls it; tools may call it explicitly
/// to be robust against static-initialization elision.
void InitLogging();

/// Structured emission helper for call sites that have fields:
///   obs::LogEvent(LogLevel::kWarn, __FILE__, __LINE__, "pool stall",
///                 {{"pages", 42}, {"session", label}});
void LogEvent(LogLevel level, const char* file, int line,
              const std::string& message, const LogFields& fields);

// ---------------------------------------------------------------------------
// Slow-query ledger
// ---------------------------------------------------------------------------

struct SlowQueryRecord {
  uint64_t ts_us = 0;        ///< wall clock (system_clock since epoch)
  uint64_t wall_us = 0;      ///< statement wall time
  uint64_t disk_us = 0;      ///< modeled disk busy time on this thread
  uint64_t pages = 0;        ///< buffer-pool pages acquired on this thread
  uint64_t samples = 0;      ///< samples drawn (from the StatementLedger)
  double ci_half_width = 0;  ///< final CI half-width (0 when n/a)
  std::string statement;     ///< statement kind ("estimate", "sample", ...)
  std::string session;       ///< obs::ThreadLabel() at execution time
  bool ok = true;
  std::string error;         ///< status message when !ok

  Json ToJson() const;
};

/// Bounded MPMC ring of the most recent slow statements. Arming is a
/// relaxed atomic threshold so the disarmed hot path costs one load.
class SlowQueryLog {
 public:
  static SlowQueryLog& Global();

  explicit SlowQueryLog(size_t capacity = 128) : capacity_(capacity) {}

  /// Applies MSV_SLOW_QUERY_US (unset/empty/0 = disarmed). Called by
  /// the executor at Open so serving picks the env up automatically.
  void ArmFromEnv();

  void set_threshold_us(uint64_t us) {
    threshold_us_.store(us, std::memory_order_relaxed);
  }
  uint64_t threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }
  bool armed() const { return threshold_us() != 0; }

  void set_capacity(size_t capacity);

  /// Appends, evicting the oldest record once full. Also mirrors the
  /// record onto the structured logger at Warn level.
  void Record(SlowQueryRecord rec);

  /// Oldest-first copy of the ring.
  std::vector<SlowQueryRecord> Snapshot() const;
  size_t size() const;
  void Clear();

  /// Total records ever admitted (survives ring eviction).
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }

  Json ToJson() const;

 private:
  std::atomic<uint64_t> threshold_us_{0};
  std::atomic<uint64_t> total_{0};
  mutable Mutex mu_;
  size_t capacity_ MSV_GUARDED_BY(mu_);
  std::deque<SlowQueryRecord> ring_ MSV_GUARDED_BY(mu_);
};

/// Thread-local per-statement statistics scratchpad (see file comment).
/// The estimate block is filled by the executor's ESTIMATE path so the
/// serving layer can surface a structured result (value, achieved CI,
/// partiality under a WITHIN deadline) without parsing the text output.
struct StatementLedger {
  uint64_t samples = 0;
  double ci_half_width = 0.0;

  /// True when the statement produced a point estimate (the fields below
  /// are meaningful).
  bool has_estimate = false;
  double estimate_value = 0.0;
  double confidence = 0.0;
  /// WITHIN targets as parsed (0 = clause absent) ...
  double target_rel_pct = 0.0;
  uint64_t deadline_us = 0;
  /// ... and what happened: budget consumed (wall + modeled disk µs) and
  /// whether a deadline fired before the stream or the error bound was
  /// done (the estimate is then partial: valid CI, wider than asked).
  uint64_t elapsed_us = 0;
  bool is_partial = false;

  void Reset() { *this = StatementLedger(); }
};

StatementLedger& ThreadStatementLedger();

/// Wall clock now, µs since the Unix epoch (system_clock).
uint64_t WallTimeUs();

}  // namespace msv::obs

#endif  // MSV_OBS_LOG_H_
