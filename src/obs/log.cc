#include "obs/log.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace msv::obs {

namespace {

const char* Basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* LevelNameLower(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

/// Compact rendering of a Json scalar for the human "key=value" suffix.
std::string FieldText(const Json& v) {
  if (v.type() == Json::Type::kString) return v.AsString();
  return v.Dump();
}

void SinkTrampoline(LogLevel level, const char* file, int line,
                    const std::string& message) {
  StructuredLogger::Global().Log(level, file, line, message);
}

std::atomic<bool> g_logging_initialized{false};

/// Any binary linking msv_obs routes MSV_LOG through the structured
/// logger from static-init on.
struct LoggingRegistrar {
  LoggingRegistrar() { InitLogging(); }
};
LoggingRegistrar g_logging_registrar;

}  // namespace

uint64_t WallTimeUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

StructuredLogger& StructuredLogger::Global() {
  // Leaked singleton: log statements run in static destructors.
  static StructuredLogger* logger =
      new StructuredLogger();  // NOLINT(msv-naked-new)
  return *logger;
}

void InitLogging() {
  bool expected = false;
  if (!g_logging_initialized.compare_exchange_strong(expected, true)) return;
  // Read-only env lookups; the process never calls setenv concurrently.
  const char* lvl = std::getenv("MSV_LOG_LEVEL");  // NOLINT(concurrency-mt-unsafe)
  if (lvl && *lvl) {
    std::string s = lvl;
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    if (s == "debug") {
      SetLogLevel(LogLevel::kDebug);
    } else if (s == "info") {
      SetLogLevel(LogLevel::kInfo);
    } else if (s == "warn" || s == "warning") {
      SetLogLevel(LogLevel::kWarn);
    } else if (s == "error") {
      SetLogLevel(LogLevel::kError);
    }
  }
  const char* path = std::getenv("MSV_LOG_FILE");  // NOLINT(concurrency-mt-unsafe)
  if (path && *path) {
    // Best-effort: an unopenable path must not take the process down.
    StructuredLogger::Global().OpenJsonSink(path).IgnoreError();
  }
  SetLogSink(&SinkTrampoline);
}

bool StructuredLogger::AdmitSite(const std::string& site, uint64_t now_us,
                                 uint64_t* carry_suppressed) {
  *carry_suppressed = 0;
  uint64_t limit = site_limit_.load(std::memory_order_relaxed);
  if (limit == 0) return true;
  uint64_t window = site_window_us_.load(std::memory_order_relaxed);
  MutexLock lock(mu_);
  SiteState& s = sites_[site];
  if (s.window_start_us == 0 || now_us < s.window_start_us ||
      now_us - s.window_start_us >= window) {
    *carry_suppressed = s.suppressed;
    s.window_start_us = now_us;
    s.count = 0;
    s.suppressed = 0;
  }
  if (s.count >= limit) {
    ++s.suppressed;
    return false;
  }
  ++s.count;
  return true;
}

void StructuredLogger::Log(LogLevel level, const char* file, int line,
                           const std::string& message,
                           const LogFields& fields) {
  const char* base = Basename(file);
  std::string site = std::string(base) + ":" + std::to_string(line);
  uint64_t now_us = WallTimeUs();
  uint64_t carry = 0;
  if (!AdmitSite(site, now_us, &carry)) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);

  if (stderr_enabled_.load(std::memory_order_relaxed)) {
    std::string text = "[" + std::string(LevelName(level)) + " " + site + "] " +
                       message;
    for (const auto& [k, v] : fields) {
      text += " " + k + "=" + FieldText(v);
    }
    if (carry > 0) text += " suppressed=" + std::to_string(carry);
    // The one sanctioned raw-stderr write: this IS the logger.
    std::fprintf(stderr, "%s\n", text.c_str());  // NOLINT(msv-raw-logging)
  }

  MutexLock lock(mu_);
  if (!json_file_) return;
  Json rec = Json::Object();
  rec["ts_us"] = now_us;
  rec["level"] = LevelNameLower(level);
  rec["site"] = site;
  rec["msg"] = message;
  for (const auto& [k, v] : fields) {
    rec[k] = v;
  }
  if (carry > 0) rec["suppressed"] = carry;
  std::string out = rec.Dump();
  out.push_back('\n');
  std::fwrite(out.data(), 1, out.size(), json_file_);
  std::fflush(json_file_);
}

Status StructuredLogger::OpenJsonSink(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ae");
  if (!f) {
    return Status::IOError("cannot open log sink " + path);
  }
  MutexLock lock(mu_);
  if (json_file_) std::fclose(json_file_);
  json_file_ = f;
  return Status::OK();
}

void StructuredLogger::CloseJsonSink() {
  MutexLock lock(mu_);
  if (json_file_) {
    std::fclose(json_file_);
    json_file_ = nullptr;
  }
}

bool StructuredLogger::json_sink_open() const {
  MutexLock lock(mu_);
  return json_file_ != nullptr;
}

void StructuredLogger::set_site_limit(uint64_t limit, uint64_t window_us) {
  site_limit_.store(limit, std::memory_order_relaxed);
  site_window_us_.store(window_us, std::memory_order_relaxed);
}

void StructuredLogger::ResetSites() {
  MutexLock lock(mu_);
  sites_.clear();
}

void LogEvent(LogLevel level, const char* file, int line,
              const std::string& message, const LogFields& fields) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) return;
  StructuredLogger::Global().Log(level, file, line, message, fields);
}

// ---------------------------------------------------------------------------
// Slow-query ledger
// ---------------------------------------------------------------------------

Json SlowQueryRecord::ToJson() const {
  Json j = Json::Object();
  j["ts_us"] = ts_us;
  j["wall_us"] = wall_us;
  j["disk_us"] = disk_us;
  j["pages"] = pages;
  j["samples"] = samples;
  j["ci_half_width"] = ci_half_width;
  j["statement"] = statement;
  j["session"] = session;
  j["ok"] = ok;
  if (!ok) j["error"] = error;
  return j;
}

SlowQueryLog& SlowQueryLog::Global() {
  // Leaked singleton: recorded from executor paths that may run during
  // static destruction of test fixtures.
  static SlowQueryLog* log = new SlowQueryLog();  // NOLINT(msv-naked-new)
  return *log;
}

void SlowQueryLog::ArmFromEnv() {
  // Read-only env lookup; the process never calls setenv concurrently.
  const char* us = std::getenv("MSV_SLOW_QUERY_US");  // NOLINT(concurrency-mt-unsafe)
  if (!us || !*us) return;
  char* end = nullptr;
  unsigned long long v = std::strtoull(us, &end, 10);
  if (end == us) return;
  set_threshold_us(v);
}

void SlowQueryLog::set_capacity(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity;
  while (ring_.size() > capacity_) ring_.pop_front();
}

void SlowQueryLog::Record(SlowQueryRecord rec) {
  total_.fetch_add(1, std::memory_order_relaxed);
  LogEvent(LogLevel::kWarn, __FILE__, __LINE__, "slow query",
           {{"statement", rec.statement},
            {"session", rec.session},
            {"wall_us", rec.wall_us},
            {"disk_us", rec.disk_us},
            {"pages", rec.pages},
            {"samples", rec.samples},
            {"ci_half_width", rec.ci_half_width},
            {"ok", rec.ok}});
  MutexLock lock(mu_);
  ring_.push_back(std::move(rec));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  MutexLock lock(mu_);
  return std::vector<SlowQueryRecord>(ring_.begin(), ring_.end());
}

size_t SlowQueryLog::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

void SlowQueryLog::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
}

Json SlowQueryLog::ToJson() const {
  Json arr = Json::Array();
  for (const SlowQueryRecord& rec : Snapshot()) {
    arr.Append(rec.ToJson());
  }
  return arr;
}

StatementLedger& ThreadStatementLedger() {
  static thread_local StatementLedger ledger;
  return ledger;
}

}  // namespace msv::obs
