#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace msv::obs {

namespace {

const std::vector<double>& LogLinearEdgesSingleton() {
  // Leaked singleton: metrics outlive static destruction order.
  static const std::vector<double>* edges =
      new std::vector<double>(  // NOLINT(msv-naked-new)
          bucketing::LogLinearEdges(LogHistogram::kMaxOctave,
                                    LogHistogram::kSubBuckets));
  return *edges;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

LogHistogram::LogHistogram() : counts_(LogLinearEdgesSingleton().size() - 1) {}

const std::vector<double>& LogHistogram::edges() const {
  return LogLinearEdgesSingleton();
}

const std::vector<double>& LogHistogram::BucketEdges() {
  return LogLinearEdgesSingleton();
}

void LogHistogram::SnapshotCells(std::vector<uint64_t>* counts,
                                 uint64_t* overflow) const {
  counts->resize(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    (*counts)[i] = counts_[i].load(std::memory_order_relaxed);
  }
  *overflow = overflow_.load(std::memory_order_relaxed);
}

void LogHistogram::Record(uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  const std::vector<double>& e = edges();
  double v = static_cast<double>(value);
  if (v >= e.back()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  size_t i = bucketing::BucketFor(e, v);
  counts_[i].fetch_add(1, std::memory_order_relaxed);
}

double LogHistogram::Quantile(double q) const {
  std::vector<uint64_t> counts(counts_.size());
  uint64_t in_range = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    in_range += counts[i];
  }
  uint64_t over = overflow_.load(std::memory_order_relaxed);
  // Total from the cells themselves, so a snapshot racing with Record()
  // stays internally consistent.
  return bucketing::QuantileFromCounts(edges(), counts.data(), /*underflow=*/0,
                                       over, in_range + over, q);
}

std::string LogHistogram::ToString() const {
  std::vector<uint64_t> counts(counts_.size());
  uint64_t in_range = 0;
  double min_seen = 0.0, max_seen = 0.0;
  bool any = false;
  const std::vector<double>& e = edges();
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    in_range += counts[i];
    if (counts[i] > 0) {
      if (!any) min_seen = e[i];
      max_seen = e[i + 1];
      any = true;
    }
  }
  double m = in_range ? static_cast<double>(sum()) /
                            static_cast<double>(in_range)
                      : 0.0;
  return bucketing::RenderCounts(e, counts.data(), in_range, m, min_seen,
                                 max_seen);
}

MetricRegistry& MetricRegistry::Global() {
  // Leaked singleton: counters are bumped from destructors of objects
  // with static storage duration; never destroy the registry.
  static MetricRegistry* registry = new MetricRegistry();  // NOLINT(msv-naked-new)
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  MSV_DCHECK(gauges_.find(name) == gauges_.end());
  MSV_DCHECK(histograms_.find(name) == histograms_.end());
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
    ++version_;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  MSV_DCHECK(counters_.find(name) == counters_.end());
  MSV_DCHECK(histograms_.find(name) == histograms_.end());
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    ++version_;
  }
  return it->second.get();
}

LogHistogram* MetricRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  MSV_DCHECK(counters_.find(name) == counters_.end());
  MSV_DCHECK(gauges_.find(name) == gauges_.end());
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<LogHistogram>()).first;
    ++version_;
  }
  return it->second.get();
}

std::string MetricRegistry::Labeled(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return name;
  std::string out = name + "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

void MetricRegistry::BeginEpoch() {
  MutexLock lock(mu_);
  ++epoch_;
  for (const auto& [name, c] : counters_) {
    counter_baselines_[name] = c->Value();
  }
}

uint64_t MetricRegistry::epoch() const {
  MutexLock lock(mu_);
  return epoch_;
}

uint64_t MetricRegistry::version() const {
  MutexLock lock(mu_);
  return version_;
}

void MetricRegistry::ListCounters(
    std::vector<std::pair<std::string, Counter*>>* out) const {
  MutexLock lock(mu_);
  out->clear();
  out->reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out->emplace_back(name, c.get());
  }
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.epoch = epoch_;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    CounterSample s;
    s.name = name;
    s.total = c->Value();
    auto base = counter_baselines_.find(name);
    uint64_t baseline = base == counter_baselines_.end() ? 0 : base->second;
    // A counter registered after BeginEpoch() has baseline 0; its whole
    // total belongs to the current epoch.
    s.since_epoch = s.total >= baseline ? s.total - baseline : 0;
    snap.counters.push_back(std::move(s));
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back(GaugeSample{name, g->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.mean = h->mean();
    s.p50 = h->P50();
    s.p95 = h->P95();
    s.p99 = h->P99();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "# epoch %llu\n",
                static_cast<unsigned long long>(epoch));
  out += line;
  for (const CounterSample& c : counters) {
    std::snprintf(line, sizeof(line), "%s %llu (epoch %llu)\n",
                  c.name.c_str(), static_cast<unsigned long long>(c.total),
                  static_cast<unsigned long long>(c.since_epoch));
    out += line;
  }
  for (const GaugeSample& g : gauges) {
    out += g.name + " " + FormatDouble(g.value) + "\n";
  }
  for (const HistogramSample& h : histograms) {
    std::snprintf(line, sizeof(line),
                  "%s count=%llu mean=%s p50=%s p95=%s p99=%s\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  FormatDouble(h.mean).c_str(), FormatDouble(h.p50).c_str(),
                  FormatDouble(h.p95).c_str(), FormatDouble(h.p99).c_str());
    out += line;
  }
  return out;
}

Json MetricsSnapshot::ToJson() const {
  Json root = Json::Object();
  root["epoch"] = epoch;
  Json jc = Json::Object();
  for (const CounterSample& c : counters) {
    Json entry = Json::Object();
    entry["total"] = c.total;
    entry["since_epoch"] = c.since_epoch;
    jc[c.name] = std::move(entry);
  }
  root["counters"] = std::move(jc);
  Json jg = Json::Object();
  for (const GaugeSample& g : gauges) {
    jg[g.name] = g.value;
  }
  root["gauges"] = std::move(jg);
  Json jh = Json::Object();
  for (const HistogramSample& h : histograms) {
    Json entry = Json::Object();
    entry["count"] = h.count;
    entry["mean"] = h.mean;
    entry["p50"] = h.p50;
    entry["p95"] = h.p95;
    entry["p99"] = h.p99;
    jh[h.name] = std::move(entry);
  }
  root["histograms"] = std::move(jh);
  return root;
}

}  // namespace msv::obs
