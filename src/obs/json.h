// Minimal JSON document model for the observability exporters (metrics
// snapshots, trace dumps, BENCH_* records) and their round-trip tests.
//
// Deliberately tiny: null / bool / number / string / array / object,
// UTF-8 passed through verbatim, numbers stored as double (exporter
// values are counters and microsecond totals, well inside the 2^53
// integer-exact range). \uXXXX escapes decode to UTF-8, including
// surrogate pairs for supplementary-plane code points; lone surrogates
// are rejected. Not a general-purpose parser — no comments — but
// Parse(Dump(x)) == x for everything the exporters emit, which is the
// contract the golden tests pin down.

#ifndef MSV_OBS_JSON_H_
#define MSV_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace msv::obs {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT(implicit)
  Json(double n) : type_(Type::kNumber), number_(n) {}    // NOLINT(implicit)
  Json(int n) : Json(static_cast<double>(n)) {}           // NOLINT(implicit)
  Json(int64_t n) : Json(static_cast<double>(n)) {}       // NOLINT(implicit)
  Json(uint64_t n) : Json(static_cast<double>(n)) {}      // NOLINT(implicit)
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  /// Array access. Append() requires kArray.
  void Append(Json v);
  size_t size() const { return array_.size(); }
  const Json& at(size_t i) const { return array_[i]; }
  const std::vector<Json>& items() const { return array_; }

  /// Object access. operator[] inserts a null member on first use and
  /// requires kObject; Find returns nullptr when absent.
  Json& operator[](const std::string& key);
  const Json* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }

  /// Serializes. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits the compact single-line form.
  std::string Dump(int indent = 0) const;

  /// Parses one JSON document (trailing whitespace allowed).
  static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  /// Insertion-ordered so exporter output is deterministic.
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace msv::obs

#endif  // MSV_OBS_JSON_H_
