#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>

#include "obs/log.h"
#include "obs/trace.h"

namespace msv::obs {

namespace {

/// Counter total by name in a snapshot (sorted by name — binary search).
bool CounterTotal(const MetricsSnapshot& snap, const std::string& name,
                  uint64_t* total) {
  auto it = std::lower_bound(
      snap.counters.begin(), snap.counters.end(), name,
      [](const CounterSample& s, const std::string& n) { return s.name < n; });
  if (it == snap.counters.end() || it->name != name) return false;
  *total = it->total;
  return true;
}

}  // namespace

TimeSeries::TimeSeries(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeries::Push(TimeSeriesPoint point) {
  MutexLock lock(mu_);
  ring_.push_back(std::move(point));
  while (ring_.size() > capacity_) ring_.pop_front();
}

size_t TimeSeries::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

std::vector<TimeSeriesPoint> TimeSeries::Points() const {
  MutexLock lock(mu_);
  return std::vector<TimeSeriesPoint>(ring_.begin(), ring_.end());
}

TimeSeriesPoint TimeSeries::Latest() const {
  MutexLock lock(mu_);
  if (ring_.empty()) return TimeSeriesPoint{};
  return ring_.back();
}

void TimeSeries::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
}

uint64_t TimeSeries::CounterDelta(const std::string& name,
                                  uint64_t window_us) const {
  MutexLock lock(mu_);
  if (ring_.size() < 2) return 0;
  const TimeSeriesPoint& newest = ring_.back();
  // Oldest point still inside the window; falls back to the ring's
  // oldest when the window outspans the ring.
  const TimeSeriesPoint* base = &ring_.front();
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (newest.ts_us - it->ts_us >= window_us) {
      base = &*it;
      break;
    }
  }
  if (base == &newest) return 0;
  uint64_t from = 0, to = 0;
  if (!CounterTotal(base->snapshot, name, &from)) from = 0;
  if (!CounterTotal(newest.snapshot, name, &to)) return 0;
  return to >= from ? to - from : 0;
}

double TimeSeries::CounterRate(const std::string& name,
                               uint64_t window_us) const {
  MutexLock lock(mu_);
  if (ring_.size() < 2) return 0.0;
  const TimeSeriesPoint& newest = ring_.back();
  const TimeSeriesPoint* base = &ring_.front();
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (newest.ts_us - it->ts_us >= window_us) {
      base = &*it;
      break;
    }
  }
  if (base == &newest || newest.ts_us <= base->ts_us) return 0.0;
  uint64_t span_us = newest.ts_us - base->ts_us;
  uint64_t from = 0, to = 0;
  if (!CounterTotal(base->snapshot, name, &from)) from = 0;
  if (!CounterTotal(newest.snapshot, name, &to)) return 0.0;
  uint64_t delta = to >= from ? to - from : 0;
  return static_cast<double>(delta) * 1e6 / static_cast<double>(span_us);
}

Json ExportPointJson(const TimeSeriesPoint& point,
                     bool include_slow_queries) {
  Json j = Json::Object();
  j["ts_us"] = point.ts_us;
  j["metrics"] = point.snapshot.ToJson();
  if (include_slow_queries) {
    j["slow_queries"] = SlowQueryLog::Global().ToJson();
  }
  return j;
}

MetricsPoller::MetricsPoller(MetricsPollerOptions options)
    : options_(std::move(options)),
      registry_(options_.registry ? options_.registry
                                  : &MetricRegistry::Global()),
      series_(options_.capacity) {}

MetricsPoller::~MetricsPoller() {
  Stop();
  MutexLock lock(export_mu_);
  if (export_file_) {
    std::fclose(export_file_);
    export_file_ = nullptr;
  }
}

void MetricsPoller::Start() {
  MutexLock lock(mu_);
  // A concurrent Stop() owns thread_ until it finishes joining.
  while (state_ == State::kStopping) cv_.Wait(mu_);
  if (state_ == State::kRunning) return;
  stop_requested_ = false;
  thread_ = std::thread(&MetricsPoller::ThreadMain, this);
  state_ = State::kRunning;
}

void MetricsPoller::Stop() {
  std::thread to_join;
  {
    MutexLock lock(mu_);
    while (state_ == State::kStopping) cv_.Wait(mu_);
    if (state_ == State::kStopped) return;
    state_ = State::kStopping;
    stop_requested_ = true;
    cv_.SignalAll();
    to_join = std::move(thread_);
  }
  to_join.join();
  MutexLock lock(mu_);
  state_ = State::kStopped;
  cv_.SignalAll();
}

bool MetricsPoller::running() const {
  MutexLock lock(mu_);
  return state_ == State::kRunning;
}

void MetricsPoller::ThreadMain() {
  SetThreadLabel("metrics-poller");
  PollOnce();
  for (;;) {
    {
      MutexLock lock(mu_);
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(options_.interval_ms);
      while (!stop_requested_) {
        auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        cv_.WaitFor(mu_, deadline - now);
      }
      if (stop_requested_) return;
    }
    PollOnce();
  }
}

void MetricsPoller::PollNow() { PollOnce(); }

void MetricsPoller::PollOnce() {
  TimeSeriesPoint point;
  point.ts_us = WallTimeUs();
  point.snapshot = registry_->Snapshot();
  if (!options_.export_path.empty()) {
    Json j = ExportPointJson(point, options_.export_slow_queries);
    std::string line = j.Dump();
    line.push_back('\n');
    MutexLock lock(export_mu_);
    if (!export_file_ && !export_failed_) {
      export_file_ = std::fopen(options_.export_path.c_str(), "ae");
      if (!export_file_) {
        // One warning, then silence: a bad path must not spam per poll.
        export_failed_ = true;
        MSV_LOG(Warn) << "metrics poller: cannot open export file "
                      << options_.export_path;
      }
    }
    if (export_file_) {
      std::fwrite(line.data(), 1, line.size(), export_file_);
      std::fflush(export_file_);
    }
  }
  series_.Push(std::move(point));
  polls_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace msv::obs
