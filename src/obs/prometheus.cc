#include "obs/prometheus.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "util/logging.h"

namespace msv::obs {

namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) { return IsNameStart(c) || (c >= '0' && c <= '9'); }

bool IsValidName(const std::string& s) {
  if (s.empty() || !IsNameStart(s[0])) return false;
  for (char c : s) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

std::string FormatValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Splits a registry series name of the MetricRegistry::Labeled shape
/// ("name{k1=v1,k2=v2}") into base name and label pairs. Names without
/// a '{' come back label-free.
void SplitLabeled(const std::string& series, std::string* base,
                  std::vector<std::pair<std::string, std::string>>* labels) {
  labels->clear();
  size_t brace = series.find('{');
  if (brace == std::string::npos || series.back() != '}') {
    *base = series;
    return;
  }
  *base = series.substr(0, brace);
  size_t pos = brace + 1;
  size_t end = series.size() - 1;
  while (pos < end) {
    size_t comma = series.find(',', pos);
    if (comma == std::string::npos || comma > end) comma = end;
    size_t eq = series.find('=', pos);
    if (eq == std::string::npos || eq > comma) {
      labels->emplace_back(series.substr(pos, comma - pos), "");
    } else {
      labels->emplace_back(series.substr(pos, eq - pos),
                           series.substr(eq + 1, comma - eq - 1));
    }
    pos = comma + 1;
  }
}

std::string SanitizeLabelName(const std::string& name) {
  std::string out = name;
  if (out.empty()) out = "_";
  if (!IsNameStart(out[0]) || out[0] == ':') out[0] = '_';
  for (char& c : out) {
    if (!IsNameChar(c) || c == ':') c = '_';
  }
  return out;
}

std::string RenderLabels(
    const std::vector<std::pair<std::string, std::string>>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += SanitizeLabelName(labels[i].first) + "=\"" +
           EscapeLabelValue(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "msv_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    out.push_back(IsNameChar(c) && c != ':' ? c : '_');
  }
  return out;
}

std::string MetricRegistry::DumpPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  // Counters. Registry names sort adjacent for a labelled family
  // ("x" < "x{...}" < "x2" does not hold in general, so families are
  // tracked explicitly to emit exactly one TYPE line each).
  std::string last_family;
  for (const auto& [series, c] : counters_) {
    std::string base;
    std::vector<std::pair<std::string, std::string>> labels;
    SplitLabeled(series, &base, &labels);
    std::string family = PrometheusName(base) + "_total";
    if (family != last_family) {
      out += "# TYPE " + family + " counter\n";
      last_family = family;
    }
    out += family + RenderLabels(labels) + " " +
           FormatValue(static_cast<double>(c->Value())) + "\n";
  }
  last_family.clear();
  for (const auto& [series, g] : gauges_) {
    std::string base;
    std::vector<std::pair<std::string, std::string>> labels;
    SplitLabeled(series, &base, &labels);
    std::string family = PrometheusName(base);
    if (family != last_family) {
      out += "# TYPE " + family + " gauge\n";
      last_family = family;
    }
    out += family + RenderLabels(labels) + " " + FormatValue(g->Value()) +
           "\n";
  }
  const std::vector<double>& edges = LogHistogram::BucketEdges();
  for (const auto& [series, h] : histograms_) {
    std::string base;
    std::vector<std::pair<std::string, std::string>> labels;
    SplitLabeled(series, &base, &labels);
    std::string family = PrometheusName(base);
    out += "# TYPE " + family + " histogram\n";
    std::vector<uint64_t> cells;
    uint64_t overflow = 0;
    h->SnapshotCells(&cells, &overflow);
    // Cumulative buckets only at the upper edges of non-empty cells:
    // the full 160-cell grid would bloat every scrape, and cumulative
    // semantics make the skipped (empty) boundaries recoverable.
    uint64_t cum = 0;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i] == 0) continue;
      cum += cells[i];
      std::vector<std::pair<std::string, std::string>> ls = labels;
      ls.emplace_back("le", FormatValue(edges[i + 1]));
      out += family + "_bucket" + RenderLabels(ls) + " " +
             FormatValue(static_cast<double>(cum)) + "\n";
    }
    uint64_t total = cum + overflow;
    {
      std::vector<std::pair<std::string, std::string>> ls = labels;
      ls.emplace_back("le", "+Inf");
      out += family + "_bucket" + RenderLabels(ls) + " " +
             FormatValue(static_cast<double>(total)) + "\n";
    }
    // _count mirrors the +Inf bucket (cell-derived) so the document is
    // internally consistent even when Record() races the dump.
    out += family + "_sum" + RenderLabels(labels) + " " +
           FormatValue(static_cast<double>(h->sum())) + "\n";
    out += family + "_count" + RenderLabels(labels) + " " +
           FormatValue(static_cast<double>(total)) + "\n";
  }
  return out;
}

namespace {

/// Cursor over one sample line.
class LineParser {
 public:
  LineParser(const std::string& line, size_t lineno)
      : line_(line), lineno_(lineno) {}

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("prom line " + std::to_string(lineno_) +
                                   ": " + what + " in '" + line_ + "'");
  }

  Result<PromSample> Parse() {
    PromSample s;
    size_t start = pos_;
    while (pos_ < line_.size() && IsNameChar(line_[pos_])) ++pos_;
    s.name = line_.substr(start, pos_ - start);
    if (!IsValidName(s.name)) return Error("bad metric name");
    if (pos_ < line_.size() && line_[pos_] == '{') {
      ++pos_;
      MSV_RETURN_IF_ERROR(ParseLabels(&s.labels));
    }
    SkipSpace();
    if (pos_ >= line_.size()) return Error("missing value");
    start = pos_;
    while (pos_ < line_.size() && !IsSpace(line_[pos_])) ++pos_;
    std::string value = line_.substr(start, pos_ - start);
    if (value == "+Inf" || value == "Inf") {
      s.value = HUGE_VAL;
    } else if (value == "-Inf") {
      s.value = -HUGE_VAL;
    } else if (value == "NaN") {
      s.value = NAN;
    } else {
      char* end = nullptr;
      s.value = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size()) return Error("bad value");
    }
    SkipSpace();
    if (pos_ < line_.size()) {
      // Optional millisecond timestamp.
      start = pos_;
      while (pos_ < line_.size() && !IsSpace(line_[pos_])) ++pos_;
      std::string ts = line_.substr(start, pos_ - start);
      char* end = nullptr;
      (void)std::strtoll(ts.c_str(), &end, 10);  // NOLINT(msv-status-ignored) only `end` matters
      if (end != ts.c_str() + ts.size()) return Error("bad timestamp");
      SkipSpace();
      if (pos_ < line_.size()) return Error("trailing characters");
    }
    return s;
  }

 private:
  static bool IsSpace(char c) { return c == ' ' || c == '\t'; }

  void SkipSpace() {
    while (pos_ < line_.size() && IsSpace(line_[pos_])) ++pos_;
  }

  Status ParseLabels(
      std::vector<std::pair<std::string, std::string>>* labels) {
    SkipSpace();
    if (pos_ < line_.size() && line_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    for (;;) {
      SkipSpace();
      size_t start = pos_;
      while (pos_ < line_.size() && IsNameChar(line_[pos_]) &&
             line_[pos_] != ':') {
        ++pos_;
      }
      std::string name = line_.substr(start, pos_ - start);
      if (name.empty() || !IsNameStart(name[0])) {
        return Error("bad label name");
      }
      SkipSpace();
      if (pos_ >= line_.size() || line_[pos_] != '=') {
        return Error("expected '='");
      }
      ++pos_;
      SkipSpace();
      if (pos_ >= line_.size() || line_[pos_] != '"') {
        return Error("expected '\"'");
      }
      ++pos_;
      std::string value;
      while (pos_ < line_.size() && line_[pos_] != '"') {
        char c = line_[pos_++];
        if (c == '\\') {
          if (pos_ >= line_.size()) return Error("bad label escape");
          char e = line_[pos_++];
          if (e == 'n') {
            value.push_back('\n');
          } else if (e == '\\' || e == '"') {
            value.push_back(e);
          } else {
            return Error("bad label escape");
          }
        } else {
          value.push_back(c);
        }
      }
      if (pos_ >= line_.size()) return Error("unterminated label value");
      ++pos_;  // closing quote
      labels->emplace_back(std::move(name), std::move(value));
      SkipSpace();
      if (pos_ < line_.size() && line_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < line_.size() && line_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}'");
    }
  }

  const std::string& line_;
  size_t lineno_;
  size_t pos_ = 0;
};

bool IsKnownType(const std::string& t) {
  return t == "counter" || t == "gauge" || t == "histogram" ||
         t == "summary" || t == "untyped";
}

/// The family a sample with `name` belongs to, given the declared
/// families: exact match, or for histograms/summaries the name with a
/// `_bucket`/`_sum`/`_count` suffix stripped.
PromFamily* FamilyFor(std::vector<PromFamily>* families,
                      const std::string& name) {
  for (PromFamily& f : *families) {
    if (f.name == name) return &f;
    if (f.type == "histogram" || f.type == "summary") {
      if (name == f.name + "_bucket" || name == f.name + "_sum" ||
          name == f.name + "_count") {
        return &f;
      }
    }
  }
  return nullptr;
}

}  // namespace

Result<std::vector<PromFamily>> ParsePrometheusText(const std::string& text) {
  std::vector<PromFamily> families;
  size_t lineno = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only "# TYPE name kind" is structural; HELP and free comments
      // pass through.
      if (line.compare(0, 7, "# TYPE ") == 0) {
        std::string rest = line.substr(7);
        size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          return Status::InvalidArgument("prom line " +
                                         std::to_string(lineno) +
                                         ": TYPE missing kind");
        }
        PromFamily f;
        f.name = rest.substr(0, sp);
        f.type = rest.substr(sp + 1);
        if (!IsValidName(f.name)) {
          return Status::InvalidArgument("prom line " +
                                         std::to_string(lineno) +
                                         ": bad family name '" + f.name + "'");
        }
        if (!IsKnownType(f.type)) {
          return Status::InvalidArgument("prom line " +
                                         std::to_string(lineno) +
                                         ": unknown type '" + f.type + "'");
        }
        for (const PromFamily& existing : families) {
          if (existing.name == f.name) {
            return Status::InvalidArgument(
                "prom line " + std::to_string(lineno) +
                ": duplicate TYPE for '" + f.name + "'");
          }
        }
        families.push_back(std::move(f));
      }
      continue;
    }
    MSV_ASSIGN_OR_RETURN(PromSample s, LineParser(line, lineno).Parse());
    PromFamily* f = FamilyFor(&families, s.name);
    if (!f) {
      return Status::InvalidArgument("prom line " + std::to_string(lineno) +
                                     ": sample '" + s.name +
                                     "' has no preceding TYPE");
    }
    f->samples.push_back(std::move(s));
  }
  return families;
}

Status ValidatePrometheusText(const std::string& text) {
  MSV_ASSIGN_OR_RETURN(std::vector<PromFamily> families,
                       ParsePrometheusText(text));
  for (const PromFamily& f : families) {
    if (f.samples.empty()) {
      return Status::InvalidArgument("prom family '" + f.name +
                                     "' declared but has no samples");
    }
    if (f.type == "counter") {
      if (f.name.size() < 6 ||
          f.name.compare(f.name.size() - 6, 6, "_total") != 0) {
        return Status::InvalidArgument("prom counter '" + f.name +
                                       "' not named *_total");
      }
      for (const PromSample& s : f.samples) {
        if (s.value < 0) {
          return Status::InvalidArgument("prom counter '" + f.name +
                                         "' has negative sample");
        }
      }
    }
    if (f.type == "histogram") {
      double prev_le = -HUGE_VAL;
      double prev_cum = -1.0;
      double inf_bucket = -1.0;
      double count = -1.0;
      bool saw_sum = false;
      for (const PromSample& s : f.samples) {
        if (s.name == f.name + "_bucket") {
          const std::string* le = nullptr;
          for (const auto& [k, v] : s.labels) {
            if (k == "le") le = &v;
          }
          if (!le) {
            return Status::InvalidArgument("prom histogram '" + f.name +
                                           "' bucket without le label");
          }
          double edge =
              (*le == "+Inf") ? HUGE_VAL : std::strtod(le->c_str(), nullptr);
          if (edge <= prev_le) {
            return Status::InvalidArgument("prom histogram '" + f.name +
                                           "' buckets not in le order");
          }
          if (s.value < prev_cum) {
            return Status::InvalidArgument("prom histogram '" + f.name +
                                           "' buckets not cumulative");
          }
          prev_le = edge;
          prev_cum = s.value;
          if (std::isinf(edge)) inf_bucket = s.value;
        } else if (s.name == f.name + "_sum") {
          saw_sum = true;
        } else if (s.name == f.name + "_count") {
          count = s.value;
        }
      }
      if (inf_bucket < 0) {
        return Status::InvalidArgument("prom histogram '" + f.name +
                                       "' missing +Inf bucket");
      }
      if (!saw_sum || count < 0) {
        return Status::InvalidArgument("prom histogram '" + f.name +
                                       "' missing _sum or _count");
      }
      if (count != inf_bucket) {
        return Status::InvalidArgument("prom histogram '" + f.name +
                                       "' _count != +Inf bucket");
      }
    }
  }
  return Status::OK();
}

}  // namespace msv::obs
