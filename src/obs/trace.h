// Span-based query tracer.
//
// A Span is a scoped RAII handle: StartSpan() opens it as a child of the
// innermost still-open span, End() (or the destructor) closes it.
// While a span is open it can collect string attributes, explicit metric
// values, and named point-in-time events (e.g. online-aggregation CI
// snapshots). At close the tracer additionally records the delta of
// every registry counter that moved while the span was open — simulated
// disk µs, pages read, buffer hits/misses, samples emitted — so callers
// get per-phase I/O cost accounting without any per-layer plumbing.
//
// The finished trace renders as a human-readable tree (the EXPLAIN
// ANALYZE report) or as JSON (the MSV_TRACE=path.json export).
//
// Threading: a Tracer and its spans belong to one thread — the query
// execution path is single-threaded. The registry counters a span reads
// are concurrently updated elsewhere; deltas are relaxed-atomic reads.

#ifndef MSV_OBS_TRACE_H_
#define MSV_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace msv::obs {

class Tracer;

/// One finished span, in creation (pre-)order.
struct SpanRecord {
  uint64_t id = 0;      ///< 1-based creation order
  uint64_t parent = 0;  ///< 0 for roots
  uint32_t depth = 0;
  std::string name;
  uint64_t wall_us = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
  /// Explicit AddMetric() values first, then non-zero registry counter
  /// deltas in registry (sorted-name) order.
  std::vector<std::pair<std::string, double>> metrics;
  struct Event {
    std::string name;
    std::vector<std::pair<std::string, double>> fields;
  };
  std::vector<Event> events;
};

/// Movable RAII handle over an open span. A default-constructed (or
/// moved-from, or dropped) Span is inert: every method is a no-op.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  ~Span() { End(); }

  void AddAttr(const std::string& key, const std::string& value);
  void AddAttr(const std::string& key, uint64_t value);
  /// Explicit metric on this span (in addition to auto counter deltas).
  void AddMetric(const std::string& name, double value);
  /// Closes this span; any still-open descendants are closed first.
  void End();

  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, uint64_t id) : tracer_(tracer), id_(id) {}

  Tracer* tracer_ = nullptr;
  uint64_t id_ = 0;
};

class Tracer {
 public:
  /// Spans capture counter deltas from `registry` (Global() if null).
  explicit Tracer(MetricRegistry* registry = nullptr,
                  size_t max_spans = 100000);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span as a child of the innermost open span. Past
  /// `max_spans` the returned handle is inert and dropped_spans() grows.
  Span StartSpan(std::string name);

  /// Point-in-time event on the innermost open span (no-op when none).
  void AddEvent(const std::string& name,
                std::vector<std::pair<std::string, double>> fields);

  /// Finished records in creation (pre-)order. Spans still open are not
  /// included until ended.
  const std::vector<SpanRecord>& spans() const { return records_; }
  size_t open_spans() const { return open_.size(); }
  size_t dropped_spans() const { return dropped_; }

  /// Indented tree, one line per span:
  ///   name key=val .. [metric=123 ..] (wall 456 us)
  /// `include_wall` off gives byte-stable output for golden tests.
  std::string ToTree(bool include_wall = true) const;
  Json ToJson() const;

  /// Innermost-open-span tracer for the current thread, or nullptr.
  /// Instrumented layers use this to attach spans/events without
  /// threading a Tracer through every signature.
  static Tracer* Active();

 private:
  friend class Span;
  friend class ScopedTracer;

  struct OpenSpan {
    size_t record_index = 0;
    uint64_t id = 0;
    std::chrono::steady_clock::time_point start;
    /// Counter values at open, keyed by registry pointer (stable for
    /// the registry's lifetime). Counters registered while the span is
    /// open are absent and treated as baseline 0 — they were created at
    /// zero inside the span, so their full value is the span's delta.
    std::vector<std::pair<Counter*, uint64_t>> baseline;
  };

  void EndSpan(uint64_t id);
  void RefreshCounterCache();

  MetricRegistry* registry_;
  size_t max_spans_;
  uint64_t next_id_ = 1;
  size_t dropped_ = 0;
  uint64_t counters_version_ = ~uint64_t{0};
  std::vector<std::pair<std::string, Counter*>> counters_;
  std::vector<SpanRecord> records_;
  std::vector<OpenSpan> open_;
};

/// Installs `tracer` as Tracer::Active() for the current scope.
class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

 private:
  Tracer* prev_;
};

/// Labels the current thread for tracing: while the label is non-empty,
/// every span the thread opens carries a `thread=<label>` attribute.
/// Worker pools (ParallelAceSampler, the concurrency bench) label their
/// threads so a merged trace stays attributable. Pass "" to clear.
void SetThreadLabel(std::string label);
/// The current thread's label ("" when unlabelled).
const std::string& ThreadLabel();

/// Span on the active tracer; inert handle when no tracer is installed.
Span StartTraceSpan(std::string name);

/// Event on the active tracer's innermost open span; no-op otherwise.
void AddTraceEvent(const std::string& name,
                   std::vector<std::pair<std::string, double>> fields);

/// If the environment variable `env_var` (default MSV_TRACE) names a
/// file, appends tracer->ToJson() as one compact line. Returns true if
/// a line was written.
bool ExportTraceIfRequested(const Tracer& tracer,
                            const char* env_var = "MSV_TRACE");

}  // namespace msv::obs

#endif  // MSV_OBS_TRACE_H_
