// Process-wide metrics registry: named counters, gauges and log-linear
// histograms that every subsystem publishes into and every tool exports
// from (msv_inspect --metrics, bench BENCH_*.json records, trace spans).
//
// Hot-path cost model: a registered Counter* is fetched once (mutex under
// the registration map) and then bumped with a relaxed atomic add — cheap
// enough for per-I/O instrumentation. Histograms use atomic bucket
// counters; snapshot/export paths copy counts and reuse the shared
// bucket math from util/histogram (one implementation, two facades).
//
// Resets are epoch-based: metrics are monotone for the lifetime of the
// process, and BeginEpoch() only records per-counter baselines. A
// snapshot therefore always carries both the cumulative total and the
// delta since the last epoch — concurrent increments are never silently
// discarded the way the old per-struct ResetStats() did.

#ifndef MSV_OBS_METRICS_H_
#define MSV_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/histogram.h"
#include "util/sync.h"

namespace msv::obs {

/// Monotone event counter. Relaxed increments; safe from any thread.
class Counter {
 public:
  void Add(uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-linear histogram over non-negative integer values (microseconds,
/// bytes, counts): one cell for [0,1), then every power-of-two octave
/// split into kSubBuckets equal cells, up to 2^kMaxOctave. Concurrent
/// Record() calls are safe; snapshots are per-cell consistent.
class LogHistogram {
 public:
  static constexpr unsigned kMaxOctave = 40;  // ~1.1e12: µs > 12 days, TB sizes
  static constexpr unsigned kSubBuckets = 4;  // <= 25% relative cell width

  LogHistogram();

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }

  /// Interpolated quantile/percentiles via the shared bucket math.
  double Quantile(double q) const;
  double Percentile(double p) const { return Quantile(p / 100.0); }
  double P50() const { return Percentile(50); }
  double P95() const { return Percentile(95); }
  double P99() const { return Percentile(99); }

  std::string ToString() const;

  /// The shared cell upper/lower edges every LogHistogram buckets with:
  /// edges[i], edges[i+1] bound cell i; BucketEdges().size() - 1 cells.
  static const std::vector<double>& BucketEdges();

  /// Copies the per-cell loads (size BucketEdges().size() - 1) and the
  /// overflow count (values >= edges.back()) for exporters that need the
  /// raw distribution, e.g. Prometheus cumulative buckets. Each cell is
  /// read once with relaxed loads — same consistency as Quantile().
  void SnapshotCells(std::vector<uint64_t>* counts, uint64_t* overflow) const;

 private:
  const std::vector<double>& edges() const;

  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> overflow_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// One counter's view inside a snapshot.
struct CounterSample {
  std::string name;
  uint64_t total = 0;        ///< since process start
  uint64_t since_epoch = 0;  ///< since the last BeginEpoch()
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// A consistent-enough view of the registry: every metric sampled once,
/// in sorted name order, under the registration lock.
struct MetricsSnapshot {
  uint64_t epoch = 0;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Prometheus-flavoured text: one `name value [delta]` line per metric.
  std::string ToText() const;
  Json ToJson() const;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry every subsystem publishes into by default.
  static MetricRegistry& Global();

  /// Returns the metric registered under `name`, creating it on first
  /// use. Pointers are stable for the registry's lifetime. Registering
  /// the same name as two different metric kinds is a programming error.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LogHistogram* GetHistogram(const std::string& name);

  /// Canonical labelled-series name: "name{k1=v1,k2=v2}".
  static std::string Labeled(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& labels);

  /// Starts a new stats epoch: records every counter's current value as
  /// the epoch baseline. Never zeroes anything — cumulative totals stay
  /// monotone, so resets cannot discard concurrent increments.
  ///
  /// Memory-ordering contract (why relaxed counter ops are sufficient):
  /// the baseline is read under mu_, and every Snapshot() also runs under
  /// mu_, so the mutex orders the two critical sections. For any single
  /// counter, read-read coherence then guarantees the snapshot observes a
  /// value no earlier in that counter's modification order than the
  /// baseline — i.e. total >= baseline and since_epoch = total - baseline
  /// is a well-defined, non-negative delta even while other threads are
  /// adding with memory_order_relaxed. What is NOT guaranteed is
  /// cross-counter atomicity: a snapshot concurrent with a multi-counter
  /// update (e.g. io.disk.reads and io.disk.busy_us from one access) may
  /// see one bumped and not the other. Callers needing exact cross-counter
  /// agreement must quiesce writers first (as the tests and the bench
  /// harness do) or read the per-object struct totals, which are taken
  /// under the owning lock. Snapshot() additionally clamps since_epoch at
  /// zero as defense in depth. Regression-tested by
  /// ObsConcurrencyTest.EpochBaselineNeverExceedsTotal.
  void BeginEpoch();
  uint64_t epoch() const;

  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition (version 0.0.4) of every registered
  /// metric: names sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* with an msv_
  /// prefix, counters as `_total`, histograms as cumulative
  /// `_bucket{le=...}` / `_sum` / `_count` series. Defined in
  /// obs/prometheus.cc; format pinned by the golden/parse-back tests.
  std::string DumpPrometheus() const;

  /// Counter list for trace-span delta capture: (name, counter) pairs in
  /// sorted name order. `version()` changes whenever a metric is
  /// registered, so callers can cache the list.
  uint64_t version() const;
  void ListCounters(std::vector<std::pair<std::string, Counter*>>* out) const;

 private:
  mutable Mutex mu_;
  uint64_t version_ MSV_GUARDED_BY(mu_) = 0;
  uint64_t epoch_ MSV_GUARDED_BY(mu_) = 0;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      MSV_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> counter_baselines_ MSV_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ MSV_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LogHistogram>> histograms_
      MSV_GUARDED_BY(mu_);
};

}  // namespace msv::obs

#endif  // MSV_OBS_METRICS_H_
