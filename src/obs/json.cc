#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace msv::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double v) {
  // Integers (the common case: counters, µs totals) print without a
  // decimal point so the output diffs cleanly.
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    *out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> ParseDocument() {
    MSV_ASSIGN_OR_RETURN(Json v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  Result<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      MSV_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Json(std::move(s));
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json(false);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json();
    }
    char* end = nullptr;
    double v = std::strtod(text_.c_str() + pos_, &end);
    if (end == text_.c_str() + pos_) return Error("bad value");
    pos_ = static_cast<size_t>(end - text_.c_str());
    return Json(v);
  }

  /// Consumes exactly four hex digits at pos_; strict — strtoul-style
  /// whitespace/sign/short prefixes are rejected.
  bool ParseHex4(unsigned* code) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned v = 0;
    for (size_t i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      unsigned digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<unsigned>(c - 'A') + 10;
      } else {
        return false;
      }
      v = (v << 4) | digit;
    }
    pos_ += 4;
    *code = v;
    return true;
  }

  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xf0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  Result<std::string> ParseString() {
    MSV_DCHECK(text_[pos_] == '"');
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("bad escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'u': {
          unsigned code = 0;
          if (!ParseHex4(&code)) return Error("bad \\u escape");
          if (code >= 0xdc00 && code <= 0xdfff) {
            return Error("lone low surrogate");
          }
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: must be followed by \uDC00..\uDFFF; the
            // pair encodes one supplementary-plane code point.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!ParseHex4(&low)) return Error("bad \\u escape");
            if (low < 0xdc00 || low > 0xdfff) {
              return Error("unpaired high surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          }
          AppendUtf8(&out, code);
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  Result<Json> ParseArray() {
    ++pos_;  // '['
    Json arr = Json::Array();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      MSV_ASSIGN_OR_RETURN(Json v, ParseValue());
      arr.Append(std::move(v));
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return arr;
      }
      return Error("expected ',' or ']'");
    }
  }

  Result<Json> ParseObject() {
    ++pos_;  // '{'
    Json obj = Json::Object();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected member name");
      }
      MSV_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':'");
      }
      ++pos_;
      MSV_ASSIGN_OR_RETURN(Json v, ParseValue());
      obj[key] = std::move(v);
      SkipSpace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return obj;
      }
      return Error("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

void Json::Append(Json v) {
  MSV_DCHECK(type_ == Type::kArray);
  array_.push_back(std::move(v));
}

Json& Json::operator[](const std::string& key) {
  MSV_DCHECK(type_ == Type::kObject);
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, Json());
  return object_.back().second;
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<size_t>(indent * (depth + 1)), ' ')
                 : "";
  const std::string close_pad =
      indent > 0 ? "\n" + std::string(static_cast<size_t>(indent * depth), ' ')
                 : "";
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(out, number_);
      break;
    case Type::kString:
      AppendEscaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i) out->push_back(',');
        *out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
      }
      *out += close_pad;
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i) out->push_back(',');
        *out += pad;
        AppendEscaped(out, object_[i].first);
        *out += indent > 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      *out += close_pad;
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).ParseDocument();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

}  // namespace msv::obs
