#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/logging.h"

namespace msv::obs {

namespace {

thread_local Tracer* g_active_tracer = nullptr;

std::string& MutableThreadLabel() {
  static thread_local std::string label;
  return label;
}

std::string FormatMetricValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    id_ = other.id_;
    other.tracer_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void Span::AddAttr(const std::string& key, const std::string& value) {
  if (!tracer_) return;
  for (Tracer::OpenSpan& o : tracer_->open_) {
    if (o.id == id_) {
      tracer_->records_[o.record_index].attrs.emplace_back(key, value);
      return;
    }
  }
}

void Span::AddAttr(const std::string& key, uint64_t value) {
  AddAttr(key, std::to_string(value));
}

void Span::AddMetric(const std::string& name, double value) {
  if (!tracer_) return;
  for (Tracer::OpenSpan& o : tracer_->open_) {
    if (o.id == id_) {
      tracer_->records_[o.record_index].metrics.emplace_back(name, value);
      return;
    }
  }
}

void Span::End() {
  if (!tracer_) return;
  tracer_->EndSpan(id_);
  tracer_ = nullptr;
  id_ = 0;
}

Tracer::Tracer(MetricRegistry* registry, size_t max_spans)
    : registry_(registry ? registry : &MetricRegistry::Global()),
      max_spans_(max_spans) {}

void Tracer::RefreshCounterCache() {
  uint64_t v = registry_->version();
  if (v == counters_version_) return;
  registry_->ListCounters(&counters_);
  counters_version_ = v;
}

Span Tracer::StartSpan(std::string name) {
  // records_ already includes still-open spans (a record is created at
  // open), so it alone is the span total.
  if (records_.size() >= max_spans_) {
    ++dropped_;
    return Span();
  }
  RefreshCounterCache();
  OpenSpan o;
  o.id = next_id_++;
  o.start = std::chrono::steady_clock::now();
  o.baseline.reserve(counters_.size());
  for (const auto& [cname, c] : counters_) {
    o.baseline.emplace_back(c, c->Value());
  }
  SpanRecord rec;
  rec.id = o.id;
  rec.parent = open_.empty() ? 0 : open_.back().id;
  rec.depth = static_cast<uint32_t>(open_.size());
  rec.name = std::move(name);
  if (!ThreadLabel().empty()) {
    rec.attrs.emplace_back("thread", ThreadLabel());
  }
  o.record_index = records_.size();
  records_.push_back(std::move(rec));
  open_.push_back(std::move(o));
  return Span(this, open_.back().id);
}

void Tracer::EndSpan(uint64_t id) {
  // Find the span on the open stack; spans ended out of order (a parent
  // ended before its children) force-close descendants LIFO.
  size_t pos = open_.size();
  for (size_t i = open_.size(); i-- > 0;) {
    if (open_[i].id == id) {
      pos = i;
      break;
    }
  }
  if (pos == open_.size()) return;  // already closed via a parent
  auto now = std::chrono::steady_clock::now();
  while (open_.size() > pos) {
    OpenSpan o = std::move(open_.back());
    open_.pop_back();
    SpanRecord& rec = records_[o.record_index];
    rec.wall_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now - o.start)
            .count());
    RefreshCounterCache();
    for (const auto& [cname, c] : counters_) {
      uint64_t base = 0;
      for (const auto& [bc, bv] : o.baseline) {
        if (bc == c) {
          base = bv;
          break;
        }
      }
      uint64_t v = c->Value();
      if (v > base) {
        rec.metrics.emplace_back(cname, static_cast<double>(v - base));
      }
    }
  }
}

void Tracer::AddEvent(const std::string& name,
                      std::vector<std::pair<std::string, double>> fields) {
  if (open_.empty()) return;
  SpanRecord& rec = records_[open_.back().record_index];
  rec.events.push_back(SpanRecord::Event{name, std::move(fields)});
}

std::string Tracer::ToTree(bool include_wall) const {
  std::string out;
  for (const SpanRecord& rec : records_) {
    out.append(static_cast<size_t>(rec.depth) * 2, ' ');
    out += rec.name;
    for (const auto& [k, v] : rec.attrs) {
      out += " " + k + "=" + v;
    }
    if (!rec.metrics.empty()) {
      out += " [";
      for (size_t i = 0; i < rec.metrics.size(); ++i) {
        if (i) out += " ";
        out += rec.metrics[i].first + "=" +
               FormatMetricValue(rec.metrics[i].second);
      }
      out += "]";
    }
    if (include_wall) {
      out += " (wall " + std::to_string(rec.wall_us) + " us)";
    }
    out += "\n";
    for (const SpanRecord::Event& ev : rec.events) {
      out.append(static_cast<size_t>(rec.depth) * 2 + 2, ' ');
      out += "* " + ev.name;
      for (const auto& [k, v] : ev.fields) {
        out += " " + k + "=" + FormatMetricValue(v);
      }
      out += "\n";
    }
  }
  return out;
}

Json Tracer::ToJson() const {
  Json root = Json::Object();
  Json spans = Json::Array();
  for (const SpanRecord& rec : records_) {
    Json j = Json::Object();
    j["id"] = rec.id;
    j["parent"] = rec.parent;
    j["name"] = rec.name;
    j["wall_us"] = rec.wall_us;
    if (!rec.attrs.empty()) {
      Json attrs = Json::Object();
      for (const auto& [k, v] : rec.attrs) attrs[k] = v;
      j["attrs"] = std::move(attrs);
    }
    if (!rec.metrics.empty()) {
      Json metrics = Json::Object();
      for (const auto& [k, v] : rec.metrics) metrics[k] = v;
      j["metrics"] = std::move(metrics);
    }
    if (!rec.events.empty()) {
      Json events = Json::Array();
      for (const SpanRecord::Event& ev : rec.events) {
        Json je = Json::Object();
        je["name"] = ev.name;
        for (const auto& [k, v] : ev.fields) je[k] = v;
        events.Append(std::move(je));
      }
      j["events"] = std::move(events);
    }
    spans.Append(std::move(j));
  }
  root["spans"] = std::move(spans);
  if (dropped_ > 0) root["dropped_spans"] = static_cast<uint64_t>(dropped_);
  return root;
}

Tracer* Tracer::Active() { return g_active_tracer; }

void SetThreadLabel(std::string label) {
  MutableThreadLabel() = std::move(label);
}

const std::string& ThreadLabel() { return MutableThreadLabel(); }

ScopedTracer::ScopedTracer(Tracer* tracer) : prev_(g_active_tracer) {
  g_active_tracer = tracer;
}

ScopedTracer::~ScopedTracer() { g_active_tracer = prev_; }

Span StartTraceSpan(std::string name) {
  Tracer* t = Tracer::Active();
  if (!t) return Span();
  return t->StartSpan(std::move(name));
}

void AddTraceEvent(const std::string& name,
                   std::vector<std::pair<std::string, double>> fields) {
  Tracer* t = Tracer::Active();
  if (!t) return;
  t->AddEvent(name, std::move(fields));
}

bool ExportTraceIfRequested(const Tracer& tracer, const char* env_var) {
  // Read-only env lookup; the process never calls setenv concurrently.
  const char* path = std::getenv(env_var);  // NOLINT(concurrency-mt-unsafe)
  if (!path || !*path) return false;
  std::ofstream out(path, std::ios::app);
  if (!out) {
    MSV_LOG(Warn) << "cannot open trace export file " << path;
    return false;
  }
  out << tracer.ToJson().Dump() << "\n";
  return true;
}

}  // namespace msv::obs
