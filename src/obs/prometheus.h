// Prometheus text-exposition helpers: the exporter itself lives on
// MetricRegistry::DumpPrometheus() (declared in obs/metrics.h, defined
// here in prometheus.cc); this header adds the name mangling and a
// strict parser/validator used by the format tests and the bench-smoke
// CI gate, so a malformed dump fails in-tree instead of at scrape time.
//
// Exposition format 0.0.4: `# TYPE family kind` comment lines followed
// by `name{label="value",...} value` samples; counter families end in
// `_total`, histogram families expand to cumulative `_bucket{le=...}`
// plus `_sum`/`_count`.

#ifndef MSV_OBS_PROMETHEUS_H_
#define MSV_OBS_PROMETHEUS_H_

#include <string>
#include <utility>
#include <vector>

#include "util/result.h"

namespace msv::obs {

/// Registry metric name -> Prometheus metric name: prefixed `msv_`,
/// every character outside [a-zA-Z0-9_:] replaced by '_'
/// ("io.disk.reads" -> "msv_io_disk_reads"). A `name{k=v}` labelled
/// series (MetricRegistry::Labeled) must be split before sanitizing.
std::string PrometheusName(const std::string& name);

/// One exposition sample line, parsed.
struct PromSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

/// One metric family: the `# TYPE` declaration plus its samples (for
/// histograms that includes the `_bucket`/`_sum`/`_count` series).
struct PromFamily {
  std::string name;
  std::string type;  ///< counter | gauge | histogram | untyped
  std::vector<PromSample> samples;
};

/// Strict parse of a text-exposition document: every non-comment line
/// must be a well-formed sample (valid metric name, quoted label
/// values, finite-or-Inf value), every sample must belong to a family
/// declared by a preceding `# TYPE` line. Returns the families in
/// declaration order.
Result<std::vector<PromFamily>> ParsePrometheusText(const std::string& text);

/// Parse + semantic checks: counter families named `*_total`, histogram
/// `_bucket` series cumulative and non-decreasing in `le` order with a
/// `+Inf` bucket equal to `_count`. OK iff a Prometheus server would
/// ingest the document.
Status ValidatePrometheusText(const std::string& text);

}  // namespace msv::obs

#endif  // MSV_OBS_PROMETHEUS_H_
