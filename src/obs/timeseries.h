// In-process metrics-over-time: a bounded ring of timestamped registry
// snapshots (TimeSeries) and the background thread that fills it at a
// fixed interval (MetricsPoller).
//
// The poller is the always-on half of the obs stack: counters tell you
// totals, the time series turns them into rates and quantile trends
// (P95 of io.disk.access_us *over the last minute*, not since process
// start) that serving-side admission control and `msv_top` consume.
// Built on the annotated util/sync.h primitives; Start/Stop are
// idempotent, callable from any thread, and TSan-clean — the CI tsan
// job runs the MetricsPoller tests.
//
// Optionally each poll appends one JSON line ({"ts_us", "counters",
// "gauges", "histograms", "slow_queries"}) to an export file, which is
// the transport `msv_top` tails: no server exists yet, a shared file
// does (MSV_METRICS_EXPORT in bench/tools, --export here).

#ifndef MSV_OBS_TIMESERIES_H_
#define MSV_OBS_TIMESERIES_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/sync.h"

namespace msv::obs {

/// One poll: wall-clock stamp plus the full registry snapshot.
struct TimeSeriesPoint {
  uint64_t ts_us = 0;  ///< wall clock, µs since the Unix epoch
  MetricsSnapshot snapshot;
};

/// Fixed-capacity ring of snapshots, oldest evicted first. All methods
/// are thread-safe; readers get copies, never references into the ring.
class TimeSeries {
 public:
  explicit TimeSeries(size_t capacity = 300);

  void Push(TimeSeriesPoint point);

  size_t size() const;
  size_t capacity() const { return capacity_; }

  /// Oldest-first copy of the ring.
  std::vector<TimeSeriesPoint> Points() const;

  /// The newest point, or ts_us == 0 when empty.
  TimeSeriesPoint Latest() const;

  /// Average events/second of counter `name` between the newest point
  /// and the oldest point at least `window_us` older (clamped to the
  /// ring's span). 0.0 with fewer than two points or a zero span.
  double CounterRate(const std::string& name, uint64_t window_us) const;

  /// Counter delta over the same window as CounterRate.
  uint64_t CounterDelta(const std::string& name, uint64_t window_us) const;

  void Clear();

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<TimeSeriesPoint> ring_ MSV_GUARDED_BY(mu_);
};

struct MetricsPollerOptions {
  uint64_t interval_ms = 1000;
  size_t capacity = 300;           ///< ring size (5 min at 1s)
  MetricRegistry* registry = nullptr;  ///< nullptr = MetricRegistry::Global()
  std::string export_path;         ///< JSON-lines export; empty = in-memory only
  bool export_slow_queries = true;  ///< include SlowQueryLog tail in exports
};

/// Background snapshot thread. Lifecycle:
///
///   MetricsPoller poller({.interval_ms = 500});
///   poller.Start();           // spawns the thread, first poll immediate
///   ... poller.series().CounterRate("io.disk.reads", 5'000'000) ...
///   poller.Stop();            // signals, joins; ring stays readable
///
/// Start after Stop restarts cleanly; double Start/Stop are no-ops. The
/// destructor stops. PollNow() takes a snapshot on the caller's thread
/// (works with the poller stopped — tests and --once tools use it).
class MetricsPoller {
 public:
  explicit MetricsPoller(MetricsPollerOptions options = {});
  ~MetricsPoller();

  MetricsPoller(const MetricsPoller&) = delete;
  MetricsPoller& operator=(const MetricsPoller&) = delete;

  void Start();
  void Stop();
  bool running() const;

  void PollNow();

  const TimeSeries& series() const { return series_; }
  uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }

 private:
  /// kStopping covers the join window: the stopping thread releases
  /// mu_ to join (joining under the lock would deadlock with the worker
  /// re-acquiring it), so concurrent Start/Stop callers wait for the
  /// transition to finish instead of touching thread_.
  enum class State { kStopped, kRunning, kStopping };

  void ThreadMain();
  void PollOnce();

  const MetricsPollerOptions options_;
  MetricRegistry* const registry_;
  TimeSeries series_;
  std::atomic<uint64_t> polls_{0};

  mutable Mutex mu_;
  State state_ MSV_GUARDED_BY(mu_) = State::kStopped;
  bool stop_requested_ MSV_GUARDED_BY(mu_) = false;
  std::thread thread_ MSV_GUARDED_BY(mu_);
  CondVar cv_;

  /// Export sink serialized separately from the lifecycle lock so a
  /// slow write never blocks Stop() from being *requested*.
  Mutex export_mu_;
  std::FILE* export_file_ MSV_GUARDED_BY(export_mu_) = nullptr;
  bool export_failed_ MSV_GUARDED_BY(export_mu_) = false;
};

/// Renders one poll (plus optional slow-query tail) as the JSON-lines
/// export object — shared by MetricsPoller and msv_inspect so msv_top
/// parses one schema.
Json ExportPointJson(const TimeSeriesPoint& point, bool include_slow_queries);

}  // namespace msv::obs

#endif  // MSV_OBS_TIMESERIES_H_
