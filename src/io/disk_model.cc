#include "io/disk_model.h"

#include <cmath>
#include <map>

#include "util/logging.h"

namespace msv::io {

Status DiskModelOptions::Validate() const {
  if (seek_ms < 0 || rotational_ms < 0 || request_overhead_ms < 0) {
    return Status::InvalidArgument("disk latencies must be non-negative");
  }
  if (transfer_mb_per_s <= 0) {
    return Status::InvalidArgument("transfer rate must be positive");
  }
  return Status::OK();
}

DiskDevice::DiskDevice(DiskModelOptions options) : options_(options) {
  MSV_CHECK_MSG(options_.Validate().ok(), "invalid DiskModelOptions");
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  c_reads_ = reg.GetCounter("io.disk.reads");
  c_writes_ = reg.GetCounter("io.disk.writes");
  c_read_bytes_ = reg.GetCounter("io.disk.read_bytes");
  c_written_bytes_ = reg.GetCounter("io.disk.written_bytes");
  c_seeks_ = reg.GetCounter("io.disk.seeks");
  c_sequential_ = reg.GetCounter("io.disk.sequential_ios");
  c_busy_us_ = reg.GetCounter("io.disk.busy_us");
  h_access_us_ = reg.GetHistogram("io.disk.access_us");
  c_batch_accesses_ = reg.GetCounter("io.batch.accesses");
  c_batch_pages_ = reg.GetCounter("io.batch.pages");
  h_batch_pages_ = reg.GetHistogram("io.batch.pages_per_access");
  g_clock_ms_ = reg.GetGauge("io.disk.clock_ms");
}

namespace {
// Per-thread attribution of modeled busy time (see ThreadDiskBusyUs()).
thread_local uint64_t tls_disk_busy_us = 0;
}  // namespace

uint64_t ThreadDiskBusyUs() { return tls_disk_busy_us; }

void DiskDevice::Access(uint64_t pos, uint64_t len, bool is_write) {
  AccessImpl(pos, len, /*pages=*/0, is_write);
}

void DiskDevice::AccessRun(uint64_t pos, uint64_t len, uint64_t pages,
                           bool is_write) {
  AccessImpl(pos, len, pages, is_write);
}

void DiskDevice::AccessImpl(uint64_t pos, uint64_t len, uint64_t pages,
                            bool is_write) {
  // Serialized-arm model: one request owns the arm at a time. Seek vs
  // sequential is judged against the head position the previous request
  // (from any thread) left behind, so interleaved readers pay the seeks
  // a real shared disk would.
  MutexLock lock(mu_);
  double ms = options_.request_overhead_ms;
  bool sequential = head_valid_ && pos == head_pos_;
  if (!sequential) {
    ms += options_.seek_ms + options_.rotational_ms;
    ++totals_.seeks;
    c_seeks_->Add();
  } else {
    ++totals_.sequential_ios;
    c_sequential_->Add();
  }
  ms += static_cast<double>(len) / (options_.transfer_mb_per_s * 1e6) * 1e3;
  clock_.AdvanceMs(ms);
  g_clock_ms_->Set(clock_.NowMs());
  // One rounding, shared by the struct total, the registry counter, the
  // latency histogram and the per-thread attribution, so all four views
  // agree to the microsecond.
  uint64_t us = static_cast<uint64_t>(std::llround(ms * 1000.0));
  totals_.busy_us += us;
  tls_disk_busy_us += us;
  c_busy_us_->Add(us);
  h_access_us_->Record(us);
  head_pos_ = pos + len;
  head_valid_ = true;
  if (pages > 0) {
    ++totals_.batched_accesses;
    totals_.batched_pages += pages;
    c_batch_accesses_->Add();
    c_batch_pages_->Add(pages);
    h_batch_pages_->Record(pages);
  }
  if (is_write) {
    ++totals_.writes;
    totals_.written_bytes += len;
    c_writes_->Add();
    c_written_bytes_->Add(len);
  } else {
    ++totals_.reads;
    totals_.read_bytes += len;
    c_reads_->Add();
    c_read_bytes_->Add(len);
  }
}

DiskStats DiskDevice::stats() const {
  MutexLock lock(mu_);
  return totals_ - baseline_;
}

DiskStats DiskDevice::total_stats() const {
  MutexLock lock(mu_);
  return totals_;
}

void DiskDevice::ResetStats() {
  {
    MutexLock lock(mu_);
    baseline_ = totals_;
  }
  obs::MetricRegistry::Global().BeginEpoch();
}

double DiskDevice::SequentialScanMs(uint64_t bytes) const {
  return options_.seek_ms + options_.rotational_ms +
         options_.request_overhead_ms +
         static_cast<double>(bytes) / (options_.transfer_mb_per_s * 1e6) * 1e3;
}

namespace {

// Region of the simulated platter assigned to one file. Files get disjoint
// 1 TiB-aligned slots in open order, so intra-file offsets map directly to
// device positions and inter-file switches always cost a seek.
constexpr uint64_t kFileRegionBytes = 1ULL << 40;

class SimFile : public File {
 public:
  SimFile(std::unique_ptr<File> inner, std::shared_ptr<DiskDevice> device,
          uint64_t region_base)
      : inner_(std::move(inner)),
        device_(std::move(device)),
        region_base_(region_base) {}

  Result<size_t> Read(uint64_t offset, size_t n, char* scratch) override {
    MSV_ASSIGN_OR_RETURN(size_t got, inner_->Read(offset, n, scratch));
    if (got > 0) device_->Access(region_base_ + offset, got, /*is_write=*/false);
    return got;
  }

  Status ReadBatch(ReadRequest* reqs, size_t count) override {
    MSV_RETURN_IF_ERROR(inner_->ReadBatch(reqs, count));
    // Charge one modeled access per maximal contiguous, fully-satisfied
    // run (array order): one seek + the run's total transfer. A request
    // short of its ask (EOF) ends its run — the device can't keep
    // streaming past a hole — and zero-byte requests charge nothing,
    // matching Read()'s got==0 behaviour.
    size_t i = 0;
    while (i < count) {
      if (reqs[i].got == 0) {
        ++i;
        continue;
      }
      size_t j = i + 1;
      uint64_t len = reqs[i].got;
      while (j < count && reqs[j].got > 0 &&
             reqs[j - 1].got == reqs[j - 1].n &&
             reqs[j].offset == reqs[j - 1].offset + reqs[j - 1].n) {
        len += reqs[j].got;
        ++j;
      }
      device_->AccessRun(region_base_ + reqs[i].offset, len,
                         /*pages=*/j - i, /*is_write=*/false);
      i = j;
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    MSV_RETURN_IF_ERROR(inner_->Write(offset, data, n));
    device_->Access(region_base_ + offset, n, /*is_write=*/true);
    return Status::OK();
  }

  Status Append(const char* data, size_t n) override {
    MSV_ASSIGN_OR_RETURN(uint64_t size, inner_->Size());
    MSV_RETURN_IF_ERROR(inner_->Append(data, n));
    device_->Access(region_base_ + size, n, /*is_write=*/true);
    return Status::OK();
  }

  Result<uint64_t> Size() const override { return inner_->Size(); }
  Status Truncate(uint64_t size) override { return inner_->Truncate(size); }
  Status Sync() override { return inner_->Sync(); }

 private:
  std::unique_ptr<File> inner_;
  std::shared_ptr<DiskDevice> device_;
  uint64_t region_base_;
};

class SimEnv : public Env {
 public:
  SimEnv(Env* inner, std::shared_ptr<DiskDevice> device)
      : inner_(inner), device_(std::move(device)) {}

  Result<std::unique_ptr<File>> OpenFile(const std::string& name,
                                         bool create) override {
    MSV_ASSIGN_OR_RETURN(std::unique_ptr<File> file,
                         inner_->OpenFile(name, create));
    uint64_t base;
    {
      MutexLock lock(mu_);
      auto it = regions_.find(name);
      if (it == regions_.end()) {
        base = next_region_;
        next_region_ += kFileRegionBytes;
        regions_.emplace(name, base);
      } else {
        base = it->second;
      }
    }
    return std::unique_ptr<File>(
        new SimFile(std::move(file), device_, base));
  }

  Status DeleteFile(const std::string& name) override {
    return inner_->DeleteFile(name);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return inner_->RenameFile(from, to);
  }
  Result<bool> FileExists(const std::string& name) override {
    return inner_->FileExists(name);
  }
  Result<std::vector<std::string>> ListFiles() override {
    return inner_->ListFiles();
  }
  Status SyncDir() override { return inner_->SyncDir(); }

 private:
  Env* inner_;
  std::shared_ptr<DiskDevice> device_;
  Mutex mu_;
  std::map<std::string, uint64_t> regions_ MSV_GUARDED_BY(mu_);
  uint64_t next_region_ MSV_GUARDED_BY(mu_) = 0;
};

}  // namespace

std::unique_ptr<Env> NewSimEnv(Env* inner,
                               std::shared_ptr<DiskDevice> device) {
  return std::make_unique<SimEnv>(inner, std::move(device));
}

}  // namespace msv::io
