// Fault-injecting Env decorator for crash-safety testing.
//
// FaultInjectionEnv wraps any inner Env and gives tests three levers:
//
//   1. Deterministic faults: every state-touching operation (open, read,
//      write, append, sync, truncate, delete, rename, dir-sync) consumes
//      one slot of a monotone operation counter. ArmFault(k, mode) makes
//      the operation with index k fail — with a clean Status, a short
//      read, or a torn (half-completed) write. With sticky faults (the
//      default) every later operation fails too, which models a device
//      that died and stays dead. Sweeping k from 0 upward visits every
//      crash point of a workload exactly once.
//
//   2. A crash model: the env tracks which bytes would survive a power
//      loss under POSIX rules. File contents become durable when the file
//      is Sync()ed; directory entries (creations, renames, deletions)
//      become durable only at the next SyncDir(). DropUnsyncedData()
//      simulates the crash+restart: files whose entries were never
//      dir-synced vanish, surviving files roll back to their last synced
//      bytes. Callers must drop outstanding File handles first — handles
//      from before the "crash" alias pre-crash state.
//
//   3. Observability: io.fault.* counters in the global metric registry
//      (ops, injected_errors, short_reads, short_writes, crashes).
//
// The decorator is thread-safe: the op counter and durability maps are
// guarded by one mutex, so concurrent samplers hitting an armed fault all
// observe clean injected Statuses.

#ifndef MSV_IO_FAULT_ENV_H_
#define MSV_IO_FAULT_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/env.h"

namespace msv::io {

/// What happens at the armed operation index.
enum class FaultMode {
  /// The operation fails with Status::IOError before touching the inner
  /// env (and, when sticky, so does every later operation).
  kError,
  /// If the armed operation is a Read, it returns only half the bytes the
  /// inner read produced; any other operation type fails as kError.
  kShortRead,
  /// If the armed operation is a Write/Append, the first half of the
  /// payload reaches the inner file and the call still returns IOError —
  /// a torn write; any other operation type fails as kError.
  kShortWrite,
};

namespace internal {
struct FaultState;
}  // namespace internal

class FaultInjectionEnv : public Env {
 public:
  /// Wraps `inner`, which must outlive this env. Files already present in
  /// `inner` are snapshotted as fully durable (they "predate the crash").
  explicit FaultInjectionEnv(Env* inner);
  ~FaultInjectionEnv() override;

  // --- Env interface -----------------------------------------------------
  Result<std::unique_ptr<File>> OpenFile(const std::string& name,
                                         bool create) override;
  Status DeleteFile(const std::string& name) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Result<bool> FileExists(const std::string& name) override;
  Result<std::vector<std::string>> ListFiles() override;
  Status SyncDir() override;

  // --- Fault control ------------------------------------------------------
  /// Arms a fault at operation index `fail_at_op` (indices are 0-based and
  /// count from env construction; see op_count()). With `sticky`, every
  /// operation at index >= fail_at_op fails, modeling a dead device.
  void ArmFault(int64_t fail_at_op, FaultMode mode = FaultMode::kError,
                bool sticky = true);
  /// Disarms any pending fault; subsequent operations succeed again.
  void ClearFault();
  /// Number of counted operations issued so far (failed ones included).
  int64_t op_count() const;
  /// True once an armed fault has actually fired.
  bool fault_fired() const;

  // --- Crash model --------------------------------------------------------
  /// Simulates power loss + restart: reverts the inner env to the durable
  /// image (last-synced bytes of files whose directory entries were
  /// dir-synced; everything else vanishes). Any File handles opened before
  /// this call are invalid afterwards. Disarm faults first if the workload
  /// being recovered should run clean.
  Status DropUnsyncedData();

 private:
  std::shared_ptr<internal::FaultState> state_;
};

/// Convenience factory mirroring NewMemEnv/NewPosixEnv.
std::unique_ptr<FaultInjectionEnv> NewFaultInjectionEnv(Env* inner);

}  // namespace msv::io

#endif  // MSV_IO_FAULT_ENV_H_
