#include "io/fault_env.h"

#include <map>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/sync.h"

namespace msv::io {
namespace internal {

// Which counter slot an operation occupies, for mode targeting: kShortRead
// only shortens reads, kShortWrite only tears writes; a mismatched op kind
// at the armed index degrades to a plain injected error.
enum class OpKind { kRead, kWrite, kOther };

// What the gate decided for one operation.
enum class FaultAction { kNone, kFail, kShortRead, kShortWrite };

struct FaultState {
  explicit FaultState(Env* in)
      : inner(in),
        c_ops(obs::MetricRegistry::Global().GetCounter("io.fault.ops")),
        c_errors(obs::MetricRegistry::Global().GetCounter(
            "io.fault.injected_errors")),
        c_short_reads(
            obs::MetricRegistry::Global().GetCounter("io.fault.short_reads")),
        c_short_writes(
            obs::MetricRegistry::Global().GetCounter("io.fault.short_writes")),
        c_crashes(
            obs::MetricRegistry::Global().GetCounter("io.fault.crashes")) {}

  /// Consumes one op-counter slot and decides this operation's fate.
  /// Sets `*at` to the operation's index (for error messages).
  FaultAction Gate(OpKind kind, int64_t* at) {
    MutexLock lock(mu);
    int64_t idx = op_count++;
    *at = idx;
    c_ops->Add();
    if (fail_at < 0) return FaultAction::kNone;
    bool hit = sticky ? idx >= fail_at : idx == fail_at;
    if (!hit) return FaultAction::kNone;
    fired = true;
    if (mode == FaultMode::kShortRead && kind == OpKind::kRead) {
      c_short_reads->Add();
      return FaultAction::kShortRead;
    }
    if (mode == FaultMode::kShortWrite && kind == OpKind::kWrite) {
      c_short_writes->Add();
      return FaultAction::kShortWrite;
    }
    c_errors->Add();
    return FaultAction::kFail;
  }

  static Status Injected(int64_t at) {
    return Status::IOError("injected fault at op " + std::to_string(at));
  }

  Env* inner;
  Mutex mu;
  int64_t op_count MSV_GUARDED_BY(mu) = 0;
  int64_t fail_at MSV_GUARDED_BY(mu) = -1;  // -1: disarmed
  FaultMode mode MSV_GUARDED_BY(mu) = FaultMode::kError;
  bool sticky MSV_GUARDED_BY(mu) = true;
  bool fired MSV_GUARDED_BY(mu) = false;
  /// name -> bytes as of the file's last Sync(). Travels with renames.
  std::map<std::string, std::string> synced MSV_GUARDED_BY(mu);
  /// name -> bytes surviving a crash (entry dir-synced + data synced).
  std::map<std::string, std::string> durable MSV_GUARDED_BY(mu);

  obs::Counter* c_ops;
  obs::Counter* c_errors;
  obs::Counter* c_short_reads;
  obs::Counter* c_short_writes;
  obs::Counter* c_crashes;
};

namespace {

/// Reads the full current contents of `file` (uncounted inner access).
Result<std::string> Slurp(File* file) {
  MSV_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string bytes(static_cast<size_t>(size), '\0');
  if (size > 0) {
    MSV_RETURN_IF_ERROR(file->ReadExact(0, bytes.size(), bytes.data()));
  }
  return bytes;
}

/// Replaces the inner file `name` with exactly `bytes`.
Status Restore(Env* inner, const std::string& name, const std::string& bytes) {
  MSV_ASSIGN_OR_RETURN(auto file, inner->OpenFile(name, /*create=*/true));
  MSV_RETURN_IF_ERROR(file->Truncate(0));
  if (!bytes.empty()) {
    MSV_RETURN_IF_ERROR(file->Write(0, bytes.data(), bytes.size()));
  }
  return Status::OK();
}

class FaultFile : public File {
 public:
  FaultFile(std::shared_ptr<FaultState> state, std::string name,
            std::unique_ptr<File> inner)
      : state_(std::move(state)),
        name_(std::move(name)),
        inner_(std::move(inner)) {}

  Result<size_t> Read(uint64_t offset, size_t n, char* scratch) override {
    int64_t at = 0;
    FaultAction action = state_->Gate(OpKind::kRead, &at);
    if (action == FaultAction::kFail) return FaultState::Injected(at);
    MSV_ASSIGN_OR_RETURN(size_t got, inner_->Read(offset, n, scratch));
    if (action == FaultAction::kShortRead) return got / 2;
    return got;
  }

  Status ReadBatch(ReadRequest* reqs, size_t count) override {
    // One op index per underlying device access, i.e. per maximal
    // contiguous run in array order — a coalesced batch is one arm
    // movement, so it must be one crash point, not `count` of them.
    size_t i = 0;
    while (i < count) {
      size_t j = i + 1;
      while (j < count &&
             reqs[j].offset == reqs[j - 1].offset + reqs[j - 1].n) {
        ++j;
      }
      int64_t at = 0;
      FaultAction action = state_->Gate(OpKind::kRead, &at);
      if (action == FaultAction::kFail) return FaultState::Injected(at);
      MSV_RETURN_IF_ERROR(inner_->ReadBatch(reqs + i, j - i));
      if (action == FaultAction::kShortRead) {
        // Half the run's delivered bytes survive, truncated DOWN to a
        // request boundary: a deterministic "the device died mid-batch"
        // point. A single-request run degrades to exactly what Read()
        // does (got / 2).
        if (j - i == 1) {
          reqs[i].got /= 2;
        } else {
          size_t delivered = 0;
          for (size_t k = i; k < j; ++k) delivered += reqs[k].got;
          size_t keep = delivered / 2;
          size_t acc = 0;
          for (size_t k = i; k < j; ++k) {
            if (acc + reqs[k].got > keep) {
              reqs[k].got = 0;
            } else {
              acc += reqs[k].got;
            }
          }
        }
      }
      i = j;
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* data, size_t n) override {
    int64_t at = 0;
    FaultAction action = state_->Gate(OpKind::kWrite, &at);
    if (action == FaultAction::kFail) return FaultState::Injected(at);
    if (action == FaultAction::kShortWrite) {
      // Torn write: half the payload lands, then the device dies.
      MSV_RETURN_IF_ERROR(inner_->Write(offset, data, n / 2));
      return FaultState::Injected(at);
    }
    return inner_->Write(offset, data, n);
  }

  Status Append(const char* data, size_t n) override {
    int64_t at = 0;
    FaultAction action = state_->Gate(OpKind::kWrite, &at);
    if (action == FaultAction::kFail) return FaultState::Injected(at);
    if (action == FaultAction::kShortWrite) {
      MSV_RETURN_IF_ERROR(inner_->Append(data, n / 2));
      return FaultState::Injected(at);
    }
    return inner_->Append(data, n);
  }

  Result<uint64_t> Size() const override { return inner_->Size(); }

  Status Truncate(uint64_t size) override {
    int64_t at = 0;
    if (state_->Gate(OpKind::kOther, &at) != FaultAction::kNone) {
      return FaultState::Injected(at);
    }
    return inner_->Truncate(size);
  }

  Status Sync() override {
    int64_t at = 0;
    if (state_->Gate(OpKind::kOther, &at) != FaultAction::kNone) {
      return FaultState::Injected(at);
    }
    MSV_RETURN_IF_ERROR(inner_->Sync());
    MSV_ASSIGN_OR_RETURN(std::string bytes, Slurp(inner_.get()));
    MutexLock lock(state_->mu);
    state_->synced[name_] = bytes;
    // fsync makes the *data* durable; if the directory entry already is,
    // the whole file now survives a crash.
    auto it = state_->durable.find(name_);
    if (it != state_->durable.end()) it->second = std::move(bytes);
    return Status::OK();
  }

 private:
  std::shared_ptr<FaultState> state_;
  std::string name_;
  std::unique_ptr<File> inner_;
};

}  // namespace
}  // namespace internal

using internal::FaultAction;
using internal::FaultState;
using internal::OpKind;

FaultInjectionEnv::FaultInjectionEnv(Env* inner)
    : state_(std::make_shared<FaultState>(inner)) {
  // Pre-existing files predate the simulated crash window: both their
  // contents and their directory entries are durable as-is. An inner env
  // that cannot enumerate files simply starts with an empty durable set.
  auto names = inner->ListFiles();
  if (names.ok()) {
    // The state is freshly constructed and unshared, but `synced`/`durable`
    // belong to FaultState (not the object under construction), so the
    // analysis rightly wants its lock held.
    MutexLock lock(state_->mu);
    for (const std::string& name : *names) {
      auto file = inner->OpenFile(name, /*create=*/false);
      if (!file.ok()) continue;
      auto bytes = internal::Slurp(file->get());
      if (!bytes.ok()) continue;
      state_->synced[name] = *bytes;
      state_->durable[name] = std::move(*bytes);
    }
  }
}

FaultInjectionEnv::~FaultInjectionEnv() = default;

Result<std::unique_ptr<File>> FaultInjectionEnv::OpenFile(
    const std::string& name, bool create) {
  int64_t at = 0;
  if (state_->Gate(OpKind::kOther, &at) != FaultAction::kNone) {
    return FaultState::Injected(at);
  }
  MSV_ASSIGN_OR_RETURN(auto inner, state_->inner->OpenFile(name, create));
  return std::unique_ptr<File>(
      new internal::FaultFile(state_, name, std::move(inner)));
}

Status FaultInjectionEnv::DeleteFile(const std::string& name) {
  int64_t at = 0;
  if (state_->Gate(OpKind::kOther, &at) != FaultAction::kNone) {
    return FaultState::Injected(at);
  }
  MSV_RETURN_IF_ERROR(state_->inner->DeleteFile(name));
  MutexLock lock(state_->mu);
  // The durable image keeps the entry: unlink is a directory mutation and
  // only SyncDir() commits it — a crash resurrects the file.
  state_->synced.erase(name);
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  int64_t at = 0;
  if (state_->Gate(OpKind::kOther, &at) != FaultAction::kNone) {
    return FaultState::Injected(at);
  }
  MSV_RETURN_IF_ERROR(state_->inner->RenameFile(from, to));
  MutexLock lock(state_->mu);
  // The data-synced state travels with the inode; entry durability of the
  // rename itself waits for SyncDir().
  auto it = state_->synced.find(from);
  if (it != state_->synced.end()) {
    state_->synced[to] = std::move(it->second);
    state_->synced.erase(it);
  } else {
    state_->synced.erase(to);
  }
  return Status::OK();
}

Result<bool> FaultInjectionEnv::FileExists(const std::string& name) {
  return state_->inner->FileExists(name);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListFiles() {
  return state_->inner->ListFiles();
}

Status FaultInjectionEnv::SyncDir() {
  int64_t at = 0;
  if (state_->Gate(OpKind::kOther, &at) != FaultAction::kNone) {
    return FaultState::Injected(at);
  }
  MSV_RETURN_IF_ERROR(state_->inner->SyncDir());
  MSV_ASSIGN_OR_RETURN(auto names, state_->inner->ListFiles());
  MutexLock lock(state_->mu);
  // Every live directory entry is durable now; data durability is still
  // whatever the files' own Sync() history says. Entries no longer live
  // (deleted or renamed away) are committed as gone.
  std::map<std::string, std::string> durable;
  for (const std::string& name : names) {
    auto synced_it = state_->synced.find(name);
    if (synced_it != state_->synced.end()) {
      durable[name] = synced_it->second;
      continue;
    }
    auto old_it = state_->durable.find(name);
    // Entry durable but data never synced: the strict model keeps nothing.
    durable[name] = old_it != state_->durable.end() ? old_it->second : "";
  }
  state_->durable = std::move(durable);
  return Status::OK();
}

void FaultInjectionEnv::ArmFault(int64_t fail_at_op, FaultMode mode,
                                 bool sticky) {
  MutexLock lock(state_->mu);
  state_->fail_at = fail_at_op;
  state_->mode = mode;
  state_->sticky = sticky;
  state_->fired = false;
}

void FaultInjectionEnv::ClearFault() {
  MutexLock lock(state_->mu);
  state_->fail_at = -1;
}

int64_t FaultInjectionEnv::op_count() const {
  MutexLock lock(state_->mu);
  return state_->op_count;
}

bool FaultInjectionEnv::fault_fired() const {
  MutexLock lock(state_->mu);
  return state_->fired;
}

Status FaultInjectionEnv::DropUnsyncedData() {
  // Snapshot the durable image, then rebuild the inner env to match it.
  // Uncounted: this is the simulated power loss itself, not a workload op.
  std::map<std::string, std::string> durable;
  {
    MutexLock lock(state_->mu);
    state_->c_crashes->Add();
    durable = state_->durable;
  }
  MSV_ASSIGN_OR_RETURN(auto names, state_->inner->ListFiles());
  for (const std::string& name : names) {
    if (durable.count(name) == 0) {
      MSV_RETURN_IF_ERROR(state_->inner->DeleteFile(name));
    }
  }
  for (const auto& [name, bytes] : durable) {
    MSV_RETURN_IF_ERROR(internal::Restore(state_->inner, name, bytes));
  }
  MutexLock lock(state_->mu);
  state_->synced = durable;
  return Status::OK();
}

std::unique_ptr<FaultInjectionEnv> NewFaultInjectionEnv(Env* inner) {
  return std::make_unique<FaultInjectionEnv>(inner);
}

}  // namespace msv::io
